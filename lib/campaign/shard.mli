(** Campaign planning and shard execution.

    A campaign over an application set is planned as a deterministic
    array of {e shards}; each shard is a fixed number of trials of one
    graph's estimator in one stratum, driven by its own seed drawn from
    the planner stream in shard-id order. A shard's result is therefore
    a pure function of [(config, problem, shard id)] — the foundation of
    both parallel execution and bit-for-bit resume. *)

type config = {
  trials : int;  (** trial budget per graph, split across its strata *)
  shard_trials : int;  (** trials per shard (the unit of parallelism) *)
  seed : int;  (** root of the planner's seed stream *)
  inflate : float;  (** proposal floor for Bernoulli fault events *)
  inflate_mean : float;  (** proposal floor for Poisson fault means *)
  min_stratum_prob : float;
      (** strata with [pi_s] below this get no trials; their mass is
          added to the upper confidence bound instead *)
  z : float;  (** normal quantile of the per-stratum interval *)
  cp_alpha : float;
      (** Clopper-Pearson level for strata with few failures *)
}

val default_config : config
(** 100_000 trials per graph, 4096-trial shards, seed 1, inflate 0.2 /
    0.5, min stratum probability 1e-18, z = 1.96, cp_alpha = 0.05. *)

type shard = {
  id : int;  (** position in the plan's shard array *)
  graph : int;
  stratum : int;
  trials : int;
  seed : int;
}

type result = {
  shard : shard;
  failures : int;  (** trials whose sampled event pattern was fatal *)
  sum_w : float;  (** sum of likelihood weights over failing trials *)
  sum_w2 : float;  (** sum of squared weights over failing trials *)
  max_w : float;  (** largest single weight observed (diagnostic) *)
  wall_ns : int64;
      (** wall time of the shard; excluded from estimates and reports *)
}

type plan = {
  config : config;
  graphs : Events.graph array;  (** one event model per graph *)
  estimators : Estimator.t array;
  shards : shard array;  (** indexed by shard id *)
  skipped : (int * int * float) list;
      (** [(graph, stratum, pi)] strata below [min_stratum_prob]: not
          sampled, padded into the upper bound *)
}

val plan :
  config ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  plan
(** Derive the deterministic shard plan: per graph, the per-graph trial
    budget is allocated to the positive-probability strata
    proportionally to [pi_s], with a floor of one full shard each, then
    cut into [shard_trials]-sized shards.
    @raise Invalid_argument on a non-positive budget or shard size. *)

val execute : plan -> shard -> result
(** Run one shard. Pure up to [wall_ns] and the recorded observability
    metrics ([campaign.trials], [campaign.failures], [campaign.shards]
    counters, [campaign.shard_wall_us] histogram, [campaign.shard]
    span); safe to call from worker domains. *)
