(** Deterministic aggregation of shard results into a campaign report.

    Per stratum, the weighted failure indicators are pooled across
    shards (in shard-id order — addition of the streamed moment sums,
    so the result is independent of execution interleaving) and turned
    into a contribution interval:

    - with at least 10 failures, a normal interval on the weighted
      sample mean, scaled by the exact stratum probability [pi_s];
    - with fewer, a sound bound: zero below, and above it
      [pi_s * sup_weight_s * CP_hi(failures, trials)] — the weights are
      bounded by the stratum's weight supremum, so an exact binomial
      bound on the {e proposal} failure rate bounds the contribution;
    - a planned stratum with no results yet contributes [0, pi_s].

    Strata skipped at planning time (below [min_stratum_prob]) add
    their exact probability mass to the upper bound only. The graph
    interval is the sum of its stratum intervals, so it always contains
    the true failure probability up to the stated confidence — the
    [closed_in_ci] flag and the constraint verdict follow from it. *)

type stratum_report = {
  stratum : int;
  pi : float;  (** exact stratum probability *)
  trials : int;
  failures : int;
  mean : float;  (** weighted mean of the failure indicator *)
  contribution : float;  (** [pi * mean] *)
  lo : float;  (** lower bound of the contribution *)
  hi : float;  (** upper bound of the contribution *)
}

type verdict = [ `Met | `Violated | `Inconclusive | `Unconstrained ]

type graph_report = {
  graph : int;
  name : string;
  period : int;
  trials : int;
  failures : int;
  estimate : float;  (** point estimate of the failure probability *)
  lo : float;
  hi : float;
  closed_form : float;
  closed_in_ci : bool;  (** [lo <= closed_form <= hi] *)
  bound : float option;  (** the graph's [f_t] failure-rate bound *)
  rate : float;  (** [estimate / period] *)
  verdict : verdict;
      (** [`Met] when even [hi / period] meets the bound, [`Violated]
          when even [lo / period] exceeds it *)
  strata : stratum_report list;
}

type report = {
  graphs : graph_report list;
  total_trials : int;
  total_failures : int;
  complete : bool;  (** every planned shard has a result *)
}

val build : Shard.plan -> Shard.result list -> report

val render : report -> string
(** Plain-text table, one row per graph. *)

val write : path:string -> report -> unit
(** Line-oriented s-expression report with hexadecimal floats and no
    wall-clock data — byte-identical across resume. *)
