module Arch = Mcmap_model.Arch
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Proc = Mcmap_model.Proc
module Task = Mcmap_model.Task
module Criticality = Mcmap_model.Criticality
module Hplan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique
module Fault_model = Mcmap_reliability.Fault_model
module Analysis = Mcmap_reliability.Analysis

type rule = All_fail | At_least of int

type events =
  | Coins of { truth : float array; proposal : float array; rule : rule }
  | Poisson of { truth_mean : float; proposal_mean : float; tolerated : int }

type task = {
  events : events;
  affected_truth : float;
  affected_proposal : float;
  sup_weight : float;
}

type graph = {
  index : int;
  name : string;
  period : int;
  tasks : task array;
  closed_form : float;
  bound : float option;
}

let failure_of_count events count =
  match events with
  | Coins { truth; rule = All_fail; _ } -> count = Array.length truth
  | Coins { rule = At_least k; _ } -> count >= k
  | Poisson { tolerated; _ } -> count > tolerated

(* [1 - prod_j (1 - q_j)] without cancellation: the q_j reach 1e-9 and
   below, where [1. -. prod] alone would cost seven significant digits. *)
let affected_of_coins qs =
  let s = Array.fold_left (fun acc q -> acc +. log1p (-.q)) 0. qs in
  -.expm1 s

let coin_task ~inflate ~truth ~rule =
  let proposal = Array.map (fun q -> Float.max q inflate) truth in
  let affected_truth = affected_of_coins truth in
  (* The proposal coins are inflated away from zero, so the plain product
     is accurate — and it is exactly the complement the conditional
     sampler in [Estimator] divides by, which keeps the weights and the
     sampling distribution consistent to the last bit. *)
  let affected_proposal =
    1. -. Array.fold_left (fun acc q -> acc *. (1. -. q)) 1. proposal in
  let sup_weight =
    if affected_truth <= 0. then 0.
    else begin
      let ratio = ref (affected_proposal /. affected_truth) in
      Array.iteri
        (fun j q ->
          let q' = proposal.(j) in
          ratio :=
            !ratio *. Float.max (q /. q') ((1. -. q) /. (1. -. q')))
        truth;
      !ratio
    end in
  { events = Coins { truth; proposal; rule };
    affected_truth; affected_proposal; sup_weight }

let poisson_task ~inflate_mean ~mean ~tolerated =
  let proposal_mean = Float.max mean inflate_mean in
  let affected_truth = -.expm1 (-.mean) in
  let affected_proposal = -.expm1 (-.proposal_mean) in
  let sup_weight =
    if affected_truth <= 0. then 0.
    else
      (* The count weight [e^{m'-m} (m/m')^n] is decreasing in [n] when
         [m' >= m], so its supremum over the conditioned support (n >= 1)
         is at n = 1. *)
      affected_proposal /. affected_truth
      *. exp (proposal_mean -. mean)
      *. (mean /. proposal_mean) in
  { events = Poisson { truth_mean = mean; proposal_mean; tolerated };
    affected_truth; affected_proposal; sup_weight }

let build_task ~inflate ~inflate_mean arch (t : Task.t) (d : Hplan.decision) =
  let scaled proc c = Proc.scale_time (Arch.proc arch proc) c in
  let exec proc extra =
    let duration = scaled proc t.Task.wcet + extra in
    Fault_model.execution_failure arch ~proc ~duration in
  match d.Hplan.technique with
  | Technique.No_hardening ->
    coin_task ~inflate ~truth:[| exec d.Hplan.primary_proc 0 |] ~rule:All_fail
  | Technique.Re_execution k ->
    let dt = scaled d.Hplan.primary_proc t.Task.detection_overhead in
    let per_attempt = exec d.Hplan.primary_proc dt in
    coin_task ~inflate ~truth:(Array.make (k + 1) per_attempt) ~rule:All_fail
  | Technique.Checkpointing (segments, k) ->
    let proc = d.Hplan.primary_proc in
    let dt = scaled proc t.Task.detection_overhead in
    let duration = scaled proc t.Task.wcet + (segments * dt) in
    let rate = (Arch.proc arch proc).Proc.fault_rate in
    poisson_task ~inflate_mean ~mean:(rate *. float_of_int duration)
      ~tolerated:k
  | Technique.Active_replication _ ->
    let procs =
      d.Hplan.primary_proc :: Array.to_list d.Hplan.replica_procs in
    let truth = Array.of_list (List.map (fun p -> exec p 0) procs) in
    let n = Array.length truth in
    (* n = 2 is duplication: detection without correction, one failure is
       fatal; otherwise a lost majority needs floor(n/2) + 1 failures. *)
    let need = if n = 2 then 1 else (n / 2) + 1 in
    coin_task ~inflate ~truth ~rule:(At_least need)
  | Technique.Passive_replication _ ->
    let procs =
      d.Hplan.primary_proc :: Array.to_list d.Hplan.replica_procs in
    let truth = Array.of_list (List.map (fun p -> exec p 0) procs) in
    (* 2 + m executions, correct iff at least 2 succeed: at least m + 1
       failures are fatal. *)
    coin_task ~inflate ~truth ~rule:(At_least (Array.length truth - 1))

let build ?(inflate = 0.2) ?(inflate_mean = 0.5) arch apps plan ~graph =
  if not (0. <= inflate && inflate < 1.) then
    invalid_arg "Events.build: inflate outside [0, 1)";
  if inflate_mean < 0. then
    invalid_arg "Events.build: negative inflate_mean";
  let g = Appset.graph apps graph in
  let tasks =
    Array.init (Graph.n_tasks g) (fun task ->
        build_task ~inflate ~inflate_mean arch (Graph.task g task)
          (Hplan.decision plan ~graph ~task)) in
  { index = graph;
    name = g.Graph.name;
    period = g.Graph.period;
    tasks;
    closed_form = Analysis.graph_failure_probability arch apps plan ~graph;
    bound = Criticality.max_failure_rate g.Graph.criticality }
