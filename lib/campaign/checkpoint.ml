module Sexp = Mcmap_util.Sexp

let version = 1

(* Floats are serialized as hexadecimal literals ([%h]) so that parsing
   them back is exact: a resumed campaign must reproduce the
   uninterrupted report bit for bit, and a decimal round-trip would lose
   the last ulp of the weight sums. *)

let header_line (p : Shard.plan) =
  let c = p.Shard.config in
  Printf.sprintf
    "(campaign (version %d) (seed %d) (trials %d) (shard-trials %d) \
     (inflate %h) (inflate-mean %h) (min-stratum-prob %h) (z %h) \
     (cp-alpha %h) (graphs %d) (shards %d))"
    version c.Shard.seed c.Shard.trials c.Shard.shard_trials
    c.Shard.inflate c.Shard.inflate_mean c.Shard.min_stratum_prob
    c.Shard.z c.Shard.cp_alpha
    (Array.length p.Shard.graphs)
    (Array.length p.Shard.shards)

let shard_line (r : Shard.result) =
  let s = r.Shard.shard in
  Printf.sprintf
    "(shard (id %d) (graph %d) (stratum %d) (trials %d) (seed %d) \
     (failures %d) (sum-w %h) (sum-w2 %h) (max-w %h) (wall-ns %Ld))"
    s.Shard.id s.Shard.graph s.Shard.stratum s.Shard.trials s.Shard.seed
    r.Shard.failures r.Shard.sum_w r.Shard.sum_w2 r.Shard.max_w
    r.Shard.wall_ns

let initialise ~path plan =
  let oc = open_out path in
  output_string oc (header_line plan);
  output_char oc '\n';
  close_out oc

let append ~path lines =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc

let ( let* ) = Result.bind

let check name ~expected ~got =
  if expected = got then Ok ()
  else
    Error
      (Printf.sprintf
         "checkpoint: %s mismatch (plan has %s, file has %s) — refusing \
          to resume under a different configuration"
         name expected got)

let check_int name ~expected ~got =
  check name ~expected:(string_of_int expected) ~got:(string_of_int got)

let check_float name ~expected ~got =
  check name
    ~expected:(Printf.sprintf "%h" expected)
    ~got:(Printf.sprintf "%h" got)

let parse_header plan line =
  match Sexp.parse_one line with
  | Error e -> Error ("checkpoint: unreadable header: " ^ e)
  | Ok (Sexp.List (Sexp.Atom "campaign" :: fields)) ->
    let c = plan.Shard.config in
    let* v = Sexp.assoc_int "version" fields in
    let* () = check_int "version" ~expected:version ~got:v in
    let* seed = Sexp.assoc_int "seed" fields in
    let* () = check_int "seed" ~expected:c.Shard.seed ~got:seed in
    let* trials = Sexp.assoc_int "trials" fields in
    let* () = check_int "trials" ~expected:c.Shard.trials ~got:trials in
    let* st = Sexp.assoc_int "shard-trials" fields in
    let* () =
      check_int "shard-trials" ~expected:c.Shard.shard_trials ~got:st in
    let* inflate = Sexp.assoc_float "inflate" fields in
    let* () =
      check_float "inflate" ~expected:c.Shard.inflate ~got:inflate in
    let* im = Sexp.assoc_float "inflate-mean" fields in
    let* () =
      check_float "inflate-mean" ~expected:c.Shard.inflate_mean ~got:im in
    let* msp = Sexp.assoc_float "min-stratum-prob" fields in
    let* () =
      check_float "min-stratum-prob" ~expected:c.Shard.min_stratum_prob
        ~got:msp in
    let* z = Sexp.assoc_float "z" fields in
    let* () = check_float "z" ~expected:c.Shard.z ~got:z in
    let* cp = Sexp.assoc_float "cp-alpha" fields in
    let* () = check_float "cp-alpha" ~expected:c.Shard.cp_alpha ~got:cp in
    let* graphs = Sexp.assoc_int "graphs" fields in
    let* () =
      check_int "graphs" ~expected:(Array.length plan.Shard.graphs)
        ~got:graphs in
    let* shards = Sexp.assoc_int "shards" fields in
    check_int "shards" ~expected:(Array.length plan.Shard.shards)
      ~got:shards
  | Ok _ -> Error "checkpoint: first line is not a campaign header"

(* [None] = malformed (treated as a partial tail write: stop reading);
   [Some (Error _)] = well-formed but inconsistent with the plan. *)
let parse_shard plan line =
  match Sexp.parse_one line with
  | Error _ -> None
  | Ok (Sexp.List (Sexp.Atom "shard" :: fields)) ->
    let result =
      let* id = Sexp.assoc_int "id" fields in
      if id < 0 || id >= Array.length plan.Shard.shards then
        Error (Printf.sprintf "checkpoint: shard id %d out of range" id)
      else begin
        let s = plan.Shard.shards.(id) in
        let* graph = Sexp.assoc_int "graph" fields in
        let* () = check_int "shard graph" ~expected:s.Shard.graph ~got:graph in
        let* stratum = Sexp.assoc_int "stratum" fields in
        let* () =
          check_int "shard stratum" ~expected:s.Shard.stratum ~got:stratum in
        let* trials = Sexp.assoc_int "trials" fields in
        let* () =
          check_int "shard trials" ~expected:s.Shard.trials ~got:trials in
        let* seed = Sexp.assoc_int "seed" fields in
        let* () = check_int "shard seed" ~expected:s.Shard.seed ~got:seed in
        let* failures = Sexp.assoc_int "failures" fields in
        let* sum_w = Sexp.assoc_float "sum-w" fields in
        let* sum_w2 = Sexp.assoc_float "sum-w2" fields in
        let* max_w = Sexp.assoc_float "max-w" fields in
        let* wall = Sexp.assoc_atom "wall-ns" fields in
        match Int64.of_string_opt wall with
        | None -> Error "checkpoint: unreadable wall-ns"
        | Some wall_ns ->
          Ok
            { Shard.shard = s; failures; sum_w; sum_w2; max_w; wall_ns }
      end in
    (match result with
     | Ok r -> Some (Ok r)
     | Error e ->
       (* A missing field means a line cut short by a kill: tolerate it.
          A present-but-mismatching field means the file belongs to a
          different campaign: refuse. *)
       if String.length e >= 10 && String.sub e 0 10 = "checkpoint"
       then Some (Error e)
       else None)
  | Ok _ -> None

let load ~path plan =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in path in
    let lines = In_channel.input_lines ic in
    close_in ic;
    match lines with
    | [] -> Ok []
    | header :: rest ->
      let* () = parse_header plan header in
      let seen = Hashtbl.create 64 in
      let rec walk acc = function
        | [] -> Ok (List.rev acc)
        | line :: tl ->
          if String.trim line = "" then walk acc tl
          else begin
            match parse_shard plan line with
            | None -> Ok (List.rev acc) (* partial tail write: stop *)
            | Some (Error e) -> Error e
            | Some (Ok r) ->
              let id = r.Shard.shard.Shard.id in
              if Hashtbl.mem seen id then walk acc tl
              else begin
                Hashtbl.add seen id ();
                walk (r :: acc) tl
              end
          end in
      walk [] rest
  end
