module Stats = Mcmap_util.Stats
module Texttable = Mcmap_util.Texttable

(* Few enough failures that the normal interval on the weighted samples
   cannot be trusted; fall back to Clopper-Pearson times the weight
   supremum. *)
let normal_min_failures = 10

(* The statistical interval can collapse to a point: an unhardened task
   fails on every affected trial with weight exactly 1, so its stratum
   has zero sample variance and the estimate degenerates to the exact
   stratum probability. The campaign's Poisson-binomial DP and the
   closed form's log-space product then disagree only in the last few
   ulps — real disagreement, but numerical, not statistical. The graph
   interval is widened by this relative margin to absorb it. *)
let fp_margin = 1e-9

type stratum_report = {
  stratum : int;
  pi : float;
  trials : int;
  failures : int;
  mean : float;
  contribution : float;
  lo : float;
  hi : float;
}

type verdict = [ `Met | `Violated | `Inconclusive | `Unconstrained ]

type graph_report = {
  graph : int;
  name : string;
  period : int;
  trials : int;
  failures : int;
  estimate : float;
  lo : float;
  hi : float;
  closed_form : float;
  closed_in_ci : bool;
  bound : float option;
  rate : float;
  verdict : verdict;
  strata : stratum_report list;
}

type report = {
  graphs : graph_report list;
  total_trials : int;
  total_failures : int;
  complete : bool;
}

let stratum_bounds config ~pi ~sup ~trials ~failures ~weighted =
  if trials = 0 then (0., pi)
  else if failures >= normal_min_failures then begin
    let lo, hi = Stats.weighted_interval ~z:config.Shard.z weighted in
    (pi *. lo, Float.min pi (pi *. hi))
  end
  else begin
    (* Weights are bounded by [sup] in this stratum, so the stratum's
       contribution is at most [pi * sup * P(fail | proposal)]; bound
       the proposal failure rate exactly. *)
    let _, p_hi =
      Stats.clopper_pearson ~alpha:config.Shard.cp_alpha
        ~successes:failures ~trials () in
    (0., Float.min pi (pi *. sup *. p_hi))
  end

let build (plan : Shard.plan) results =
  let config = plan.Shard.config in
  let by_shard = Hashtbl.create 64 in
  List.iter
    (fun (r : Shard.result) ->
      Hashtbl.replace by_shard r.Shard.shard.Shard.id r)
    results;
  let complete =
    Array.for_all
      (fun (s : Shard.shard) -> Hashtbl.mem by_shard s.Shard.id)
      plan.Shard.shards in
  let total_trials = ref 0 in
  let total_failures = ref 0 in
  let graphs =
    Array.to_list
      (Array.mapi
         (fun gi (g : Events.graph) ->
           let est = plan.Shard.estimators.(gi) in
           let pi = Estimator.strata est in
           (* Planned strata of this graph, ascending, with their shard
              results accumulated in shard-id order. *)
           let strata_ids =
             Array.to_list plan.Shard.shards
             |> List.filter_map (fun (s : Shard.shard) ->
                    if s.Shard.graph = gi then Some s.Shard.stratum
                    else None)
             |> List.sort_uniq compare in
           let strata =
             List.map
               (fun s ->
                 let trials = ref 0 in
                 let failures = ref 0 in
                 let sum = ref 0. in
                 let sumsq = ref 0. in
                 Array.iter
                   (fun (sh : Shard.shard) ->
                     if sh.Shard.graph = gi && sh.Shard.stratum = s then
                       match Hashtbl.find_opt by_shard sh.Shard.id with
                       | None -> ()
                       | Some r ->
                         trials := !trials + sh.Shard.trials;
                         failures := !failures + r.Shard.failures;
                         sum := !sum +. r.Shard.sum_w;
                         sumsq := !sumsq +. r.Shard.sum_w2)
                   plan.Shard.shards;
                 let weighted =
                   Stats.weighted_of_sums ~count:!trials ~sum:!sum
                     ~sumsq:!sumsq in
                 let mean = Stats.weighted_mean weighted in
                 let lo, hi =
                   stratum_bounds config ~pi:pi.(s)
                     ~sup:(Estimator.sup_weight est ~stratum:s)
                     ~trials:!trials ~failures:!failures ~weighted in
                 { stratum = s;
                   pi = pi.(s);
                   trials = !trials;
                   failures = !failures;
                   mean;
                   contribution = pi.(s) *. mean;
                   lo;
                   hi })
               strata_ids in
           let skipped_mass =
             List.fold_left
               (fun acc (graph, _, p) ->
                 if graph = gi then acc +. p else acc)
               0. plan.Shard.skipped in
           let trials =
             List.fold_left
               (fun acc (s : stratum_report) -> acc + s.trials)
               0 strata in
           let failures =
             List.fold_left
               (fun acc (s : stratum_report) -> acc + s.failures)
               0 strata in
           total_trials := !total_trials + trials;
           total_failures := !total_failures + failures;
           let estimate =
             List.fold_left
               (fun acc (s : stratum_report) -> acc +. s.contribution)
               0. strata in
           let lo =
             List.fold_left
               (fun acc (s : stratum_report) -> acc +. s.lo)
               0. strata in
           let hi =
             List.fold_left
               (fun acc (s : stratum_report) -> acc +. s.hi)
               skipped_mass strata in
           let lo = lo *. (1. -. fp_margin) in
           let hi = hi *. (1. +. fp_margin) in
           let rate = estimate /. float_of_int g.Events.period in
           let verdict =
             match g.Events.bound with
             | None -> `Unconstrained
             | Some b ->
               let period = float_of_int g.Events.period in
               if hi /. period <= b then `Met
               else if lo /. period > b then `Violated
               else `Inconclusive in
           { graph = gi;
             name = g.Events.name;
             period = g.Events.period;
             trials;
             failures;
             estimate;
             lo;
             hi;
             closed_form = g.Events.closed_form;
             closed_in_ci = lo <= g.Events.closed_form
                            && g.Events.closed_form <= hi;
             bound = g.Events.bound;
             rate;
             verdict;
             strata })
         plan.Shard.graphs) in
  { graphs;
    total_trials = !total_trials;
    total_failures = !total_failures;
    complete }

let verdict_name = function
  | `Met -> "met"
  | `Violated -> "violated"
  | `Inconclusive -> "inconclusive"
  | `Unconstrained -> "unconstrained"

let render report =
  let table =
    Texttable.create
      ~header:
        [ "Graph"; "Trials"; "Fail"; "Estimate"; "CI"; "Closed form";
          "In CI"; "Constraint" ] in
  List.iter
    (fun g ->
      Texttable.add_row table
        [ Printf.sprintf "%d:%s" g.graph g.name;
          string_of_int g.trials;
          string_of_int g.failures;
          Printf.sprintf "%.3e" g.estimate;
          Printf.sprintf "[%.3e, %.3e]" g.lo g.hi;
          Printf.sprintf "%.3e" g.closed_form;
          (if g.closed_in_ci then "yes" else "NO");
          verdict_name g.verdict ])
    report.graphs;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Texttable.render table);
  Buffer.add_string buf
    (Printf.sprintf "\n%d trials, %d weighted failures%s\n"
       report.total_trials report.total_failures
       (if report.complete then "" else " (campaign incomplete)"));
  Buffer.contents buf

(* The report file deliberately contains no wall-clock data: it must be
   byte-identical between an uninterrupted campaign and a killed-and-
   resumed one. *)
let to_lines report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "(campaign-report (complete %b) (total-trials %d) \
        (total-failures %d))\n"
       report.complete report.total_trials report.total_failures);
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf
           "(graph (index %d) (name %s) (period %d) (trials %d) \
            (failures %d) (estimate %h) (lo %h) (hi %h) \
            (closed-form %h) (closed-in-ci %b) (rate %h) (bound %s) \
            (verdict %s))\n"
           g.graph g.name g.period g.trials g.failures g.estimate g.lo
           g.hi g.closed_form g.closed_in_ci g.rate
           (match g.bound with
            | None -> "none"
            | Some b -> Printf.sprintf "%h" b)
           (verdict_name g.verdict));
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf
               "(stratum (graph %d) (s %d) (pi %h) (trials %d) \
                (failures %d) (mean %h) (contribution %h) (lo %h) \
                (hi %h))\n"
               g.graph s.stratum s.pi s.trials s.failures s.mean
               s.contribution s.lo s.hi))
        g.strata)
    report.graphs;
  Buffer.contents buf

let write ~path report =
  let oc = open_out path in
  output_string oc (to_lines report);
  close_out oc
