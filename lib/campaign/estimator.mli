(** The stratified importance sampler behind a campaign.

    The failure probability of a graph is decomposed over the number
    [A] of {e affected} tasks (tasks with at least one fault event)
    under the {e true} measure:

    {v P(fail) = sum_{s >= 1} pi_s * E[ 1_fail | A = s ] v}

    where [pi_s = P(A = s)] is computed exactly by a suffix
    Poisson-binomial dynamic program over the per-task affected
    probabilities — no sampling error in the stratum weights, and the
    dominant all-quiet stratum ([A = 0], which can never fail) is never
    sampled at all.

    Within a stratum, {!sample} draws the affected set from the exact
    true conditional distribution (so it carries no weight), then draws
    each affected task's events from the {e inflated} proposal
    conditioned on at least one event, accumulating the likelihood
    ratio. The returned [w * 1_fail] is an unbiased estimate of
    [E[1_fail | A = s]]: failure events that the true measure would
    produce once in 1e9 trials appear at proposal rates of a few
    percent, carrying weights of order 1e-9 instead. *)

type t

val make : Events.graph -> t
(** Precompute the stratum DP, the per-stratum weight suprema and the
    proposal tail products of one graph's event model. *)

val strata : t -> float array
(** [pi_s] for [s = 0 .. n_tasks] (a fresh copy; sums to 1). *)

val sup_weight : t -> stratum:int -> float
(** Supremum of the likelihood weight over any outcome of stratum
    [s] — the product of the [s] largest per-task weight suprema. Used
    to turn a Clopper-Pearson bound on the proposal failure rate into a
    sound upper bound on the stratum's contribution. *)

val sample : t -> Mcmap_util.Prng.t -> stratum:int -> bool * float
(** One trial conditioned on [A = stratum]: [(failed, weight)]. Consumes
    a deterministic number pattern of generator draws, so a shard is a
    pure function of its seed.
    @raise Invalid_argument unless [1 <= stratum <= n_tasks]. *)
