module Prng = Mcmap_util.Prng

type t = {
  model : Events.graph;
  dp : float array array;
  strata : float array;
  sup : float array;
  tails : float array array;
}

let make model =
  let tasks = model.Events.tasks in
  let n = Array.length tasks in
  (* Suffix Poisson-binomial DP over the per-task affected probabilities:
     dp.(i).(k) = P(exactly k of tasks i..n-1 are affected). All terms are
     positive products, so relative accuracy survives even when the
     stratum probabilities are 1e-18 and below. *)
  let dp = Array.make_matrix (n + 1) (n + 1) 0. in
  dp.(n).(0) <- 1.;
  for i = n - 1 downto 0 do
    let a = tasks.(i).Events.affected_truth in
    for k = 0 to n - i do
      let stay = (1. -. a) *. dp.(i + 1).(k) in
      let take = if k = 0 then 0. else a *. dp.(i + 1).(k - 1) in
      dp.(i).(k) <- stay +. take
    done
  done;
  let strata = Array.init (n + 1) (fun s -> dp.(0).(s)) in
  (* Largest-first prefix products of the per-task weight suprema: the
     maximum weight any s-subset of affected tasks can produce. *)
  let sups = Array.map (fun t -> t.Events.sup_weight) tasks in
  Array.sort (fun a b -> compare (b : float) a) sups;
  let sup = Array.make (n + 1) 1. in
  for s = 1 to n do
    sup.(s) <- sup.(s - 1) *. sups.(s - 1)
  done;
  let tails =
    Array.map
      (fun t ->
        match t.Events.events with
        | Events.Poisson _ -> [||]
        | Events.Coins { proposal; _ } ->
          let m = Array.length proposal in
          let tail = Array.make (m + 1) 1. in
          for j = m - 1 downto 0 do
            tail.(j) <- tail.(j + 1) *. (1. -. proposal.(j))
          done;
          tail)
      tasks in
  { model; dp; strata; sup; tails }

let strata t = Array.copy t.strata

let sup_weight t ~stratum =
  if stratum < 0 || stratum >= Array.length t.sup then
    invalid_arg "Estimator.sup_weight: stratum out of range";
  t.sup.(stratum)

(* One affected Coins task: sample the coin vector from the proposal
   conditioned on at least one head, sequentially — while no head has
   come up yet, coin j fires with P(head | >=1 head among j..) =
   q'_j / (1 - tail_j); after the first head the remaining coins are
   unconditional. Returns the head count and the likelihood weight
   (a'/a) * prod_j r_j. *)
let sample_coins rng ~truth ~proposal ~tail ~affected_truth
    ~affected_proposal =
  let n = Array.length truth in
  let heads = ref 0 in
  let w = ref (affected_proposal /. affected_truth) in
  for j = 0 to n - 1 do
    let q' = proposal.(j) in
    let p =
      if !heads > 0 then q'
      else Float.min 1. (q' /. (1. -. tail.(j))) in
    if Prng.bernoulli rng p then begin
      incr heads;
      w := !w *. (truth.(j) /. q')
    end
    else w := !w *. ((1. -. truth.(j)) /. (1. -. q'))
  done;
  (!heads, !w)

(* One affected Poisson task: invert the proposal CDF conditioned on a
   positive count (capped at 200 events — the proposal mass beyond that
   is zero in floating point for any sane mean). *)
let sample_poisson rng ~truth_mean ~proposal_mean ~affected_truth
    ~affected_proposal =
  let u = Prng.float rng 1. in
  let target = u *. affected_proposal in
  let p = ref (exp (-.proposal_mean) *. proposal_mean) in
  let cum = ref !p in
  let count = ref 1 in
  while !cum < target && !count < 200 do
    incr count;
    p := !p *. proposal_mean /. float_of_int !count;
    cum := !cum +. !p
  done;
  let w =
    affected_proposal /. affected_truth
    *. exp (proposal_mean -. truth_mean)
    *. ((truth_mean /. proposal_mean) ** float_of_int !count) in
  (!count, w)

let sample t rng ~stratum =
  let tasks = t.model.Events.tasks in
  let n = Array.length tasks in
  if stratum < 1 || stratum > n then
    invalid_arg "Estimator.sample: stratum out of range";
  let failed = ref false in
  let weight = ref 1. in
  let remaining = ref stratum in
  for i = 0 to n - 1 do
    if !remaining > 0 then begin
      let task = tasks.(i) in
      (* P(task i affected | exactly [remaining] affected among i..) under
         the true measure — the affected set itself carries no weight. *)
      let p =
        if n - i <= !remaining then 1.
        else begin
          let denom = t.dp.(i).(!remaining) in
          if denom <= 0. then 0.
          else
            Float.min 1.
              (task.Events.affected_truth
               *. t.dp.(i + 1).(!remaining - 1)
               /. denom)
        end in
      if Prng.bernoulli rng p then begin
        decr remaining;
        let count, w =
          match task.Events.events with
          | Events.Coins { truth; proposal; _ } ->
            sample_coins rng ~truth ~proposal ~tail:t.tails.(i)
              ~affected_truth:task.Events.affected_truth
              ~affected_proposal:task.Events.affected_proposal
          | Events.Poisson { truth_mean; proposal_mean; _ } ->
            sample_poisson rng ~truth_mean ~proposal_mean
              ~affected_truth:task.Events.affected_truth
              ~affected_proposal:task.Events.affected_proposal in
        weight := !weight *. w;
        if Events.failure_of_count task.Events.events count then
          failed := true
      end
    end
  done;
  (!failed, !weight)
