(** The fault-event model a campaign injects into — one "pay-ahead" random
    experiment per task, chosen so that the distribution of the task's
    failure indicator matches {!Mcmap_reliability.Fault_model} exactly.

    Every hardening technique reduces to one of two shapes:

    - {b Coins}: a fixed vector of independent Bernoulli fault events
      (one per execution attempt or replica), with a failure rule over
      the number of heads — [All_fail] for the rollback family (the task
      fails only if the original attempt and every re-execution fault),
      [At_least k] for replication (a lost majority / exhausted spares);
    - {b Poisson}: a fault count over the checkpoint-extended duration,
      fatal when it exceeds the tolerated rollback budget [k].

    Zero fault events never fail under either shape, which is what makes
    stratification by affected-task count exact: the all-quiet stratum
    contributes nothing and is never sampled.

    Each task also carries the ingredients of importance sampling: its
    probability of being affected (at least one event) under the true
    measure and under the inflated proposal, and a supremum of the
    likelihood-ratio weight over all conditioned outcomes (used for the
    sound upper confidence bound when a stratum shows few failures). *)

type rule =
  | All_fail  (** fails iff every coin comes up heads *)
  | At_least of int  (** fails iff at least [k] coins come up heads *)

type events =
  | Coins of { truth : float array; proposal : float array; rule : rule }
      (** independent per-event fault probabilities, true and inflated *)
  | Poisson of { truth_mean : float; proposal_mean : float; tolerated : int }
      (** fault-count means, fatal when the count exceeds [tolerated] *)

type task = {
  events : events;
  affected_truth : float;  (** P(at least one event), true measure *)
  affected_proposal : float;  (** same under the inflated proposal *)
  sup_weight : float;
      (** supremum of the likelihood weight over outcomes with at least
          one event; 0 when the task can never be affected *)
}

type graph = {
  index : int;  (** graph index in the application set *)
  name : string;
  period : int;
  tasks : task array;
  closed_form : float;
      (** {!Mcmap_reliability.Analysis.graph_failure_probability} — the
          quantity the campaign estimates *)
  bound : float option;  (** the graph's [f_t] (a rate), if critical *)
}

val failure_of_count : events -> int -> bool
(** Whether the given number of fault events is fatal. The failure rules
    depend only on the event count, never on which events fired. *)

val build :
  ?inflate:float ->
  ?inflate_mean:float ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  graph:int ->
  graph
(** Build the event model of one graph under the plan. [inflate]
    (default 0.2) is the floor put under every proposal coin;
    [inflate_mean] (default 0.5) the floor under every proposal Poisson
    mean. Probabilities are never deflated.
    @raise Invalid_argument if [inflate] is outside [0, 1) or
    [inflate_mean] is negative. *)
