(** Append-only campaign checkpoints.

    A checkpoint is a line-oriented s-expression file: a header line
    fingerprinting the campaign configuration (seed, budgets, estimator
    knobs, plan shape), then one [(shard ...)] line per completed shard.
    Floats are written as hexadecimal literals so the round-trip is
    exact — a resumed campaign reproduces the uninterrupted report bit
    for bit.

    Loading is tolerant of the one corruption a kill can cause: a
    partial final line. Reading stops silently at the first malformed
    line, so at most one batch of shards is re-executed (from its
    recorded seed, yielding identical results). Anything that indicates
    the file belongs to a {e different} campaign — header mismatch, a
    shard whose geometry or seed disagrees with the re-derived plan —
    is a hard error instead. *)

val header_line : Shard.plan -> string
(** The configuration-fingerprint first line. *)

val shard_line : Shard.result -> string
(** One completed shard as a single line. *)

val initialise : path:string -> Shard.plan -> unit
(** Truncate [path] and write the header: the start of a fresh
    campaign. *)

val append : path:string -> string list -> unit
(** Append lines (each terminated with a newline) and close, flushing
    to the OS — a kill after [append] returns never loses the batch. *)

val load :
  path:string -> Shard.plan -> (Shard.result list, string) result
(** Completed shards recorded in [path], in file order, validated
    against the plan (duplicate ids keep their first occurrence). A
    missing file is an empty campaign, not an error. *)
