(** Campaign orchestration: plan, execute in parallel, checkpoint,
    resume, aggregate.

    A campaign is deterministic end to end: the plan (shards, strata,
    seeds) is a pure function of the configuration and the problem;
    each shard is a pure function of its seed; aggregation pools shard
    results in shard-id order. Running on one domain or eight, fresh or
    resumed from a killed run's checkpoint, produces the same report —
    bit for bit in the written report file. *)

type outcome = {
  plan : Shard.plan;
  results : Shard.result list;  (** all shard results, in id order *)
  report : Aggregate.report;
  replayed : int;  (** shards restored from the checkpoint *)
  executed : int;  (** shards executed in this run *)
}

val plan :
  Shard.config ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  Shard.plan
(** {!Shard.plan}, re-exported as the subsystem's entry point. *)

val run :
  ?domains:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  Shard.config ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  (outcome, string) result
(** Execute the campaign on [domains] worker domains (default 1),
    in batches of [4 * domains] shards appended to [checkpoint] (when
    given) after every batch — a kill re-executes at most one batch on
    resume, with identical results. With [resume] (default false) the
    checkpoint's completed shards are restored instead of re-run; an
    incompatible checkpoint (different configuration or plan shape) is
    an [Error]. Without [resume] an existing checkpoint is truncated.
    @raise Invalid_argument when [domains < 1]. *)

val report_from_checkpoint :
  checkpoint:string ->
  Shard.config ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  (outcome, string) result
(** Aggregate whatever the checkpoint holds without executing anything;
    the report of a partial campaign is marked incomplete and its
    missing strata widen to their full probability mass. *)
