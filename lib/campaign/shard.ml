module Prng = Mcmap_util.Prng
module Appset = Mcmap_model.Appset
module Obs = Mcmap_obs.Obs

type config = {
  trials : int;
  shard_trials : int;
  seed : int;
  inflate : float;
  inflate_mean : float;
  min_stratum_prob : float;
  z : float;
  cp_alpha : float;
}

let default_config =
  { trials = 100_000;
    shard_trials = 4096;
    seed = 1;
    inflate = 0.2;
    inflate_mean = 0.5;
    min_stratum_prob = 1e-18;
    z = 1.96;
    cp_alpha = 0.05 }

type shard = {
  id : int;
  graph : int;
  stratum : int;
  trials : int;
  seed : int;
}

type result = {
  shard : shard;
  failures : int;
  sum_w : float;
  sum_w2 : float;
  max_w : float;
  wall_ns : int64;
}

type plan = {
  config : config;
  graphs : Events.graph array;
  estimators : Estimator.t array;
  shards : shard array;
  skipped : (int * int * float) list;
}

let plan (config : config) arch apps hplan =
  if config.trials <= 0 then invalid_arg "Shard.plan: trials <= 0";
  if config.shard_trials <= 0 then
    invalid_arg "Shard.plan: shard_trials <= 0";
  if config.min_stratum_prob < 0. then
    invalid_arg "Shard.plan: negative min_stratum_prob";
  let n_graphs = Appset.n_graphs apps in
  let graphs =
    Array.init n_graphs (fun graph ->
        Events.build ~inflate:config.inflate
          ~inflate_mean:config.inflate_mean arch apps hplan ~graph) in
  let estimators = Array.map Estimator.make graphs in
  let planner = Prng.create config.seed in
  let shards = ref [] in
  let n_shards = ref 0 in
  let skipped = ref [] in
  for graph = 0 to n_graphs - 1 do
    let pi = Estimator.strata estimators.(graph) in
    let eligible = ref [] in
    let total_pi = ref 0. in
    for s = Array.length pi - 1 downto 1 do
      if pi.(s) > 0. then
        if pi.(s) >= config.min_stratum_prob then begin
          eligible := s :: !eligible;
          total_pi := !total_pi +. pi.(s)
        end
        else skipped := (graph, s, pi.(s)) :: !skipped
    done;
    List.iter
      (fun s ->
        (* Proportional allocation with a floor of one full shard: even a
           stratum carrying 1e-12 of the mass gets sampled rather than
           padded into the upper bound. *)
        let share =
          float_of_int config.trials *. pi.(s) /. !total_pi in
        let trials =
          max config.shard_trials (int_of_float (ceil share)) in
        let rec cut remaining =
          if remaining > 0 then begin
            let take = min config.shard_trials remaining in
            let seed =
              Int64.to_int (Prng.bits64 planner) land max_int in
            shards :=
              { id = !n_shards; graph; stratum = s; trials = take; seed }
              :: !shards;
            incr n_shards;
            cut (remaining - take)
          end in
        cut trials)
      !eligible
  done;
  { config;
    graphs;
    estimators;
    shards = Array.of_list (List.rev !shards);
    skipped = List.rev !skipped }

let execute plan shard =
  let est = plan.estimators.(shard.graph) in
  let rng = Prng.create shard.seed in
  let failures = ref 0 in
  let sum_w = ref 0. in
  let sum_w2 = ref 0. in
  let max_w = ref 0. in
  let t0 = Obs.now_ns () in
  Obs.with_span "campaign.shard" (fun () ->
      for _ = 1 to shard.trials do
        let failed, w = Estimator.sample est rng ~stratum:shard.stratum in
        if failed then begin
          incr failures;
          sum_w := !sum_w +. w;
          sum_w2 := !sum_w2 +. (w *. w);
          if w > !max_w then max_w := w
        end
      done);
  let wall_ns = Int64.sub (Obs.now_ns ()) t0 in
  if Obs.enabled () then begin
    (* Labelled by graph so a skewed campaign shows which graph's
       strata are eating the budget, plus unlabelled totals. *)
    let g = "g" ^ string_of_int shard.graph in
    Obs.incr ~by:shard.trials "campaign.trials";
    Obs.incr ~by:shard.trials ~label:g "campaign.trials";
    Obs.incr ~by:!failures "campaign.failures";
    Obs.incr ~by:!failures ~label:g "campaign.failures";
    Obs.incr "campaign.shards";
    Obs.observe "campaign.shard_wall_us"
      (Int64.to_int (Int64.div wall_ns 1_000L));
    (* Per-shard failure rate in parts-per-million (histograms take
       ints), and the heaviest likelihood-ratio weight seen anywhere —
       a spiking max weight flags a badly-tilted proposal. *)
    Obs.observe "campaign.shard_fail_ppm"
      (int_of_float
         (1e6 *. float_of_int !failures /. float_of_int shard.trials));
    Obs.gauge "campaign.max_lr_weight" !max_w;
    Obs.gauge ~label:g "campaign.max_lr_weight" !max_w
  end;
  { shard;
    failures = !failures;
    sum_w = !sum_w;
    sum_w2 = !sum_w2;
    max_w = !max_w;
    wall_ns }
