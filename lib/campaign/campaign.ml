module Parallel = Mcmap_util.Parallel
module Obs = Mcmap_obs.Obs

type outcome = {
  plan : Shard.plan;
  results : Shard.result list;
  report : Aggregate.report;
  replayed : int;
  executed : int;
}

let plan = Shard.plan

let sort_results results =
  List.sort
    (fun (a : Shard.result) (b : Shard.result) ->
      compare a.Shard.shard.Shard.id b.Shard.shard.Shard.id)
    results

let run ?(domains = 1) ?checkpoint ?(resume = false) config arch apps
    hplan =
  if domains < 1 then invalid_arg "Campaign.run: domains < 1";
  let p = plan config arch apps hplan in
  let loaded =
    match checkpoint with
    | Some path when resume -> Checkpoint.load ~path p
    | _ -> Ok [] in
  match loaded with
  | Error e -> Error e
  | Ok replayed ->
    (match checkpoint with
     | Some path when List.length replayed = 0 ->
       (* Fresh start (or an empty/missing file): write the header. *)
       Checkpoint.initialise ~path p
     | _ -> ());
    let have = Hashtbl.create 64 in
    List.iter
      (fun (r : Shard.result) ->
        Hashtbl.replace have r.Shard.shard.Shard.id r)
      replayed;
    let pending =
      Array.of_list
        (List.filter
           (fun (s : Shard.shard) -> not (Hashtbl.mem have s.Shard.id))
           (Array.to_list p.Shard.shards)) in
    let batch = max 1 (domains * 4) in
    let executed = ref [] in
    Obs.with_span "campaign.run" (fun () ->
        let i = ref 0 in
        while !i < Array.length pending do
          let n = min batch (Array.length pending - !i) in
          let slice = Array.sub pending !i n in
          let out = Parallel.map_array ~domains (Shard.execute p) slice in
          (match checkpoint with
           | Some path ->
             Checkpoint.append ~path
               (Array.to_list (Array.map Checkpoint.shard_line out))
           | None -> ());
          Array.iter (fun r -> executed := r :: !executed) out;
          i := !i + n
        done);
    let results = sort_results (replayed @ !executed) in
    Ok
      { plan = p;
        results;
        report = Aggregate.build p results;
        replayed = List.length replayed;
        executed = Array.length pending }

let report_from_checkpoint ~checkpoint config arch apps hplan =
  let p = plan config arch apps hplan in
  match Checkpoint.load ~path:checkpoint p with
  | Error e -> Error e
  | Ok replayed ->
    let results = sort_results replayed in
    Ok
      { plan = p;
        results;
        report = Aggregate.build p results;
        replayed = List.length replayed;
        executed = 0 }
