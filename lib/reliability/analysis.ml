module Arch = Mcmap_model.Arch
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Proc = Mcmap_model.Proc
module Task = Mcmap_model.Task
module Criticality = Mcmap_model.Criticality
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique

type violation = { graph : int; failure_rate : float; bound : float }

let scaled_duration arch proc c = Proc.scale_time (Arch.proc arch proc) c

let task_failure_probability arch apps plan ~graph ~task =
  let g = Appset.graph apps graph in
  let t = Graph.task g task in
  let d = Plan.decision plan ~graph ~task in
  let exec_failure proc extra =
    let duration = scaled_duration arch proc t.Task.wcet + extra in
    Fault_model.execution_failure arch ~proc ~duration in
  match d.Plan.technique with
  | Technique.No_hardening -> exec_failure d.Plan.primary_proc 0
  | Technique.Re_execution k ->
    let dt = scaled_duration arch d.Plan.primary_proc
        t.Task.detection_overhead in
    let per_attempt = exec_failure d.Plan.primary_proc dt in
    Fault_model.re_execution_failure ~per_attempt ~k
  | Technique.Checkpointing (segments, k) ->
    (* tolerates up to k faults over the whole (checkpoint-extended)
       execution; more than k faults in one instance are fatal *)
    let proc = d.Plan.primary_proc in
    let dt = scaled_duration arch proc t.Task.detection_overhead in
    let duration = scaled_duration arch proc t.Task.wcet + (segments * dt) in
    let rate = (Mcmap_model.Arch.proc arch proc).Mcmap_model.Proc.fault_rate in
    Fault_model.poisson_more_than ~rate ~duration ~k
  | Technique.Active_replication _ ->
    let procs = d.Plan.primary_proc :: Array.to_list d.Plan.replica_procs in
    let probs = Array.of_list (List.map (fun p -> exec_failure p 0) procs) in
    Fault_model.majority_failure probs
  | Technique.Passive_replication _ ->
    let all = d.Plan.primary_proc :: Array.to_list d.Plan.replica_procs in
    let probs = Array.of_list (List.map (fun p -> exec_failure p 0) all) in
    let active = Array.sub probs 0 2 in
    let spares = Array.sub probs 2 (Array.length probs - 2) in
    Fault_model.passive_failure ~active ~spares

(* [1 - prod_v (1 - p_v)] in log space: hardened tasks reach p_v below
   1e-18, where the direct product would cancel to 0 against the ulp of
   1.0. *)
let graph_failure_probability arch apps plan ~graph =
  let g = Appset.graph apps graph in
  let log_survive = ref 0. in
  for task = 0 to Graph.n_tasks g - 1 do
    let p = task_failure_probability arch apps plan ~graph ~task in
    log_survive := !log_survive +. log1p (-.p)
  done;
  -.expm1 !log_survive

let graph_failure_rate arch apps plan ~graph =
  let g = Appset.graph apps graph in
  graph_failure_probability arch apps plan ~graph
  /. float_of_int g.Graph.period

let violations arch apps plan =
  let acc = ref [] in
  for gi = Appset.n_graphs apps - 1 downto 0 do
    let g = Appset.graph apps gi in
    match Criticality.max_failure_rate g.Graph.criticality with
    | None -> ()
    | Some bound ->
      let failure_rate = graph_failure_rate arch apps plan ~graph:gi in
      if failure_rate > bound then
        acc := { graph = gi; failure_rate; bound } :: !acc
  done;
  !acc

let pp_violation ppf v =
  Format.fprintf ppf "graph %d: failure rate %.3e exceeds bound %.3e"
    v.graph v.failure_rate v.bound
