(** Reliability constraint checking (paper §2.3).

    A non-droppable graph [t] with reliability constraint [f_t] must have
    an unsafe-execution probability per time unit below [f_t]. An instance
    of the graph fails when any of its tasks delivers an undetected or
    uncorrected wrong result; tasks fail independently (series system),
    so per instance [p_t = 1 - prod_v (1 - p_v)] and the failure rate is
    [p_t / pr_t]. *)

type violation = {
  graph : int;
  failure_rate : float;  (** failures per time unit achieved by the plan *)
  bound : float;  (** the graph's [f_t] *)
}

val task_failure_probability :
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  graph:int ->
  task:int ->
  float
(** Failure probability of one task instance under its hardening decision
    and placement. *)

val graph_failure_probability :
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  graph:int ->
  float
(** Failure probability of one instance of the graph under the plan:
    [1 - prod_v (1 - p_v)] over its tasks (series system). This is the
    quantity the fault-injection campaign ([Mcmap_campaign]) estimates
    empirically. *)

val graph_failure_rate :
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  graph:int ->
  float
(** Failures per time unit: {!graph_failure_probability} divided by the
    graph's period. *)

val violations :
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  violation list
(** All non-droppable graphs whose constraint is not met by the plan.
    Empty list = reliability-feasible. *)

val pp_violation : Format.formatter -> violation -> unit
