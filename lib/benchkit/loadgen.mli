(** The [mcmap bench serve] load generator: N client domains firing M
    requests each at a running server over a real socket, measuring
    client-observed round-trip latency and aggregate throughput.

    Every client connects on its own socket and walks a deterministic
    request schedule (analyze requests for a built-in benchmark,
    cycling through a small set of distinct seeded plans so both the
    evaluation path and the warm result cache are exercised). The
    numbers become BENCH.json v2 kernels — see {!kernels} — so serve
    performance is diffed and gated like every other kernel. *)

type result = {
  requests : int;  (** responses received that carried an analysis *)
  rejected : int;  (** [Rejected] responses (backpressure) *)
  errors : int;  (** transport or [Error_response] failures *)
  wall_ns : int64;  (** whole-run wall clock across all clients *)
  latencies_ns : int array;  (** one per completed request, sorted *)
}

val run :
  ?clients:int ->
  ?requests:int ->
  ?distinct_plans:int ->
  ?bench:string ->
  addr:Mcmap_serve.Protocol.addr ->
  unit ->
  (result, string) Stdlib.result
(** [clients] (default 4) domains x [requests] (default 50) calls
    each; [distinct_plans] (default 8) seeded balanced plans cycled
    through; [bench] (default ["cruise"]) names the built-in benchmark
    whose system is served. [Error] when the benchmark is unknown or
    no client could connect. *)

val kernels : result -> (string * Schema.kernel) list
(** - [serve_rpc_ns]: round-trip latency dispersion (one sample per
      request);
    - [serve_rpc_p99_ns]: the 99th-percentile round trip;
    - [serve_throughput_ns_per_req]: wall clock over completed
      requests — the inverse of requests/sec, oriented so that lower
      is better like every other kernel. *)
