type verdict = Improved | Regressed | Noise | Added | Removed

type entry = {
  name : string;
  verdict : verdict;
  old_ns : float option;
  new_ns : float option;
  delta_pct : float;
  threshold_pct : float;
}

let verdict_to_string = function
  | Improved -> "improved"
  | Regressed -> "regressed"
  | Noise -> "noise"
  | Added -> "added"
  | Removed -> "removed"

(* Central value for comparison: the sample mean, whose dispersion we
   actually measured (the OLS slope has no comparable error bar in the
   file). *)
let mean_of (k : Schema.kernel) =
  if k.Schema.mean_ns > 0. then Some k.Schema.mean_ns else None

let classify ~min_rel ~z name (old_k : Schema.kernel)
    (new_k : Schema.kernel) =
  match (mean_of old_k, mean_of new_k) with
  | Some old_ns, Some new_ns ->
    let delta = (new_ns -. old_ns) /. old_ns in
    (* Significance: the change must beat [z] combined standard
       deviations of the two runs, and never less than [min_rel]. *)
    let sigma =
      sqrt
        ((old_k.Schema.stddev_ns ** 2.) +. (new_k.Schema.stddev_ns ** 2.))
      /. old_ns in
    let threshold = Float.max min_rel (z *. sigma) in
    let verdict =
      if delta > threshold then Regressed
      else if delta < -.threshold then Improved
      else Noise in
    { name; verdict; old_ns = Some old_ns; new_ns = Some new_ns;
      delta_pct = 100. *. delta; threshold_pct = 100. *. threshold }
  | None, Some new_ns ->
    { name; verdict = Added; old_ns = None; new_ns = Some new_ns;
      delta_pct = 0.; threshold_pct = 100. *. min_rel }
  | Some old_ns, None ->
    { name; verdict = Removed; old_ns = Some old_ns; new_ns = None;
      delta_pct = 0.; threshold_pct = 100. *. min_rel }
  | None, None ->
    { name; verdict = Noise; old_ns = None; new_ns = None;
      delta_pct = 0.; threshold_pct = 100. *. min_rel }

let diff ?(min_rel = 0.05) ?(z = 3.) (old_run : Schema.t)
    (new_run : Schema.t) =
  let names =
    List.sort_uniq compare
      (List.map fst old_run.Schema.kernels
       @ List.map fst new_run.Schema.kernels) in
  List.map
    (fun name ->
      match
        (Schema.find_kernel old_run name, Schema.find_kernel new_run name)
      with
      | Some o, Some n -> classify ~min_rel ~z name o n
      | None, Some n ->
        { name; verdict = Added; old_ns = None; new_ns = mean_of n;
          delta_pct = 0.; threshold_pct = 100. *. min_rel }
      | Some o, None ->
        { name; verdict = Removed; old_ns = mean_of o; new_ns = None;
          delta_pct = 0.; threshold_pct = 100. *. min_rel }
      | None, None -> assert false)
    names

let pp_ns = function
  | Some ns when ns >= 1e6 -> Printf.sprintf "%10.3f ms" (ns /. 1e6)
  | Some ns when ns >= 1e3 -> Printf.sprintf "%10.2f us" (ns /. 1e3)
  | Some ns -> Printf.sprintf "%10.1f ns" ns
  | None -> Printf.sprintf "%13s" "-"

let render entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-32s %13s %13s %9s %9s  %s\n" "kernel" "old" "new"
       "delta" "thresh" "verdict");
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%-32s %s %s %8.1f%% %8.1f%%  %s\n" e.name
           (pp_ns e.old_ns) (pp_ns e.new_ns) e.delta_pct e.threshold_pct
           (verdict_to_string e.verdict)))
    entries;
  let count v =
    List.length (List.filter (fun e -> e.verdict = v) entries) in
  Buffer.add_string b
    (Printf.sprintf
       "%d kernels: %d improved, %d regressed, %d noise, %d added, %d \
        removed\n"
       (List.length entries) (count Improved) (count Regressed)
       (count Noise) (count Added) (count Removed));
  Buffer.contents b

let regressions entries =
  List.filter_map
    (fun e -> if e.verdict = Regressed then Some e.name else None)
    entries

let gate ?baseline (run : Schema.t) =
  let failures = ref [] in
  let passes = ref [] in
  let fail msg = failures := msg :: !failures in
  let pass msg = passes := msg :: !passes in
  (* Every contract the run recorded must hold. *)
  List.iter
    (fun (name, (c : Schema.contract)) ->
      let detail =
        String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%.3g" k v)
             c.Schema.numbers) in
      if c.Schema.ok then pass (Printf.sprintf "contract %s (%s)" name detail)
      else fail (Printf.sprintf "contract %s violated (%s)" name detail))
    run.Schema.contracts;
  (* The flat-speedup contract is the reason the gate exists: its
     absence means the kernels did not run, which must not pass
     silently. *)
  if not (List.mem_assoc "flat_vs_reference" run.Schema.contracts) then
    fail "contract flat_vs_reference missing from BENCH.json";
  (match baseline with
   | None -> ()
   | Some old_run ->
     let entries = diff old_run run in
     (match regressions entries with
      | [] ->
        pass
          (Printf.sprintf "no regressions vs baseline (%d kernels)"
             (List.length entries))
      | regs ->
        List.iter
          (fun name -> fail (Printf.sprintf "kernel %s regressed" name))
          regs));
  match !failures with
  | [] -> Ok (List.rev !passes)
  | fs -> Error (List.rev fs)
