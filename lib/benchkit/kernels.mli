(** The Bechamel kernel suite behind [mcmap bench] and the bench
    harness: one micro-benchmark per table/figure kernel plus the
    evaluator-session and campaign kernels, measured with per-kernel
    dispersion (min/mean/stddev across the raw samples, OLS estimate
    for the central value).

    Running the suite is expensive (roughly [n_kernels] seconds at full
    quota); [fast] shrinks the per-kernel quota for CI smoke runs. *)

val fast_requested : unit -> bool
(** [MCMAP_BENCH_FAST=1] in the environment. *)

val names : string list
(** Kernel names in suite order (the BENCH.json [kernels] keys). *)

val run_all :
  ?fast:bool -> ?progress:(string -> unit) -> unit ->
  (string * Schema.kernel) list
(** Measure every kernel, calling [progress] with a human-readable line
    as each kernel finishes. [fast] defaults to {!fast_requested}.
    Returns measurements in suite order. *)

val contracts : (string * Schema.kernel) list -> (string * Schema.contract) list
(** The performance contracts derivable from a set of measurements:

    - ["flat_vs_reference"]: cold DT-large evaluation on the flat
      engine is at least 3x faster than on the reference engine.
    - ["obs_overhead"]: an enabled-recorder cold evaluation
      ([evaluator_cold_obs]) costs at most 2% over the disabled-recorder
      one — an upper bound on the disabled-mode instrumentation tax,
      since the disabled path does strictly less work. A difference
      within 3 combined standard deviations also passes (the contract
      must not flake on timer noise).

    Contracts whose kernels are missing are omitted. *)
