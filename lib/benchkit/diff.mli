(** Noise-aware comparison of two BENCH.json runs, and the CI gate.

    A kernel's verdict is decided against a per-kernel threshold that
    widens with measured dispersion: the relative change must clear
    both a floor ([min_rel], default 5%) and [z] (default 3) combined
    standard deviations before it counts as real. Timer noise therefore
    classifies as [Noise] rather than flipping CI red — and a genuine
    regression on a low-variance kernel is still caught at the 5%
    floor. *)

type verdict = Improved | Regressed | Noise | Added | Removed

type entry = {
  name : string;
  verdict : verdict;
  old_ns : float option;  (** mean ns/run in the old run *)
  new_ns : float option;  (** mean ns/run in the new run *)
  delta_pct : float;  (** relative change in percent, 0 when one-sided *)
  threshold_pct : float;
      (** the noise-aware significance threshold applied, in percent *)
}

val verdict_to_string : verdict -> string

val diff : ?min_rel:float -> ?z:float -> Schema.t -> Schema.t -> entry list
(** [diff old new] classifies every kernel present in either run,
    sorted by name. Deterministic: equal inputs give equal entries. *)

val render : entry list -> string
(** Human-readable table, one kernel per line, with a summary row. *)

val regressions : entry list -> string list
(** Names of the kernels whose verdict is [Regressed]. *)

val gate : ?baseline:Schema.t -> Schema.t -> (string list, string list) result
(** CI gate over a BENCH.json run: every recorded contract must hold
    ([ok = true]), at least the flat-speedup contract must be present,
    and — when a [baseline] run is supplied — no kernel may have
    regressed relative to it. [Ok] carries pass descriptions, [Error]
    the failures. *)
