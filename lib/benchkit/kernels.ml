module B = Mcmap_benchmarks
module H = Mcmap_hardening
module S = Mcmap_sched
module A = Mcmap_analysis
module Sim = Mcmap_sim
module D = Mcmap_dse
module E = Mcmap_experiments
module C = Mcmap_campaign
module Obs = Mcmap_obs.Obs

let fast_requested () = Sys.getenv_opt "MCMAP_BENCH_FAST" = Some "1"

(* ------------------------------------------------------------------ *)
(* Shared kernel contexts (forced on first use, shared across kernels) *)

let cruise_ctx =
  lazy
    (let bench = B.Cruise.benchmark () in
     let plan = List.hd (B.Cruise.sample_plans bench) in
     let happ =
       H.Happ.build bench.B.Benchmark.arch bench.B.Benchmark.apps plan in
     let js = S.Jobset.build happ in
     (js, S.Bounds.make js))

let dt_med = lazy (B.Registry.find_exn "dt-med")

(* Campaign kernel: one 512-trial shard of a cruise fault-injection
   campaign (the unit of work the campaign engine schedules across
   domains). BENCH.json's ns/run for this kernel gives trials/sec. *)
let campaign_shard =
  lazy
    (let bench = B.Cruise.benchmark () in
     let plan = List.hd (B.Cruise.sample_plans bench) in
     let config = { C.Shard.default_config with trials = 512;
                    shard_trials = 512 } in
     let cplan =
       C.Shard.plan config bench.B.Benchmark.arch bench.B.Benchmark.apps
         plan in
     (cplan, cplan.C.Shard.shards.(0)))

let micro_ga =
  { D.Ga.default_config with
    D.Ga.population = 8; offspring = 8; generations = 2;
    check_rescue = false }

(* Evaluator-session kernels (DT-large, the heaviest benchmark):
   [evaluator_cold] pays a fresh session + full analysis per run on the
   reference engine (pinned, so it stays the denominator of the flat
   speedup contract), [flat_cold] is the same cold evaluation on the
   flat kernel, [evaluator_cold_obs] is [evaluator_cold] with the
   metrics recorder enabled (the numerator of the obs-overhead
   contract), [evaluator_warm] queries a pre-warmed session (the
   result-cache hit path every optimisation loop rides on),
   [eval_population] evaluates a 16-plan population on a fresh
   multi-domain session per run. *)
let evaluator_ctx =
  lazy
    (let bench = B.Registry.find_exn "dt-large" in
     let arch = bench.B.Benchmark.arch
     and apps = bench.B.Benchmark.apps in
     let plan = B.Sampler.balanced_plan ~seed:42 arch apps in
     let population =
       Array.init 16 (fun i -> B.Sampler.plan ~seed:(100 + i) arch apps) in
     let warm = D.Evaluator.create arch apps in
     ignore (D.Evaluator.eval warm plan);
     let domains = min 4 (Mcmap_util.Parallel.recommended_domains ()) in
     (arch, apps, plan, population, warm, domains))

(* [noc_cold]: the same cold session + full analysis on the mesh-NoC
   variant of DT-large — exercises the dense delay-table path the
   interconnect backend precomputes at [Arch.make]. *)
let noc_ctx =
  lazy
    (let bench = B.Registry.find_exn "dt-large-noc" in
     let arch = bench.B.Benchmark.arch
     and apps = bench.B.Benchmark.apps in
     let plan = B.Sampler.balanced_plan ~seed:42 arch apps in
     (arch, apps, plan))

let evaluator_cold_run () =
  let arch, apps, plan, _, _, _ = Lazy.force evaluator_ctx in
  let session =
    D.Evaluator.create ~engine:D.Evaluator.Reference arch apps in
  ignore (D.Evaluator.eval session plan)

(* A kernel is a Bechamel test plus optional bracketing (used to flip
   the metrics recorder around [evaluator_cold_obs] without timing the
   flip itself). *)
type kernel_spec = {
  k_name : string;
  k_test : Bechamel.Test.t;
  k_setup : unit -> unit;
  k_teardown : unit -> unit;
}

let nothing () = ()

let plain name f =
  { k_name = name;
    k_test = Bechamel.Test.make ~name (Bechamel.Staged.stage f);
    k_setup = nothing; k_teardown = nothing }

let suite =
  [ (* Table 2 column "Proposed": one full Algorithm 1 run *)
    plain "table2/proposed(algorithm1)" (fun () ->
        let _, ctx = Lazy.force cruise_ctx in
        ignore (A.Wcrt.analyze ctx));
    (* Table 2 column "Naive" *)
    plain "table2/naive" (fun () ->
        let _, ctx = Lazy.force cruise_ctx in
        ignore (A.Naive.analyze ctx));
    (* Table 2 column "Adhoc": one worst-trace simulation *)
    plain "table2/adhoc(sim)" (fun () ->
        let js, _ = Lazy.force cruise_ctx in
        ignore (Sim.Adhoc.run js));
    (* Table 2 column "WC-Sim": 10 Monte-Carlo profiles *)
    plain "table2/wcsim(10 profiles)" (fun () ->
        let js, _ = Lazy.force cruise_ctx in
        ignore (Sim.Monte_carlo.run ~profiles:10 js));
    (* E2/E3/E4 kernel: one micro GA run on DT-med *)
    plain "fig5/dse(micro GA, dt-med)" (fun () ->
        let bench = Lazy.force dt_med in
        ignore
          (D.Ga.optimize micro_ga bench.B.Benchmark.arch
             bench.B.Benchmark.apps));
    (* E6 kernel: the static worst-case list schedule *)
    plain "table1/static list schedule" (fun () ->
        let js, _ = Lazy.force cruise_ctx in
        ignore (S.Static_schedule.worst_case js));
    (* E5 kernel: the Figure 1 scenario *)
    plain "fig1/motivational" (fun () -> ignore (E.Fig1.run ()));
    (* Campaign kernel: one 512-trial importance-sampling shard *)
    plain "campaign/shard(512 trials)" (fun () ->
        let cplan, shard = Lazy.force campaign_shard in
        ignore (C.Shard.execute cplan shard));
    (* Evaluator sessions: cold vs flat vs warm vs population *)
    plain "evaluator_cold" evaluator_cold_run;
    plain "flat_cold" (fun () ->
        let arch, apps, plan, _, _, _ = Lazy.force evaluator_ctx in
        let session =
          D.Evaluator.create ~engine:D.Evaluator.Flat arch apps in
        ignore (D.Evaluator.eval session plan));
    plain "noc_cold" (fun () ->
        let arch, apps, plan = Lazy.force noc_ctx in
        let session = D.Evaluator.create arch apps in
        ignore (D.Evaluator.eval session plan));
    { (plain "evaluator_cold_obs" evaluator_cold_run) with
      k_setup = (fun () -> Obs.enable ());
      (* Drop the garbage the benchmark recorded; the harness snapshots
         its metrics before the micro-benchmarks run. *)
      k_teardown = (fun () -> Obs.disable (); Obs.reset ()) };
    plain "evaluator_warm" (fun () ->
        let _, _, plan, _, warm, _ = Lazy.force evaluator_ctx in
        ignore (D.Evaluator.eval warm plan));
    plain "eval_population" (fun () ->
        let arch, apps, _, population, _, domains =
          Lazy.force evaluator_ctx in
        let session = D.Evaluator.create ~domains arch apps in
        ignore (D.Evaluator.eval_population session population)) ]

let names = List.map (fun k -> k.k_name) suite

(* ------------------------------------------------------------------ *)
(* Measurement *)

(* Raw per-sample cost: each Bechamel sample aggregates [run] calls of
   the kernel, so ns/run for the sample is clock/runs. The OLS slope
   over the same points is the central estimate; min/mean/stddev over
   the per-sample ratios expose the dispersion the slope hides. *)
let dispersion (b : Bechamel.Benchmark.t) =
  let module M = Bechamel.Measurement_raw in
  let samples =
    Array.to_list b.Bechamel.Benchmark.lr
    |> List.filter_map (fun m ->
           let runs = M.run m in
           if runs <= 0. then None
           else Some (M.get ~label:"monotonic-clock" m /. runs)) in
  match samples with
  | [] -> (0., 0., 0., 0)
  | _ ->
    let n = float_of_int (List.length samples) in
    let mn = List.fold_left min infinity samples in
    let mean = List.fold_left ( +. ) 0. samples /. n in
    let var =
      List.fold_left
        (fun acc x -> acc +. ((x -. mean) ** 2.))
        0. samples
      /. n in
    (mn, mean, sqrt var, List.length samples)

let measure ~fast spec =
  let open Bechamel in
  spec.k_setup ();
  Fun.protect ~finally:spec.k_teardown (fun () ->
      let cfg =
        Benchmark.cfg ~limit:2000
          ~quota:(Time.second (if fast then 0.25 else 1.0))
          ~kde:(Some 100) () in
      let instance = Toolkit.Instance.monotonic_clock in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true
          ~predictors:[| Measure.run |] in
      let raws = Benchmark.all cfg [ instance ] spec.k_test in
      let stats = Analyze.all ols instance raws in
      let estimate =
        match Hashtbl.find_opt stats spec.k_name with
        | Some r ->
          (match Analyze.OLS.estimates r with
           | Some [ ns ] -> Some ns
           | Some _ | None -> None)
        | None -> None in
      let min_ns, mean_ns, stddev_ns, samples =
        match Hashtbl.find_opt raws spec.k_name with
        | Some b -> dispersion b
        | None -> (0., 0., 0., 0) in
      { Schema.ns_per_run = estimate; min_ns; mean_ns; stddev_ns;
        samples })

let run_all ?fast ?(progress = fun _ -> ()) () =
  let fast = Option.value fast ~default:(fast_requested ()) in
  List.map
    (fun spec ->
      let k = measure ~fast spec in
      (match k.Schema.ns_per_run with
       | Some ns ->
         progress
           (Printf.sprintf "%-32s %12.1f ns/run (%8.3f ms) ±%.1f%%"
              spec.k_name ns (ns /. 1e6)
              (if k.Schema.mean_ns > 0. then
                 100. *. k.Schema.stddev_ns /. k.Schema.mean_ns
               else 0.))
       | None -> progress (Printf.sprintf "%-32s (no estimate)" spec.k_name));
      (spec.k_name, k))
    suite

(* ------------------------------------------------------------------ *)
(* Contracts *)

let central (k : Schema.kernel) =
  match k.Schema.ns_per_run with
  | Some ns when ns > 0. -> Some ns
  | Some _ | None -> if k.Schema.mean_ns > 0. then Some k.Schema.mean_ns else None

let flat_contract kernels =
  match
    (List.assoc_opt "evaluator_cold" kernels,
     List.assoc_opt "flat_cold" kernels)
  with
  | Some reference, Some flat ->
    (match (central reference, central flat) with
     | Some reference_ns, Some flat_ns ->
       let min_speedup = 3.0 in
       let speedup = reference_ns /. flat_ns in
       [ ( "flat_vs_reference",
           { Schema.ok = speedup >= min_speedup;
             numbers =
               [ ("reference_ns", reference_ns); ("flat_ns", flat_ns);
                 ("speedup", speedup); ("min_speedup", min_speedup) ] } ) ]
     | _ -> [])
  | _ -> []

(* Enabled-recorder overhead on the cold-evaluation kernel. The
   disabled path does strictly less work per call site (one
   load-and-branch versus branch + record), so this bounds the
   disabled-mode tax from above. Pass when within budget or within
   timer noise (3 combined sigmas) — a contract that flakes teaches CI
   to ignore it. *)
let obs_contract kernels =
  match
    (List.assoc_opt "evaluator_cold" kernels,
     List.assoc_opt "evaluator_cold_obs" kernels)
  with
  | Some off, Some on
    when off.Schema.mean_ns > 0. && on.Schema.mean_ns > 0. ->
    let max_pct = 2.0 in
    let overhead_pct =
      100. *. (on.Schema.mean_ns -. off.Schema.mean_ns)
      /. off.Schema.mean_ns in
    let sigma =
      sqrt
        ((off.Schema.stddev_ns ** 2.) +. (on.Schema.stddev_ns ** 2.)) in
    let within_noise =
      abs_float (on.Schema.mean_ns -. off.Schema.mean_ns) <= 3. *. sigma in
    [ ( "obs_overhead",
        { Schema.ok = overhead_pct <= max_pct || within_noise;
          numbers =
            [ ("disabled_ns", off.Schema.mean_ns);
              ("enabled_ns", on.Schema.mean_ns);
              ("overhead_pct", overhead_pct); ("max_pct", max_pct);
              ("sigma_ns", sigma) ] } ) ]
  | _ -> []

let contracts kernels = flat_contract kernels @ obs_contract kernels
