(** The BENCH.json schema: the machine-readable contract between the
    bench harness, [mcmap bench diff]/[gate] and CI.

    Version 2 restructures the flat v1 layout (bare
    [kernels_ns_per_run] numbers) into per-kernel dispersion records —
    the OLS estimate plus min/mean/stddev across the raw Bechamel
    samples — an [env] block identifying the machine, and a [contracts]
    block of named pass/fail checks. {!of_json} rejects any other
    version: trend tooling must never silently compare files whose
    fields mean different things. *)

type kernel = {
  ns_per_run : float option;
      (** OLS estimate (slope of time vs runs); [None] when the fit
          failed *)
  min_ns : float;  (** fastest raw sample, ns per run *)
  mean_ns : float;
  stddev_ns : float;
  samples : int;  (** raw samples behind the three numbers above *)
}

type contract = {
  ok : bool;
  numbers : (string * float) list;
      (** the evidence, e.g. [("speedup", 4.2); ("min_speedup", 3.0)] *)
}

type t = {
  fast : bool;  (** produced under MCMAP_BENCH_FAST=1 *)
  env : (string * string) list;  (** sorted by key *)
  kernels : (string * kernel) list;  (** sorted by name *)
  metrics : (string * Mcmap_util.Json.t) list;
      (** observability snapshot summaries, as written *)
  contracts : (string * contract) list;  (** sorted by name *)
}

val version : int
(** The schema version this module reads and writes (2). *)

val env_now : unit -> (string * string) list
(** Identity of the producing toolchain/machine: OS type, word size,
    OCaml version, recommended domain count. *)

val find_kernel : t -> string -> kernel option

val to_json : t -> Mcmap_util.Json.t

val of_json : Mcmap_util.Json.t -> (t, string) result
(** Rejects documents whose [schema_version] is not {!version}. *)

val write : string -> t -> unit

val read : string -> (t, string) result
(** Read and parse a BENCH.json file ([Error] on IO, parse or schema
    mismatch). *)
