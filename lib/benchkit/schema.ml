module Json = Mcmap_util.Json
module Parallel = Mcmap_util.Parallel

let version = 2

type kernel = {
  ns_per_run : float option;
  min_ns : float;
  mean_ns : float;
  stddev_ns : float;
  samples : int;
}

type contract = {
  ok : bool;
  numbers : (string * float) list;
}

type t = {
  fast : bool;
  env : (string * string) list;
  kernels : (string * kernel) list;
  metrics : (string * Json.t) list;
  contracts : (string * contract) list;
}

let env_now () =
  [ ("ocaml_version", Sys.ocaml_version);
    ("os_type", Sys.os_type);
    ("recommended_domains",
     string_of_int (Parallel.recommended_domains ()));
    ("word_size", string_of_int Sys.word_size) ]

let find_kernel t name = List.assoc_opt name t.kernels

(* ------------------------------------------------------------------ *)
(* Writing *)

let json_of_kernel k =
  Json.Obj
    [ ( "ns_per_run",
        match k.ns_per_run with
        | Some ns -> Json.Float ns
        | None -> Json.Null );
      ("min_ns", Json.Float k.min_ns);
      ("mean_ns", Json.Float k.mean_ns);
      ("stddev_ns", Json.Float k.stddev_ns);
      ("samples", Json.Int k.samples) ]

let json_of_contract c =
  Json.Obj
    (("ok", Json.Bool c.ok)
     :: List.map (fun (k, v) -> (k, Json.Float v)) c.numbers)

let to_json t =
  Json.Obj
    [ ("schema_version", Json.Int version);
      ("fast", Json.Bool t.fast);
      ( "env",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.String v))
             (List.sort compare t.env)) );
      ( "kernels",
        Json.Obj
          (List.map
             (fun (name, k) -> (name, json_of_kernel k))
             (List.sort compare t.kernels)) );
      ( "contracts",
        Json.Obj
          (List.map
             (fun (name, c) -> (name, json_of_contract c))
             (List.sort compare t.contracts)) );
      ("metrics", Json.Obj t.metrics) ]

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Reading *)

let ( let* ) = Result.bind

let number ctx = function
  | Json.Int n -> Ok (float_of_int n)
  | Json.Float f -> Ok f
  | _ -> Error (ctx ^ ": expected a number")

let field ctx key json =
  match Json.member key json with
  | Some v -> Ok v
  | None -> Error (ctx ^ ": missing field " ^ key)

let kernel_of_json name json =
  let num key =
    let* v = field name key json in
    number (name ^ "." ^ key) v in
  let* ns_per_run =
    match Json.member "ns_per_run" json with
    | Some Json.Null | None -> Ok None
    | Some v -> Result.map Option.some (number (name ^ ".ns_per_run") v) in
  let* min_ns = num "min_ns" in
  let* mean_ns = num "mean_ns" in
  let* stddev_ns = num "stddev_ns" in
  let* samples = Result.map int_of_float (num "samples") in
  Ok { ns_per_run; min_ns; mean_ns; stddev_ns; samples }

let contract_of_json name json =
  match json with
  | Json.Obj fields ->
    let* ok =
      match Json.member "ok" json with
      | Some (Json.Bool b) -> Ok b
      | Some _ | None -> Error (name ^ ": missing boolean field ok") in
    let numbers =
      List.filter_map
        (fun (k, v) ->
          match v with
          | Json.Int n -> Some (k, float_of_int n)
          | Json.Float f -> Some (k, f)
          | _ -> None)
        fields in
    Ok { ok; numbers }
  | _ -> Error (name ^ ": expected a contract object")

let assoc_obj ctx key json =
  match Json.member key json with
  | Some (Json.Obj fields) -> Ok fields
  | Some _ -> Error (ctx ^ ": " ^ key ^ " must be an object")
  | None -> Ok []

let map_fields f fields =
  List.fold_left
    (fun acc (name, v) ->
      let* items = acc in
      let* item = f name v in
      Ok ((name, item) :: items))
    (Ok []) fields
  |> Result.map List.rev

let of_json json =
  let* () =
    match Json.member "schema_version" json with
    | Some (Json.Int v) when v = version -> Ok ()
    | Some (Json.Int v) ->
      Error
        (Printf.sprintf
           "BENCH schema version mismatch: file has %d, this tool reads \
            %d — regenerate both runs with the same mcmap"
           v version)
    | Some _ -> Error "schema_version: expected an integer"
    | None -> Error "not a BENCH.json v2 document (no schema_version)" in
  let fast =
    match Json.member "fast" json with
    | Some (Json.Bool b) -> b
    | Some _ | None -> false in
  let* env_fields = assoc_obj "BENCH" "env" json in
  let env =
    List.filter_map
      (fun (k, v) ->
        match v with Json.String s -> Some (k, s) | _ -> None)
      env_fields in
  let* kernel_fields = assoc_obj "BENCH" "kernels" json in
  let* kernels = map_fields kernel_of_json kernel_fields in
  let* contract_fields = assoc_obj "BENCH" "contracts" json in
  let* contracts = map_fields contract_of_json contract_fields in
  let* metrics = assoc_obj "BENCH" "metrics" json in
  Ok { fast; env; kernels; metrics; contracts }

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    let* json = Json.parse contents in
    of_json json
