module Protocol = Mcmap_serve.Protocol
module Client = Mcmap_serve.Client
module Spec = Mcmap_spec.Spec
module Sexp = Mcmap_util.Sexp
module Obs = Mcmap_obs.Obs
module B = Mcmap_benchmarks

type result = {
  requests : int;
  rejected : int;
  errors : int;
  wall_ns : int64;
  latencies_ns : int array;
}

type client_tally = {
  mutable c_rejected : int;
  mutable c_errors : int;
  c_latencies : int list ref;
}

let client_loop addr requests (schedule : Protocol.request_body array) =
  let tally =
    { c_rejected = 0; c_errors = 0; c_latencies = ref [] } in
  match Client.connect addr with
  | Error _ -> None
  | Ok c ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    for i = 0 to requests - 1 do
      let body = schedule.(i mod Array.length schedule) in
      let req =
        { Protocol.id = Client.fresh_id c;
          deadline_ms = None;
          no_lint = true;
          body }
      in
      let t0 = Obs.now_ns () in
      match Client.call c req with
      | Ok { Protocol.r_body = Protocol.Analysis _; _ } ->
        let dt = Int64.to_int (Int64.sub (Obs.now_ns ()) t0) in
        tally.c_latencies := dt :: !(tally.c_latencies)
      | Ok { Protocol.r_body = Protocol.Rejected _; _ } ->
        tally.c_rejected <- tally.c_rejected + 1
      | Ok _ | Error _ -> tally.c_errors <- tally.c_errors + 1
    done;
    Some tally

let schedule_of bench distinct_plans =
  match B.Registry.find bench with
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %s (expected one of: %s)" bench
         (String.concat ", " B.Registry.names))
  | Some b ->
    let system =
      { Spec.arch = b.B.Benchmark.arch; apps = b.B.Benchmark.apps } in
    (match Sexp.parse (Spec.write_system system) with
     | Error e -> Error ("system forms: " ^ e)
     | Ok forms ->
       let plan_form seed =
         let plan =
           B.Sampler.balanced_plan ~seed b.B.Benchmark.arch
             b.B.Benchmark.apps
         in
         match Sexp.parse_one (Spec.write_plan system plan) with
         | Ok f -> f
         | Error e -> failwith ("plan form: " ^ e)
       in
       (try
          Ok
            (Array.init (max 1 distinct_plans) (fun i ->
                 Protocol.Analyze
                   { system = forms; plan = Some (plan_form (i + 1)) }))
        with Failure e -> Error e))

let run ?(clients = 4) ?(requests = 50) ?(distinct_plans = 8)
    ?(bench = "cruise") ~addr () =
  if clients < 1 then invalid_arg "Loadgen.run: clients < 1";
  if requests < 1 then invalid_arg "Loadgen.run: requests < 1";
  match schedule_of bench distinct_plans with
  | Error _ as e -> e
  | Ok schedule ->
    let t0 = Obs.now_ns () in
    let domains =
      Array.init clients (fun _ ->
          Domain.spawn (fun () -> client_loop addr requests schedule))
    in
    let tallies = Array.map Domain.join domains in
    let wall_ns = Int64.sub (Obs.now_ns ()) t0 in
    if Array.exists Option.is_none tallies then
      Error "a load-generator client could not connect"
    else begin
      let rejected = ref 0 and errors = ref 0 and lats = ref [] in
      Array.iter
        (fun t ->
          let t = Option.get t in
          rejected := !rejected + t.c_rejected;
          errors := !errors + t.c_errors;
          lats := !(t.c_latencies) @ !lats)
        tallies;
      let latencies_ns = Array.of_list !lats in
      Array.sort compare latencies_ns;
      Ok
        { requests = Array.length latencies_ns;
          rejected = !rejected;
          errors = !errors;
          wall_ns;
          latencies_ns }
    end

let dispersion samples =
  let n = Array.length samples in
  let mean =
    Array.fold_left (fun a v -> a +. float_of_int v) 0. samples
    /. float_of_int n
  in
  let var =
    if n < 2 then 0.
    else
      Array.fold_left
        (fun a v ->
          let d = float_of_int v -. mean in
          a +. (d *. d))
        0. samples
      /. float_of_int (n - 1)
  in
  (mean, sqrt var)

let kernels r =
  if Array.length r.latencies_ns = 0 then []
  else begin
    let n = Array.length r.latencies_ns in
    let mean, stddev = dispersion r.latencies_ns in
    let p99 =
      float_of_int
        r.latencies_ns.(min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1))
    in
    let per_req =
      Int64.to_float r.wall_ns /. float_of_int (max 1 r.requests) in
    [ ("serve_rpc_ns",
       { Schema.ns_per_run = Some mean;
         min_ns = float_of_int r.latencies_ns.(0);
         mean_ns = mean;
         stddev_ns = stddev;
         samples = n });
      ("serve_rpc_p99_ns",
       { Schema.ns_per_run = Some p99;
         min_ns = p99;
         mean_ns = p99;
         stddev_ns = 0.;
         samples = n });
      ("serve_throughput_ns_per_req",
       { Schema.ns_per_run = Some per_req;
         min_ns = per_req;
         mean_ns = per_req;
         stddev_ns = 0.;
         samples = r.requests }) ]
  end
