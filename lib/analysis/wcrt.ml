module Bounds = Mcmap_sched.Bounds
module Jobset = Mcmap_sched.Jobset
module Job = Mcmap_sched.Job
module Happ = Mcmap_hardening.Happ
module Obs = Mcmap_obs.Obs

type report = {
  wcrt : Verdict.t array;
  normal_wcrt : Verdict.t array;
  required_wcrt : Verdict.t array;
  scenarios : int;
}

(* The per-job execution bounds of one trigger scenario (Algorithm 1,
   lines 12-29), at job granularity. [nb] are the normal-state bounds;
   [base] is the application hyperperiod — the critical state ends (and
   dropped applications are restored) at its next multiple after the
   fault, so over multi-hyperperiod horizons a job is only *certainly*
   dropped when it is also released inside the earliest possible
   critical window of the trigger. *)
(* A non-triggering job only sees the trigger through two scalars: the
   earliest time the fault can occur ([min_start] of the trigger) and the
   latest time it can surface ([max_finish]). The evaluator session
   exploits this: a trigger in another processor component is fully
   summarised by that pair, so scenario analyses can be memoised per
   component and shared between all external triggers with equal pairs. *)
let external_exec ~base ~min_start ~max_finish
    (nb : Bounds.job_bounds array) (w : Job.t) =
  if nb.(w.Job.id).Bounds.max_finish < min_start then
    (* Certainly completed before the first fault: normal state. *)
    Bounds.nominal_exec w
  else if w.Job.in_dropped_set then begin
    let earliest_restore = ((min_start / base) + 1) * base in
    if nb.(w.Job.id).Bounds.min_start > max_finish
       && w.Job.release < earliest_restore then
      (0, 0) (* certainly dropped: never released *)
    else (0, w.Job.wcet) (* transition: either executed or dropped *)
  end
  else if w.Job.passive then (0, w.Job.wcet) (* may be invoked *)
  else (w.Job.bcet, w.Job.critical_wcet)

let scenario_exec ~base (nb : Bounds.job_bounds array) (v : Job.t)
    (w : Job.t) =
  if w.Job.id = v.Job.id then begin
    (* The triggering job experiences the fault: a passive spare is
       actually invoked, a re-executable job re-runs per Eq. (1). *)
    if w.Job.passive then (0, w.Job.wcet)
    else (w.Job.bcet, w.Job.critical_wcet)
  end
  else
    external_exec ~base ~min_start:nb.(v.Job.id).Bounds.min_start
      ~max_finish:nb.(v.Job.id).Bounds.max_finish nb w

let analyze_spanned ?max_iterations ctx =
  let js = Bounds.jobset ctx in
  let happ = js.Jobset.happ in
  let n_graphs = Happ.n_graphs happ in
  let normal = Bounds.analyze ?max_iterations ctx ~exec:Bounds.nominal_exec in
  let per_graph result =
    Array.init n_graphs (fun graph ->
        Verdict.of_option (Bounds.graph_wcrt js result ~graph)) in
  let normal_wcrt = per_graph normal in
  let wcrt = Array.copy normal_wcrt in
  let required_wcrt = Array.copy normal_wcrt in
  let scenarios = ref 0 in
  let base = js.Jobset.base_hyperperiod in
  if normal.Bounds.converged then
    List.iter
      (fun (v : Job.t) ->
        incr scenarios;
        let exec = scenario_exec ~base normal.Bounds.bounds v in
        let res = Bounds.analyze ?max_iterations ctx ~exec in
        let scenario_wcrt = per_graph res in
        for g = 0 to n_graphs - 1 do
          wcrt.(g) <- Verdict.max wcrt.(g) scenario_wcrt.(g);
          (* Dropped-set graphs owe their deadline only while alive, i.e.
             in the normal state; all others owe it in every scenario. *)
          if not (Happ.graph_in_dropped_set happ g) then
            required_wcrt.(g) <- Verdict.max required_wcrt.(g)
                scenario_wcrt.(g)
        done)
      (Jobset.triggers js)
  else begin
    Array.fill wcrt 0 n_graphs Verdict.Unbounded;
    Array.fill required_wcrt 0 n_graphs Verdict.Unbounded
  end;
  let report = { wcrt; normal_wcrt; required_wcrt; scenarios = !scenarios } in
  if Obs.enabled () then begin
    Obs.incr "wcrt.analyses";
    Obs.observe "wcrt.scenarios" report.scenarios;
    Array.iter
      (function
        | Verdict.Finite _ -> Obs.incr "wcrt.verdict.finite"
        | Verdict.Unbounded -> Obs.incr "wcrt.verdict.unbounded")
      report.wcrt
  end;
  report

let analyze ?max_iterations ctx =
  Obs.with_span "wcrt.analyze" (fun () -> analyze_spanned ?max_iterations ctx)

let schedulable js report =
  let happ = js.Jobset.happ in
  let ok = ref true in
  Array.iteri
    (fun g verdict ->
      let deadline = Happ.deadline (Happ.graph happ g) in
      if not (Verdict.within verdict deadline) then ok := false)
    report.required_wcrt;
  !ok

let pp_report js ppf report =
  let happ = js.Jobset.happ in
  Format.fprintf ppf "@[<v>WCRT report (%d trigger scenarios):@,"
    report.scenarios;
  Array.iteri
    (fun g verdict ->
      let hg = Happ.graph happ g in
      Format.fprintf ppf "  %s: wcrt=%a normal=%a required=%a deadline=%d@,"
        hg.Happ.source.Mcmap_model.Graph.name Verdict.pp verdict Verdict.pp
        report.normal_wcrt.(g) Verdict.pp report.required_wcrt.(g)
        (Happ.deadline hg))
    report.wcrt;
  Format.fprintf ppf "@]"
