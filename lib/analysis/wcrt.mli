(** Algorithm 1 of the paper: safe WCRT analysis of fault-tolerant
    mixed-criticality systems with run-time task dropping.

    The analysis first derives normal-state bounds (no fault: passive
    spares silent, re-executables at their nominal cost), then enumerates
    every job [v] that can trigger the transition to the critical state
    (re-executable or passive spare) and re-analyses the system with
    per-job execution bounds adjusted by chronology (Fig. 3):

    - jobs that certainly complete before [v] can first start
      ([maxFinish_w < minStart_v]) keep their normal-state bounds;
    - jobs of dropped-set graphs that certainly start after [v]'s
      worst-case completion are certainly dropped — [[0, 0]];
    - jobs of dropped-set graphs overlapping the transition may either
      run or be dropped — [[0, wcet]];
    - remaining (non-dropped) jobs use their critical-state worst case:
      Eq. (1) for re-executables, possible invocation for passive
      spares.

    The per-graph result is the maximum over the normal state and all
    trigger scenarios. *)

type report = {
  wcrt : Verdict.t array;
      (** per source graph: WCRT over normal state and all trigger
          scenarios — the value Table 2 reports *)
  normal_wcrt : Verdict.t array;
      (** per source graph: normal-state-only WCRT *)
  required_wcrt : Verdict.t array;
      (** the bound that must meet the deadline: graphs in the dropped
          set [T_d] only owe their deadline in the normal state (once
          dropped they provide no service), all other graphs owe it in
          every scenario *)
  scenarios : int;  (** number of trigger scenarios analysed *)
}

val analyze : ?max_iterations:int -> Mcmap_sched.Bounds.ctx -> report
(** Run Algorithm 1 on a prepared bounds context. [max_iterations]
    defaults to {!Mcmap_sched.Bounds.default_max_iterations}, the one
    shared fixed-point cap of the analysis stack — callers forwarding the
    option (evaluator sessions, the GA) inherit the same default and must
    not restate it. *)

val scenario_exec :
  base:int ->
  Mcmap_sched.Bounds.job_bounds array ->
  Mcmap_sched.Job.t ->
  Mcmap_sched.Job.t ->
  int * int
(** [scenario_exec ~base nb v w]: the per-job execution bounds of the
    trigger scenario of job [v], given normal-state bounds [nb] and the
    application hyperperiod [base] (Algorithm 1 lines 12-29 — the
    chronology cases documented above). Exposed for the evaluator
    session, which replays single-component scenarios incrementally. *)

val external_exec :
  base:int ->
  min_start:int ->
  max_finish:int ->
  Mcmap_sched.Bounds.job_bounds array ->
  Mcmap_sched.Job.t ->
  int * int
(** {!scenario_exec} for a trigger that lies outside the analysed jobset:
    every chronology case of a non-triggering job depends on the trigger
    only through its normal-state [min_start]/[max_finish], so a remote
    trigger is fully summarised by that pair. For a trigger [v] inside
    the jobset, [scenario_exec ~base nb v] and
    [external_exec ~base ~min_start:nb.(v.id).min_start
    ~max_finish:nb.(v.id).max_finish nb] agree on every other job. *)

val schedulable : Mcmap_sched.Jobset.t -> report -> bool
(** Every graph's [required_wcrt] meets its relative deadline. *)

val pp_report : Mcmap_sched.Jobset.t -> Format.formatter -> report -> unit
