module B = Mcmap_benchmarks
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique
module Happ = Mcmap_hardening.Happ
module Jobset = Mcmap_sched.Jobset
module Bounds = Mcmap_sched.Bounds
module Priority = Mcmap_sched.Priority
module Wcrt = Mcmap_analysis.Wcrt
module Verdict = Mcmap_analysis.Verdict

type k_sweep_row = {
  k : int;
  failure_rate : float;
  reliable : bool;
  wcrt : Verdict.t;
  schedulable : bool;
  power : float;
}

(* Replace the hardening of every critical task with k re-executions,
   keeping the balanced placement. *)
let with_uniform_k apps (plan : Plan.t) k =
  let decisions =
    Array.mapi
      (fun gi row ->
        let critical = not (Graph.is_droppable (Appset.graph apps gi)) in
        Array.map
          (fun (d : Plan.decision) ->
            if not critical then d
            else
              { d with
                Plan.technique =
                  (if k = 0 then Technique.No_hardening
                   else Technique.re_execution k);
                replica_procs = [||] })
          row)
      plan.Plan.decisions in
  Plan.make apps ~decisions ~dropped:(Array.copy plan.Plan.dropped)

let k_sweep ?(benchmark = "cruise") ?(seed = 42) () =
  let bench = B.Registry.find_exn benchmark in
  let arch = bench.B.Benchmark.arch and apps = bench.B.Benchmark.apps in
  let base = B.Sampler.balanced_plan ~seed arch apps in
  let criticals = Appset.critical_graphs apps in
  (* The four sweep points differ only in the hardening of critical
     tasks; a shared evaluator session reuses the hardened rows and
     utilisations of everything else. *)
  let session = Mcmap_dse.Evaluator.create arch apps in
  List.map
    (fun k ->
      let plan = with_uniform_k apps base k in
      let happ = Happ.build arch apps plan in
      let js = Jobset.build happ in
      let report = Wcrt.analyze (Bounds.make js) in
      let failure_rate =
        List.fold_left
          (fun acc g ->
            max acc
              (Mcmap_reliability.Analysis.graph_failure_rate arch apps plan
                 ~graph:g))
          0. criticals in
      let wcrt =
        List.fold_left
          (fun acc g -> Verdict.max acc report.Wcrt.required_wcrt.(g))
          (Verdict.Finite 0) criticals in
      { k; failure_rate;
        reliable =
          Mcmap_reliability.Analysis.violations arch apps plan = [];
        wcrt;
        schedulable = Wcrt.schedulable js report;
        power = Mcmap_dse.Evaluator.power session plan })
    [ 0; 1; 2; 3 ]

let render_k_sweep rows =
  let table =
    Mcmap_util.Texttable.create
      ~header:
        [ "k (re-executions)"; "Worst failure rate"; "Reliable";
          "Critical WCRT"; "Schedulable"; "Power" ] in
  List.iter
    (fun r ->
      Mcmap_util.Texttable.add_row table
        [ string_of_int r.k;
          Format.asprintf "%.2e" r.failure_rate;
          string_of_bool r.reliable;
          Format.asprintf "%a" Verdict.pp r.wcrt;
          string_of_bool r.schedulable;
          Format.asprintf "%.3f" r.power ])
    rows;
  Mcmap_util.Texttable.render table

type priority_row = {
  order : string;
  critical_wcrt : Verdict.t;
  droppable_wcrt : Verdict.t;
}

let priority_ablation ?(benchmark = "cruise") ?(seed = 42) () =
  let bench = B.Registry.find_exn benchmark in
  let arch = bench.B.Benchmark.arch and apps = bench.B.Benchmark.apps in
  let plan = B.Sampler.balanced_plan ~seed arch apps in
  let happ = Happ.build arch apps plan in
  let analyse label order =
    let js = Jobset.build ~priority_order:order happ in
    let report = Wcrt.analyze (Bounds.make js) in
    let worst graphs =
      List.fold_left
        (fun acc g -> Verdict.max acc report.Wcrt.required_wcrt.(g))
        (Verdict.Finite 0) graphs in
    { order = label;
      critical_wcrt = worst (Appset.critical_graphs apps);
      droppable_wcrt = worst (Appset.droppable_graphs apps) } in
  [ analyse "rate-monotonic (default)" Priority.Rate_monotonic;
    analyse "criticality-first (ablation)" Priority.Criticality_first ]

let render_priority rows =
  let table =
    Mcmap_util.Texttable.create
      ~header:[ "Priority order"; "Critical WCRT"; "Droppable WCRT" ] in
  List.iter
    (fun r ->
      Mcmap_util.Texttable.add_row table
        [ r.order;
          Format.asprintf "%a" Verdict.pp r.critical_wcrt;
          Format.asprintf "%a" Verdict.pp r.droppable_wcrt ])
    rows;
  Mcmap_util.Texttable.render table
