(** Experiment E1 — Table 2 of the paper: WCRT of the two critical
    applications of the *Cruise* benchmark under three sample mappings,
    comparing four estimates:

    - {b Adhoc}: the hand-built worst trace (critical from t = 0,
      maximal re-execution, all dropped-set tasks dropped);
    - {b WC-Sim}: Monte-Carlo over random failure profiles;
    - {b Proposed}: Algorithm 1;
    - {b Naive}: the static zero-bcet baseline.

    The safety relations the paper demonstrates — Proposed >= WC-Sim,
    Proposed >= Adhoc, Naive >= Proposed, and Adhoc occasionally below
    WC-Sim — are checked by {!safe}. *)

type row = {
  mapping : int;  (** 1-based sample-mapping index *)
  graph : string;  (** critical application name *)
  adhoc : int option;
  wcsim : int option;
  proposed : Mcmap_analysis.Verdict.t;
  naive : Mcmap_analysis.Verdict.t;
}

val run : ?profiles:int -> ?seed:int -> unit -> row list
(** Defaults: the paper's 10,000 Monte-Carlo profiles, seed 42. *)

val safe : row -> bool
(** Proposed upper-bounds both simulations and Naive upper-bounds
    Proposed. *)

val render : row list -> string
(** Plain-text table in the layout of the paper's Table 2. *)
