module B = Mcmap_benchmarks
module Happ = Mcmap_hardening.Happ
module Jobset = Mcmap_sched.Jobset
module Bounds = Mcmap_sched.Bounds
module Wcrt = Mcmap_analysis.Wcrt
module Naive = Mcmap_analysis.Naive
module Verdict = Mcmap_analysis.Verdict
module Graph = Mcmap_model.Graph

type row = {
  mapping : int;
  graph : string;
  adhoc : int option;
  wcsim : int option;
  proposed : Verdict.t;
  naive : Verdict.t;
}

let run ?(profiles = 10_000) ?(seed = 42) () =
  let bench = B.Cruise.benchmark () in
  let plans = B.Cruise.sample_plans bench in
  let criticals = B.Cruise.critical_graphs bench in
  List.concat
    (List.mapi
       (fun i plan ->
         let happ =
           Happ.build bench.B.Benchmark.arch bench.B.Benchmark.apps plan in
         let js = Jobset.build happ in
         let ctx = Bounds.make js in
         let report = Wcrt.analyze ctx in
         let naive = Naive.analyze ctx in
         let adhoc = Mcmap_sim.Adhoc.run js in
         let mc = Mcmap_sim.Monte_carlo.run ~profiles ~seed js in
         List.map
           (fun g ->
             { mapping = i + 1;
               graph = (Happ.graph happ g).Happ.source.Graph.name;
               adhoc = adhoc.(g);
               wcsim = mc.Mcmap_sim.Monte_carlo.graph_wcrt.(g);
               proposed = report.Wcrt.wcrt.(g);
               naive = naive.(g) })
           criticals)
       plans)

let safe row =
  let upper = Verdict.to_float row.proposed in
  let covers = function
    | Some observed -> float_of_int observed <= upper
    | None -> true in
  covers row.adhoc && covers row.wcsim
  && Verdict.to_float row.naive >= upper

let render rows =
  let table =
    Mcmap_util.Texttable.create
      ~header:
        [ "Mapping"; "Graph"; "Adhoc"; "WC-Sim"; "Proposed"; "Naive";
          "Safe" ] in
  let int_cell = function Some x -> string_of_int x | None -> "-" in
  List.iter
    (fun row ->
      Mcmap_util.Texttable.add_row table
        [ string_of_int row.mapping; row.graph; int_cell row.adhoc;
          int_cell row.wcsim;
          Format.asprintf "%a" Verdict.pp row.proposed;
          Format.asprintf "%a" Verdict.pp row.naive;
          (if safe row then "yes" else "NO") ])
    rows;
  Mcmap_util.Texttable.render table
