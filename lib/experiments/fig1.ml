module Arch = Mcmap_model.Arch
module Interconnect = Mcmap_model.Interconnect
module Proc = Mcmap_model.Proc
module Task = Mcmap_model.Task
module Channel = Mcmap_model.Channel
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset
module Criticality = Mcmap_model.Criticality
module Plan = Mcmap_hardening.Plan
module Happ = Mcmap_hardening.Happ
module Technique = Mcmap_hardening.Technique
module Jobset = Mcmap_sched.Jobset
module Job = Mcmap_sched.Job
module Engine = Mcmap_sim.Engine
module Fault_profile = Mcmap_sim.Fault_profile

type outcome = {
  normal_deadline_met : bool;
  fault_keep_deadline_met : bool;
  fault_drop_deadline_met : bool;
  normal_response : int option;
  fault_keep_response : int option;
  fault_drop_response : int option;
  deadline : int;
}

let deadline_high = 130

let scenario () =
  let proc id name =
    Proc.make ~id ~name ~fault_rate:1e-5 ~policy:Proc.Non_preemptive_fp () in
  let arch =
    Arch.make
    ~interconnect:(Interconnect.Bus { bandwidth = 2; latency = 1 })
      [| proc 0 "pe0"; proc 1 "pe1" |] in
  let high =
    Graph.make ~name:"high" ~deadline:deadline_high
      ~tasks:
        [| Task.make ~id:0 ~name:"A" ~wcet:40 ~bcet:30
             ~detection_overhead:4 ();
           Task.make ~id:1 ~name:"E" ~wcet:35 ~bcet:25 () |]
      ~channels:[| Channel.make ~src:0 ~dst:1 ~size:4 () |]
      ~period:200 ~criticality:(Criticality.critical 1e-3) () in
  let low =
    Graph.make ~name:"low" ~deadline:200
      ~tasks:
        [| Task.make ~id:0 ~name:"G" ~wcet:58 ~bcet:40 ();
           Task.make ~id:1 ~name:"H" ~wcet:60 ~bcet:45 () |]
      ~channels:[| Channel.make ~src:0 ~dst:1 ~size:4 () |]
      ~period:200 ~criticality:(Criticality.droppable 1.0) () in
  let apps = Appset.make [| high; low |] in
  let d technique proc =
    { Plan.technique; primary_proc = proc; replica_procs = [||];
      voter_proc = proc } in
  let decisions () =
    [| [| d (Technique.re_execution 1) 0 (* A on pe0 *);
          d Technique.No_hardening 1 (* E on pe1 *) |];
       [| d Technique.No_hardening 1 (* G on pe1 *);
          d Technique.No_hardening 1 (* H on pe1 *) |] |] in
  let keep =
    Plan.make apps ~decisions:(decisions ()) ~dropped:[| false; false |] in
  let drop =
    Plan.make apps ~decisions:(decisions ()) ~dropped:[| false; true |] in
  (arch, apps, keep, drop)

(* A fault profile where only task A's first attempt fails. *)
let fault_at_a js =
  { Fault_profile.none with
    Fault_profile.reexec_fault =
      (fun (j : Job.t) ~attempt ->
        attempt = 0
        && j.Job.graph = 0
        &&
        let ht =
          (Happ.graph js.Jobset.happ j.Job.graph).Happ.tasks.(j.Job.task) in
        ht.Happ.origin = 0) }

let run () =
  let arch, apps, keep, drop = scenario () in
  let response plan profile_of =
    let happ = Happ.build arch apps plan in
    let js = Jobset.build happ in
    let outcome = Engine.run js ~profile:(profile_of js) in
    (outcome.Engine.graph_response.(0), outcome.Engine.graph_deadline_ok.(0))
  in
  let normal_response, normal_ok =
    response keep (fun _ -> Fault_profile.none) in
  let fault_keep_response, keep_ok = response keep fault_at_a in
  let fault_drop_response, drop_ok = response drop fault_at_a in
  { normal_deadline_met = normal_ok;
    fault_keep_deadline_met = keep_ok;
    fault_drop_deadline_met = drop_ok;
    normal_response; fault_keep_response; fault_drop_response;
    deadline = deadline_high }

let render o =
  let cell = function Some r -> string_of_int r | None -> "-" in
  let verdict ok = if ok then "met" else "MISSED" in
  Format.asprintf
    "@[<v>Figure 1 motivational example (deadline of the critical \
     application: %d)@,\
     (b) no fault:              response %s, deadline %s@,\
     (c) fault, nothing dropped: response %s, deadline %s@,\
     (d) fault, low dropped:     response %s, deadline %s@]@."
    o.deadline (cell o.normal_response)
    (verdict o.normal_deadline_met)
    (cell o.fault_keep_response)
    (verdict o.fault_keep_deadline_met)
    (cell o.fault_drop_response)
    (verdict o.fault_drop_deadline_met)
