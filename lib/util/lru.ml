type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* towards most-recently-used *)
  mutable next : ('k, 'v) node option; (* towards least-recently-used *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
  mutable evictions : int;
}

let create ~capacity () =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { capacity; table = Hashtbl.create (max 16 (min capacity 1024));
    head = None; tail = None; evictions = 0 }

let capacity t = t.capacity

let length t = Hashtbl.length t.table

let evictions t = t.evictions

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
   | Some h -> h.prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.value

let mem t k = Hashtbl.mem t.table k

let add t k v =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.table k with
     | Some node ->
       node.value <- v;
       unlink t node;
       push_front t node
     | None ->
       if Hashtbl.length t.table >= t.capacity then begin
         match t.tail with
         | Some lru ->
           unlink t lru;
           Hashtbl.remove t.table lru.key;
           t.evictions <- t.evictions + 1
         | None -> assert false
       end;
       let node = { key = k; value = v; prev = None; next = None } in
       Hashtbl.replace t.table k node;
       push_front t node)
  end

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
