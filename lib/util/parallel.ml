let map_array ~domains f arr =
  if domains < 1 then invalid_arg "Parallel.map_array: domains < 1";
  let n = Array.length arr in
  if domains = 1 || n <= 1 then Array.map f arr
  else begin
    let out = Array.make n None in
    (* Self-scheduling: workers claim chunks of indices from a shared
       atomic cursor, so a domain that drew cheap elements comes back
       for more instead of idling (fixed striping stalls on the slowest
       stripe when element costs vary, e.g. campaign shards of different
       strata). Results are still written by index, so the output is
       identical to [Array.map f arr] regardless of claim order. *)
    let chunk = max 1 (n / (domains * 8)) in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec claim () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            out.(i) <- Some (f arr.(i))
          done;
          claim ()
        end in
      claim () in
    let workers =
      List.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join workers;
    Array.map
      (function
        | Some x -> x
        | None -> assert false)
      out
  end

let recommended_domains () = min 8 (Domain.recommended_domain_count ())
