(** Descriptive statistics over float samples (experiment reporting). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  minimum : float;
  maximum : float;
}

val summarize : float list -> summary
(** Single-pass Welford summary. Empty input yields zeros. *)

val mean : float list -> float

val percentile : float list -> float -> float
(** [percentile samples p] with [p] in [\[0, 100\]], nearest-rank method.
    @raise Invalid_argument on an empty list. *)

val ratio_pct : int -> int -> float
(** [ratio_pct num den] is [100 * num / den] as float; 0 when [den = 0]. *)

val wilson_interval :
  ?z:float -> successes:int -> trials:int -> unit -> float * float
(** Wilson score confidence interval [(lo, hi)] for a binomial
    proportion at critical value [z] (default 1.96, the 95% level).
    Unlike the normal approximation it stays within [\[0, 1\]] and
    behaves sensibly at 0 or [trials] successes.
    @raise Invalid_argument when [trials <= 0] or [successes] is out of
    range. *)

val clopper_pearson :
  ?alpha:float -> successes:int -> trials:int -> unit -> float * float
(** Exact (Clopper-Pearson) binomial confidence interval [(lo, hi)] at
    confidence level [1 - alpha] (default [alpha = 0.05], the 95% level).
    Unlike {!wilson_interval} it is conservative by construction and
    behaves correctly at 0 successes — the common case for rare-event
    estimation, where Wilson's normal inversion is anti-conservative.
    [successes = 0] gives [lo = 0]; [successes = trials] gives [hi = 1].
    @raise Invalid_argument when [trials <= 0], [successes] is out of
    range, or [alpha] is outside (0, 1). *)

val betai : a:float -> b:float -> float -> float
(** Regularized incomplete beta function [I_x(a, b)] (continued-fraction
    evaluation); the binomial CDF is [P(X <= k) = I_{1-p}(n-k, k+1)].
    Exposed for tests and other exact tail computations.
    @raise Invalid_argument on nonpositive shape parameters. *)

(** {1 Weighted-sample moments}

    Moment sums of per-trial weighted indicators [w_i * 1(fail_i)] from
    a likelihood-ratio (importance-sampling) estimator. Only the sums
    are kept, so shard summaries merge by addition and the pooled mean,
    variance and normal interval are exact regardless of sharding. *)

type weighted = {
  count : int;
  sum : float;  (** sum of samples *)
  sumsq : float;  (** sum of squared samples *)
}

val weighted_empty : weighted

val weighted_add : weighted -> float -> weighted

val weighted_merge : weighted -> weighted -> weighted
(** Pool two summaries (commutative and associative). *)

val weighted_of_sums : count:int -> sum:float -> sumsq:float -> weighted
(** Rebuild a summary from streamed sums (checkpoint replay).
    @raise Invalid_argument when [count < 0]. *)

val weighted_mean : weighted -> float
(** 0 on an empty summary. *)

val weighted_variance : weighted -> float
(** Unbiased sample variance; 0 when [count < 2]. *)

val weighted_interval : ?z:float -> weighted -> float * float
(** Normal confidence interval on the mean at critical value [z]
    (default 1.96); the lower bound is clamped to 0 (the estimators
    average non-negative samples).
    @raise Invalid_argument on an empty summary. *)

val pp_summary : Format.formatter -> summary -> unit
