(** Descriptive statistics over float samples (experiment reporting). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  minimum : float;
  maximum : float;
}

val summarize : float list -> summary
(** Single-pass Welford summary. Empty input yields zeros. *)

val mean : float list -> float

val percentile : float list -> float -> float
(** [percentile samples p] with [p] in [\[0, 100\]], nearest-rank method.
    @raise Invalid_argument on an empty list. *)

val ratio_pct : int -> int -> float
(** [ratio_pct num den] is [100 * num / den] as float; 0 when [den = 0]. *)

val wilson_interval :
  ?z:float -> successes:int -> trials:int -> unit -> float * float
(** Wilson score confidence interval [(lo, hi)] for a binomial
    proportion at critical value [z] (default 1.96, the 95% level).
    Unlike the normal approximation it stays within [\[0, 1\]] and
    behaves sensibly at 0 or [trials] successes.
    @raise Invalid_argument when [trials <= 0] or [successes] is out of
    range. *)

val pp_summary : Format.formatter -> summary -> unit
