(** Deterministic data parallelism over OCaml 5 domains.

    [map_array ~domains f arr] equals [Array.map f arr] for every pure
    [f]; with [domains > 1] the elements are processed by that many
    domains, which claim index chunks from a shared atomic cursor
    (self-scheduling, so uneven element costs balance automatically).
    Used to parallelise candidate evaluation in the design-space
    exploration and campaign shard execution; determinism is preserved
    because results are written by index and every element's result is
    independent of processing order. *)

val map_array : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** @raise Invalid_argument if [domains < 1]. Exceptions raised by [f]
    in a worker domain are re-raised in the caller. *)

val recommended_domains : unit -> int
(** A reasonable domain count for this machine
    ([Domain.recommended_domain_count], capped at 8). *)
