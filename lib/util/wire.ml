let default_max_frame = 16 * 1024 * 1024

let max_frame_limit = 0xFFFF_FFFF

type read_error =
  | Eof
  | Truncated of int
  | Oversized of int
  | Empty

let read_error_to_string = function
  | Eof -> "end of stream"
  | Truncated n -> Printf.sprintf "stream truncated mid-frame (%d bytes in)" n
  | Oversized n -> Printf.sprintf "frame payload of %d bytes exceeds the limit" n
  | Empty -> "zero-length frame"

(* Restart-on-EINTR wrappers: a signal (SIGCHLD from a worker, a timer)
   must never tear a frame. *)
let rec read_retry fd buf ofs len =
  try Unix.read fd buf ofs len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf ofs len

let rec write_retry fd buf ofs len =
  try Unix.write fd buf ofs len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd buf ofs len

(* Fill [buf.[ofs..ofs+len)] completely; returns the byte count actually
   read, which is < [len] only at end of stream. *)
let really_read fd buf ofs len =
  let got = ref 0 in
  (try
     while !got < len do
       let n = read_retry fd buf (ofs + !got) (len - !got) in
       if n = 0 then raise Exit else got := !got + n
     done
   with Exit -> ());
  !got

let really_write fd buf ofs len =
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + write_retry fd buf (ofs + !sent) (len - !sent)
  done

let clamp_max max = min (Option.value max ~default:default_max_frame) max_frame_limit

let read_frame ?max fd =
  let max = clamp_max max in
  let header = Bytes.create 4 in
  match really_read fd header 0 4 with
  | 0 -> Error Eof
  | n when n < 4 -> Error (Truncated n)
  | _ ->
    let len = Int32.to_int (Bytes.get_int32_be header 0) land max_frame_limit in
    if len = 0 then Error Empty
    else if len > max then Error (Oversized len)
    else begin
      let payload = Bytes.create len in
      let got = really_read fd payload 0 len in
      if got < len then Error (Truncated (4 + got))
      else Ok (Bytes.unsafe_to_string payload)
    end

let write_frame ?max fd payload =
  let max = clamp_max max in
  let len = String.length payload in
  if len = 0 then invalid_arg "Wire.write_frame: empty payload";
  if len > max then
    invalid_arg
      (Printf.sprintf "Wire.write_frame: %d-byte payload exceeds limit %d"
         len max);
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  really_write fd header 0 4;
  really_write fd (Bytes.unsafe_of_string payload) 0 len

let discard fd n =
  let chunk = Bytes.create 65536 in
  let remaining = ref n in
  let alive = ref true in
  while !alive && !remaining > 0 do
    let want = min !remaining (Bytes.length chunk) in
    let got = really_read fd chunk 0 want in
    if got < want then alive := false;
    remaining := !remaining - got
  done;
  !alive
