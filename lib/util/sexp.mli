(** A minimal S-expression reader/writer — the substrate of the mcmap
    system-description files (see [Mcmap_spec]).

    Grammar: atoms are runs of non-whitespace, non-parenthesis
    characters; lists are parenthesised; [;] starts a comment to end of
    line. No quoting — mcmap identifiers never need it. *)

type t = Atom of string | List of t list

type pos = { line : int; col : int }
(** A 1-based source position. *)

val pp_pos : Format.formatter -> pos -> unit
(** Prints [line:col]. *)

val pos_to_string : pos -> string

(** Position-annotated trees: every atom carries the position of its
    first character, every list the position of its opening
    parenthesis. The substrate of located diagnostics ([Mcmap_lint]). *)
module Loc : sig
  type sexp = { v : value; pos : pos }
  and value = Atom of string | List of sexp list
end

val parse : string -> (t list, string) result
(** Parse every top-level expression in the input. Errors carry a
    line/column position. *)

val parse_loc : string -> (Loc.sexp list, string) result
(** Like {!parse} but keeps source positions on every node. *)

val strip : Loc.sexp -> t
(** Forget the positions. [parse] is [parse_loc] composed with
    [strip]. *)

val parse_one : string -> (t, string) result
(** Parse exactly one expression (and nothing else but whitespace). *)

val to_string : ?indent:int -> t -> string
(** Pretty-print with the given indentation width (default 2). *)

val atom : t -> (string, string) result
(** Expect an atom. *)

val assoc : string -> t list -> t list option
(** [assoc key items] finds the first [List (Atom key :: rest)] among
    [items] and returns [rest]. *)

val assoc_atom : string -> t list -> (string, string) result
(** The single-atom field [(key value)]. *)

val assoc_int : string -> t list -> (int, string) result

val assoc_float : string -> t list -> (float, string) result

val assoc_int_opt : string -> t list -> (int option, string) result

val assoc_float_opt : string -> t list -> (float option, string) result

val assoc_atom_opt : string -> t list -> (string option, string) result

val fields : string -> t list -> t list list
(** All [(key ...)] entries with the given key, each stripped of the
    key. *)
