type summary = {
  count : int;
  mean : float;
  stddev : float;
  minimum : float;
  maximum : float;
}

let summarize samples =
  (* Welford's online algorithm: numerically stable single pass. *)
  let step (n, mean, m2, mn, mx) x =
    let n = n + 1 in
    let delta = x -. mean in
    let mean = mean +. (delta /. float_of_int n) in
    let m2 = m2 +. (delta *. (x -. mean)) in
    (n, mean, m2, min mn x, max mx x) in
  match samples with
  | [] -> { count = 0; mean = 0.; stddev = 0.; minimum = 0.; maximum = 0. }
  | _ :: _ ->
    let n, mean, m2, minimum, maximum =
      List.fold_left step (0, 0., 0., infinity, neg_infinity) samples in
    let variance = if n > 1 then m2 /. float_of_int (n - 1) else 0. in
    { count = n; mean; stddev = sqrt variance; minimum; maximum }

let mean samples = (summarize samples).mean

let percentile samples p =
  match samples with
  | [] -> invalid_arg "Stats.percentile: empty sample list"
  | _ :: _ ->
    let a = Array.of_list samples in
    Array.sort compare a;
    let n = Array.length a in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let idx = Mathx.clamp ~lo:0 ~hi:(n - 1) (rank - 1) in
    a.(idx)

let ratio_pct num den =
  if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

(* Wilson score interval for a binomial proportion: unlike the normal
   approximation it stays inside [0, 1] and behaves sensibly at 0 or n
   successes, which the reliability oracle hits routinely (failure
   probabilities around 1e-5 over a few thousand trials). *)
let wilson_interval ?(z = 1.96) ~successes ~trials () =
  if trials <= 0 then invalid_arg "Stats.wilson_interval: trials <= 0";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_interval: successes out of range";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let centre = p +. (z2 /. (2. *. n)) in
  let spread =
    z *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) in
  ((centre -. spread) /. denom, (centre +. spread) /. denom)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" s.count
    s.mean s.stddev s.minimum s.maximum
