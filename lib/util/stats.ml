type summary = {
  count : int;
  mean : float;
  stddev : float;
  minimum : float;
  maximum : float;
}

let summarize samples =
  (* Welford's online algorithm: numerically stable single pass. *)
  let step (n, mean, m2, mn, mx) x =
    let n = n + 1 in
    let delta = x -. mean in
    let mean = mean +. (delta /. float_of_int n) in
    let m2 = m2 +. (delta *. (x -. mean)) in
    (n, mean, m2, min mn x, max mx x) in
  match samples with
  | [] -> { count = 0; mean = 0.; stddev = 0.; minimum = 0.; maximum = 0. }
  | _ :: _ ->
    let n, mean, m2, minimum, maximum =
      List.fold_left step (0, 0., 0., infinity, neg_infinity) samples in
    let variance = if n > 1 then m2 /. float_of_int (n - 1) else 0. in
    { count = n; mean; stddev = sqrt variance; minimum; maximum }

let mean samples = (summarize samples).mean

let percentile samples p =
  match samples with
  | [] -> invalid_arg "Stats.percentile: empty sample list"
  | _ :: _ ->
    let a = Array.of_list samples in
    Array.sort compare a;
    let n = Array.length a in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let idx = Mathx.clamp ~lo:0 ~hi:(n - 1) (rank - 1) in
    a.(idx)

let ratio_pct num den =
  if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

(* Wilson score interval for a binomial proportion: unlike the normal
   approximation it stays inside [0, 1] and behaves sensibly at 0 or n
   successes, which the reliability oracle hits routinely (failure
   probabilities around 1e-5 over a few thousand trials). *)
let wilson_interval ?(z = 1.96) ~successes ~trials () =
  if trials <= 0 then invalid_arg "Stats.wilson_interval: trials <= 0";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_interval: successes out of range";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let centre = p +. (z2 /. (2. *. n)) in
  let spread =
    z *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) in
  ((centre -. spread) /. denom, (centre +. spread) /. denom)

(* ------------------------------------------------------------------ *)
(* Exact binomial interval (Clopper-Pearson).

   The Wilson score interval inverts a normal approximation; at 0
   successes — the common case for rare-event campaigns — its upper
   bound is badly anti-conservative relative to the exact tail. The
   Clopper-Pearson bounds are the beta quantiles
   [lo = BetaInv(alpha/2; k, n-k+1)], [hi = BetaInv(1-alpha/2; k+1, n-k)],
   computed here with a self-contained regularized incomplete beta
   (Lanczos log-gamma + Lentz continued fraction) and bisection. *)

let log_gamma =
  (* Lanczos approximation, g = 7, 9 coefficients: |rel err| < 1e-13 on
     the positive reals, far below the bisection tolerance. *)
  let coeffs =
    [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
       771.32342877765313; -176.61502916214059; 12.507343278686905;
       -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]
  in
  fun z ->
    if z <= 0. then invalid_arg "Stats.log_gamma: nonpositive argument";
    let z = z -. 1. in
    let acc = ref coeffs.(0) in
    for i = 1 to 8 do
      acc := !acc +. (coeffs.(i) /. (z +. float_of_int i))
    done;
    let t = z +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((z +. 0.5) *. log t) -. t +. log !acc

(* Continued fraction for the incomplete beta (modified Lentz). *)
let betacf a b x =
  let fpmin = 1e-300 and eps = 3e-15 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  (try
     for m = 1 to 300 do
       let mf = float_of_int m in
       let m2 = 2. *. mf in
       let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       h := !h *. !d *. !c;
       let aa =
         -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < eps then raise Exit
     done
   with Exit -> ());
  !h

let betai ~a ~b x =
  if a <= 0. || b <= 0. then invalid_arg "Stats.betai: nonpositive shape";
  if x <= 0. then 0.
  else if x >= 1. then 1.
  else begin
    let bt =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b +. (a *. log x)
         +. (b *. log1p (-.x))) in
    if x < (a +. 1.) /. (a +. b +. 2.) then bt *. betacf a b x /. a
    else 1. -. (bt *. betacf b a (1. -. x) /. b)
  end

(* Smallest [x] with [I_x(a, b) >= p], by bisection ([betai] is monotone
   increasing in [x]). 90 halvings put the bracket well below 1e-16. *)
let beta_inv ~a ~b p =
  let lo = ref 0. and hi = ref 1. in
  for _ = 1 to 90 do
    let mid = 0.5 *. (!lo +. !hi) in
    if betai ~a ~b mid < p then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let clopper_pearson ?(alpha = 0.05) ~successes ~trials () =
  if trials <= 0 then invalid_arg "Stats.clopper_pearson: trials <= 0";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.clopper_pearson: successes out of range";
  if not (0. < alpha && alpha < 1.) then
    invalid_arg "Stats.clopper_pearson: alpha outside (0, 1)";
  let k = float_of_int successes and n = float_of_int trials in
  let lo =
    if successes = 0 then 0.
    else beta_inv ~a:k ~b:(n -. k +. 1.) (alpha /. 2.) in
  let hi =
    if successes = trials then 1.
    else beta_inv ~a:(k +. 1.) ~b:(n -. k) (1. -. (alpha /. 2.)) in
  (lo, hi)

(* ------------------------------------------------------------------ *)
(* Weighted-sample moments for likelihood-ratio estimators: the samples
   are the per-trial weighted indicators [w_i * 1{fail_i}], and campaigns
   stream only the moment sums, so shards merge by addition. *)

type weighted = { count : int; sum : float; sumsq : float }

let weighted_empty = { count = 0; sum = 0.; sumsq = 0. }

let weighted_add w x =
  { count = w.count + 1; sum = w.sum +. x; sumsq = w.sumsq +. (x *. x) }

let weighted_merge a b =
  { count = a.count + b.count; sum = a.sum +. b.sum;
    sumsq = a.sumsq +. b.sumsq }

let weighted_of_sums ~count ~sum ~sumsq =
  if count < 0 then invalid_arg "Stats.weighted_of_sums: count < 0";
  { count; sum; sumsq }

let weighted_mean w =
  if w.count = 0 then 0. else w.sum /. float_of_int w.count

let weighted_variance w =
  if w.count < 2 then 0.
  else begin
    let n = float_of_int w.count in
    let m = w.sum /. n in
    (* max 0: the two-pass identity can go slightly negative in float *)
    Float.max 0. ((w.sumsq -. (n *. m *. m)) /. (n -. 1.))
  end

let weighted_interval ?(z = 1.96) w =
  if w.count = 0 then invalid_arg "Stats.weighted_interval: empty summary";
  let m = weighted_mean w in
  let se = sqrt (weighted_variance w /. float_of_int w.count) in
  (Float.max 0. (m -. (z *. se)), m +. (z *. se))

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" s.count
    s.mean s.stddev s.minimum s.maximum
