type t = { lo : int64; hi : int64 }

(* Murmur3's 64-bit finaliser: a bijective avalanche mix. *)
let mix64 z =
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  let z = Int64.mul z 0xff51afd7ed558ccdL in
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  let z = Int64.mul z 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

(* The two lanes absorb the same values premultiplied by different odd
   constants, so a collision requires both independent mixes to agree. *)
let lane_a = 0x9e3779b97f4a7c15L (* golden-ratio increment (splitmix64) *)

let lane_b = 0xd1b54a32d192ed03L

let absorb t v =
  { lo = mix64 (Int64.add (Int64.logxor t.lo v) lane_a);
    hi = mix64 (Int64.add (Int64.logxor t.hi (Int64.mul v lane_b)) lane_b) }

let empty = { lo = 0x243f6a8885a308d3L; hi = 0x13198a2e03707344L }

let int64 t v = absorb t v

let int t v = absorb t (Int64.of_int v)

let bool t v = absorb t (if v then 1L else 2L)

let float t v = absorb t (Int64.bits_of_float v)

let string t s =
  let t = int t (String.length s) in
  let acc = ref t in
  String.iter (fun c -> acc := int !acc (Char.code c)) s;
  !acc

let int_array t a = Array.fold_left int (int t (Array.length a)) a

let combine t sub =
  let t = absorb t sub.lo in
  absorb t sub.hi

(* Commutative monoid for order-independent aggregation: componentwise
   wrapping sums of already-mixed fingerprints. Fold the result back into
   a parent with {!combine}. *)
let unordered_zero = { lo = 0L; hi = 0L }

let unordered_add a b = { lo = Int64.add a.lo b.lo; hi = Int64.add a.hi b.hi }

let equal a b = Int64.equal a.lo b.lo && Int64.equal a.hi b.hi

let compare a b =
  match Int64.compare a.lo b.lo with
  | 0 -> Int64.compare a.hi b.hi
  | c -> c

let hash t = Int64.to_int t.lo

let to_hex t = Format.asprintf "%016Lx%016Lx" t.hi t.lo

let pp ppf t = Format.pp_print_string ppf (to_hex t)
