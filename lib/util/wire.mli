(** Length-prefixed frame transport over file descriptors — the wire
    substrate of the [mcmap serve] protocol (DESIGN.md §14).

    A frame is a 4-byte big-endian unsigned payload length followed by
    exactly that many payload bytes. Both directions enforce a maximum
    frame size (so a malicious or confused peer cannot make the reader
    allocate gigabytes from four header bytes) and reject zero-length
    frames (an empty payload is always a protocol error, and rejecting
    it here keeps every consumer honest).

    All loops are EINTR-safe and handle partial reads/writes: a frame
    split across dozens of TCP segments or pipe chunks arrives intact.
    The same module serves the server, the client and the bench load
    generator, so framing bugs cannot diverge between them. *)

val default_max_frame : int
(** 16 MiB — generous for any system description plus a population. *)

val max_frame_limit : int
(** The hard ceiling any [?max] is clamped to ([0xFFFF_FFFF], the
    largest length the 4-byte header can carry). *)

type read_error =
  | Eof  (** clean end of stream before the first header byte *)
  | Truncated of int
      (** stream ended mid-frame after this many bytes (header
          included) — the peer died or lied about the length *)
  | Oversized of int
      (** declared payload length exceeds the [max] guard; nothing
          past the header has been consumed (see {!discard}) *)
  | Empty  (** zero-length frame (header consumed, stream still
               synchronised) *)

val read_error_to_string : read_error -> string

val read_frame :
  ?max:int -> Unix.file_descr -> (string, read_error) result
(** Read one frame. On [Error (Oversized _)] and [Error Empty] the
    stream remains synchronised (exactly the 4 header bytes were
    consumed); a caller that wants to keep the connection must
    {!discard} the oversized payload. On [Eof]/[Truncated] the stream
    is dead. [max] defaults to {!default_max_frame}.
    @raise Unix.Unix_error on transport errors other than EINTR. *)

val write_frame : ?max:int -> Unix.file_descr -> string -> unit
(** Write one frame (header + payload), looping over partial writes.
    @raise Invalid_argument on an empty payload or one larger than
    [max] — the writer enforces the same guards the reader does.
    @raise Unix.Unix_error on transport errors other than EINTR. *)

val discard : Unix.file_descr -> int -> bool
(** [discard fd n] reads and drops exactly [n] bytes (the payload of
    an oversized frame), returning [false] if the stream ended first.
    Bounded scratch: drops in 64 KiB chunks. *)
