(** Bounded least-recently-used cache: a hash table over an intrusive
    doubly-linked recency list, O(1) lookup/insert/evict. Keys use
    polymorphic hashing/equality. Not thread-safe — callers that share a
    cache across domains must hold their own lock. *)

type ('k, 'v) t

val create : capacity:int -> unit -> ('k, 'v) t
(** Capacity 0 gives an always-empty cache ([add] is a no-op), the
    conventional way to disable a cache without branching at call sites.
    @raise Invalid_argument on negative capacity. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Marks the entry most recently used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does not touch recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts or replaces, marking the entry most recently used; evicts the
    least recently used entry when over capacity. *)

val length : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Total entries evicted since creation. *)

val clear : ('k, 'v) t -> unit
(** Drops all entries (eviction counter is kept). *)
