type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (bits64 t) }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling over 63 uniform bits: draws above the largest
     multiple of [bound] would fold unevenly under [rem], so redraw.
     [2^63 mod b = ((max_int mod b) + 1) mod b]. *)
  let b = Int64.of_int bound in
  let excess = Int64.rem (Int64.add (Int64.rem Int64.max_int b) 1L) b in
  let top = Int64.sub Int64.max_int excess in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    if r <= top then Int64.to_int (Int64.rem r b) else draw () in
  draw ()

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits mapped into [0, bound). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992. *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1. < p

let exponential t rate =
  assert (rate > 0.);
  let u = 1. -. float t 1. in
  -.log u /. rate

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
