(** Dense fixed-capacity bitsets over [0 .. capacity - 1], backed by an
    [int array] (63 usable bits per word on 64-bit systems).

    The flat scheduling kernel stores one interferer set per job and
    mutates them inside its fixed-point loop, so every operation here is
    allocation-free: sets are created once (in a scratch arena) and
    cleared / blitted / intersected in place afterwards. Operations that
    combine two sets require equal capacities and raise
    [Invalid_argument] otherwise — a capacity mismatch is always a
    caller bug, never data. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0 .. capacity - 1].
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : t -> int

val words : t -> int array
(** The backing words (bit [i] of the set is bit [i mod 63] of word
    [i / 63]; bits at positions [>= capacity] are always zero). Exposed
    so the flat kernel can fuse set-difference iteration into its sweep
    without allocating a closure per job. Treat as read-only — mutate
    through the operations above. *)

val mem : t -> int -> bool
(** No bounds check beyond the backing array's: callers index with
    member candidates [0 <= i < capacity] by construction. *)

val add : t -> int -> unit

val unsafe_mem : t -> int -> bool
(** {!mem} without the array bounds check. The caller must guarantee
    [0 <= i < capacity]; reserved for loops whose indices are in range
    by construction (the flat kernel's candidate sweep). *)

val unsafe_add : t -> int -> unit
(** {!add} without the array bounds check; same caller obligation as
    {!unsafe_mem}. *)

val remove : t -> int -> unit

val clear : t -> unit
(** Remove every member (in place, no allocation). *)

val is_empty : t -> bool

val cardinal : t -> int

val equal : t -> t -> bool
(** Equality of members; requires equal capacities.
    @raise Invalid_argument on a capacity mismatch. *)

val blit : src:t -> dst:t -> unit
(** [dst] becomes a copy of [src].
    @raise Invalid_argument on a capacity mismatch. *)

val union_into : dst:t -> t -> unit
(** [dst <- dst ∪ src].
    @raise Invalid_argument on a capacity mismatch. *)

val inter_into : dst:t -> t -> unit
(** [dst <- dst ∩ src].
    @raise Invalid_argument on a capacity mismatch. *)

val iter : (int -> unit) -> t -> unit
(** Members in ascending order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t init] over members in ascending order — the order is part
    of the contract (deterministic replay of charged-set traversals). *)

val elements : t -> int list
(** Members in ascending order. *)

val of_list : int -> int list -> t
(** [of_list capacity members].
    @raise Invalid_argument if some member is outside
    [0 .. capacity - 1]. *)

val pp : Format.formatter -> t -> unit
