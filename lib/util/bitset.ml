(* Dense int-array bitsets. 63 bits per word: [i / 63] selects the word
   and [i mod 63] the bit, matching the layout the reference bounds
   analysis uses internally, so charged-set dumps from both engines line
   up word for word when debugging. *)

type t = {
  capacity : int;
  words : int array;
}

let bits_per_word = 63

let n_words capacity = (capacity + bits_per_word - 1) / bits_per_word

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make (n_words capacity) 0 }

let capacity t = t.capacity

let words t = t.words

let mem t i = t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let unsafe_mem t i =
  Array.unsafe_get t.words (i / bits_per_word)
  land (1 lsl (i mod bits_per_word))
  <> 0

let unsafe_add t i =
  let w = i / bits_per_word in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w lor (1 lsl (i mod bits_per_word)))

let remove t i =
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount word =
  let x = ref word and n = ref 0 in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr n
  done;
  !n

let cardinal t =
  let total = ref 0 in
  Array.iter (fun w -> total := !total + popcount w) t.words;
  !total

let check_pair name a b =
  if a.capacity <> b.capacity then
    invalid_arg ("Bitset." ^ name ^ ": capacity mismatch")

let equal a b =
  check_pair "equal" a b;
  (* Word-by-word int comparison: the generic structural equality on the
     arrays costs a polymorphic-compare call, and [equal] sits inside
     the flat kernel's per-job sweep. *)
  let rec go i =
    i < 0
    || (Array.unsafe_get a.words i = Array.unsafe_get b.words i
       && go (i - 1))
  in
  go (Array.length a.words - 1)

let blit ~src ~dst =
  check_pair "blit" src dst;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let union_into ~dst src =
  check_pair "union_into" dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into ~dst src =
  check_pair "inter_into" dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    (* Peel set bits low-to-high so members come out ascending. *)
    while !word <> 0 do
      let low = !word land -(!word) in
      let bit =
        (* log2 of the isolated lowest bit *)
        let rec go b v = if v = 1 then b else go (b + 1) (v lsr 1) in
        go 0 low in
      f ((w * bits_per_word) + bit);
      word := !word land (!word - 1)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity members =
  let t = create capacity in
  List.iter
    (fun i ->
      if i < 0 || i >= capacity then
        invalid_arg "Bitset.of_list: member out of range";
      add t i)
    members;
  t

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements t)))
