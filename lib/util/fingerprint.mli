(** 128-bit structural fingerprints: two independently mixed 64-bit lanes
    (murmur3 finalisers over distinct odd multipliers), built by absorbing
    scalars one at a time. Used to key memoisation tables on canonical
    encodings of plans and job structures; equal encodings give equal
    fingerprints, and 2^-128 birthday odds make accidental collisions
    negligible — still, cache consumers should guard hits with a
    structural equality check when exactness is contractual. *)

type t = { lo : int64; hi : int64 }

val empty : t

val int : t -> int -> t

val int64 : t -> int64 -> t

val bool : t -> bool -> t

val float : t -> float -> t
(** Absorbs the IEEE-754 bit pattern, so [-0.] <> [0.] and NaNs compare
    by payload — exactly the bit-determinism contract of the caches. *)

val string : t -> string -> t

val int_array : t -> int array -> t
(** Length-prefixed, positional. *)

val combine : t -> t -> t
(** [combine parent sub] absorbs a finished fingerprint as a value. *)

val unordered_zero : t

val unordered_add : t -> t -> t
(** Commutative/associative aggregation of finished fingerprints
    (componentwise wrapping sum), for order-independent hashing of
    multisets; fold the aggregate back into a parent with {!combine}. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int
(** For [Hashtbl]-style consumers. *)

val to_hex : t -> string

val pp : Format.formatter -> t -> unit
