(** A minimal JSON reader/writer — the substrate of the Chrome
    trace-event export and the machine-readable benchmark output.

    Writer notes: object member order is preserved; floats are printed
    with enough digits to round-trip ([%.17g] when needed); non-finite
    floats are emitted as [null] (JSON has no representation for them).

    Reader notes: a practical subset of RFC 8259 — numbers without an
    exponent or fraction part parse as [Int], everything else as
    [Float]; [\uXXXX] escapes decode to UTF-8 (surrogate pairs are
    accepted). Trailing garbage after the top-level value is an
    error. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Serialise. With [minify:false] (the default) objects and lists
    break across lines with two-space indentation. *)

val parse : string -> (t, string) result
(** Parse exactly one JSON value. Errors carry a line/column
    position. *)

val member : string -> t -> t option
(** [member key json] is the value of [key] when [json] is an [Obj]
    containing it. *)
