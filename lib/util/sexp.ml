type t = Atom of string | List of t list

type pos = { line : int; col : int }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

let pos_to_string p = Format.asprintf "%a" pp_pos p

module Loc = struct
  type sexp = { v : value; pos : pos }
  and value = Atom of string | List of sexp list
end

(* ------------------------------------------------------------------ *)
(* Parsing *)

type cursor = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c =
  (match peek c with
   | Some '\n' ->
     c.line <- c.line + 1;
     c.col <- 1
   | Some _ -> c.col <- c.col + 1
   | None -> ());
  c.pos <- c.pos + 1

let error c msg = Error (Format.asprintf "%d:%d: %s" c.line c.col msg)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_atom_char ch = (not (is_space ch)) && ch <> '(' && ch <> ')' && ch <> ';'

let rec skip_blank c =
  match peek c with
  | Some ch when is_space ch ->
    advance c;
    skip_blank c
  | Some ';' ->
    let rec to_eol () =
      match peek c with
      | Some '\n' | None -> ()
      | Some _ ->
        advance c;
        to_eol () in
    to_eol ();
    skip_blank c
  | Some _ | None -> ()

let read_atom c =
  let start = c.pos in
  let rec loop () =
    match peek c with
    | Some ch when is_atom_char ch ->
      advance c;
      loop ()
    | Some _ | None -> () in
  loop ();
  String.sub c.input start (c.pos - start)

let rec read_expr c =
  skip_blank c;
  let here = { line = c.line; col = c.col } in
  match peek c with
  | None -> error c "unexpected end of input"
  | Some ')' -> error c "unexpected ')'"
  | Some '(' ->
    advance c;
    let rec items acc =
      skip_blank c;
      match peek c with
      | Some ')' ->
        advance c;
        Ok { Loc.v = Loc.List (List.rev acc); pos = here }
      | None -> error c "unclosed '('"
      | Some _ ->
        (match read_expr c with
         | Ok e -> items (e :: acc)
         | Error _ as err -> err) in
    items []
  | Some _ -> Ok { Loc.v = Loc.Atom (read_atom c); pos = here }

let rec strip (e : Loc.sexp) =
  match e.Loc.v with
  | Loc.Atom a -> Atom a
  | Loc.List items -> List (List.map strip items)

let parse_loc input =
  let c = { input; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    skip_blank c;
    match peek c with
    | None -> Ok (List.rev acc)
    | Some _ ->
      (match read_expr c with
       | Ok e -> loop (e :: acc)
       | Error _ as err -> err) in
  loop []

let parse input = Result.map (List.map strip) (parse_loc input)

let parse_one input =
  match parse input with
  | Ok [ e ] -> Ok e
  | Ok [] -> Error "empty input"
  | Ok (_ :: _ :: _) -> Error "expected a single expression"
  | Error _ as err -> err

(* ------------------------------------------------------------------ *)
(* Printing *)

let rec flat_width = function
  | Atom a -> String.length a
  | List items ->
    2 + List.length items
    + Mathx.sum_by flat_width items

let to_string ?(indent = 2) expr =
  let buf = Buffer.create 256 in
  let rec emit depth expr =
    match expr with
    | Atom a -> Buffer.add_string buf a
    | List items when flat_width expr + (depth * indent) <= 76 ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          emit depth item)
        items;
      Buffer.add_char buf ')'
    | List [] -> Buffer.add_string buf "()"
    | List (head :: rest) ->
      Buffer.add_char buf '(';
      emit (depth + 1) head;
      List.iter
        (fun item ->
          Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make ((depth + 1) * indent) ' ');
          emit (depth + 1) item)
        rest;
      Buffer.add_char buf ')' in
  emit 0 expr;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors *)

let atom = function
  | Atom a -> Ok a
  | List _ -> Error "expected an atom"

let assoc key items =
  List.find_map
    (function
      | List (Atom k :: rest) when k = key -> Some rest
      | List _ | Atom _ -> None)
    items

let assoc_atom key items =
  match assoc key items with
  | Some [ Atom v ] -> Ok v
  | Some _ -> Error (Format.asprintf "field (%s ...) expects one atom" key)
  | None -> Error (Format.asprintf "missing field (%s ...)" key)

let assoc_atom_opt key items =
  match assoc key items with
  | None -> Ok None
  | Some [ Atom v ] -> Ok (Some v)
  | Some _ -> Error (Format.asprintf "field (%s ...) expects one atom" key)

let conv name of_string key items =
  match assoc_atom key items with
  | Error _ as err -> err
  | Ok v ->
    (match of_string v with
     | Some x -> Ok x
     | None ->
       Error (Format.asprintf "field (%s %s): expected %s" key v name))

let conv_opt name of_string key items =
  match assoc_atom_opt key items with
  | Error _ as err -> err
  | Ok None -> Ok None
  | Ok (Some v) ->
    (match of_string v with
     | Some x -> Ok (Some x)
     | None ->
       Error (Format.asprintf "field (%s %s): expected %s" key v name))

let assoc_int key items = conv "an integer" int_of_string_opt key items

let assoc_float key items = conv "a number" float_of_string_opt key items

let assoc_int_opt key items =
  conv_opt "an integer" int_of_string_opt key items

let assoc_float_opt key items =
  conv_opt "a number" float_of_string_opt key items

let fields key items =
  List.filter_map
    (function
      | List (Atom k :: rest) when k = key -> Some rest
      | List _ | Atom _ -> None)
    items
