type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writing *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    (* Shortest decimal representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* "1e3" is a valid JSON number but "nan"/"inf" were handled above;
       ensure a leading digit form like ".5" never appears (it cannot
       with %g) and keep integral floats distinguishable. *)
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'E'
    then s
    else s ^ ".0"
  end

let to_string ?(minify = false) json =
  let buf = Buffer.create 256 in
  let newline depth =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_into buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          newline (depth + 1);
          emit (depth + 1) item)
        items;
      newline depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          newline (depth + 1);
          escape_into buf key;
          Buffer.add_string buf (if minify then ":" else ": ");
          emit (depth + 1) value)
        members;
      newline depth;
      Buffer.add_char buf '}' in
  emit 0 json;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

type cursor = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c =
  (match peek c with
   | Some '\n' ->
     c.line <- c.line + 1;
     c.col <- 1
   | Some _ -> c.col <- c.col + 1
   | None -> ());
  c.pos <- c.pos + 1

let error c msg = Error (Format.asprintf "%d:%d: %s" c.line c.col msg)

let rec skip_blank c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_blank c
  | Some _ | None -> ()

let expect c ch =
  match peek c with
  | Some got when got = ch ->
    advance c;
    Ok ()
  | Some got -> error c (Printf.sprintf "expected %c, found %c" ch got)
  | None -> error c (Printf.sprintf "expected %c, found end of input" ch)

let hex_digit = function
  | '0' .. '9' as ch -> Some (Char.code ch - Char.code '0')
  | 'a' .. 'f' as ch -> Some (Char.code ch - Char.code 'a' + 10)
  | 'A' .. 'F' as ch -> Some (Char.code ch - Char.code 'A' + 10)
  | _ -> None

let read_u16 c =
  let rec loop acc k =
    if k = 0 then Ok acc
    else
      match peek c with
      | Some ch ->
        (match hex_digit ch with
         | Some d ->
           advance c;
           loop ((acc * 16) + d) (k - 1)
         | None -> error c "invalid \\u escape")
      | None -> error c "unterminated \\u escape" in
  loop 0 4

let read_string c =
  match expect c '"' with
  | Error _ as err -> err
  | Ok () ->
    let buf = Buffer.create 16 in
    let add_uchar u = Buffer.add_utf_8_uchar buf (Uchar.of_int u) in
    let rec loop () =
      match peek c with
      | None -> error c "unterminated string"
      | Some '"' ->
        advance c;
        Ok (Buffer.contents buf)
      | Some '\\' ->
        advance c;
        (match peek c with
         | None -> error c "unterminated escape"
         | Some ch ->
           advance c;
           (match ch with
            | '"' | '\\' | '/' -> Buffer.add_char buf ch; loop ()
            | 'n' -> Buffer.add_char buf '\n'; loop ()
            | 't' -> Buffer.add_char buf '\t'; loop ()
            | 'r' -> Buffer.add_char buf '\r'; loop ()
            | 'b' -> Buffer.add_char buf '\b'; loop ()
            | 'f' -> Buffer.add_char buf '\012'; loop ()
            | 'u' ->
              (match read_u16 c with
               | Error _ as err -> err
               | Ok hi when hi >= 0xD800 && hi <= 0xDBFF ->
                 (* surrogate pair *)
                 (match expect c '\\' with
                  | Error _ as err -> err
                  | Ok () ->
                    (match expect c 'u' with
                     | Error _ as err -> err
                     | Ok () ->
                       (match read_u16 c with
                        | Error _ as err -> err
                        | Ok lo when lo >= 0xDC00 && lo <= 0xDFFF ->
                          add_uchar
                            (0x10000
                             + ((hi - 0xD800) lsl 10)
                             + (lo - 0xDC00));
                          loop ()
                        | Ok _ -> error c "invalid low surrogate")))
               | Ok u when u >= 0xDC00 && u <= 0xDFFF ->
                 error c "unpaired low surrogate"
               | Ok u -> add_uchar u; loop ())
            | _ -> error c "invalid escape"))
      | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop () in
    loop ()

let read_number c =
  let start = c.pos in
  let fractional = ref false in
  let rec loop () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
      advance c;
      loop ()
    | Some ('.' | 'e' | 'E') ->
      fractional := true;
      advance c;
      loop ()
    | Some _ | None -> () in
  loop ();
  let s = String.sub c.input start (c.pos - start) in
  if !fractional then
    match float_of_string_opt s with
    | Some f -> Ok (Float f)
    | None -> error c (Printf.sprintf "invalid number %s" s)
  else
    match int_of_string_opt s with
    | Some i -> Ok (Int i)
    | None ->
      (match float_of_string_opt s with
       | Some f -> Ok (Float f)
       | None -> error c (Printf.sprintf "invalid number %s" s))

let keyword c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.input
     && String.sub c.input c.pos n = word
  then begin
    for _ = 1 to n do advance c done;
    Ok value
  end
  else error c (Printf.sprintf "expected %s" word)

let rec read_value c =
  skip_blank c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 't' -> keyword c "true" (Bool true)
  | Some 'f' -> keyword c "false" (Bool false)
  | Some 'n' -> keyword c "null" Null
  | Some '"' ->
    (match read_string c with
     | Ok s -> Ok (String s)
     | Error _ as err -> (err :> (t, string) result))
  | Some '[' ->
    advance c;
    skip_blank c;
    (match peek c with
     | Some ']' ->
       advance c;
       Ok (List [])
     | _ ->
       let rec items acc =
         match read_value c with
         | Error _ as err -> err
         | Ok v ->
           skip_blank c;
           (match peek c with
            | Some ',' ->
              advance c;
              items (v :: acc)
            | Some ']' ->
              advance c;
              Ok (List (List.rev (v :: acc)))
            | _ -> error c "expected , or ]") in
       (match items [] with
        | Ok _ as ok -> ok
        | Error _ as err -> err))
  | Some '{' ->
    advance c;
    skip_blank c;
    (match peek c with
     | Some '}' ->
       advance c;
       Ok (Obj [])
     | _ ->
       let rec members acc =
         skip_blank c;
         match read_string c with
         | Error _ as err -> (err :> (t, string) result)
         | Ok key ->
           skip_blank c;
           (match expect c ':' with
            | Error _ as err -> (err :> (t, string) result)
            | Ok () ->
              (match read_value c with
               | Error _ as err -> err
               | Ok v ->
                 skip_blank c;
                 (match peek c with
                  | Some ',' ->
                    advance c;
                    members ((key, v) :: acc)
                  | Some '}' ->
                    advance c;
                    Ok (Obj (List.rev ((key, v) :: acc)))
                  | _ -> error c "expected , or }"))) in
       members [])
  | Some ('-' | '0' .. '9') -> read_number c
  | Some ch -> error c (Printf.sprintf "unexpected character %c" ch)

let parse input =
  let c = { input; pos = 0; line = 1; col = 1 } in
  match read_value c with
  | Error _ as err -> err
  | Ok v ->
    skip_blank c;
    (match peek c with
     | None -> Ok v
     | Some _ -> error c "trailing garbage after JSON value")

let member key = function
  | Obj members -> List.assoc_opt key members
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None
