(** Expansion of a hardened application set into the job set of one
    hyperperiod, with precedence edges annotated by worst-case
    communication delays. Besides the graph's channels, successive
    instances of each task are chained by zero-delay precedence edges:
    they share a processor and a priority, so they execute in release
    order — making this explicit tightens the analysis. *)

type t = private {
  happ : Mcmap_hardening.Happ.t;
  hyperperiod : int;  (** the full analysed/simulated horizon *)
  base_hyperperiod : int;
      (** the application set's hyperperiod; the run-time system returns
          to the normal state (restoring dropped tasks) at each multiple
          of it *)
  jobs : Job.t array;
  preds : (int * int) array array;
      (** [preds.(j)] = [(pred job id, comm delay)] *)
  succs : (int * int) array array;
  by_proc : int array array;  (** job ids bound to each processor *)
  topo : int array;  (** topological order of job ids *)
}

val build :
  ?priority_order:Priority.order ->
  ?hyperperiods:int ->
  Mcmap_hardening.Happ.t ->
  t
(** Instantiate [horizon / period] jobs per hardened task, where the
    horizon spans [hyperperiods] (default 1) application hyperperiods —
    analysing or simulating several lets the critical-state restoration
    at hyperperiod boundaries be observed. Priorities come from
    {!Priority.assign} (default {!Priority.Rate_monotonic}; pass
    {!Priority.Criticality_first} for the ablation order); precedences
    carry {!Mcmap_model.Arch.comm_delay} costs. *)

val restrict : t -> graphs:int array -> t
(** The sub-jobset of the given source graphs, with job ids renumbered
    contiguously and priorities renumbered densely, everything else
    (relative job order, edges, processor buckets, topological order,
    [happ], horizons) preserved. When [graphs] is closed under processor
    sharing — no member graph shares a processor with a non-member — the
    restriction analyses exactly like the same jobs inside the full set:
    interference is per-processor and precedence per-graph, so the
    evaluator session memoises per-component analyses keyed by the
    restricted structure. Priorities stay comparable because the analysis
    only compares same-processor jobs, all of which are kept together.
    An empty [graphs] is legal (trivially closed) and yields the empty
    jobset — zero jobs, empty buckets and topological order — on which
    both analysis engines converge immediately with no bounds.
    @raise Invalid_argument on an out-of-range graph index. *)

val n_jobs : t -> int

val job : t -> int -> Job.t

val find : t -> graph:int -> task:int -> instance:int -> Job.t
(** @raise Not_found if no such job exists. *)

val jobs_of_task : t -> graph:int -> task:int -> Job.t list
(** All instances of a hardened task, by ascending instance. *)

val response_jobs : t -> graph:int -> Job.t list
(** Jobs whose completion defines the graph's response time (instances of
    {!Mcmap_hardening.Happ.sink_response_tasks}). *)

val triggers : t -> Job.t list
(** Jobs that can move the system to the critical state (re-executable or
    passive spares), in id order. *)

val pp : Format.formatter -> t -> unit
