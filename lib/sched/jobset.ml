module Happ = Mcmap_hardening.Happ
module Arch = Mcmap_model.Arch

type t = {
  happ : Happ.t;
  hyperperiod : int;
  base_hyperperiod : int;
  jobs : Job.t array;
  preds : (int * int) array array;
  succs : (int * int) array array;
  by_proc : int array array;
  topo : int array;
}

let build ?priority_order ?(hyperperiods = 1) happ =
  if hyperperiods < 1 then invalid_arg "Jobset.build: hyperperiods < 1";
  let apps = happ.Happ.apps in
  let arch = happ.Happ.arch in
  let base_hyperperiod = Mcmap_model.Appset.hyperperiod apps in
  let hyperperiod = hyperperiods * base_hyperperiod in
  let prio = Priority.assign ?order:priority_order happ in
  let jobs = ref [] in
  let next = ref 0 in
  (* id_of.(graph).(task).(instance) *)
  let id_of =
    Array.init (Happ.n_graphs happ) (fun gi ->
        let hg = Happ.graph happ gi in
        let instances = hyperperiod / Happ.period hg in
        Array.init
          (Array.length hg.Happ.tasks)
          (fun _ -> Array.make instances (-1))) in
  for gi = 0 to Happ.n_graphs happ - 1 do
    let hg = Happ.graph happ gi in
    let period = Happ.period hg in
    let deadline = Happ.deadline hg in
    let instances = hyperperiod / period in
    let droppable = Happ.graph_droppable happ gi in
    let in_dropped_set = Happ.graph_in_dropped_set happ gi in
    Array.iter
      (fun (ht : Happ.htask) ->
        for inst = 0 to instances - 1 do
          let id = !next in
          incr next;
          id_of.(gi).(ht.Happ.id).(inst) <- id;
          let release = inst * period in
          jobs :=
            { Job.id; graph = gi; task = ht.Happ.id; instance = inst;
              release; abs_deadline = release + deadline;
              proc = ht.Happ.proc; priority = prio.(gi).(ht.Happ.id);
              bcet = ht.Happ.bcet; wcet = ht.Happ.wcet;
              critical_wcet = ht.Happ.critical_wcet;
              reexec_k = ht.Happ.reexec_k; recovery = ht.Happ.recovery;
              passive = ht.Happ.passive;
              voter = (ht.Happ.role = Happ.Voter); origin = ht.Happ.origin;
              droppable; in_dropped_set }
            :: !jobs
        done)
      hg.Happ.tasks
  done;
  let jobs = Array.of_list (List.rev !jobs) in
  let n = Array.length jobs in
  let preds = Array.make n [||] and succs = Array.make n [] in
  Array.iter
    (fun (j : Job.t) ->
      let hg = Happ.graph happ j.Job.graph in
      let graph_edges =
        Array.map
          (fun (src_task, size) ->
            let src_id = id_of.(j.Job.graph).(src_task).(j.Job.instance) in
            let src_job = jobs.(src_id) in
            let delay =
              Arch.comm_delay arch ~size ~src_proc:src_job.Job.proc
                ~dst_proc:j.Job.proc in
            (src_id, delay))
          hg.Happ.preds.(j.Job.task) in
      let edges =
        (* Successive instances of a task execute in release order (they
           share a processor and a priority), which the edge makes
           explicit — it removes spurious self-interference from the
           analysis. *)
        if j.Job.instance > 0 then
          Array.append graph_edges
            [| (id_of.(j.Job.graph).(j.Job.task).(j.Job.instance - 1), 0) |]
        else graph_edges in
      preds.(j.Job.id) <- edges;
      Array.iter
        (fun (src_id, delay) ->
          succs.(src_id) <- (j.Job.id, delay) :: succs.(src_id))
        edges)
    jobs;
  let succs = Array.map (fun l -> Array.of_list (List.rev l)) succs in
  let by_proc =
    let buckets = Array.make (Arch.n_procs arch) [] in
    for i = n - 1 downto 0 do
      buckets.(jobs.(i).Job.proc) <- i :: buckets.(jobs.(i).Job.proc)
    done;
    Array.map Array.of_list buckets in
  let topo =
    let deg = Array.map Array.length preds in
    let ready = ref [] in
    for v = n - 1 downto 0 do
      if deg.(v) = 0 then ready := v :: !ready
    done;
    let order = Array.make n (-1) in
    let rec loop i = function
      | [] -> i
      | v :: rest ->
        order.(i) <- v;
        let rest =
          Array.fold_left
            (fun acc (w, _) ->
              deg.(w) <- deg.(w) - 1;
              if deg.(w) = 0 then w :: acc else acc)
            rest succs.(v) in
        loop (i + 1) rest in
    let filled = loop 0 !ready in
    assert (filled = n);
    order in
  { happ; hyperperiod; base_hyperperiod; jobs; preds; succs; by_proc;
    topo }

let n_jobs t = Array.length t.jobs

(* Sub-jobset of a set of graphs, exactly as the full build would order
   it: jobs keep their relative order (so Gauss-Seidel sweeps visit them
   in the same sequence), edges/processor buckets/topological order are
   filtered in place, and priorities are renumbered densely — the
   analysis only ever compares priorities of same-processor jobs, and a
   restriction closed under processor sharing contains every such
   comparand, so dense renumbering preserves all comparisons while making
   the result independent of the task counts of absent graphs. *)
(* The empty restriction ([graphs = [||]]) needs no special case: every
   derived structure below filters down to empty, which is exactly the
   advertised boundary behaviour (and what the analyses expect — their
   sweeps are vacuous and converge on the first pass). *)
let restrict t ~graphs =
  let n_graphs = Happ.n_graphs t.happ in
  let keep_graph = Array.make n_graphs false in
  Array.iter
    (fun g ->
      if g < 0 || g >= n_graphs then invalid_arg "Jobset.restrict";
      keep_graph.(g) <- true)
    graphs;
  let n = Array.length t.jobs in
  let newid = Array.make n (-1) in
  let count = ref 0 in
  for j = 0 to n - 1 do
    if keep_graph.(t.jobs.(j).Job.graph) then begin
      newid.(j) <- !count;
      incr count
    end
  done;
  let m = !count in
  let old_of = Array.make m (-1) in
  for j = 0 to n - 1 do
    if newid.(j) >= 0 then old_of.(newid.(j)) <- j
  done;
  (* Dense priority ranks: same-task jobs share a rank, distinct tasks
     keep their strict order. *)
  let module Iset = Set.Make (Int) in
  let prios =
    Array.fold_left
      (fun acc j -> Iset.add t.jobs.(j).Job.priority acc)
      Iset.empty old_of in
  let rank = Hashtbl.create 64 in
  List.iteri (fun i p -> Hashtbl.replace rank p i) (Iset.elements prios);
  let remap (p, delay) =
    let p' = newid.(p) in
    assert (p' >= 0);
    (p', delay) in
  let jobs =
    Array.init m (fun k ->
        let job = t.jobs.(old_of.(k)) in
        { job with Job.id = k;
          priority = Hashtbl.find rank job.Job.priority }) in
  let preds = Array.init m (fun k -> Array.map remap t.preds.(old_of.(k))) in
  let succs = Array.init m (fun k -> Array.map remap t.succs.(old_of.(k))) in
  let by_proc =
    Array.map
      (fun ids ->
        let kept =
          Array.to_list ids
          |> List.filter_map (fun j ->
                 if newid.(j) >= 0 then Some newid.(j) else None) in
        Array.of_list kept)
      t.by_proc in
  let topo =
    let kept =
      Array.to_list t.topo
      |> List.filter_map (fun j ->
             if newid.(j) >= 0 then Some newid.(j) else None) in
    Array.of_list kept in
  { happ = t.happ; hyperperiod = t.hyperperiod;
    base_hyperperiod = t.base_hyperperiod; jobs; preds; succs; by_proc;
    topo }

let job t i = t.jobs.(i)

let find t ~graph ~task ~instance =
  let n = n_jobs t in
  let rec search i =
    if i >= n then raise Not_found
    else begin
      let j = t.jobs.(i) in
      if j.Job.graph = graph && j.Job.task = task
         && j.Job.instance = instance then j
      else search (i + 1)
    end in
  search 0

let jobs_of_task t ~graph ~task =
  let acc = ref [] in
  for i = n_jobs t - 1 downto 0 do
    let j = t.jobs.(i) in
    if j.Job.graph = graph && j.Job.task = task then acc := j :: !acc
  done;
  !acc

let response_jobs t ~graph =
  let hg = Happ.graph t.happ graph in
  let sinks = Happ.sink_response_tasks hg in
  List.concat_map (fun task -> jobs_of_task t ~graph ~task) sinks

let triggers t =
  let acc = ref [] in
  for i = n_jobs t - 1 downto 0 do
    let j = t.jobs.(i) in
    if j.Job.reexec_k > 0 || j.Job.passive then acc := j :: !acc
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "jobset: %d jobs over hyperperiod %d" (n_jobs t)
    t.hyperperiod
