(** Flat-kernel rewrite of the {!Bounds} best/worst interval analysis —
    same algorithm, same results, structure-of-arrays execution.

    {!Bounds.analyze} is the innermost loop of Algorithm 1: every GA
    generation, campaign shard and evaluator session runs it thousands
    of times on cold (uncached) inputs. This module re-implements the
    identical fixed point with the data laid out for that loop:

    - job fields, precedence edges and interference candidates live in
      preallocated flat [int] arrays (CSR adjacency, no tuples, no
      per-job records touched inside the sweep);
    - the statically-known interference structure is resolved at
      {!make} time: for each job, the same-processor non-related
      higher-or-equal-priority candidates (and, on non-preemptive
      processors, the lower-priority blocking candidates) are
      precomputed, so the sweep never re-tests precedence relatedness
      or priorities;
    - charged-interferer sets are {!Mcmap_util.Bitset} values held in a
      per-domain scratch arena that is reused across evaluations — the
      fixed-point iteration allocates nothing.

    The contract is exact agreement: for every jobset, [exec] hook,
    [?horizon] and [?max_iterations], {!analyze} returns a
    {!Bounds.result} equal field-for-field (every per-job interval and
    the [converged] flag) to what {!Bounds.analyze} returns on a
    {!Bounds.ctx} built with the same options. The [flat-agreement]
    check oracle enforces this over random systems and mutation chains;
    {!Bounds} stays untouched as the differential reference. *)

type ctx
(** Precomputed, scenario-independent data (flattened precedence,
    per-job interference candidates, horizon). Build once per jobset,
    reuse across the many scenario analyses of Algorithm 1 — exactly
    the role of {!Bounds.ctx}. *)

val make : ?horizon:int -> Jobset.t -> ctx
(** Same default horizon as {!Bounds.make}:
    [4 * hyperperiod + max abs_deadline] over the jobs. *)

val jobset : ctx -> Jobset.t

val analyze :
  ?max_iterations:int -> ctx -> exec:(Job.t -> int * int) -> Bounds.result
(** [analyze ctx ~exec] runs the flat fixed point; the result is
    interchangeable with (and equal to) the reference engine's, so
    {!Bounds.graph_wcrt} and {!Bounds.meets_deadlines} apply directly.
    Default iteration cap: {!Bounds.default_max_iterations}.
    @raise Invalid_argument if some [bcet' > wcet'] or a bound is
    negative. *)

val scratch_capacity : unit -> int
(** Capacity (in jobs) of the calling domain's scratch arena — 0 before
    the first {!analyze} on this domain. Exposed for tests asserting the
    arena is actually reused rather than regrown per evaluation. *)
