module Arch = Mcmap_model.Arch
module Proc = Mcmap_model.Proc
module Obs = Mcmap_obs.Obs
module Bitset = Mcmap_util.Bitset

(* Structure-of-arrays twin of [Bounds]. The algorithm is the reference
   fixed point verbatim (same sweeps in the same topological order, same
   pay-once / busy-chain-restart rules, same horizon and iteration cap)
   — only the data layout differs, so the two engines must agree field
   for field on every input. The [flat-agreement] oracle holds us to
   that. *)

type ctx = {
  js : Jobset.t;
  n : int;
  horizon : int;
  release : int array;
  topo : int array;
  (* Precedence in CSR form, edges in [Jobset.preds] order. *)
  pred_off : int array;  (* length n + 1 *)
  pred_job : int array;
  pred_delay : int array;
  (* Interference candidates as one bitset row per job: the
     same-processor, non-precedence-related jobs of higher-or-equal
     priority. Relatedness and priorities are static per jobset, so the
     sweep only re-tests the dynamic parts (silence and window
     overlap) — and it does so over [cand ∧ ¬paid] word-wise, so jobs
     whose burst is already paid cost nothing to skip. *)
  cand_mask : Bitset.t array;
  (* Blocking candidates: same-processor, non-related jobs of strictly
     lower priority on non-preemptive processors (always empty on
     preemptive ones). *)
  block_off : int array;
  block_job : int array;
  (* Successors (reverse precedence), for dirty propagation. *)
  succ_off : int array;
  succ_job : int array;
  (* Processor membership for the precise peer wake-up: [proc_jobs] is
     the concatenation of the [by_proc] rows and [proc_off] its CSR
     offsets (one slice per processor); [proc_of.(j)] is [j]'s
     processor. *)
  proc_of : int array;
  proc_off : int array;  (* length n_procs + 1 *)
  proc_jobs : int array;
}

(* ------------------------------------------------------------------ *)
(* Scratch arena: one per domain, reused across evaluations. Grows
   monotonically to the largest jobset analysed on that domain;
   [analyze] allocates only when the arena must grow (and for the final
   result record, which the caller keeps). Per-domain storage makes the
   engine safe under the evaluator's multi-domain population sweeps
   without any locking. *)

type arena = {
  mutable cap : int;
  mutable bc : int array;
  mutable wc : int array;
  mutable a_min_start : int array;
  mutable a_min_finish : int array;
  mutable a_max_ready : int array;
  mutable a_max_finish : int array;
  mutable charged : Bitset.t array;
  mutable paid : Bitset.t;
  (* Dirty flags for the delta sweeps (see [analyze]). *)
  mutable dirty : Bytes.t;
  (* Per-processor job slices sorted by [min_start], rebuilt each
     analysis for the interval wake-up. *)
  mutable sorted : int array;
}

let arena_key =
  Domain.DLS.new_key (fun () ->
      { cap = 0; bc = [||]; wc = [||]; a_min_start = [||];
        a_min_finish = [||]; a_max_ready = [||]; a_max_finish = [||];
        charged = [||]; paid = Bitset.create 0; dirty = Bytes.empty;
        sorted = [||] })

let arena_for n =
  let a = Domain.DLS.get arena_key in
  if a.cap < n then begin
    (* Growth is rare (monotone per domain); a growing steady state
       means the arena is being thrashed by ever-larger jobsets. The
       gauge merges by max, so it reports the largest arena anywhere. *)
    if Obs.enabled () then begin
      Obs.incr ~label:"grow" "flat.arena";
      Obs.gauge "flat.arena_capacity" (float_of_int n)
    end;
    a.cap <- n;
    a.bc <- Array.make n 0;
    a.wc <- Array.make n 0;
    a.a_min_start <- Array.make n 0;
    a.a_min_finish <- Array.make n 0;
    a.a_max_ready <- Array.make n 0;
    a.a_max_finish <- Array.make n 0;
    a.charged <- Array.init n (fun _ -> Bitset.create n);
    a.paid <- Bitset.create n;
    a.dirty <- Bytes.make n '\000';
    a.sorted <- Array.make n 0
  end;
  a

let scratch_capacity () = (Domain.DLS.get arena_key).cap

(* ------------------------------------------------------------------ *)
(* Context construction: flatten the jobset and resolve every static
   test of the reference inner loop ([related], priorities, the
   non-preemptive policy) into candidate lists. *)

let make ?horizon js =
  let n = Jobset.n_jobs js in
  let jobs = js.Jobset.jobs in
  (* Precedence relatedness, as in [Bounds.make]: ancestors by a forward
     closure along the topological order, then symmetrised — here as
     bitset rows, so the closure unions whole words. *)
  let related = Array.init n (fun _ -> Bitset.create n) in
  Array.iter
    (fun j ->
      Bitset.add related.(j) j;
      Array.iter
        (fun (p, _) -> Bitset.union_into ~dst:related.(j) related.(p))
        js.Jobset.preds.(j))
    js.Jobset.topo;
  for j = 0 to n - 1 do
    Bitset.iter (fun k -> Bitset.add related.(k) j) related.(j)
  done;
  let horizon =
    match horizon with
    | Some h -> h
    | None ->
      let max_deadline =
        Array.fold_left
          (fun acc (j : Job.t) -> max acc j.Job.abs_deadline)
          0 jobs in
      (4 * js.Jobset.hyperperiod) + max_deadline in
  let arch = js.Jobset.happ.Mcmap_hardening.Happ.arch in
  let non_preemptive =
    Array.init (Arch.n_procs arch) (fun p ->
        match (Arch.proc arch p).Proc.policy with
        | Proc.Non_preemptive_fp -> true
        | Proc.Preemptive_fp -> false) in
  let release = Array.map (fun (j : Job.t) -> j.Job.release) jobs in
  (* CSR precedence. *)
  let pred_off = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    pred_off.(j + 1) <- pred_off.(j) + Array.length js.Jobset.preds.(j)
  done;
  let n_edges = pred_off.(n) in
  let pred_job = Array.make (max 1 n_edges) 0 in
  let pred_delay = Array.make (max 1 n_edges) 0 in
  for j = 0 to n - 1 do
    Array.iteri
      (fun i (p, delay) ->
        pred_job.(pred_off.(j) + i) <- p;
        pred_delay.(pred_off.(j) + i) <- delay)
      js.Jobset.preds.(j)
  done;
  (* Candidate partition: interference candidates as bitset rows
     (iterated word-wise against [paid] in the sweep — membership order
     is immaterial because pay-once adds are independent and the
     interference term is a plain sum), blocking candidates in CSR form
     (counted, then filled in [by_proc] order). *)
  let cand_mask = Array.init n (fun _ -> Bitset.create n) in
  let block_off = Array.make (n + 1) 0 in
  let classify j k =
    (* 0 = skipped, 1 = interference candidate, 2 = blocking candidate *)
    if k = j || Bitset.mem related.(j) k then 0
    else if jobs.(k).Job.priority <= jobs.(j).Job.priority then 1
    else if non_preemptive.(jobs.(j).Job.proc) then 2
    else 0 in
  for j = 0 to n - 1 do
    let nb = ref 0 in
    Array.iter
      (fun k ->
        match classify j k with
        | 1 -> Bitset.add cand_mask.(j) k
        | 2 -> incr nb
        | _ -> ())
      js.Jobset.by_proc.(jobs.(j).Job.proc);
    block_off.(j + 1) <- block_off.(j) + !nb
  done;
  let block_job = Array.make (max 1 block_off.(n)) 0 in
  for j = 0 to n - 1 do
    let b = ref block_off.(j) in
    Array.iter
      (fun k -> if classify j k = 2 then begin
          block_job.(!b) <- k;
          incr b
        end)
      js.Jobset.by_proc.(jobs.(j).Job.proc)
  done;
  (* Reverse CSR: successors, for dirty propagation only (unordered). *)
  let succ_off = Array.make (n + 1) 0 in
  for e = 0 to n_edges - 1 do
    let p = pred_job.(e) in
    succ_off.(p + 1) <- succ_off.(p + 1) + 1
  done;
  for p = 0 to n - 1 do
    succ_off.(p + 1) <- succ_off.(p + 1) + succ_off.(p)
  done;
  let succ_job = Array.make (max 1 n_edges) 0 in
  let cursor = Array.copy succ_off in
  for j = 0 to n - 1 do
    for e = pred_off.(j) to pred_off.(j + 1) - 1 do
      let p = pred_job.(e) in
      succ_job.(cursor.(p)) <- j;
      cursor.(p) <- cursor.(p) + 1
    done
  done;
  let n_procs = Arch.n_procs arch in
  let proc_of = Array.map (fun (j : Job.t) -> j.Job.proc) jobs in
  let proc_off = Array.make (n_procs + 1) 0 in
  for p = 0 to n_procs - 1 do
    proc_off.(p + 1) <- proc_off.(p) + Array.length js.Jobset.by_proc.(p)
  done;
  let proc_jobs = Array.make (max 1 n) 0 in
  for p = 0 to n_procs - 1 do
    Array.iteri
      (fun i k -> proc_jobs.(proc_off.(p) + i) <- k)
      js.Jobset.by_proc.(p)
  done;
  { js; n; horizon; release; topo = js.Jobset.topo;
    pred_off; pred_job; pred_delay; cand_mask; block_off;
    block_job; succ_off; succ_job; proc_of; proc_off; proc_jobs }

let jobset ctx = ctx.js

(* ------------------------------------------------------------------ *)
(* The fixed point. Mirrors [Bounds.analyze] sweep for sweep; scalar
   accumulators are hoisted refs and all indices are in-bounds by
   construction, so the loop body performs no allocation and no
   redundant checks. *)

let analyze ?(max_iterations = Bounds.default_max_iterations) ctx ~exec =
  let n = ctx.n in
  let a = arena_for n in
  let bc = a.bc and wc = a.wc in
  let min_start = a.a_min_start and min_finish = a.a_min_finish in
  let max_ready = a.a_max_ready and max_finish = a.a_max_finish in
  let charged = a.charged and paid = a.paid in
  Array.iter
    (fun (j : Job.t) ->
      let b, w = exec j in
      if b < 0 || b > w then
        invalid_arg "Flat.analyze: invalid execution bounds";
      bc.(j.Job.id) <- b;
      wc.(j.Job.id) <- w)
    ctx.js.Jobset.jobs;
  let topo = ctx.topo in
  let release = ctx.release in
  let pred_off = ctx.pred_off
  and pred_job = ctx.pred_job
  and pred_delay = ctx.pred_delay in
  let cand_mask = ctx.cand_mask in
  let paid_words = Bitset.words paid in
  let block_off = ctx.block_off and block_job = ctx.block_job in
  (* Best case: interference-free forward pass; silent predecessors
     (wcet' = 0) contribute no data (cf. the reference). *)
  let acc = ref 0 in
  for t = 0 to n - 1 do
    let j = Array.unsafe_get topo t in
    acc := Array.unsafe_get release j;
    for e = Array.unsafe_get pred_off j to Array.unsafe_get pred_off (j + 1) - 1 do
      let p = Array.unsafe_get pred_job e in
      if Array.unsafe_get wc p <> 0 then begin
        let f = Array.unsafe_get min_finish p + Array.unsafe_get pred_delay e in
        if f > !acc then acc := f
      end
    done;
    Array.unsafe_set min_start j !acc;
    Array.unsafe_set min_finish j (!acc + Array.unsafe_get bc j)
  done;
  (* Worst case: data-ready + wcet, no interference yet. *)
  for t = 0 to n - 1 do
    let j = Array.unsafe_get topo t in
    acc := Array.unsafe_get release j;
    for e = Array.unsafe_get pred_off j to Array.unsafe_get pred_off (j + 1) - 1 do
      let f =
        Array.unsafe_get max_finish (Array.unsafe_get pred_job e)
        + Array.unsafe_get pred_delay e in
      if f > !acc then acc := f
    done;
    Array.unsafe_set max_ready j !acc;
    Array.unsafe_set max_finish j (!acc + Array.unsafe_get wc j)
  done;
  (* Stale charged state from a previous evaluation is never read (each
     row is rewritten before any successor reads it, in topological
     order), but a cleared arena keeps the engine's state independent of
     analysis history — cheap insurance for exactness. *)
  for j = 0 to n - 1 do
    Bitset.clear charged.(j)
  done;
  (* Sort each processor's job slice by [min_start] (fixed for the rest
     of this analysis) so finish-growth wake-ups can binary-search the
     affected peers. Insertion sort: the [by_proc] rows arrive roughly
     in release order, which correlates with [min_start], so this is
     near-linear in practice. *)
  let sorted = a.sorted in
  let proc_off = ctx.proc_off in
  Array.blit ctx.proc_jobs 0 sorted 0 n;
  for p = 0 to Array.length proc_off - 2 do
    let lo = proc_off.(p) in
    for i = lo + 1 to proc_off.(p + 1) - 1 do
      let v = Array.unsafe_get sorted i in
      let key = Array.unsafe_get min_start v in
      let m = ref i in
      while
        !m > lo
        && Array.unsafe_get min_start
             (Array.unsafe_get sorted (!m - 1))
           > key
      do
        Array.unsafe_set sorted !m (Array.unsafe_get sorted (!m - 1));
        decr m
      done;
      Array.unsafe_set sorted !m v
    done
  done;
  (* Delta sweeps. A job's step is a deterministic function of its
     dynamic inputs: the [max_finish] and [charged] rows of its
     predecessors, the [max_finish] of its same-processor peers
     (candidates and blockers), and its own [max_finish] (the overlap
     tests read it). Everything else ([release], [min_start],
     [min_finish], the candidate partition) is fixed after the passes
     above. So a job whose inputs did not change since its last
     recomputation would recompute to exactly its current state — the
     sweep may skip it without altering any value, the per-sweep
     [changed] flag, the iteration count or the overflow flag. Dirty
     flags implement that: every job starts dirty (sweep 1 is the full
     reference sweep); a recomputation that changes [charged] re-dirties
     the successors, and one that grows [max_finish] from [old] to [new]
     re-dirties the successors plus exactly the same-processor jobs the
     growth can be observed by. A peer [k] reads [j]'s [max_finish] only
     in the strict window tests [min_start k < max_finish j] (own
     overlap and blocking) and [j] reads it against its candidates'
     [min_start] — and [min_start] is fixed after the best-case pass —
     so a growth flips a verdict iff that peer's [min_start] lies in
     [old, new). The slices sorted above turn that into a binary search
     plus an interval walk that is empty for most growths ([j] itself
     re-runs only when the interval is non-empty). Topologically later
     jobs marked mid-sweep are recomputed in the same sweep — exactly
     the jobs that would observe the new value in the reference's
     Gauss-Seidel sweep — while earlier ones keep their flag for the
     next sweep. *)
  let dirty = a.dirty in
  Bytes.fill dirty 0 n '\001';
  let succ_off = ctx.succ_off and succ_job = ctx.succ_job in
  let proc_of = ctx.proc_of in
  let horizon = ctx.horizon in
  let overflow = ref false in
  let converged = ref false in
  let iter = ref 0 in
  let changed = ref false in
  (* Attribution accumulators: [rec_on] is hoisted so the sweep pays one
     predictable branch per counter when recording is off, and the
     totals are flushed to [Obs] once after the fixed point. *)
  let rec_on = Obs.enabled () in
  let n_recomputed = ref 0
  and n_wake_succ = ref 0
  and n_wake_peer = ref 0
  and n_wake_self = ref 0
  and n_cand_words = ref 0 in
  let data_ready = ref 0
  and guaranteed = ref 0
  and interference = ref 0
  and blocking = ref 0 in
  while (not !converged) && (not !overflow) && !iter < max_iterations do
    incr iter;
    changed := false;
    for t = 0 to n - 1 do
      let j = Array.unsafe_get topo t in
      if Bytes.unsafe_get dirty j <> '\000' then begin
      Bytes.unsafe_set dirty j '\000';
      if rec_on then incr n_recomputed;
      let rel_j = Array.unsafe_get release j in
      let e0 = Array.unsafe_get pred_off j in
      let e1 = Array.unsafe_get pred_off (j + 1) in
      data_ready := min_int;
      guaranteed := min_int;
      for e = e0 to e1 - 1 do
        let p = Array.unsafe_get pred_job e in
        let delay = Array.unsafe_get pred_delay e in
        let f = Array.unsafe_get max_finish p + delay in
        if f > !data_ready then data_ready := f;
        (* Pay-once inheritance is only sound while the busy chain is
           certainly continuous — continuity is established from the
           guaranteed (best-case) data-ready time, and silent
           predecessors cannot sustain the chain (see [Bounds]). *)
        if Array.unsafe_get wc p <> 0 then begin
          let g = Array.unsafe_get min_finish p + delay in
          if g > !guaranteed then guaranteed := g
        end
      done;
      let ready = if rel_j > !data_ready then rel_j else !data_ready in
      if !guaranteed < rel_j || e0 = e1 then Bitset.clear paid
      else begin
        Bitset.blit ~src:charged.(Array.unsafe_get pred_job e0) ~dst:paid;
        for e = e0 + 1 to e1 - 1 do
          Bitset.inter_into ~dst:paid charged.(Array.unsafe_get pred_job e)
        done
      end;
      interference := 0;
      blocking := 0;
      let mf_j = Array.unsafe_get max_finish j in
      let ms_j = Array.unsafe_get min_start j in
      (* Unpaid candidates only: walk the set bits of [cand ∧ ¬paid]
         word by word. Each word is snapshotted before its bits are
         visited, so the [Bitset.unsafe_add] below (which touches the
         word already snapshotted, never a later one in this walk of
         distinct indices) cannot disturb the iteration. As the fixed
         point progresses, [paid] rows fill up and this walk shrinks,
         whereas the reference rescans its full candidate list every
         sweep. *)
      let cm = Bitset.words (Array.unsafe_get cand_mask j) in
      if rec_on then n_cand_words := !n_cand_words + Array.length cm;
      for wi = 0 to Array.length cm - 1 do
        let x =
          ref (Array.unsafe_get cm wi
               land lnot (Array.unsafe_get paid_words wi)) in
        if !x <> 0 then begin
          let base = wi * 63 in
          let bit = ref 0 in
          while !x <> 0 do
            while !x land 0xFF = 0 do
              x := !x lsr 8;
              bit := !bit + 8
            done;
            while !x land 1 = 0 do
              x := !x lsr 1;
              incr bit
            done;
            let k = base + !bit in
            let w = Array.unsafe_get wc k in
            (* Half-open execution-window overlap, then pay-once. *)
            if w > 0
               && Array.unsafe_get min_start k < mf_j
               && ms_j < Array.unsafe_get max_finish k then begin
              interference := !interference + w;
              Bitset.unsafe_add paid k
            end;
            x := !x lsr 1;
            incr bit
          done
        end
      done;
      for c = Array.unsafe_get block_off j to Array.unsafe_get block_off (j + 1) - 1 do
        let k = Array.unsafe_get block_job c in
        let w = Array.unsafe_get wc k in
        if w > !blocking
           && w > 0
           && Array.unsafe_get min_start k < mf_j
           && ms_j < Array.unsafe_get max_finish k then
          blocking := w
      done;
      let charged_changed = not (Bitset.equal paid charged.(j)) in
      if charged_changed then Bitset.blit ~src:paid ~dst:charged.(j);
      let start = ready + !interference + !blocking in
      let finish = start + Array.unsafe_get wc j in
      let finish_changed = finish > mf_j in
      if finish_changed then begin
        Array.unsafe_set max_finish j finish;
        Array.unsafe_set max_ready j start;
        changed := true;
        if finish > horizon then overflow := true
      end;
      if finish_changed || charged_changed then begin
        let s0 = Array.unsafe_get succ_off j in
        let s1 = Array.unsafe_get succ_off (j + 1) in
        if rec_on then n_wake_succ := !n_wake_succ + (s1 - s0);
        for e = s0 to s1 - 1 do
          Bytes.unsafe_set dirty (Array.unsafe_get succ_job e) '\001'
        done
      end;
      if finish_changed then begin
        (* Wake the peers whose [min_start] lies in [mf_j, finish):
           binary-search the sorted slice for the lower bound, then walk
           the (usually empty) interval. *)
        let p = Array.unsafe_get proc_of j in
        let hi = Array.unsafe_get proc_off (p + 1) in
        let l = ref (Array.unsafe_get proc_off p) and r = ref hi in
        while !l < !r do
          let mid = (!l + !r) / 2 in
          if Array.unsafe_get min_start (Array.unsafe_get sorted mid)
             < mf_j
          then l := mid + 1
          else r := mid
        done;
        let woke = ref false in
        let continue_walk = ref true in
        let l0 = !l in
        while !continue_walk && !l < hi do
          let k = Array.unsafe_get sorted !l in
          if Array.unsafe_get min_start k < finish then begin
            Bytes.unsafe_set dirty k '\001';
            woke := true;
            incr l
          end
          else continue_walk := false
        done;
        if rec_on then n_wake_peer := !n_wake_peer + (!l - l0);
        if !woke then begin
          Bytes.unsafe_set dirty j '\001';
          if rec_on then incr n_wake_self
        end
      end
      end
    done;
    if not !changed then converged := true
  done;
  if rec_on then begin
    Obs.incr "flat.analyses";
    Obs.observe "flat.fixpoint_iterations" !iter;
    Obs.observe "flat.recomputed_jobs" !n_recomputed;
    Obs.incr ~by:!n_wake_succ ~label:"succ" "flat.wakeups";
    Obs.incr ~by:!n_wake_peer ~label:"peer" "flat.wakeups";
    Obs.incr ~by:!n_wake_self ~label:"self" "flat.wakeups";
    Obs.incr ~by:!n_cand_words "flat.cand_words_scanned";
    if not (!converged && not !overflow) then Obs.incr "flat.diverged"
  end;
  let bounds =
    Array.init n (fun j ->
        { Bounds.min_start = min_start.(j); min_finish = min_finish.(j);
          max_start = max_ready.(j); max_finish = max_finish.(j) }) in
  { Bounds.bounds; converged = !converged && not !overflow }
