(** Analytic best-case-start / worst-case-finish bounds — the [sched]
    backend required by Algorithm 1 of the paper (in the role of Kim et
    al.'s DAC'13 analysis, ref [9]).

    For every job the analysis derives a safe interval
    [[min_start, max_finish]]:

    - best case by a forward pass over the job DAG assuming no
      interference (each job runs for its best-case execution time as
      soon as its predecessors' best cases allow);
    - worst case by a monotone fixed point: a job's worst finish is its
      latest data-ready time plus its worst-case execution time plus the
      execution demand of every same-processor, higher-or-equal-priority,
      non-precedence-related job whose execution window can overlap its
      own (plus a blocking term on non-preemptive processors).
      Interference is charged with pay-bursts-only-once accounting: an
      interferer job executes once, so cycles charged along every
      predecessor path are not charged again — except across busy-chain
      restarts (a release that strictly dominates all predecessor
      completions), where the charged set must reset.

    Worst-case values only grow during iteration and are capped by a
    horizon; exceeding the cap (or the iteration budget) yields
    [converged = false] — an explicit "no safe bound" verdict. *)

type job_bounds = {
  min_start : int;
  min_finish : int;
  max_start : int;
  max_finish : int;
}

type result = {
  bounds : job_bounds array;  (** indexed by job id *)
  converged : bool;
      (** [false] when the fixed point hit the horizon or iteration cap:
          worst-case values are then unreliable upper estimates *)
}

type ctx
(** Precomputed, scenario-independent data (precedence reachability,
    per-processor job lists). Build once per jobset, reuse across the many
    scenario analyses of Algorithm 1. *)

val make : ?horizon:int -> Jobset.t -> ctx
(** Default horizon: [4 * hyperperiod + max abs_deadline] over the jobs.
    Pass [?horizon] explicitly when analysing a restricted jobset
    ({!Jobset.restrict}) that must diverge at exactly the same cap as the
    full analysis it stands in for. *)

val jobset : ctx -> Jobset.t

val default_max_iterations : int
(** The single shared fixed-point sweep cap (64). Every layer that
    forwards a [?max_iterations] — {!analyze}, [Wcrt.analyze],
    [Evaluator.create], [Ga.config] — defaults to this value; callers
    should not restate the constant. *)

val analyze :
  ?max_iterations:int -> ctx -> exec:(Job.t -> int * int) -> result
(** [analyze ctx ~exec] runs the analysis with per-job execution bounds
    [exec job = (bcet', wcet')] — the scenario hook Algorithm 1 uses to
    encode normal / transition / critical states. Default iteration cap:
    {!default_max_iterations} sweeps.
    @raise Invalid_argument if some [bcet' > wcet'] or a bound is
    negative. *)

val nominal_exec : Job.t -> int * int
(** The normal-state bounds of §3: passive spares are silent ([0, 0]);
    every other job keeps its nominal [(bcet, wcet)]. *)

val graph_wcrt : Jobset.t -> result -> graph:int -> int option
(** Worst response time of the graph over all its response-defining jobs
    (relative to each job's release); [None] if the analysis did not
    converge. *)

val meets_deadlines : Jobset.t -> result -> bool
(** Every job finishes by its absolute deadline (and the analysis
    converged). *)
