module Arch = Mcmap_model.Arch
module Proc = Mcmap_model.Proc
module Obs = Mcmap_obs.Obs

type job_bounds = {
  min_start : int;
  min_finish : int;
  max_start : int;
  max_finish : int;
}

type result = {
  bounds : job_bounds array;
  converged : bool;
}

type ctx = {
  js : Jobset.t;
  related : Bytes.t array;
      (* related.(j).[k] = '\001' iff k is an ancestor or descendant of j
         (or j itself): such jobs cannot execute while j waits or runs. *)
  horizon : int;
  non_preemptive : bool array; (* per processor *)
}

let default_max_iterations = 64

let make ?horizon js =
  let n = Jobset.n_jobs js in
  let related = Array.init n (fun _ -> Bytes.make n '\000') in
  (* Mark ancestors: forward closure along the topological order. *)
  Array.iter
    (fun j ->
      Bytes.set related.(j) j '\001';
      Array.iter
        (fun (p, _) ->
          for k = 0 to n - 1 do
            if Bytes.get related.(p) k = '\001' then
              Bytes.set related.(j) k '\001'
          done)
        js.Jobset.preds.(j))
    js.Jobset.topo;
  (* Symmetrise: ancestors of j know j as a descendant. *)
  for j = 0 to n - 1 do
    for k = 0 to n - 1 do
      if Bytes.get related.(j) k = '\001' then
        Bytes.set related.(k) j '\001'
    done
  done;
  let horizon =
    match horizon with
    | Some h -> h
    | None ->
      let max_deadline =
        Array.fold_left
          (fun acc (j : Job.t) -> max acc (j.Job.abs_deadline))
          0 js.Jobset.jobs in
      (4 * js.Jobset.hyperperiod) + max_deadline in
  let arch = js.Jobset.happ.Mcmap_hardening.Happ.arch in
  let non_preemptive =
    Array.init (Arch.n_procs arch) (fun p ->
        match (Arch.proc arch p).Proc.policy with
        | Proc.Non_preemptive_fp -> true
        | Proc.Preemptive_fp -> false) in
  { js; related; horizon; non_preemptive }

let jobset ctx = ctx.js

let nominal_exec (j : Job.t) =
  if j.Job.passive then (0, 0) else (j.Job.bcet, j.Job.wcet)

(* Charged-interferer sets as int-array bitsets. *)
module Bitset = struct
  let words n = (n + 62) / 63

  let mem set k = set.((k : int) / 63) land (1 lsl (k mod 63)) <> 0

  let add set k = set.(k / 63) <- set.(k / 63) lor (1 lsl (k mod 63))

  let inter_into ~dst sets =
    match sets with
    | [] -> Array.fill dst 0 (Array.length dst) 0
    | first :: rest ->
      Array.blit first 0 dst 0 (Array.length dst);
      List.iter
        (fun s ->
          Array.iteri (fun w v -> dst.(w) <- dst.(w) land v) s)
        rest

  let cardinal set =
    let total = ref 0 in
    Array.iter
      (fun word ->
        let x = ref word in
        while !x <> 0 do
          x := !x land (!x - 1);
          incr total
        done)
      set;
    !total
end

let analyze ?(max_iterations = default_max_iterations) ctx ~exec =
  let js = ctx.js in
  let n = Jobset.n_jobs js in
  (* hoisted so the disabled path costs one branch on an immutable bool *)
  let rec_on = Obs.enabled () in
  let restarts = ref 0 and pay_once_hits = ref 0 in
  let bc = Array.make n 0 and wc = Array.make n 0 in
  Array.iter
    (fun (j : Job.t) ->
      let b, w = exec j in
      if b < 0 || b > w then
        invalid_arg "Bounds.analyze: invalid execution bounds";
      bc.(j.Job.id) <- b;
      wc.(j.Job.id) <- w)
    js.Jobset.jobs;
  let min_start = Array.make n 0 and min_finish = Array.make n 0 in
  let max_ready = Array.make n 0 and max_finish = Array.make n 0 in
  (* Best case: interference-free forward pass. Silent predecessors
     (wcet' = 0: skipped spares, certainly dropped jobs) contribute no
     data and must not raise the lower bound — overestimating min_start
     would be unsafe for Algorithm 1's chronology tests. *)
  Array.iter
    (fun j ->
      let job = Jobset.job js j in
      let ready =
        Array.fold_left
          (fun acc (p, delay) ->
            if wc.(p) = 0 then acc else max acc (min_finish.(p) + delay))
          job.Job.release js.Jobset.preds.(j) in
      min_start.(j) <- ready;
      min_finish.(j) <- ready + bc.(j))
    js.Jobset.topo;
  (* Worst case: initialise with data-ready + wcet, no interference. *)
  Array.iter
    (fun j ->
      let job = Jobset.job js j in
      let ready =
        Array.fold_left
          (fun acc (p, delay) -> max acc (max_finish.(p) + delay))
          job.Job.release js.Jobset.preds.(j) in
      max_ready.(j) <- ready;
      max_finish.(j) <- ready + wc.(j))
    js.Jobset.topo;
  (* Monotone fixed point with pay-burst-only-once accounting: an
     interferer job executes its wcet' cycles exactly once, so cycles
     already charged to every predecessor path of [j] cannot delay [j]
     again. [charged.(j)] is the set of interferers paid for along every
     path into [j]. *)
  let words = Bitset.words n in
  let charged = Array.init n (fun _ -> Array.make words 0) in
  let paid = Array.make words 0 in
  let overflow = ref false in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && (not !overflow) && !iter < max_iterations do
    incr iter;
    let changed = ref false in
    Array.iter
      (fun j ->
        let job = Jobset.job js j in
        let data_ready =
          Array.fold_left
            (fun acc (p, delay) -> max acc (max_finish.(p) + delay))
            min_int js.Jobset.preds.(j) in
        let ready = max job.Job.release data_ready in
        (* Pay-once inheritance is only sound while the busy chain is
           certainly continuous: if in ANY schedule the predecessors can
           all complete before the release, the chain may restart there
           and previously charged interferers can spend all their cycles
           on this job — reset the paid set. Continuity must therefore be
           established from the guaranteed (best-case) data-ready time;
           testing the worst-case data-ready instead is unsound: an
           interferer charged to a predecessor inflates that worst case
           without any guarantee its cycles actually ran before the
           predecessor's real completion. Silent predecessors (wcet' = 0)
           deliver nothing and cannot sustain the chain. *)
        let guaranteed_ready =
          Array.fold_left
            (fun acc (p, delay) ->
              if wc.(p) = 0 then acc else max acc (min_finish.(p) + delay))
            min_int js.Jobset.preds.(j) in
        if rec_on
           && Array.length js.Jobset.preds.(j) > 0
           && guaranteed_ready < job.Job.release
        then incr restarts;
        let pred_sets =
          if guaranteed_ready < job.Job.release then []
          else
            Array.fold_left
              (fun acc (p, _) -> charged.(p) :: acc)
              [] js.Jobset.preds.(j) in
        (match pred_sets with
         | [] -> Array.fill paid 0 words 0
         | _ :: _ -> Bitset.inter_into ~dst:paid pred_sets);
        let interference = ref 0 and blocking = ref 0 in
        let np = ctx.non_preemptive.(job.Job.proc) in
        Array.iter
          (fun k ->
            if k <> j && wc.(k) > 0
               && Bytes.get ctx.related.(j) k = '\000' then begin
              let other = Jobset.job js k in
              (* Half-open execution-window overlap: [k] can only steal
                 cycles from [j] if it may run inside [j]'s window. *)
              let overlap =
                min_start.(k) < max_finish.(j)
                && min_start.(j) < max_finish.(k) in
              if overlap then begin
                if other.Job.priority <= job.Job.priority then begin
                  if not (Bitset.mem paid k) then begin
                    interference := !interference + wc.(k);
                    Bitset.add paid k
                  end
                  else if rec_on then incr pay_once_hits
                end
                else if np then blocking := max !blocking wc.(k)
              end
            end)
          js.Jobset.by_proc.(job.Job.proc);
        (* [paid] now also holds this job's own interferers: exactly the
           charged set to propagate. *)
        Array.blit paid 0 charged.(j) 0 words;
        let start = ready + !interference + !blocking in
        let finish = start + wc.(j) in
        if finish > max_finish.(j) then begin
          max_finish.(j) <- finish;
          max_ready.(j) <- start;
          changed := true;
          if finish > ctx.horizon then overflow := true
        end)
      js.Jobset.topo;
    if not !changed then converged := true
  done;
  if rec_on then begin
    Obs.incr "bounds.analyses";
    Obs.observe "bounds.fixpoint_iterations" !iter;
    Obs.incr ~by:!restarts "bounds.busy_chain_restarts";
    Obs.incr ~by:!pay_once_hits "bounds.pay_once_hits";
    if not (!converged && not !overflow) then Obs.incr "bounds.diverged";
    Array.iter
      (fun set -> Obs.observe "bounds.interferer_set_size" (Bitset.cardinal set))
      charged
  end;
  let bounds =
    Array.init n (fun j ->
        { min_start = min_start.(j); min_finish = min_finish.(j);
          max_start = max_ready.(j); max_finish = max_finish.(j) }) in
  { bounds; converged = !converged && not !overflow }

let graph_wcrt js result ~graph =
  if not result.converged then None
  else begin
    let worst = ref 0 in
    List.iter
      (fun (j : Job.t) ->
        let finish = result.bounds.(j.Job.id).max_finish in
        worst := max !worst (Job.response j ~finish))
      (Jobset.response_jobs js ~graph);
    Some !worst
  end

let meets_deadlines js result =
  result.converged
  && Array.for_all
       (fun (j : Job.t) ->
         result.bounds.(j.Job.id).max_finish <= j.Job.abs_deadline)
       js.Jobset.jobs
