module Sexp = Mcmap_util.Sexp
module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Interconnect = Mcmap_model.Interconnect
module Criticality = Mcmap_model.Criticality
module Task = Mcmap_model.Task
module Channel = Mcmap_model.Channel
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique

type system = {
  arch : Arch.t;
  apps : Appset.t;
}

type error = Ast.error = { epos : Sexp.pos option; msg : string }

let error_to_string = Ast.error_to_string

let ( let* ) = Result.bind

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = collect f rest in
    Ok (y :: ys)

let errf ?pos fmt =
  Format.kasprintf (fun msg -> Error { epos = pos; msg }) fmt

(* Model constructors signal invariant breaches with [Invalid_argument];
   attach the position of the block being built. *)
let protect_at pos f =
  try Ok (f ()) with
  | Invalid_argument msg -> Error { epos = Some pos; msg }

(* ------------------------------------------------------------------ *)
(* Building the model from the raw AST *)

let build_proc id (p : Ast.proc) =
  let* policy =
    match p.Ast.p_policy with
    | None -> Ok Proc.Preemptive_fp
    | Some { v = "preemptive"; _ } -> Ok Proc.Preemptive_fp
    | Some { v = "non-preemptive"; _ } -> Ok Proc.Non_preemptive_fp
    | Some { v = other; pos } ->
      errf ~pos
        "processor %s: unknown policy %s (expected preemptive or \
         non-preemptive)"
        p.Ast.p_name.Ast.v other in
  let value o = Option.map (fun (l : _ Ast.located) -> l.Ast.v) o in
  protect_at p.Ast.p_pos (fun () ->
      Proc.make
        ?proc_type:(value p.Ast.p_type)
        ?static_power:(value p.Ast.p_static)
        ?dynamic_power:(value p.Ast.p_dynamic)
        ?fault_rate:(value p.Ast.p_fault_rate)
        ?speed:(value p.Ast.p_speed)
        ~policy ~id ~name:p.Ast.p_name.Ast.v ())

let check_unique ~what names =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | [] -> Ok ()
    | (name : string Ast.located) :: rest ->
      if Hashtbl.mem seen name.Ast.v then
        errf ~pos:name.Ast.pos "duplicate %s %s" what name.Ast.v
      else begin
        Hashtbl.add seen name.Ast.v ();
        go rest
      end in
  go names

let build_arch (a : Ast.arch) =
  if a.Ast.a_procs = [] then
    errf ~pos:a.Ast.a_pos "architecture: no processors"
  else begin
    let* () =
      check_unique ~what:"processor name"
        (List.map (fun (p : Ast.proc) -> p.Ast.p_name) a.Ast.a_procs) in
    let* procs =
      collect
        (fun (id, p) -> build_proc id p)
        (List.mapi (fun id p -> (id, p)) a.Ast.a_procs) in
    let value ~default o =
      Option.fold ~none:default ~some:(fun (l : _ Ast.located) -> l.Ast.v) o
    in
    let interconnect =
      match a.Ast.a_interconnect with
      | None -> Interconnect.default
      | Some (Ast.I_bus b) ->
        Interconnect.Bus
          { bandwidth = value ~default:1 b.Ast.i_bandwidth;
            latency = value ~default:0 b.Ast.i_latency }
      | Some (Ast.I_noc n) ->
        Interconnect.Noc
          { cols = n.Ast.n_cols.Ast.v; rows = n.Ast.n_rows.Ast.v;
            link_bandwidth = value ~default:1 n.Ast.n_link_bandwidth;
            hop_latency = value ~default:0 n.Ast.n_hop_latency;
            router_latency = value ~default:0 n.Ast.n_router_latency } in
    protect_at a.Ast.a_pos (fun () ->
        Arch.make ~interconnect (Array.of_list procs))
  end

let build_task id (t : Ast.task) =
  let value o = Option.map (fun (l : _ Ast.located) -> l.Ast.v) o in
  protect_at t.Ast.t_pos (fun () ->
      Task.make
        ?bcet:(value t.Ast.t_bcet)
        ?detection_overhead:(value t.Ast.t_detect)
        ?voting_overhead:(value t.Ast.t_vote)
        ~id ~name:t.Ast.t_name.Ast.v ~wcet:t.Ast.t_wcet.Ast.v ())

let build_app (g : Ast.app) =
  let name = g.Ast.g_name.Ast.v in
  let* criticality =
    match g.Ast.g_critical, g.Ast.g_droppable with
    | Some f, None ->
      protect_at f.Ast.pos (fun () -> Criticality.critical f.Ast.v)
    | None, Some sv ->
      protect_at sv.Ast.pos (fun () -> Criticality.droppable sv.Ast.v)
    | Some _, Some d ->
      errf ~pos:d.Ast.pos
        "application %s: both (critical ...) and (droppable ...)" name
    | None, None ->
      errf ~pos:g.Ast.g_pos
        "application %s: needs (critical <rate>) or (droppable <sv>)" name
  in
  let* () =
    check_unique ~what:("task in application " ^ name)
      (List.map (fun (t : Ast.task) -> t.Ast.t_name) g.Ast.g_tasks) in
  let* tasks =
    collect
      (fun (id, t) -> build_task id t)
      (List.mapi (fun id t -> (id, t)) g.Ast.g_tasks) in
  let task_index = Hashtbl.create 16 in
  List.iter
    (fun (t : Task.t) -> Hashtbl.add task_index t.Task.name t.Task.id)
    tasks;
  let* channels =
    collect
      (fun (c : Ast.channel) ->
        let resolve (n : string Ast.located) =
          match Hashtbl.find_opt task_index n.Ast.v with
          | Some id -> Ok id
          | None ->
            errf ~pos:n.Ast.pos "channel: unknown task %s" n.Ast.v in
        let* src = resolve c.Ast.c_from in
        let* dst = resolve c.Ast.c_to in
        let size =
          Option.map (fun (l : _ Ast.located) -> l.Ast.v) c.Ast.c_size in
        protect_at c.Ast.c_pos (fun () -> Channel.make ?size ~src ~dst ()))
      g.Ast.g_channels in
  let deadline =
    Option.map (fun (l : _ Ast.located) -> l.Ast.v) g.Ast.g_deadline in
  protect_at g.Ast.g_pos (fun () ->
      Graph.make ?deadline ~name ~tasks:(Array.of_list tasks)
        ~channels:(Array.of_list channels)
        ~period:g.Ast.g_period.Ast.v ~criticality ())

let build_system (raw : Ast.system) =
  let* arch = build_arch raw.Ast.sys_arch in
  let* () =
    check_unique ~what:"application name"
      (List.map (fun (g : Ast.app) -> g.Ast.g_name) raw.Ast.sys_apps) in
  let* graphs = collect build_app raw.Ast.sys_apps in
  let* apps =
    match raw.Ast.sys_apps with
    | [] -> errf "no (application ...) blocks"
    | g :: _ ->
      protect_at g.Ast.g_pos (fun () -> Appset.make (Array.of_list graphs))
  in
  Ok { arch; apps }

let parse_system = Ast.system_of_string

let read_system input =
  match Result.bind (parse_system input) build_system with
  | Ok _ as ok -> ok
  | Error e -> Error (error_to_string e)

(* ------------------------------------------------------------------ *)
(* Plans *)

let proc_id_of_name { arch; _ } (name : string Ast.located) =
  let n = Arch.n_procs arch in
  let rec find i =
    if i >= n then
      errf ~pos:name.Ast.pos "unknown processor %s" name.Ast.v
    else if (Arch.proc arch i).Proc.name = name.Ast.v then Ok i
    else find (i + 1) in
  find 0

let graph_id_of_name { apps; _ } (name : string Ast.located) =
  match Appset.graph_index apps name.Ast.v with
  | i -> Ok i
  | exception Not_found ->
    errf ~pos:name.Ast.pos "unknown application %s" name.Ast.v

let task_id_of_name { apps; _ } gi (name : string Ast.located) =
  let g = Appset.graph apps gi in
  let n = Graph.n_tasks g in
  let rec find i =
    if i >= n then
      errf ~pos:name.Ast.pos "unknown task %s in application %s" name.Ast.v
        g.Graph.name
    else if (Graph.task g i).Task.name = name.Ast.v then Ok i
    else find (i + 1) in
  find 0

let build_technique (h : Ast.harden Ast.located option) =
  match h with
  | None -> Ok Technique.No_hardening
  | Some { Ast.v = h; pos } ->
    protect_at pos (fun () ->
        match h with
        | Ast.Reexec k -> Technique.re_execution k.Ast.v
        | Ast.Checkpoint (n, k) ->
          Technique.checkpointing ~segments:n.Ast.v ~k:k.Ast.v
        | Ast.Active n -> Technique.active_replication n.Ast.v
        | Ast.Passive m -> Technique.passive_replication m.Ast.v)

let build_bind system (b : Ast.bind) =
  let* gi = graph_id_of_name system b.Ast.b_app in
  let* ti = task_id_of_name system gi b.Ast.b_task in
  let* primary = proc_id_of_name system b.Ast.b_proc in
  let* technique = build_technique b.Ast.b_harden in
  let* replicas =
    match b.Ast.b_replicas with
    | None -> Ok [||]
    | Some { Ast.v = names; _ } ->
      let* ids = collect (proc_id_of_name system) names in
      Ok (Array.of_list ids) in
  let* voter =
    match b.Ast.b_voter with
    | None -> Ok primary
    | Some name -> proc_id_of_name system name in
  let expected = Technique.replica_count technique - 1 in
  if Array.length replicas <> expected then
    errf ~pos:b.Ast.b_pos
      "bind %s.%s: technique needs %d replica processors, got %d"
      b.Ast.b_app.Ast.v b.Ast.b_task.Ast.v expected (Array.length replicas)
  else
    Ok
      (gi, ti,
       { Plan.technique; primary_proc = primary; replica_procs = replicas;
         voter_proc = voter })

let build_plan system (raw : Ast.plan) =
  let* dropped_ids =
    match raw.Ast.pl_dropped with
    | None -> Ok []
    | Some { Ast.v = names; _ } ->
      collect (graph_id_of_name system) names in
  let apps = system.apps in
  let dropped = Array.make (Appset.n_graphs apps) false in
  List.iter (fun gi -> dropped.(gi) <- true) dropped_ids;
  let decisions =
    Array.init (Appset.n_graphs apps) (fun gi ->
        Array.make (Graph.n_tasks (Appset.graph apps gi)) None) in
  let* binds =
    collect
      (fun (b : Ast.bind) ->
        let* resolved = build_bind system b in
        Ok (b.Ast.b_pos, resolved))
      raw.Ast.pl_binds in
  let* () =
    let rec apply = function
      | [] -> Ok ()
      | (pos, (gi, ti, d)) :: rest ->
        if decisions.(gi).(ti) <> None then
          errf ~pos "task %s.%s bound twice"
            (Appset.graph apps gi).Graph.name
            (Graph.task (Appset.graph apps gi) ti).Task.name
        else begin
          decisions.(gi).(ti) <- Some d;
          apply rest
        end in
    apply binds in
  let missing = ref [] in
  Array.iteri
    (fun gi row ->
      Array.iteri
        (fun ti d ->
          if d = None then
            missing :=
              Format.asprintf "%s.%s"
                (Appset.graph apps gi).Graph.name
                (Graph.task (Appset.graph apps gi) ti).Task.name
              :: !missing)
        row)
    decisions;
  match !missing with
  | _ :: _ ->
    errf ~pos:raw.Ast.pl_pos "unbound tasks: %s"
      (String.concat ", " (List.rev !missing))
  | [] ->
    let decisions = Array.map (Array.map Option.get) decisions in
    protect_at raw.Ast.pl_pos (fun () ->
        Plan.make apps ~decisions ~dropped)

let parse_plan = Ast.plan_of_string

let read_plan system input =
  match Result.bind (parse_plan input) (build_plan system) with
  | Ok _ as ok -> ok
  | Error e -> Error (error_to_string e)

(* ------------------------------------------------------------------ *)
(* Writing *)

let atomf fmt = Format.kasprintf (fun s -> Sexp.Atom s) fmt

let field name values = Sexp.List (Sexp.Atom name :: values)

let field1 name value = field name [ Sexp.Atom value ]

let write_float x =
  (* shortest representation that round-trips *)
  let s = Format.asprintf "%.12g" x in
  s

let write_processor (p : Proc.t) =
  field "processor"
    [ field1 "name" p.Proc.name;
      field1 "type" p.Proc.proc_type;
      field1 "static" (write_float p.Proc.static_power);
      field1 "dynamic" (write_float p.Proc.dynamic_power);
      field1 "fault-rate" (write_float p.Proc.fault_rate);
      field1 "speed" (write_float p.Proc.speed);
      field1 "policy"
        (match p.Proc.policy with
         | Proc.Preemptive_fp -> "preemptive"
         | Proc.Non_preemptive_fp -> "non-preemptive") ]

let write_interconnect (ic : Interconnect.t) =
  field "interconnect"
    [ (match ic with
       | Interconnect.Bus { bandwidth; latency } ->
         field "bus"
           [ field1 "bandwidth" (string_of_int bandwidth);
             field1 "latency" (string_of_int latency) ]
       | Interconnect.Noc
           { cols; rows; link_bandwidth; hop_latency; router_latency } ->
         field "noc"
           [ field1 "cols" (string_of_int cols);
             field1 "rows" (string_of_int rows);
             field1 "link-bandwidth" (string_of_int link_bandwidth);
             field1 "hop-latency" (string_of_int hop_latency);
             field1 "router-latency" (string_of_int router_latency) ]) ]

let write_architecture (arch : Arch.t) =
  field "architecture"
    (write_interconnect arch.Arch.interconnect
     :: List.map write_processor (Array.to_list arch.Arch.procs))

let write_task (t : Task.t) =
  field "task"
    [ field1 "name" t.Task.name;
      field1 "wcet" (string_of_int t.Task.wcet);
      field1 "bcet" (string_of_int t.Task.bcet);
      field1 "detect" (string_of_int t.Task.detection_overhead);
      field1 "vote" (string_of_int t.Task.voting_overhead) ]

let write_channel (g : Graph.t) (c : Channel.t) =
  field "channel"
    [ field1 "from" (Graph.task g c.Channel.src).Task.name;
      field1 "to" (Graph.task g c.Channel.dst).Task.name;
      field1 "size" (string_of_int c.Channel.size) ]

let write_application (g : Graph.t) =
  field "application"
    ([ field1 "name" g.Graph.name;
       field1 "period" (string_of_int g.Graph.period);
       field1 "deadline" (string_of_int g.Graph.deadline) ]
     @ (match g.Graph.criticality with
        | Criticality.Critical f ->
          [ field1 "critical" (write_float f) ]
        | Criticality.Droppable sv ->
          [ field1 "droppable" (write_float sv) ])
     @ List.map write_task (Array.to_list g.Graph.tasks)
     @ List.map (write_channel g) (Array.to_list g.Graph.channels))

let write_system { arch; apps } =
  String.concat "\n\n"
    (Sexp.to_string (write_architecture arch)
     :: List.map
          (fun g -> Sexp.to_string (write_application g))
          (Array.to_list apps.Appset.graphs))
  ^ "\n"

let write_plan system (plan : Plan.t) =
  let apps = system.apps in
  let proc_name p = (Arch.proc system.arch p).Proc.name in
  let dropped =
    List.map
      (fun gi -> Sexp.Atom (Appset.graph apps gi).Graph.name)
      (Plan.dropped_graphs plan) in
  let binds = ref [] in
  Array.iteri
    (fun gi row ->
      let g = Appset.graph apps gi in
      Array.iteri
        (fun ti (d : Plan.decision) ->
          let base =
            [ field1 "app" g.Graph.name;
              field1 "task" (Graph.task g ti).Task.name;
              field1 "proc" (proc_name d.Plan.primary_proc) ] in
          let harden =
            match d.Plan.technique with
            | Technique.No_hardening -> []
            | Technique.Re_execution k ->
              [ field "harden" [ field1 "reexec" (string_of_int k) ] ]
            | Technique.Checkpointing (n, k) ->
              [ field "harden"
                  [ field "checkpoint"
                      [ Sexp.Atom (string_of_int n);
                        Sexp.Atom (string_of_int k) ] ] ]
            | Technique.Active_replication n ->
              [ field "harden" [ field1 "active" (string_of_int n) ] ]
            | Technique.Passive_replication m ->
              [ field "harden" [ field1 "passive" (string_of_int m) ] ] in
          let replicas =
            if Array.length d.Plan.replica_procs = 0 then []
            else
              [ field "replicas"
                  (Array.to_list
                     (Array.map
                        (fun p -> Sexp.Atom (proc_name p))
                        d.Plan.replica_procs)) ] in
          (* always written: semantically ignored without a voter, but
             keeps write/read a strict round-trip *)
          let voter =
            [ field "voter" [ atomf "%s" (proc_name d.Plan.voter_proc) ] ]
          in
          binds := field "bind" (base @ harden @ replicas @ voter) :: !binds)
        row)
    plan.Plan.decisions;
  Sexp.to_string
    (field "plan"
       ((if dropped = [] then [] else [ field "dropped" dropped ])
        @ List.rev !binds))
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Files *)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    Ok content
  with Sys_error msg -> Error msg

let load_system path =
  let* content = read_file path in
  read_system content

let load_plan system path =
  let* content = read_file path in
  read_plan system content
