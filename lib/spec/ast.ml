(* The raw, position-annotated form of the textual system/plan format.

   Parsing a file happens in two stages: this module turns located
   s-expressions into shaped records (every field known, of the right
   arity and primitive type, with its source position) and rejects
   anything else; [Spec] then resolves names and builds the validated
   model. The split lets the linter ([Mcmap_lint]) run *many* semantic
   checks over a shaped file and point each diagnostic at a line, while
   [Spec.read_system] keeps its fail-fast contract. *)

module Sexp = Mcmap_util.Sexp

type pos = Sexp.pos

type 'a located = { v : 'a; pos : pos }

type error = { epos : pos option; msg : string }

let error_to_string e =
  match e.epos with
  | Some p -> Sexp.pos_to_string p ^ ": " ^ e.msg
  | None -> e.msg

let errf ?pos fmt =
  Format.kasprintf (fun msg -> Error { epos = pos; msg }) fmt

let error_at pos msg = { epos = Some pos; msg }

let ( let* ) = Result.bind

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = collect f rest in
    Ok (y :: ys)

(* ------------------------------------------------------------------ *)
(* Raw records *)

type proc = {
  p_pos : pos;
  p_name : string located;
  p_type : string located option;
  p_static : float located option;
  p_dynamic : float located option;
  p_fault_rate : float located option;
  p_speed : float located option;
  p_policy : string located option;
}

type bus = {
  i_pos : pos;
  i_bandwidth : int located option;
  i_latency : int located option;
}

type noc = {
  n_pos : pos;
  n_cols : int located;
  n_rows : int located;
  n_link_bandwidth : int located option;
  n_hop_latency : int located option;
  n_router_latency : int located option;
}

type interconnect = I_bus of bus | I_noc of noc

type arch = {
  a_pos : pos;
  a_interconnect : interconnect option;
  a_procs : proc list;
}

type task = {
  t_pos : pos;
  t_name : string located;
  t_wcet : int located;
  t_bcet : int located option;
  t_detect : int located option;
  t_vote : int located option;
}

type channel = {
  c_pos : pos;
  c_from : string located;
  c_to : string located;
  c_size : int located option;
}

type app = {
  g_pos : pos;
  g_name : string located;
  g_period : int located;
  g_deadline : int located option;
  g_critical : float located option;
  g_droppable : float located option;
  g_tasks : task list;
  g_channels : channel list;
}

type system = { sys_arch : arch; sys_apps : app list }

type harden =
  | Reexec of int located
  | Checkpoint of int located * int located
  | Active of int located
  | Passive of int located

type bind = {
  b_pos : pos;
  b_app : string located;
  b_task : string located;
  b_proc : string located;
  b_harden : harden located option;
  b_replicas : string located list located option;
  b_voter : string located option;
}

type plan = {
  pl_pos : pos;
  pl_dropped : string located list located option;
  pl_binds : bind list;
}

(* ------------------------------------------------------------------ *)
(* Shaped field access over located s-expressions *)

(* A block's items, each as [(key, pos of the entry, payload)]. *)
let fields_of ~ctx items =
  collect
    (fun (e : Sexp.Loc.sexp) ->
      match e.Sexp.Loc.v with
      | Sexp.Loc.List ({ Sexp.Loc.v = Sexp.Loc.Atom key; _ } :: payload) ->
        Ok (key, e.Sexp.Loc.pos, payload)
      | Sexp.Loc.List _ | Sexp.Loc.Atom _ ->
        errf ~pos:e.Sexp.Loc.pos "%s: expected a (field ...) entry" ctx)
    items

(* Reject unknown keys and repeated single-valued keys in one pass;
   [multi] names the keys that may legitimately repeat. *)
let check_shape ~ctx ~allowed ~multi fields =
  let seen = Hashtbl.create 8 in
  let rec go = function
    | [] -> Ok ()
    | (key, pos, _) :: rest ->
      if not (List.mem key allowed) then
        errf ~pos "%s: unknown field (%s ...)" ctx key
      else if (not (List.mem key multi)) && Hashtbl.mem seen key then
        errf ~pos "%s: duplicate field (%s ...)" ctx key
      else begin
        Hashtbl.add seen key ();
        go rest
      end in
  go fields

let find key fields =
  List.find_map
    (fun (k, pos, payload) -> if k = key then Some (pos, payload) else None)
    fields

let one_atom ~ctx key pos payload =
  match payload with
  | [ { Sexp.Loc.v = Sexp.Loc.Atom a; pos } ] -> Ok { v = a; pos }
  | _ -> errf ~pos "%s: field (%s ...) expects one atom" ctx key

let opt_atom ~ctx key fields =
  match find key fields with
  | None -> Ok None
  | Some (pos, payload) ->
    Result.map Option.some (one_atom ~ctx key pos payload)

let req_atom ~ctx ~pos key fields =
  match find key fields with
  | None -> errf ~pos "%s: missing field (%s ...)" ctx key
  | Some (fpos, payload) -> one_atom ~ctx key fpos payload

let conv name of_string ~ctx key (a : string located) =
  match of_string a.v with
  | Some x -> Ok { v = x; pos = a.pos }
  | None ->
    errf ~pos:a.pos "%s: field (%s %s): expected %s" ctx key a.v name

let opt_conv name of_string ~ctx key fields =
  match opt_atom ~ctx key fields with
  | Error _ as err -> err
  | Ok None -> Ok None
  | Ok (Some a) ->
    Result.map Option.some (conv name of_string ~ctx key a)

let req_conv name of_string ~ctx ~pos key fields =
  let* a = req_atom ~ctx ~pos key fields in
  conv name of_string ~ctx key a

let opt_int ~ctx key fields =
  opt_conv "an integer" int_of_string_opt ~ctx key fields

let req_int ~ctx ~pos key fields =
  req_conv "an integer" int_of_string_opt ~ctx ~pos key fields

let opt_float ~ctx key fields =
  opt_conv "a number" float_of_string_opt ~ctx key fields

let atom_list ~ctx key payload =
  collect
    (fun (e : Sexp.Loc.sexp) ->
      match e.Sexp.Loc.v with
      | Sexp.Loc.Atom a -> Ok { v = a; pos = e.Sexp.Loc.pos }
      | Sexp.Loc.List _ ->
        errf ~pos:e.Sexp.Loc.pos "%s: field (%s ...) expects atoms" ctx key)
    payload

(* ------------------------------------------------------------------ *)
(* System *)

let read_proc pos items =
  let ctx = "processor" in
  let* fields = fields_of ~ctx items in
  let* () =
    check_shape ~ctx
      ~allowed:
        [ "name"; "type"; "static"; "dynamic"; "fault-rate"; "speed";
          "policy" ]
      ~multi:[] fields in
  let* p_name = req_atom ~ctx ~pos "name" fields in
  let* p_type = opt_atom ~ctx "type" fields in
  let* p_static = opt_float ~ctx "static" fields in
  let* p_dynamic = opt_float ~ctx "dynamic" fields in
  let* p_fault_rate = opt_float ~ctx "fault-rate" fields in
  let* p_speed = opt_float ~ctx "speed" fields in
  let* p_policy = opt_atom ~ctx "policy" fields in
  Ok { p_pos = pos; p_name; p_type; p_static; p_dynamic; p_fault_rate;
       p_speed; p_policy }

let read_bus bpos payload =
  let ctx = "bus" in
  let* bus_fields = fields_of ~ctx payload in
  let* () =
    check_shape ~ctx ~allowed:[ "bandwidth"; "latency" ] ~multi:[]
      bus_fields in
  let* i_bandwidth = opt_int ~ctx "bandwidth" bus_fields in
  let* i_latency = opt_int ~ctx "latency" bus_fields in
  Ok { i_pos = bpos; i_bandwidth; i_latency }

let read_noc npos payload =
  let ctx = "noc" in
  let* noc_fields = fields_of ~ctx payload in
  let* () =
    check_shape ~ctx
      ~allowed:
        [ "cols"; "rows"; "link-bandwidth"; "hop-latency"; "router-latency" ]
      ~multi:[] noc_fields in
  let* n_cols = req_int ~ctx ~pos:npos "cols" noc_fields in
  let* n_rows = req_int ~ctx ~pos:npos "rows" noc_fields in
  let* n_link_bandwidth = opt_int ~ctx "link-bandwidth" noc_fields in
  let* n_hop_latency = opt_int ~ctx "hop-latency" noc_fields in
  let* n_router_latency = opt_int ~ctx "router-latency" noc_fields in
  Ok { n_pos = npos; n_cols; n_rows; n_link_bandwidth; n_hop_latency;
       n_router_latency }

(* (interconnect (bus ...)) | (interconnect (noc ...)) *)
let read_interconnect pos payload =
  let ctx = "interconnect" in
  let* fields = fields_of ~ctx payload in
  match fields with
  | [ ("bus", bpos, bus_payload) ] ->
    Result.map (fun b -> I_bus b) (read_bus bpos bus_payload)
  | [ ("noc", npos, noc_payload) ] ->
    Result.map (fun n -> I_noc n) (read_noc npos noc_payload)
  | _ ->
    errf ~pos "%s: expected exactly one (bus ...) or (noc ...) backend" ctx

let read_arch pos items =
  let ctx = "architecture" in
  let* fields = fields_of ~ctx items in
  let* () =
    check_shape ~ctx ~allowed:[ "bus"; "interconnect"; "processor" ]
      ~multi:[ "processor" ] fields in
  let* a_interconnect =
    match find "bus" fields, find "interconnect" fields with
    | Some _, Some (ipos, _) ->
      errf ~pos:ipos
        "%s: both (bus ...) and (interconnect ...); keep only the \
         (interconnect ...) form"
        ctx
    | Some (bpos, payload), None ->
      (* legacy spelling of (interconnect (bus ...)) *)
      Result.map (fun b -> Some (I_bus b)) (read_bus bpos payload)
    | None, Some (ipos, payload) ->
      Result.map Option.some (read_interconnect ipos payload)
    | None, None -> Ok None in
  let* a_procs =
    collect
      (fun (key, fpos, payload) ->
        if key = "processor" then Result.map Option.some (read_proc fpos payload)
        else Ok None)
      fields in
  Ok { a_pos = pos; a_interconnect;
       a_procs = List.filter_map Fun.id a_procs }

let read_task pos items =
  let ctx = "task" in
  let* fields = fields_of ~ctx items in
  let* () =
    check_shape ~ctx ~allowed:[ "name"; "wcet"; "bcet"; "detect"; "vote" ]
      ~multi:[] fields in
  let* t_name = req_atom ~ctx ~pos "name" fields in
  let* t_wcet = req_int ~ctx ~pos "wcet" fields in
  let* t_bcet = opt_int ~ctx "bcet" fields in
  let* t_detect = opt_int ~ctx "detect" fields in
  let* t_vote = opt_int ~ctx "vote" fields in
  Ok { t_pos = pos; t_name; t_wcet; t_bcet; t_detect; t_vote }

let read_channel pos items =
  let ctx = "channel" in
  let* fields = fields_of ~ctx items in
  let* () =
    check_shape ~ctx ~allowed:[ "from"; "to"; "size" ] ~multi:[] fields in
  let* c_from = req_atom ~ctx ~pos "from" fields in
  let* c_to = req_atom ~ctx ~pos "to" fields in
  let* c_size = opt_int ~ctx "size" fields in
  Ok { c_pos = pos; c_from; c_to; c_size }

let read_app pos items =
  let ctx = "application" in
  let* fields = fields_of ~ctx items in
  let* () =
    check_shape ~ctx
      ~allowed:
        [ "name"; "period"; "deadline"; "critical"; "droppable"; "task";
          "channel" ]
      ~multi:[ "task"; "channel" ] fields in
  let* g_name = req_atom ~ctx ~pos "name" fields in
  let* g_period = req_int ~ctx ~pos "period" fields in
  let* g_deadline = opt_int ~ctx "deadline" fields in
  let* g_critical = opt_float ~ctx "critical" fields in
  let* g_droppable = opt_float ~ctx "droppable" fields in
  let* entries =
    collect
      (fun (key, fpos, payload) ->
        match key with
        | "task" -> Result.map (fun t -> Some (`Task t)) (read_task fpos payload)
        | "channel" ->
          Result.map (fun c -> Some (`Channel c)) (read_channel fpos payload)
        | _ -> Ok None)
      fields in
  let g_tasks =
    List.filter_map (function Some (`Task t) -> Some t | _ -> None) entries in
  let g_channels =
    List.filter_map
      (function Some (`Channel c) -> Some c | _ -> None)
      entries in
  Ok { g_pos = pos; g_name; g_period; g_deadline; g_critical; g_droppable;
       g_tasks; g_channels }

let system_of_string input =
  let* exprs =
    match Sexp.parse_loc input with
    | Ok exprs -> Ok exprs
    | Error msg -> Error { epos = None; msg } in
  let* tops =
    collect
      (fun (e : Sexp.Loc.sexp) ->
        match e.Sexp.Loc.v with
        | Sexp.Loc.List
            ({ Sexp.Loc.v = Sexp.Loc.Atom ("architecture" as key); _ }
             :: rest)
        | Sexp.Loc.List
            ({ Sexp.Loc.v = Sexp.Loc.Atom ("application" as key); _ }
             :: rest) ->
          Ok (key, e.Sexp.Loc.pos, rest)
        | Sexp.Loc.List ({ Sexp.Loc.v = Sexp.Loc.Atom other; _ } :: _) ->
          errf ~pos:e.Sexp.Loc.pos
            "unknown top-level block (%s ...): expected (architecture \
             ...) or (application ...)"
            other
        | Sexp.Loc.List _ | Sexp.Loc.Atom _ ->
          errf ~pos:e.Sexp.Loc.pos
            "expected an (architecture ...) or (application ...) block")
      exprs in
  let* sys_arch =
    match List.filter (fun (k, _, _) -> k = "architecture") tops with
    | [ (_, pos, items) ] -> read_arch pos items
    | [] -> errf "missing (architecture ...)"
    | _ :: (_, pos, _) :: _ ->
      errf ~pos "more than one (architecture ...)" in
  let* sys_apps =
    collect
      (fun (key, pos, items) ->
        if key = "application" then Result.map Option.some (read_app pos items)
        else Ok None)
      tops in
  let sys_apps = List.filter_map Fun.id sys_apps in
  if sys_apps = [] then errf "no (application ...) blocks"
  else Ok { sys_arch; sys_apps }

(* ------------------------------------------------------------------ *)
(* Plan *)

let read_harden pos payload =
  let ctx = "harden" in
  let usage () =
    errf ~pos
      "%s: expected (reexec <k>), (checkpoint <n> <k>), (active <n>) or \
       (passive <m>)"
      ctx in
  let int_atom (e : Sexp.Loc.sexp) =
    match e.Sexp.Loc.v with
    | Sexp.Loc.Atom a ->
      (match int_of_string_opt a with
       | Some x -> Ok { v = x; pos = e.Sexp.Loc.pos }
       | None ->
         errf ~pos:e.Sexp.Loc.pos "%s: %s is not an integer" ctx a)
    | Sexp.Loc.List _ -> usage () in
  match payload with
  | [ { Sexp.Loc.v =
          Sexp.Loc.List
            ({ Sexp.Loc.v = Sexp.Loc.Atom kind; _ } :: args);
        _ } ] ->
    (match kind, args with
     | "reexec", [ k ] -> Result.map (fun k -> Reexec k) (int_atom k)
     | "checkpoint", [ n; k ] ->
       let* n = int_atom n in
       let* k = int_atom k in
       Ok (Checkpoint (n, k))
     | "active", [ n ] -> Result.map (fun n -> Active n) (int_atom n)
     | "passive", [ m ] -> Result.map (fun m -> Passive m) (int_atom m)
     | _ -> usage ())
  | _ -> usage ()

let read_bind pos items =
  let ctx = "bind" in
  let* fields = fields_of ~ctx items in
  let* () =
    check_shape ~ctx
      ~allowed:[ "app"; "task"; "proc"; "harden"; "replicas"; "voter" ]
      ~multi:[] fields in
  let* b_app = req_atom ~ctx ~pos "app" fields in
  let* b_task = req_atom ~ctx ~pos "task" fields in
  let* b_proc = req_atom ~ctx ~pos "proc" fields in
  let* b_harden =
    match find "harden" fields with
    | None -> Ok None
    | Some (hpos, payload) ->
      let* h = read_harden hpos payload in
      Ok (Some { v = h; pos = hpos }) in
  let* b_replicas =
    match find "replicas" fields with
    | None -> Ok None
    | Some (rpos, payload) ->
      let* names = atom_list ~ctx "replicas" payload in
      Ok (Some { v = names; pos = rpos }) in
  let* b_voter =
    match find "voter" fields with
    | None -> Ok None
    | Some (vpos, payload) ->
      Result.map Option.some (one_atom ~ctx "voter" vpos payload) in
  Ok { b_pos = pos; b_app; b_task; b_proc; b_harden; b_replicas; b_voter }

let plan_of_string input =
  let* exprs =
    match Sexp.parse_loc input with
    | Ok exprs -> Ok exprs
    | Error msg -> Error { epos = None; msg } in
  let* pos, items =
    match exprs with
    | [ { Sexp.Loc.v =
            Sexp.Loc.List
              ({ Sexp.Loc.v = Sexp.Loc.Atom "plan"; _ } :: rest);
          pos } ] ->
      Ok (pos, rest)
    | _ -> errf "expected a single (plan ...) expression" in
  let ctx = "plan" in
  let* fields = fields_of ~ctx items in
  let* () =
    check_shape ~ctx ~allowed:[ "dropped"; "bind" ] ~multi:[ "bind" ]
      fields in
  let* pl_dropped =
    match find "dropped" fields with
    | None -> Ok None
    | Some (dpos, payload) ->
      let* names = atom_list ~ctx "dropped" payload in
      Ok (Some { v = names; pos = dpos }) in
  let* binds =
    collect
      (fun (key, fpos, payload) ->
        if key = "bind" then Result.map Option.some (read_bind fpos payload)
        else Ok None)
      fields in
  Ok { pl_pos = pos; pl_dropped; pl_binds = List.filter_map Fun.id binds }
