(** Textual system-description files.

    mcmap systems (architecture + applications) and plans
    (hardening/binding/dropping decisions) can be read from and written
    to a small S-expression format, so the CLI can analyse user-provided
    designs. Example:

    {v
    (architecture
      (bus (bandwidth 2) (latency 1))
      (processor (name cpu0) (fault-rate 1e-5))
      (processor (name cpu1) (policy non-preemptive) (speed 1.25)))

    (application (name control) (period 100) (deadline 90)
      (critical 1e-4)
      (task (name sense) (wcet 10) (bcet 6) (detect 1))
      (task (name act) (wcet 8))
      (channel (from sense) (to act) (size 4)))

    (application (name logging) (period 100) (droppable 1.0)
      (task (name log) (wcet 12)))
    v}

    and the corresponding plan:

    {v
    (plan
      (dropped logging)
      (bind (app control) (task sense) (proc cpu0) (harden (reexec 1)))
      (bind (app control) (task act) (proc cpu1))
      (bind (app logging) (task log) (proc cpu1)))
    v}

    Replicated tasks additionally take [(replicas <proc> ...)] and
    [(voter <proc>)]. Writing then re-reading a system or plan yields an
    equal value (round-trip property, tested). *)

type system = {
  arch : Mcmap_model.Arch.t;
  apps : Mcmap_model.Appset.t;
}

type error = Ast.error = {
  epos : Mcmap_util.Sexp.pos option;
  msg : string;
}
(** A reading error, located when a source position applies. *)

val error_to_string : error -> string

val parse_system : string -> (Ast.system, error) result
(** Stage one: shape the text into the raw located AST (see {!Ast}). *)

val build_system : Ast.system -> (system, error) result
(** Stage two: resolve names and build the validated model. Duplicate
    processor/application/task names and dangling channel endpoints are
    rejected with the position of the offending name. *)

val read_system : string -> (system, string) result
(** [parse_system] then [build_system], with errors rendered as
    ["line:col: message"] strings. *)

val write_system : system -> string

val parse_plan : string -> (Ast.plan, error) result
(** Stage one for plans: shape a single [(plan ...)] expression. *)

val build_plan :
  system -> Ast.plan -> (Mcmap_hardening.Plan.t, error) result
(** Stage two for plans: resolve names against the system; every task
    must be bound exactly once. *)

val read_plan : system -> string -> (Mcmap_hardening.Plan.t, string) result
(** Parse a plan against a system (names are resolved; every task must
    be bound exactly once). *)

val write_plan : system -> Mcmap_hardening.Plan.t -> string

val read_file : string -> (string, string) result
(** Read a whole file; [Sys_error] messages become [Error]. *)

val load_system : string -> (system, string) result
(** [load_system path] reads and parses a file. *)

val load_plan : system -> string -> (Mcmap_hardening.Plan.t, string) result
