(** The raw, position-annotated form of the textual system/plan format.

    Stage one of reading a file: located s-expressions are shaped into
    records — every field known, of the right arity and primitive type,
    carrying its source position — and anything else is rejected with a
    located error. {!Spec} resolves names and builds the validated
    model from this form; [Mcmap_lint] runs its semantic checks over
    it. *)

type pos = Mcmap_util.Sexp.pos

type 'a located = { v : 'a; pos : pos }

type error = { epos : pos option; msg : string }

val error_to_string : error -> string
(** ["line:col: msg"], or just the message when no position applies. *)

val error_at : pos -> string -> error

type proc = {
  p_pos : pos;
  p_name : string located;
  p_type : string located option;
  p_static : float located option;
  p_dynamic : float located option;
  p_fault_rate : float located option;
  p_speed : float located option;
  p_policy : string located option;
}

type bus = {
  i_pos : pos;
  i_bandwidth : int located option;
  i_latency : int located option;
}

type noc = {
  n_pos : pos;
  n_cols : int located;
  n_rows : int located;
  n_link_bandwidth : int located option;
  n_hop_latency : int located option;
  n_router_latency : int located option;
}

type interconnect = I_bus of bus | I_noc of noc
(** The interconnect backend of an architecture block, either from the
    new [(interconnect (bus ...) | (noc ...))] form or from the legacy
    top-level [(bus ...)] spelling (shaped as [I_bus]). *)

type arch = {
  a_pos : pos;
  a_interconnect : interconnect option;
  a_procs : proc list;
}

type task = {
  t_pos : pos;
  t_name : string located;
  t_wcet : int located;
  t_bcet : int located option;
  t_detect : int located option;
  t_vote : int located option;
}

type channel = {
  c_pos : pos;
  c_from : string located;
  c_to : string located;
  c_size : int located option;
}

type app = {
  g_pos : pos;
  g_name : string located;
  g_period : int located;
  g_deadline : int located option;
  g_critical : float located option;
  g_droppable : float located option;
  g_tasks : task list;
  g_channels : channel list;
}

type system = { sys_arch : arch; sys_apps : app list }

type harden =
  | Reexec of int located
  | Checkpoint of int located * int located
  | Active of int located
  | Passive of int located

type bind = {
  b_pos : pos;
  b_app : string located;
  b_task : string located;
  b_proc : string located;
  b_harden : harden located option;
  b_replicas : string located list located option;
  b_voter : string located option;
}

type plan = {
  pl_pos : pos;
  pl_dropped : string located list located option;
  pl_binds : bind list;
}

val system_of_string : string -> (system, error) result
(** Shape a system description. Exactly one [(architecture ...)] block
    and at least one [(application ...)] block are required; unknown
    fields, repeated single-valued fields, wrong arities and malformed
    numbers are rejected with the offending position. *)

val plan_of_string : string -> (plan, error) result
(** Shape a plan description (a single [(plan ...)] expression). *)
