(** The *DT-med* and *DT-large* benchmarks (paper §5): medium and large
    distributed non-preemptive real-time CORBA-style applications inspired
    by the DREAM tool [21], with invocation periods and execution times
    multiplied by 20 as in the paper. Run on {!Platforms.hexa}.

    DT-med has two critical pipelines plus the three droppable
    applications [t1, t2, t3] whose dropping trade-off Figure 5 explores;
    DT-large has four critical and five droppable applications. *)

val dt_med : unit -> Benchmark.t

val dt_large : unit -> Benchmark.t

val dt_large_noc : unit -> Benchmark.t
(** DT-large re-hosted on {!Platforms.hexa_mesh}: identical
    applications, mesh-NoC communication delays instead of the bus. *)
