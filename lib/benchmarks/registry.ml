let builders =
  [ ("cruise", Cruise.benchmark); ("dt-med", Dt.dt_med);
    ("dt-large", Dt.dt_large);
    ("dt-large-noc", Dt.dt_large_noc); ("synth-1", Synth.synth1);
    ("synth-2", Synth.synth2) ]

let names = List.map fst builders

let find name =
  Option.map (fun build -> build ()) (List.assoc_opt name builders)

let find_exn name =
  match find name with
  | Some b -> b
  | None -> invalid_arg ("Registry.find_exn: unknown benchmark " ^ name)

let all () = List.map (fun (_, build) -> build ()) builders
