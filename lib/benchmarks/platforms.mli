(** Reference MPSoC platforms used by the benchmarks. Fault rates are in
    faults per millisecond; powers in abstract watts. *)

val quad : ?policy:Mcmap_model.Proc.policy -> unit -> Mcmap_model.Arch.t
(** Four heterogeneous processors (2 fast RISC, 1 slow low-power RISC,
    1 DSP) on a shared bus — the default platform of the Cruise and
    synthetic benchmarks. Default policy: preemptive fixed-priority. *)

val hexa : ?policy:Mcmap_model.Proc.policy -> unit -> Mcmap_model.Arch.t
(** Six processors (quad plus one lockstep-grade low-fault-rate core and
    one extra RISC) — the platform of the DT benchmarks, which run
    non-preemptively in the paper (pass
    [~policy:Mcmap_model.Proc.Non_preemptive_fp]). *)

val hexa_mesh :
  ?policy:Mcmap_model.Proc.policy -> unit -> Mcmap_model.Arch.t
(** The {!hexa} processors placed one per node on a 3x2 mesh NoC
    (XY routing, link bandwidth 2, hop latency 1, router latency 1) —
    the platform of the [dt-large-noc] benchmark variant. *)
