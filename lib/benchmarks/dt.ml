module Appset = Mcmap_model.Appset
module Criticality = Mcmap_model.Criticality
module Proc = Mcmap_model.Proc

(* DREAM-style distributed pipelines; the x20 scaling of the paper is
   already applied to the periods and execution times below. *)

let rt_control () =
  Builder.graph ~name:"rt_control" ~period:400 ~deadline:700
    ~criticality:(Criticality.critical 1e-7)
    ~tasks:
      [ ("sensor_in", 15); (* 0 *)
        ("demarshal", 15); (* 1 *)
        ("state_est", 30); (* 2 *)
        ("ctrl_a", 25); (* 3 *)
        ("ctrl_b", 22); (* 4 *)
        ("merge", 15); (* 5 *)
        ("marshal", 15); (* 6 *)
        ("actuate", 15) (* 7 *) ]
    ~edges:
      [ (0, 1, 4); (1, 2, 8); (2, 3, 4); (2, 4, 4); (3, 5, 4); (4, 5, 4);
        (5, 6, 4); (6, 7, 4) ]
    ()

let rt_stream () =
  Builder.chain ~name:"rt_stream" ~period:800 ~deadline:1100 ~msg_size:8
    ~criticality:(Criticality.critical 1e-7)
    [ ("acquire", 30); ("transform", 55); ("filter", 45); ("encode", 50);
      ("dispatch", 30); ("emit", 25) ]

let t1 () =
  Builder.graph ~name:"t1" ~period:400
    ~criticality:(Criticality.droppable 3.0)
    ~tasks:
      [ ("poll", 18); ("parse", 28); ("eval_a", 34); ("eval_b", 38);
        ("report", 22) ]
    ~edges:[ (0, 1, 4); (1, 2, 4); (1, 3, 4); (2, 4, 4); (3, 4, 4) ]
    ()

let t2 () =
  Builder.chain ~name:"t2" ~period:800 ~deadline:650
    ~criticality:(Criticality.droppable 2.0)
    [ ("collect", 38); ("aggregate", 68); ("analyze", 60); ("store", 38) ]

let t3 () =
  Builder.chain ~name:"t3" ~period:800 ~deadline:750
    ~criticality:(Criticality.droppable 1.0)
    [ ("fetch", 38); ("render", 60); ("display", 45); ("ack", 22) ]

let dt_med () =
  let apps =
    Appset.make [| rt_control (); rt_stream (); t1 (); t2 (); t3 () |] in
  Benchmark.make ~name:"dt-med"
    ~arch:(Platforms.hexa ~policy:Proc.Non_preemptive_fp ())
    ~apps

let rt_gateway () =
  Builder.graph ~name:"rt_gateway" ~period:400 ~deadline:700
    ~criticality:(Criticality.critical 1e-7)
    ~tasks:
      [ ("rx", 15); ("validate", 22); ("route_a", 25); ("route_b", 25);
        ("arbitrate", 18); ("tx", 15); ("audit", 18) ]
    ~edges:
      [ (0, 1, 8); (1, 2, 4); (1, 3, 4); (2, 4, 4); (3, 4, 4); (4, 5, 8);
        (4, 6, 4) ]
    ()

let rt_safety () =
  Builder.chain ~name:"rt_safety" ~period:1600 ~deadline:1500 ~msg_size:4
    ~criticality:(Criticality.critical 1e-7)
    [ ("watchdog", 50); ("cross_check", 90); ("diagnose", 110);
      ("mitigate", 70); ("notify", 40) ]

let u1 () =
  Builder.chain ~name:"u1" ~period:400 ~deadline:550
    ~criticality:(Criticality.droppable 4.0)
    [ ("scan", 25); ("classify", 50); ("annotate", 38) ]

let u2 () =
  Builder.graph ~name:"u2" ~period:800 ~deadline:1450
    ~criticality:(Criticality.droppable 3.0)
    ~tasks:
      [ ("ingest", 38); ("split", 30); ("work_a", 68); ("work_b", 62);
        ("join", 30); ("publish", 38) ]
    ~edges:
      [ (0, 1, 8); (1, 2, 4); (1, 3, 4); (2, 4, 4); (3, 4, 4); (4, 5, 4) ]
    ()

let u3 () =
  Builder.chain ~name:"u3" ~period:800 ~deadline:1100
    ~criticality:(Criticality.droppable 2.0)
    [ ("probe", 44); ("correlate", 80); ("summarize", 56); ("upload", 38) ]

let u4 () =
  Builder.chain ~name:"u4" ~period:1600 ~deadline:2000
    ~criticality:(Criticality.droppable 2.0)
    [ ("batch_in", 75); ("reduce", 150); ("batch_out", 88) ]

let u5 () =
  Builder.chain ~name:"u5" ~period:1600 ~deadline:2000
    ~criticality:(Criticality.droppable 1.0)
    [ ("trace_in", 62); ("pack", 100); ("flush", 62) ]

let dt_large () =
  let apps =
    Appset.make
      [| rt_control (); rt_stream (); rt_gateway (); rt_safety (); u1 ();
         u2 (); u3 (); u4 (); u5 () |] in
  Benchmark.make ~name:"dt-large"
    ~arch:(Platforms.hexa ~policy:Proc.Non_preemptive_fp ())
    ~apps

let dt_large_noc () =
  let apps =
    Appset.make
      [| rt_control (); rt_stream (); rt_gateway (); rt_safety (); u1 ();
         u2 (); u3 (); u4 (); u5 () |] in
  Benchmark.make ~name:"dt-large-noc"
    ~arch:(Platforms.hexa_mesh ~policy:Proc.Non_preemptive_fp ())
    ~apps
