module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Interconnect = Mcmap_model.Interconnect

let quad ?(policy = Proc.Preemptive_fp) () =
  Arch.make
    ~interconnect:(Interconnect.Bus { bandwidth = 2; latency = 1 })
    [| Proc.make ~id:0 ~name:"risc0" ~proc_type:"RISC" ~static_power:0.30
         ~dynamic_power:2.0 ~fault_rate:1e-5 ~speed:1.0 ~policy ();
       Proc.make ~id:1 ~name:"risc1" ~proc_type:"RISC" ~static_power:0.30
         ~dynamic_power:2.0 ~fault_rate:1e-5 ~speed:1.0 ~policy ();
       Proc.make ~id:2 ~name:"lp0" ~proc_type:"RISC-LP" ~static_power:0.10
         ~dynamic_power:0.8 ~fault_rate:2e-5 ~speed:1.4 ~policy ();
       Proc.make ~id:3 ~name:"dsp0" ~proc_type:"DSP" ~static_power:0.20
         ~dynamic_power:1.4 ~fault_rate:1e-5 ~speed:0.8 ~policy () |]

let hexa ?(policy = Proc.Preemptive_fp) () =
  Arch.make
    ~interconnect:(Interconnect.Bus { bandwidth = 2; latency = 1 })
    [| Proc.make ~id:0 ~name:"risc0" ~proc_type:"RISC" ~static_power:0.30
         ~dynamic_power:2.0 ~fault_rate:1e-5 ~speed:1.0 ~policy ();
       Proc.make ~id:1 ~name:"risc1" ~proc_type:"RISC" ~static_power:0.30
         ~dynamic_power:2.0 ~fault_rate:1e-5 ~speed:1.0 ~policy ();
       Proc.make ~id:2 ~name:"risc2" ~proc_type:"RISC" ~static_power:0.30
         ~dynamic_power:2.0 ~fault_rate:1e-5 ~speed:1.0 ~policy ();
       Proc.make ~id:3 ~name:"lp0" ~proc_type:"RISC-LP" ~static_power:0.10
         ~dynamic_power:0.8 ~fault_rate:2e-5 ~speed:1.4 ~policy ();
       Proc.make ~id:4 ~name:"lock0" ~proc_type:"LOCKSTEP"
         ~static_power:0.45 ~dynamic_power:2.6 ~fault_rate:1e-6 ~speed:1.0
         ~policy ();
       Proc.make ~id:5 ~name:"dsp0" ~proc_type:"DSP" ~static_power:0.20
         ~dynamic_power:1.4 ~fault_rate:1e-5 ~speed:0.8 ~policy () |]

(* The hexa platform re-hosted on a 3x2 mesh NoC: one node per
   processor, guaranteed per-flow link share of 2 (TDM), one cycle per
   hop plus one injection cycle. *)
let hexa_mesh ?policy () =
  let bus = hexa ?policy () in
  Arch.make
    ~interconnect:
      (Interconnect.Noc
         { cols = 3; rows = 2; link_bandwidth = 2; hop_latency = 1;
           router_latency = 1 })
    bus.Arch.procs
