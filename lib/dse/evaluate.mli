(** Candidate evaluation: objectives and constraints (paper §2.3, §4).

    Objectives (both as minimisation entries of [objectives]):
    + provisioned power consumption
      [sum_p (stat_p + dyn_p * u_p)] over used processors, with [u_p]
      the certified critical-state utilisation (Eq. (1) WCETs, dropped
      graphs excluded) — the demand the design must provision for, so
      task dropping saves real capacity and power;
    + negated quality of service [- sum_{t not in T_d} sv_t].

    Constraints: reliability (per {!Mcmap_reliability.Analysis}) and
    schedulability under Algorithm 1 ({!Mcmap_analysis.Wcrt}). Violations
    are aggregated into a magnitude used for constraint-domination. *)

type t = {
  plan : Mcmap_hardening.Plan.t;
  power : float;
  service : float;
  schedulable : bool;
  reliable : bool;
  violation : float;  (** 0 when feasible; larger = worse *)
  rescued : bool;
      (** feasible as decoded but infeasible when dropping is disabled —
          the solutions counted by the paper's §5.2 ratio *)
  objectives : float array;  (** [| power; -. service |] *)
}

val feasible : t -> bool

val power_of_happ : Mcmap_model.Arch.t -> Mcmap_hardening.Happ.t -> float
(** The power objective of an already-hardened application set — the
    computation both {!power_of_plan} and the session-cached
    [Evaluator.power] bottom out in, so their results are bit-identical. *)

val power_of_plan :
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  float
(** The power objective alone (no scheduling analysis).

    Deprecated as an optimisation-loop entry point: it rebuilds the
    hardened application set per call. Inside loops, create an
    [Evaluator] session and use [Evaluator.power], which reuses cached
    hardened graphs; this shim remains for one-shot callers. *)

val service_of_plan :
  Mcmap_model.Appset.t -> Mcmap_hardening.Plan.t -> float
(** Quality of service delivered by the plan: summed [sv_t] of droppable
    graphs kept out of the dropped set. *)

val violation_of :
  deadlines:int array ->
  Mcmap_analysis.Verdict.t array ->
  Mcmap_reliability.Analysis.violation list ->
  float
(** [violation_of ~deadlines required rel_violations]: the aggregate
    constraint-violation magnitude over per-graph required WCRT verdicts
    and reliability violations. Exposed so the session evaluator
    aggregates in exactly the same floating-point order as {!evaluate}. *)

val evaluate :
  ?check_rescue:bool ->
  ?max_iterations:int ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  t
(** Full evaluation. [check_rescue] (default true) additionally analyses
    the same plan with an empty dropped set to detect dropping-rescued
    candidates; pass [false] to halve analysis cost when the statistic is
    not needed.

    Deprecated as an optimisation-loop entry point: every call starts
    from nothing. Inside loops, create an [Evaluator] session once and
    call [Evaluator.eval] — same result (exactly, field for field), with
    memoisation across near-identical candidates. This free function
    remains as the reference implementation (the [evaluator-agreement]
    check oracle holds the session to it) and for one-shot callers. *)
