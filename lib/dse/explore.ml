module Stats = Mcmap_util.Stats
module Pareto = Mcmap_util.Pareto

type summary = {
  best_power : float option;
  pareto : (Mcmap_hardening.Plan.t * float * float) list;
  rescue_ratio_pct : float;
  reexec_share_pct : float;
  rescue_trend : (float * float) option;
  stats : Ga.stats;
}

(* Rescue ratio over the first vs the second half of the generations. *)
let trend_of_history history =
  match history with
  | [] | [ _ ] -> None
  | _ :: _ ->
    let n = List.length history in
    let ratio slice =
      let feasible =
        Mcmap_util.Mathx.sum_by (fun g -> g.Ga.batch_feasible) slice in
      let rescued =
        Mcmap_util.Mathx.sum_by (fun g -> g.Ga.batch_rescued) slice in
      if feasible = 0 then None
      else Some (Mcmap_util.Stats.ratio_pct rescued feasible) in
    let first = List.filteri (fun i _ -> i < n / 2) history in
    let second = List.filteri (fun i _ -> i >= n / 2) history in
    (match ratio first, ratio second with
     | Some a, Some b -> Some (a, b)
     | _, _ -> None)

let summarize (result : Ga.result) =
  let feasible =
    List.filter
      (fun (_, e) -> Evaluate.feasible e)
      (Array.to_list result.Ga.archive) in
  let best_power =
    List.fold_left
      (fun acc (_, (e : Evaluate.t)) ->
        match acc with
        | Some p when p <= e.Evaluate.power -> acc
        | Some _ | None -> Some e.Evaluate.power)
      None feasible in
  let entries =
    List.map
      (fun (_, (e : Evaluate.t)) ->
        ((e.Evaluate.plan, e.Evaluate.power, e.Evaluate.service),
         e.Evaluate.objectives))
      feasible in
  let pareto = List.map fst (Pareto.front_2d entries) in
  let stats = result.Ga.stats in
  { best_power; pareto;
    rescue_trend = trend_of_history stats.Ga.history;
    rescue_ratio_pct =
      Stats.ratio_pct stats.Ga.rescued_evaluations
        stats.Ga.feasible_evaluations;
    reexec_share_pct =
      Stats.ratio_pct stats.Ga.reexec_hardened stats.Ga.hardened;
    stats }

type progress = {
  generation : int;
  archive_size : int;
  archive_feasible : int;
  best_power : float option;
  hypervolume : float;
}

let run ?(config = Ga.default_config) ?on_generation arch apps =
  let callback =
    match on_generation with
    | None -> None
    | Some f ->
      let reference = Ga.hypervolume_reference arch in
      Some
        (fun generation archive ->
          let archive_feasible = ref 0 in
          let best_power = ref None in
          Array.iter
            (fun (_, (e : Evaluate.t)) ->
              if Evaluate.feasible e then begin
                incr archive_feasible;
                match !best_power with
                | Some p when p <= e.Evaluate.power -> ()
                | Some _ | None -> best_power := Some e.Evaluate.power
              end)
            archive;
          f
            { generation; archive_size = Array.length archive;
              archive_feasible = !archive_feasible;
              best_power = !best_power;
              hypervolume = Ga.archive_hypervolume ~reference archive }) in
  summarize (Ga.optimize ?on_generation:callback config arch apps)

let dropping_gain_pct ?(config = Ga.default_config) arch apps =
  let with_dropping =
    run ~config:{ config with force_no_dropping = false } arch apps in
  let without_dropping =
    run
      ~config:{ config with force_no_dropping = true; check_rescue = false }
      arch apps in
  let gain =
    match with_dropping.best_power, without_dropping.best_power with
    | Some w, Some wo -> Some (100. *. (wo -. w) /. w)
    | _, _ -> None in
  (with_dropping.best_power, without_dropping.best_power, gain)
