module Prng = Mcmap_util.Prng

type result = {
  best : (Genome.t * Evaluate.t) option;
  evaluations : int;
  feasible : int;
}

(* Scalar score for single-objective search: feasible candidates compete
   on power; infeasible ones rank after every feasible one, ordered by
   violation magnitude. *)
let score (e : Evaluate.t) =
  if Evaluate.feasible e then e.Evaluate.power
  else 1e6 +. e.Evaluate.violation

(* Both searches share one evaluator session per run (rescue checking
   off: single-objective baselines never report the §5.2 ratio). The
   decode consumes the same generator draws as before, so seeds
   reproduce historical runs; annealing in particular revisits its
   current/best neighbourhood constantly and hits the result cache. *)
let evaluate session rng genome =
  let plan =
    Decode.decode rng (Evaluator.arch session) (Evaluator.apps session)
      genome in
  Evaluator.eval session plan

let random_search ~budget ~seed arch apps =
  let session = Evaluator.create ~check_rescue:false arch apps in
  let rng = Prng.create seed in
  let best = ref None in
  let feasible = ref 0 in
  for i = 0 to budget - 1 do
    let genome =
      if i = 0 then Genome.seeded rng arch apps
      else Genome.random rng arch apps in
    let e = evaluate session rng genome in
    if Evaluate.feasible e then incr feasible;
    match !best with
    | Some (_, b) when score b <= score e -> ()
    | Some _ | None -> best := Some (genome, e)
  done;
  { best = Option.bind !best (fun (g, e) ->
        if Evaluate.feasible e then Some (g, e) else None);
    evaluations = budget;
    feasible = !feasible }

let simulated_annealing ~budget ~seed ?(initial_temperature = 1.0) ?cooling
    arch apps =
  let session = Evaluator.create ~check_rescue:false arch apps in
  let rng = Prng.create seed in
  let cooling =
    match cooling with
    | Some c -> c
    | None ->
      (* reach ~1 % of the initial temperature by the end of the budget *)
      exp (log 0.01 /. float_of_int (max 1 budget)) in
  let current = ref (Genome.seeded rng arch apps) in
  let current_eval = ref (evaluate session rng !current) in
  let best = ref (!current, !current_eval) in
  let feasible = ref (if Evaluate.feasible !current_eval then 1 else 0) in
  let temperature = ref initial_temperature in
  for _ = 2 to budget do
    let candidate = Genome.mutate rng ~rate:0.08 arch apps !current in
    let e = evaluate session rng candidate in
    if Evaluate.feasible e then incr feasible;
    let delta = score e -. score !current_eval in
    let accept =
      delta <= 0.
      || Prng.bernoulli rng (exp (-.delta /. max 1e-9 !temperature)) in
    if accept then begin
      current := candidate;
      current_eval := e
    end;
    (match !best with
     | _, b when score b <= score e -> ()
     | _ -> best := (candidate, e));
    temperature := !temperature *. cooling
  done;
  let g, e = !best in
  { best = (if Evaluate.feasible e then Some (g, e) else None);
    evaluations = budget;
    feasible = !feasible }
