module Arch = Mcmap_model.Arch
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Criticality = Mcmap_model.Criticality
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique
module Happ = Mcmap_hardening.Happ
module Reliability = Mcmap_reliability.Analysis
module Job = Mcmap_sched.Job
module Jobset = Mcmap_sched.Jobset
module Bounds = Mcmap_sched.Bounds
module Flat = Mcmap_sched.Flat
module Wcrt = Mcmap_analysis.Wcrt
module Verdict = Mcmap_analysis.Verdict
module Fingerprint = Mcmap_util.Fingerprint
module Lru = Mcmap_util.Lru
module Parallel = Mcmap_util.Parallel
module Obs = Mcmap_obs.Obs
module Flight = Mcmap_obs.Flight

(* ------------------------------------------------------------------ *)
(* Canonical plan fingerprints.                                        *)

let technique_fp fp (t : Technique.t) =
  match t with
  | Technique.No_hardening -> Fingerprint.int fp 1
  | Technique.Re_execution k -> Fingerprint.int (Fingerprint.int fp 2) k
  | Technique.Checkpointing (segments, k) ->
    Fingerprint.int (Fingerprint.int (Fingerprint.int fp 3) segments) k
  | Technique.Active_replication n ->
    Fingerprint.int (Fingerprint.int fp 4) n
  | Technique.Passive_replication m ->
    Fingerprint.int (Fingerprint.int fp 5) m

(* The voter binding is semantically inert without a voter (see
   {!Plan.decision}), so it is excluded from the canonical encoding:
   plans differing only there evaluate identically and should share one
   cache entry. *)
let decision_fp fp ~graph ~task (d : Plan.decision) =
  let fp = Fingerprint.int (Fingerprint.int fp graph) task in
  let fp = technique_fp fp d.Plan.technique in
  let fp = Fingerprint.int fp d.Plan.primary_proc in
  let fp = Fingerprint.int_array fp d.Plan.replica_procs in
  if Technique.needs_voter d.Plan.technique then
    Fingerprint.int fp d.Plan.voter_proc
  else fp

let drop_gene_tag = 0x4452 (* "DR": domain-separates drop genes *)

let fingerprint (plan : Plan.t) =
  (* Order-independent over genes: each bind/technique/drop gene is
     hashed with its coordinates and aggregated commutatively, so the
     encoding does not depend on any traversal order. *)
  let acc = ref Fingerprint.unordered_zero in
  Array.iteri
    (fun gi row ->
      Array.iteri
        (fun ti d ->
          acc :=
            Fingerprint.unordered_add !acc
              (decision_fp Fingerprint.empty ~graph:gi ~task:ti d))
        row)
    plan.Plan.decisions;
  Array.iteri
    (fun gi dropped ->
      if dropped then
        acc :=
          Fingerprint.unordered_add !acc
            (Fingerprint.int
               (Fingerprint.int Fingerprint.empty drop_gene_tag)
               gi))
    plan.Plan.dropped;
  Fingerprint.combine
    (Fingerprint.int Fingerprint.empty (Array.length plan.Plan.dropped))
    !acc

let row_fingerprint (plan : Plan.t) gi =
  let fp = ref (Fingerprint.int Fingerprint.empty gi) in
  Array.iteri
    (fun ti d -> fp := decision_fp !fp ~graph:gi ~task:ti d)
    plan.Plan.decisions.(gi);
  !fp

let decision_canonical_equal (a : Plan.decision) (b : Plan.decision) =
  a.Plan.technique = b.Plan.technique
  && a.Plan.primary_proc = b.Plan.primary_proc
  && a.Plan.replica_procs = b.Plan.replica_procs
  && ((not (Technique.needs_voter a.Plan.technique))
      || a.Plan.voter_proc = b.Plan.voter_proc)

(* Structural equality modulo the canonically-ignored coordinates — the
   collision guard behind every fingerprint-keyed result reuse. *)
let canonical_equal (a : Plan.t) (b : Plan.t) =
  a.Plan.dropped = b.Plan.dropped
  && Array.length a.Plan.decisions = Array.length b.Plan.decisions
  && begin
    try
      Array.iteri
        (fun gi row ->
          let row_b = b.Plan.decisions.(gi) in
          if Array.length row <> Array.length row_b then raise Exit;
          Array.iteri
            (fun ti d ->
              if not (decision_canonical_equal d row_b.(ti)) then raise Exit)
            row)
        a.Plan.decisions;
      true
    with Exit -> false
  end

(* ------------------------------------------------------------------ *)
(* Session state.                                                      *)

(* Cross-domain sharing audit (the discipline [mcmap serve] and
   [eval_population] rely on):

   - Every LRU tier ([results], [sched], [components], [rows],
     [rates]), the per-entry [ce_external] tables, the stat counters
     and [last_ok] are mutated only under [lock] — including the
     hit-counter bumps, which share the critical section of the lookup
     that observed the hit (a bump outside it loses updates when
     domains race).
   - Cached values ([Evaluate.t], [centry], hardened graphs, rates)
     are immutable once published, so a value evicted while another
     domain still holds it stays valid — eviction only drops the
     cache's reference.
   - The analysis contexts inside [centry] are shared across domains
     without the lock, which is safe for both engines: [Bounds.ctx]
     is read-only during [analyze] (scratch is allocated per call) and
     [Flat.ctx]'s scratch lives in a per-domain arena (Domain.DLS).
   - Two domains missing the same key may compute the same entry
     twice; results are bit-identical, the last insert wins, and the
     loser's entry dies with its holder — duplicated work, never
     divergence.
   - [eval] is therefore safe from any number of domains.
     [eval_population] additionally spawns its own fan-out, so
     concurrent calls are serialised on [population_lock] (below).
   - Obs/Flight recording uses per-domain buffers: safe from domains,
     but NOT from multiple systhreads sharing one domain — callers
     embedding a session in a threaded server must record their own
     metrics from reader threads (see Mcmap_serve.Metrics). *)

type engine = Reference | Flat

(* The two Algorithm 1 backends behind one face: the reference
   interval analysis ([Bounds]) and its flat structure-of-arrays twin
   ([Flat]). They agree field-for-field on every input — the
   [flat-agreement] oracle enforces it — so engine choice changes
   wall-clock only, never results. *)
type ectx = Ref_ctx of Bounds.ctx | Flat_ctx of Flat.ctx

let make_ectx engine ~horizon rjs =
  match engine with
  | Reference -> Ref_ctx (Bounds.make ~horizon rjs)
  | Flat -> Flat_ctx (Flat.make ~horizon rjs)

let analyze_ectx ~max_iterations ectx ~exec =
  match ectx with
  | Ref_ctx ctx -> Bounds.analyze ~max_iterations ctx ~exec
  | Flat_ctx ctx -> Flat.analyze ~max_iterations ctx ~exec

type sched_info = {
  required : Verdict.t array;  (* per source graph: required WCRT *)
  ok : bool;  (* every required verdict meets its deadline *)
}

(* One trigger scenario's result over a component's graphs. *)
type outcome = {
  o_diverged : bool;
  o_verdicts : Verdict.t array;  (* aligned with [ce_graphs] *)
}

(* Memoised analysis of one processor-connected component: the restricted
   jobset's normal-state fixed point, one scenario per internal trigger,
   and a lazily-grown table of external-trigger scenarios keyed by the
   trigger's (min_start, max_finish) summary — the only channel through
   which a remote fault is visible here (see {!Wcrt.external_exec}). *)
type centry = {
  ce_ctx : ectx;
  ce_graphs : int array;  (* ascending source graph indices *)
  ce_response : Job.t array array;
      (* per graph: its sink-task response jobs — static per restricted
         jobset, cached so each scenario outcome is a max-fold rather
         than a sink recomputation and jobset scan per graph *)
  ce_normal : Bounds.result;
  ce_normal_verdicts : Verdict.t array;
  ce_triggers : Job.t array;
  ce_summaries : (int * int) array;  (* per trigger: (min_start, max_finish) *)
  ce_internal : outcome array;  (* per trigger; empty if normal diverged *)
  ce_external : (int * int, outcome) Hashtbl.t;
}

type stats = {
  hits : int;
  misses : int;
  sched_hits : int;
  sched_misses : int;
  component_hits : int;
  component_misses : int;
  external_scenarios : int;
  evictions : int;
}

type t = {
  arch : Arch.t;
  apps : Appset.t;
  salt : Fingerprint.t;
      (* absorbs the architecture (interconnect + processor count) into
         every plan/row cache key, so fingerprints from sessions over
         different backends can never alias *)
  engine : engine;
  check_rescue : bool;
  max_iterations : int;
  domains : int;
  n_graphs : int;
  deadlines : int array;
  rel_bounds : float option array;
  base : int;  (* application hyperperiod *)
  horizon : int;  (* full-jobset divergence horizon, plan-independent *)
  lock : Mutex.t;
  population_lock : Mutex.t;
      (* serialises eval_population: each call spawns its own domain
         fan-out, and two overlapping fan-outs from different callers
         would oversubscribe the machine and interleave their progress
         spans. One population at a time is the discipline [mcmap
         serve] relies on (its pool keeps one lock per session). *)
  results : (Fingerprint.t, Evaluate.t) Lru.t;
  sched : (Fingerprint.t, sched_info) Lru.t;
  components : (Fingerprint.t, centry) Lru.t;
  rows : (Fingerprint.t, Happ.hgraph) Lru.t;
  rates : (Fingerprint.t, float) Lru.t;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_sched_hits : int;
  mutable n_sched_misses : int;
  mutable n_component_hits : int;
  mutable n_component_misses : int;
  mutable n_external : int;
  mutable last_ok : bool option;
      (* previous eval's schedulable bit, for verdict-flip events *)
}

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let create ?(cache_capacity = 4096) ?(component_capacity = 64)
    ?(domains = 1) ?(engine = Flat) ?(check_rescue = true)
    ?(max_iterations = Bounds.default_max_iterations) arch apps =
  if domains < 1 then invalid_arg "Evaluator.create: domains < 1";
  if cache_capacity < 0 then
    invalid_arg "Evaluator.create: negative cache capacity";
  let n_graphs = Appset.n_graphs apps in
  let deadlines =
    Array.init n_graphs (fun g -> (Appset.graph apps g).Graph.deadline) in
  let rel_bounds =
    Array.init n_graphs (fun g ->
        Criticality.max_failure_rate (Appset.graph apps g).Graph.criticality)
  in
  let salt =
    Mcmap_model.Interconnect.fingerprint
      (Fingerprint.int Fingerprint.empty (Arch.n_procs arch))
      arch.Arch.interconnect in
  let base = Appset.hyperperiod apps in
  (* The full jobset's horizon ([Bounds.make]'s default: 4 hyperperiods
     plus the latest absolute deadline) is plan-independent — per graph
     the latest release is [H - period] — so every restricted analysis
     can be run against the same cap and diverge exactly when the full
     analysis would. *)
  let horizon =
    let max_deadline = ref 0 in
    for g = 0 to n_graphs - 1 do
      let graph = Appset.graph apps g in
      if Graph.n_tasks graph > 0 then
        max_deadline :=
          max !max_deadline (base - graph.Graph.period + graph.Graph.deadline)
    done;
    (4 * base) + !max_deadline in
  { arch; apps; salt; engine; check_rescue; max_iterations; domains;
    n_graphs; deadlines;
    rel_bounds; base; horizon; lock = Mutex.create ();
    population_lock = Mutex.create ();
    results = Lru.create ~capacity:cache_capacity ();
    sched = Lru.create ~capacity:cache_capacity ();
    components = Lru.create ~capacity:component_capacity ();
    rows = Lru.create ~capacity:(4 * (cache_capacity + 1)) ();
    rates = Lru.create ~capacity:(4 * (cache_capacity + 1)) ();
    n_hits = 0; n_misses = 0; n_sched_hits = 0; n_sched_misses = 0;
    n_component_hits = 0; n_component_misses = 0; n_external = 0;
    last_ok = None }

(* Cache-tier attribution: one labelled counter family per tier
   ("evaluator.<tier>~hit|miss|evict|collision"), and — when the flight
   recorder is armed — one structured event per decision, so a crash
   dump shows which tier served the last few hundred requests. *)
let tier_event tier kind label =
  if Obs.enabled () then Obs.incr ~label tier;
  if Flight.armed () then Flight.record kind tier

let tier_hit tier = tier_event tier Flight.Cache_hit "hit"

let tier_miss tier = tier_event tier Flight.Cache_miss "miss"

(* [Lru.evictions] is cumulative; emit the delta a single [add] caused. *)
let tier_add tier cache key value =
  let before = Lru.evictions cache in
  Lru.add cache key value;
  if Lru.evictions cache > before then
    tier_event tier Flight.Cache_evict "evict"

(* Flip events mark where the session's freshly-evaluated plans cross
   the schedulable/unschedulable boundary — the interesting moments in
   a search trajectory. Cache hits don't count: they re-observe an old
   verdict rather than produce a new one. *)
let note_verdict t ok =
  if Flight.armed () then
    with_lock t (fun () ->
        (match t.last_ok with
         | Some prev when prev <> ok ->
           Flight.record ~a:(Bool.to_int ok) ~b:(Bool.to_int prev)
             Flight.Verdict_flip "evaluator.schedulable"
         | Some _ | None -> ());
        t.last_ok <- Some ok)

let arch t = t.arch

let apps t = t.apps

(* ------------------------------------------------------------------ *)
(* Hardened-graph and reliability caches (keyed per decision row).     *)

let hgraph_for t plan gi =
  let key = Fingerprint.combine t.salt (row_fingerprint plan gi) in
  match with_lock t (fun () -> Lru.find t.rows key) with
  | Some hg ->
    tier_hit "evaluator.rows";
    hg
  | None ->
    tier_miss "evaluator.rows";
    let hg = Happ.hardened_graph t.arch t.apps plan gi in
    with_lock t (fun () -> tier_add "evaluator.rows" t.rows key hg);
    hg

let happ_of t plan =
  (* Validate before touching per-row constructors, with the same error
     as the fresh [Happ.build] path. *)
  (match Plan.errors t.arch t.apps plan with
   | [] -> ()
   | msg :: _ -> invalid_arg ("Happ.build: " ^ msg));
  let graphs = Array.init t.n_graphs (fun gi -> hgraph_for t plan gi) in
  Happ.assemble t.arch t.apps plan graphs

let rate_of t plan gi =
  let key = Fingerprint.combine t.salt (row_fingerprint plan gi) in
  match with_lock t (fun () -> Lru.find t.rates key) with
  | Some r ->
    tier_hit "evaluator.rates";
    r
  | None ->
    tier_miss "evaluator.rates";
    let r = Reliability.graph_failure_rate t.arch t.apps plan ~graph:gi in
    with_lock t (fun () -> tier_add "evaluator.rates" t.rates key r);
    r

(* Same iteration order and float comparisons as
   [Reliability.violations]; the cached rate is the identical double. *)
let violations_of t plan =
  let acc = ref [] in
  for gi = t.n_graphs - 1 downto 0 do
    match t.rel_bounds.(gi) with
    | None -> ()
    | Some bound ->
      let failure_rate = rate_of t plan gi in
      if failure_rate > bound then
        acc := { Reliability.graph = gi; failure_rate; bound } :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Scheduling: processor-component decomposition of Algorithm 1.       *)

(* Partition source graphs into classes connected by processor sharing:
   interference is per-processor and precedence per-graph, so each class
   analyses independently of the others (given trigger summaries). *)
let components_of t (happ : Happ.t) =
  let n_procs = Arch.n_procs t.arch in
  let parent = Array.init n_procs Fun.id in
  let rec find p = if parent.(p) = p then p else find parent.(p) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb in
  let anchor = Array.make t.n_graphs (-1) in
  Array.iteri
    (fun gi hg ->
      Array.iter
        (fun (ht : Happ.htask) ->
          if anchor.(gi) < 0 then anchor.(gi) <- ht.Happ.proc
          else union anchor.(gi) ht.Happ.proc)
        hg.Happ.tasks)
    happ.Happ.graphs;
  (* Group graphs by root processor, keeping ascending graph order;
     task-less graphs become singleton components. *)
  let buckets = Hashtbl.create 16 in
  let order = ref [] in
  for gi = t.n_graphs - 1 downto 0 do
    let key = if anchor.(gi) < 0 then -1 - gi else find anchor.(gi) in
    (match Hashtbl.find_opt buckets key with
     | Some members -> Hashtbl.replace buckets key (gi :: members)
     | None ->
       Hashtbl.replace buckets key [ gi ];
       order := key :: !order)
  done;
  (* [order] lists roots by ascending minimal member graph. *)
  List.map
    (fun key -> Array.of_list (Hashtbl.find buckets key))
    (List.sort
       (fun a b ->
         compare
           (List.hd (Hashtbl.find buckets a))
           (List.hd (Hashtbl.find buckets b)))
       !order)
  |> Array.of_list

let structure_fp rjs =
  let fp = ref (Fingerprint.int Fingerprint.empty (Jobset.n_jobs rjs)) in
  Array.iter
    (fun (j : Job.t) ->
      let f = !fp in
      let f = Fingerprint.int f j.Job.graph in
      let f = Fingerprint.int f j.Job.task in
      let f = Fingerprint.int f j.Job.instance in
      let f = Fingerprint.int f j.Job.release in
      let f = Fingerprint.int f j.Job.abs_deadline in
      let f = Fingerprint.int f j.Job.proc in
      let f = Fingerprint.int f j.Job.priority in
      let f = Fingerprint.int f j.Job.bcet in
      let f = Fingerprint.int f j.Job.wcet in
      let f = Fingerprint.int f j.Job.critical_wcet in
      let f = Fingerprint.int f j.Job.reexec_k in
      let f = Fingerprint.int f j.Job.recovery in
      let f = Fingerprint.bool f j.Job.passive in
      let f = Fingerprint.bool f j.Job.voter in
      let f = Fingerprint.int f j.Job.origin in
      let f = Fingerprint.bool f j.Job.droppable in
      let f = Fingerprint.bool f j.Job.in_dropped_set in
      fp := f)
    rjs.Jobset.jobs;
  Array.iter
    (fun edges ->
      fp := Fingerprint.int !fp (Array.length edges);
      Array.iter
        (fun (p, delay) -> fp := Fingerprint.int (Fingerprint.int !fp p) delay)
        edges)
    rjs.Jobset.preds;
  fp := Fingerprint.int_array !fp rjs.Jobset.topo;
  !fp

let response_jobs_for rjs graphs =
  Array.map
    (fun g -> Array.of_list (Jobset.response_jobs rjs ~graph:g))
    graphs

(* [Bounds.graph_wcrt] over the precomputed response jobs: the same
   max-fold on the same jobs, minus the per-call sink lookup. *)
let per_graph_outcome response res =
  { o_diverged = not res.Bounds.converged;
    o_verdicts =
      Array.map
        (fun jobs ->
          Verdict.of_option
            (if not res.Bounds.converged then None
             else begin
               let worst = ref 0 in
               Array.iter
                 (fun (j : Job.t) ->
                   let finish =
                     res.Bounds.bounds.(j.Job.id).Bounds.max_finish in
                   worst := max !worst (Job.response j ~finish))
                 jobs;
               Some !worst
             end))
        response }

let centry_for t js graphs =
  let rjs = Jobset.restrict js ~graphs in
  let key = structure_fp rjs in
  match
    with_lock t (fun () ->
        let found = Lru.find t.components key in
        if found <> None then t.n_component_hits <- t.n_component_hits + 1;
        found)
  with
  | Some entry ->
    tier_event "evaluator.component" Flight.Cache_hit "memo";
    entry
  | None ->
    tier_event "evaluator.component" Flight.Cache_miss "resolve";
    let ctx = make_ectx t.engine ~horizon:t.horizon rjs in
    let response = response_jobs_for rjs graphs in
    let normal =
      analyze_ectx ~max_iterations:t.max_iterations ctx
        ~exec:Bounds.nominal_exec in
    let normal_verdicts = (per_graph_outcome response normal).o_verdicts in
    let triggers = Array.of_list (Jobset.triggers rjs) in
    let summaries =
      Array.map
        (fun (v : Job.t) ->
          ( normal.Bounds.bounds.(v.Job.id).Bounds.min_start,
            normal.Bounds.bounds.(v.Job.id).Bounds.max_finish ))
        triggers in
    let internal =
      if normal.Bounds.converged then
        Array.map
          (fun (v : Job.t) ->
            let exec =
              Wcrt.scenario_exec ~base:t.base normal.Bounds.bounds v in
            per_graph_outcome response
              (analyze_ectx ~max_iterations:t.max_iterations ctx ~exec))
          triggers
      else [||] in
    let entry =
      { ce_ctx = ctx; ce_graphs = graphs; ce_response = response;
        ce_normal = normal;
        ce_normal_verdicts = normal_verdicts; ce_triggers = triggers;
        ce_summaries = summaries; ce_internal = internal;
        ce_external = Hashtbl.create 16 } in
    with_lock t (fun () ->
        t.n_component_misses <- t.n_component_misses + 1;
        tier_add "evaluator.component" t.components key entry);
    entry

(* The scenario of a trigger outside this component, summarised by its
   (min_start, max_finish) pair; memoised per entry, so all external
   triggers with equal summaries share one fixed-point run. Racing
   domains may compute the same outcome twice — results are equal, the
   first insert wins. *)
let external_outcome t entry (ms, mf) =
  match
    with_lock t (fun () -> Hashtbl.find_opt entry.ce_external (ms, mf))
  with
  | Some o -> o
  | None ->
    let exec =
      Wcrt.external_exec ~base:t.base ~min_start:ms ~max_finish:mf
        entry.ce_normal.Bounds.bounds in
    let res =
      analyze_ectx ~max_iterations:t.max_iterations entry.ce_ctx ~exec in
    let o = per_graph_outcome entry.ce_response res in
    if Obs.enabled () then Obs.incr "evaluator.external_scenarios";
    with_lock t (fun () ->
        t.n_external <- t.n_external + 1;
        if not (Hashtbl.mem entry.ce_external (ms, mf)) then
          Hashtbl.add entry.ce_external (ms, mf) o);
    o

(* Reassemble the full Algorithm 1 verdicts from per-component pieces.
   Exactness relies on three facts established in DESIGN.md §11: the
   restricted sweeps replay the full Gauss-Seidel sweeps verbatim (same
   job order, same horizon, same iteration cap), a remote trigger acts
   on a component only through its (min_start, max_finish) summary, and
   divergence anywhere must poison the whole scenario exactly as the
   full analysis's [converged = false] does. *)
let compute_sched t (happ : Happ.t) =
  let js = Jobset.build happ in
  let comps = components_of t happ in
  let entries = Array.map (fun graphs -> centry_for t js graphs) comps in
  let required = Array.make t.n_graphs Verdict.Unbounded in
  if
    Array.exists
      (fun e -> not e.ce_normal.Bounds.converged)
      entries
  then
    (* The full normal-state analysis would not converge: every graph is
       unbounded and no trigger scenario is examined. *)
    { required; ok = false }
  else begin
    let position = Array.make t.n_graphs (-1, -1) in
    Array.iteri
      (fun ci entry ->
        Array.iteri
          (fun k g ->
            position.(g) <- (ci, k);
            required.(g) <- entry.ce_normal_verdicts.(k))
          entry.ce_graphs)
      entries;
    Array.iteri
      (fun ci entry ->
        Array.iteri
          (fun ti _v ->
            let summary = entry.ce_summaries.(ti) in
            let outcomes =
              Array.mapi
                (fun cj other ->
                  if cj = ci then entry.ce_internal.(ti)
                  else external_outcome t other summary)
                entries in
            let diverged =
              Array.exists (fun o -> o.o_diverged) outcomes in
            for g = 0 to t.n_graphs - 1 do
              (* Dropped-set graphs owe their deadline only in the
                 normal state (cf. [Wcrt.analyze]). *)
              if not (Happ.graph_in_dropped_set happ g) then begin
                let contribution =
                  if diverged then Verdict.Unbounded
                  else begin
                    let cj, k = position.(g) in
                    outcomes.(cj).o_verdicts.(k)
                  end in
                required.(g) <- Verdict.max required.(g) contribution
              end
            done)
          entry.ce_triggers)
      entries;
    let ok = ref true in
    Array.iteri
      (fun g verdict ->
        if not (Verdict.within verdict t.deadlines.(g)) then ok := false)
      required;
    { required; ok = !ok }
  end

let sched_of t fp (happ : Happ.t Lazy.t) =
  match
    with_lock t (fun () ->
        let found = Lru.find t.sched fp in
        if found <> None then t.n_sched_hits <- t.n_sched_hits + 1;
        found)
  with
  | Some info ->
    tier_hit "evaluator.sched";
    info
  | None ->
    tier_miss "evaluator.sched";
    let info = compute_sched t (Lazy.force happ) in
    with_lock t (fun () ->
        t.n_sched_misses <- t.n_sched_misses + 1;
        tier_add "evaluator.sched" t.sched fp info);
    info

(* ------------------------------------------------------------------ *)
(* Evaluation.                                                         *)

let power t plan = Evaluate.power_of_happ t.arch (happ_of t plan)

let eval_fresh t fp plan =
  let happ = happ_of t plan in
  let sinfo = sched_of t fp (lazy happ) in
  let reliability_violations = violations_of t plan in
  let reliable = reliability_violations = [] in
  let power = Evaluate.power_of_happ t.arch happ in
  let service = Evaluate.service_of_plan t.apps plan in
  let violation =
    if sinfo.ok && reliable then 0.
    else
      Evaluate.violation_of ~deadlines:t.deadlines sinfo.required
        reliability_violations in
  let rescued =
    if (not t.check_rescue) || not sinfo.ok then false
    else if Plan.dropped_graphs plan = [] then false
    else begin
      let no_drop =
        Plan.make t.apps
          ~decisions:(Array.map Array.copy plan.Plan.decisions)
          ~dropped:(Array.make t.n_graphs false) in
      let ninfo =
        sched_of t (fingerprint no_drop) (lazy (happ_of t no_drop)) in
      not ninfo.ok
    end in
  { Evaluate.plan; power; service; schedulable = sinfo.ok; reliable;
    violation; rescued; objectives = [| power; -.service |] }

let find_cached t fp plan =
  with_lock t (fun () ->
      match Lru.find t.results fp with
      | Some e when canonical_equal e.Evaluate.plan plan ->
        t.n_hits <- t.n_hits + 1;
        Some e
      | Some _ ->
        (* fingerprint collision: treat as a miss *)
        tier_event "evaluator.result" Flight.Cache_collision "collision";
        None
      | None -> None)

let eval t plan =
  Obs.with_span "evaluator.eval" (fun () ->
      let fp = Fingerprint.combine t.salt (fingerprint plan) in
      match find_cached t fp plan with
      | Some e ->
        tier_hit "evaluator.result";
        { e with Evaluate.plan }
      | None ->
        tier_miss "evaluator.result";
        let e = eval_fresh t fp plan in
        note_verdict t e.Evaluate.schedulable;
        with_lock t (fun () ->
            t.n_misses <- t.n_misses + 1;
            tier_add "evaluator.result" t.results fp e);
        e)

let eval_population t plans =
  (* One population fan-out at a time (see [population_lock]): a second
     concurrent caller blocks here until the first finishes, rather
     than doubling the spawned domains. [eval] itself is reentrant
     under this lock — population workers call it freely. *)
  Mutex.lock t.population_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.population_lock)
  @@ fun () ->
  Obs.with_span "evaluator.eval_population" (fun () ->
      let n = Array.length plans in
      let fps =
        Array.map
          (fun p -> Fingerprint.combine t.salt (fingerprint p))
          plans in
      (* Representative of each canonical-equality class: the first
         occurrence. Classes are found via the fingerprint with a
         structural guard, so colliding-but-different plans stay
         separate. *)
      let rep = Array.make n (-1) in
      let classes = Hashtbl.create (2 * n) in
      for i = 0 to n - 1 do
        let seen =
          Option.value ~default:[] (Hashtbl.find_opt classes fps.(i)) in
        match
          List.find_opt (fun j -> canonical_equal plans.(j) plans.(i)) seen
        with
        | Some j -> rep.(i) <- j
        | None ->
          rep.(i) <- i;
          Hashtbl.replace classes fps.(i) (i :: seen)
      done;
      let results = Array.make n None in
      let work = ref [] in
      for i = n - 1 downto 0 do
        if rep.(i) = i then begin
          match find_cached t fps.(i) plans.(i) with
          | Some e ->
            tier_hit "evaluator.result";
            results.(i) <- Some { e with Evaluate.plan = plans.(i) }
          | None -> work := i :: !work
        end
      done;
      let work = Array.of_list !work in
      (* Unevaluated representatives fan out over domains; [eval] guards
         every shared cache with the session lock and any racy duplicate
         work produces bit-identical results, so the merge below is
         deterministic for any domain count. *)
      let fresh =
        Parallel.map_array ~domains:t.domains
          (fun i -> eval t plans.(i))
          work in
      Array.iteri (fun k i -> results.(i) <- Some fresh.(k)) work;
      Array.init n (fun i ->
          match results.(rep.(i)) with
          | Some e ->
            if rep.(i) = i then e else { e with Evaluate.plan = plans.(i) }
          | None -> assert false))

let stats t =
  with_lock t (fun () ->
      { hits = t.n_hits; misses = t.n_misses; sched_hits = t.n_sched_hits;
        sched_misses = t.n_sched_misses;
        component_hits = t.n_component_hits;
        component_misses = t.n_component_misses;
        external_scenarios = t.n_external;
        evictions =
          Lru.evictions t.results + Lru.evictions t.sched
          + Lru.evictions t.components + Lru.evictions t.rows
          + Lru.evictions t.rates })

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>evaluator: %d hits / %d misses (%.1f%% hit rate)@,\
     sched: %d hits / %d misses; components: %d hits / %d misses@,\
     external scenarios: %d; evictions: %d@]"
    s.hits s.misses
    (100.
     *. float_of_int s.hits
     /. float_of_int (max 1 (s.hits + s.misses)))
    s.sched_hits s.sched_misses s.component_hits s.component_misses
    s.external_scenarios s.evictions
