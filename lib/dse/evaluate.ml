module Arch = Mcmap_model.Arch
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Criticality = Mcmap_model.Criticality
module Proc = Mcmap_model.Proc
module Plan = Mcmap_hardening.Plan
module Happ = Mcmap_hardening.Happ
module Reliability = Mcmap_reliability.Analysis
module Jobset = Mcmap_sched.Jobset
module Bounds = Mcmap_sched.Bounds
module Wcrt = Mcmap_analysis.Wcrt
module Verdict = Mcmap_analysis.Verdict

type t = {
  plan : Plan.t;
  power : float;
  service : float;
  schedulable : bool;
  reliable : bool;
  violation : float;
  rescued : bool;
  objectives : float array;
}

let feasible e = e.schedulable && e.reliable

(* Weight of the critical-state provisioning in the expected-power
   objective: the design pays for the nominal demand it always runs plus
   the certified critical-state demand (Eq. (1) WCETs, dropped graphs
   excluded) it must be able to absorb. Dropping thus frees real
   capacity — the effect behind the paper's Fig. 5 and the 14-18 % power
   gains of section 5.2. *)
let critical_weight = 0.6

let power_of_happ arch happ =
  let u_nominal = Happ.utilization ~mode:Happ.Nominal happ in
  let u_critical = Happ.utilization ~mode:Happ.Critical happ in
  let u =
    Array.mapi
      (fun p nominal ->
        ((1. -. critical_weight) *. nominal)
        +. (critical_weight *. u_critical.(p)))
      u_nominal in
  let hosts = Array.make (Arch.n_procs arch) false in
  Array.iter
    (fun hg ->
      Array.iter
        (fun (ht : Happ.htask) -> hosts.(ht.Happ.proc) <- true)
        hg.Happ.tasks)
    happ.Happ.graphs;
  let total = ref 0. in
  Array.iteri
    (fun p used ->
      if used then begin
        let proc = Arch.proc arch p in
        total :=
          !total +. proc.Proc.static_power
          +. (proc.Proc.dynamic_power *. u.(p))
      end)
    hosts;
  !total

let power_of_plan arch apps plan =
  power_of_happ arch (Happ.build arch apps plan)

let service_of_plan apps (plan : Plan.t) =
  let total = ref 0. in
  Array.iteri
    (fun gi dropped ->
      let g = Appset.graph apps gi in
      if Graph.is_droppable g && not dropped then
        total := !total +. Criticality.service g.Graph.criticality)
    plan.Plan.dropped;
  !total

(* Aggregate constraint violation for constraint-domination among
   infeasible candidates. Shared between the free evaluation below and
   the session path of [Evaluator], so both aggregate in the same
   floating-point order and agree bit for bit. *)
let violation_of ~deadlines required reliability_violations =
  let sched = ref 0. in
  Array.iteri
    (fun g verdict ->
      let deadline = deadlines.(g) in
      match verdict with
      | Verdict.Unbounded -> sched := !sched +. 10.
      | Verdict.Finite w ->
        if w > deadline then
          sched :=
            !sched +. (float_of_int (w - deadline) /. float_of_int deadline))
    required;
  let rel =
    List.fold_left
      (fun acc (v : Reliability.violation) ->
        acc +. min 10. (log10 (v.Reliability.failure_rate /. v.Reliability.bound)))
      0. reliability_violations in
  !sched +. rel

let violation_magnitude js report reliability_violations =
  let happ = js.Jobset.happ in
  let deadlines =
    Array.init (Happ.n_graphs happ) (fun g ->
        Happ.deadline (Happ.graph happ g)) in
  violation_of ~deadlines report.Wcrt.required_wcrt reliability_violations

let schedulable_of_plan ?max_iterations arch apps plan =
  let happ = Happ.build arch apps plan in
  let js = Jobset.build happ in
  let ctx = Bounds.make js in
  let report = Wcrt.analyze ?max_iterations ctx in
  (happ, js, report, Wcrt.schedulable js report)

let evaluate ?(check_rescue = true) ?max_iterations arch apps plan =
  let happ, js, report, schedulable =
    schedulable_of_plan ?max_iterations arch apps plan in
  let reliability_violations = Reliability.violations arch apps plan in
  let reliable = reliability_violations = [] in
  let power = power_of_happ arch happ in
  let service = service_of_plan apps plan in
  let violation =
    if schedulable && reliable then 0.
    else violation_magnitude js report reliability_violations in
  let rescued =
    if (not check_rescue) || not schedulable then false
    else if Plan.dropped_graphs plan = [] then false
    else begin
      let no_drop =
        Plan.make apps
          ~decisions:(Array.map Array.copy plan.Plan.decisions)
          ~dropped:(Array.make (Appset.n_graphs apps) false) in
      let _, _, _, schedulable_without =
        schedulable_of_plan ?max_iterations arch apps no_drop in
      not schedulable_without
    end in
  { plan; power; service; schedulable; reliable; violation; rescued;
    objectives = [| power; -.service |] }
