(** High-level exploration drivers behind the paper's experiments. *)

type summary = {
  best_power : float option;
      (** lowest power among feasible archive members *)
  pareto : (Mcmap_hardening.Plan.t * float * float) list;
      (** feasible power/service front: (plan, power, service), sorted by
          ascending power *)
  rescue_ratio_pct : float;
      (** among feasible candidates explored, the share that is
          infeasible when dropping is disabled — i.e. solutions rescued
          by task dropping (§5.2) *)
  reexec_share_pct : float;
      (** share of re-execution among applied hardening techniques
          (§5.2) *)
  rescue_trend : (float * float) option;
      (** rescue ratio (in %) over the first vs the second half of the
          generations — the paper observes the ratio grows as the
          exploration converges (§5.2); [None] when a half saw no
          feasible candidate *)
  stats : Ga.stats;
}

type progress = {
  generation : int;
  archive_size : int;
  archive_feasible : int;
  best_power : float option;
      (** lowest power among feasible archive members so far *)
  hypervolume : float;
      (** feasible-front hypervolume against {!Ga.hypervolume_reference} *)
}

val run :
  ?config:Ga.config ->
  ?on_generation:(progress -> unit) ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  summary
(** One optimisation run, summarised. [on_generation] (default: silent)
    observes a progress summary after every environmental selection —
    a multi-minute GA run is otherwise completely quiet. *)

val dropping_gain_pct :
  ?config:Ga.config ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  (float option * float option * float option)
(** The §5.2 power comparison: [(with, without, gain_pct)] where [with]
    is the best feasible power with task dropping enabled, [without] the
    best with dropping disabled, and [gain_pct] the relative extra power
    of the no-dropping design ([100 * (without - with) / with]). *)
