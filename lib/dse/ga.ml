module Prng = Mcmap_util.Prng
module Parallel = Mcmap_util.Parallel
module Pareto = Mcmap_util.Pareto
module Obs = Mcmap_obs.Obs
module Arch = Mcmap_model.Arch
module Proc = Mcmap_model.Proc
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique
module Bounds = Mcmap_sched.Bounds

type selector = Spea2_selector | Nsga2_selector

type config = {
  population : int;
  offspring : int;
  generations : int;
  mutation_rate : float;
  seed : int;
  force_no_dropping : bool;
  check_rescue : bool;
  max_iterations : int;
  selector : selector;
  domains : int;
  eval_cache : int;
  engine : Evaluator.engine;
}

let default_config =
  { population = 40; offspring = 40; generations = 40;
    mutation_rate = 0.05; seed = 1; force_no_dropping = false;
    check_rescue = true; max_iterations = Bounds.default_max_iterations;
    selector = Spea2_selector; domains = 1; eval_cache = 4096;
    engine = Evaluator.Flat }

type generation_stats = {
  generation : int;
  batch : int;
  batch_feasible : int;
  batch_rescued : int;
}

type stats = {
  evaluations : int;
  feasible_evaluations : int;
  rescued_evaluations : int;
  reexec_hardened : int;
  hardened : int;
  history : generation_stats list;
}

type result = {
  archive : (Genome.t * Evaluate.t) array;
  stats : stats;
}

(* A fixed per-run reference point makes the per-generation hypervolume
   series comparable along a run: power is bounded by every processor
   held at twice its dynamic budget (utilisations above 1 are already
   infeasible), negated service by 0. *)
let hypervolume_reference arch =
  let power = ref 0. in
  for p = 0 to Arch.n_procs arch - 1 do
    let proc = Arch.proc arch p in
    power :=
      !power +. proc.Proc.static_power +. (2. *. proc.Proc.dynamic_power)
  done;
  (!power, 0.)

let archive_hypervolume ~reference archive =
  let entries =
    Array.to_list archive
    |> List.filter_map (fun (_, (e : Evaluate.t)) ->
           if Evaluate.feasible e then Some ((), e.Evaluate.objectives)
           else None) in
  Pareto.hypervolume_2d ~reference entries

let count_hardening (plan : Plan.t) =
  let hardened = ref 0 and reexec = ref 0 in
  Array.iter
    (Array.iter (fun (d : Plan.decision) ->
         match d.Plan.technique with
         | Technique.No_hardening -> ()
         | Technique.Re_execution _ ->
           incr hardened;
           incr reexec
         | Technique.Checkpointing _ | Technique.Active_replication _
         | Technique.Passive_replication _ ->
           incr hardened))
    plan.Plan.decisions;
  (!hardened, !reexec)

let optimize ?on_generation config arch apps =
  let rng = Prng.create config.seed in
  let stats =
    ref
      { evaluations = 0; feasible_evaluations = 0; rescued_evaluations = 0;
        reexec_hardened = 0; hardened = 0; history = [] } in
  (* One evaluator session per run: decode stays a pure per-candidate
     function (each candidate carries its own pre-split generator), while
     analyses flow through the session's fingerprint caches —
     crossover/mutation duplicates and re-decoded elites are served from
     the result cache, mutations that touch one processor re-solve only
     the changed components. *)
  let session =
    Evaluator.create ~cache_capacity:config.eval_cache
      ~domains:config.domains ~engine:config.engine
      ~check_rescue:config.check_rescue
      ~max_iterations:config.max_iterations arch apps in
  let decode_candidate (genome, candidate_rng) =
    Decode.decode candidate_rng
      ~force_no_dropping:config.force_no_dropping arch apps genome in
  let account ~generation individuals =
    let batch_feasible = ref 0 and batch_rescued = ref 0 in
    Array.iter
      (fun ind ->
        let _, (e : Evaluate.t) = ind.Spea2.payload in
        let h, r = count_hardening e.Evaluate.plan in
        if Evaluate.feasible e then incr batch_feasible;
        if e.Evaluate.rescued then incr batch_rescued;
        stats :=
          { !stats with
            evaluations = !stats.evaluations + 1;
            reexec_hardened = !stats.reexec_hardened + r;
            hardened = !stats.hardened + h })
      individuals;
    stats :=
      { !stats with
        feasible_evaluations =
          !stats.feasible_evaluations + !batch_feasible;
        rescued_evaluations = !stats.rescued_evaluations + !batch_rescued;
        history =
          { generation; batch = Array.length individuals;
            batch_feasible = !batch_feasible;
            batch_rescued = !batch_rescued }
          :: !stats.history };
    if Obs.enabled () then begin
      Obs.incr ~by:(Array.length individuals) "dse.evaluations";
      Obs.incr ~by:!batch_feasible "dse.feasible_evaluations";
      Obs.incr ~by:!batch_rescued "dse.rescued_evaluations"
    end in
  let evaluate_batch ~generation genomes =
    Obs.with_span "ga.evaluate_batch" (fun () ->
        let t0 = if Obs.enabled () then Obs.now_ns () else 0L in
        let with_rngs =
          Array.map (fun genome -> (genome, Prng.split rng)) genomes in
        let plans =
          Parallel.map_array ~domains:config.domains decode_candidate
            with_rngs in
        let evaluations = Evaluator.eval_population session plans in
        let individuals =
          Array.map2
            (fun genome (e : Evaluate.t) ->
              Spea2.make_individual ~payload:(genome, e)
                ~objectives:e.Evaluate.objectives
                ~violation:e.Evaluate.violation)
            genomes evaluations in
        account ~generation individuals;
        if Obs.enabled () then
          Obs.series "dse.eval_ms" ~x:generation
            (Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e6);
        individuals) in
  let assign_fitness pop =
    match config.selector with
    | Spea2_selector -> Spea2.assign_fitness pop
    | Nsga2_selector -> Nsga2.assign_fitness pop in
  let environmental_selection ~size pop =
    match config.selector with
    | Spea2_selector -> Spea2.environmental_selection ~size pop
    | Nsga2_selector -> Nsga2.environmental_selection ~size pop in
  (* A quarter of the initial population is load-balance-seeded to give
     the search a schedulable foothold (the first two anchored at the
     all-dropped and none-dropped extremes so the service axis of the
     Pareto front is always explored); the rest is fully random. *)
  let droppable gi =
    Mcmap_model.Graph.is_droppable (Mcmap_model.Appset.graph apps gi) in
  let with_nondrop genome value =
    { genome with
      Genome.nondrop =
        Array.mapi
          (fun gi keep -> if droppable gi then value else keep)
          genome.Genome.nondrop } in
  let initial_genomes =
    Array.init config.population (fun i ->
        if i = 0 then with_nondrop (Genome.seeded rng arch apps) false
        else if i = 4 || config.population <= 4 then
          with_nondrop (Genome.seeded rng arch apps) true
        else if i mod 4 = 0 then Genome.seeded rng arch apps
        else Genome.random rng arch apps) in
  let reference = hypervolume_reference arch in
  let record_generation gen archive =
    if Obs.enabled () then begin
      let payloads =
        Array.map (fun ind -> ind.Spea2.payload) archive in
      let feasible =
        Array.fold_left
          (fun acc (_, e) -> if Evaluate.feasible e then acc + 1 else acc)
          0 payloads in
      Obs.series "dse.hypervolume" ~x:gen
        (archive_hypervolume ~reference payloads);
      Obs.series "dse.feasible_fraction" ~x:gen
        (float_of_int feasible
         /. float_of_int (max 1 (Array.length payloads)))
    end in
  let archive = ref (evaluate_batch ~generation:0 initial_genomes) in
  assign_fitness !archive;
  record_generation 0 !archive;
  for gen = 1 to config.generations do
    let children =
      Array.init config.offspring (fun i ->
          let parent1 = Spea2.binary_tournament rng !archive in
          let parent2 = Spea2.binary_tournament rng !archive in
          let g1, g2 =
            Genome.crossover rng (fst parent1.Spea2.payload)
              (fst parent2.Spea2.payload) in
          let child = if i mod 2 = 0 then g1 else g2 in
          Genome.mutate rng ~rate:config.mutation_rate arch apps child) in
    let evaluated = evaluate_batch ~generation:gen children in
    let union = Array.append !archive evaluated in
    assign_fitness union;
    archive := environmental_selection ~size:config.population union;
    assign_fitness !archive;
    record_generation gen !archive;
    match on_generation with
    | Some f -> f gen (Array.map (fun ind -> ind.Spea2.payload) !archive)
    | None -> ()
  done;
  { archive = Array.map (fun ind -> ind.Spea2.payload) !archive;
    stats = { !stats with history = List.rev !stats.history } }
