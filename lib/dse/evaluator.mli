(** Evaluator sessions: the handle-based analysis API of the design-space
    exploration (DESIGN.md §11).

    A session [create arch apps] precomputes everything plan-independent
    — deadlines, reliability bounds, the application hyperperiod and the
    analysis horizon — and memoises everything plan-dependent behind
    canonical 128-bit fingerprints:

    - a bounded LRU of full evaluation results keyed by the plan
      fingerprint (crossover/mutation duplicates and GA re-elites are
      near-free), guarded by structural plan equality against collisions;
    - hardened graphs and reliability rates keyed per decision row, so a
      mutation touching one graph rebuilds only that graph's image;
    - Algorithm 1 analyses decomposed by processor-connected components
      and keyed by the restricted job structure, so a mutation touching
      one component only re-solves the components whose job multisets
      changed; triggers in other components are summarised by their
      (min_start, max_finish) pair and the matching scenarios are
      memoised per component.

    Every cached path reproduces [Evaluate.evaluate] {e exactly} — field
    for field, bit for bit on floats — which the [evaluator-agreement]
    check oracle enforces; determinism of {!eval_population} for any
    domain count follows. *)

type t

type engine =
  | Reference  (** {!Mcmap_sched.Bounds} — the record-based oracle *)
  | Flat  (** {!Mcmap_sched.Flat} — the zero-allocation flat kernel *)
(** Which Algorithm 1 fixed-point implementation the session runs. Both
    return equal results on every input — the [flat-agreement] check
    oracle enforces exact agreement — so the choice affects speed only:
    [Flat] (the default) is the structure-of-arrays kernel, [Reference]
    keeps the original {!Mcmap_sched.Bounds} engine as the differential
    baseline. *)

val create :
  ?cache_capacity:int ->
  ?component_capacity:int ->
  ?domains:int ->
  ?engine:engine ->
  ?check_rescue:bool ->
  ?max_iterations:int ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  t
(** [cache_capacity] (default 4096) bounds the result and scheduling
    LRUs; 0 disables caching (every call analyses afresh — useful for
    measuring). [component_capacity] (default 64) bounds the
    per-component analysis cache, whose entries hold job sets and
    precedence matrices and are therefore larger. [domains] (default 1)
    parallelises {!eval_population}. [engine] (default {!Flat}) selects
    the fixed-point implementation. [check_rescue] and [max_iterations]
    are the session-wide analysis options previously restated at every
    [Evaluate.evaluate] call site; [max_iterations] defaults to
    {!Mcmap_sched.Bounds.default_max_iterations}.
    @raise Invalid_argument if [domains < 1] or [cache_capacity < 0]. *)

val arch : t -> Mcmap_model.Arch.t

val apps : t -> Mcmap_model.Appset.t

val eval : t -> Mcmap_hardening.Plan.t -> Evaluate.t
(** Evaluate one plan through the session caches. Exactly equal to
    [Evaluate.evaluate ~check_rescue ~max_iterations arch apps plan]
    (with the session's option values), except the returned [plan] field
    is the argument itself.

    Domain safety: safe to call concurrently from any number of
    domains. Every cache tier is guarded by one session lock, cached
    values are immutable once published, and the shared analysis
    contexts are either read-only ([Reference]) or keep their scratch
    in per-domain arenas ([Flat]); racing domains can at worst duplicate
    work, never diverge (audited in [evaluator.ml], exercised by the
    concurrent-access test). Not safe from multiple systhreads that
    share one domain while Obs/Flight recording is enabled — the
    recorders' per-domain buffers assume one mutator per domain. *)

val eval_population :
  t -> Mcmap_hardening.Plan.t array -> Evaluate.t array
(** Evaluate a population: canonical duplicates are folded onto one
    representative, cached results are served, and the remaining fresh
    evaluations fan out over the session's domains. The result array is
    index-aligned and byte-identical for any domain count.

    Concurrent calls on one session are serialised (each call owns the
    session's single population fan-out at a time); [mcmap serve]
    relies on exactly this discipline when several workers share a
    pooled session. *)

val power : t -> Mcmap_hardening.Plan.t -> float
(** The power objective through the session's cached hardened graphs;
    bit-identical to [Evaluate.power_of_plan]. *)

val fingerprint : Mcmap_hardening.Plan.t -> Mcmap_util.Fingerprint.t
(** The canonical plan fingerprint: an order-independent hash over
    bind/technique/drop genes. Coordinates that cannot influence any
    result — a voter binding under a voterless technique — are excluded,
    so such plans share cache entries. *)

val canonical_equal : Mcmap_hardening.Plan.t -> Mcmap_hardening.Plan.t -> bool
(** Structural equality modulo canonically-ignored coordinates: the
    equivalence whose classes {!fingerprint} keys, used as the collision
    guard on every result-cache hit. *)

type stats = {
  hits : int;  (** result-cache hits (incl. population dedup hits) *)
  misses : int;  (** full fresh evaluations *)
  sched_hits : int;  (** scheduling-info cache hits *)
  sched_misses : int;
  component_hits : int;  (** per-component analysis reuses *)
  component_misses : int;
  external_scenarios : int;
      (** external-trigger scenarios solved (each shared by all equal
          trigger summaries) *)
  evictions : int;  (** total LRU evictions over all session caches *)
}

val stats : t -> stats
(** Counters since [create]. The same events are mirrored to
    {!Mcmap_obs.Obs} counters ([evaluator.hits], [evaluator.misses],
    [evaluator.sched_hits], [evaluator.sched_misses],
    [evaluator.component_hits], [evaluator.component_misses],
    [evaluator.external_scenarios]) and spans ([evaluator.eval],
    [evaluator.eval_population]) when the recorder is enabled. *)

val pp_stats : Format.formatter -> stats -> unit
