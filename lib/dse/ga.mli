(** The genetic-algorithm loop of the mapping optimiser (paper §4):
    environmental selection (SPEA2 by default, NSGA-II as ablation) over
    an archive, binary-tournament mating, uniform crossover and point
    mutation on Figure-4 genomes, with decode-and-repair before every
    evaluation.

    Candidates are decoded by pure per-candidate functions (each carries
    its own pre-split PRNG) and analysed through one {!Evaluator} session
    per run, whose fingerprint caches serve crossover/mutation duplicates
    and re-decoded elites for free. With [domains > 1] decoding and the
    session's population evaluation fan out over OCaml domains — the
    paper evaluates candidates with multiple threads; results are
    byte-identical for any domain count.

    The paper runs population / parents / offspring of 100 for 5,000
    generations; defaults here are scaled to laptop single-core budgets
    and are fully configurable. *)

type selector = Spea2_selector | Nsga2_selector

type config = {
  population : int;  (** archive size (default 40) *)
  offspring : int;  (** children per generation (default 40) *)
  generations : int;  (** default 40 *)
  mutation_rate : float;  (** per-locus (default 0.05) *)
  seed : int;
  force_no_dropping : bool;
      (** ablation: decode every candidate with an empty dropped set *)
  check_rescue : bool;
      (** per-candidate double evaluation for the §5.2 rescue ratio *)
  max_iterations : int;  (** fixed-point sweep cap of the backend *)
  selector : selector;  (** default {!Spea2_selector} *)
  domains : int;  (** parallel evaluation domains (default 1) *)
  eval_cache : int;
      (** result-cache capacity of the run's {!Evaluator} session
          (default 4096); 0 disables caching *)
  engine : Evaluator.engine;
      (** Algorithm 1 fixed-point implementation (default
          {!Evaluator.Flat}); results are engine-independent, only
          speed differs *)
}

val default_config : config

type generation_stats = {
  generation : int;  (** 0 = the initial population *)
  batch : int;  (** candidates evaluated in this generation *)
  batch_feasible : int;
  batch_rescued : int;
}

type stats = {
  evaluations : int;
  feasible_evaluations : int;
  rescued_evaluations : int;
      (** feasible with dropping, infeasible without (§5.2) *)
  reexec_hardened : int;  (** hardened tasks using re-execution *)
  hardened : int;  (** tasks hardened, over all evaluations *)
  history : generation_stats list;
      (** chronological per-generation record — the paper observes that
          the dropping-rescue ratio grows as the exploration converges
          (§5.2), which this history makes checkable *)
}

type result = {
  archive : (Genome.t * Evaluate.t) array;  (** final archive *)
  stats : stats;
}

val optimize :
  ?on_generation:(int -> (Genome.t * Evaluate.t) array -> unit) ->
  config ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  result
(** Run the optimisation. [on_generation] observes the archive after
    each environmental selection. Deterministic in [config.seed]
    (for any [domains]).

    When the {!Mcmap_obs.Obs} recorder is enabled, every run records
    [dse.evaluations]/[dse.feasible_evaluations]/[dse.rescued_evaluations]
    counters, per-generation [dse.hypervolume], [dse.feasible_fraction]
    and [dse.eval_ms] series, and a [ga.evaluate_batch] span per
    generation. *)

val hypervolume_reference : Mcmap_model.Arch.t -> float * float
(** A fixed (power, negated-service) reference point that is worse than
    any feasible candidate on the given architecture, so hypervolumes
    of different generations (and runs) of the same problem are
    comparable. *)

val archive_hypervolume :
  reference:float * float -> (Genome.t * Evaluate.t) array -> float
(** Hypervolume of the feasible members of an archive (the quantity in
    the [dse.hypervolume] series). *)
