(** The hardened application set [T'] (paper §2.3): the result of applying
    a {!Plan.t} to an application set. Re-execution keeps the topology and
    inflates execution times per Eq. (1); replication materialises replica
    tasks and a voter per hardened task (Fig. 2); passive spares are
    flagged so the analysis can treat them as silent in the normal state.

    Passive spares also receive channels from both active replicas: the
    spare self-activates when the active results that reach its processor
    disagree, which places its earliest possible start after the actives
    complete — the dependency a safe WCRT analysis must see.

    All execution times stored here are scaled to the bound processor's
    speed, so downstream components never consult processor speeds. *)

type role =
  | Primary  (** the original task / first replica *)
  | Replica of int  (** additional active replica (1-based) *)
  | Passive_spare of int  (** replica instantiated only on request *)
  | Voter  (** majority voter of a replicated task *)

type htask = {
  id : int;  (** index within the hardened graph *)
  name : string;
  origin : int;  (** original task id in the source graph *)
  role : role;
  proc : int;  (** bound processor *)
  bcet : int;  (** nominal best-case execution time (scaled) *)
  wcet : int;
      (** nominal worst-case execution time (scaled); includes the
          detection overhead for re-executable tasks *)
  critical_wcet : int;
      (** Eq. (1)-style bound for rollback-hardened tasks;
          [= wcet] otherwise *)
  reexec_k : int;
      (** maximum rollbacks (re-executions or checkpoint recoveries);
          0 if not rollback-hardened *)
  recovery : int;
      (** execution time of one rollback: the full nominal execution for
          re-execution, one segment plus its checkpoint for
          checkpointing; 0 otherwise *)
  passive : bool;  (** a passive spare: silent unless a fault occurs *)
}

type hchannel = { src : int; dst : int; size : int }

type hgraph = private {
  source_index : int;  (** index of the source graph in the appset *)
  source : Mcmap_model.Graph.t;
  tasks : htask array;
  channels : hchannel array;
  preds : (int * int) array array;
      (** [preds.(v)] = [(u, size)] for each channel u->v *)
  succs : (int * int) array array;
  topo : int array;  (** topological order of hardened task ids *)
}

type t = private {
  arch : Mcmap_model.Arch.t;
  apps : Mcmap_model.Appset.t;
  plan : Plan.t;
  graphs : hgraph array;
}

val build : Mcmap_model.Arch.t -> Mcmap_model.Appset.t -> Plan.t -> t
(** Apply the plan.
    @raise Invalid_argument if the plan has placement errors
    (see {!Plan.errors}). *)

val hardened_graph :
  Mcmap_model.Arch.t -> Mcmap_model.Appset.t -> Plan.t -> int -> hgraph
(** The hardened image of one source graph. The result depends only on
    that graph's decision row (and the fixed architecture / application
    set) — the invariant that lets the evaluator session cache hardened
    graphs per row and reassemble whole sets with {!assemble}. Does not
    validate the plan. *)

val assemble :
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Plan.t ->
  hgraph array ->
  t
(** Reassemble a hardened application set from per-graph images built by
    {!hardened_graph} (possibly cached from earlier plans with identical
    decision rows). Validates the plan exactly like {!build}; the result
    is indistinguishable from [build arch apps plan].
    @raise Invalid_argument on placement errors or if [graphs] is not one
    image per source graph in order. *)

val n_graphs : t -> int

val graph : t -> int -> hgraph

val period : hgraph -> int

val deadline : hgraph -> int

val graph_droppable : t -> int -> bool
(** The source graph is droppable (whether it is in [T_d] is the plan's
    [dropped] flag). *)

val graph_in_dropped_set : t -> int -> bool
(** The graph belongs to the dropped set [T_d] of the plan. *)

val is_trigger : htask -> bool
(** The task can trigger a transition to the critical state: it is
    re-executable or it is a passive spare (paper §3). *)

val n_tasks : t -> int
(** Total hardened tasks over all graphs. *)

val sink_response_tasks : hgraph -> int list
(** Hardened tasks whose completion defines the graph's response time:
    the hardened images of the source graph's sinks (the voter when the
    sink is replicated). *)

type utilization_mode =
  | Nominal  (** fault-free: nominal WCETs, passive spares silent *)
  | Critical
      (** certified worst case: Eq. (1) WCETs, passive spares active,
          dropped-set graphs excluded (they are abandoned in the
          critical state) *)

val utilization : ?mode:utilization_mode -> t -> float array
(** Per-processor utilisation over the hyperperiod, the sum of
    [execution time / period] of bound tasks under the chosen mode
    (default {!Nominal}). The paper's power objective provisions for the
    {!Critical} utilisation — which is what makes task dropping save
    power. *)

val pp : Format.formatter -> t -> unit
