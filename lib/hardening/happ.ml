module Appset = Mcmap_model.Appset
module Arch = Mcmap_model.Arch
module Graph = Mcmap_model.Graph
module Proc = Mcmap_model.Proc
module Task = Mcmap_model.Task

type role = Primary | Replica of int | Passive_spare of int | Voter

type htask = {
  id : int;
  name : string;
  origin : int;
  role : role;
  proc : int;
  bcet : int;
  wcet : int;
  critical_wcet : int;
  reexec_k : int;
  recovery : int;
  passive : bool;
}

type hchannel = { src : int; dst : int; size : int }

type hgraph = {
  source_index : int;
  source : Graph.t;
  tasks : htask array;
  channels : hchannel array;
  preds : (int * int) array array;
  succs : (int * int) array array;
  topo : int array;
}

type t = {
  arch : Arch.t;
  apps : Appset.t;
  plan : Plan.t;
  graphs : hgraph array;
}

let adjacency n channels =
  let preds = Array.make n [] and succs = Array.make n [] in
  List.iter
    (fun c ->
      preds.(c.dst) <- (c.src, c.size) :: preds.(c.dst);
      succs.(c.src) <- (c.dst, c.size) :: succs.(c.src))
    channels;
  ( Array.map (fun l -> Array.of_list (List.rev l)) preds,
    Array.map (fun l -> Array.of_list (List.rev l)) succs )

let topological_order n preds succs =
  let deg = Array.map Array.length preds in
  let ready = ref [] in
  for v = n - 1 downto 0 do
    if deg.(v) = 0 then ready := v :: !ready
  done;
  let order = Array.make n (-1) in
  let rec loop i = function
    | [] -> i
    | v :: rest ->
      order.(i) <- v;
      let rest =
        Array.fold_left
          (fun acc (w, _) ->
            deg.(w) <- deg.(w) - 1;
            if deg.(w) = 0 then List.sort compare (w :: acc) else acc)
          rest succs.(v) in
      loop (i + 1) rest in
  let filled = loop 0 !ready in
  assert (filled = n);
  order

(* Build the hardened image of one source graph: materialise replica and
   voter nodes, rewire the channels through per-origin input/output
   frontiers, and inflate execution bounds per Eq. (1). *)
let build_graph arch apps plan gi =
  let g = Appset.graph apps gi in
  let n = Graph.n_tasks g in
  let nodes = ref [] in
  let next_id = ref 0 in
  let inputs = Array.make n [] (* hardened entry nodes per origin *)
  and output = Array.make n (-1) (* hardened exit node per origin *)
  and actives_of = Array.make n [] (* active replicas, per origin *)
  and spares_of = Array.make n [] (* passive spares, per origin *) in
  let add ?(reexec_k = 0) ?(recovery = 0) ~name ~origin ~role ~proc ~bcet
      ~wcet ~critical_wcet ~passive () =
    let id = !next_id in
    incr next_id;
    nodes :=
      { id; name; origin; role; proc; bcet; wcet; critical_wcet; reexec_k;
        recovery; passive }
      :: !nodes;
    id in
  let scale proc c = Proc.scale_time (Arch.proc arch proc) c in
  for v = 0 to n - 1 do
    let task = Graph.task g v in
    let d = Plan.decision plan ~graph:gi ~task:v in
    let name = task.Task.name in
    let replica ~role ~passive proc =
      add ~name:(Format.asprintf "%s/%s" name
                   (match role with
                    | Primary -> "p"
                    | Replica i -> Format.asprintf "r%d" i
                    | Passive_spare i -> Format.asprintf "s%d" i
                    | Voter -> "vote"))
        ~origin:v ~role ~proc ~bcet:(scale proc task.Task.bcet)
        ~wcet:(scale proc task.Task.wcet)
        ~critical_wcet:(scale proc task.Task.wcet) ~passive () in
    match d.Plan.technique with
    | Technique.No_hardening ->
      let proc = d.Plan.primary_proc in
      let id =
        add ~name ~origin:v ~role:Primary ~proc
          ~bcet:(scale proc task.Task.bcet) ~wcet:(scale proc task.Task.wcet)
          ~critical_wcet:(scale proc task.Task.wcet) ~passive:false () in
      inputs.(v) <- [ id ];
      output.(v) <- id
    | Technique.Re_execution k ->
      let proc = d.Plan.primary_proc in
      let dt = scale proc task.Task.detection_overhead in
      let wcet = scale proc task.Task.wcet + dt in
      let bcet = scale proc task.Task.bcet + dt in
      let critical_wcet =
        Technique.wcet_after_re_execution ~wcet:(scale proc task.Task.wcet)
          ~detection:dt ~k in
      let id =
        add ~name ~origin:v ~role:Primary ~proc ~bcet ~wcet ~critical_wcet
          ~reexec_k:k ~recovery:wcet ~passive:false () in
      inputs.(v) <- [ id ];
      output.(v) <- id
    | Technique.Checkpointing (segments, k) ->
      let proc = d.Plan.primary_proc in
      let dt = scale proc task.Task.detection_overhead in
      let body = scale proc task.Task.wcet in
      let wcet = body + (segments * dt) in
      let bcet = scale proc task.Task.bcet + (segments * dt) in
      let recovery = Mcmap_util.Mathx.ceil_div body segments + dt in
      let critical_wcet = wcet + (k * recovery) in
      let id =
        add ~name ~origin:v ~role:Primary ~proc ~bcet ~wcet ~critical_wcet
          ~reexec_k:k ~recovery ~passive:false () in
      inputs.(v) <- [ id ];
      output.(v) <- id
    | Technique.Active_replication _ ->
      let procs = d.Plan.primary_proc :: Array.to_list d.Plan.replica_procs in
      let ids =
        List.mapi
          (fun i proc ->
            let role = if i = 0 then Primary else Replica i in
            replica ~role ~passive:false proc)
          procs in
      let vp = d.Plan.voter_proc in
      let ve = scale vp task.Task.voting_overhead in
      let voter =
        add ~name:(name ^ "/vote") ~origin:v ~role:Voter ~proc:vp ~bcet:ve
          ~wcet:ve ~critical_wcet:ve ~passive:false () in
      inputs.(v) <- ids;
      output.(v) <- voter
    | Technique.Passive_replication m ->
      let all = d.Plan.primary_proc :: Array.to_list d.Plan.replica_procs in
      let ids =
        List.mapi
          (fun i proc ->
            if i = 0 then replica ~role:Primary ~passive:false proc
            else if i = 1 then replica ~role:(Replica 1) ~passive:false proc
            else replica ~role:(Passive_spare (i - 1)) ~passive:true proc)
          all in
      assert (List.length all = m + 2);
      (match ids with
       | a0 :: a1 :: spares ->
         actives_of.(v) <- [ a0; a1 ];
         spares_of.(v) <- spares
       | [] | [ _ ] -> assert false);
      let vp = d.Plan.voter_proc in
      let ve = scale vp task.Task.voting_overhead in
      let voter =
        add ~name:(name ^ "/vote") ~origin:v ~role:Voter ~proc:vp ~bcet:ve
          ~wcet:ve ~critical_wcet:ve ~passive:false () in
      inputs.(v) <- ids;
      output.(v) <- voter
  done;
  let tasks =
    let arr = Array.of_list (List.rev !nodes) in
    Array.iteri (fun i node -> assert (node.id = i)) arr;
    arr in
  (* Result payload of a task: what its voter forwards downstream. *)
  let result_size v =
    List.fold_left
      (fun acc (_, c) -> max acc c.Mcmap_model.Channel.size)
      0 (Graph.succs g v) in
  let channels = ref [] in
  Array.iter
    (fun (c : Mcmap_model.Channel.t) ->
      List.iter
        (fun dst ->
          channels :=
            { src = output.(c.Mcmap_model.Channel.src); dst;
              size = c.Mcmap_model.Channel.size }
            :: !channels)
        inputs.(c.Mcmap_model.Channel.dst))
    g.Graph.channels;
  for v = 0 to n - 1 do
    (match inputs.(v) with
     | [ single ] when single = output.(v) -> ()
     | replicas ->
       List.iter
         (fun r ->
           channels :=
             { src = r; dst = output.(v); size = result_size v }
             :: !channels)
         replicas);
    (* Passive spares self-activate on a local mismatch of the active
       results, so they additionally depend on every active replica. *)
    List.iter
      (fun s ->
        List.iter
          (fun a ->
            channels :=
              { src = a; dst = s; size = result_size v } :: !channels)
          actives_of.(v))
      spares_of.(v)
  done;
  let channels_list = List.rev !channels in
  let n_nodes = Array.length tasks in
  let preds, succs = adjacency n_nodes channels_list in
  let topo = topological_order n_nodes preds succs in
  { source_index = gi; source = g; tasks;
    channels = Array.of_list channels_list; preds; succs; topo }

let validate arch apps plan =
  match Plan.errors arch apps plan with
  | [] -> ()
  | msg :: _ -> invalid_arg ("Happ.build: " ^ msg)

let build arch apps plan =
  validate arch apps plan;
  let graphs =
    Array.init (Appset.n_graphs apps) (build_graph arch apps plan) in
  { arch; apps; plan; graphs }

let hardened_graph = build_graph

let assemble arch apps plan graphs =
  validate arch apps plan;
  if Array.length graphs <> Appset.n_graphs apps then
    invalid_arg "Happ.assemble: one hardened graph per source graph";
  Array.iteri
    (fun gi hg ->
      if hg.source_index <> gi then
        invalid_arg "Happ.assemble: hardened graphs out of order")
    graphs;
  { arch; apps; plan; graphs }

let n_graphs t = Array.length t.graphs

let graph t i = t.graphs.(i)

let period hg = hg.source.Graph.period

let deadline hg = hg.source.Graph.deadline

let graph_droppable t gi = Graph.is_droppable (graph t gi).source

let graph_in_dropped_set t gi = t.plan.Plan.dropped.(gi)

let is_trigger ht = ht.reexec_k > 0 || ht.passive

let n_tasks t =
  Array.fold_left (fun acc hg -> acc + Array.length hg.tasks) 0 t.graphs

let sink_response_tasks hg =
  let image_of v =
    (* The hardened exit node of origin [v]: its voter if replicated,
       otherwise its sole (primary) node. *)
    let voter = ref (-1) and primary = ref (-1) in
    Array.iter
      (fun ht ->
        if ht.origin = v then
          match ht.role with
          | Voter -> voter := ht.id
          | Primary -> primary := ht.id
          | Replica _ | Passive_spare _ -> ())
      hg.tasks;
    if !voter >= 0 then !voter else !primary in
  List.map image_of (Graph.sinks hg.source)

type utilization_mode = Nominal | Critical

let utilization ?(mode = Nominal) t =
  let u = Array.make (Arch.n_procs t.arch) 0. in
  Array.iteri
    (fun gi hg ->
      let period = float_of_int (period hg) in
      let dropped = graph_in_dropped_set t gi in
      Array.iter
        (fun ht ->
          let demand =
            match mode with
            | Nominal -> if ht.passive then 0 else ht.wcet
            | Critical -> if dropped then 0 else ht.critical_wcet in
          u.(ht.proc) <- u.(ht.proc) +. (float_of_int demand /. period))
        hg.tasks)
    t.graphs;
  u

let pp ppf t =
  Format.fprintf ppf "@[<v>hardened application set:@,";
  Array.iter
    (fun hg ->
      Format.fprintf ppf "  %s: %d hardened tasks, %d channels@,"
        hg.source.Graph.name (Array.length hg.tasks)
        (Array.length hg.channels))
    t.graphs;
  Format.fprintf ppf "@]"
