module Sexp = Mcmap_util.Sexp
module Mathx = Mcmap_util.Mathx
module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Task = Mcmap_model.Task
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset
module Criticality = Mcmap_model.Criticality
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique
module Happ = Mcmap_hardening.Happ
module Fault_model = Mcmap_reliability.Fault_model
module Analysis = Mcmap_reliability.Analysis
module Ast = Mcmap_spec.Ast
module Spec = Mcmap_spec.Spec
module D = Diagnostic

type ctx = { file : string option; mutable acc : D.t list }

let emit ctx ?pos ?fixit ~code fmt =
  Format.kasprintf
    (fun message ->
      ctx.acc <- D.make ?file:ctx.file ?pos ?fixit ~code message :: ctx.acc)
    fmt

let has_errors ctx =
  List.exists (fun (d : D.t) -> d.D.severity = D.Error) ctx.acc

let loc_value (l : _ Ast.located) = l.Ast.v

let loc_pos (l : _ Ast.located) = l.Ast.pos

(* ------------------------------------------------------------------ *)
(* MC0xx: model well-formedness over the raw AST *)

let check_duplicates ctx ~code ~what names =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (n : string Ast.located) ->
      (match Hashtbl.find_opt seen n.Ast.v with
       | Some (first : Sexp.pos) ->
         emit ctx ~pos:n.Ast.pos ~code
           ~fixit:(Format.asprintf "rename one of the two occurrences")
           "duplicate %s %s (first declared at %a)" what n.Ast.v Sexp.pp_pos
           first
       | None -> Hashtbl.add seen n.Ast.v n.Ast.pos))
    names

let check_proc ctx (p : Ast.proc) =
  let name = loc_value p.Ast.p_name in
  let nonneg what (l : float Ast.located option) =
    match l with
    | Some { Ast.v; pos } when v < 0. ->
      emit ctx ~pos ~code:"MC016" "processor %s: negative %s %g" name what v
    | _ -> () in
  (match p.Ast.p_speed with
   | Some { Ast.v; pos } when v <= 0. ->
     emit ctx ~pos ~code:"MC016"
       "processor %s: speed must be positive, got %g" name v
   | _ -> ());
  nonneg "static power" p.Ast.p_static;
  nonneg "dynamic power" p.Ast.p_dynamic;
  nonneg "fault rate" p.Ast.p_fault_rate;
  match p.Ast.p_policy with
  | Some { Ast.v; pos }
    when v <> "preemptive" && v <> "non-preemptive" ->
    emit ctx ~pos ~code:"MC016"
      ~fixit:"use (policy preemptive) or (policy non-preemptive)"
      "processor %s: unknown policy %s" name v
  | _ -> ()

let check_bus ctx (b : Ast.bus) =
  (match b.Ast.i_bandwidth with
   | Some { Ast.v; pos } when v <= 0 ->
     emit ctx ~pos ~code:"MC016"
       "bus bandwidth must be positive, got %d" v
   | _ -> ());
  match b.Ast.i_latency with
  | Some { Ast.v; pos } when v < 0 ->
    emit ctx ~pos ~code:"MC016" "bus latency must be non-negative, got %d" v
  | _ -> ()

let check_noc ctx (n : Ast.noc) ~n_procs procs =
  let positive what (l : int Ast.located) =
    if l.Ast.v <= 0 then
      emit ctx ~pos:l.Ast.pos ~code:"MC019"
        ~fixit:(Format.asprintf "use a positive %s" what)
        "noc: %s must be positive, got %d" what l.Ast.v in
  positive "cols" n.Ast.n_cols;
  positive "rows" n.Ast.n_rows;
  (match n.Ast.n_link_bandwidth with
   | Some { Ast.v; pos } when v <= 0 ->
     emit ctx ~pos ~code:"MC019"
       "noc: link bandwidth must be positive, got %d" v
   | _ -> ());
  let nonneg what (l : int Ast.located option) =
    match l with
    | Some { Ast.v; pos } when v < 0 ->
      emit ctx ~pos ~code:"MC019" "noc: %s must be non-negative, got %d"
        what v
    | _ -> () in
  nonneg "hop latency" n.Ast.n_hop_latency;
  nonneg "router latency" n.Ast.n_router_latency;
  let cols = n.Ast.n_cols.Ast.v and rows = n.Ast.n_rows.Ast.v in
  if cols > 0 && rows > 0 && cols * rows < n_procs then begin
    emit ctx ~pos:n.Ast.n_pos ~code:"MC020"
      ~fixit:
        (Format.asprintf "grow the mesh to at least %d nodes, e.g. %dx%d"
           n_procs
           (min cols n_procs)
           (Mathx.ceil_div n_procs (min cols n_procs)))
      "noc: the %dx%d mesh has %d nodes for %d processors" cols rows
      (cols * rows) n_procs;
    (* Row-major placement: processor [i] sits at node
       [(i mod cols, i / cols)]; every id beyond the capacity maps to a
       coordinate outside the mesh. *)
    List.iteri
      (fun id (p : Ast.proc) ->
        if id >= cols * rows then
          let x, y = (id mod cols, id / cols) in
          emit ctx ~pos:p.Ast.p_name.Ast.pos ~code:"MC021"
            ~fixit:"grow the mesh or remove the processor"
            "processor %s maps to node (%d, %d), outside the %dx%d mesh"
            (loc_value p.Ast.p_name) x y cols rows)
      procs
  end

let check_arch ctx (a : Ast.arch) =
  if a.Ast.a_procs = [] then
    emit ctx ~pos:a.Ast.a_pos ~code:"MC015"
      ~fixit:"add at least one (processor (name ...)) entry"
      "architecture declares no processors";
  (match a.Ast.a_interconnect with
   | None -> ()
   | Some (Ast.I_bus b) -> check_bus ctx b
   | Some (Ast.I_noc n) ->
     check_noc ctx n ~n_procs:(List.length a.Ast.a_procs) a.Ast.a_procs);
  check_duplicates ctx ~code:"MC001" ~what:"processor name"
    (List.map (fun (p : Ast.proc) -> p.Ast.p_name) a.Ast.a_procs);
  List.iter (check_proc ctx) a.Ast.a_procs

let check_task ctx ~app (t : Ast.task) =
  let name = loc_value t.Ast.t_name in
  let wcet = t.Ast.t_wcet in
  if wcet.Ast.v <= 0 then
    emit ctx ~pos:wcet.Ast.pos ~code:"MC009"
      "task %s.%s: WCET must be positive, got %d" app name wcet.Ast.v;
  let nonneg what (l : int Ast.located option) =
    match l with
    | Some { Ast.v; pos } when v < 0 ->
      emit ctx ~pos ~code:"MC009" "task %s.%s: negative %s %d" app name what
        v
    | _ -> () in
  nonneg "BCET" t.Ast.t_bcet;
  nonneg "detection overhead" t.Ast.t_detect;
  nonneg "voting overhead" t.Ast.t_vote;
  match t.Ast.t_bcet with
  | Some { Ast.v = bcet; pos } when bcet >= 0 && bcet > wcet.Ast.v ->
    emit ctx ~pos ~code:"MC008"
      ~fixit:(Format.asprintf "lower bcet to at most %d" wcet.Ast.v)
      "task %s.%s: BCET %d exceeds WCET %d" app name bcet wcet.Ast.v
  | _ -> ()

(* Kahn over channels whose endpoints resolve; dangling endpoints are
   reported separately (MC004) and must not hide or fake a cycle. *)
let check_cycle ctx ~app ~pos tasks channels =
  let n = List.length tasks in
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i (t : Ast.task) -> Hashtbl.replace index t.Ast.t_name.Ast.v i)
    tasks;
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  List.iter
    (fun (c : Ast.channel) ->
      match
        ( Hashtbl.find_opt index c.Ast.c_from.Ast.v,
          Hashtbl.find_opt index c.Ast.c_to.Ast.v )
      with
      | Some src, Some dst when src <> dst ->
        succs.(src) <- dst :: succs.(src);
        indeg.(dst) <- indeg.(dst) + 1
      | _ -> ())
    channels;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr visited;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      succs.(v)
  done;
  if !visited < n then begin
    let cyclic =
      List.filteri (fun i _ -> indeg.(i) > 0) tasks
      |> List.map (fun (t : Ast.task) -> t.Ast.t_name.Ast.v) in
    emit ctx ~pos ~code:"MC007"
      "application %s: channels form a dependency cycle through %s" app
      (String.concat ", " cyclic)
  end

let check_app ctx (g : Ast.app) =
  let app = loc_value g.Ast.g_name in
  if g.Ast.g_period.Ast.v <= 0 then
    emit ctx ~pos:g.Ast.g_period.Ast.pos ~code:"MC010"
      "application %s: period must be positive, got %d" app
      g.Ast.g_period.Ast.v;
  (match g.Ast.g_deadline with
   | Some { Ast.v; pos } when v <= 0 ->
     emit ctx ~pos ~code:"MC011"
       "application %s: deadline must be positive, got %d" app v
   | _ -> ());
  (match g.Ast.g_deadline with
   | Some { Ast.v = d; pos }
     when d > 0 && g.Ast.g_period.Ast.v > 0 && d > g.Ast.g_period.Ast.v ->
     emit ctx ~pos ~code:"MC012"
       "application %s: deadline %d exceeds period %d — successive \
        instances overlap"
       app d g.Ast.g_period.Ast.v
   | _ -> ());
  (match g.Ast.g_critical, g.Ast.g_droppable with
   | Some _, Some { Ast.pos; _ } ->
     emit ctx ~pos ~code:"MC017"
       ~fixit:"keep exactly one of the two attributes"
       "application %s declares both (critical ...) and (droppable ...)"
       app
   | None, None ->
     emit ctx ~pos:g.Ast.g_pos ~code:"MC017"
       ~fixit:"add (critical <rate>) or (droppable <service-value>)"
       "application %s declares neither (critical ...) nor (droppable \
        ...)"
       app
   | Some { Ast.v; pos }, None when not (v > 0. && v <= 1.) ->
     emit ctx ~pos ~code:"MC017"
       "application %s: failure-rate bound must lie in (0, 1], got %g" app
       v
   | None, Some { Ast.v; pos } when v < 0. ->
     emit ctx ~pos ~code:"MC017"
       "application %s: service value must be non-negative, got %g" app v
   | _ -> ());
  if g.Ast.g_tasks = [] then
    emit ctx ~pos:g.Ast.g_pos ~code:"MC014"
      "application %s declares no tasks" app;
  check_duplicates ctx ~code:"MC003"
    ~what:(Format.asprintf "task name in application %s" app)
    (List.map (fun (t : Ast.task) -> t.Ast.t_name) g.Ast.g_tasks);
  List.iter (check_task ctx ~app) g.Ast.g_tasks;
  let task_names = Hashtbl.create 16 in
  List.iter
    (fun (t : Ast.task) -> Hashtbl.replace task_names t.Ast.t_name.Ast.v ())
    g.Ast.g_tasks;
  let seen_pairs = Hashtbl.create 16 in
  List.iter
    (fun (c : Ast.channel) ->
      let endpoint (e : string Ast.located) =
        if not (Hashtbl.mem task_names e.Ast.v) then
          emit ctx ~pos:e.Ast.pos ~code:"MC004"
            "application %s: channel endpoint %s is not a task of this \
             application"
            app e.Ast.v in
      endpoint c.Ast.c_from;
      endpoint c.Ast.c_to;
      if c.Ast.c_from.Ast.v = c.Ast.c_to.Ast.v then
        emit ctx ~pos:c.Ast.c_pos ~code:"MC005"
          "application %s: channel from %s to itself" app c.Ast.c_from.Ast.v;
      (match c.Ast.c_size with
       | Some { Ast.v; pos } when v < 0 ->
         emit ctx ~pos ~code:"MC018"
           "application %s: channel %s -> %s has negative size %d" app
           c.Ast.c_from.Ast.v c.Ast.c_to.Ast.v v
       | _ -> ());
      let pair = (c.Ast.c_from.Ast.v, c.Ast.c_to.Ast.v) in
      (match Hashtbl.find_opt seen_pairs pair with
       | Some (first : Sexp.pos) ->
         emit ctx ~pos:c.Ast.c_pos ~code:"MC006"
           ~fixit:"merge the payloads into a single channel"
           "application %s: duplicate channel %s -> %s (first declared at \
            %a)"
           app c.Ast.c_from.Ast.v c.Ast.c_to.Ast.v Sexp.pp_pos first
       | None -> Hashtbl.add seen_pairs pair c.Ast.c_pos))
    g.Ast.g_channels;
  check_cycle ctx ~app ~pos:g.Ast.g_pos g.Ast.g_tasks g.Ast.g_channels

(* The hyperperiod is the LCM of the periods; wildly co-prime periods
   make it overflow any practical simulation horizon. *)
let hyperperiod_limit = 1_000_000_000_000

let check_hyperperiod ctx (apps : Ast.app list) =
  let rec go acc = function
    | [] -> ()
    | (g : Ast.app) :: rest ->
      let p = g.Ast.g_period.Ast.v in
      if p <= 0 then go acc rest
      else begin
        let gcd = Mathx.gcd acc p in
        let factor = p / gcd in
        if acc > hyperperiod_limit / factor then
          emit ctx ~pos:g.Ast.g_period.Ast.pos ~code:"MC013"
            ~fixit:"harmonise the periods (make them divide each other)"
            "hyperperiod exceeds %d after including period %d of \
             application %s"
            hyperperiod_limit p (loc_value g.Ast.g_name)
        else go (acc * factor) rest
      end in
  go 1 apps

let check_system_ast ctx (s : Ast.system) =
  check_arch ctx s.Ast.sys_arch;
  check_duplicates ctx ~code:"MC002" ~what:"application name"
    (List.map (fun (g : Ast.app) -> g.Ast.g_name) s.Ast.sys_apps);
  List.iter (check_app ctx) s.Ast.sys_apps;
  check_hyperperiod ctx s.Ast.sys_apps

(* ------------------------------------------------------------------ *)
(* MC2xx: schedulability necessary conditions on the built system *)

(* Position index: app name -> AST position, (app, task) -> wcet pos. *)
type pos_index = {
  app_pos : (string, Sexp.pos) Hashtbl.t;
  wcet_pos : (string * string, Sexp.pos) Hashtbl.t;
}

let index_positions (s : Ast.system) =
  let app_pos = Hashtbl.create 8 in
  let wcet_pos = Hashtbl.create 32 in
  List.iter
    (fun (g : Ast.app) ->
      let app = loc_value g.Ast.g_name in
      Hashtbl.replace app_pos app g.Ast.g_pos;
      List.iter
        (fun (t : Ast.task) ->
          Hashtbl.replace wcet_pos
            (app, loc_value t.Ast.t_name)
            t.Ast.t_wcet.Ast.pos)
        g.Ast.g_tasks)
    s.Ast.sys_apps;
  { app_pos; wcet_pos }

(* The fastest execution any mapping can give the task. *)
let min_scaled arch c =
  let best = ref max_int in
  for p = 0 to Arch.n_procs arch - 1 do
    best := min !best (Proc.scale_time (Arch.proc arch p) c)
  done;
  !best

let check_wcet_vs_deadline ctx idx (sys : Spec.system) =
  Array.iter
    (fun (g : Graph.t) ->
      Array.iter
        (fun (t : Task.t) ->
          let fastest = min_scaled sys.Spec.arch t.Task.wcet in
          if fastest > g.Graph.deadline then
            emit ctx
              ?pos:(Hashtbl.find_opt idx.wcet_pos (g.Graph.name, t.Task.name))
              ~code:"MC202"
              "task %s.%s: WCET %d exceeds the deadline %d on every \
               processor (fastest scaled WCET %d)"
              g.Graph.name t.Task.name t.Task.wcet g.Graph.deadline fastest)
        g.Graph.tasks)
    sys.Spec.apps.Appset.graphs

let check_critical_utilization ctx (sys : Spec.system) =
  let arch = sys.Spec.arch in
  let total =
    Array.fold_left
      (fun acc (g : Graph.t) ->
        if Graph.is_droppable g then acc
        else
          acc
          +. Array.fold_left
               (fun acc (t : Task.t) ->
                 acc +. float_of_int (min_scaled arch t.Task.wcet))
               0. g.Graph.tasks
             /. float_of_int g.Graph.period)
      0. sys.Spec.apps.Appset.graphs in
  let capacity = float_of_int (Arch.n_procs arch) in
  if total > capacity +. 1e-9 then
    emit ctx ~code:"MC203"
      "critical applications need utilisation %.3f even at the fastest \
       speeds, but the architecture has only %d processors — no mapping \
       can be schedulable"
      total (Arch.n_procs arch)

let check_critical_path ctx idx (sys : Spec.system) =
  let arch = sys.Spec.arch in
  Array.iter
    (fun (g : Graph.t) ->
      let n = Graph.n_tasks g in
      if n > 0 then begin
        let finish = Array.make n 0 in
        Array.iter
          (fun v ->
            let start =
              List.fold_left
                (fun acc (u, _) -> max acc finish.(u))
                0 (Graph.preds g v) in
            finish.(v) <-
              start + min_scaled arch (Graph.task g v).Task.wcet)
          (Graph.topological_order g);
        let path = Array.fold_left max 0 finish in
        if path > g.Graph.deadline then
          emit ctx
            ?pos:(Hashtbl.find_opt idx.app_pos g.Graph.name)
            ~code:"MC204"
            "application %s: the longest dependency chain takes %d even \
             with every task on the fastest processor and free \
             communication, exceeding the deadline %d"
            g.Graph.name path g.Graph.deadline
      end)
    sys.Spec.apps.Appset.graphs

(* ------------------------------------------------------------------ *)
(* MC301: the reliability target is unreachable by any plan *)

(* Lower bound on the failure probability any supported hardening
   technique can achieve for one task instance: every technique is
   tried at its maximal strength that still fits the deadline on its
   best processor(s). If even this optimistic floor misses f_t, no plan
   can satisfy the constraint. *)
let reexec_cap = 64

let task_failure_floor arch ~deadline (t : Task.t) =
  let n = Arch.n_procs arch in
  let best = ref infinity in
  let consider p = if p < !best then best := p in
  for pi = 0 to n - 1 do
    let proc = Arch.proc arch pi in
    let scale c = Proc.scale_time proc c in
    let wcet = scale t.Task.wcet in
    let dt = scale t.Task.detection_overhead in
    (* no hardening *)
    consider (Proc.fault_probability proc wcet);
    (* re-execution at the largest k whose Eq. (1) bound fits *)
    let per_attempt = Proc.fault_probability proc (wcet + dt) in
    let k = ref 0 in
    while
      !k < reexec_cap
      && (wcet + dt) * (!k + 2) <= deadline
    do
      incr k
    done;
    if !k >= 1 then
      consider (Fault_model.re_execution_failure ~per_attempt ~k:!k);
    (* checkpointing: n segments shorten each recovery; try a few
       segment counts at the largest fitting k *)
    List.iter
      (fun segments ->
        let k = ref 0 in
        while
          !k < reexec_cap
          && scale
               (Technique.wcet_after_checkpointing ~wcet:t.Task.wcet
                  ~detection:t.Task.detection_overhead ~segments
                  ~k:(!k + 1))
             <= deadline
        do
          incr k
        done;
        if !k >= 1 then begin
          let duration = wcet + (segments * dt) in
          consider
            (Fault_model.poisson_more_than ~rate:proc.Proc.fault_rate
               ~duration ~k:!k)
        end)
      [ 1; 2; 4; 8; 16 ]
  done;
  (* active replication on the most reliable processors; the replicas
     run in parallel, so the deadline constrains each replica like an
     unhardened run (plus voting), not their sum *)
  let per_proc =
    Array.init n (fun pi ->
        let proc = Arch.proc arch pi in
        ( Proc.fault_probability proc (Proc.scale_time proc t.Task.wcet),
          Proc.scale_time proc (t.Task.wcet + t.Task.voting_overhead) )) in
  Array.sort compare per_proc;
  for replicas = 2 to min n 7 do
    let chosen = Array.sub per_proc 0 replicas in
    if Array.for_all (fun (_, d) -> d <= deadline) chosen then
      consider (Fault_model.majority_failure (Array.map fst chosen))
  done;
  !best

let check_reliability_floor ctx idx (sys : Spec.system) =
  let arch = sys.Spec.arch in
  Array.iter
    (fun (g : Graph.t) ->
      match Criticality.max_failure_rate g.Graph.criticality with
      | None -> ()
      | Some bound ->
        let log_survive =
          Array.fold_left
            (fun acc t ->
              acc
              +. log1p
                   (-.task_failure_floor arch ~deadline:g.Graph.deadline t))
            0. g.Graph.tasks in
        let floor_rate =
          -.expm1 log_survive /. float_of_int g.Graph.period in
        if floor_rate > bound *. (1. +. 1e-9) then
          emit ctx
            ?pos:(Hashtbl.find_opt idx.app_pos g.Graph.name)
            ~code:"MC301"
            ~fixit:
              (Format.asprintf
                 "relax the bound to at least %.3e, lower the processor \
                  fault rates, or extend the deadline"
                 floor_rate)
            "application %s: failure-rate bound %.3e is unreachable — \
             even maximal hardening on the most reliable processors \
             achieves no better than %.3e"
            g.Graph.name bound floor_rate)
    sys.Spec.apps.Appset.graphs

let check_system_model ctx (ast : Ast.system) (sys : Spec.system) =
  let idx = index_positions ast in
  check_wcet_vs_deadline ctx idx sys;
  check_critical_utilization ctx sys;
  check_critical_path ctx idx sys;
  check_reliability_floor ctx idx sys

(* ------------------------------------------------------------------ *)
(* MC1xx: plan consistency over the raw AST *)

let arch_proc_names (sys : Spec.system) =
  let names = Hashtbl.create 8 in
  Array.iter
    (fun (p : Proc.t) -> Hashtbl.replace names p.Proc.name ())
    sys.Spec.arch.Arch.procs;
  names

let check_harden ctx (h : Ast.harden Ast.located) =
  let bad pos what v lo =
    emit ctx ~pos ~code:"MC110" "harden: %s must be at least %d, got %d"
      what lo v in
  match h.Ast.v with
  | Ast.Reexec k -> if k.Ast.v < 1 then bad (loc_pos k) "reexec k" k.Ast.v 1
  | Ast.Checkpoint (n, k) ->
    if n.Ast.v < 1 then bad (loc_pos n) "checkpoint segments" n.Ast.v 1;
    if k.Ast.v < 1 then bad (loc_pos k) "checkpoint k" k.Ast.v 1
  | Ast.Active n ->
    if n.Ast.v < 2 then bad (loc_pos n) "active replica count" n.Ast.v 2
  | Ast.Passive m ->
    if m.Ast.v < 1 then bad (loc_pos m) "passive spare count" m.Ast.v 1

let replica_count_of (h : Ast.harden Ast.located option) =
  match h with
  | None | Some { Ast.v = Ast.Reexec _ | Ast.Checkpoint _; _ } -> 1
  | Some { Ast.v = Ast.Active n; _ } -> max n.Ast.v 2
  | Some { Ast.v = Ast.Passive m; _ } -> 2 + max m.Ast.v 1

let check_plan_ast ctx (sys : Spec.system) (p : Ast.plan) =
  let apps = sys.Spec.apps in
  let proc_names = arch_proc_names sys in
  let graph_of (name : string Ast.located) =
    match Appset.graph_index apps name.Ast.v with
    | gi -> Some gi
    | exception Not_found ->
      emit ctx ~pos:name.Ast.pos ~code:"MC101" "unknown application %s"
        name.Ast.v;
      None in
  (* dropped set *)
  (match p.Ast.pl_dropped with
   | None -> ()
   | Some { Ast.v = names; _ } ->
     let seen = Hashtbl.create 8 in
     List.iter
       (fun (name : string Ast.located) ->
         (match graph_of name with
          | Some gi ->
            if not (Graph.is_droppable (Appset.graph apps gi)) then
              emit ctx ~pos:name.Ast.pos ~code:"MC108"
                "application %s is critical and cannot be dropped"
                name.Ast.v
          | None -> ());
         (match Hashtbl.find_opt seen name.Ast.v with
          | Some (first : Sexp.pos) ->
            emit ctx ~pos:name.Ast.pos ~code:"MC109"
              "application %s already dropped at %a" name.Ast.v Sexp.pp_pos
              first
          | None -> Hashtbl.add seen name.Ast.v name.Ast.pos))
       names);
  (* binds *)
  let bound = Hashtbl.create 32 in
  List.iter
    (fun (b : Ast.bind) ->
      let check_proc (name : string Ast.located) =
        if not (Hashtbl.mem proc_names name.Ast.v) then
          emit ctx ~pos:name.Ast.pos ~code:"MC103" "unknown processor %s"
            name.Ast.v in
      check_proc b.Ast.b_proc;
      (match b.Ast.b_replicas with
       | Some { Ast.v = names; _ } -> List.iter check_proc names
       | None -> ());
      (match b.Ast.b_voter with
       | Some name -> check_proc name
       | None -> ());
      Option.iter (check_harden ctx) b.Ast.b_harden;
      (* replica arity and collisions *)
      let replicas =
        match b.Ast.b_replicas with
        | None -> []
        | Some { Ast.v = names; _ } -> names in
      let expected = replica_count_of b.Ast.b_harden - 1 in
      if List.length replicas <> expected then
        emit ctx ~pos:b.Ast.b_pos ~code:"MC106"
          "bind %s.%s: technique needs %d replica processor%s, got %d"
          b.Ast.b_app.Ast.v b.Ast.b_task.Ast.v expected
          (if expected = 1 then "" else "s")
          (List.length replicas)
      else if expected > 0 then begin
        let seen = Hashtbl.create 4 in
        Hashtbl.replace seen b.Ast.b_proc.Ast.v ();
        List.iter
          (fun (r : string Ast.located) ->
            if Hashtbl.mem seen r.Ast.v then
              emit ctx ~pos:r.Ast.pos ~code:"MC107"
                "bind %s.%s: replicas share processor %s — replication \
                 only adds reliability on distinct processors"
                b.Ast.b_app.Ast.v b.Ast.b_task.Ast.v r.Ast.v
            else Hashtbl.replace seen r.Ast.v ())
          replicas
      end;
      (* name resolution and double binding *)
      match graph_of b.Ast.b_app with
      | None -> ()
      | Some gi ->
        let g = Appset.graph apps gi in
        let ti =
          let n = Graph.n_tasks g in
          let rec find i =
            if i >= n then None
            else if (Graph.task g i).Task.name = b.Ast.b_task.Ast.v then
              Some i
            else find (i + 1) in
          find 0 in
        (match ti with
         | None ->
           emit ctx ~pos:b.Ast.b_task.Ast.pos ~code:"MC102"
             "unknown task %s in application %s" b.Ast.b_task.Ast.v
             g.Graph.name
         | Some ti ->
           (match Hashtbl.find_opt bound (gi, ti) with
            | Some (first : Sexp.pos) ->
              emit ctx ~pos:b.Ast.b_pos ~code:"MC104"
                "task %s.%s already bound at %a" g.Graph.name
                b.Ast.b_task.Ast.v Sexp.pp_pos first
            | None -> Hashtbl.add bound (gi, ti) b.Ast.b_pos)))
    p.Ast.pl_binds;
  (* every task bound *)
  let missing = ref [] in
  for gi = Appset.n_graphs apps - 1 downto 0 do
    let g = Appset.graph apps gi in
    for ti = Graph.n_tasks g - 1 downto 0 do
      if not (Hashtbl.mem bound (gi, ti)) then
        missing :=
          Format.asprintf "%s.%s" g.Graph.name (Graph.task g ti).Task.name
          :: !missing
    done
  done;
  if !missing <> [] then
    emit ctx ~pos:p.Ast.pl_pos ~code:"MC105"
      ~fixit:"add a (bind ...) entry per missing task"
      "unbound task%s: %s"
      (if List.length !missing = 1 then "" else "s")
      (String.concat ", " !missing)

(* ------------------------------------------------------------------ *)
(* MC2xx/MC3xx on a built plan *)

let check_plan_model ctx ~pos (sys : Spec.system) (plan : Plan.t) =
  let arch = sys.Spec.arch and apps = sys.Spec.apps in
  if Plan.errors arch apps plan = [] then begin
    let happ = Happ.build arch apps plan in
    let report mode label =
      Array.iteri
        (fun pi u ->
          if u > 1. +. 1e-9 then
            emit ctx ~pos ~code:"MC201"
              "processor %s: %s utilisation %.3f exceeds 1 — no schedule \
               exists"
              (Arch.proc arch pi).Proc.name label u)
        (Happ.utilization ~mode happ) in
    report Happ.Nominal "nominal";
    report Happ.Critical "critical-state";
    List.iter
      (fun (v : Analysis.violation) ->
        let g = Appset.graph apps v.Analysis.graph in
        emit ctx ~pos ~code:"MC302"
          ~fixit:"strengthen the hardening of this application's tasks"
          "application %s: the plan achieves failure rate %.3e, above the \
           bound %.3e"
          g.Graph.name v.Analysis.failure_rate v.Analysis.bound)
      (Analysis.violations arch apps plan)
  end

(* ------------------------------------------------------------------ *)
(* Drivers *)

let lint_system ?file input =
  let ctx = { file; acc = [] } in
  let sys =
    match Spec.parse_system input with
    | Error e ->
      emit ctx ?pos:e.Ast.epos ~code:"MC000" "%s" e.Ast.msg;
      None
    | Ok ast ->
      check_system_ast ctx ast;
      (match Spec.build_system ast with
       | Ok sys ->
         if not (has_errors ctx) then check_system_model ctx ast sys;
         Some sys
       | Error e ->
         (* every build rejection should have a dedicated check above;
            report anything that slips through rather than hide it *)
         if not (has_errors ctx) then
           emit ctx ?pos:e.Ast.epos ~code:"MC000" "%s" e.Ast.msg;
         None) in
  (D.sort ctx.acc, sys)

let lint_plan ?file (sys : Spec.system) input =
  let ctx = { file; acc = [] } in
  (match Spec.parse_plan input with
   | Error e -> emit ctx ?pos:e.Ast.epos ~code:"MC100" "%s" e.Ast.msg
   | Ok ast ->
     check_plan_ast ctx sys ast;
     if not (has_errors ctx) then (
       match Spec.build_plan sys ast with
       | Ok plan -> check_plan_model ctx ~pos:ast.Ast.pl_pos sys plan
       | Error e -> emit ctx ?pos:e.Ast.epos ~code:"MC100" "%s" e.Ast.msg));
  D.sort ctx.acc

let lint_pair ?system_file ?plan_file system_text plan_text =
  let sys_ds, sys = lint_system ?file:system_file system_text in
  match sys with
  | None -> sys_ds
  | Some sys -> sys_ds @ lint_plan ?file:plan_file sys plan_text

let lint_files ~system ?plan () =
  let ( let* ) = Result.bind in
  let* system_text = Spec.read_file system in
  match plan with
  | None -> Ok (fst (lint_system ~file:system system_text))
  | Some plan_path ->
    let* plan_text = Spec.read_file plan_path in
    Ok
      (lint_pair ~system_file:system ~plan_file:plan_path system_text
         plan_text)
