(** Structured lint diagnostics: stable codes, severities, source
    spans, fix-it suggestions, and the renderers behind
    [mcmap lint --format human|json|sexp].

    Code blocks: [MC0xx] model well-formedness, [MC1xx] plan
    consistency, [MC2xx] schedulability necessary conditions, [MC3xx]
    reliability feasibility. Codes are stable across releases: new
    checks take new codes, retired codes are not reused. *)

type severity = Error | Warning | Hint

val severity_to_string : severity -> string

val severity_of_string : string -> severity option

val compare_severity : severity -> severity -> int
(** Orders by rank: [Hint < Warning < Error]. *)

type t = {
  code : string;  (** e.g. ["MC004"] *)
  severity : severity;
  file : string option;
  pos : Mcmap_util.Sexp.pos option;
  message : string;
  fixit : string option;  (** a suggested remedy, when one is obvious *)
}

(** {1 Registry} *)

type info = {
  i_code : string;
  i_severity : severity;  (** default severity of the check *)
  i_title : string;  (** short kebab-case name, e.g. [dependency-cycle] *)
  i_doc : string;  (** one-paragraph description *)
}

val registry : info list
(** Every diagnostic the linter can produce, in code order. *)

val info : string -> info option

val default_severity : string -> severity
(** @raise Invalid_argument on a code not in the registry. *)

val make :
  ?file:string ->
  ?pos:Mcmap_util.Sexp.pos ->
  ?fixit:string ->
  ?severity:severity ->
  code:string ->
  string ->
  t
(** Build a diagnostic; the severity defaults to the registry's default
    for the code.
    @raise Invalid_argument on a code not in the registry. *)

(** {1 Deny levels and exit logic} *)

val effective_severity : ?deny:severity -> t -> severity
(** [--deny warning] promotes warnings (and above) to errors,
    [--deny hint] promotes everything. *)

val error_count : ?deny:severity -> t list -> int
(** Diagnostics whose effective severity is [Error] — the CLI exits
    non-zero iff this is positive. *)

val sort : t list -> t list
(** Stable order: by file, then position (unpositioned last), then
    code. *)

(** {1 Renderers} *)

val pp_human : Format.formatter -> t -> unit
(** [file:line:col: severity[CODE]: message], with an indented
    [fix:] line when a suggestion exists. *)

val render_human : t list -> string
(** One line per diagnostic plus a count summary line. *)

val to_json : t -> Mcmap_util.Json.t

val render_json : t list -> string
(** A JSON array of diagnostic objects. *)

val render_sexp : t list -> string
(** [(diagnostics (diagnostic (code ...) ...) ...)]; free text is
    emitted word-per-atom so the output re-parses with
    [Mcmap_util.Sexp.parse]. *)
