(** The [mcmap lint] static semantic analyzer.

    Runs ~30 checks over system and plan files, each producing a
    {!Diagnostic.t} with a stable code:

    - [MC0xx] — model well-formedness, checked on the raw located AST
      so a single run reports every problem with its source line:
      duplicate names, dangling channel endpoints, self-loops,
      dependency cycles, out-of-domain attributes, hyperperiod blowup.
    - [MC1xx] — plan consistency against the system: unknown names,
      double or missing bindings, replica arity and collisions,
      dropped-set abuse, out-of-domain technique parameters.
    - [MC2xx] — necessary schedulability conditions that doom a design
      regardless of (or under) the plan: per-processor overload,
      WCET beyond the deadline on every processor, critical-path
      infeasibility, aggregate critical overload.
    - [MC3xx] — reliability feasibility: an [f_t] bound no supported
      hardening technique can reach within the deadline (system), and
      closed-form constraint violations (plan).

    Model-level checks ([MC2xx]/[MC3xx]) only run when the file has no
    error-severity structural diagnostics — a broken file cannot be
    built into a model. *)

val lint_system :
  ?file:string -> string -> Diagnostic.t list * Mcmap_spec.Spec.system option
(** Lint a system description. Also returns the built system when
    construction succeeded, so callers can go on to lint a plan or run
    an analysis. Diagnostics are sorted by position. *)

val lint_plan :
  ?file:string -> Mcmap_spec.Spec.system -> string -> Diagnostic.t list
(** Lint a plan against a built system. *)

val lint_pair :
  ?system_file:string ->
  ?plan_file:string ->
  string ->
  string ->
  Diagnostic.t list
(** Lint a system and a plan; the plan half is skipped when the system
    cannot be built. *)

val lint_files :
  system:string -> ?plan:string -> unit -> (Diagnostic.t list, string) result
(** Read and lint files. [Error] only for I/O failures — unreadable
    content is a diagnostic, not an error. *)
