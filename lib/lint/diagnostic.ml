module Sexp = Mcmap_util.Sexp
module Json = Mcmap_util.Json

type severity = Error | Warning | Hint

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "hint" -> Some Hint
  | _ -> None

(* Error outranks Warning outranks Hint. *)
let severity_rank = function Error -> 2 | Warning -> 1 | Hint -> 0

let compare_severity a b = compare (severity_rank a) (severity_rank b)

type t = {
  code : string;
  severity : severity;
  file : string option;
  pos : Sexp.pos option;
  message : string;
  fixit : string option;
}

(* ------------------------------------------------------------------ *)
(* Registry *)

type info = {
  i_code : string;
  i_severity : severity;
  i_title : string;
  i_doc : string;
}

let reg code sev title doc =
  { i_code = code; i_severity = sev; i_title = title; i_doc = doc }

let registry =
  [ (* MC0xx — spec syntax and model well-formedness *)
    reg "MC000" Error "spec-syntax"
      "The system file is not syntactically valid: malformed \
       s-expression, unknown or repeated field, wrong arity, or a \
       malformed number.";
    reg "MC001" Error "duplicate-processor-name"
      "Two processors share a name; plans resolve processors by name.";
    reg "MC002" Error "duplicate-application-name"
      "Two applications share a name; plans resolve applications by \
       name.";
    reg "MC003" Error "duplicate-task-name"
      "Two tasks of one application share a name; channels and plans \
       resolve tasks by name.";
    reg "MC004" Error "unknown-channel-endpoint"
      "A channel endpoint names a task that does not exist in the \
       application.";
    reg "MC005" Error "channel-self-loop"
      "A channel connects a task to itself.";
    reg "MC006" Error "duplicate-channel"
      "Two channels connect the same pair of tasks; the model keeps one \
       dependency per pair, so merge the payloads into one channel.";
    reg "MC007" Error "dependency-cycle"
      "The channels of an application form a cycle; task graphs must \
       be acyclic.";
    reg "MC008" Error "bcet-exceeds-wcet"
      "A task's best-case execution time exceeds its worst-case \
       execution time.";
    reg "MC009" Error "invalid-execution-time"
      "A task has a non-positive WCET or a negative BCET/overhead.";
    reg "MC010" Error "invalid-period"
      "An application's period is not positive.";
    reg "MC011" Error "invalid-deadline"
      "An application's deadline is not positive.";
    reg "MC012" Hint "deadline-exceeds-period"
      "The relative deadline is larger than the period, so successive \
       instances overlap; supported, but worth double-checking.";
    reg "MC013" Warning "hyperperiod-overflow"
      "The least common multiple of the application periods is \
       astronomically large; simulation and analysis over a \
       hyperperiod will be impractical. Consider harmonising periods.";
    reg "MC014" Error "empty-application"
      "An application declares no tasks.";
    reg "MC015" Error "empty-architecture"
      "The architecture declares no processors.";
    reg "MC016" Error "invalid-processor-attribute"
      "A processor (or the bus) has an attribute outside its domain: \
       non-positive speed or bandwidth, negative power, fault rate or \
       latency, or an unknown scheduling policy.";
    reg "MC017" Error "invalid-criticality"
      "An application needs exactly one of (critical <rate>) with rate \
       in (0, 1] or (droppable <sv>) with a non-negative service \
       value.";
    reg "MC018" Error "invalid-channel-size"
      "A channel has a negative payload size.";
    reg "MC019" Error "invalid-interconnect-attribute"
      "A NoC interconnect has an attribute outside its domain: \
       non-positive mesh dimensions or link bandwidth, or a negative \
       hop or router latency.";
    reg "MC020" Error "mesh-capacity-exceeded"
      "The NoC mesh declares fewer nodes (cols x rows) than the \
       architecture has processors, so not every processor can be \
       placed on the mesh.";
    reg "MC021" Error "unreachable-processor-coordinates"
      "A processor's row-major mesh coordinate (id mod cols, id / \
       cols) lies outside the declared mesh, so no XY route can reach \
       it. Reported per offending processor, alongside MC020 on the \
       mesh itself.";
    (* MC1xx — plan consistency *)
    reg "MC100" Error "plan-syntax"
      "The plan file is not syntactically valid: malformed \
       s-expression, unknown or repeated field, wrong arity, or a \
       malformed number.";
    reg "MC101" Error "unknown-application"
      "A bind or dropped entry names an application that does not \
       exist in the system.";
    reg "MC102" Error "unknown-task"
      "A bind names a task that does not exist in its application.";
    reg "MC103" Error "unknown-processor"
      "A bind names a processor (primary, replica, or voter) that does \
       not exist in the architecture.";
    reg "MC104" Error "duplicate-binding"
      "A task is bound more than once.";
    reg "MC105" Error "unbound-task"
      "A task of the system has no bind entry; a plan must place every \
       task.";
    reg "MC106" Error "replica-arity"
      "The number of replica processors does not match the hardening \
       technique (active n needs n-1 replicas, passive m needs m+1, \
       re-execution and checkpointing need none).";
    reg "MC107" Error "replica-collision"
      "Replicas of one task share a processor; replication only adds \
       reliability on pairwise distinct processors.";
    reg "MC108" Error "dropped-not-droppable"
      "The dropped set contains a critical (non-droppable) \
       application.";
    reg "MC109" Warning "duplicate-dropped"
      "An application is listed twice in the dropped set.";
    reg "MC110" Error "invalid-technique"
      "A hardening technique has out-of-domain parameters: reexec \
       needs k >= 1, checkpoint needs n >= 1 and k >= 1, active needs \
       n >= 2, passive needs m >= 1.";
    (* MC2xx — schedulability necessary conditions *)
    reg "MC201" Error "processor-overload"
      "A processor's utilisation under the plan exceeds 1; no \
       schedule exists. Reported for both the nominal (fault-free) and \
       the certified critical (Eq. (1)-inflated, dropped set excluded) \
       utilisation.";
    reg "MC202" Error "task-wcet-exceeds-deadline"
      "A task's WCET exceeds its application's deadline on every \
       processor, so no mapping can meet the deadline even without \
       hardening.";
    reg "MC203" Warning "critical-utilization-overload"
      "The total utilisation of critical (non-droppable) applications \
       exceeds the processor count even at the fastest speeds; no \
       mapping can be schedulable, even after dropping every droppable \
       application.";
    reg "MC204" Error "critical-path-exceeds-deadline"
      "The longest dependency chain of an application exceeds its \
       deadline even with every task on the fastest processor and free \
       communication; no mapping can meet the deadline.";
    (* MC3xx — reliability feasibility *)
    reg "MC301" Error "unreachable-reliability-target"
      "A critical application's failure-rate bound f_t is below what \
       any supported hardening technique can achieve within the \
       deadline, even at maximal strength on the most reliable \
       processors; no plan can satisfy the constraint.";
    reg "MC302" Warning "reliability-target-violated"
      "The plan's closed-form failure rate for a critical application \
       exceeds its bound f_t; the plan is not reliability-feasible." ]

let info code =
  List.find_opt (fun i -> i.i_code = code) registry

let default_severity code =
  match info code with
  | Some i -> i.i_severity
  | None -> invalid_arg ("Diagnostic.default_severity: unknown code " ^ code)

let make ?file ?pos ?fixit ?severity ~code message =
  let severity =
    match severity with Some s -> s | None -> default_severity code in
  { code; severity; file; pos; message; fixit }

(* ------------------------------------------------------------------ *)
(* Deny levels and exit logic *)

(* [--deny warning] treats warnings (and everything above) as errors;
   [--deny hint] also promotes hints. *)
let effective_severity ?deny d =
  match deny with
  | Some level when severity_rank d.severity >= severity_rank level -> Error
  | _ -> d.severity

let error_count ?deny ds =
  List.length
    (List.filter (fun d -> effective_severity ?deny d = Error) ds)

let sort ds =
  let key d =
    ( Option.value ~default:"" d.file,
      (match d.pos with
       | Some p -> (p.Sexp.line, p.Sexp.col)
       | None -> (max_int, max_int)),
      d.code ) in
  List.stable_sort (fun a b -> compare (key a) (key b)) ds

(* ------------------------------------------------------------------ *)
(* Renderers *)

let pp_human ppf d =
  let loc =
    match d.file, d.pos with
    | Some f, Some p -> Format.asprintf "%s:%a: " f Sexp.pp_pos p
    | Some f, None -> f ^ ": "
    | None, Some p -> Format.asprintf "%a: " Sexp.pp_pos p
    | None, None -> "" in
  Format.fprintf ppf "%s%s[%s]: %s" loc
    (severity_to_string d.severity)
    d.code d.message;
  match d.fixit with
  | Some fix -> Format.fprintf ppf "@,  fix: %s" fix
  | None -> ()

let render_human ds =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_open_vbox ppf 0;
  List.iter (fun d -> Format.fprintf ppf "%a@," pp_human d) ds;
  let count sev =
    List.length (List.filter (fun d -> d.severity = sev) ds) in
  let e, w, h = (count Error, count Warning, count Hint) in
  if ds = [] then Format.fprintf ppf "no diagnostics@,"
  else
    Format.fprintf ppf "%d error%s, %d warning%s, %d hint%s@," e
      (if e = 1 then "" else "s")
      w
      (if w = 1 then "" else "s")
      h
      (if h = 1 then "" else "s");
  Format.pp_close_box ppf ();
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let to_json d =
  Json.Obj
    ([ ("code", Json.String d.code);
       ("severity", Json.String (severity_to_string d.severity)) ]
     @ (match d.file with
        | Some f -> [ ("file", Json.String f) ]
        | None -> [])
     @ (match d.pos with
        | Some p ->
          [ ("line", Json.Int p.Sexp.line); ("col", Json.Int p.Sexp.col) ]
        | None -> [])
     @ [ ("message", Json.String d.message) ]
     @ (match d.fixit with
        | Some fix -> [ ("fix", Json.String fix) ]
        | None -> []))

let render_json ds =
  Json.to_string (Json.List (List.map to_json ds)) ^ "\n"

(* The sexp format has no atom quoting, so free text is emitted as one
   atom per word, with parentheses and semicolons mapped to brackets and
   commas — the output re-parses with [Sexp.parse]. *)
let text_atoms s =
  let sanitize ch =
    match ch with '(' -> '[' | ')' -> ']' | ';' -> ',' | c -> c in
  String.split_on_char ' ' (String.map sanitize s)
  |> List.filter (fun w -> w <> "")
  |> List.map (fun w -> Sexp.Atom w)

let to_sexp d =
  let field name atoms = Sexp.List (Sexp.Atom name :: atoms) in
  Sexp.List
    (Sexp.Atom "diagnostic"
     :: field "code" [ Sexp.Atom d.code ]
     :: field "severity" [ Sexp.Atom (severity_to_string d.severity) ]
     :: ((match d.file with
          | Some f -> [ field "file" [ Sexp.Atom f ] ]
          | None -> [])
         @ (match d.pos with
            | Some p ->
              [ field "line" [ Sexp.Atom (string_of_int p.Sexp.line) ];
                field "col" [ Sexp.Atom (string_of_int p.Sexp.col) ] ]
            | None -> [])
         @ [ field "message" (text_atoms d.message) ]
         @ (match d.fixit with
            | Some fix -> [ field "fix" (text_atoms fix) ]
            | None -> [])))

let render_sexp ds =
  Sexp.to_string (Sexp.List (Sexp.Atom "diagnostics" :: List.map to_sexp ds))
  ^ "\n"
