(* Differential and metamorphic oracles over random systems.

   Each oracle states a cross-cutting correctness obligation between two
   independent implementations (analysis vs simulator, closed-form
   reliability vs event sampling) or a monotonicity law a sound analysis
   must respect. An oracle is a pure function of the system — reruns are
   deterministic, which the shrinking runner and the regression corpus
   rely on. *)

module Gen = Mcmap_gen.Gen
module Happ = Mcmap_hardening.Happ
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique
module Graph = Mcmap_model.Graph
module Task = Mcmap_model.Task
module Arch = Mcmap_model.Arch
module Interconnect = Mcmap_model.Interconnect
module Proc = Mcmap_model.Proc
module Appset = Mcmap_model.Appset
module Criticality = Mcmap_model.Criticality
module Jobset = Mcmap_sched.Jobset
module Job = Mcmap_sched.Job
module Bounds = Mcmap_sched.Bounds
module Wcrt = Mcmap_analysis.Wcrt
module Verdict = Mcmap_analysis.Verdict
module Engine = Mcmap_sim.Engine
module Fault_profile = Mcmap_sim.Fault_profile
module Monte_carlo = Mcmap_sim.Monte_carlo
module Reliability = Mcmap_reliability.Analysis
module Pareto = Mcmap_util.Pareto
module Stats = Mcmap_util.Stats
module Sexp = Mcmap_util.Sexp
module Spec = Mcmap_spec.Spec
module Lint = Mcmap_lint.Lint
module Diagnostic = Mcmap_lint.Diagnostic

type t = {
  name : string;
  doc : string;
  check : Gen.system -> (unit, string) result;
}

let failf fmt = Format.kasprintf (fun s -> Error s) fmt

let pipeline (sys : Gen.system) =
  let happ = Happ.build sys.Gen.arch sys.Gen.apps sys.Gen.plan in
  let js = Jobset.build happ in
  let ctx = Bounds.make js in
  (js, ctx)

let analyze sys =
  let js, ctx = pipeline sys in
  (js, Wcrt.analyze ctx)

let covers verdict observed =
  match observed with
  | None -> true
  | Some r -> float_of_int r <= Verdict.to_float verdict

(* ------------------------------------------------------------------ *)
(* (a) Soundness: the analytic WCRT dominates every simulated run. *)

(* The fault profiles a trial exercises: none (normal mode), all faults
   from t=0 (adhoc critical mode), and seeded random profiles in both
   worst-case and random-duration execution modes. Seeds are fixed
   constants so the oracle is a function of the system alone. *)
let n_random_profiles = 8

let soundness_runs js =
  let base =
    [ ("none/wc", Engine.run js ~profile:Fault_profile.none);
      ("all/wc", Engine.run js ~profile:Fault_profile.all);
      ("all/critical",
       Engine.run ~start_critical:true js ~profile:Fault_profile.all) ] in
  let random =
    List.concat_map
      (fun p ->
        let profile = Fault_profile.random ~seed:(1000 + p) ~bias:0.5 js in
        [ (Format.asprintf "rand%d/wc" p, Engine.run js ~profile);
          (Format.asprintf "rand%d/rd" p,
           Engine.run ~mode:(Engine.Random_durations (2000 + p)) js
             ~profile) ])
      (List.init n_random_profiles (fun p -> p)) in
  base @ random

let check_soundness sys =
  let js, report = analyze sys in
  let n_graphs = Happ.n_graphs js.Jobset.happ in
  let check_run acc (label, (o : Engine.outcome)) =
    match acc with
    | Error _ -> acc
    | Ok () ->
      let bad = ref (Ok ()) in
      for g = 0 to n_graphs - 1 do
        let resp = o.Engine.graph_response.(g) in
        if not (covers report.Wcrt.wcrt.(g) resp) then
          bad :=
            failf
              "graph %d: simulated response %s exceeds WCRT bound %a \
               (profile %s)"
              g
              (match resp with Some r -> string_of_int r | None -> "-")
              Verdict.pp report.Wcrt.wcrt.(g) label;
        (* In a fault-free run the system never leaves the normal mode,
           so the tighter normal-state bound must already cover it. *)
        if label = "none/wc"
           && not (covers report.Wcrt.normal_wcrt.(g) resp) then
          bad :=
            failf
              "graph %d: fault-free response %s exceeds normal-mode \
               bound %a"
              g
              (match resp with Some r -> string_of_int r | None -> "-")
              Verdict.pp report.Wcrt.normal_wcrt.(g)
      done;
      !bad in
  (* Per-job differential: the fault-free worst-case trace must respect
     the per-job finish bounds of the normal-state interval analysis. *)
  let per_job =
    let ctx = Bounds.make js in
    let normal = Bounds.analyze ctx ~exec:Bounds.nominal_exec in
    if not normal.Bounds.converged then Ok ()
    else begin
      let o = Engine.run js ~profile:Fault_profile.none in
      let bad = ref (Ok ()) in
      Array.iter
        (fun (j : Job.t) ->
          match o.Engine.finish.(j.Job.id) with
          | Some t when t > normal.Bounds.bounds.(j.Job.id).Bounds.max_finish
            ->
            bad :=
              failf
                "job %d (g%d.t%d#%d): fault-free finish %d exceeds \
                 analytic max_finish %d"
                j.Job.id j.Job.graph j.Job.task j.Job.instance t
                normal.Bounds.bounds.(j.Job.id).Bounds.max_finish
          | Some _ | None -> ())
        js.Jobset.jobs;
      !bad
    end in
  match per_job with
  | Error _ as e -> e
  | Ok () -> List.fold_left check_run (Ok ()) (soundness_runs js)

(* ------------------------------------------------------------------ *)
(* (b) Reliability agreement: closed form vs event-level sampling. *)

let mc_trials = 3000

(* z = 4 keeps the acceptance band wide enough (~99.994% interval) that
   a correct implementation never trips it while a wrong combinator
   still lands far outside. *)
let mc_z = 4.

(* Physical fault rates (~1e-4 per time unit) make failure events too
   rare for 3,000 trials to carry statistical power, so the comparison
   runs on an amplified architecture: the combinators under test are
   exact formulas, valid at any rate, and both sides take the
   architecture as input. *)
let amplified_fault_rate = 3e-3

let amplify_arch (arch : Arch.t) =
  Arch.make ~interconnect:arch.Arch.interconnect
    (Array.map
       (fun (p : Proc.t) ->
         Proc.make ~proc_type:p.Proc.proc_type
           ~static_power:p.Proc.static_power
           ~dynamic_power:p.Proc.dynamic_power
           ~fault_rate:amplified_fault_rate ~speed:p.Proc.speed
           ~policy:p.Proc.policy ~id:p.Proc.id ~name:p.Proc.name ())
       arch.Arch.procs)

(* P(X <= obs) for X ~ Poisson(m); only used for small m, where the
   naive term recursion is accurate. *)
let poisson_cdf m obs =
  let rec go i term acc =
    if i > obs then acc
    else begin
      let term =
        if i = 0 then exp (-.m) else term *. m /. float_of_int i in
      go (i + 1) term (acc +. term)
    end in
  if obs < 0 then 0. else go 0 0. 0.

(* The Wilson interval is an inversion of the normal approximation and
   collapses when the expected failure count is near zero (observing 1
   failure against an expectation of 0.05 is a 5% event, yet lands
   outside even a z=4 interval). Fall back to the exact tail of the
   count distribution: reject only observations that are genuinely
   incompatible with the closed-form probability. *)
let count_plausible ~mean ~obs =
  let obs_f = float_of_int obs in
  if mean > 30. then Float.abs (obs_f -. mean) /. sqrt mean <= 6.
  else if obs_f >= mean then 1. -. poisson_cdf mean (obs - 1) >= 1e-7
  else poisson_cdf mean obs >= 1e-7

let check_reliability sys =
  let arch = amplify_arch sys.Gen.arch in
  let apps = sys.Gen.apps and plan = sys.Gen.plan in
  let n = Appset.n_graphs apps in
  let rec per_graph g =
    if g >= n then Ok ()
    else begin
      let grf = Reliability.graph_failure_rate arch apps plan ~graph:g in
      let period = (Appset.graph apps g).Graph.period in
      let closed =
        Mcmap_util.Mathx.clamp_f ~lo:0. ~hi:1.
          (grf *. float_of_int period) in
      let est =
        Monte_carlo.failure_probability ~trials:mc_trials
          ~seed:(sys.Gen.seed + (g * 7919))
          arch apps plan ~graph:g in
      let lo, hi =
        Stats.wilson_interval ~z:mc_z
          ~successes:est.Monte_carlo.failures
          ~trials:est.Monte_carlo.trials () in
      let mean = closed *. float_of_int est.Monte_carlo.trials in
      if (closed < lo || closed > hi)
         && not (count_plausible ~mean ~obs:est.Monte_carlo.failures) then
        failf
          "graph %d: closed-form failure probability %.3e outside the \
           Wilson interval [%.3e, %.3e] of %d event-level trials \
           (%d failures, %.1f expected)"
          g closed lo hi est.Monte_carlo.trials est.Monte_carlo.failures
          mean
      else per_graph (g + 1)
    end in
  per_graph 0

(* ------------------------------------------------------------------ *)
(* (c) Metamorphic laws. *)

(* Strengthening a time-redundant technique by one more tolerated fault
   never increases the analytic failure rate. *)
let check_hardening_monotonic sys =
  let arch = sys.Gen.arch and apps = sys.Gen.apps and plan = sys.Gen.plan in
  let stronger (d : Plan.decision) =
    match d.Plan.technique with
    | Technique.No_hardening ->
      Some { d with Plan.technique = Technique.re_execution 1;
                    replica_procs = [||] }
    | Technique.Re_execution k ->
      Some { d with Plan.technique = Technique.re_execution (k + 1) }
    | Technique.Checkpointing (segments, k) ->
      Some
        { d with
          Plan.technique = Technique.checkpointing ~segments ~k:(k + 1) }
    | Technique.Active_replication _ | Technique.Passive_replication _ ->
      (* adding a replica needs a free distinct processor; skip *)
      None in
  let bad = ref (Ok ()) in
  for g = 0 to Appset.n_graphs apps - 1 do
    for t = 0 to Graph.n_tasks (Appset.graph apps g) - 1 do
      match !bad with
      | Error _ -> ()
      | Ok () ->
        (match stronger (Plan.decision plan ~graph:g ~task:t) with
         | None -> ()
         | Some d' ->
           let before = Reliability.graph_failure_rate arch apps plan ~graph:g in
           let plan' = Plan.with_decision plan ~graph:g ~task:t d' in
           let after =
             Reliability.graph_failure_rate arch apps plan' ~graph:g in
           if after > before +. 1e-12 then
             bad :=
               failf
                 "g%d.t%d: strengthening %a raised the failure rate \
                  %.6e -> %.6e"
                 g t Technique.pp
                 (Plan.decision plan ~graph:g ~task:t).Plan.technique
                 before after)
    done
  done;
  !bad

(* Inflating one task's WCET never shrinks any graph's WCRT bound. *)
let wcet_inflation = 7

let inflate_task apps ~graph ~task ~by =
  let graphs =
    Array.mapi
      (fun gi (g : Graph.t) ->
        if gi <> graph then g
        else begin
          let tasks =
            Array.map
              (fun (tk : Task.t) ->
                if tk.Task.id <> task then tk
                else
                  Task.make ~id:tk.Task.id ~name:tk.Task.name
                    ~wcet:(tk.Task.wcet + by) ~bcet:tk.Task.bcet
                    ~detection_overhead:tk.Task.detection_overhead
                    ~voting_overhead:tk.Task.voting_overhead ())
              g.Graph.tasks in
          Graph.make ~deadline:g.Graph.deadline ~name:g.Graph.name ~tasks
            ~channels:g.Graph.channels ~period:g.Graph.period
            ~criticality:g.Graph.criticality ()
        end)
      apps.Appset.graphs in
  Appset.make graphs

(* Each graph is checked in isolation: with cross-application
   interference present the interval analysis is legitimately
   non-monotone — inflating one task's WCET shifts start/finish
   windows, which discretely changes charged interferer sets in either
   direction, sometimes shaving a unit off another (or even its own)
   graph's bound. Each configuration's bound stays individually sound
   (the soundness oracle's job); monotonicity is only promised along a
   single application's own execution chain and self-interference. *)
let isolate (sys : Gen.system) g =
  let apps = Appset.make [| Appset.graph sys.Gen.apps g |] in
  let plan =
    Plan.make apps
      ~decisions:[| Array.copy sys.Gen.plan.Plan.decisions.(g) |]
      ~dropped:[| false |] in
  { sys with Gen.apps = apps; plan }

let check_wcet_monotonic sys =
  let bad = ref (Ok ()) in
  for g = 0 to Appset.n_graphs sys.Gen.apps - 1 do
    let iso = isolate sys g in
    let _, report = analyze iso in
    for t = 0 to Graph.n_tasks (Appset.graph iso.Gen.apps 0) - 1 do
      match !bad with
      | Error _ -> ()
      | Ok () ->
        let apps' =
          inflate_task iso.Gen.apps ~graph:0 ~task:t ~by:wcet_inflation in
        let _, report' = analyze { iso with Gen.apps = apps' } in
        let old_b = Verdict.to_float report.Wcrt.wcrt.(0)
        and new_b = Verdict.to_float report'.Wcrt.wcrt.(0) in
        if new_b < old_b then
          bad :=
            failf
              "inflating g%d.t%d wcet by %d shrank the isolated graph's \
               bound %a -> %a"
              g t wcet_inflation Verdict.pp report.Wcrt.wcrt.(0)
              Verdict.pp report'.Wcrt.wcrt.(0)
    done
  done;
  !bad

(* Laws about growing the dropped set. The intuitive law — dropping a
   low-criticality application never worsens anyone's critical-state
   bound — is false for the interval analysis: a dropped job's
   execution uncertainty widens to [0, wcet] in transition scenarios,
   which can increase the interference charged to others (the bound
   stays sound, just less tight). What must hold exactly:

   - the dropped set is a critical-state concept, so normal-state
     bounds and the fault-free simulation are bit-identical;
   - the newly dropped graph owes its deadline only while alive, so
     its own required bound never worsens. *)
let check_dropping_improves sys =
  let apps = sys.Gen.apps and plan = sys.Gen.plan in
  let js, report = analyze sys in
  let base_run = Engine.run js ~profile:Fault_profile.none in
  let bad = ref (Ok ()) in
  for g = 0 to Appset.n_graphs apps - 1 do
    match !bad with
    | Error _ -> ()
    | Ok () ->
      if Graph.is_droppable (Appset.graph apps g)
         && not plan.Plan.dropped.(g) then begin
        let plan' = Plan.with_dropped plan ~graph:g true in
        let js', report' = analyze { sys with Gen.plan = plan' } in
        for h = 0 to Appset.n_graphs apps - 1 do
          if report'.Wcrt.normal_wcrt.(h) <> report.Wcrt.normal_wcrt.(h)
          then
            bad :=
              failf
                "dropping graph %d changed graph %d's normal-state bound \
                 %a -> %a"
                g h Verdict.pp report.Wcrt.normal_wcrt.(h) Verdict.pp
                report'.Wcrt.normal_wcrt.(h)
        done;
        (match !bad with
         | Error _ -> ()
         | Ok () ->
           let run' = Engine.run js' ~profile:Fault_profile.none in
           if run'.Engine.graph_response <> base_run.Engine.graph_response
           then
             bad :=
               failf
                 "dropping graph %d changed the fault-free simulation" g
           else begin
             let old_b = Verdict.to_float report.Wcrt.required_wcrt.(g)
             and new_b = Verdict.to_float report'.Wcrt.required_wcrt.(g) in
             if new_b > old_b then
               bad :=
                 failf
                   "dropping graph %d worsened its own required bound \
                    %a -> %a"
                   g Verdict.pp report.Wcrt.required_wcrt.(g) Verdict.pp
                   report'.Wcrt.required_wcrt.(g)
           end)
      end
  done;
  !bad

(* ------------------------------------------------------------------ *)
(* (d) Campaign agreement: the rare-event importance-sampling campaign
   brackets the closed form at physical fault rates. Unlike oracle (b),
   no amplification is needed — resolving rare events is the campaign's
   whole job, so this exercises the estimator exactly where naive
   sampling has no power. The z = 4 / alpha = 1e-3 bands are wide
   enough that a correct estimator essentially never trips while a
   biased weight or a broken stratum probability lands far outside. *)

let campaign_config =
  { Mcmap_campaign.Shard.default_config with
    Mcmap_campaign.Shard.trials = 2000;
    shard_trials = 512;
    z = 4.;
    cp_alpha = 1e-3 }

let check_campaign sys =
  let config =
    { campaign_config with Mcmap_campaign.Shard.seed = sys.Gen.seed } in
  match
    Mcmap_campaign.Campaign.run config sys.Gen.arch sys.Gen.apps
      sys.Gen.plan
  with
  | Error e -> failf "campaign refused to run: %s" e
  | Ok outcome ->
    let rec per_graph = function
      | [] -> Ok ()
      | (g : Mcmap_campaign.Aggregate.graph_report) :: tl ->
        if not g.Mcmap_campaign.Aggregate.closed_in_ci then
          failf
            "graph %d: closed-form failure probability %.3e outside the \
             campaign interval [%.3e, %.3e] (estimate %.3e, %d weighted \
             failures in %d trials)"
            g.Mcmap_campaign.Aggregate.graph
            g.Mcmap_campaign.Aggregate.closed_form
            g.Mcmap_campaign.Aggregate.lo g.Mcmap_campaign.Aggregate.hi
            g.Mcmap_campaign.Aggregate.estimate
            g.Mcmap_campaign.Aggregate.failures
            g.Mcmap_campaign.Aggregate.trials
        else per_graph tl in
    per_graph outcome.Mcmap_campaign.Campaign.report
      .Mcmap_campaign.Aggregate.graphs

(* ------------------------------------------------------------------ *)
(* (e) DSE front sanity: archives contain no dominated "front". *)

let ga_config ~selector ~seed =
  { Mcmap_dse.Ga.default_config with
    Mcmap_dse.Ga.population = 6; offspring = 6; generations = 3; seed;
    selector }

let check_pareto_front sys =
  let arch = sys.Gen.arch and apps = sys.Gen.apps in
  let run selector label =
    let config = ga_config ~selector ~seed:sys.Gen.seed in
    let result = Mcmap_dse.Ga.optimize config arch apps in
    let entries =
      Array.to_list
        (Array.mapi
           (fun i (_, (e : Mcmap_dse.Evaluate.t)) ->
             (i, e.Mcmap_dse.Evaluate.objectives))
           result.Mcmap_dse.Ga.archive) in
    let front = Pareto.non_dominated entries in
    (* 1. the front is mutually non-dominated *)
    let dominated_pair =
      List.exists
        (fun (_, a) ->
          List.exists (fun (_, b) -> Pareto.dominates b a) front)
        front in
    (* 2. every archive member outside the front is dominated or a
       duplicate of a front member's objective vector *)
    let front_ids = List.map fst front in
    let unexplained =
      List.filter
        (fun (i, o) ->
          (not (List.mem i front_ids))
          && (not
                (List.exists
                   (fun (_, f) -> Pareto.dominates f o || f = o)
                   front)))
        entries in
    if dominated_pair then
      failf "%s: archive front contains a dominated point" label
    else if unexplained <> [] then
      failf "%s: %d archive points neither on the front nor dominated"
        label (List.length unexplained)
    else Ok () in
  match run Mcmap_dse.Ga.Spea2_selector "spea2" with
  | Error _ as e -> e
  | Ok () -> run Mcmap_dse.Ga.Nsga2_selector "nsga2"

(* ------------------------------------------------------------------ *)
(* Lint soundness: the linter accepts what the generator produces and
   flags targeted corruptions of it.

   Only structural codes (MC0xx model, MC1xx plan) participate: random
   systems can legitimately trip the MC2xx/MC3xx feasibility checks (a
   4-task chain with period 50 has an infeasible critical path), and
   those checks are exercised by the golden corpus instead. *)

let structural_errors ds =
  List.filter
    (fun (d : Diagnostic.t) ->
      d.Diagnostic.severity = Diagnostic.Error
      && String.length d.Diagnostic.code = 5
      && (d.Diagnostic.code.[2] = '0' || d.Diagnostic.code.[2] = '1'))
    ds

let diag_codes ds =
  String.concat ","
    (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds)

(* Second processor renamed to the first's name; Arch.make does not
   resolve names, so the corrupt system still prints. *)
let corrupt_duplicate_proc (sys : Gen.system) =
  let arch = sys.Gen.arch in
  if Arch.n_procs arch < 2 then None
  else begin
    let first = (Arch.proc arch 0).Proc.name in
    let procs =
      Array.mapi
        (fun i (p : Proc.t) ->
          if i = 1 then { p with Proc.name = first } else p)
        arch.Arch.procs in
    let arch' =
      Arch.make ~interconnect:arch.Arch.interconnect procs in
    Some (Spec.write_system { Spec.arch = arch'; apps = sys.Gen.apps })
  end

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1) in
  go 0

(* First channel's (from ...) endpoint redirected to a task that does
   not exist. *)
let corrupt_dangling_endpoint (sys : Gen.system) sys_text =
  let channel_src =
    let found = ref None in
    Array.iter
      (fun (g : Graph.t) ->
        if !found = None && Array.length g.Graph.channels > 0 then
          found :=
            Some (Graph.task g g.Graph.channels.(0).Mcmap_model.Channel.src)
              .Task.name)
      sys.Gen.apps.Appset.graphs;
    !found in
  match channel_src with
  | None -> None
  | Some src ->
    let needle = Format.asprintf "(from %s)" src in
    (match find_sub sys_text needle with
     | None -> None
     | Some i ->
       Some
         (String.sub sys_text 0 i
          ^ "(from __no_such_task__)"
          ^ String.sub sys_text
              (i + String.length needle)
              (String.length sys_text - i - String.length needle)))

(* First (bind ...) entry removed from the plan. *)
let corrupt_drop_bind plan_text =
  match Sexp.parse_one plan_text with
  | Ok (Sexp.List (Sexp.Atom "plan" :: fields)) ->
    let dropped = ref false in
    let fields' =
      List.filter
        (function
          | Sexp.List (Sexp.Atom "bind" :: _) when not !dropped ->
            dropped := true;
            false
          | _ -> true)
        fields in
    if !dropped then
      Some (Sexp.to_string (Sexp.List (Sexp.Atom "plan" :: fields')) ^ "\n")
    else None
  | _ -> None

let check_lint (sys : Gen.system) =
  let spec = { Spec.arch = sys.Gen.arch; apps = sys.Gen.apps } in
  let sys_text = Spec.write_system spec in
  let plan_text = Spec.write_plan spec sys.Gen.plan in
  let expect_sys label code text k =
    let ds, _ = Lint.lint_system text in
    if
      List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.code = code) ds
    then k ()
    else failf "lint: %s: expected %s, got [%s]" label code (diag_codes ds)
  in
  let ds, built = Lint.lint_system sys_text in
  match structural_errors ds, built with
  | (d : Diagnostic.t) :: _, _ ->
    failf "lint: clean system flagged %s: %s" d.Diagnostic.code
      d.Diagnostic.message
  | [], None -> failf "lint: written system did not build back"
  | [], Some spec_sys ->
    let pds = Lint.lint_plan spec_sys plan_text in
    (match structural_errors pds with
     | (d : Diagnostic.t) :: _ ->
       failf "lint: clean plan flagged %s: %s" d.Diagnostic.code
         d.Diagnostic.message
     | [] ->
       let check_dup k =
         match corrupt_duplicate_proc sys with
         | None -> k ()
         | Some text -> expect_sys "duplicated processor" "MC001" text k
       in
       let check_dangling k =
         match corrupt_dangling_endpoint sys sys_text with
         | None -> k ()
         | Some text -> expect_sys "dangling endpoint" "MC004" text k in
       let check_unbound () =
         match corrupt_drop_bind plan_text with
         | None -> Ok ()
         | Some text ->
           let ds = Lint.lint_plan spec_sys text in
           if
             List.exists
               (fun (d : Diagnostic.t) -> d.Diagnostic.code = "MC105")
               ds
           then Ok ()
           else
             failf "lint: removed bind: expected MC105, got [%s]"
               (diag_codes ds) in
       check_dup (fun () -> check_dangling check_unbound))

(* ------------------------------------------------------------------ *)
(* (i) Evaluator sessions: cached/incremental evaluation must equal the
   fresh reference exactly — field for field, bit for bit on floats —
   along random mutation chains that exercise every cache layer: drop
   toggles (scheduling + service), rebinds (component invalidation) and
   technique/replica-arity edits (hardened-graph and reliability rows). *)

module Evaluator = Mcmap_dse.Evaluator
module Evaluate = Mcmap_dse.Evaluate
module Prng = Mcmap_util.Prng

let evaluations_equal (a : Evaluate.t) (b : Evaluate.t) =
  Float.compare a.Evaluate.power b.Evaluate.power = 0
  && Float.compare a.Evaluate.service b.Evaluate.service = 0
  && a.Evaluate.schedulable = b.Evaluate.schedulable
  && a.Evaluate.reliable = b.Evaluate.reliable
  && Float.compare a.Evaluate.violation b.Evaluate.violation = 0
  && a.Evaluate.rescued = b.Evaluate.rescued
  && Array.length a.Evaluate.objectives = Array.length b.Evaluate.objectives
  && Array.for_all2
       (fun x y -> Float.compare x y = 0)
       a.Evaluate.objectives b.Evaluate.objectives

let mutate_plan rng arch apps (plan : Plan.t) =
  let n_graphs = Appset.n_graphs apps in
  let n_procs = Arch.n_procs arch in
  let droppable =
    List.filter
      (fun gi -> Graph.is_droppable (Appset.graph apps gi))
      (List.init n_graphs Fun.id) in
  let reroll_decision () =
    let gi = Prng.int rng n_graphs in
    let g = Appset.graph apps gi in
    let ti = Prng.int rng (Graph.n_tasks g) in
    let candidates =
      [ Technique.No_hardening;
        Technique.Re_execution (Prng.int_in rng 1 2);
        Technique.Checkpointing (Prng.int_in rng 1 3, Prng.int_in rng 1 2) ]
      @ (if n_procs >= 2 then [ Technique.Active_replication 2 ] else [])
      @
      if n_procs >= 3 then
        [ Technique.Active_replication 3; Technique.Passive_replication 1 ]
      else [] in
    let technique = Prng.pick_list rng candidates in
    let order = Array.init n_procs Fun.id in
    Prng.shuffle rng order;
    let count = Technique.replica_count technique in
    let d =
      { Plan.technique; primary_proc = order.(0);
        replica_procs = Array.sub order 1 (count - 1);
        voter_proc = Prng.int rng n_procs } in
    Plan.with_decision plan ~graph:gi ~task:ti d in
  match droppable with
  | gs when gs <> [] && Prng.bernoulli rng 0.3 ->
    let gi = Prng.pick_list rng gs in
    Plan.with_dropped plan ~graph:gi (not plan.Plan.dropped.(gi))
  | _ -> reroll_decision ()

let check_evaluator_agreement (sys : Gen.system) =
  let arch = sys.Gen.arch and apps = sys.Gen.apps in
  let session = Evaluator.create arch apps in
  let rng = Prng.create (sys.Gen.seed + 7919) in
  let steps = 8 in
  let explain step (cached : Evaluate.t) (fresh : Evaluate.t) what =
    failf
      "evaluator: step %d (%s): session disagrees with fresh evaluation: \
       power %.17g vs %.17g, service %.17g vs %.17g, violation %.17g vs \
       %.17g, schedulable %b/%b, reliable %b/%b, rescued %b/%b"
      step what cached.Evaluate.power fresh.Evaluate.power
      cached.Evaluate.service fresh.Evaluate.service
      cached.Evaluate.violation fresh.Evaluate.violation
      cached.Evaluate.schedulable fresh.Evaluate.schedulable
      cached.Evaluate.reliable fresh.Evaluate.reliable
      cached.Evaluate.rescued fresh.Evaluate.rescued in
  let rec go step plan =
    if step >= steps then Ok ()
    else begin
      let fresh = Evaluate.evaluate arch apps plan in
      let cached = Evaluator.eval session plan in
      if not (cached.Evaluate.plan == plan) then
        failf "evaluator: step %d: result does not carry the queried plan"
          step
      else if not (evaluations_equal cached fresh) then
        explain step cached fresh "first query"
      else begin
        (* The replay must be served from the result cache and still
           agree exactly. *)
        let replay = Evaluator.eval session plan in
        if not (evaluations_equal replay fresh) then
          explain step replay fresh "cache-hit replay"
        else if
          Float.compare (Evaluator.power session plan)
            (Evaluate.power_of_plan arch apps plan)
          <> 0
        then
          failf "evaluator: step %d: session power differs from \
                 power_of_plan" step
        else go (step + 1) (mutate_plan rng arch apps plan)
      end
    end in
  go 0 sys.Gen.plan

(* ------------------------------------------------------------------ *)
(* (j) Flat kernel: the structure-of-arrays engine must reproduce the
   reference {!Bounds} fixed point exactly — per-job intervals and the
   converged flag — for every exec hook, iteration cap and horizon.
   Agreement is checked at several caps (so the engines agree sweep for
   sweep, not only at the fixed point), on every trigger scenario, under
   horizon truncation, and at full-evaluation level with one session per
   engine walking the same mutation chain. *)

module Flat = Mcmap_sched.Flat

let ( let* ) = Result.bind

let results_equal (a : Bounds.result) (b : Bounds.result) =
  a.Bounds.converged = b.Bounds.converged
  && a.Bounds.bounds = b.Bounds.bounds

let flat_disagreement label (r : Bounds.result) (f : Bounds.result) =
  if r.Bounds.converged <> f.Bounds.converged then
    failf "flat: %s: converged %b (reference) vs %b (flat)" label
      r.Bounds.converged f.Bounds.converged
  else begin
    let n = Array.length r.Bounds.bounds in
    let rec go j =
      if j >= n then
        failf "flat: %s: results differ but no job field differs" label
      else if r.Bounds.bounds.(j) <> f.Bounds.bounds.(j) then begin
        let a = r.Bounds.bounds.(j) and b = f.Bounds.bounds.(j) in
        failf
          "flat: %s: job %d: reference start [%d,%d] finish [%d,%d] vs \
           flat start [%d,%d] finish [%d,%d]"
          label j a.Bounds.min_start a.Bounds.max_start a.Bounds.min_finish
          a.Bounds.max_finish b.Bounds.min_start b.Bounds.max_start
          b.Bounds.min_finish b.Bounds.max_finish
      end
      else go (j + 1) in
    go 0
  end

(* Caps below, at and above typical convergence: agreement at every cap
   pins per-sweep behaviour, including the truncated [converged = false]
   prefixes. *)
let flat_caps = [ 1; 3; Bounds.default_max_iterations ]

let check_flat_agreement (sys : Gen.system) =
  let arch = sys.Gen.arch and apps = sys.Gen.apps in
  let happ = Happ.build arch apps sys.Gen.plan in
  let js = Jobset.build happ in
  let base = Appset.hyperperiod apps in
  let rctx = Bounds.make js and fctx = Flat.make js in
  let compare_at label ~max_iterations rctx fctx ~exec =
    let r = Bounds.analyze ~max_iterations rctx ~exec in
    let f = Flat.analyze ~max_iterations fctx ~exec in
    if results_equal r f then Ok () else flat_disagreement label r f in
  let compare_caps label rctx fctx ~exec =
    List.fold_left
      (fun acc cap ->
        let* () = acc in
        compare_at
          (Printf.sprintf "%s, cap %d" label cap)
          ~max_iterations:cap rctx fctx ~exec)
      (Ok ()) flat_caps in
  let* () = compare_caps "normal state" rctx fctx ~exec:Bounds.nominal_exec in
  (* Every trigger scenario of Algorithm 1, through the same exec hook
     the evaluator feeds both engines. *)
  let normal = Bounds.analyze rctx ~exec:Bounds.nominal_exec in
  let* () =
    if not normal.Bounds.converged then Ok ()
    else
      List.fold_left
        (fun acc (v : Job.t) ->
          let* () = acc in
          let exec = Wcrt.scenario_exec ~base normal.Bounds.bounds v in
          compare_at
            (Printf.sprintf "trigger scenario of job %d" v.Job.id)
            ~max_iterations:Bounds.default_max_iterations rctx fctx ~exec)
        (Ok ()) (Jobset.triggers js) in
  (* Horizon truncation parity: both engines must overflow at exactly
     the same cap and return the same truncated intervals. *)
  let* () =
    List.fold_left
      (fun acc horizon ->
        let* () = acc in
        compare_caps
          (Printf.sprintf "horizon %d" horizon)
          (Bounds.make ~horizon js)
          (Flat.make ~horizon js)
          ~exec:Bounds.nominal_exec)
      (Ok ())
      [ 1; base ] in
  (* Full-evaluation level: one session per engine walks the same
     mutation chain; restricted component jobsets, scenario memoisation
     and external-trigger summaries all sit on the engine under test. *)
  let ref_session = Evaluator.create ~engine:Evaluator.Reference arch apps in
  let flat_session = Evaluator.create ~engine:Evaluator.Flat arch apps in
  let rng = Prng.create (sys.Gen.seed + 104729) in
  let rec chain step plan =
    if step >= 6 then Ok ()
    else begin
      let r = Evaluator.eval ref_session plan in
      let f = Evaluator.eval flat_session plan in
      if not (evaluations_equal r f) then
        failf
          "flat: mutation step %d: engines disagree at evaluation level: \
           power %.17g vs %.17g, service %.17g vs %.17g, violation %.17g \
           vs %.17g, schedulable %b/%b, reliable %b/%b, rescued %b/%b"
          step r.Evaluate.power f.Evaluate.power r.Evaluate.service
          f.Evaluate.service r.Evaluate.violation f.Evaluate.violation
          r.Evaluate.schedulable f.Evaluate.schedulable r.Evaluate.reliable
          f.Evaluate.reliable r.Evaluate.rescued f.Evaluate.rescued
      else chain (step + 1) (mutate_plan rng arch apps plan)
    end in
  chain 0 sys.Gen.plan

(* ------------------------------------------------------------------ *)
(* (k) Interconnect backends: a bus and its degenerate mesh are the
   same machine. [Noc {cols = n; rows = 1; link_bandwidth = bw;
   hop_latency = 0; router_latency = lat}] must reproduce [Bus
   {bandwidth = bw; latency = lat}] exactly: per-pair delays for every
   size, Algorithm 1 verdicts field for field, and full evaluations bit
   for bit on both scheduling engines. The generator emits NoC systems
   too; their (bw, lat) parameters seed the bus side, so the oracle
   covers every random system. *)

let check_bus_noc_equivalence (sys : Gen.system) =
  let arch = sys.Gen.arch and apps = sys.Gen.apps in
  let bandwidth, latency =
    match arch.Arch.interconnect with
    | Interconnect.Bus { bandwidth; latency } -> (bandwidth, latency)
    | Interconnect.Noc { link_bandwidth; router_latency; _ } ->
      (link_bandwidth, router_latency) in
  let bus_arch =
    Arch.make
      ~interconnect:(Interconnect.Bus { bandwidth; latency })
      arch.Arch.procs in
  let noc_arch =
    Arch.make
      ~interconnect:
        (Interconnect.Noc
           { cols = Arch.n_procs arch; rows = 1;
             link_bandwidth = bandwidth; hop_latency = 0;
             router_latency = latency })
      arch.Arch.procs in
  let n = Arch.n_procs arch in
  let rec pairs src dst =
    if src >= n then Ok ()
    else if dst >= n then pairs (src + 1) 0
    else begin
      let rec sizes = function
        | [] -> pairs src (dst + 1)
        | size :: rest ->
          let b = Arch.comm_delay bus_arch ~size ~src_proc:src ~dst_proc:dst
          and m =
            Arch.comm_delay noc_arch ~size ~src_proc:src ~dst_proc:dst in
          if b <> m then
            failf
              "interconnect: comm_delay(%d -> %d, size %d): bus %d vs \
               degenerate 1x%d mesh %d"
              src dst size b n m
          else sizes rest in
      sizes [ -1; 0; 1; 5; 17; 1000 ]
    end in
  let* () = pairs 0 0 in
  (* Algorithm 1, field for field. *)
  let report_of arch =
    Wcrt.analyze (Bounds.make (Jobset.build (Happ.build arch apps sys.Gen.plan)))
  in
  let rb = report_of bus_arch and rm = report_of noc_arch in
  let* () =
    if
      rb.Wcrt.wcrt = rm.Wcrt.wcrt
      && rb.Wcrt.normal_wcrt = rm.Wcrt.normal_wcrt
      && rb.Wcrt.required_wcrt = rm.Wcrt.required_wcrt
      && rb.Wcrt.scenarios = rm.Wcrt.scenarios
    then Ok ()
    else
      failf
        "interconnect: Algorithm 1 verdicts differ between the bus and \
         its degenerate mesh (%d vs %d scenarios)"
        rb.Wcrt.scenarios rm.Wcrt.scenarios in
  (* Full evaluations, bit for bit, on both engines. *)
  let rec engines = function
    | [] -> Ok ()
    | (engine, label) :: rest ->
      let eb =
        Evaluator.eval (Evaluator.create ~engine bus_arch apps) sys.Gen.plan
      and em =
        Evaluator.eval (Evaluator.create ~engine noc_arch apps) sys.Gen.plan
      in
      if not (evaluations_equal eb em) then
        failf
          "interconnect: %s-engine evaluations differ between the bus \
           and its degenerate mesh: power %.17g vs %.17g, service %.17g \
           vs %.17g, violation %.17g vs %.17g, schedulable %b/%b, \
           reliable %b/%b"
          label eb.Evaluate.power em.Evaluate.power eb.Evaluate.service
          em.Evaluate.service eb.Evaluate.violation em.Evaluate.violation
          eb.Evaluate.schedulable em.Evaluate.schedulable
          eb.Evaluate.reliable em.Evaluate.reliable
      else engines rest in
  engines
    [ (Evaluator.Reference, "reference"); (Evaluator.Flat, "flat") ]

(* ------------------------------------------------------------------ *)

let soundness =
  { name = "wcrt-soundness";
    doc =
      "analytic WCRT dominates every fault-injected simulation, per \
       graph, per job and per criticality mode";
    check = check_soundness }

let reliability_agreement =
  { name = "reliability-agreement";
    doc =
      "closed-form failure probability lies inside the Wilson interval \
       of event-level Monte-Carlo estimates";
    check = check_reliability }

let hardening_monotonic =
  { name = "hardening-monotonic";
    doc = "strengthening a hardening technique never lowers reliability";
    check = check_hardening_monotonic }

let wcet_monotonic =
  { name = "wcet-monotonic";
    doc =
      "inflating a WCET never shrinks the graph's bound (in isolation)";
    check = check_wcet_monotonic }

let dropping_improves =
  { name = "dropping-improves";
    doc =
      "dropping an application leaves normal-state bounds and the \
       fault-free simulation unchanged and never worsens its own \
       required bound";
    check = check_dropping_improves }

let campaign_agreement =
  { name = "campaign-agreement";
    doc =
      "closed-form failure probability lies inside the confidence \
       interval of the stratified importance-sampling campaign, at \
       unamplified (rare-event) fault rates";
    check = check_campaign }

let pareto_front =
  { name = "pareto-front";
    doc = "SPEA2/NSGA2 archives contain no dominated Pareto points";
    check = check_pareto_front }

let lint_soundness =
  { name = "lint-soundness";
    doc =
      "generator output round-trips through the spec writer lint-clean \
       of structural errors, and targeted corruptions (duplicated \
       processor, dangling endpoint, removed bind) are flagged with \
       their codes";
    check = check_lint }

let evaluator_agreement =
  { name = "evaluator-agreement";
    doc =
      "session-cached/incremental evaluation equals the fresh reference \
       exactly (bit for bit) along random mutation chains: drop-set \
       toggles, rebinds, technique and replica-arity edits";
    check = check_evaluator_agreement }

let flat_agreement =
  { name = "flat-agreement";
    doc =
      "the flat structure-of-arrays kernel reproduces the reference \
       fixed point exactly — per-job intervals and convergence — at \
       every iteration cap, on every trigger scenario, under horizon \
       truncation, and at evaluation level along mutation chains";
    check = check_flat_agreement }

let bus_noc_equivalence =
  { name = "bus-noc-equivalence";
    doc =
      "a bus and its degenerate 1xN zero-hop mesh are the same machine: \
       per-pair delays for every size, Algorithm 1 verdicts field for \
       field, and full evaluations bit for bit on both the reference \
       and the flat engine";
    check = check_bus_noc_equivalence }

let all =
  [ soundness; reliability_agreement; campaign_agreement;
    hardening_monotonic; wcet_monotonic; dropping_improves; pareto_front;
    lint_soundness; evaluator_agreement; flat_agreement;
    bus_noc_equivalence ]

let find name = List.find_opt (fun o -> o.name = name) all
