(* Seeded property runner: generate random systems, run every oracle,
   shrink the first failure to a minimal counterexample and record its
   seed in the regression corpus.

   Trial [i] of a run with base seed [s] checks the system generated
   from seed [s + i], so a whole run is reproducible from [--seed] and
   any single failure from its reported seed alone. *)

module Gen = Mcmap_gen.Gen
module Spec = Mcmap_spec.Spec
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Arch = Mcmap_model.Arch

type failure = {
  seed : int;
  oracle : Oracles.t;
  message : string;  (* on the generated system *)
  shrunk : Gen.system;
  shrunk_message : string;  (* on the minimised system *)
  shrink_stats : Shrink.stats;
}

type report = {
  base_seed : int;
  count : int;
  oracle_names : string list;
  failures : failure list;  (* in trial order *)
}

let ok report = report.failures = []

(* Oracles are supposed to return [Error], but a crash in the code
   under test is a finding too — fold it into the same failure path so
   it gets shrunk and recorded rather than aborting the run. *)
let check_oracle (o : Oracles.t) sys =
  match o.Oracles.check sys with
  | r -> r
  | exception e ->
    let bt = Printexc.get_backtrace () in
    Error
      (Format.asprintf "uncaught exception: %s%s" (Printexc.to_string e)
         (if bt = "" then "" else "\n" ^ String.trim bt))

let first_failure oracles sys =
  List.find_map
    (fun o ->
      match check_oracle o sys with
      | Ok () -> None
      | Error message -> Some (o, message))
    oracles

let shrink_failure ?budget (o : Oracles.t) seed sys message =
  let failing s = Result.is_error (check_oracle o s) in
  let shrunk, shrink_stats = Shrink.minimize ?budget ~failing sys in
  let shrunk_message =
    match check_oracle o shrunk with
    | Error m -> m
    | Ok () -> message (* unreachable: minimize only returns failing *) in
  { seed; oracle = o; message; shrunk; shrunk_message; shrink_stats }

let check_seed ?(oracles = Oracles.all) ?budget seed =
  let sys = Gen.random_system seed in
  match first_failure oracles sys with
  | None -> None
  | Some (o, message) -> Some (shrink_failure ?budget o seed sys message)

let run ?(oracles = Oracles.all) ?budget ?on_failure ?on_trial ~seed ~count
    () =
  let failures = ref [] in
  for i = 0 to count - 1 do
    (match on_trial with Some k -> k i | None -> ());
    match check_seed ~oracles ?budget (seed + i) with
    | None -> ()
    | Some f ->
      (match on_failure with Some k -> k f | None -> ());
      failures := f :: !failures
  done;
  { base_seed = seed; count;
    oracle_names = List.map (fun (o : Oracles.t) -> o.Oracles.name) oracles;
    failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Reporting *)

let system_size (sys : Gen.system) =
  let apps = sys.Gen.apps in
  let tasks = Appset.total_tasks apps in
  (Appset.n_graphs apps, tasks, Arch.n_procs sys.Gen.arch)

let pp_failure ppf f =
  let graphs, tasks, procs = system_size f.shrunk in
  Format.fprintf ppf
    "@[<v>oracle %s failed for seed %d:@,  %s@,@,\
     minimal counterexample (%d graphs, %d tasks, %d procs; %d shrink \
     steps, %d evaluations):@,  %s@,@,%s@,%s@]"
    f.oracle.Oracles.name f.seed f.message graphs tasks procs
    f.shrink_stats.Shrink.steps f.shrink_stats.Shrink.evaluations
    f.shrunk_message
    (Spec.write_system
       { Spec.arch = f.shrunk.Gen.arch; apps = f.shrunk.Gen.apps })
    (Spec.write_plan
       { Spec.arch = f.shrunk.Gen.arch; apps = f.shrunk.Gen.apps }
       f.shrunk.Gen.plan)

let pp_report ppf r =
  if ok r then
    Format.fprintf ppf
      "checked %d systems (seeds %d..%d) against %d oracles: all passed"
      r.count r.base_seed
      (r.base_seed + r.count - 1)
      (List.length r.oracle_names)
  else
    Format.fprintf ppf "@[<v>%a@,%d of %d seeds failed@]"
      (Format.pp_print_list pp_failure)
      r.failures (List.length r.failures) r.count

(* ------------------------------------------------------------------ *)
(* Regression corpus: one "seed oracle-name" pair per line. Seeds are
   appended when a run finds a failure and replayed by the test suite,
   so once an oracle violation is fixed it stays fixed. *)

let load_corpus path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec read acc =
      match input_line ic with
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then read acc
        else begin
          match String.split_on_char ' ' line with
          | [ seed; oracle ] ->
            (match int_of_string_opt seed with
             | Some seed -> read ((seed, oracle) :: acc)
             | None -> read acc)
          | _ -> read acc
        end
      | exception End_of_file ->
        close_in ic;
        List.rev acc in
    read []
  end

let append_corpus path f =
  let entries = load_corpus path in
  let entry = (f.seed, f.oracle.Oracles.name) in
  if List.mem entry entries then false
  else begin
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_text ] 0o644 path in
    Printf.fprintf oc "%d %s\n" f.seed f.oracle.Oracles.name;
    close_out oc;
    true
  end

(* Replay one corpus entry: the named oracle must pass on that seed. *)
let replay_entry ?(oracles = Oracles.all) (seed, oracle_name) =
  match List.find_opt (fun (o : Oracles.t) -> o.Oracles.name = oracle_name)
          oracles with
  | None -> Error (Format.asprintf "unknown oracle %s" oracle_name)
  | Some o -> check_oracle o (Gen.random_system seed)
