(* Greedy structural minimisation of a failing system.

   Given a predicate that holds on the initial system (the oracle
   failure), repeatedly tries simplifying transformations — drop a
   graph, drop a task, drop an unused processor, undrop, unharden,
   weaken a technique, remove a channel, shrink the numbers — and
   commits the first one that still fails. Stops at a local minimum or
   when the evaluation budget runs out. Candidate construction reuses
   the model smart constructors, so every intermediate system satisfies
   the same invariants as a generated one. *)

module Gen = Mcmap_gen.Gen
module Arch = Mcmap_model.Arch
module Interconnect = Mcmap_model.Interconnect
module Proc = Mcmap_model.Proc
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Task = Mcmap_model.Task
module Channel = Mcmap_model.Channel
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique

let try_make f =
  match f () with s -> Some s | exception Invalid_argument _ -> None

(* Rebuild the plan against a same-shape application set. *)
let rebuild (sys : Gen.system) apps decisions dropped =
  try_make (fun () ->
      let plan = Plan.make apps ~decisions ~dropped in
      { sys with Gen.apps; plan })

let with_graph (sys : Gen.system) g graph' =
  try_make (fun () -> Appset.make
      (Array.mapi
         (fun i x -> if i = g then graph' else x)
         sys.Gen.apps.Appset.graphs))
  |> Option.map (fun apps -> { sys with Gen.apps = apps })
  |> fun o ->
  Option.bind o (fun sys' ->
      rebuild sys' sys'.Gen.apps sys.Gen.plan.Plan.decisions
        sys.Gen.plan.Plan.dropped)

let with_task sys g t task' =
  let graph = Appset.graph sys.Gen.apps g in
  let tasks =
    Array.mapi
      (fun i x -> if i = t then task' else x)
      graph.Graph.tasks in
  Option.bind
    (try_make (fun () ->
         Graph.make ~deadline:graph.Graph.deadline ~name:graph.Graph.name
           ~tasks ~channels:graph.Graph.channels ~period:graph.Graph.period
           ~criticality:graph.Graph.criticality ()))
    (with_graph sys g)

let remake_task (tk : Task.t) ~wcet ~bcet ~detect ~vote =
  Task.make ~id:tk.Task.id ~name:tk.Task.name ~wcet ~bcet
    ~detection_overhead:detect ~voting_overhead:vote ()

(* ------------------------------------------------------------------ *)
(* Big steps *)

let drop_graph (sys : Gen.system) g =
  let apps = sys.Gen.apps and plan = sys.Gen.plan in
  let n = Appset.n_graphs apps in
  if n < 2 then None
  else begin
    let keep = List.filter (fun i -> i <> g) (List.init n Fun.id) in
    Option.bind
      (try_make (fun () ->
           Appset.make
             (Array.of_list (List.map (Appset.graph apps) keep))))
      (fun apps' ->
        let pick a = Array.of_list (List.map (Array.get a) keep) in
        rebuild sys apps'
          (pick plan.Plan.decisions)
          (pick plan.Plan.dropped))
  end

let drop_task (sys : Gen.system) g t =
  let apps = sys.Gen.apps and plan = sys.Gen.plan in
  let graph = Appset.graph apps g in
  let n = Graph.n_tasks graph in
  if n < 2 then None
  else begin
    let remap i = if i < t then i else i - 1 in
    Option.bind
      (try_make (fun () ->
           let tasks =
             Array.of_list
               (List.filter_map
                  (fun (tk : Task.t) ->
                    if tk.Task.id = t then None
                    else
                      Some
                        (Task.make ~id:(remap tk.Task.id) ~name:tk.Task.name
                           ~wcet:tk.Task.wcet ~bcet:tk.Task.bcet
                           ~detection_overhead:tk.Task.detection_overhead
                           ~voting_overhead:tk.Task.voting_overhead ()))
                  (Array.to_list graph.Graph.tasks)) in
           let channels =
             Array.of_list
               (List.filter_map
                  (fun (c : Channel.t) ->
                    if c.Channel.src = t || c.Channel.dst = t then None
                    else
                      Some
                        (Channel.make ~src:(remap c.Channel.src)
                           ~dst:(remap c.Channel.dst) ~size:c.Channel.size
                           ()))
                  (Array.to_list graph.Graph.channels)) in
           Graph.make ~deadline:graph.Graph.deadline ~name:graph.Graph.name
             ~tasks ~channels ~period:graph.Graph.period
             ~criticality:graph.Graph.criticality ()))
      (fun graph' ->
        Option.bind
          (try_make (fun () ->
               Appset.make
                 (Array.mapi
                    (fun i x -> if i = g then graph' else x)
                    apps.Appset.graphs)))
          (fun apps' ->
            let decisions =
              Array.mapi
                (fun gi row ->
                  if gi <> g then Array.copy row
                  else
                    Array.of_list
                      (List.filteri (fun ti _ -> ti <> t)
                         (Array.to_list row)))
                plan.Plan.decisions in
            rebuild sys apps' decisions (Array.copy plan.Plan.dropped)))
  end

let proc_used (plan : Plan.t) p =
  Array.exists
    (Array.exists (fun (d : Plan.decision) ->
         d.Plan.primary_proc = p
         || Array.exists (( = ) p) d.Plan.replica_procs
         || (Technique.needs_voter d.Plan.technique && d.Plan.voter_proc = p)))
    plan.Plan.decisions

let drop_proc (sys : Gen.system) p =
  let arch = sys.Gen.arch and plan = sys.Gen.plan in
  if Arch.n_procs arch < 2 || proc_used plan p then None
  else begin
    let remap q = if q < p then q else q - 1 in
    Option.bind
      (try_make (fun () ->
           let procs =
             Array.of_list
               (List.filter_map
                  (fun (pr : Proc.t) ->
                    if pr.Proc.id = p then None
                    else
                      Some
                        (Proc.make ~proc_type:pr.Proc.proc_type
                           ~static_power:pr.Proc.static_power
                           ~dynamic_power:pr.Proc.dynamic_power
                           ~fault_rate:pr.Proc.fault_rate
                           ~speed:pr.Proc.speed ~policy:pr.Proc.policy
                           ~id:(remap pr.Proc.id) ~name:pr.Proc.name ()))
                  (Array.to_list arch.Arch.procs)) in
           Arch.make ~interconnect:arch.Arch.interconnect procs))
      (fun arch' ->
        let decisions =
          Array.map
            (Array.map (fun (d : Plan.decision) ->
                 let primary = remap d.Plan.primary_proc in
                 { d with
                   Plan.primary_proc = primary;
                   replica_procs = Array.map remap d.Plan.replica_procs;
                   voter_proc =
                     (if d.Plan.voter_proc = p then primary
                      else remap d.Plan.voter_proc) }))
            plan.Plan.decisions in
        Option.map
          (fun sys' -> { sys' with Gen.arch = arch' })
          (rebuild sys sys.Gen.apps decisions
             (Array.copy plan.Plan.dropped)))
  end

(* ------------------------------------------------------------------ *)
(* Plan simplifications *)

let undrop (sys : Gen.system) g =
  if not sys.Gen.plan.Plan.dropped.(g) then None
  else
    Some
      { sys with Gen.plan = Plan.with_dropped sys.Gen.plan ~graph:g false }

let unharden (sys : Gen.system) g t =
  let d = Plan.decision sys.Gen.plan ~graph:g ~task:t in
  match d.Plan.technique with
  | Technique.No_hardening -> None
  | Technique.Re_execution _ | Technique.Checkpointing _
  | Technique.Active_replication _ | Technique.Passive_replication _ ->
    let d' =
      { Plan.technique = Technique.No_hardening;
        primary_proc = d.Plan.primary_proc;
        replica_procs = [||];
        voter_proc = d.Plan.primary_proc } in
    Some
      { sys with
        Gen.plan = Plan.with_decision sys.Gen.plan ~graph:g ~task:t d' }

let weaken (sys : Gen.system) g t =
  let d = Plan.decision sys.Gen.plan ~graph:g ~task:t in
  let set d' =
    Some
      { sys with
        Gen.plan = Plan.with_decision sys.Gen.plan ~graph:g ~task:t d' } in
  match d.Plan.technique with
  | Technique.No_hardening -> None
  | Technique.Re_execution k ->
    if k <= 1 then None
    else set { d with Plan.technique = Technique.re_execution (k - 1) }
  | Technique.Checkpointing (segments, k) ->
    if k > 1 then
      set
        { d with
          Plan.technique = Technique.checkpointing ~segments ~k:(k - 1) }
    else if segments > 1 then
      set
        { d with
          Plan.technique = Technique.checkpointing ~segments:(segments - 1)
              ~k }
    else None
  | Technique.Active_replication n ->
    if n <= 2 then None
    else
      set
        { d with
          Plan.technique = Technique.active_replication (n - 1);
          replica_procs = Array.sub d.Plan.replica_procs 0 (n - 2) }
  | Technique.Passive_replication m ->
    if m <= 1 then None
    else
      set
        { d with
          Plan.technique = Technique.passive_replication (m - 1);
          replica_procs = Array.sub d.Plan.replica_procs 0 m }

(* ------------------------------------------------------------------ *)
(* Numeric shrinks *)

let shrink_wcet sys g t =
  let tk = Graph.task (Appset.graph sys.Gen.apps g) t in
  let target = max tk.Task.bcet (max 1 (tk.Task.wcet / 2)) in
  if target >= tk.Task.wcet then None
  else
    with_task sys g t
      (remake_task tk ~wcet:target ~bcet:tk.Task.bcet
         ~detect:tk.Task.detection_overhead ~vote:tk.Task.voting_overhead)

let shrink_bcet sys g t =
  let tk = Graph.task (Appset.graph sys.Gen.apps g) t in
  if tk.Task.bcet = 0 then None
  else
    with_task sys g t
      (remake_task tk ~wcet:tk.Task.wcet ~bcet:(tk.Task.bcet / 2)
         ~detect:tk.Task.detection_overhead ~vote:tk.Task.voting_overhead)

let zero_overheads sys g t =
  let tk = Graph.task (Appset.graph sys.Gen.apps g) t in
  if tk.Task.detection_overhead = 0 && tk.Task.voting_overhead = 0 then None
  else
    with_task sys g t
      (remake_task tk ~wcet:tk.Task.wcet ~bcet:tk.Task.bcet ~detect:0
         ~vote:0)

let remove_channel sys g c =
  let graph = Appset.graph sys.Gen.apps g in
  let channels =
    Array.of_list
      (List.filteri (fun i _ -> i <> c) (Array.to_list graph.Graph.channels))
  in
  Option.bind
    (try_make (fun () ->
         Graph.make ~deadline:graph.Graph.deadline ~name:graph.Graph.name
           ~tasks:graph.Graph.tasks ~channels ~period:graph.Graph.period
           ~criticality:graph.Graph.criticality ()))
    (with_graph sys g)

let zero_channel_size sys g c =
  let graph = Appset.graph sys.Gen.apps g in
  let ch = graph.Graph.channels.(c) in
  if ch.Channel.size = 0 then None
  else begin
    let channels =
      Array.mapi
        (fun i (x : Channel.t) ->
          if i <> c then x
          else Channel.make ~src:x.Channel.src ~dst:x.Channel.dst ~size:0 ())
        graph.Graph.channels in
    Option.bind
      (try_make (fun () ->
           Graph.make ~deadline:graph.Graph.deadline ~name:graph.Graph.name
             ~tasks:graph.Graph.tasks ~channels ~period:graph.Graph.period
             ~criticality:graph.Graph.criticality ()))
      (with_graph sys g)
  end

(* Zero every fixed latency component of the interconnect (bus
   latency, or mesh hop + router latencies), keeping the bandwidth. *)
let zero_comm_latency (sys : Gen.system) =
  let arch = sys.Gen.arch in
  let zeroed =
    match arch.Arch.interconnect with
    | Interconnect.Bus { bandwidth; latency } ->
      if latency = 0 then None
      else Some (Interconnect.Bus { bandwidth; latency = 0 })
    | Interconnect.Noc
        { cols; rows; link_bandwidth; hop_latency; router_latency } ->
      if hop_latency = 0 && router_latency = 0 then None
      else
        Some
          (Interconnect.Noc
             { cols; rows; link_bandwidth; hop_latency = 0;
               router_latency = 0 }) in
  Option.bind zeroed (fun interconnect ->
      Option.map
        (fun arch' -> { sys with Gen.arch = arch' })
        (try_make (fun () ->
             Arch.make ~interconnect arch.Arch.procs)))

(* ------------------------------------------------------------------ *)

let candidates (sys : Gen.system) =
  let acc = ref [] in
  let add o = match o with Some s -> acc := s :: !acc | None -> () in
  let apps = sys.Gen.apps in
  let each_graph f =
    for g = 0 to Appset.n_graphs apps - 1 do f g done in
  let each_task f =
    each_graph (fun g ->
        for t = 0 to Graph.n_tasks (Appset.graph apps g) - 1 do f g t done)
  in
  let each_channel f =
    each_graph (fun g ->
        let n = Array.length (Appset.graph apps g).Graph.channels in
        for c = 0 to n - 1 do f g c done) in
  (* biggest structural steps first, numeric polish last *)
  each_graph (fun g -> add (drop_graph sys g));
  each_task (fun g t -> add (drop_task sys g t));
  for p = 0 to Arch.n_procs sys.Gen.arch - 1 do
    add (drop_proc sys p)
  done;
  each_graph (fun g -> add (undrop sys g));
  each_task (fun g t -> add (unharden sys g t));
  each_task (fun g t -> add (weaken sys g t));
  each_channel (fun g c -> add (remove_channel sys g c));
  each_task (fun g t -> add (shrink_wcet sys g t));
  each_task (fun g t -> add (shrink_bcet sys g t));
  each_task (fun g t -> add (zero_overheads sys g t));
  each_channel (fun g c -> add (zero_channel_size sys g c));
  add (zero_comm_latency sys);
  List.rev !acc

type stats = { evaluations : int; steps : int }

(* [failing] must hold on [sys]; returns a locally-minimal system on
   which it still holds, and how much work that took. *)
let minimize ?(budget = 500) ~failing sys =
  let evaluations = ref 0 and steps = ref 0 in
  let fails s =
    !evaluations < budget
    && begin
      incr evaluations;
      match failing s with b -> b | exception _ -> false
    end in
  let rec loop sys =
    match List.find_opt fails (candidates sys) with
    | Some smaller ->
      incr steps;
      loop smaller
    | None -> sys in
  let result = loop sys in
  (result, { evaluations = !evaluations; steps = !steps })
