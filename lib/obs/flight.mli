(** Flight recorder: a bounded per-domain ring buffer of recent
    structured events (span open/close, cache decisions, verdict flips),
    dumped as an s-expression when something fails so a crash report
    carries context instead of just a seed.

    The recorder is independent of the metrics registry in {!Obs}: it
    has its own arming flag and its own storage, so the two can be
    enabled separately ([--metrics] without a flight ring, or a flight
    ring with metrics off). {!Obs.with_span} feeds span open/close
    events into an armed ring automatically.

    {1 Cost}

    A disarmed {!record} is a single atomic load and branch. An armed
    one writes one record into a preallocated ring slot — no per-event
    allocation beyond the record itself, no locks (each domain owns its
    ring through domain-local storage). When the ring wraps, the oldest
    events are silently overwritten; {!dropped} counts them.

    [arm]/[reset]/[events] must be called from the main domain while no
    worker domains are recording. *)

type kind =
  | Span_open  (** [a] unused *)
  | Span_close  (** [a] = duration in ns (clamped to int) *)
  | Cache_hit
  | Cache_miss
  | Cache_evict
  | Cache_collision
  | Verdict_flip  (** [a] = new verdict (1 = ok), [b] = previous *)
  | Note

type event = {
  seq : int;  (** per-domain recording order *)
  ts_ns : int64;  (** raw monotonic clock *)
  tid : int;  (** recording domain's id *)
  kind : kind;
  name : string;
  a : int;  (** kind-specific payload *)
  b : int;
}

(** {1 Control} *)

val armed : unit -> bool

val arm : ?capacity:int -> unit -> unit
(** Start recording. [capacity] (default 512, persists across calls)
    bounds each domain's ring; it takes effect for rings created after
    the call. @raise Invalid_argument on capacity < 1. *)

val disarm : unit -> unit

val reset : unit -> unit
(** Drop every ring's recorded events. *)

val capacity : unit -> int

(** {1 Recording} *)

val record : ?a:int -> ?b:int -> kind -> string -> unit
(** Append one event to the current domain's ring (no-op when
    disarmed). *)

(** {1 Draining} *)

val events : unit -> event list
(** All surviving events across domains, oldest first (sorted by
    timestamp, then domain id, then per-domain order). *)

val dropped : unit -> int
(** Events overwritten by ring wraparound, summed across domains. *)

val to_sexp : unit -> Mcmap_util.Sexp.t
(** [(flight (capacity N) (dropped M) (event (seq ...) ...) ...)]. *)

val of_sexp : Mcmap_util.Sexp.t -> (event list, string) result
(** Parse a {!to_sexp} dump back into its event list. *)

val dump_string : unit -> string

val dump : string -> unit
(** Write the dump to a file. *)

val kind_to_string : kind -> string

(** {1 Crash handlers} *)

val install_crash_handlers : ?path:string -> unit -> unit
(** Install an uncaught-exception handler and SIGTERM/SIGINT handlers
    that write the dump to [path] (default: stderr) before the process
    dies — only when the recorder is armed at that moment. The
    exception handler chains to the default one (message + backtrace,
    exit 2); the signal handlers exit with the conventional 128+signo
    codes. *)
