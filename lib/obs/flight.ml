module Sexp = Mcmap_util.Sexp

(* Flight recorder: a bounded per-domain ring of recent structured
   events, kept alongside (but independent of) the metrics registry in
   [Obs]. Recording is gated on one atomic flag ([armed]); a disarmed
   call is a load-and-branch, and an armed one writes a single record
   into a preallocated ring slot — near-no-op in steady state. The ring
   only surfaces when something goes wrong: the CLI dumps it on oracle
   failure, uncaught exception or a termination signal, so a crash
   report carries the last few hundred spans / cache decisions /
   verdict flips instead of just a seed. *)

type kind =
  | Span_open
  | Span_close
  | Cache_hit
  | Cache_miss
  | Cache_evict
  | Cache_collision
  | Verdict_flip
  | Note

let kind_to_string = function
  | Span_open -> "span-open"
  | Span_close -> "span-close"
  | Cache_hit -> "cache-hit"
  | Cache_miss -> "cache-miss"
  | Cache_evict -> "cache-evict"
  | Cache_collision -> "cache-collision"
  | Verdict_flip -> "verdict-flip"
  | Note -> "note"

let kind_of_string = function
  | "span-open" -> Some Span_open
  | "span-close" -> Some Span_close
  | "cache-hit" -> Some Cache_hit
  | "cache-miss" -> Some Cache_miss
  | "cache-evict" -> Some Cache_evict
  | "cache-collision" -> Some Cache_collision
  | "verdict-flip" -> Some Verdict_flip
  | "note" -> Some Note
  | _ -> None

type event = {
  seq : int;  (* per-domain recording order *)
  ts_ns : int64;
  tid : int;
  kind : kind;
  name : string;
  a : int;
  b : int;
}

(* ------------------------------------------------------------------ *)
(* Per-domain rings. The registration protocol mirrors [Obs]: each
   domain owns its ring through DLS, rings register themselves in a
   global list on first armed use, and a generation counter lets
   [reset] invalidate every ring without reaching into other domains'
   storage. *)

type ring = {
  tid : int;
  mutable gen : int;
  mutable slots : event array;  (* length = capacity once armed *)
  mutable next : int;  (* next write position *)
  mutable total : int;  (* events ever recorded into this ring *)
}

let armed_flag = Atomic.make false

let capacity_ref = Atomic.make 512

let generation = Atomic.make 0

let registry = ref ([] : ring list)

let registry_mutex = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      { tid = (Domain.self () :> int); gen = -1; slots = [||]; next = 0;
        total = 0 })

let dummy_event =
  { seq = 0; ts_ns = 0L; tid = 0; kind = Note; name = ""; a = 0; b = 0 }

let ring () =
  let r = Domain.DLS.get dls_key in
  let g = Atomic.get generation in
  if r.gen <> g then begin
    r.slots <- Array.make (Atomic.get capacity_ref) dummy_event;
    r.next <- 0;
    r.total <- 0;
    r.gen <- g;
    Mutex.protect registry_mutex (fun () -> registry := r :: !registry)
  end;
  r

let armed () = Atomic.get armed_flag

let capacity () = Atomic.get capacity_ref

let now_ns () = Monotonic_clock.now ()

let arm ?capacity () =
  (match capacity with
   | Some c ->
     if c < 1 then invalid_arg "Flight.arm: capacity < 1";
     Atomic.set capacity_ref c
   | None -> ());
  Atomic.set armed_flag true

let disarm () = Atomic.set armed_flag false

let reset () =
  Mutex.protect registry_mutex (fun () -> registry := []);
  Atomic.incr generation

let record ?(a = 0) ?(b = 0) kind name =
  if armed () then begin
    let r = ring () in
    let cap = Array.length r.slots in
    r.slots.(r.next) <-
      { seq = r.total; ts_ns = now_ns (); tid = r.tid; kind; name; a; b };
    r.next <- (r.next + 1) mod cap;
    r.total <- r.total + 1
  end

(* ------------------------------------------------------------------ *)
(* Draining *)

let ring_events r =
  let cap = Array.length r.slots in
  let kept = min r.total cap in
  (* Oldest surviving event first: when the ring wrapped, it sits at
     [next]; before wrapping, at 0. *)
  let start = if r.total > cap then r.next else 0 in
  List.init kept (fun i -> r.slots.((start + i) mod cap))

(* Like [Obs.snapshot], draining is meant for the main domain while no
   worker records; rings of joined workers are still merged. *)
let events () =
  let rings = Mutex.protect registry_mutex (fun () -> !registry) in
  List.concat_map ring_events rings
  |> List.sort (fun x y -> compare (x.ts_ns, x.tid, x.seq) (y.ts_ns, y.tid, y.seq))

let dropped () =
  let rings = Mutex.protect registry_mutex (fun () -> !registry) in
  List.fold_left
    (fun acc r -> acc + max 0 (r.total - Array.length r.slots))
    0 rings

(* ------------------------------------------------------------------ *)
(* Sexp dump *)

let event_to_sexp e =
  let open Sexp in
  let f key v = List [ Atom key; Atom v ] in
  List
    [ Atom "event"; f "seq" (string_of_int e.seq);
      f "ts_ns" (Int64.to_string e.ts_ns); f "tid" (string_of_int e.tid);
      f "kind" (kind_to_string e.kind); f "name" e.name;
      f "a" (string_of_int e.a); f "b" (string_of_int e.b) ]

let to_sexp () =
  let open Sexp in
  let evs = events () in
  List
    (Atom "flight"
     :: List [ Atom "capacity"; Atom (string_of_int (capacity ())) ]
     :: List [ Atom "dropped"; Atom (string_of_int (dropped ())) ]
     :: List.map event_to_sexp evs)

let event_of_sexp sexp =
  let open Sexp in
  let ( let* ) = Result.bind in
  match sexp with
  | List (Atom "event" :: fields) ->
    let* seq = assoc_int "seq" fields in
    let* ts =
      match assoc "ts_ns" fields with
      | Some [ Atom a ] ->
        (match Int64.of_string_opt a with
         | Some v -> Ok v
         | None -> Error ("ts_ns: not an int64: " ^ a))
      | Some _ | None -> Error "ts_ns: missing" in
    let* tid = assoc_int "tid" fields in
    let* kind =
      let* k = assoc_atom "kind" fields in
      match kind_of_string k with
      | Some kind -> Ok kind
      | None -> Error ("unknown event kind " ^ k) in
    let* name = assoc_atom "name" fields in
    let* a = assoc_int "a" fields in
    let* b = assoc_int "b" fields in
    Ok { seq; ts_ns = ts; tid; kind; name; a; b }
  | List _ | Atom _ -> Error "expected an (event ...) entry"

let of_sexp sexp =
  let ( let* ) = Result.bind in
  match sexp with
  | Sexp.List (Sexp.Atom "flight" :: entries) ->
    let entries =
      List.filter
        (function
          | Sexp.List (Sexp.Atom ("capacity" | "dropped") :: _) -> false
          | _ -> true)
        entries in
    List.fold_left
      (fun acc e ->
        let* evs = acc in
        let* ev = event_of_sexp e in
        Ok (ev :: evs))
      (Ok []) entries
    |> Result.map List.rev
  | Sexp.List _ | Sexp.Atom _ -> Error "expected (flight ...)"

let dump_string () = Sexp.to_string (to_sexp ()) ^ "\n"

let dump path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump_string ()))

(* ------------------------------------------------------------------ *)
(* Crash handlers: make the ring surface when the process dies badly.
   [emit] is idempotent-ish by design (a second dump overwrites the
   first with a superset of its events). *)

let emit_on ~path reason =
  if armed () then begin
    match path with
    | Some p ->
      (try
         dump p;
         Printf.eprintf "flight recorder dumped to %s (%s)\n%!" p reason
       with Sys_error e ->
         Printf.eprintf "flight recorder dump failed: %s\n%!" e)
    | None ->
      prerr_string (dump_string ());
      Printf.eprintf "(flight recorder dump: %s)\n%!" reason
  end

let install_crash_handlers ?path () =
  (* An uncaught exception unwinds past every [with_span]: the ring holds
     the closest context there is to a stack trace of the analysis. *)
  Printexc.set_uncaught_exception_handler (fun e bt ->
      emit_on ~path "uncaught exception";
      Printexc.default_uncaught_exception_handler e bt);
  let terminate signal name code =
    (try
       Sys.set_signal signal
         (Sys.Signal_handle
            (fun _ ->
              emit_on ~path ("fatal signal " ^ name);
              exit code))
     with Invalid_argument _ | Sys_error _ -> ()) in
  terminate Sys.sigterm "SIGTERM" 143;
  terminate Sys.sigint "SIGINT" 130
