(** Zero-dependency observability: a metrics registry (counters, gauges,
    log-bucket histograms, integer-indexed series), lightweight nested
    spans on the monotonic clock, and exporters (s-expression metrics
    dump, Chrome trace-event JSON).

    {1 Labels}

    Every recording call takes an optional [?label] that adds one cheap
    attribution dimension: [incr ~label:"hit" "evaluator.result"]
    records under the derived key ["evaluator.result~hit"]. The derived
    key is an ordinary metric name — merges, exports and [mcmap stats]
    need no special handling — and it is built only on the enabled
    path, so a disabled labelled call costs exactly one load-and-branch.
    By convention labels are short enum-like atoms (["hit"], ["miss"],
    ["evict"], ["g3"]); the ['~'] separator never appears in unlabelled
    metric names.

    {1 Domain safety}

    Every domain records into a private buffer reached through
    domain-local storage, so workers spawned by
    {!Mcmap_util.Parallel.map_array} never contend on a lock in the
    recording fast path. {!snapshot} merges all buffers (including
    those of already-joined workers) with commutative and associative
    per-kind merges — counters add, histograms merge pointwise, series
    concatenate and sort, gauges take the maximum — so the merged
    metrics are identical whether the work ran on 1 or N domains
    (provided the recorded multiset of observations is itself
    deterministic, which pure parallel evaluation guarantees).

    {1 Cost when disabled}

    Recording is globally gated on one atomic flag (off by default);
    a disabled call is a single load-and-branch, and instrumented hot
    loops are expected to hoist [enabled ()] into a local so the
    per-iteration cost is a predictable branch on an immutable bool.

    [enable]/[reset]/[snapshot] must be called from the main domain
    while no worker domains are running. *)

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.t
  | Series of (int * float) list
      (** [(x, value)] points sorted by [x] after {!snapshot} *)

type span = {
  name : string;
  tid : int;  (** recording domain's id *)
  depth : int;  (** nesting depth within its domain, outermost = 0 *)
  ts_ns : int64;  (** start, relative to the {!enable}/{!reset} epoch *)
  dur_ns : int64;
}

type snapshot = {
  metrics : (string * metric) list;  (** sorted by name *)
  spans : span list;  (** sorted by start time *)
}

(** {1 Control} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Start recording (and set the span epoch if recording was off). *)

val disable : unit -> unit
(** Stop recording; already-recorded data remains until {!reset}. *)

val reset : unit -> unit
(** Drop all recorded data and restart the span epoch. *)

val now_ns : unit -> int64
(** The raw monotonic clock (for callers timing their own series). *)

val series_capacity : unit -> int

val set_series_capacity : int -> unit
(** Bound per-series retention (default 4096 points): each domain
    tail-keeps at most that many points per series, and {!snapshot}
    re-applies the cap to the merged, x-sorted result. Takes effect for
    subsequent appends. @raise Invalid_argument on capacity < 1. *)

(** {1 Recording} *)

val incr : ?by:int -> ?label:string -> string -> unit
(** Add to a counter (default 1). *)

val gauge : ?label:string -> string -> float -> unit
(** Set a gauge (last write per domain wins; domains merge by max). *)

val observe : ?label:string -> string -> int -> unit
(** Add one observation to a histogram. *)

val series : ?label:string -> string -> x:int -> float -> unit
(** Append an [(x, value)] point to a series. Series keep at most
    {!series_capacity} points (newest survive). *)

val with_span : string -> (unit -> 'a) -> 'a
(** Time [f] as a span (recorded when [f] returns or raises). When the
    {!Flight} recorder is armed, span open/close events are fed into
    its ring as well. When neither recorder is on this is exactly
    [f ()]. *)

(** {1 Export} *)

val snapshot : unit -> snapshot
(** Merge every domain's buffer into one consistent view. *)

val metrics_to_sexp : snapshot -> Mcmap_util.Sexp.t
(** [(metrics (counter (name ...) (value ...)) ...)] — the format
    [mcmap stats] pretty-prints. *)

val metrics_of_sexp : Mcmap_util.Sexp.t -> (snapshot, string) result
(** Parse a {!metrics_to_sexp} dump ([spans] comes back empty). *)

val trace_to_json : snapshot -> Mcmap_util.Json.t
(** Chrome trace-event JSON (complete "X" events, microsecond
    timestamps) — loadable in chrome://tracing or Perfetto. *)

val write_metrics : ?snapshot:snapshot -> string -> unit
(** Write the s-expression metrics dump to a file (defaults to a fresh
    {!snapshot}). *)

val write_trace : ?snapshot:snapshot -> string -> unit
(** Write the Chrome trace JSON to a file. *)
