(** Integer histograms with fixed log2-scale buckets.

    Bucket 0 holds values [<= 0]; bucket [i >= 1] holds
    [\[2^(i-1), 2^i - 1\]]. The bucket layout is the same for every
    histogram, so {!merge} is pointwise — associative and commutative,
    which is what makes per-domain recording deterministic: merging N
    worker histograms in any order equals one histogram fed all
    observations. *)

type t = {
  mutable count : int;
  mutable sum : int;
  mutable minimum : int;  (** [max_int] when empty *)
  mutable maximum : int;  (** [min_int] when empty *)
  buckets : int array;  (** length {!n_buckets} *)
}

val n_buckets : int

val create : unit -> t

val copy : t -> t

val is_empty : t -> bool

val bucket_of : int -> int
(** The bucket index a value falls into. *)

val upper_bound_of : int -> int
(** Largest value of bucket [i] ([max_int] for the last bucket). *)

val observe : t -> int -> unit

val merge : t -> t -> t
(** Fresh histogram with the pointwise combination of both inputs. *)

val equal : t -> t -> bool

val mean : t -> float
(** 0 when empty. *)

val quantile : t -> float -> int
(** [quantile h q] with [q] in [\[0, 1\]]: an upper estimate from the
    bucket upper bounds, clamped to the recorded maximum.
    @raise Invalid_argument when empty or [q] is out of range. *)
