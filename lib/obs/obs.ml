module Sexp = Mcmap_util.Sexp
module Json = Mcmap_util.Json

(* ------------------------------------------------------------------ *)
(* Public snapshot types *)

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.t
  | Series of (int * float) list

type span = {
  name : string;
  tid : int;
  depth : int;
  ts_ns : int64;
  dur_ns : int64;
}

type snapshot = {
  metrics : (string * metric) list;
  spans : span list;
}

(* ------------------------------------------------------------------ *)
(* Per-domain buffers

   Every domain records into its own buffer (reached through
   domain-local storage), so workers spawned by [Parallel.map_array]
   never contend on a lock in the recording fast path. Buffers register
   themselves in a global list on first use; [snapshot] merges them
   with the commutative, associative per-kind merges below, which is
   why the merged metrics are identical for 1 and N domains. A
   [generation] counter lets [reset] invalidate every buffer without
   reaching into other domains' storage: a buffer lazily clears and
   re-registers itself when it notices its generation is stale. *)

type series_cell = {
  mutable pts : (int * float) list;  (* newest first *)
  mutable len : int;
}

type cell =
  | Ccounter of int ref
  | Cgauge of float ref
  | Chist of Histogram.t
  | Cseries of series_cell

type buffer = {
  tid : int;
  mutable gen : int;
  cells : (string, cell) Hashtbl.t;
  mutable spans : span list;
  mutable stack_depth : int;
}

let enabled_flag = Atomic.make false

let generation = Atomic.make 0

let epoch = Atomic.make 0L

let registry = ref ([] : buffer list)

let registry_mutex = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      { tid = (Domain.self () :> int); gen = -1; cells = Hashtbl.create 32;
        spans = []; stack_depth = 0 })

let buffer () =
  let b = Domain.DLS.get dls_key in
  let g = Atomic.get generation in
  if b.gen <> g then begin
    Hashtbl.reset b.cells;
    b.spans <- [];
    b.stack_depth <- 0;
    b.gen <- g;
    Mutex.protect registry_mutex (fun () -> registry := b :: !registry)
  end;
  b

let enabled () = Atomic.get enabled_flag

let now_ns () = Monotonic_clock.now ()

(* Series retention: [dse.eval_ms] and friends append one point per
   observation, which on long GA runs would bloat the buffers and every
   export. Each domain keeps at most [series_capacity] points per
   series (tail-keep: newest survive), and [snapshot] applies the same
   cap again to the merged, x-sorted result. *)
let series_capacity_ref = Atomic.make 4096

let series_capacity () = Atomic.get series_capacity_ref

let set_series_capacity n =
  if n < 1 then invalid_arg "Obs.set_series_capacity: capacity < 1";
  Atomic.set series_capacity_ref n

let enable () =
  if not (Atomic.get enabled_flag) then begin
    Atomic.set epoch (now_ns ());
    Atomic.set enabled_flag true
  end

let disable () = Atomic.set enabled_flag false

let reset () =
  Mutex.protect registry_mutex (fun () -> registry := []);
  Atomic.incr generation;
  Atomic.set epoch (now_ns ())

(* ------------------------------------------------------------------ *)
(* Recording *)

let kind_error name kind =
  invalid_arg
    (Printf.sprintf "Obs: metric %s already recorded as a %s" name kind)

(* The label dimension: [incr ~label:"hit" "evaluator.result"] records
   under the derived key "evaluator.result~hit". The key is built only
   on the enabled path, so a disabled labelled call costs the same
   load-and-branch as an unlabelled one. *)
let keyed name label =
  match label with None -> name | Some l -> name ^ "~" ^ l

let incr ?(by = 1) ?label name =
  if enabled () then begin
    let name = keyed name label in
    let b = buffer () in
    match Hashtbl.find_opt b.cells name with
    | Some (Ccounter r) -> r := !r + by
    | Some _ -> kind_error name "different kind"
    | None -> Hashtbl.add b.cells name (Ccounter (ref by))
  end

let gauge ?label name v =
  if enabled () then begin
    let name = keyed name label in
    let b = buffer () in
    match Hashtbl.find_opt b.cells name with
    | Some (Cgauge r) -> r := v
    | Some _ -> kind_error name "different kind"
    | None -> Hashtbl.add b.cells name (Cgauge (ref v))
  end

let observe ?label name v =
  if enabled () then begin
    let name = keyed name label in
    let b = buffer () in
    match Hashtbl.find_opt b.cells name with
    | Some (Chist h) -> Histogram.observe h v
    | Some _ -> kind_error name "different kind"
    | None ->
      let h = Histogram.create () in
      Histogram.observe h v;
      Hashtbl.add b.cells name (Chist h)
  end

(* Tail-keep with amortised O(1) appends: let the list grow to twice the
   cap, then truncate back to the newest [cap] points. *)
let series_append c x v =
  c.pts <- (x, v) :: c.pts;
  c.len <- c.len + 1;
  let cap = series_capacity () in
  if c.len >= 2 * cap then begin
    c.pts <- List.filteri (fun i _ -> i < cap) c.pts;
    c.len <- cap
  end

let series ?label name ~x v =
  if enabled () then begin
    let name = keyed name label in
    let b = buffer () in
    match Hashtbl.find_opt b.cells name with
    | Some (Cseries c) -> series_append c x v
    | Some _ -> kind_error name "different kind"
    | None -> Hashtbl.add b.cells name (Cseries { pts = [ (x, v) ]; len = 1 })
  end

let with_span name f =
  let obs_on = enabled () in
  let flight_on = Flight.armed () in
  if not (obs_on || flight_on) then f ()
  else begin
    let b = if obs_on then Some (buffer ()) else None in
    let depth =
      match b with
      | Some b ->
        let d = b.stack_depth in
        b.stack_depth <- d + 1;
        d
      | None -> 0 in
    if flight_on then Flight.record Span_open name;
    let t0 = now_ns () in
    let finish () =
      let t1 = now_ns () in
      if flight_on then
        Flight.record ~a:(Int64.to_int (Int64.sub t1 t0)) Span_close name;
      match b with
      | None -> ()
      | Some b ->
        (* same domain: [f] cannot migrate the current domain *)
        b.stack_depth <- depth;
        b.spans <-
          { name; tid = b.tid; depth;
            ts_ns = Int64.sub t0 (Atomic.get epoch);
            dur_ns = Int64.sub t1 t0 }
          :: b.spans in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Snapshot (merge across domains) *)

let merge_metric name a b =
  match a, b with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (Float.max x y)
  | Histogram x, Histogram y -> Histogram (Histogram.merge x y)
  | Series x, Series y -> Series (x @ y)
  | (Counter _ | Gauge _ | Histogram _ | Series _), _ ->
    kind_error name "different kind in another domain"

let metric_of_cell = function
  | Ccounter r -> Counter !r
  | Cgauge r -> Gauge !r
  | Chist h -> Histogram (Histogram.copy h)
  | Cseries c -> Series c.pts

(* Snapshots must be taken from the main domain while no worker is
   recording (i.e. outside [Parallel.map_array] sections) — buffers of
   joined workers are still merged, live writers are not synchronised
   against. *)
let snapshot () =
  let buffers = Mutex.protect registry_mutex (fun () -> !registry) in
  let merged : (string, metric) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name cell ->
          let m = metric_of_cell cell in
          match Hashtbl.find_opt merged name with
          | None -> Hashtbl.replace merged name m
          | Some prev -> Hashtbl.replace merged name (merge_metric name prev m))
        b.cells)
    buffers;
  let metrics =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) merged []
    |> List.map (fun (name, m) ->
           match m with
           | Series points ->
             let points = List.sort compare points in
             (* Re-apply the retention cap to the merged series: keep
                the last [series_capacity] points by x, so the merged
                view obeys the same bound as any single domain. *)
             let cap = series_capacity () in
             let n = List.length points in
             let points =
               if n <= cap then points
               else List.filteri (fun i _ -> i >= n - cap) points in
             (name, Series points)
           | Counter _ | Gauge _ | Histogram _ -> (name, m))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b) in
  let spans =
    List.concat_map (fun b -> b.spans) buffers
    |> List.sort (fun a b ->
           compare (a.ts_ns, a.tid, a.depth) (b.ts_ns, b.tid, b.depth)) in
  { metrics; spans }

(* ------------------------------------------------------------------ *)
(* S-expression metrics dump *)

let float_atom f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else begin
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let metrics_to_sexp snap =
  let open Sexp in
  let field key atoms = List (Atom key :: atoms) in
  let int_field key v = field key [ Atom (string_of_int v) ] in
  let entry = function
    | name, Counter v ->
      List [ Atom "counter"; field "name" [ Atom name ]; int_field "value" v ]
    | name, Gauge v ->
      List
        [ Atom "gauge"; field "name" [ Atom name ];
          field "value" [ Atom (float_atom v) ] ]
    | name, Histogram h ->
      let buckets =
        Array.to_list h.Histogram.buckets
        |> List.mapi (fun i c -> (i, c))
        |> List.filter (fun (_, c) -> c > 0)
        |> List.map (fun (i, c) ->
               List [ Atom (string_of_int i); Atom (string_of_int c) ]) in
      List
        [ Atom "histogram"; field "name" [ Atom name ];
          int_field "count" h.Histogram.count; int_field "sum" h.Histogram.sum;
          int_field "min" (if Histogram.is_empty h then 0 else h.Histogram.minimum);
          int_field "max" (if Histogram.is_empty h then 0 else h.Histogram.maximum);
          field "buckets" buckets ]
    | name, Series points ->
      List
        [ Atom "series"; field "name" [ Atom name ];
          field "points"
            (List.map
               (fun (x, v) ->
                 List [ Atom (string_of_int x); Atom (float_atom v) ])
               points) ] in
  List (Atom "metrics" :: List.map entry snap.metrics)

let metrics_of_sexp sexp =
  let open Sexp in
  let ( let* ) = Result.bind in
  let int_atom what = function
    | Atom a ->
      (match int_of_string_opt a with
       | Some i -> Ok i
       | None -> Error (what ^ ": expected an integer, got " ^ a))
    | List _ -> Error (what ^ ": expected an integer atom") in
  let float_atom' what = function
    | Atom a ->
      (match float_of_string_opt a with
       | Some f -> Ok f
       | None -> Error (what ^ ": expected a number, got " ^ a))
    | List _ -> Error (what ^ ": expected a number atom") in
  let pair conv = function
    | List [ a; b ] ->
      let* x = int_atom "pair key" a in
      let* y = conv "pair value" b in
      Ok (x, y)
    | List _ | Atom _ -> Error "expected a (key value) pair" in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | entry :: rest ->
      (match entry with
       | List (Atom kind :: fields) ->
         let* name = assoc_atom "name" fields in
         let* metric =
           (match kind with
            | "counter" ->
              let* v = assoc_int "value" fields in
              Ok (Counter v)
            | "gauge" ->
              let* v = assoc_float "value" fields in
              Ok (Gauge v)
            | "histogram" ->
              let* count = assoc_int "count" fields in
              let* sum = assoc_int "sum" fields in
              let* minimum = assoc_int "min" fields in
              let* maximum = assoc_int "max" fields in
              let h = Histogram.create () in
              h.Histogram.count <- count;
              h.Histogram.sum <- sum;
              h.Histogram.minimum <- (if count = 0 then max_int else minimum);
              h.Histogram.maximum <- (if count = 0 then min_int else maximum);
              let buckets =
                match assoc "buckets" fields with
                | Some items -> items
                | None -> [] in
              let* () =
                List.fold_left
                  (fun acc b ->
                    let* () = acc in
                    let* i, c = pair int_atom b in
                    if i < 0 || i >= Histogram.n_buckets then
                      Error "bucket index out of range"
                    else begin
                      h.Histogram.buckets.(i) <- c;
                      Ok ()
                    end)
                  (Ok ()) buckets in
              Ok (Histogram h)
            | "series" ->
              let points =
                match assoc "points" fields with
                | Some items -> items
                | None -> [] in
              let* points =
                List.fold_left
                  (fun acc p ->
                    let* ps = acc in
                    let* xv = pair float_atom' p in
                    Ok (xv :: ps))
                  (Ok []) points in
              Ok (Series (List.rev points))
            | other -> Error ("unknown metric kind " ^ other)) in
         collect ((name, metric) :: acc) rest
       | List _ | Atom _ -> Error "expected a (kind (name ...) ...) entry") in
  match sexp with
  | List (Atom "metrics" :: entries) ->
    let* metrics = collect [] entries in
    Ok { metrics; spans = [] }
  | List _ | Atom _ -> Error "expected (metrics ...)"

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export *)

let trace_to_json (snap : snapshot) =
  let events =
    List.map
      (fun s ->
        Json.Obj
          [ ("name", Json.String s.name); ("cat", Json.String "mcmap");
            ("ph", Json.String "X"); ("pid", Json.Int 1);
            ("tid", Json.Int s.tid);
            ("ts", Json.Float (Int64.to_float s.ts_ns /. 1e3));
            ("dur", Json.Float (Int64.to_float s.dur_ns /. 1e3)) ])
      snap.spans in
  Json.Obj
    [ ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms") ]

(* ------------------------------------------------------------------ *)
(* File output *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_metrics ?snapshot:snap path =
  let snap = match snap with Some s -> s | None -> snapshot () in
  write_file path (Sexp.to_string (metrics_to_sexp snap) ^ "\n")

let write_trace ?snapshot:snap path =
  let snap = match snap with Some s -> s | None -> snapshot () in
  write_file path (Json.to_string ~minify:true (trace_to_json snap) ^ "\n")
