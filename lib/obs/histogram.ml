(* Fixed log2-scale buckets: bucket 0 holds values <= 0 and bucket i
   (i >= 1) holds [2^(i-1), 2^i - 1], so any OCaml int lands in one of
   [n_buckets] buckets and two histograms always merge pointwise. *)

let n_buckets = 64

type t = {
  mutable count : int;
  mutable sum : int;
  mutable minimum : int;  (* max_int when empty *)
  mutable maximum : int;  (* min_int when empty *)
  buckets : int array;
}

let create () =
  { count = 0; sum = 0; minimum = max_int; maximum = min_int;
    buckets = Array.make n_buckets 0 }

let copy h = { h with buckets = Array.copy h.buckets }

let is_empty h = h.count = 0

let bucket_of v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 and x = ref v in
    while !x <> 0 do
      incr bits;
      x := !x lsr 1
    done;
    !bits
  end

let upper_bound_of i =
  if i = 0 then 0
  else if i >= n_buckets - 1 then max_int
  else (1 lsl i) - 1

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.minimum then h.minimum <- v;
  if v > h.maximum then h.maximum <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let merge a b =
  { count = a.count + b.count;
    sum = a.sum + b.sum;
    minimum = min a.minimum b.minimum;
    maximum = max a.maximum b.maximum;
    buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i)) }

let equal a b =
  a.count = b.count && a.sum = b.sum && a.minimum = b.minimum
  && a.maximum = b.maximum && a.buckets = b.buckets

let mean h = if h.count = 0 then 0. else float_of_int h.sum /. float_of_int h.count

(* Nearest-rank quantile over bucket upper bounds: an upper estimate of
   the true quantile, tightened by the recorded extremes. *)
let quantile h q =
  if h.count = 0 then invalid_arg "Histogram.quantile: empty histogram";
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Histogram.quantile: q outside [0, 1]";
  let rank =
    max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
  let rec find i seen =
    if i >= n_buckets - 1 then h.maximum
    else begin
      let seen = seen + h.buckets.(i) in
      if seen >= rank then min (upper_bound_of i) h.maximum
      else find (i + 1) seen
    end in
  find 0 0
