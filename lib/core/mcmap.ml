(** Umbrella module: the full mcmap API under one namespace.

    {1 Layers}

    - {!Util}: PRNG, heaps, statistics, Pareto helpers.
    - {!Model}: MPSoC architecture and mixed-criticality applications
      (paper §2.1).
    - {!Hardening}: re-execution / replication plans and the hardened
      application transform (§2.2-2.3).
    - {!Reliability}: transient-fault model and the [f_t] constraint.
    - {!Campaign}: sharded, checkpointable fault-injection campaigns
      (rare-event estimation cross-validating {!Reliability}).
    - {!Sched}: jobs, priorities and the best/worst interval backend
      (the [sched] of Algorithm 1).
    - {!Analysis}: Algorithm 1 WCRT analysis and the Naive baseline
      (§3).
    - {!Sim}: fault-injecting discrete-event simulator, Monte-Carlo
      (WC-Sim) and the Adhoc trace (§5.1).
    - {!Dse}: SPEA2 genetic mapping optimisation (§4).
    - {!Benchmarks}: Cruise, DT-med/large, Synth-1/2 (§5).
    - {!Lint}: static semantic analysis of system/plan files with
      stable diagnostic codes ([mcmap lint]).
    - {!Experiments}: runners regenerating every table and figure of the
      evaluation. *)

module Util = struct
  module Prng = Mcmap_util.Prng
  module Mathx = Mcmap_util.Mathx
  module Heap = Mcmap_util.Heap
  module Interval = Mcmap_util.Interval
  module Stats = Mcmap_util.Stats
  module Pareto = Mcmap_util.Pareto
  module Parallel = Mcmap_util.Parallel
  module Fingerprint = Mcmap_util.Fingerprint
  module Lru = Mcmap_util.Lru
  module Bitset = Mcmap_util.Bitset
  module Sexp = Mcmap_util.Sexp
  module Json = Mcmap_util.Json
  module Texttable = Mcmap_util.Texttable
  module Wire = Mcmap_util.Wire
end

(** Observability: metrics, spans, flight recorder and exporters (see
    [lib/obs]). *)
module Obs = struct
  module Histogram = Mcmap_obs.Histogram
  module Recorder = Mcmap_obs.Obs
  module Flight = Mcmap_obs.Flight
end

module Model = struct
  module Proc = Mcmap_model.Proc
  module Arch = Mcmap_model.Arch
  module Criticality = Mcmap_model.Criticality
  module Task = Mcmap_model.Task
  module Channel = Mcmap_model.Channel
  module Graph = Mcmap_model.Graph
  module Appset = Mcmap_model.Appset
end

module Hardening = struct
  module Technique = Mcmap_hardening.Technique
  module Plan = Mcmap_hardening.Plan
  module Happ = Mcmap_hardening.Happ
end

module Reliability = struct
  module Fault_model = Mcmap_reliability.Fault_model
  module Analysis = Mcmap_reliability.Analysis
end

module Campaign = struct
  module Events = Mcmap_campaign.Events
  module Estimator = Mcmap_campaign.Estimator
  module Shard = Mcmap_campaign.Shard
  module Checkpoint = Mcmap_campaign.Checkpoint
  module Aggregate = Mcmap_campaign.Aggregate
  module Campaign = Mcmap_campaign.Campaign
end

module Sched = struct
  module Priority = Mcmap_sched.Priority
  module Job = Mcmap_sched.Job
  module Jobset = Mcmap_sched.Jobset
  module Bounds = Mcmap_sched.Bounds
  module Flat = Mcmap_sched.Flat
  module Static_schedule = Mcmap_sched.Static_schedule
end

module Analysis = struct
  module Verdict = Mcmap_analysis.Verdict
  module Wcrt = Mcmap_analysis.Wcrt
  module Naive = Mcmap_analysis.Naive
end

module Sim = struct
  module Fault_profile = Mcmap_sim.Fault_profile
  module Engine = Mcmap_sim.Engine
  module Monte_carlo = Mcmap_sim.Monte_carlo
  module Adhoc = Mcmap_sim.Adhoc
  module Distribution = Mcmap_sim.Distribution
  module Gantt = Mcmap_sim.Gantt
end

module Dse = struct
  module Genome = Mcmap_dse.Genome
  module Decode = Mcmap_dse.Decode
  module Evaluate = Mcmap_dse.Evaluate
  module Evaluator = Mcmap_dse.Evaluator
  module Spea2 = Mcmap_dse.Spea2
  module Nsga2 = Mcmap_dse.Nsga2
  module Baselines = Mcmap_dse.Baselines
  module Ga = Mcmap_dse.Ga
  module Explore = Mcmap_dse.Explore
end

module Benchmarks = struct
  module Benchmark = Mcmap_benchmarks.Benchmark
  module Builder = Mcmap_benchmarks.Builder
  module Platforms = Mcmap_benchmarks.Platforms
  module Sampler = Mcmap_benchmarks.Sampler
  module Cruise = Mcmap_benchmarks.Cruise
  module Dt = Mcmap_benchmarks.Dt
  module Synth = Mcmap_benchmarks.Synth
  module Registry = Mcmap_benchmarks.Registry
end

module Spec = Mcmap_spec.Spec

(** Located parse stage of the spec format (consumed by {!Lint}). *)
module Spec_ast = Mcmap_spec.Ast

(** Static semantic analysis of systems and plans ([mcmap lint]). *)
module Lint = struct
  module Diagnostic = Mcmap_lint.Diagnostic
  module Lint = Mcmap_lint.Lint
end

(** The [mcmap serve] daemon: a socket server sharing warm evaluator
    sessions across clients (see [lib/serve] and DESIGN.md §14). *)
module Serve = struct
  module Protocol = Mcmap_serve.Protocol
  module Metrics = Mcmap_serve.Metrics
  module Bqueue = Mcmap_serve.Bqueue
  module Pool = Mcmap_serve.Pool
  module Server = Mcmap_serve.Server
  module Client = Mcmap_serve.Client
end

module Experiments = struct
  module Paper = Mcmap_experiments.Paper
  module Table1 = Mcmap_experiments.Table1
  module Table2 = Mcmap_experiments.Table2
  module Dropping = Mcmap_experiments.Dropping
  module Rescue = Mcmap_experiments.Rescue
  module Fig5 = Mcmap_experiments.Fig5
  module Fig1 = Mcmap_experiments.Fig1
  module Sensitivity = Mcmap_experiments.Sensitivity
  module Optimizers = Mcmap_experiments.Optimizers
end

(** {1 Convenience pipeline} *)

(** Build the hardened application, its job set and a WCRT report for a
    plan in one call. *)
let analyze_plan arch apps plan =
  let happ = Mcmap_hardening.Happ.build arch apps plan in
  let js = Mcmap_sched.Jobset.build happ in
  let ctx = Mcmap_sched.Bounds.make js in
  let report = Mcmap_analysis.Wcrt.analyze ctx in
  (happ, js, report)
