(** The server's own metrics registry.

    {!Mcmap_obs.Obs} keeps a per-domain buffer with one-mutator-per-
    domain discipline and only snapshots from the main domain with no
    workers running — exactly what a live server cannot offer: reader
    systhreads all share the main domain, and a [stats] request must be
    answerable mid-flight. So [mcmap serve] keeps its own registry, one
    mutex around a plain hash table, and renders it in the
    [Obs.metrics_to_sexp] format so the existing [mcmap stats] renderer
    and parser work on it unchanged.

    Worker domains additionally mirror request spans into {!Obs}/
    {!Mcmap_obs.Flight} when recording is enabled (each worker is its
    own domain, so the one-mutator rule holds there). *)

type t

val create : unit -> t

val incr : ?by:int -> ?label:string -> t -> string -> unit

val gauge : ?label:string -> t -> string -> float -> unit

val add_gauge : ?label:string -> t -> string -> float -> float
(** Atomically add a (possibly negative) delta to a gauge and return
    the new value — the queue-depth gauge is kept this way. *)

val observe : ?label:string -> t -> string -> int -> unit
(** Add one observation to a log-bucket histogram
    ({!Mcmap_obs.Histogram}). *)

val snapshot : t -> Mcmap_obs.Obs.snapshot
(** A consistent copy (metrics sorted by name, no spans). *)

val to_sexp : t -> Mcmap_util.Sexp.t
(** [Obs.metrics_to_sexp (snapshot t)]. *)

val quantile : t -> string -> float -> int option
(** [quantile t name q]: the q-quantile upper estimate of histogram
    [name], or [None] if absent or empty. *)
