(** A bounded multi-producer / multi-consumer blocking queue — the
    server's backpressure primitive.

    Producers never block: {!try_push} reports [`Full] instead, and the
    caller turns that into a [Rejected] response immediately (a full
    queue must shed load, not make every connection wait behind it).
    Consumers block in {!pop} until an element or {!close} arrives;
    after [close] the remaining elements drain in order, then every
    consumer receives [None] — the shutdown path answers everything it
    already accepted and drops nothing.

    Safe from any mix of systhreads and domains. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]

val pop : 'a t -> 'a option
(** Blocks until an element is available ([Some]) or the queue is
    closed and drained ([None]). *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked consumer. Idempotent. *)

val length : 'a t -> int
