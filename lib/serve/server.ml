module Wire = Mcmap_util.Wire
module Sexp = Mcmap_util.Sexp
module Obs = Mcmap_obs.Obs
module Spec = Mcmap_spec.Spec
module Lint = Mcmap_lint.Lint
module Diagnostic = Mcmap_lint.Diagnostic
module Evaluator = Mcmap_dse.Evaluator
module Sampler = Mcmap_benchmarks.Sampler

type config = {
  addr : Protocol.addr;
  workers : int;
  queue_capacity : int;
  pool_capacity : int;
  session_domains : int;
  max_frame : int;
  max_population : int;
  default_deadline_ms : int option;
  handle_signals : bool;
}

let default_config addr =
  { addr;
    workers = 4;
    queue_capacity = 64;
    pool_capacity = 8;
    session_domains = 1;
    max_frame = Wire.default_max_frame;
    max_population = 4096;
    default_deadline_ms = None;
    handle_signals = false }

(* A connection's fd is shared by its reader (reads), workers
   (response writes) and the final shutdown sweep. [lock] guards the
   writes and the lifecycle fields; the fd is closed exactly once, by
   whoever finds [pending = 0 && reader_done] first, so a worker can
   never write into a recycled descriptor. *)
type conn = {
  fd : Unix.file_descr;
  lock : Mutex.t;
  mutable pending : int;  (** jobs queued or in flight for this conn *)
  mutable reader_done : bool;
  mutable closed : bool;  (** fd has been closed *)
  mutable alive : bool;  (** false after a write failure: stop writing *)
}

type job = { req : Protocol.request; conn : conn; enqueued_ns : int64 }

type t = {
  cfg : config;
  metrics : Metrics.t;
  pool : Pool.t;
  queue : job Bqueue.t;
  stopping : bool Atomic.t;
  stop_w : Unix.file_descr;  (** self-pipe: one byte ends the acceptor *)
  conns : conn list ref;
  conns_lock : Mutex.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Responses.                                                          *)

let close_if_idle_locked conn =
  if conn.reader_done && conn.pending = 0 && not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let respond t conn r_id r_body =
  let payload =
    Protocol.response_to_string { Protocol.r_id; r_body } in
  with_lock conn.lock (fun () ->
      if conn.alive && not conn.closed then
        try Wire.write_frame ~max:Wire.max_frame_limit conn.fd payload
        with Unix.Unix_error _ | Invalid_argument _ ->
          conn.alive <- false);
  ignore t

let reject t conn r_id why reason =
  Metrics.incr ~label:why t.metrics "serve.rejected";
  respond t conn r_id (Protocol.Rejected reason)

(* ------------------------------------------------------------------ *)
(* The work plane (runs on worker domains).                            *)

let system_text forms =
  String.concat "\n" (List.map Sexp.to_string forms)

let lint_error_message diags =
  let errors =
    List.filter
      (fun d -> Diagnostic.effective_severity d = Diagnostic.Error)
      diags
  in
  let first =
    match errors with
    | d :: _ -> Printf.sprintf " — first: [%s] %s" d.Diagnostic.code
                  d.Diagnostic.message
    | [] -> ""
  in
  Printf.sprintf "%d lint error%s%s (pass (no-lint) to bypass)"
    (List.length errors)
    (if List.length errors = 1 then "" else "s")
    first

(* Build the system, running the lint gate unless the request opted
   out — the same refusal [resolve_problem] applies in the CLI. *)
let build_system ~no_lint forms =
  let text = system_text forms in
  if no_lint then
    match Spec.read_system text with
    | Ok s -> Ok s
    | Error e -> Error ("system: " ^ e)
  else
    let diags, sys = Lint.lint_system text in
    if Diagnostic.error_count diags > 0 then
      Error (lint_error_message diags)
    else
      match sys with
      | Some s -> Ok s
      | None -> (
        match Spec.read_system text with
        | Ok s -> Ok s
        | Error e -> Error ("system: " ^ e))

let build_plan ~no_lint system form =
  let text = Sexp.to_string form in
  let gate =
    if no_lint then Ok ()
    else
      let diags = Lint.lint_plan system text in
      if Diagnostic.error_count diags > 0 then
        Error (lint_error_message diags)
      else Ok ()
  in
  match gate with
  | Error _ as e -> e
  | Ok () -> (
    match Spec.read_plan system text with
    | Ok p -> Ok p
    | Error e -> Error ("plan: " ^ e))

let diag_of d =
  { Protocol.d_code = d.Diagnostic.code;
    d_severity = Diagnostic.severity_to_string d.Diagnostic.severity;
    d_message = d.Diagnostic.message }

let work t ~no_lint body : Protocol.response_body =
  match body with
  | Protocol.Analyze { system; plan } -> (
    match build_system ~no_lint system with
    | Error e -> Protocol.Error_response e
    | Ok sys -> (
      let plan_result =
        match plan with
        | Some form -> build_plan ~no_lint sys form
        | None ->
          Ok (Sampler.balanced_plan ~seed:42 sys.Spec.arch sys.Spec.apps)
      in
      match plan_result with
      | Error e -> Protocol.Error_response e
      | Ok plan ->
        let session = Pool.session t.pool sys in
        Protocol.Analysis
          (Protocol.analysis_of_eval (Evaluator.eval session plan))))
  | Protocol.Lint_request { system; plan } ->
    let sys_diags, sys = Lint.lint_system (system_text system) in
    let plan_diags =
      match (sys, plan) with
      | Some sys, Some form -> Lint.lint_plan sys (Sexp.to_string form)
      | _ -> []
    in
    let diags = sys_diags @ plan_diags in
    Protocol.Lint_report
      { errors = Diagnostic.error_count diags;
        diags = List.map diag_of diags }
  | Protocol.Eval_population { system; plans } -> (
    match build_system ~no_lint system with
    | Error e -> Protocol.Error_response e
    | Ok sys -> (
      let parsed =
        List.fold_left
          (fun acc form ->
            match acc with
            | Error _ -> acc
            | Ok (i, rev) -> (
              match build_plan ~no_lint:true sys form with
              | Ok p -> Ok (i + 1, p :: rev)
              | Error e ->
                Error (Printf.sprintf "plans[%d]: %s" i e)))
          (Ok (0, [])) plans
      in
      match parsed with
      | Error e -> Protocol.Error_response e
      | Ok (_, rev) ->
        let plans = Array.of_list (List.rev rev) in
        let session = Pool.session t.pool sys in
        let results = Evaluator.eval_population session plans in
        Protocol.Population
          (Array.map Protocol.analysis_of_eval results)))
  | Protocol.Ping | Protocol.Stats | Protocol.Shutdown ->
    (* control-plane bodies never reach the queue *)
    Protocol.Error_response "internal: control request queued"

let finish_job conn =
  with_lock conn.lock (fun () ->
      conn.pending <- conn.pending - 1;
      close_if_idle_locked conn)

let process t job =
  let kind = Protocol.request_kind job.req.Protocol.body in
  let waited_ns =
    Int64.to_int (Int64.sub (Obs.now_ns ()) job.enqueued_ns) in
  Metrics.observe ~label:kind t.metrics "serve.queue_wait_ns" waited_ns;
  let deadline_ms =
    match job.req.Protocol.deadline_ms with
    | Some _ as d -> d
    | None -> t.cfg.default_deadline_ms
  in
  (match deadline_ms with
   | Some ms when waited_ns >= ms * 1_000_000 ->
     reject t job.conn job.req.Protocol.id "deadline"
       (Printf.sprintf "deadline: waited %d ms of a %d ms budget"
          (waited_ns / 1_000_000) ms)
   | Some _ | None ->
     Metrics.incr ~label:kind t.metrics "serve.served";
     let body =
       Obs.with_span ("serve." ^ kind) (fun () ->
           Obs.incr ~label:kind "serve.request";
           try work t ~no_lint:job.req.Protocol.no_lint job.req.Protocol.body
           with e ->
             Protocol.Error_response
               ("evaluation failed: " ^ Printexc.to_string e))
     in
     respond t job.conn job.req.Protocol.id body;
     Metrics.observe ~label:kind t.metrics "serve.latency_ns"
       (Int64.to_int (Int64.sub (Obs.now_ns ()) job.enqueued_ns)));
  finish_job job.conn

let worker t () =
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some job ->
      Metrics.gauge t.metrics "serve.queue.depth"
        (float_of_int (Bqueue.length t.queue));
      process t job;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The control plane (runs on reader systhreads).                      *)

let initiate_shutdown t =
  if not (Atomic.exchange t.stopping true) then
    (* one byte on the self-pipe ends the acceptor's select *)
    ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)

let stats_sexp t =
  Metrics.gauge t.metrics "serve.queue.depth"
    (float_of_int (Bqueue.length t.queue));
  Metrics.to_sexp t.metrics

let enqueue t conn (req : Protocol.request) =
  if Atomic.get t.stopping then
    reject t conn req.id "stopping" "server is shutting down"
  else begin
    with_lock conn.lock (fun () -> conn.pending <- conn.pending + 1);
    let job = { req; conn; enqueued_ns = Obs.now_ns () } in
    match Bqueue.try_push t.queue job with
    | `Ok ->
      Metrics.gauge t.metrics "serve.queue.depth"
        (float_of_int (Bqueue.length t.queue))
    | `Full ->
      with_lock conn.lock (fun () -> conn.pending <- conn.pending - 1);
      reject t conn req.id "queue-full"
        (Printf.sprintf "queue full (%d requests waiting)"
           t.cfg.queue_capacity)
    | `Closed ->
      with_lock conn.lock (fun () -> conn.pending <- conn.pending - 1);
      reject t conn req.id "stopping" "server is shutting down"
  end

let handle t conn (req : Protocol.request) =
  Metrics.incr
    ~label:(Protocol.request_kind req.body)
    t.metrics "serve.request";
  match req.body with
  | Protocol.Ping -> respond t conn req.id Protocol.Pong
  | Protocol.Stats ->
    respond t conn req.id (Protocol.Stats_snapshot (stats_sexp t))
  | Protocol.Shutdown ->
    respond t conn req.id Protocol.Shutting_down;
    initiate_shutdown t
  | Protocol.Eval_population { plans; _ }
    when List.length plans > t.cfg.max_population ->
    reject t conn req.id "population"
      (Printf.sprintf "population of %d exceeds the %d-plan budget"
         (List.length plans) t.cfg.max_population)
  | Protocol.Analyze _ | Protocol.Lint_request _
  | Protocol.Eval_population _ ->
    enqueue t conn req

let reader t conn () =
  let rec loop () =
    match Wire.read_frame ~max:t.cfg.max_frame conn.fd with
    | Error Wire.Eof | Error (Wire.Truncated _) -> ()
    | exception Unix.Unix_error _ -> ()
    | Error (Wire.Oversized len) ->
      (* the header was consumed and the payload is still in the
         stream: skip it so the connection stays usable, and tell the
         client (id 0 — the id was inside the frame we refused) *)
      reject t conn 0 "oversized"
        (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit"
           len t.cfg.max_frame);
      if Wire.discard conn.fd len then loop ()
    | Error Wire.Empty ->
      reject t conn 0 "empty" "empty frame";
      loop ()
    | Ok payload ->
      (match Protocol.request_of_string payload with
       | Error e ->
         respond t conn 0
           (Protocol.Error_response ("request parse: " ^ e))
       | Ok req -> handle t conn req);
      loop ()
  in
  loop ();
  with_lock conn.lock (fun () ->
      conn.reader_done <- true;
      close_if_idle_locked conn)

(* ------------------------------------------------------------------ *)
(* Socket setup and the accept loop.                                   *)

let bind_listen = function
  | Protocol.Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       (match Unix.stat path with
        | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
        | _ -> ())
     with Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Protocol.Unix_sock path)
  | Protocol.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ ->
        (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (a, p) ->
        Protocol.Tcp (Unix.string_of_inet_addr a, p)
      | Unix.ADDR_UNIX p -> Protocol.Unix_sock p
    in
    (fd, actual)

let rec select_read fds =
  try
    let r, _, _ = Unix.select fds [] [] (-1.) in
    r
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_read fds

let run ?(on_ready = fun _ -> ()) cfg =
  if cfg.workers < 1 then invalid_arg "Server.run: workers < 1";
  (* a client vanishing mid-response must be EPIPE, not process death *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  let listen_fd, actual_addr = bind_listen cfg.addr in
  let stop_r, stop_w = Unix.pipe () in
  let metrics = Metrics.create () in
  let t =
    { cfg;
      metrics;
      pool =
        Pool.create ~capacity:cfg.pool_capacity
          ~domains:cfg.session_domains ~metrics ();
      queue = Bqueue.create ~capacity:cfg.queue_capacity;
      stopping = Atomic.make false;
      stop_w;
      conns = ref [];
      conns_lock = Mutex.create () }
  in
  if cfg.handle_signals then begin
    let stop _ = initiate_shutdown t in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
     with Invalid_argument _ -> ());
    try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
    with Invalid_argument _ -> ()
  end;
  let workers =
    Array.init cfg.workers (fun _ -> Domain.spawn (worker t)) in
  on_ready actual_addr;
  let readers = ref [] in
  let rec accept_loop () =
    let ready = select_read [ listen_fd; stop_r ] in
    if List.mem stop_r ready then ()
    else begin
      (match Unix.accept listen_fd with
       | fd, _ ->
         let conn =
           { fd;
             lock = Mutex.create ();
             pending = 0;
             reader_done = false;
             closed = false;
             alive = true }
         in
         with_lock t.conns_lock (fun () ->
             t.conns := conn :: !(t.conns));
         Metrics.incr t.metrics "serve.connections";
         readers := Thread.create (reader t conn) () :: !readers
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Orderly shutdown: drain, then unwind. Every job the queue already
     holds is still processed and answered before the workers exit. *)
  Bqueue.close t.queue;
  Array.iter Domain.join workers;
  let conns = with_lock t.conns_lock (fun () -> !(t.conns)) in
  List.iter
    (fun c ->
      with_lock c.lock (fun () ->
          if not c.closed then
            try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ -> ()))
    conns;
  List.iter Thread.join !readers;
  List.iter
    (fun c ->
      with_lock c.lock (fun () ->
          if not c.closed then begin
            c.closed <- true;
            try Unix.close c.fd with Unix.Unix_error _ -> ()
          end))
    conns;
  Unix.close listen_fd;
  Unix.close stop_r;
  Unix.close stop_w;
  (match actual_addr with
   | Protocol.Unix_sock path -> (
     try Unix.unlink path with Unix.Unix_error _ -> ())
   | Protocol.Tcp _ -> ());
  match prev_sigpipe with
  | Some b -> ( try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
  | None -> ()
