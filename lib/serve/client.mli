(** A synchronous [mcmap serve] client: one connection, one outstanding
    request at a time ({!call}), or explicit {!send}/{!recv} for
    pipelining. Used by [mcmap client], [mcmap stats --connect], the
    load generator and the end-to-end tests. *)

type t

val connect : Protocol.addr -> (t, string) result

val close : t -> unit
(** Idempotent. *)

val send : t -> Protocol.request -> (unit, string) result

val recv : ?max:int -> t -> (Protocol.response, string) result
(** Read one response frame (default frame limit
    {!Mcmap_util.Wire.max_frame_limit} — population responses can be
    far larger than the server's request limit). *)

val call :
  ?max:int -> t -> Protocol.request -> (Protocol.response, string) result
(** [send] then [recv] until the response with the request's id
    arrives (responses to other ids — e.g. the id-0 notices the server
    emits for frames it could not attribute — are discarded). *)

val fresh_id : t -> int
(** A connection-unique request id (1, 2, ...). *)
