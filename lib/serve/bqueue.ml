type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity < 1";
  { lock = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    capacity;
    closed = false }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.q >= t.capacity then `Full
      else begin
        Queue.add x t.q;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        match Queue.take_opt t.q with
        | Some x -> Some x
        | None ->
          if t.closed then None
          else begin
            Condition.wait t.nonempty t.lock;
            wait ()
          end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Condition.broadcast t.nonempty
      end)

let length t = with_lock t (fun () -> Queue.length t.q)
