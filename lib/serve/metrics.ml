module Obs = Mcmap_obs.Obs
module Histogram = Mcmap_obs.Histogram

type cell =
  | Counter of int ref
  | Gauge of float ref
  | Hist of Histogram.t

type t = { lock : Mutex.t; cells : (string, cell) Hashtbl.t }

let create () = { lock = Mutex.create (); cells = Hashtbl.create 64 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let key ?label name =
  match label with None -> name | Some l -> name ^ "~" ^ l

let cell_kind = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let wrong k c want =
  invalid_arg
    (Printf.sprintf "Serve.Metrics: %s is a %s, not a %s" k (cell_kind c)
       want)

(* All three accessors assume [t.lock] is held. *)
let counter_cell t k =
  match Hashtbl.find_opt t.cells k with
  | Some (Counter r) -> r
  | Some c -> wrong k c "counter"
  | None ->
    let r = ref 0 in
    Hashtbl.add t.cells k (Counter r);
    r

let gauge_cell t k =
  match Hashtbl.find_opt t.cells k with
  | Some (Gauge r) -> r
  | Some c -> wrong k c "gauge"
  | None ->
    let r = ref 0. in
    Hashtbl.add t.cells k (Gauge r);
    r

let hist_cell t k =
  match Hashtbl.find_opt t.cells k with
  | Some (Hist h) -> h
  | Some c -> wrong k c "histogram"
  | None ->
    let h = Histogram.create () in
    Hashtbl.add t.cells k (Hist h);
    h

let incr ?(by = 1) ?label t name =
  let k = key ?label name in
  with_lock t (fun () ->
      let r = counter_cell t k in
      r := !r + by)

let gauge ?label t name v =
  let k = key ?label name in
  with_lock t (fun () -> gauge_cell t k := v)

let add_gauge ?label t name delta =
  let k = key ?label name in
  with_lock t (fun () ->
      let r = gauge_cell t k in
      r := !r +. delta;
      !r)

let observe ?label t name v =
  let k = key ?label name in
  with_lock t (fun () -> Histogram.observe (hist_cell t k) v)

let snapshot t : Obs.snapshot =
  let metrics =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun k c acc ->
            let m =
              match c with
              | Counter r -> Obs.Counter !r
              | Gauge r -> Obs.Gauge !r
              | Hist h -> Obs.Histogram (Histogram.copy h)
            in
            (k, m) :: acc)
          t.cells [])
  in
  { Obs.metrics =
      List.sort (fun (a, _) (b, _) -> String.compare a b) metrics;
    spans = [] }

let to_sexp t = Obs.metrics_to_sexp (snapshot t)

let quantile t name q =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (Hist h) when not (Histogram.is_empty h) ->
        Some (Histogram.quantile h q)
      | _ -> None)
