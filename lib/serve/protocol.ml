module Sexp = Mcmap_util.Sexp

type addr = Unix_sock of string | Tcp of string * int

let addr_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> Ok (Unix_sock s)
  | Some i ->
    let host = String.sub s 0 i
    and port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
     | Some p when p >= 0 && p < 65536 ->
       Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
     | Some _ | None -> Error (Printf.sprintf "invalid port in %S" s))

(* ------------------------------------------------------------------ *)
(* Free-form text as single atoms.                                     *)

(* The sexp substrate has no quoting, so arbitrary text must avoid
   whitespace, parentheses, ';' (comment) and '%' (our escape). All
   other printable ASCII passes through; everything else becomes %XX. *)
let text_safe = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '&' | '\'' | '*' | '+' | ',' | '-' | '.' | '/'
  | ':' | '<' | '=' | '>' | '?' | '@' | '[' | ']' | '^' | '_' | '`'
  | '{' | '|' | '}' | '~' ->
    true
  | _ -> false

let encode_text s =
  if s = "" then "%"
  else begin
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        if text_safe c then Buffer.add_char b c
        else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents b
  end

let decode_text s =
  if s = "%" then Ok ""
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Ok (Buffer.contents b)
      else if s.[i] <> '%' then begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
      else if i + 2 >= n then Error "truncated % escape"
      else
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code ->
          Buffer.add_char b (Char.chr code);
          go (i + 3)
        | None -> Error (Printf.sprintf "malformed %% escape at %d" i)
    in
    go 0
  end

(* ------------------------------------------------------------------ *)
(* Message types.                                                      *)

type analysis = {
  a_power : float;
  a_service : float;
  a_schedulable : bool;
  a_reliable : bool;
  a_violation : float;
  a_rescued : bool;
}

let analysis_of_eval (e : Mcmap_dse.Evaluate.t) =
  { a_power = e.Mcmap_dse.Evaluate.power;
    a_service = e.Mcmap_dse.Evaluate.service;
    a_schedulable = e.Mcmap_dse.Evaluate.schedulable;
    a_reliable = e.Mcmap_dse.Evaluate.reliable;
    a_violation = e.Mcmap_dse.Evaluate.violation;
    a_rescued = e.Mcmap_dse.Evaluate.rescued }

type diag = { d_code : string; d_severity : string; d_message : string }

type request_body =
  | Ping
  | Stats
  | Shutdown
  | Analyze of { system : Sexp.t list; plan : Sexp.t option }
  | Lint_request of { system : Sexp.t list; plan : Sexp.t option }
  | Eval_population of { system : Sexp.t list; plans : Sexp.t list }

type request = {
  id : int;
  deadline_ms : int option;
  no_lint : bool;
  body : request_body;
}

type response_body =
  | Pong
  | Stats_snapshot of Sexp.t
  | Shutting_down
  | Analysis of analysis
  | Population of analysis array
  | Lint_report of { errors : int; diags : diag list }
  | Rejected of string
  | Error_response of string

type response = { r_id : int; r_body : response_body }

let request_kind = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Analyze _ -> "analyze"
  | Lint_request _ -> "lint"
  | Eval_population _ -> "eval-population"

(* ------------------------------------------------------------------ *)
(* Serialisation.                                                      *)

(* Floats as hexadecimal literals: %h round-trips every finite double
   and both infinities bit for bit ("0x1.91eb851eb851fp+1"). NaNs are
   the one family %h collapses (float_of_string "nan" is the canonical
   quiet NaN, whatever the payload was), so they carry their raw bit
   pattern instead — every double crosses the wire bit-exact. *)
let float_atom x =
  if Float.is_nan x then
    Sexp.Atom (Printf.sprintf "nan#%Lx" (Int64.bits_of_float x))
  else Sexp.Atom (Printf.sprintf "%h" x)

let float_of_atom a =
  if String.length a > 4 && String.sub a 0 4 = "nan#" then
    match
      Int64.of_string_opt
        ("0x" ^ String.sub a 4 (String.length a - 4))
    with
    | Some bits when Float.is_nan (Int64.float_of_bits bits) ->
      Some (Int64.float_of_bits bits)
    | Some _ | None -> None
  else float_of_string_opt a

let bool_atom b = Sexp.Atom (string_of_bool b)

let int_atom n = Sexp.Atom (string_of_int n)

let field name items = Sexp.List (Sexp.Atom name :: items)

let text_field name s = field name [ Sexp.Atom (encode_text s) ]

let analysis_to_sexp a =
  field "analysis"
    [ field "power" [ float_atom a.a_power ];
      field "service" [ float_atom a.a_service ];
      field "schedulable" [ bool_atom a.a_schedulable ];
      field "reliable" [ bool_atom a.a_reliable ];
      field "violation" [ float_atom a.a_violation ];
      field "rescued" [ bool_atom a.a_rescued ] ]

let body_to_sexp = function
  | Ping -> field "ping" []
  | Stats -> field "stats" []
  | Shutdown -> field "shutdown" []
  | Analyze { system; plan } ->
    field "analyze"
      (field "system" system
       :: (match plan with Some p -> [ field "plan" [ p ] ] | None -> []))
  | Lint_request { system; plan } ->
    field "lint"
      (field "system" system
       :: (match plan with Some p -> [ field "plan" [ p ] ] | None -> []))
  | Eval_population { system; plans } ->
    field "eval-population" [ field "system" system; field "plans" plans ]

let request_to_sexp r =
  field "request"
    (field "id" [ int_atom r.id ]
     :: (match r.deadline_ms with
         | Some ms -> [ field "deadline-ms" [ int_atom ms ] ]
         | None -> [])
     @ (if r.no_lint then [ field "no-lint" [] ] else [])
     @ [ body_to_sexp r.body ])

let diag_to_sexp d =
  field "diag"
    [ field "code" [ Sexp.Atom d.d_code ];
      field "severity" [ Sexp.Atom d.d_severity ];
      text_field "message" d.d_message ]

let response_body_to_sexp = function
  | Pong -> field "pong" []
  | Stats_snapshot m -> field "stats" [ m ]
  | Shutting_down -> field "shutting-down" []
  | Analysis a -> analysis_to_sexp a
  | Population arr ->
    field "population" (Array.to_list (Array.map analysis_to_sexp arr))
  | Lint_report { errors; diags } ->
    field "lint"
      (field "errors" [ int_atom errors ] :: List.map diag_to_sexp diags)
  | Rejected reason -> text_field "rejected" reason
  | Error_response msg -> text_field "error" msg

let response_to_sexp r =
  field "response"
    [ field "id" [ int_atom r.r_id ]; response_body_to_sexp r.r_body ]

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)

let ( let* ) = Result.bind

let expect_list name = function
  | Sexp.List (Sexp.Atom n :: rest) when n = name -> Ok rest
  | _ -> Error (Printf.sprintf "expected (%s ...)" name)

let the_int name items =
  match Sexp.assoc name items with
  | Some [ Sexp.Atom a ] ->
    (match int_of_string_opt a with
     | Some n -> Ok n
     | None -> Error (Printf.sprintf "(%s): not an integer: %s" name a))
  | Some _ -> Error (Printf.sprintf "(%s): expected one integer" name)
  | None -> Error (Printf.sprintf "missing (%s ...)" name)

let the_float name items =
  match Sexp.assoc name items with
  | Some [ Sexp.Atom a ] ->
    (match float_of_atom a with
     | Some x -> Ok x
     | None -> Error (Printf.sprintf "(%s): not a float: %s" name a))
  | Some _ -> Error (Printf.sprintf "(%s): expected one float" name)
  | None -> Error (Printf.sprintf "missing (%s ...)" name)

let the_bool name items =
  match Sexp.assoc name items with
  | Some [ Sexp.Atom "true" ] -> Ok true
  | Some [ Sexp.Atom "false" ] -> Ok false
  | Some _ -> Error (Printf.sprintf "(%s): expected true or false" name)
  | None -> Error (Printf.sprintf "missing (%s ...)" name)

let the_text name items =
  match Sexp.assoc name items with
  | Some [ Sexp.Atom a ] -> decode_text a
  | Some _ -> Error (Printf.sprintf "(%s): expected one encoded atom" name)
  | None -> Error (Printf.sprintf "missing (%s ...)" name)

let the_atom name items =
  match Sexp.assoc name items with
  | Some [ Sexp.Atom a ] -> Ok a
  | Some _ -> Error (Printf.sprintf "(%s): expected one atom" name)
  | None -> Error (Printf.sprintf "missing (%s ...)" name)

let opt_plan items =
  match Sexp.assoc "plan" items with
  | Some [ p ] -> Ok (Some p)
  | Some _ -> Error "(plan): expected exactly one form"
  | None -> Ok None

let the_system items =
  match Sexp.assoc "system" items with
  | Some forms -> Ok forms
  | None -> Error "missing (system ...)"

let body_of_sexp = function
  | Sexp.List [ Sexp.Atom "ping" ] -> Ok Ping
  | Sexp.List [ Sexp.Atom "stats" ] -> Ok Stats
  | Sexp.List [ Sexp.Atom "shutdown" ] -> Ok Shutdown
  | Sexp.List (Sexp.Atom "analyze" :: items) ->
    let* system = the_system items in
    let* plan = opt_plan items in
    Ok (Analyze { system; plan })
  | Sexp.List (Sexp.Atom "lint" :: items) ->
    let* system = the_system items in
    let* plan = opt_plan items in
    Ok (Lint_request { system; plan })
  | Sexp.List (Sexp.Atom "eval-population" :: items) ->
    let* system = the_system items in
    let* plans =
      match Sexp.assoc "plans" items with
      | Some ps -> Ok ps
      | None -> Error "missing (plans ...)" in
    Ok (Eval_population { system; plans })
  | Sexp.Atom a -> Error (Printf.sprintf "unknown request body %s" a)
  | Sexp.List (Sexp.Atom a :: _) ->
    Error (Printf.sprintf "unknown request body (%s ...)" a)
  | Sexp.List _ -> Error "malformed request body"

let request_of_sexp sexp =
  let* items = expect_list "request" sexp in
  let* id = the_int "id" items in
  let* deadline_ms =
    match Sexp.assoc "deadline-ms" items with
    | None -> Ok None
    | Some [ Sexp.Atom a ] ->
      (match int_of_string_opt a with
       | Some n when n >= 0 -> Ok (Some n)
       | Some _ -> Error "(deadline-ms): negative"
       | None -> Error "(deadline-ms): not an integer")
    | Some _ -> Error "(deadline-ms): expected one integer" in
  let no_lint = Sexp.assoc "no-lint" items <> None in
  let* body =
    let bodies =
      List.filter
        (function
          | Sexp.List (Sexp.Atom ("id" | "deadline-ms" | "no-lint") :: _) ->
            false
          | _ -> true)
        items in
    match bodies with
    | [ b ] -> body_of_sexp b
    | [] -> Error "request has no body"
    | _ -> Error "request has more than one body" in
  Ok { id; deadline_ms; no_lint; body }

let analysis_of_sexp sexp =
  let* items = expect_list "analysis" sexp in
  let* a_power = the_float "power" items in
  let* a_service = the_float "service" items in
  let* a_schedulable = the_bool "schedulable" items in
  let* a_reliable = the_bool "reliable" items in
  let* a_violation = the_float "violation" items in
  let* a_rescued = the_bool "rescued" items in
  Ok { a_power; a_service; a_schedulable; a_reliable; a_violation;
       a_rescued }

let diag_of_sexp sexp =
  let* items = expect_list "diag" sexp in
  let* d_code = the_atom "code" items in
  let* d_severity = the_atom "severity" items in
  let* d_message = the_text "message" items in
  Ok { d_code; d_severity; d_message }

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* v = f x in
    let* vs = collect f rest in
    Ok (v :: vs)

let response_body_of_sexp = function
  | Sexp.List [ Sexp.Atom "pong" ] -> Ok Pong
  | Sexp.List [ Sexp.Atom "stats"; m ] -> Ok (Stats_snapshot m)
  | Sexp.List [ Sexp.Atom "shutting-down" ] -> Ok Shutting_down
  | Sexp.List (Sexp.Atom "analysis" :: _) as s ->
    let* a = analysis_of_sexp s in
    Ok (Analysis a)
  | Sexp.List (Sexp.Atom "population" :: items) ->
    let* entries = collect analysis_of_sexp items in
    Ok (Population (Array.of_list entries))
  | Sexp.List (Sexp.Atom "lint" :: items) ->
    let* errors = the_int "errors" items in
    let diag_forms =
      List.filter
        (function Sexp.List (Sexp.Atom "diag" :: _) -> true | _ -> false)
        items in
    let* diags = collect diag_of_sexp diag_forms in
    Ok (Lint_report { errors; diags })
  | Sexp.List [ Sexp.Atom "rejected"; Sexp.Atom t ] ->
    let* reason = decode_text t in
    Ok (Rejected reason)
  | Sexp.List [ Sexp.Atom "error"; Sexp.Atom t ] ->
    let* msg = decode_text t in
    Ok (Error_response msg)
  | Sexp.Atom a -> Error (Printf.sprintf "unknown response body %s" a)
  | Sexp.List (Sexp.Atom a :: _) ->
    Error (Printf.sprintf "unknown response body (%s ...)" a)
  | Sexp.List _ -> Error "malformed response body"

let response_of_sexp sexp =
  let* items = expect_list "response" sexp in
  let* r_id = the_int "id" items in
  let* r_body =
    match
      List.filter
        (function
          | Sexp.List (Sexp.Atom "id" :: _) -> false
          | _ -> true)
        items
    with
    | [ b ] -> response_body_of_sexp b
    | [] -> Error "response has no body"
    | _ -> Error "response has more than one body" in
  Ok { r_id; r_body }

let request_to_string r = Sexp.to_string (request_to_sexp r)

let request_of_string s = Result.bind (Sexp.parse_one s) request_of_sexp

let response_to_string r = Sexp.to_string (response_to_sexp r)

let response_of_string s = Result.bind (Sexp.parse_one s) response_of_sexp

(* ------------------------------------------------------------------ *)
(* Equality.                                                           *)

let float_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let analysis_equal a b =
  float_equal a.a_power b.a_power
  && float_equal a.a_service b.a_service
  && a.a_schedulable = b.a_schedulable
  && a.a_reliable = b.a_reliable
  && float_equal a.a_violation b.a_violation
  && a.a_rescued = b.a_rescued

let equal_request (a : request) (b : request) = a = b

let equal_response (a : response) (b : response) =
  a.r_id = b.r_id
  &&
  match (a.r_body, b.r_body) with
  | Analysis x, Analysis y -> analysis_equal x y
  | Population x, Population y ->
    Array.length x = Array.length y
    && Array.for_all2 analysis_equal x y
  | x, y -> x = y
