(** The server's session pool: one {!Mcmap_dse.Evaluator} session per
    distinct system, shared by every connection and worker that asks
    for that system, with bounded LRU eviction of cold sessions.

    Sessions are keyed by the fingerprint of the system's canonical
    [Spec.write_system] text — two clients sending the same design in
    different formatting or field order share one session and therefore
    one set of warm caches. Hits are guarded by comparing the stored
    canonical text, so a fingerprint collision degrades to a miss
    instead of serving another system's evaluator.

    All operations are mutex-guarded; the returned sessions are safe to
    use from any worker domain ({!Mcmap_dse.Evaluator.eval} is
    domain-safe and [eval_population] serialises itself). *)

type t

val create :
  ?capacity:int -> ?domains:int -> metrics:Metrics.t -> unit -> t
(** [capacity] (default 8) bounds the number of live sessions;
    [domains] (default 1) is passed to each created session's
    [Evaluator.create]. Pool traffic is recorded in [metrics] as
    [serve.pool~hit], [serve.pool~miss], [serve.pool~evict] counters
    and a [serve.pool.size] gauge.
    @raise Invalid_argument if [capacity < 1] or [domains < 1]. *)

val capacity : t -> int

val session : t -> Mcmap_spec.Spec.system -> Mcmap_dse.Evaluator.t
(** The pooled session for this system, creating (and possibly
    evicting the least recently used) on miss. *)

val stats : t -> Mcmap_util.Sexp.t
(** [(pool (size N) (capacity N) (hits N) (misses N) (evictions N))] —
    folded into the [stats] response. *)
