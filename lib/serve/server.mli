(** The [mcmap serve] daemon (DESIGN.md §14).

    One process serves many clients over a Unix-domain or TCP socket:

    - an {b acceptor} (the thread that called {!run}) accepts
      connections and spawns one reader systhread per connection;
    - {b readers} parse {!Mcmap_util.Wire} frames into
      {!Protocol.request}s, answer the control plane (ping, stats,
      shutdown) inline, and push the work plane (analyze, lint,
      eval-population) onto a bounded {!Bqueue} — or reject on the spot
      when the queue is full, the population is over budget, or the
      frame exceeded the limit;
    - a fixed pool of {b worker domains} pops jobs, enforces each
      request's queue deadline, runs lint/evaluation through the
      shared {!Pool} of evaluator sessions, and writes the response
      (frames to one connection are serialised by a per-connection
      lock, so out-of-order completion is safe).

    Shutdown (a [shutdown] request, or SIGINT/SIGTERM with
    [handle_signals]) is orderly and answer-complete: the acceptor
    stops, the queue closes and {e drains} — every job already accepted
    is still answered — workers join, readers are woken and join, and
    {!run} returns. New work arriving meanwhile is [Rejected], which is
    still a response: no frame that reached the server goes
    unanswered. *)

type config = {
  addr : Protocol.addr;
  workers : int;  (** worker domains (default 4) *)
  queue_capacity : int;  (** work-plane queue bound (default 64) *)
  pool_capacity : int;  (** evaluator sessions kept warm (default 8) *)
  session_domains : int;
      (** [domains] for each pooled session (default 1 — parallelism
          comes from concurrent requests, not within one) *)
  max_frame : int;  (** request frame byte limit *)
  max_population : int;
      (** plans per [eval-population] request (default 4096) *)
  default_deadline_ms : int option;
      (** queue deadline applied when a request carries none *)
  handle_signals : bool;
      (** install SIGINT/SIGTERM handlers that trigger the same
          orderly shutdown as a [shutdown] request (default false) *)
}

val default_config : Protocol.addr -> config

val run : ?on_ready:(Protocol.addr -> unit) -> config -> unit
(** Bind, serve, block until shutdown, release every resource (the
    socket file of a Unix-domain address is unlinked). [on_ready] is
    called once listening, with the bound address — for TCP port 0
    this carries the actual port, which is how tests serve on an
    ephemeral port.
    @raise Unix.Unix_error when the address cannot be bound. *)
