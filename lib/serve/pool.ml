module Spec = Mcmap_spec.Spec
module Evaluator = Mcmap_dse.Evaluator
module Fingerprint = Mcmap_util.Fingerprint
module Lru = Mcmap_util.Lru
module Sexp = Mcmap_util.Sexp

type entry = {
  canonical : string;  (** collision guard: the full canonical text *)
  session : Evaluator.t;
}

type t = {
  lock : Mutex.t;
  sessions : (string, entry) Lru.t;  (** keyed by fingerprint hex *)
  domains : int;
  metrics : Metrics.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 8) ?(domains = 1) ~metrics () =
  if capacity < 1 then invalid_arg "Pool.create: capacity < 1";
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  { lock = Mutex.create ();
    sessions = Lru.create ~capacity ();
    domains;
    metrics;
    hits = 0;
    misses = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = Lru.capacity t.sessions

let fingerprint_of canonical =
  Fingerprint.to_hex (Fingerprint.string Fingerprint.empty canonical)

let session t (system : Spec.system) =
  let canonical = Spec.write_system system in
  let key = fingerprint_of canonical in
  match
    with_lock t (fun () ->
        match Lru.find t.sessions key with
        | Some e when e.canonical = canonical ->
          t.hits <- t.hits + 1;
          Some e.session
        | Some _ | None -> None)
  with
  | Some session ->
    Metrics.incr ~label:"hit" t.metrics "serve.pool";
    session
  | None ->
    (* Create outside the lock: session construction precomputes
       bounds and hyperperiods, and a slow build must not block
       concurrent lookups of warm sessions. Racing misses on the same
       system build twice and the later [add] wins — wasted work, never
       a wrong answer (the same trade the evaluator caches make). *)
    let session =
      Evaluator.create ~domains:t.domains system.Spec.arch
        system.Spec.apps
    in
    let evicted =
      with_lock t (fun () ->
          let before = Lru.evictions t.sessions in
          t.misses <- t.misses + 1;
          Lru.add t.sessions key { canonical; session };
          Lru.evictions t.sessions - before)
    in
    Metrics.incr ~label:"miss" t.metrics "serve.pool";
    if evicted > 0 then
      Metrics.incr ~by:evicted ~label:"evict" t.metrics "serve.pool";
    Metrics.gauge t.metrics "serve.pool.size"
      (float_of_int (with_lock t (fun () -> Lru.length t.sessions)));
    session

let stats t =
  with_lock t (fun () ->
      let field name v =
        Sexp.List [ Sexp.Atom name; Sexp.Atom (string_of_int v) ]
      in
      Sexp.List
        [ Sexp.Atom "pool";
          field "size" (Lru.length t.sessions);
          field "capacity" (Lru.capacity t.sessions);
          field "hits" t.hits;
          field "misses" t.misses;
          field "evictions" (Lru.evictions t.sessions) ])
