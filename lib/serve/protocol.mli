(** The [mcmap serve] request/response protocol (DESIGN.md §14).

    Messages are single s-expressions carried in {!Mcmap_util.Wire}
    length-prefixed frames. Payload design constraints:

    - {b Pure sexp.} The substrate ({!Mcmap_util.Sexp}) has no string
      quoting, so systems and plans travel as their parsed spec forms
      (the same [(architecture ...)]/[(application ...)]/[(plan ...)]
      trees a [.mcmap] file contains), not as embedded text; free-form
      text (error messages, lint diagnostics) is percent-encoded into
      a single atom ({!encode_text}).
    - {b Bit-exact floats.} Analysis numbers are serialised as
      hexadecimal float literals ([%h]), so a response re-parses to
      exactly the double the evaluator produced — the end-to-end test
      holds served responses bit-equal to direct [Evaluator.eval].
    - {b Out-of-order completion.} Every request carries a client
      -chosen [id], echoed in its response: a pipelined client matches
      responses by id because a pool of workers finishes small
      requests before large ones. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_to_string : addr -> string

val parse_addr : string -> (addr, string) result
(** [HOST:PORT] (a colon present) parses as {!Tcp}, anything else as a
    Unix-domain socket path. *)

(** {1 Free-form text encoding} *)

val encode_text : string -> string
(** Percent-encode an arbitrary string into one sexp-safe atom
    (whitespace, parentheses, [;], [%], control and non-ASCII bytes
    become [%XX]; the empty string becomes the lone atom ["%"]). *)

val decode_text : string -> (string, string) result
(** Inverse of {!encode_text}; [Error] on malformed escapes. *)

(** {1 Messages} *)

type analysis = {
  a_power : float;
  a_service : float;
  a_schedulable : bool;
  a_reliable : bool;
  a_violation : float;
  a_rescued : bool;
}
(** The wire image of an {!Mcmap_dse.Evaluate.t} minus the plan (the
    client already holds it). *)

val analysis_of_eval : Mcmap_dse.Evaluate.t -> analysis

type diag = { d_code : string; d_severity : string; d_message : string }

type request_body =
  | Ping
  | Stats  (** fetch the live metrics snapshot *)
  | Shutdown
  | Analyze of { system : Mcmap_util.Sexp.t list;
                 plan : Mcmap_util.Sexp.t option }
      (** [plan = None] asks the server for its deterministic balanced
          seed plan (seed 42) *)
  | Lint_request of { system : Mcmap_util.Sexp.t list;
                      plan : Mcmap_util.Sexp.t option }
  | Eval_population of { system : Mcmap_util.Sexp.t list;
                         plans : Mcmap_util.Sexp.t list }

type request = {
  id : int;
  deadline_ms : int option;
      (** drop the request unanswered-by-work (reply {!Rejected}) if it
          waited longer than this in the queue *)
  no_lint : bool;  (** skip the server's lint gate for this request *)
  body : request_body;
}

type response_body =
  | Pong
  | Stats_snapshot of Mcmap_util.Sexp.t
      (** an [Obs.metrics_to_sexp] document — [mcmap stats] renders it *)
  | Shutting_down
  | Analysis of analysis
  | Population of analysis array
  | Lint_report of { errors : int; diags : diag list }
  | Rejected of string
      (** backpressure: queue full, deadline expired, population or
          frame over budget, server shutting down *)
  | Error_response of string
      (** the request was accepted but could not be served (parse
          failure, lint errors, evaluation exception) *)

type response = { r_id : int; r_body : response_body }

val request_kind : request_body -> string
(** Stable label for metrics attribution: ["ping"], ["stats"],
    ["shutdown"], ["analyze"], ["lint"], ["eval-population"]. *)

(** {1 Serialisation} *)

val request_to_sexp : request -> Mcmap_util.Sexp.t

val request_of_sexp : Mcmap_util.Sexp.t -> (request, string) result

val response_to_sexp : response -> Mcmap_util.Sexp.t

val response_of_sexp : Mcmap_util.Sexp.t -> (response, string) result

val request_to_string : request -> string

val request_of_string : string -> (request, string) result

val response_to_string : response -> string

val response_of_string : string -> (response, string) result

(** {1 Equality (for tests and response caches)} *)

val equal_request : request -> request -> bool

val equal_response : response -> response -> bool
(** Floats compare by IEEE-754 bit pattern (so [-0.] <> [0.] and equal
    NaN payloads are equal) — the same bit-determinism contract the
    evaluator caches keep. *)
