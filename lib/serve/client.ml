module Wire = Mcmap_util.Wire

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  mutable closed : bool;
}

let connect addr =
  try
    let fd =
      match addr with
      | Protocol.Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      | Protocol.Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ ->
            (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        fd
    in
    Ok { fd; next_id = 0; closed = false }
  with
  | Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "connect %s: %s"
         (Protocol.addr_to_string addr)
         (Unix.error_message e))
  | Not_found -> Error ("connect: unknown host " ^ Protocol.addr_to_string addr)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let send t req =
  try
    Wire.write_frame ~max:Wire.max_frame_limit t.fd
      (Protocol.request_to_string req);
    Ok ()
  with
  | Unix.Unix_error (e, _, _) ->
    Error ("send: " ^ Unix.error_message e)
  | Invalid_argument m -> Error ("send: " ^ m)

let recv ?(max = Wire.max_frame_limit) t =
  match Wire.read_frame ~max t.fd with
  | Ok payload -> Protocol.response_of_string payload
  | Error e -> Error ("recv: " ^ Wire.read_error_to_string e)
  | exception Unix.Unix_error (e, _, _) ->
    Error ("recv: " ^ Unix.error_message e)

let call ?max t req =
  match send t req with
  | Error _ as e -> e
  | Ok () ->
    let rec await () =
      match recv ?max t with
      | Error _ as e -> e
      | Ok resp ->
        if resp.Protocol.r_id = req.Protocol.id then Ok resp
        else await ()
    in
    await ()
