module Job = Mcmap_sched.Job
module Jobset = Mcmap_sched.Jobset
module Arch = Mcmap_model.Arch
module Proc = Mcmap_model.Proc
module Happ = Mcmap_hardening.Happ
module Prng = Mcmap_util.Prng
module Obs = Mcmap_obs.Obs

type exec_mode = Worst_case | Best_case | Random_durations of int

type segment = {
  job : int;
  proc : int;
  start : int;
  stop : int;
  attempt : int;
}

type outcome = {
  finish : int option array;
  dropped : bool array;
  critical_at : int option;
  critical_windows : (int * int) list;
  segments : segment list;
  graph_response : int option array;
  graph_complete : bool array;
  graph_deadline_ok : bool array;
}

type job_state =
  | Pending  (** waiting for predecessors / release *)
  | Queued  (** in its processor's ready queue *)
  | Running
  | Finished of int
  | Dropped
  | Skipped  (** passive spare never invoked *)

type event_kind = Ready of int | Complete of int * int  (* proc, token *)

module Event_heap = Mcmap_util.Heap.Make (struct
  type t = int * int * event_kind (* time, seq, kind *)

  let compare (t1, s1, _) (t2, s2, _) = compare (t1, s1) (t2, s2)
end)

module Ready_queue = Mcmap_util.Heap.Make (struct
  type t = int * int (* priority, job id *)

  let compare = compare
end)

type proc_state = {
  queue : Ready_queue.t;
  mutable running : (int * int) option;  (* job id, token *)
  mutable completion : int;
  mutable started_at : int;  (* when the current segment began *)
  mutable token : int;
  preemptive : bool;
}

let durations js mode =
  let n = Jobset.n_jobs js in
  match mode with
  | Worst_case -> Array.init n (fun i -> (Jobset.job js i).Job.wcet)
  | Best_case -> Array.init n (fun i -> (Jobset.job js i).Job.bcet)
  | Random_durations seed ->
    let rng = Prng.create seed in
    Array.init n (fun i ->
        let j = Jobset.job js i in
        if j.Job.wcet = j.Job.bcet then j.Job.wcet
        else Prng.int_in rng j.Job.bcet j.Job.wcet)

let run ?(mode = Worst_case) ?(start_critical = false) js
    ~(profile : Fault_profile.t) =
  let n = Jobset.n_jobs js in
  let arch = js.Jobset.happ.Happ.arch in
  let state = Array.make n Pending in
  let pending = Array.init n (fun j -> Array.length js.Jobset.preds.(j)) in
  let ready_time = Array.init n (fun j -> (Jobset.job js j).Job.release) in
  let started = Array.make n false in
  let attempt = Array.make n 0 in
  let duration = durations js mode in
  let remaining = Array.copy duration in
  let critical_windows = ref [] in
  let critical_until = ref min_int in
  let base = js.Jobset.base_hyperperiod in
  let events = Event_heap.create () in
  let seq = ref 0 in
  let push time kind =
    incr seq;
    Event_heap.add events (time, !seq, kind) in
  let procs =
    Array.init (Arch.n_procs arch) (fun p ->
        { queue = Ready_queue.create (); running = None; completion = 0;
          started_at = 0; token = 0;
          preemptive =
            (match (Arch.proc arch p).Proc.policy with
             | Proc.Preemptive_fp -> true
             | Proc.Non_preemptive_fp -> false) }) in
  let now = ref 0 in
  let segments = ref [] in
  (* local telemetry, flushed once per run; hoisting [enabled] keeps the
     disabled event loop at one predictable branch per counter *)
  let rec_on = Obs.enabled () in
  let faults = ref 0 and preemptions = ref 0 in
  let voter_mismatches = ref 0 and voter_clean = ref 0 in
  let record p j =
    let ps = procs.(p) in
    if !now > ps.started_at then
      segments :=
        { job = j; proc = p; start = ps.started_at; stop = !now;
          attempt = attempt.(j) }
        :: !segments in

  let rec service p =
    let ps = procs.(p) in
    match ps.running with
    | Some _ -> ()
    | None ->
      (match Ready_queue.pop ps.queue with
       | None -> ()
       | Some (_, j) ->
         if state.(j) = Queued then begin
           state.(j) <- Running;
           started.(j) <- true;
           ps.token <- ps.token + 1;
           ps.running <- Some (j, ps.token);
           ps.completion <- !now + remaining.(j);
           ps.started_at <- !now;
           push ps.completion (Complete (p, ps.token))
         end
         else service p (* stale entry *))
  in

  let enqueue j =
    if state.(j) = Pending then begin
      state.(j) <- Queued;
      let job = Jobset.job js j in
      let p = job.Job.proc in
      let ps = procs.(p) in
      Ready_queue.add ps.queue (job.Job.priority, j);
      (match ps.running with
       | Some (r, _)
         when ps.preemptive
              && job.Job.priority < (Jobset.job js r).Job.priority
              && ps.completion > !now
              (* a victim completing exactly now has already finished:
                 its Complete event at this timestamp must win the tie *)
         ->
         (* Preempt: bank the remaining work and re-queue the victim. *)
         if rec_on then incr preemptions;
         record p r;
         remaining.(r) <- ps.completion - !now;
         state.(r) <- Queued;
         Ready_queue.add ps.queue ((Jobset.job js r).Job.priority, r);
         ps.token <- ps.token + 1;
         (* invalidates its completion *)
         ps.running <- None
       | Some _ | None -> ());
      service p
    end
  in

  (* Did any active replica of the spare's origin deliver a wrong value?
     The spare sees their results (it has channels from both actives) and
     self-activates on a mismatch. *)
  let spare_mismatch s =
    let job = Jobset.job js s in
    Array.exists
      (fun (p, _) ->
        let pred = Jobset.job js p in
        pred.Job.origin = job.Job.origin
        && (not pred.Job.passive)
        && profile.Fault_profile.replica_fault pred)
      js.Jobset.preds.(s)
  in

  (* All predecessors of [s'] accounted for: it either arms (spares) or
     becomes ready. A skipped spare releases its successors without
     contributing data. *)
  let rec job_unblocked s' =
    let job = Jobset.job js s' in
    if job.Job.passive then begin
      if spare_mismatch s' then begin
        (* invocation; the critical transition fires when it starts *)
        if rec_on then incr voter_mismatches;
        push (max !now ready_time.(s')) (Ready s')
      end
      else begin
        if rec_on then incr voter_clean;
        state.(s') <- Skipped;
        release_successors s'
      end
    end
    else push (max !now ready_time.(s')) (Ready s')

  and release_successors s =
    Array.iter
      (fun (s', _) ->
        match state.(s') with
        | Dropped | Skipped | Finished _ -> ()
        | Pending | Queued | Running ->
          pending.(s') <- pending.(s') - 1;
          if pending.(s') = 0 then job_unblocked s')
      js.Jobset.succs.(s)
  in

  let propagate j t =
    Array.iter
      (fun (s, delay) ->
        match state.(s) with
        | Dropped | Skipped | Finished _ -> ()
        | Pending | Queued | Running ->
          ready_time.(s) <- max ready_time.(s) (t + delay);
          pending.(s) <- pending.(s) - 1;
          if pending.(s) = 0 then job_unblocked s)
      js.Jobset.succs.(j)
  in

  (* The critical state lasts until the end of the current application
     hyperperiod; dropping abandons every not-yet-started dropped-set
     job released before that boundary (later releases belong to the
     restored normal state). Dropped jobs still release their
     successors — in particular the next hyperperiod's instances, which
     the restoration brings back. *)
  let trigger_critical t =
    if t >= !critical_until then begin
      let boundary = ((t / base) + 1) * base in
      critical_until := boundary;
      critical_windows := (t, boundary) :: !critical_windows;
      let newly_dropped = ref [] in
      for j = 0 to n - 1 do
        let job = Jobset.job js j in
        if job.Job.in_dropped_set && (not started.(j))
           && job.Job.release < boundary then begin
          match state.(j) with
          | Pending | Queued ->
            state.(j) <- Dropped;
            newly_dropped := j :: !newly_dropped
          | Running | Finished _ | Dropped | Skipped -> ()
        end
      done;
      Array.iter
        (fun ps ->
          Ready_queue.filter_in_place ps.queue (fun (_, j) ->
              state.(j) = Queued))
        procs;
      List.iter release_successors !newly_dropped
    end
  in

  let handle_complete p token =
    let ps = procs.(p) in
    match ps.running with
    | Some (j, tk) when tk = token ->
      let job = Jobset.job js j in
      let a = attempt.(j) in
      if job.Job.reexec_k > 0
         && profile.Fault_profile.reexec_fault job ~attempt:a
         && a < job.Job.reexec_k then begin
        (* Fault detected at the end of the attempt: roll back, signal
           the mode change, and re-enter the scheduler — the end of an
           attempt is a scheduling point, so a queued higher-priority
           job runs first. *)
        if rec_on then incr faults;
        trigger_critical !now;
        record p j;
        attempt.(j) <- a + 1;
        (* full re-run for re-execution, one segment for checkpointing *)
        remaining.(j) <- min job.Job.recovery duration.(j);
        state.(j) <- Queued;
        Ready_queue.add ps.queue (job.Job.priority, j);
        ps.running <- None;
        service p
      end
      else begin
        record p j;
        state.(j) <- Finished !now;
        ps.running <- None;
        propagate j !now;
        service p
      end
    | Some _ | None -> () (* stale completion *)
  in

  (* Seed: jobs without predecessors become ready at their release. *)
  for j = 0 to n - 1 do
    if pending.(j) = 0 then push ready_time.(j) (Ready j)
  done;
  if start_critical then trigger_critical 0;

  let rec loop () =
    match Event_heap.pop events with
    | None -> ()
    | Some (t, _, kind) ->
      now := t;
      (match kind with
       | Ready j ->
         (match state.(j) with
          | Pending ->
            if (Jobset.job js j).Job.passive then
              (* a spare only reaches here when invoked *)
              trigger_critical !now;
            enqueue j
          | Queued | Running | Finished _ | Dropped | Skipped -> ())
       | Complete (p, token) -> handle_complete p token);
      loop () in
  loop ();

  (* Collect per-graph responses from delivered instances. *)
  let happ = js.Jobset.happ in
  let n_graphs = Happ.n_graphs happ in
  let graph_response = Array.make n_graphs None in
  let graph_complete = Array.make n_graphs true in
  let graph_deadline_ok = Array.make n_graphs true in
  for g = 0 to n_graphs - 1 do
    let hg = Happ.graph happ g in
    let deadline = Happ.deadline hg in
    let period = Happ.period hg in
    let instances = js.Jobset.hyperperiod / period in
    let response_jobs = Jobset.response_jobs js ~graph:g in
    for inst = 0 to instances - 1 do
      let of_instance =
        List.filter
          (fun (j : Job.t) -> j.Job.instance = inst)
          response_jobs in
      let finished =
        List.for_all
          (fun (j : Job.t) ->
            match state.(j.Job.id) with
            | Finished _ -> true
            | Pending | Queued | Running | Dropped | Skipped -> false)
          of_instance in
      if finished then begin
        let response =
          List.fold_left
            (fun acc (j : Job.t) ->
              match state.(j.Job.id) with
              | Finished t -> max acc (Job.response j ~finish:t)
              | Pending | Queued | Running | Dropped | Skipped -> acc)
            0 of_instance in
        (match graph_response.(g) with
         | Some r when r >= response -> ()
         | Some _ | None -> graph_response.(g) <- Some response);
        if response > deadline then graph_deadline_ok.(g) <- false
      end
      else graph_complete.(g) <- false
    done
  done;
  let finish =
    Array.init n (fun j ->
        match state.(j) with
        | Finished t -> Some t
        | Pending | Queued | Running | Dropped | Skipped -> None) in
  let dropped = Array.init n (fun j -> state.(j) = Dropped) in
  let critical_windows = List.rev !critical_windows in
  if rec_on then begin
    Obs.incr "sim.runs";
    Obs.incr ~by:!faults "sim.injected_faults";
    Obs.incr ~by:!preemptions "sim.preemptions";
    Obs.incr ~by:!voter_mismatches "sim.voter.mismatch";
    Obs.incr ~by:!voter_clean "sim.voter.clean";
    Obs.incr ~by:(List.length critical_windows) "sim.critical_windows";
    let dropped_jobs = ref 0 in
    Array.iter (fun d -> if d then incr dropped_jobs) dropped;
    Obs.incr ~by:!dropped_jobs "sim.dropped_jobs";
    Array.iter
      (fun a -> if a > 0 then Obs.observe "sim.reexec_attempts" a)
      attempt
  end;
  { finish; dropped;
    critical_at =
      (match critical_windows with (t, _) :: _ -> Some t | [] -> None);
    critical_windows;
    segments = List.rev !segments; graph_response; graph_complete;
    graph_deadline_ok }
