module Jobset = Mcmap_sched.Jobset
module Happ = Mcmap_hardening.Happ
module Arch = Mcmap_model.Arch
module Proc = Mcmap_model.Proc
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Task = Mcmap_model.Task
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique
module Prng = Mcmap_util.Prng

type result = {
  graph_wcrt : int option array;
  profiles : int;
  criticals : int;
}

let run ?(profiles = 1000) ?(bias = 0.3) ?(seed = 42) js =
  let n_graphs = Happ.n_graphs js.Jobset.happ in
  let graph_wcrt = Array.make n_graphs None in
  let criticals = ref 0 in
  for p = 0 to profiles - 1 do
    let profile = Fault_profile.random ~seed:(seed + p) ~bias js in
    let outcome = Engine.run js ~profile in
    if outcome.Engine.critical_at <> None then incr criticals;
    for g = 0 to n_graphs - 1 do
      match outcome.Engine.graph_response.(g) with
      | None -> ()
      | Some r ->
        (match graph_wcrt.(g) with
         | Some best when best >= r -> ()
         | Some _ | None -> graph_wcrt.(g) <- Some r)
    done
  done;
  { graph_wcrt; profiles; criticals = !criticals }

(* ------------------------------------------------------------------ *)
(* Event-level reliability estimation.

   Samples the raw fault events of one application instance — one
   Bernoulli coin per execution attempt or replica, a Poisson count for
   checkpointed tasks — and applies each hardening technique's
   *operational* failure rule. It deliberately shares nothing with the
   closed-form combinators in [Reliability.Fault_model] beyond the
   per-event probability, so agreement between the two is a meaningful
   differential check (used by [Check.Oracles.reliability_agreement]). *)

type failure_estimate = {
  trials : int;
  failures : int;
  estimate : float;
}

(* Knuth's product-of-uniforms Poisson sampler; fine for the small
   means (rate * duration << 1) this model produces. *)
let poisson rng mean =
  let limit = exp (-.mean) in
  let rec loop k p =
    let p = p *. Prng.float rng 1. in
    if p > limit then loop (k + 1) p else k in
  if mean <= 0. then 0 else loop 0 1.

let task_instance_fails rng arch apps plan ~graph ~task =
  let t = Graph.task (Appset.graph apps graph) task in
  let d = Plan.decision plan ~graph ~task in
  let scaled proc c = Proc.scale_time (Arch.proc arch proc) c in
  let exec_fault proc extra =
    let duration = scaled proc t.Task.wcet + extra in
    Prng.bernoulli rng
      (Proc.fault_probability (Arch.proc arch proc) duration) in
  let count_faults procs extra =
    List.fold_left
      (fun acc p -> if exec_fault p extra then acc + 1 else acc)
      0 procs in
  match d.Plan.technique with
  | Technique.No_hardening -> exec_fault d.Plan.primary_proc 0
  | Technique.Re_execution k ->
    (* fails only when all k+1 attempts fault *)
    let proc = d.Plan.primary_proc in
    let dt = scaled proc t.Task.detection_overhead in
    let rec attempt i = i > k || (exec_fault proc dt && attempt (i + 1)) in
    attempt 0
  | Technique.Checkpointing (segments, k) ->
    (* more than k faults over the checkpoint-extended execution *)
    let proc = d.Plan.primary_proc in
    let dt = scaled proc t.Task.detection_overhead in
    let duration = scaled proc t.Task.wcet + (segments * dt) in
    let rate = (Arch.proc arch proc).Proc.fault_rate in
    poisson rng (rate *. float_of_int duration) > k
  | Technique.Active_replication _ ->
    let procs =
      d.Plan.primary_proc :: Array.to_list d.Plan.replica_procs in
    let n = List.length procs in
    let faults = count_faults procs 0 in
    if n = 1 then faults = 1
    else if n = 2 then faults >= 1 (* duplication detects, cannot correct *)
    else faults >= (n / 2) + 1
  | Technique.Passive_replication m ->
    (* 2 actives + m spares tolerate up to m faults *)
    let procs =
      d.Plan.primary_proc :: Array.to_list d.Plan.replica_procs in
    count_faults procs 0 >= m + 1

(* Estimate the probability that one instance of [graph] fails (any of
   its tasks fails despite hardening). Compare with
   [Reliability.Analysis.graph_failure_rate] times the period. *)
let failure_probability ?(trials = 3000) ~seed arch apps plan ~graph =
  let rng = Prng.create seed in
  let n_tasks = Graph.n_tasks (Appset.graph apps graph) in
  let failures = ref 0 in
  for _ = 1 to trials do
    let failed = ref false in
    for task = 0 to n_tasks - 1 do
      if task_instance_fails rng arch apps plan ~graph ~task then
        failed := true
    done;
    if !failed then incr failures
  done;
  { trials; failures = !failures;
    estimate = float_of_int !failures /. float_of_int trials }
