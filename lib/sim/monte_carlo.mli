(** The WC-Sim baseline of paper §5.1: Monte-Carlo search for the worst
    observed response times over many random failure profiles (the paper
    uses 10,000). *)

type result = {
  graph_wcrt : int option array;
      (** per graph: maximum response observed over all profiles (among
          delivered instances); [None] if no instance ever delivered *)
  profiles : int;
  criticals : int;  (** how many profiles entered the critical state *)
}

val run :
  ?profiles:int ->
  ?bias:float ->
  ?seed:int ->
  Mcmap_sched.Jobset.t ->
  result
(** Defaults: 1,000 profiles (a quick-look budget — the WC-Sim
    experiment path, [Experiments.Table2] and
    [mcmap experiments --profiles], defaults to the paper's 10,000),
    fault bias 0.3, seed 42. Executions run at worst case; only the
    fault pattern varies across profiles. *)

(** {1 Event-level reliability estimation}

    Samples the raw fault events of one application instance and applies
    each hardening technique's operational failure rule. Deliberately
    shares nothing with the closed-form combinators in
    [Reliability.Fault_model] beyond the per-event probability, so
    agreement between the two is a meaningful differential check. *)

type failure_estimate = {
  trials : int;
  failures : int;
  estimate : float;  (** [failures / trials] *)
}

val failure_probability :
  ?trials:int ->
  seed:int ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  graph:int ->
  failure_estimate
(** Probability that one instance of [graph] fails (some task fails
    despite its hardening), estimated over [trials] (default 3,000)
    samples of the per-attempt fault events. Deterministic in [seed]. *)
