(** Pluggable interconnect backends.

    The paper models inter-processor communication as a single shared
    bus with a maximum bandwidth and a fixed per-transfer latency
    (§2.1). [Bus] keeps exactly those semantics. [Noc] generalises to a
    [cols] x [rows] 2D mesh with deterministic XY (dimension-ordered)
    routing: processor [i] sits at node [(i mod cols, i / cols)], a
    transfer pays a fixed injection cost [router_latency], a per-link
    cost [hop_latency] for each traversed link, and serialises its
    payload at [link_bandwidth] units per time step.

    Contention: the NoC is modelled as a predictable (TDM-style)
    network — [link_bandwidth] is the per-flow *guaranteed* share, so
    the worst-case per-link contention is folded into the parameter by
    construction and every bound stays a safe static bound.
    {!max_link_load} exposes how many all-to-all flows share the
    busiest link, to let callers judge how conservative that share is.

    Degenerate equivalence: [Noc {cols = n; rows = 1; link_bandwidth =
    bw; hop_latency = 0; router_latency = lat}] produces exactly the
    same {!comm_delay} as [Bus {bandwidth = bw; latency = lat}] for
    every (src, dst, size) — the correctness spine of the backend
    redesign (see DESIGN.md §15). *)

type t =
  | Bus of { bandwidth : int; latency : int }
      (** Shared bus: [bandwidth] payload units per time step,
          [latency] fixed start-up cost per remote transfer. *)
  | Noc of {
      cols : int;
      rows : int;
      link_bandwidth : int;
      hop_latency : int;
      router_latency : int;
    }
      (** 2D mesh, XY routing; see the module description. *)

val default : t
(** [Bus {bandwidth = 1; latency = 0}] — the historical default. *)

val validate : t -> unit
(** @raise Invalid_argument on non-positive bandwidth/mesh dimensions
    or negative latencies. *)

val capacity : t -> int
(** Number of processors the interconnect can attach: [cols * rows]
    for a mesh, unbounded ([max_int]) for a bus. *)

val bandwidth : t -> int
(** The per-transfer serialisation bandwidth (bus bandwidth, or the
    guaranteed per-flow link bandwidth of the mesh). *)

val coords : cols:int -> int -> int * int
(** [(node mod cols, node / cols)] — row-major placement. *)

val hops : t -> src:int -> dst:int -> int
(** Number of links an XY-routed transfer traverses: the Manhattan
    distance of the endpoints on a mesh; [0]/[1] on a bus. *)

val route : t -> src:int -> dst:int -> int list
(** The deterministic XY route as the list of visited nodes, [src]
    first and [dst] last ([[src]] when they coincide): the column
    index walks to the destination column, then the row index walks to
    the destination row. *)

val base_delay : t -> src:int -> dst:int -> int
(** The size-independent component of {!comm_delay}: [0] if
    [src = dst], the bus latency, or
    [router_latency + hop_latency * hops] on a mesh. [Arch] tabulates
    it densely per processor pair. *)

val comm_delay : t -> size:int -> src:int -> dst:int -> int
(** Worst-case transfer delay of a [size]-unit message: [0] if
    [src = dst]; otherwise the base latency (bus latency, or
    [router_latency + hop_latency * hops]) plus
    [ceil (size / bandwidth)] when [size > 0]. *)

val max_link_load : t -> n_procs:int -> int
(** Worst-case number of all-to-all unit flows sharing one directed
    link under XY routing (diagnostic; see the module description). *)

val equal : t -> t -> bool

val fingerprint :
  Mcmap_util.Fingerprint.t -> t -> Mcmap_util.Fingerprint.t
(** Absorbs the backend tag and every parameter, so caches keyed on
    the result cannot alias two different interconnects. *)

val describe : t -> string
(** One-line rendering, e.g. ["bus bw=2 lat=1"] or
    ["noc 3x2 linkbw=2 hop=1 router=1"] — shared by {!pp},
    [Arch.pp], and [mcmap stats] so human outputs agree. *)

val pp : Format.formatter -> t -> unit
