type t = {
  procs : Proc.t array;
  interconnect : Interconnect.t;
  base_delay : int array;
  bandwidth : int;
}

let make ?bus_bandwidth ?bus_latency ?interconnect procs =
  let interconnect =
    match interconnect with
    | Some ic ->
      if bus_bandwidth <> None || bus_latency <> None then
        invalid_arg
          "Arch.make: ~interconnect excludes ?bus_bandwidth/?bus_latency";
      ic
    | None ->
      Interconnect.Bus
        { bandwidth = Option.value bus_bandwidth ~default:1;
          latency = Option.value bus_latency ~default:0 } in
  if Array.length procs = 0 then invalid_arg "Arch.make: no processors";
  (match interconnect with
   | Interconnect.Bus { bandwidth; latency } ->
     (* Keep the historical messages: the bus path predates the
        backend split and tests pin them. *)
     if bandwidth <= 0 then invalid_arg "Arch.make: bandwidth must be > 0";
     if latency < 0 then invalid_arg "Arch.make: negative latency"
   | Interconnect.Noc _ -> Interconnect.validate interconnect);
  let n = Array.length procs in
  if n > Interconnect.capacity interconnect then
    invalid_arg
      (Printf.sprintf
         "Arch.make: %d processors exceed the %d-node mesh capacity" n
         (Interconnect.capacity interconnect));
  Array.iteri
    (fun i (p : Proc.t) ->
      if p.Proc.id <> i then
        invalid_arg "Arch.make: processor id must equal its index")
    procs;
  (* Dense src x dst table of the size-independent delay component, so
     [comm_delay] is O(1) for every backend (the flat engine's delay
     ints are baked from it at context build). *)
  let base_delay =
    Array.init (n * n) (fun k ->
        Interconnect.base_delay interconnect ~src:(k / n) ~dst:(k mod n))
  in
  { procs; interconnect;
    base_delay; bandwidth = Interconnect.bandwidth interconnect }

let n_procs t = Array.length t.procs

let proc t i =
  if i < 0 || i >= Array.length t.procs then
    invalid_arg "Arch.proc: processor id out of range";
  t.procs.(i)

let comm_delay t ~size ~src_proc ~dst_proc =
  if src_proc = dst_proc then 0
  else
    t.base_delay.((src_proc * Array.length t.procs) + dst_proc)
    + if size <= 0 then 0
      else Mcmap_util.Mathx.ceil_div size t.bandwidth

let pp ppf t =
  Format.fprintf ppf "@[<v>arch: %d procs, %a@," (n_procs t)
    Interconnect.pp t.interconnect;
  Array.iter (fun p -> Format.fprintf ppf "  %a@," Proc.pp p) t.procs;
  Format.fprintf ppf "@]"
