(** MPSoC architecture [A = (P, nw)] (paper §2.1).

    Processors communicate over a pluggable interconnect backend
    ({!Interconnect.t}): the paper's shared bus with a maximum
    bandwidth [bw_nw] and a fixed per-transfer latency, or a 2D-mesh
    NoC with XY routing. Faults on communication links are assumed
    transparent (handled by low-level error-resilient techniques), as
    in the paper. *)

type t = private {
  procs : Proc.t array;
  interconnect : Interconnect.t;
  base_delay : int array;
      (** dense [src * n + dst] table of the size-independent delay
          component, precomputed so {!comm_delay} is O(1) for every
          backend *)
  bandwidth : int;  (** serialisation bandwidth of the backend *)
}

val make :
  ?bus_bandwidth:int ->
  ?bus_latency:int ->
  ?interconnect:Interconnect.t ->
  Proc.t array ->
  t
(** Builds an architecture over [~interconnect] (default
    [Interconnect.default], a bandwidth-1 latency-0 bus). Processor
    ids must equal their array index, and a mesh must have at least as
    many nodes as there are processors.

    [?bus_bandwidth]/[?bus_latency] are deprecated spellings of
    [~interconnect:(Bus {bandwidth; latency})], kept so existing
    callers compile; they cannot be combined with [~interconnect].
    @raise Invalid_argument on inconsistent ids, an invalid
    interconnect, an overfull mesh, or mixing both parameter styles. *)

val n_procs : t -> int

val proc : t -> int -> Proc.t
(** @raise Invalid_argument if the id is out of range. *)

val comm_delay : t -> size:int -> src_proc:int -> dst_proc:int -> int
(** Worst-case transfer delay of a message of [size] payload units
    between the given processors: [0] if they are equal, otherwise the
    backend's base latency for the pair plus [ceil (size / bandwidth)]
    when [size > 0] (see {!Interconnect.comm_delay}). *)

val pp : Format.formatter -> t -> unit
