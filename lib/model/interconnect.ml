type t =
  | Bus of { bandwidth : int; latency : int }
  | Noc of {
      cols : int;
      rows : int;
      link_bandwidth : int;
      hop_latency : int;
      router_latency : int;
    }

let default = Bus { bandwidth = 1; latency = 0 }

let validate = function
  | Bus { bandwidth; latency } ->
    if bandwidth <= 0 then
      invalid_arg "Interconnect: bandwidth must be > 0";
    if latency < 0 then invalid_arg "Interconnect: negative latency"
  | Noc { cols; rows; link_bandwidth; hop_latency; router_latency } ->
    if cols <= 0 then invalid_arg "Interconnect: mesh cols must be > 0";
    if rows <= 0 then invalid_arg "Interconnect: mesh rows must be > 0";
    if link_bandwidth <= 0 then
      invalid_arg "Interconnect: link bandwidth must be > 0";
    if hop_latency < 0 then
      invalid_arg "Interconnect: negative hop latency";
    if router_latency < 0 then
      invalid_arg "Interconnect: negative router latency"

let capacity = function
  | Bus _ -> max_int
  | Noc { cols; rows; _ } -> cols * rows

let bandwidth = function
  | Bus { bandwidth; _ } -> bandwidth
  | Noc { link_bandwidth; _ } -> link_bandwidth

let coords ~cols node = (node mod cols, node / cols)

let hops t ~src ~dst =
  match t with
  | Bus _ -> if src = dst then 0 else 1
  | Noc { cols; _ } ->
    let sx, sy = coords ~cols src in
    let dx, dy = coords ~cols dst in
    abs (dx - sx) + abs (dy - sy)

let route t ~src ~dst =
  match t with
  | Bus _ -> if src = dst then [ src ] else [ src; dst ]
  | Noc { cols; _ } ->
    let sx, sy = coords ~cols src in
    let dx, dy = coords ~cols dst in
    let node x y = (y * cols) + x in
    let step a b = if a < b then a + 1 else a - 1 in
    (* X first, then Y: walk the column index to [dx], then the row
       index to [dy]. *)
    let rec walk_y x y acc =
      if y = dy then acc else walk_y x (step y dy) (node x (step y dy) :: acc)
    in
    let rec walk_x x y acc =
      if x = dx then walk_y x y acc
      else walk_x (step x dx) y (node (step x dx) y :: acc) in
    List.rev (walk_x sx sy [ node sx sy ])

(* Base (size-independent) part of the transfer delay; the payload
   serialisation term [ceil size/bandwidth] is charged on top by the
   caller when size > 0. [router_latency] is the fixed
   network-interface/injection cost charged once per transfer (not per
   router), so a bus maps exactly onto a 1xN zero-hop mesh. *)
let base_delay t ~src ~dst =
  if src = dst then 0
  else
    match t with
    | Bus { latency; _ } -> latency
    | Noc { hop_latency; router_latency; _ } ->
      router_latency + (hop_latency * hops t ~src ~dst)

let comm_delay t ~size ~src ~dst =
  if src = dst then 0
  else
    base_delay t ~src ~dst
    + (if size <= 0 then 0 else Mcmap_util.Mathx.ceil_div size (bandwidth t))

(* Worst-case number of all-to-all unit flows crossing any single
   directed link under XY routing (the bus is one link shared by every
   remote pair). With a TDM/predictable NoC the guaranteed per-flow
   share is already folded into [link_bandwidth], so this load figure
   is diagnostic — it quantifies how conservative that share is. *)
let max_link_load t ~n_procs =
  let n = max n_procs 0 in
  if n <= 1 then 0
  else
    match t with
    | Bus _ -> n * (n - 1)
    | Noc _ ->
      let loads = Hashtbl.create 64 in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then begin
            let rec links = function
              | a :: (b :: _ as rest) ->
                let key = (a, b) in
                Hashtbl.replace loads key
                  (1 + Option.value ~default:0 (Hashtbl.find_opt loads key));
                links rest
              | [ _ ] | [] -> () in
            links (route t ~src ~dst)
          end
        done
      done;
      Hashtbl.fold (fun _ c acc -> max c acc) loads 0

let equal a b =
  match a, b with
  | Bus a, Bus b -> a.bandwidth = b.bandwidth && a.latency = b.latency
  | Noc a, Noc b ->
    a.cols = b.cols && a.rows = b.rows
    && a.link_bandwidth = b.link_bandwidth
    && a.hop_latency = b.hop_latency
    && a.router_latency = b.router_latency
  | Bus _, Noc _ | Noc _, Bus _ -> false

let fingerprint fp t =
  let module F = Mcmap_util.Fingerprint in
  match t with
  | Bus { bandwidth; latency } ->
    F.int (F.int (F.int fp 1) bandwidth) latency
  | Noc { cols; rows; link_bandwidth; hop_latency; router_latency } ->
    F.int
      (F.int
         (F.int (F.int (F.int (F.int fp 2) cols) rows) link_bandwidth)
         hop_latency)
      router_latency

let describe = function
  | Bus { bandwidth; latency } ->
    Printf.sprintf "bus bw=%d lat=%d" bandwidth latency
  | Noc { cols; rows; link_bandwidth; hop_latency; router_latency } ->
    Printf.sprintf "noc %dx%d linkbw=%d hop=%d router=%d" cols rows
      link_bandwidth hop_latency router_latency

let pp ppf t = Format.pp_print_string ppf (describe t)
