(* Shared random-system generator: small architectures, small
   mixed-criticality application sets, and random hardening/mapping
   plans. Used by the property tests, the developer fuzzers and the
   differential checking subsystem ([lib/check]). *)

module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Criticality = Mcmap_model.Criticality
module Task = Mcmap_model.Task
module Channel = Mcmap_model.Channel
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset
module Plan = Mcmap_hardening.Plan
module Interconnect = Mcmap_model.Interconnect
module Prng = Mcmap_util.Prng

type system = {
  arch : Arch.t;
  apps : Appset.t;
  plan : Plan.t;
  seed : int;
}

let random_bus rng =
  Interconnect.Bus
    { bandwidth = Prng.int_in rng 1 4; latency = Prng.int_in rng 0 2 }

(* A mesh just big enough (or one node bigger) for [n_procs], with the
   small latencies the bus generator uses. *)
let random_noc rng ~n_procs =
  let cols = Prng.int_in rng 1 n_procs in
  let rows = Mcmap_util.Mathx.ceil_div n_procs cols in
  let rows = if Prng.bool rng then rows + 1 else rows in
  Interconnect.Noc
    { cols; rows;
      link_bandwidth = Prng.int_in rng 1 4;
      hop_latency = Prng.int_in rng 0 2;
      router_latency = Prng.int_in rng 0 2 }

let random_interconnect rng ~n_procs =
  if Prng.bool rng then random_bus rng else random_noc rng ~n_procs

let random_arch rng =
  let n = Prng.int_in rng 2 3 in
  let policy =
    if Prng.bool rng then Proc.Preemptive_fp else Proc.Non_preemptive_fp in
  Arch.make
    ~interconnect:(random_interconnect rng ~n_procs:n)
    (Array.init n (fun id ->
         Proc.make ~id
           ~name:(Format.asprintf "p%d" id)
           ~fault_rate:1e-4
           ~speed:(if Prng.bool rng then 1.0 else 1.25)
           ~policy ()))

let random_graph rng ~index =
  let n = Prng.int_in rng 1 4 in
  let tasks =
    Array.init n (fun id ->
        let wcet = Prng.int_in rng 5 30 in
        let bcet = Prng.int_in rng 1 wcet in
        Task.make ~id
          ~name:(Format.asprintf "g%dt%d" index id)
          ~wcet ~bcet
          ~detection_overhead:(Prng.int_in rng 1 3)
          ~voting_overhead:(Prng.int_in rng 1 2)
          ()) in
  (* chain plus occasional forward skip edges *)
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges :=
      Channel.make ~src:(v - 1) ~dst:v ~size:(Prng.int_in rng 0 6) ()
      :: !edges;
    if v >= 2 && Prng.bernoulli rng 0.3 then
      edges :=
        Channel.make ~src:(v - 2) ~dst:v ~size:(Prng.int_in rng 0 6) ()
        :: !edges
  done;
  let period = Prng.pick rng [| 50; 100; 200 |] in
  let criticality =
    if index > 0 && Prng.bool rng then
      Criticality.droppable (float_of_int (Prng.int_in rng 1 5))
    else Criticality.critical 1e-2 in
  Graph.make
    ~name:(Format.asprintf "g%d" index)
    ~tasks
    ~channels:(Array.of_list !edges)
    ~period ~criticality ()

let random_system seed =
  let rng = Prng.create seed in
  let arch = random_arch rng in
  let n_graphs = Prng.int_in rng 1 3 in
  let apps =
    Appset.make (Array.init n_graphs (fun index -> random_graph rng ~index))
  in
  let plan =
    Mcmap_benchmarks.Sampler.plan ~seed:(Prng.int rng 1_000_000)
      ~drop_all:(Prng.bool rng) arch apps in
  { arch; apps; plan; seed }
