(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (E1-E5) and measures the latency of each experiment's
   kernel with Bechamel (one Test.make per table/figure).

   Besides the text report the harness writes a machine-readable
   summary (BENCH.json): one entry per Bechamel kernel with its ns/run
   estimate, plus the key metrics recorded by the observability layer
   while the tables were regenerated.

   Environment:
     MCMAP_BENCH_FAST=1   shrink GA budgets and Monte-Carlo profiles
                          (useful in CI).
     MCMAP_BENCH_OUT=F    write the JSON summary to F instead of
                          BENCH.json. *)

module B = Mcmap_benchmarks
module H = Mcmap_hardening
module S = Mcmap_sched
module A = Mcmap_analysis
module Sim = Mcmap_sim
module D = Mcmap_dse
module E = Mcmap_experiments
module C = Mcmap_campaign
module Obs = Mcmap_obs.Obs
module Histogram = Mcmap_obs.Histogram
module Json = Mcmap_util.Json

let fast = Sys.getenv_opt "MCMAP_BENCH_FAST" = Some "1"

let bench_out =
  Option.value (Sys.getenv_opt "MCMAP_BENCH_OUT") ~default:"BENCH.json"

let profiles = if fast then 100 else 1000

let ga_config =
  if fast then
    { D.Ga.default_config with
      D.Ga.population = 12; offspring = 12; generations = 6 }
  else D.Ga.default_config

(* ------------------------------------------------------------------ *)
(* Table / figure regeneration *)

(* Section headers are flushed eagerly so a watcher (CI log, terminal)
   sees which experiment is running before its long computation. *)
let section title =
  print_endline title;
  flush stdout

let regenerate () =
  print_endline "==================================================";
  print_endline " mcmap: regenerating the paper's tables & figures";
  Printf.printf " (GA %d/%d/%d, %d Monte-Carlo profiles%s)\n"
    ga_config.D.Ga.population ga_config.D.Ga.offspring
    ga_config.D.Ga.generations profiles
    (if fast then ", FAST mode" else "");
  section "==================================================";
  print_endline "";
  section "-- E5 / Figure 1: motivational example --";
  print_string (E.Fig1.render (E.Fig1.run ()));
  print_endline "";
  section "-- E1 / Table 2: WCRT of the critical Cruise applications --";
  print_string (E.Table2.render (E.Table2.run ~profiles ()));
  Printf.printf "(paper, for shape comparison: %s)\n"
    (String.concat "; "
       (List.map
          (fun (m, (a1, a2), (w1, w2), (p1, p2), (n1, n2)) ->
            Printf.sprintf
              "mapping %d: adhoc %d/%d, wc-sim %d/%d, proposed %d/%d, \
               naive %d/%d"
              m a1 a2 w1 w2 p1 p2 n1 n2)
          E.Paper.table2));
  print_endline "";
  section "-- E2 / section 5.2: power with vs without task dropping --";
  print_string (E.Dropping.render (E.Dropping.run ~config:ga_config ()));
  print_endline "";
  section "-- E3 / section 5.2: solutions rescued by task dropping --";
  print_string (E.Rescue.render (E.Rescue.run ~config:ga_config ()));
  print_endline "";
  section "-- E4 / Figure 5: power/service Pareto front (DT-med) --";
  print_string (E.Fig5.render (E.Fig5.run ~config:ga_config ()));
  Printf.printf "(paper finds %d Pareto-optimal points)\n"
    E.Paper.fig5_pareto_points;
  print_endline "";
  print_endline
    "-- E6 (extension) / Table 1: the static-scheduling baseline --";
  print_string (E.Table1.render (E.Table1.run ()));
  print_endline
    "(static approaches must precompute one schedule per fault scenario;\n\
    \ the rigid all-worst-case schedule is exact for one configuration\n\
    \ but offers no run-time reaction — the paper's Table 1 argument)";
  print_endline "";
  section "-- E7 (extension): sensitivity & ablations --";
  print_endline "re-execution budget sweep (cruise, balanced mapping):";
  print_string (E.Sensitivity.render_k_sweep (E.Sensitivity.k_sweep ()));
  print_endline "priority-order ablation (cruise, balanced mapping):";
  print_string
    (E.Sensitivity.render_priority (E.Sensitivity.priority_ablation ()));
  print_endline
    "(under criticality-segregated priorities droppables never delay\n\
    \ criticals on preemptive processors and dropping loses its purpose\n\
    \ — which is why the paper's scheduler does not segregate)";
  print_endline "";
  print_endline
    "-- E8 (extension): optimizers on an equal evaluation budget --";
  print_string
    (E.Optimizers.render
       (E.Optimizers.run ~budget:(if fast then 120 else 800) ()));
  print_endline ""

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the kernel behind each table/figure *)

let cruise_ctx =
  lazy
    (let bench = B.Cruise.benchmark () in
     let plan = List.hd (B.Cruise.sample_plans bench) in
     let happ =
       H.Happ.build bench.B.Benchmark.arch bench.B.Benchmark.apps plan in
     let js = S.Jobset.build happ in
     (js, S.Bounds.make js))

let dt_med = lazy (B.Registry.find_exn "dt-med")

(* Campaign kernel: one 512-trial shard of a cruise fault-injection
   campaign (the unit of work the campaign engine schedules across
   domains). BENCH.json's ns/run for this kernel gives trials/sec. *)
let campaign_shard =
  lazy
    (let bench = B.Cruise.benchmark () in
     let plan = List.hd (B.Cruise.sample_plans bench) in
     let config = { C.Shard.default_config with trials = 512;
                    shard_trials = 512 } in
     let cplan =
       C.Shard.plan config bench.B.Benchmark.arch bench.B.Benchmark.apps
         plan in
     (cplan, cplan.C.Shard.shards.(0)))

let micro_ga =
  { D.Ga.default_config with
    D.Ga.population = 8; offspring = 8; generations = 2;
    check_rescue = false }

(* Evaluator-session kernels (DT-large, the heaviest benchmark):
   [evaluator_cold] pays a fresh session + full analysis per run on the
   reference engine (pinned, so it stays the denominator of the flat
   speedup contract), [flat_cold] is the same cold evaluation on the
   flat kernel — the contract, written to BENCH.json as
   [flat_vs_reference] and gated in CI, is flat >= 3x faster —
   [evaluator_warm] queries a pre-warmed session (the result-cache hit
   path every optimisation loop rides on — the contract is warm >= 3x
   cold), [eval_population] evaluates a 16-plan population on a fresh
   multi-domain session per run. *)
let evaluator_ctx =
  lazy
    (let bench = B.Registry.find_exn "dt-large" in
     let arch = bench.B.Benchmark.arch
     and apps = bench.B.Benchmark.apps in
     let plan = B.Sampler.balanced_plan ~seed:42 arch apps in
     let population =
       Array.init 16 (fun i -> B.Sampler.plan ~seed:(100 + i) arch apps) in
     let warm = D.Evaluator.create arch apps in
     ignore (D.Evaluator.eval warm plan);
     let domains = min 4 (Mcmap_util.Parallel.recommended_domains ()) in
     (arch, apps, plan, population, warm, domains))

let tests =
  let open Bechamel in
  [ (* Table 2 column "Proposed": one full Algorithm 1 run *)
    Test.make ~name:"table2/proposed(algorithm1)"
      (Staged.stage (fun () ->
           let _, ctx = Lazy.force cruise_ctx in
           ignore (A.Wcrt.analyze ctx)));
    (* Table 2 column "Naive" *)
    Test.make ~name:"table2/naive"
      (Staged.stage (fun () ->
           let _, ctx = Lazy.force cruise_ctx in
           ignore (A.Naive.analyze ctx)));
    (* Table 2 column "Adhoc": one worst-trace simulation *)
    Test.make ~name:"table2/adhoc(sim)"
      (Staged.stage (fun () ->
           let js, _ = Lazy.force cruise_ctx in
           ignore (Sim.Adhoc.run js)));
    (* Table 2 column "WC-Sim": 10 Monte-Carlo profiles *)
    Test.make ~name:"table2/wcsim(10 profiles)"
      (Staged.stage (fun () ->
           let js, _ = Lazy.force cruise_ctx in
           ignore (Sim.Monte_carlo.run ~profiles:10 js)));
    (* E2/E3/E4 kernel: one micro GA run on DT-med *)
    Test.make ~name:"fig5/dse(micro GA, dt-med)"
      (Staged.stage (fun () ->
           let bench = Lazy.force dt_med in
           ignore
             (D.Ga.optimize micro_ga bench.B.Benchmark.arch
                bench.B.Benchmark.apps)));
    (* E6 kernel: the static worst-case list schedule *)
    Test.make ~name:"table1/static list schedule"
      (Staged.stage (fun () ->
           let js, _ = Lazy.force cruise_ctx in
           ignore (Mcmap_sched.Static_schedule.worst_case js)));
    (* E5 kernel: the Figure 1 scenario *)
    Test.make ~name:"fig1/motivational"
      (Staged.stage (fun () -> ignore (E.Fig1.run ())));
    (* Campaign kernel: one 512-trial importance-sampling shard *)
    Test.make ~name:"campaign/shard(512 trials)"
      (Staged.stage (fun () ->
           let cplan, shard = Lazy.force campaign_shard in
           ignore (C.Shard.execute cplan shard)));
    (* Evaluator sessions: cold vs warm vs population (DT-large) *)
    Test.make ~name:"evaluator_cold"
      (Staged.stage (fun () ->
           let arch, apps, plan, _, _, _ = Lazy.force evaluator_ctx in
           let session =
             D.Evaluator.create ~engine:D.Evaluator.Reference arch apps in
           ignore (D.Evaluator.eval session plan)));
    Test.make ~name:"flat_cold"
      (Staged.stage (fun () ->
           let arch, apps, plan, _, _, _ = Lazy.force evaluator_ctx in
           let session =
             D.Evaluator.create ~engine:D.Evaluator.Flat arch apps in
           ignore (D.Evaluator.eval session plan)));
    Test.make ~name:"evaluator_warm"
      (Staged.stage (fun () ->
           let _, _, plan, _, warm, _ = Lazy.force evaluator_ctx in
           ignore (D.Evaluator.eval warm plan)));
    Test.make ~name:"eval_population"
      (Staged.stage (fun () ->
           let arch, apps, _, population, _, domains =
             Lazy.force evaluator_ctx in
           let session = D.Evaluator.create ~domains arch apps in
           ignore (D.Evaluator.eval_population session population))) ]

(* Runs every kernel, prints the text report and returns the estimates
   as [(name, ns_per_run option)] for the JSON summary. *)
let run_bechamel () =
  let open Bechamel in
  print_endline "==================================================";
  print_endline " Bechamel micro-benchmarks (one per table/figure)";
  section "==================================================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if fast then 0.25 else 1.0))
      ~kde:(Some 100) () in
  let kernels =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let stats = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let estimate =
              match Analyze.OLS.estimates ols_result with
              | Some [ ns_per_run ] ->
                Printf.printf "%-32s %12.1f ns/run (%8.3f ms)\n%!" name
                  ns_per_run (ns_per_run /. 1e6);
                Some ns_per_run
              | Some _ | None ->
                Printf.printf "%-32s (no estimate)\n%!" name;
                None in
            (name, estimate) :: acc)
          stats [])
      tests in
  print_endline "";
  kernels

(* ------------------------------------------------------------------ *)
(* Machine-readable summary *)

let json_of_metric : Obs.metric -> Json.t = function
  | Obs.Counter n -> Json.Int n
  | Obs.Gauge v -> Json.Float v
  | Obs.Histogram h ->
    if Histogram.is_empty h then Json.Obj [ ("count", Json.Int 0) ]
    else
      Json.Obj
        [ ("count", Json.Int h.Histogram.count);
          ("sum", Json.Int h.Histogram.sum);
          ("min", Json.Int h.Histogram.minimum);
          ("max", Json.Int h.Histogram.maximum);
          ("mean", Json.Float (Histogram.mean h)) ]
  | Obs.Series points ->
    Json.List
      (List.map
         (fun (x, v) -> Json.List [ Json.Int x; Json.Float v ])
         points)

(* The flat-kernel speedup contract: cold DT-large evaluation on the
   flat engine must be at least [min_speedup] times faster than the same
   evaluation on the reference engine. Written into BENCH.json so CI can
   gate on it without re-deriving the kernel names. *)
let flat_contract kernels =
  let find name =
    match List.assoc_opt name kernels with
    | Some (Some ns) -> Some ns
    | Some None | None -> None in
  match (find "evaluator_cold", find "flat_cold") with
  | Some reference_ns, Some flat_ns when flat_ns > 0. ->
    let min_speedup = 3.0 in
    let speedup = reference_ns /. flat_ns in
    [ ( "flat_vs_reference",
        Json.Obj
          [ ("reference_ns", Json.Float reference_ns);
            ("flat_ns", Json.Float flat_ns);
            ("speedup", Json.Float speedup);
            ("min_speedup", Json.Float min_speedup);
            ("ok", Json.Bool (speedup >= min_speedup)) ] ) ]
  | _ -> []

let write_summary ~kernels ~(snapshot : Obs.snapshot) =
  let json =
    Json.Obj
      ([ ("fast", Json.Bool fast);
        ( "ga_config",
          Json.Obj
            [ ("population", Json.Int ga_config.D.Ga.population);
              ("offspring", Json.Int ga_config.D.Ga.offspring);
              ("generations", Json.Int ga_config.D.Ga.generations) ] );
        ("monte_carlo_profiles", Json.Int profiles);
        ( "kernels_ns_per_run",
          Json.Obj
            (List.map
               (fun (name, estimate) ->
                 ( name,
                   match estimate with
                   | Some ns -> Json.Float ns
                   | None -> Json.Null ))
               (List.sort compare kernels)) );
        ( "metrics",
          Json.Obj
            (List.map
               (fun (name, m) -> (name, json_of_metric m))
               snapshot.Obs.metrics) ) ]
       @ flat_contract kernels) in
  let oc = open_out bench_out in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "machine-readable summary written to %s\n%!" bench_out

let () =
  (* Record metrics while the tables are regenerated, then freeze the
     snapshot and disable the recorder so the Bechamel micro-benchmarks
     time the uninstrumented (disabled-recorder) path. *)
  Obs.enable ();
  regenerate ();
  let snapshot = Obs.snapshot () in
  Obs.disable ();
  let kernels = run_bechamel () in
  write_summary ~kernels ~snapshot
