(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (E1-E5) and measures the latency of each kernel behind
   them with the Bechamel suite in [Mcmap_benchkit.Kernels].

   Besides the text report the harness writes a machine-readable
   summary (BENCH.json, schema v2 — see [Mcmap_benchkit.Schema]): one
   dispersion record per kernel, the key metrics recorded by the
   observability layer while the tables were regenerated, and the
   performance contracts [mcmap bench gate] enforces in CI.

   Environment:
     MCMAP_BENCH_FAST=1   shrink GA budgets and Monte-Carlo profiles
                          (useful in CI).
     MCMAP_BENCH_OUT=F    write the JSON summary to F instead of
                          BENCH.json. *)

module D = Mcmap_dse
module E = Mcmap_experiments
module Obs = Mcmap_obs.Obs
module Histogram = Mcmap_obs.Histogram
module Json = Mcmap_util.Json
module Kernels = Mcmap_benchkit.Kernels
module Schema = Mcmap_benchkit.Schema

let fast = Kernels.fast_requested ()

let bench_out =
  Option.value (Sys.getenv_opt "MCMAP_BENCH_OUT") ~default:"BENCH.json"

let profiles = if fast then 100 else 1000

let ga_config =
  if fast then
    { D.Ga.default_config with
      D.Ga.population = 12; offspring = 12; generations = 6 }
  else D.Ga.default_config

(* ------------------------------------------------------------------ *)
(* Table / figure regeneration *)

(* Section headers are flushed eagerly so a watcher (CI log, terminal)
   sees which experiment is running before its long computation. *)
let section title =
  print_endline title;
  flush stdout

let regenerate () =
  print_endline "==================================================";
  print_endline " mcmap: regenerating the paper's tables & figures";
  Printf.printf " (GA %d/%d/%d, %d Monte-Carlo profiles%s)\n"
    ga_config.D.Ga.population ga_config.D.Ga.offspring
    ga_config.D.Ga.generations profiles
    (if fast then ", FAST mode" else "");
  section "==================================================";
  print_endline "";
  section "-- E5 / Figure 1: motivational example --";
  print_string (E.Fig1.render (E.Fig1.run ()));
  print_endline "";
  section "-- E1 / Table 2: WCRT of the critical Cruise applications --";
  print_string (E.Table2.render (E.Table2.run ~profiles ()));
  Printf.printf "(paper, for shape comparison: %s)\n"
    (String.concat "; "
       (List.map
          (fun (m, (a1, a2), (w1, w2), (p1, p2), (n1, n2)) ->
            Printf.sprintf
              "mapping %d: adhoc %d/%d, wc-sim %d/%d, proposed %d/%d, \
               naive %d/%d"
              m a1 a2 w1 w2 p1 p2 n1 n2)
          E.Paper.table2));
  print_endline "";
  section "-- E2 / section 5.2: power with vs without task dropping --";
  print_string (E.Dropping.render (E.Dropping.run ~config:ga_config ()));
  print_endline "";
  section "-- E3 / section 5.2: solutions rescued by task dropping --";
  print_string (E.Rescue.render (E.Rescue.run ~config:ga_config ()));
  print_endline "";
  section "-- E4 / Figure 5: power/service Pareto front (DT-med) --";
  print_string (E.Fig5.render (E.Fig5.run ~config:ga_config ()));
  Printf.printf "(paper finds %d Pareto-optimal points)\n"
    E.Paper.fig5_pareto_points;
  print_endline "";
  print_endline
    "-- E6 (extension) / Table 1: the static-scheduling baseline --";
  print_string (E.Table1.render (E.Table1.run ()));
  print_endline
    "(static approaches must precompute one schedule per fault scenario;\n\
    \ the rigid all-worst-case schedule is exact for one configuration\n\
    \ but offers no run-time reaction — the paper's Table 1 argument)";
  print_endline "";
  section "-- E7 (extension): sensitivity & ablations --";
  print_endline "re-execution budget sweep (cruise, balanced mapping):";
  print_string (E.Sensitivity.render_k_sweep (E.Sensitivity.k_sweep ()));
  print_endline "priority-order ablation (cruise, balanced mapping):";
  print_string
    (E.Sensitivity.render_priority (E.Sensitivity.priority_ablation ()));
  print_endline
    "(under criticality-segregated priorities droppables never delay\n\
    \ criticals on preemptive processors and dropping loses its purpose\n\
    \ — which is why the paper's scheduler does not segregate)";
  print_endline "";
  print_endline
    "-- E8 (extension): optimizers on an equal evaluation budget --";
  print_string
    (E.Optimizers.render
       (E.Optimizers.run ~budget:(if fast then 120 else 800) ()));
  print_endline ""

(* ------------------------------------------------------------------ *)
(* Machine-readable summary *)

let json_of_metric : Obs.metric -> Json.t = function
  | Obs.Counter n -> Json.Int n
  | Obs.Gauge v -> Json.Float v
  | Obs.Histogram h ->
    if Histogram.is_empty h then Json.Obj [ ("count", Json.Int 0) ]
    else
      Json.Obj
        [ ("count", Json.Int h.Histogram.count);
          ("sum", Json.Int h.Histogram.sum);
          ("min", Json.Int h.Histogram.minimum);
          ("max", Json.Int h.Histogram.maximum);
          ("mean", Json.Float (Histogram.mean h));
          ("p50", Json.Int (Histogram.quantile h 0.50));
          ("p90", Json.Int (Histogram.quantile h 0.90));
          ("p99", Json.Int (Histogram.quantile h 0.99)) ]
  | Obs.Series points ->
    Json.List
      (List.map
         (fun (x, v) -> Json.List [ Json.Int x; Json.Float v ])
         points)

let () =
  (* Record metrics while the tables are regenerated, then freeze the
     snapshot and disable the recorder so the Bechamel micro-benchmarks
     time the uninstrumented (disabled-recorder) path — except the
     [evaluator_cold_obs] kernel, which re-enables it on purpose. *)
  Obs.enable ();
  regenerate ();
  let snapshot = Obs.snapshot () in
  Obs.disable ();
  print_endline "==================================================";
  print_endline " Bechamel micro-benchmarks (one per table/figure)";
  section "==================================================";
  let kernels = Kernels.run_all ~fast ~progress:print_endline () in
  print_endline "";
  let summary =
    { Schema.fast;
      env = Schema.env_now ();
      kernels;
      metrics =
        List.map
          (fun (name, m) -> (name, json_of_metric m))
          snapshot.Obs.metrics;
      contracts = Kernels.contracts kernels } in
  Schema.write bench_out summary;
  Printf.printf "machine-readable summary written to %s\n%!" bench_out
