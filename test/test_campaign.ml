(* Tests for mcmap.campaign: the stratified importance-sampling
   fault-injection engine, its checkpoint format, and the campaign
   report. *)

module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Criticality = Mcmap_model.Criticality
module Task = Mcmap_model.Task
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset
module Technique = Mcmap_hardening.Technique
module Plan = Mcmap_hardening.Plan
module Analysis = Mcmap_reliability.Analysis
module Events = Mcmap_campaign.Events
module Estimator = Mcmap_campaign.Estimator
module Shard = Mcmap_campaign.Shard
module Checkpoint = Mcmap_campaign.Checkpoint
module Aggregate = Mcmap_campaign.Aggregate
module Campaign = Mcmap_campaign.Campaign

let check = Alcotest.check

let arch ?(fault_rate = 1e-4) () =
  Arch.make
    (Array.init 4 (fun id ->
         Proc.make ~id ~name:(Format.asprintf "p%d" id) ~fault_rate ()))

let decision ?(technique = Technique.No_hardening) ?(replicas = [||])
    ?(voter = 0) primary =
  { Plan.technique; primary_proc = primary; replica_procs = replicas;
    voter_proc = voter }

(* One graph with a re-executed task, a triplicated (voting) task and a
   checkpointed task — every event-model shape in one problem. *)
let mixed_problem ?(fault_rate = 1e-4) () =
  let a = arch ~fault_rate () in
  let tasks =
    [| Task.make ~id:0 ~name:"re" ~wcet:50 ~detection_overhead:5 ();
       Task.make ~id:1 ~name:"vote" ~wcet:40 ~detection_overhead:4 ();
       Task.make ~id:2 ~name:"ckpt" ~wcet:60 ~detection_overhead:6 () |]
  in
  let apps =
    Appset.make
      [| Graph.make ~name:"mixed" ~tasks ~channels:[||] ~period:1000
           ~criticality:(Criticality.critical 1e-6) () |] in
  let decisions =
    [| [| decision ~technique:(Technique.re_execution 1) 0;
          decision
            ~technique:(Technique.active_replication 3)
            ~replicas:[| 1; 2 |] ~voter:3 0;
          decision
            ~technique:(Technique.checkpointing ~segments:2 ~k:1)
            1 |] |] in
  let plan = Plan.make apps ~decisions ~dropped:[| false |] in
  (a, apps, plan)

let single_technique_problem ~fault_rate ~technique ~replicas () =
  let a = arch ~fault_rate () in
  let apps =
    Appset.make
      [| Graph.make ~name:"g"
           ~tasks:
             [| Task.make ~id:0 ~name:"t" ~wcet:50 ~detection_overhead:5
                  () |]
           ~channels:[||] ~period:1000
           ~criticality:(Criticality.critical 1e-6) () |] in
  let decisions = [| [| decision ~technique ~replicas ~voter:3 0 |] |] in
  let plan = Plan.make apps ~decisions ~dropped:[| false |] in
  (a, apps, plan)

(* ------------------------------------------------------------------ *)
(* Strata *)

(* Poisson-binomial by direct convolution, the reference for the
   estimator's suffix DP. *)
let brute_strata affected =
  let n = Array.length affected in
  let dist = Array.make (n + 1) 0. in
  dist.(0) <- 1.;
  Array.iter
    (fun a ->
      for k = n downto 0 do
        let with_hit = if k = 0 then 0. else dist.(k - 1) *. a in
        dist.(k) <- (dist.(k) *. (1. -. a)) +. with_hit
      done)
    affected;
  dist

let test_strata_match_brute_force () =
  let a, apps, plan = mixed_problem () in
  let model = Events.build a apps plan ~graph:0 in
  let est = Estimator.make model in
  let pi = Estimator.strata est in
  let expected =
    brute_strata
      (Array.map (fun t -> t.Events.affected_truth) model.Events.tasks)
  in
  Array.iteri
    (fun s p ->
      check (Alcotest.float 1e-12) (Format.asprintf "pi_%d" s) p pi.(s))
    expected;
  let total = Array.fold_left ( +. ) 0. pi in
  check (Alcotest.float 1e-12) "strata sum to 1" 1. total

let test_failure_rules () =
  let coins rule =
    Events.Coins { truth = [| 0.1; 0.1; 0.1 |]; proposal = [| 0.2; 0.2; 0.2 |]; rule }
  in
  check Alcotest.bool "all-fail needs every coin" true
    (Events.failure_of_count (coins Events.All_fail) 3);
  check Alcotest.bool "all-fail survives a miss" false
    (Events.failure_of_count (coins Events.All_fail) 2);
  check Alcotest.bool "majority lost at 2 of 3" true
    (Events.failure_of_count (coins (Events.At_least 2)) 2);
  check Alcotest.bool "majority held at 1 of 3" false
    (Events.failure_of_count (coins (Events.At_least 2)) 1);
  let poisson =
    Events.Poisson { truth_mean = 0.1; proposal_mean = 0.5; tolerated = 1 }
  in
  check Alcotest.bool "within rollback budget" false
    (Events.failure_of_count poisson 1);
  check Alcotest.bool "beyond rollback budget" true
    (Events.failure_of_count poisson 2)

(* ------------------------------------------------------------------ *)
(* Campaign vs closed form *)

let campaign_config =
  { Shard.default_config with Shard.trials = 20_000; shard_trials = 2048;
    seed = 7 }

let assert_closed_in_ci what (a, apps, plan) =
  match Campaign.run campaign_config a apps plan with
  | Error e -> Alcotest.failf "%s: %s" what e
  | Ok outcome ->
    check Alcotest.bool (what ^ ": report complete") true
      outcome.Campaign.report.Aggregate.complete;
    List.iter
      (fun (g : Aggregate.graph_report) ->
        if not g.Aggregate.closed_in_ci then
          Alcotest.failf
            "%s: closed form %.6e outside CI [%.6e, %.6e] (estimate \
             %.6e, %d failures in %d trials)"
            what g.Aggregate.closed_form g.Aggregate.lo g.Aggregate.hi
            g.Aggregate.estimate g.Aggregate.failures g.Aggregate.trials)
      outcome.Campaign.report.Aggregate.graphs

(* Per-event fault probabilities swept from ~5e-4 down to ~5e-10: the
   graph failure probabilities reach 3e-19, twelve orders of magnitude
   below anything naive Monte-Carlo could observe in the trial budget. *)
let rare_event_rates = [ 1e-5, "1e-3"; 1e-8, "1e-6"; 1e-11, "1e-9" ]

let test_re_execution_vs_closed_form () =
  List.iter
    (fun (fault_rate, label) ->
      assert_closed_in_ci
        ("re-execution, q ~ " ^ label)
        (single_technique_problem ~fault_rate
           ~technique:(Technique.re_execution 1) ~replicas:[||] ()))
    rare_event_rates

let test_voting_vs_closed_form () =
  List.iter
    (fun (fault_rate, label) ->
      assert_closed_in_ci
        ("3-way voting, q ~ " ^ label)
        (single_technique_problem ~fault_rate
           ~technique:(Technique.active_replication 3)
           ~replicas:[| 1; 2 |] ()))
    rare_event_rates

let test_mixed_graph_vs_closed_form () =
  List.iter
    (fun fault_rate ->
      assert_closed_in_ci "mixed techniques"
        (mixed_problem ~fault_rate ()))
    [ 1e-4; 1e-8 ]

let test_trial_budget_bounded () =
  let a, apps, plan = mixed_problem ~fault_rate:1e-8 () in
  match Campaign.run campaign_config a apps plan with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    check Alcotest.bool "within 1e6 trials" true
      (outcome.Campaign.report.Aggregate.total_trials <= 1_000_000)

(* ------------------------------------------------------------------ *)
(* Determinism, checkpointing, resume *)

let with_temp f =
  let path = Filename.temp_file "mcmap_campaign" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ()) (fun () -> f path)

let read_file path =
  let ic = open_in path in
  let s = In_channel.input_all ic in
  close_in ic;
  s

let test_domains_agree () =
  let a, apps, plan = mixed_problem () in
  let run domains =
    match Campaign.run ~domains campaign_config a apps plan with
    | Error e -> Alcotest.fail e
    | Ok o -> o in
  let one = run 1 and four = run 4 in
  check Alcotest.bool "1-domain report = 4-domain report" true
    (one.Campaign.report = four.Campaign.report);
  (* Shard results are identical up to wall time, which is the one field
     the engine never feeds into estimates. *)
  let strip (r : Shard.result) =
    (r.Shard.shard, r.Shard.failures, r.Shard.sum_w, r.Shard.sum_w2,
     r.Shard.max_w) in
  check Alcotest.bool "identical shard results" true
    (List.map strip one.Campaign.results
     = List.map strip four.Campaign.results)

let test_kill_and_resume_bit_for_bit () =
  let a, apps, plan = mixed_problem () in
  with_temp (fun ckpt ->
      with_temp (fun report_a ->
          with_temp (fun report_b ->
              let uninterrupted =
                match
                  Campaign.run ~checkpoint:ckpt campaign_config a apps
                    plan
                with
                | Error e -> Alcotest.fail e
                | Ok o -> o in
              Aggregate.write ~path:report_a
                uninterrupted.Campaign.report;
              (* Kill: keep the header and the first few shard lines,
                 cutting the last kept line in half mid-float. *)
              let lines = String.split_on_char '\n' (read_file ckpt) in
              let kept = List.filteri (fun i _ -> i < 4) lines in
              let oc = open_out ckpt in
              List.iteri
                (fun i line ->
                  if i < 3 then begin
                    output_string oc line;
                    output_char oc '\n'
                  end
                  else
                    output_string oc
                      (String.sub line 0 (String.length line / 2)))
                kept;
              close_out oc;
              let resumed =
                match
                  Campaign.run ~checkpoint:ckpt ~resume:true
                    campaign_config a apps plan
                with
                | Error e -> Alcotest.fail e
                | Ok o -> o in
              check Alcotest.bool "some shards were replayed" true
                (resumed.Campaign.replayed > 0);
              check Alcotest.bool "some shards were re-executed" true
                (resumed.Campaign.executed > 0);
              Aggregate.write ~path:report_b resumed.Campaign.report;
              check Alcotest.string "bit-for-bit identical report"
                (read_file report_a) (read_file report_b);
              check Alcotest.bool "identical in-memory report" true
                (uninterrupted.Campaign.report = resumed.Campaign.report))))

let test_checkpoint_rejects_other_config () =
  let a, apps, plan = mixed_problem () in
  with_temp (fun ckpt ->
      (match Campaign.run ~checkpoint:ckpt campaign_config a apps plan with
       | Error e -> Alcotest.fail e
       | Ok _ -> ());
      let other = { campaign_config with Shard.seed = 8 } in
      match
        Campaign.run ~checkpoint:ckpt ~resume:true other a apps plan
      with
      | Error _ -> ()
      | Ok _ ->
        Alcotest.fail "resume under a different seed must be refused")

let test_report_from_partial_checkpoint () =
  let a, apps, plan = mixed_problem () in
  with_temp (fun ckpt ->
      (match Campaign.run ~checkpoint:ckpt campaign_config a apps plan with
       | Error e -> Alcotest.fail e
       | Ok _ -> ());
      (* Drop the tail of the file: the partial report must flag itself
         incomplete and keep sound (wider) bounds. *)
      let lines = String.split_on_char '\n' (read_file ckpt) in
      let kept = List.filteri (fun i _ -> i < 3) lines in
      let oc = open_out ckpt in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        kept;
      close_out oc;
      match
        Campaign.report_from_checkpoint ~checkpoint:ckpt campaign_config
          a apps plan
      with
      | Error e -> Alcotest.fail e
      | Ok partial ->
        check Alcotest.bool "flagged incomplete" false
          partial.Campaign.report.Aggregate.complete;
        List.iter
          (fun (g : Aggregate.graph_report) ->
            check Alcotest.bool "closed form still inside bounds" true
              g.Aggregate.closed_in_ci)
          partial.Campaign.report.Aggregate.graphs)

let suite =
  [ Alcotest.test_case "strata match brute force" `Quick
      test_strata_match_brute_force;
    Alcotest.test_case "failure rules" `Quick test_failure_rules;
    Alcotest.test_case "re-execution vs closed form (q to 1e-9)" `Quick
      test_re_execution_vs_closed_form;
    Alcotest.test_case "voting vs closed form (q to 1e-9)" `Quick
      test_voting_vs_closed_form;
    Alcotest.test_case "mixed graph vs closed form" `Quick
      test_mixed_graph_vs_closed_form;
    Alcotest.test_case "trial budget bounded" `Quick
      test_trial_budget_bounded;
    Alcotest.test_case "1 domain = 4 domains" `Quick test_domains_agree;
    Alcotest.test_case "kill and resume, bit for bit" `Quick
      test_kill_and_resume_bit_for_bit;
    Alcotest.test_case "resume refuses foreign checkpoint" `Quick
      test_checkpoint_rejects_other_config;
    Alcotest.test_case "partial checkpoint report" `Quick
      test_report_from_partial_checkpoint ]
