module Test_gen = Mcmap_gen.Gen

(* Unit and property tests for mcmap.dse: genome operators,
   decode/repair, SPEA2 and the GA loop. *)

module Arch = Mcmap_model.Arch
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Technique = Mcmap_hardening.Technique
module Plan = Mcmap_hardening.Plan
module Genome = Mcmap_dse.Genome
module Decode = Mcmap_dse.Decode
module Evaluate = Mcmap_dse.Evaluate
module Spea2 = Mcmap_dse.Spea2
module Ga = Mcmap_dse.Ga
module Explore = Mcmap_dse.Explore
module Evaluator = Mcmap_dse.Evaluator
module Reliability = Mcmap_reliability.Analysis
module Prng = Mcmap_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let small_system seed =
  let sys = Test_gen.random_system seed in
  (sys.Test_gen.arch, sys.Test_gen.apps)

let genome_matches_shape arch apps (g : Genome.t) =
  Array.length g.Genome.alloc = Arch.n_procs arch
  && Array.length g.Genome.nondrop = Appset.n_graphs apps
  && Array.length g.Genome.genes = Appset.n_graphs apps
  && Array.for_all
       (fun b -> b)
       (Array.mapi
          (fun gi row ->
            Array.length row = Graph.n_tasks (Appset.graph apps gi))
          g.Genome.genes)

(* ------------------------------------------------------------------ *)
(* Genome *)

let prop_random_genome_shape =
  QCheck.Test.make ~name:"random genome matches the problem shape"
    ~count:100 QCheck.small_int
    (fun seed ->
      let arch, apps = small_system seed in
      let rng = Prng.create seed in
      genome_matches_shape arch apps (Genome.random rng arch apps))

let prop_seeded_genome_shape =
  QCheck.Test.make ~name:"seeded genome matches the problem shape"
    ~count:100 QCheck.small_int
    (fun seed ->
      let arch, apps = small_system seed in
      let rng = Prng.create seed in
      let g = Genome.seeded rng arch apps in
      genome_matches_shape arch apps g
      && Array.for_all (fun b -> b) g.Genome.alloc)

let prop_crossover_preserves_shape =
  QCheck.Test.make ~name:"crossover children keep the shape" ~count:100
    QCheck.small_int
    (fun seed ->
      let arch, apps = small_system seed in
      let rng = Prng.create seed in
      let a = Genome.random rng arch apps in
      let b = Genome.random rng arch apps in
      let c1, c2 = Genome.crossover rng a b in
      genome_matches_shape arch apps c1 && genome_matches_shape arch apps c2)

let prop_crossover_mixes_parents =
  QCheck.Test.make ~name:"crossover genes come from a parent" ~count:100
    QCheck.small_int
    (fun seed ->
      let arch, apps = small_system seed in
      let rng = Prng.create seed in
      let a = Genome.random rng arch apps in
      let b = Genome.random rng arch apps in
      let c1, _ = Genome.crossover rng a b in
      Array.for_all
        (fun b -> b)
        (Array.mapi
           (fun gi row ->
             Array.for_all
               (fun b -> b)
               (Array.mapi
                  (fun ti gene ->
                    gene = a.Genome.genes.(gi).(ti)
                    || gene = b.Genome.genes.(gi).(ti))
                  row))
           c1.Genome.genes))

let prop_mutation_preserves_shape =
  QCheck.Test.make ~name:"mutation keeps the shape and critical nondrop"
    ~count:100 QCheck.small_int
    (fun seed ->
      let arch, apps = small_system seed in
      let rng = Prng.create seed in
      let g = Genome.random rng arch apps in
      let m = Genome.mutate rng ~rate:0.5 arch apps g in
      genome_matches_shape arch apps m
      && Array.for_all
           (fun b -> b)
           (Array.mapi
              (fun gi bit ->
                if Graph.is_droppable (Appset.graph apps gi) then true
                else bit)
              m.Genome.nondrop))

(* ------------------------------------------------------------------ *)
(* Decode / repair *)

let prop_decode_placement_feasible =
  QCheck.Test.make
    ~name:"decoded plans are always placement-feasible" ~count:100
    QCheck.small_int
    (fun seed ->
      let arch, apps = small_system seed in
      let rng = Prng.create seed in
      let genome = Genome.random rng arch apps in
      let plan = Decode.decode rng arch apps genome in
      Plan.errors arch apps plan = [])

let prop_decode_force_no_dropping =
  QCheck.Test.make ~name:"force_no_dropping yields an empty dropped set"
    ~count:100 QCheck.small_int
    (fun seed ->
      let arch, apps = small_system seed in
      let rng = Prng.create seed in
      let genome = Genome.random rng arch apps in
      let plan = Decode.decode rng ~force_no_dropping:true arch apps genome in
      Plan.dropped_graphs plan = [])

let test_decode_repairs_reliability () =
  (* a 1-task critical graph with a tight bound: decode must harden *)
  let arch =
    Arch.make
      (Array.init 3 (fun id ->
           Mcmap_model.Proc.make ~id ~name:(Format.asprintf "p%d" id)
             ~fault_rate:1e-4 ())) in
  let apps =
    Appset.make
      [| Mcmap_model.Graph.make ~name:"g"
           ~tasks:
             [| Mcmap_model.Task.make ~id:0 ~name:"t" ~wcet:100
                  ~detection_overhead:5 ~voting_overhead:2 () |]
           ~channels:[||] ~period:1000
           ~criticality:(Mcmap_model.Criticality.critical 1e-9) () |] in
  let rng = Prng.create 3 in
  let genome = Genome.random rng arch apps in
  let plan = Decode.decode rng arch apps genome in
  check (Alcotest.list Alcotest.string) "placement ok" []
    (Plan.errors arch apps plan);
  check Alcotest.int "reliability repaired" 0
    (List.length (Reliability.violations arch apps plan))

(* ------------------------------------------------------------------ *)
(* Evaluate *)

let test_evaluate_objectives () =
  let sys = Test_gen.random_system 8 in
  let e =
    Evaluate.evaluate ~check_rescue:false sys.Test_gen.arch
      sys.Test_gen.apps sys.Test_gen.plan in
  check Alcotest.bool "power positive" true (e.Evaluate.power > 0.);
  check Alcotest.bool "service non-negative" true (e.Evaluate.service >= 0.);
  check (Alcotest.float 1e-9) "objective 0 is power" e.Evaluate.power
    e.Evaluate.objectives.(0);
  check (Alcotest.float 1e-9) "objective 1 is -service"
    (-.e.Evaluate.service) e.Evaluate.objectives.(1);
  if Evaluate.feasible e then
    check (Alcotest.float 1e-9) "feasible => no violation" 0.
      e.Evaluate.violation

let test_dropping_lowers_power () =
  (* dropping a graph lowers the provisioned (critical-state) power *)
  let sys = Test_gen.random_system 21 in
  let apps = sys.Test_gen.apps in
  match Appset.droppable_graphs apps with
  | [] -> ()
  | g :: _ ->
    let keep = Plan.with_dropped sys.Test_gen.plan ~graph:g false in
    let drop = Plan.with_dropped sys.Test_gen.plan ~graph:g true in
    let p_keep = Evaluate.power_of_plan sys.Test_gen.arch apps keep in
    let p_drop = Evaluate.power_of_plan sys.Test_gen.arch apps drop in
    check Alcotest.bool "dropping saves provisioned power" true
      (p_drop <= p_keep +. 1e-9)

(* ------------------------------------------------------------------ *)
(* SPEA2 *)

let ind objectives violation =
  Spea2.make_individual ~payload:() ~objectives ~violation

let test_spea2_constraint_domination () =
  let feasible = ind [| 5.; 5. |] 0. in
  let infeasible_small = ind [| 1.; 1. |] 0.5 in
  let infeasible_big = ind [| 1.; 1. |] 2.0 in
  check Alcotest.bool "feasible beats infeasible" true
    (Spea2.dominates feasible infeasible_small);
  check Alcotest.bool "infeasible never beats feasible" false
    (Spea2.dominates infeasible_small feasible);
  check Alcotest.bool "smaller violation wins" true
    (Spea2.dominates infeasible_small infeasible_big)

let test_spea2_fitness_ranks_front_first () =
  let pop =
    [| ind [| 1.; 3. |] 0.; ind [| 3.; 1. |] 0.; ind [| 2.; 2. |] 0.;
       ind [| 4.; 4. |] 0. |] in
  Spea2.assign_fitness pop;
  (* the dominated individual must have fitness >= 1 *)
  check Alcotest.bool "dominated individual penalised" true
    (pop.(3).Spea2.fitness >= 1.);
  check Alcotest.bool "front members below 1" true
    (pop.(0).Spea2.fitness < 1.
     && pop.(1).Spea2.fitness < 1.
     && pop.(2).Spea2.fitness < 1.)

let test_spea2_environmental_selection_size () =
  let pop =
    Array.init 10 (fun i ->
        ind [| float_of_int i; float_of_int (9 - i) |] 0.) in
  Spea2.assign_fitness pop;
  let archive = Spea2.environmental_selection ~size:4 pop in
  check Alcotest.int "archive size" 4 (Array.length archive);
  let small = Spea2.environmental_selection ~size:20 pop in
  check Alcotest.int "underfull keeps all" 10 (Array.length small)

let test_spea2_truncation_keeps_extremes () =
  (* a crowded line: truncation should keep the two endpoints *)
  let pop =
    Array.init 9 (fun i ->
        ind [| float_of_int i; float_of_int (8 - i) |] 0.) in
  Spea2.assign_fitness pop;
  let archive = Spea2.environmental_selection ~size:3 pop in
  let objs =
    Array.to_list archive |> List.map (fun i -> i.Spea2.objectives.(0)) in
  check Alcotest.bool "min endpoint kept" true (List.mem 0. objs);
  check Alcotest.bool "max endpoint kept" true (List.mem 8. objs)

let test_spea2_tournament () =
  let good = ind [| 0.; 0. |] 0. and bad = ind [| 9.; 9. |] 0. in
  good.Spea2.fitness <- 0.1;
  bad.Spea2.fitness <- 5.;
  let rng = Prng.create 4 in
  for _ = 1 to 20 do
    let w = Spea2.binary_tournament rng [| good; bad |] in
    check Alcotest.bool "winner is never strictly worse" true
      (w.Spea2.fitness <= 5.)
  done

(* ------------------------------------------------------------------ *)
(* GA / Explore *)

let micro_config seed =
  { Ga.default_config with
    Ga.population = 8; offspring = 8; generations = 3; seed;
    check_rescue = false }

let test_ga_deterministic () =
  let arch, apps = small_system 4 in
  let r1 = Ga.optimize (micro_config 5) arch apps in
  let r2 = Ga.optimize (micro_config 5) arch apps in
  let powers (r : Ga.result) =
    Array.to_list r.Ga.archive
    |> List.map (fun (_, e) -> e.Evaluate.power) in
  check (Alcotest.list (Alcotest.float 1e-9)) "same archive powers"
    (powers r1) (powers r2);
  check Alcotest.int "same evaluations" r1.Ga.stats.Ga.evaluations
    r2.Ga.stats.Ga.evaluations

let test_ga_archive_size () =
  let arch, apps = small_system 4 in
  let r = Ga.optimize (micro_config 6) arch apps in
  check Alcotest.bool "archive within bound" true
    (Array.length r.Ga.archive <= 8);
  check Alcotest.int "evaluation count" (8 + (8 * 3))
    r.Ga.stats.Ga.evaluations

let test_explore_summary () =
  let arch, apps = small_system 4 in
  let summary = Explore.run ~config:(micro_config 7) arch apps in
  check Alcotest.bool "rescue within [0,100]" true
    (summary.Explore.rescue_ratio_pct >= 0.
     && summary.Explore.rescue_ratio_pct <= 100.);
  check Alcotest.bool "pareto consistent with best power" true
    (match summary.Explore.best_power, summary.Explore.pareto with
     | None, [] -> true
     | Some p, (_, first_power, _) :: _ -> abs_float (p -. first_power) < 1e-9
     | Some _, [] -> false
     | None, _ :: _ -> false)

let test_nsga2_selection () =
  let pop =
    Array.init 10 (fun i ->
        ind [| float_of_int i; float_of_int (9 - i) |] 0.) in
  Mcmap_dse.Nsga2.assign_fitness pop;
  (* all on one front: every fitness below 1 *)
  Array.iter
    (fun i ->
      check Alcotest.bool "front rank 0" true (i.Spea2.fitness < 1.))
    pop;
  let archive = Mcmap_dse.Nsga2.environmental_selection ~size:4 pop in
  check Alcotest.int "archive size" 4 (Array.length archive);
  let objs =
    Array.to_list archive |> List.map (fun i -> i.Spea2.objectives.(0)) in
  check Alcotest.bool "extremes kept" true
    (List.mem 0. objs && List.mem 9. objs)

let test_nsga2_ranks_dominated_lower () =
  let pop =
    [| ind [| 1.; 1. |] 0.; ind [| 2.; 2. |] 0.; ind [| 3.; 3. |] 0. |] in
  Mcmap_dse.Nsga2.assign_fitness pop;
  check Alcotest.bool "rank ordering" true
    (pop.(0).Spea2.fitness < pop.(1).Spea2.fitness
     && pop.(1).Spea2.fitness < pop.(2).Spea2.fitness)

let test_ga_nsga2_selector_runs () =
  let arch, apps = small_system 4 in
  let config = { (micro_config 5) with Ga.selector = Ga.Nsga2_selector } in
  let r = Ga.optimize config arch apps in
  check Alcotest.bool "archive non-empty" true
    (Array.length r.Ga.archive > 0)

let test_ga_parallel_deterministic () =
  let arch, apps = small_system 4 in
  let base = micro_config 9 in
  let sequential = Ga.optimize { base with Ga.domains = 1 } arch apps in
  let parallel = Ga.optimize { base with Ga.domains = 4 } arch apps in
  let powers (r : Ga.result) =
    Array.to_list r.Ga.archive
    |> List.map (fun (_, e) -> e.Evaluate.power) in
  check (Alcotest.list (Alcotest.float 1e-9))
    "parallel evaluation preserves determinism" (powers sequential)
    (powers parallel)

let test_baselines_random_search () =
  let arch, apps = small_system 6 in
  let a = Mcmap_dse.Baselines.random_search ~budget:30 ~seed:2 arch apps in
  let b = Mcmap_dse.Baselines.random_search ~budget:30 ~seed:2 arch apps in
  check Alcotest.int "budget respected" 30 a.Mcmap_dse.Baselines.evaluations;
  check Alcotest.bool "deterministic" true
    ((match a.Mcmap_dse.Baselines.best, b.Mcmap_dse.Baselines.best with
      | Some (_, x), Some (_, y) ->
        x.Evaluate.power = y.Evaluate.power
      | None, None -> true
      | _ -> false));
  (match a.Mcmap_dse.Baselines.best with
   | Some (_, e) ->
     check Alcotest.bool "best is feasible" true (Evaluate.feasible e)
   | None -> ())

let test_baselines_annealing () =
  let arch, apps = small_system 6 in
  let r =
    Mcmap_dse.Baselines.simulated_annealing ~budget:40 ~seed:2 arch apps in
  check Alcotest.int "budget respected" 40 r.Mcmap_dse.Baselines.evaluations;
  check Alcotest.bool "feasible count within budget" true
    (r.Mcmap_dse.Baselines.feasible <= 40);
  (match r.Mcmap_dse.Baselines.best with
   | Some (_, e) ->
     check Alcotest.bool "best is feasible" true (Evaluate.feasible e)
   | None -> ())

let test_explore_pareto_is_front () =
  let arch, apps = small_system 9 in
  let summary = Explore.run ~config:(micro_config 11) arch apps in
  let points =
    List.map (fun (_, p, s) -> [| p; -.s |]) summary.Explore.pareto in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check Alcotest.bool "no mutual domination" false
            (a != b && Mcmap_util.Pareto.dominates a b
             && Mcmap_util.Pareto.dominates b a))
        points)
    points

(* ------------------------------------------------------------------ *)
(* Evaluator sessions *)

let check_evaluation_equal msg (a : Evaluate.t) (b : Evaluate.t) =
  check Alcotest.bool msg true
    (Float.compare a.Evaluate.power b.Evaluate.power = 0
    && Float.compare a.Evaluate.service b.Evaluate.service = 0
    && a.Evaluate.schedulable = b.Evaluate.schedulable
    && a.Evaluate.reliable = b.Evaluate.reliable
    && Float.compare a.Evaluate.violation b.Evaluate.violation = 0
    && a.Evaluate.rescued = b.Evaluate.rescued
    && Array.for_all2
         (fun x y -> Float.compare x y = 0)
         a.Evaluate.objectives b.Evaluate.objectives)

(* Plans of a small system, pairwise distinct, derived by the sampler. *)
let sample_plans arch apps n =
  Array.init n (fun i ->
      Mcmap_benchmarks.Sampler.plan ~seed:(1000 + i) arch apps)

let test_evaluator_fingerprint_canonical () =
  let sys = Test_gen.random_system 31 in
  let plan = sys.Test_gen.plan in
  let copy =
    Plan.make sys.Test_gen.apps
      ~decisions:(Array.map Array.copy plan.Plan.decisions)
      ~dropped:(Array.copy plan.Plan.dropped) in
  check Alcotest.bool "equal plans, equal fingerprints" true
    (Mcmap_util.Fingerprint.equal (Evaluator.fingerprint plan)
       (Evaluator.fingerprint copy));
  check Alcotest.bool "equal plans are canonically equal" true
    (Evaluator.canonical_equal plan copy);
  (* The voter binding of a voterless technique cannot influence any
     result, so re-rolling it must not change the fingerprint... *)
  let d = plan.Plan.decisions.(0).(0) in
  if not (Technique.needs_voter d.Plan.technique) then begin
    let moved =
      Plan.with_decision plan ~graph:0 ~task:0
        { d with Plan.voter_proc = (d.Plan.voter_proc + 1)
                                   mod Arch.n_procs sys.Test_gen.arch } in
    check Alcotest.bool "voterless voter binding is canonical" true
      (Mcmap_util.Fingerprint.equal (Evaluator.fingerprint plan)
         (Evaluator.fingerprint moved));
    check Alcotest.bool "voterless voter binding: canonical_equal" true
      (Evaluator.canonical_equal plan moved)
  end;
  (* ...while moving the primary binding must. *)
  let rebound =
    Plan.with_decision plan ~graph:0 ~task:0
      { d with Plan.primary_proc = (d.Plan.primary_proc + 1)
                                   mod Arch.n_procs sys.Test_gen.arch } in
  check Alcotest.bool "rebinding changes the fingerprint" false
    (Mcmap_util.Fingerprint.equal (Evaluator.fingerprint plan)
       (Evaluator.fingerprint rebound));
  check Alcotest.bool "rebinding breaks canonical equality" false
    (Evaluator.canonical_equal plan rebound)

let test_evaluator_matches_fresh () =
  let sys = Test_gen.random_system 32 in
  let arch = sys.Test_gen.arch and apps = sys.Test_gen.apps in
  (* A tiny result cache forces evictions along the chain; correctness
     must not depend on hit rate. *)
  let session = Evaluator.create ~cache_capacity:2 arch apps in
  let plans = sample_plans arch apps 6 in
  Array.iter
    (fun plan ->
      let fresh = Evaluate.evaluate arch apps plan in
      check_evaluation_equal "session = fresh"
        (Evaluator.eval session plan) fresh;
      check_evaluation_equal "session replay = fresh"
        (Evaluator.eval session plan) fresh)
    plans;
  let stats = Evaluator.stats session in
  check Alcotest.bool "replays hit the result cache" true
    (stats.Evaluator.hits >= 1);
  check Alcotest.bool "tiny cache evicts" true
    (stats.Evaluator.evictions >= 1)

let test_evaluator_power_matches () =
  let sys = Test_gen.random_system 33 in
  let arch = sys.Test_gen.arch and apps = sys.Test_gen.apps in
  let session = Evaluator.create arch apps in
  Array.iter
    (fun plan ->
      check Alcotest.bool "session power = power_of_plan" true
        (Float.compare (Evaluator.power session plan)
           (Evaluate.power_of_plan arch apps plan)
        = 0))
    (sample_plans arch apps 4)

let test_eval_population_deterministic () =
  let sys = Test_gen.random_system 34 in
  let arch = sys.Test_gen.arch and apps = sys.Test_gen.apps in
  let base = sample_plans arch apps 5 in
  (* Duplicates (physical and structural) must be folded and still land
     on the right indices. *)
  let population =
    Array.init 12 (fun i -> base.(i mod Array.length base)) in
  let eval_with domains =
    Evaluator.eval_population
      (Evaluator.create ~domains arch apps)
      population in
  let seq = eval_with 1 and par = eval_with 4 in
  check Alcotest.int "index-aligned" (Array.length population)
    (Array.length seq);
  Array.iteri
    (fun i e ->
      check Alcotest.bool "result carries its own plan" true
        (e.Evaluate.plan == population.(i));
      check_evaluation_equal "1 domain = 4 domains" e par.(i);
      check_evaluation_equal "population = fresh" e
        (Evaluate.evaluate arch apps population.(i)))
    seq

let suite =
  [ qtest prop_random_genome_shape;
    qtest prop_seeded_genome_shape;
    qtest prop_crossover_preserves_shape;
    qtest prop_crossover_mixes_parents;
    qtest prop_mutation_preserves_shape;
    qtest prop_decode_placement_feasible;
    qtest prop_decode_force_no_dropping;
    Alcotest.test_case "decode: reliability repair" `Quick
      test_decode_repairs_reliability;
    Alcotest.test_case "evaluate: objectives" `Quick
      test_evaluate_objectives;
    Alcotest.test_case "evaluate: dropping saves power" `Quick
      test_dropping_lowers_power;
    Alcotest.test_case "spea2: constraint domination" `Quick
      test_spea2_constraint_domination;
    Alcotest.test_case "spea2: fitness ranking" `Quick
      test_spea2_fitness_ranks_front_first;
    Alcotest.test_case "spea2: selection size" `Quick
      test_spea2_environmental_selection_size;
    Alcotest.test_case "spea2: truncation extremes" `Quick
      test_spea2_truncation_keeps_extremes;
    Alcotest.test_case "spea2: tournament" `Quick test_spea2_tournament;
    Alcotest.test_case "ga: deterministic" `Quick test_ga_deterministic;
    Alcotest.test_case "ga: archive size" `Quick test_ga_archive_size;
    Alcotest.test_case "nsga2: selection" `Quick test_nsga2_selection;
    Alcotest.test_case "nsga2: ranks" `Quick
      test_nsga2_ranks_dominated_lower;
    Alcotest.test_case "ga: nsga2 selector" `Quick
      test_ga_nsga2_selector_runs;
    Alcotest.test_case "ga: parallel determinism" `Quick
      test_ga_parallel_deterministic;
    Alcotest.test_case "baselines: random search" `Quick
      test_baselines_random_search;
    Alcotest.test_case "baselines: annealing" `Quick
      test_baselines_annealing;
    Alcotest.test_case "explore: summary" `Quick test_explore_summary;
    Alcotest.test_case "explore: pareto front" `Quick
      test_explore_pareto_is_front;
    Alcotest.test_case "evaluator: canonical fingerprints" `Quick
      test_evaluator_fingerprint_canonical;
    Alcotest.test_case "evaluator: matches fresh evaluation" `Quick
      test_evaluator_matches_fresh;
    Alcotest.test_case "evaluator: power shim" `Quick
      test_evaluator_power_matches;
    Alcotest.test_case "evaluator: population determinism" `Quick
      test_eval_population_deterministic ]
