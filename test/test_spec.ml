module Test_gen = Mcmap_gen.Gen

(* Tests for the textual system/plan format: hand-written inputs, error
   reporting, and write-read round-trips over the whole benchmark
   suite. *)

module Sexp = Mcmap_util.Sexp
module Spec = Mcmap_spec.Spec
module B = Mcmap_benchmarks
module Arch = Mcmap_model.Arch
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Proc = Mcmap_model.Proc
module Plan = Mcmap_hardening.Plan

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Sexp *)

let test_sexp_parse () =
  (match Sexp.parse "(a (b c) d) ; comment\n(e)" with
   | Ok [ Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ];
                      Sexp.Atom "d" ];
          Sexp.List [ Sexp.Atom "e" ] ] -> ()
   | Ok _ -> Alcotest.fail "wrong parse"
   | Error e -> Alcotest.fail e);
  (match Sexp.parse "(unclosed" with
   | Error msg ->
     check Alcotest.bool "position reported" true
       (String.length msg > 0 && String.contains msg ':')
   | Ok _ -> Alcotest.fail "expected an error");
  (match Sexp.parse ")" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "stray paren must fail")

let test_sexp_accessors () =
  match Sexp.parse "((name x) (wcet 10) (speed 1.5))" with
  | Ok [ Sexp.List fields ] ->
    check (Alcotest.result Alcotest.string Alcotest.string) "atom"
      (Ok "x")
      (Sexp.assoc_atom "name" fields);
    check (Alcotest.result Alcotest.int Alcotest.string) "int" (Ok 10)
      (Sexp.assoc_int "wcet" fields);
    check (Alcotest.result (Alcotest.float 1e-9) Alcotest.string) "float"
      (Ok 1.5)
      (Sexp.assoc_float "speed" fields);
    check Alcotest.bool "missing" true
      (Result.is_error (Sexp.assoc_int "nope" fields));
    check Alcotest.bool "bad int" true
      (Result.is_error (Sexp.assoc_int "name" fields))
  | Ok _ | Error _ -> Alcotest.fail "setup"

let prop_sexp_roundtrip =
  let gen =
    QCheck.Gen.(
      sized (fun n ->
          fix
            (fun self n ->
              if n <= 1 then
                map (fun i -> Sexp.Atom (Printf.sprintf "a%d" i)) small_nat
              else
                frequency
                  [ (1, map (fun i -> Sexp.Atom (Printf.sprintf "a%d" i))
                       small_nat);
                    (2,
                     map
                       (fun l -> Sexp.List l)
                       (list_size (int_range 0 4) (self (n / 2)))) ])
            n)) in
  QCheck.Test.make ~name:"sexp print/parse round-trip" ~count:200
    (QCheck.make gen)
    (fun e -> Sexp.parse_one (Sexp.to_string e) = Ok e)

(* ------------------------------------------------------------------ *)
(* System format *)

let sample_system_text =
  {|
(architecture
  (bus (bandwidth 2) (latency 1))
  (processor (name cpu0) (fault-rate 1e-5))
  (processor (name cpu1) (policy non-preemptive) (speed 1.25)))

; a critical pipeline and a droppable logger
(application (name control) (period 100) (deadline 90) (critical 1e-4)
  (task (name sense) (wcet 10) (bcet 6) (detect 1))
  (task (name act) (wcet 8))
  (channel (from sense) (to act) (size 4)))

(application (name logging) (period 100) (droppable 1.0)
  (task (name log) (wcet 12)))
|}

let sample_plan_text =
  {|
(plan
  (dropped logging)
  (bind (app control) (task sense) (proc cpu0) (harden (reexec 1)))
  (bind (app control) (task act) (proc cpu1))
  (bind (app logging) (task log) (proc cpu1)))
|}

let test_read_system () =
  match Spec.read_system sample_system_text with
  | Error e -> Alcotest.fail e
  | Ok system ->
    check Alcotest.int "procs" 2 (Arch.n_procs system.Spec.arch);
    check Alcotest.int "graphs" 2 (Appset.n_graphs system.Spec.apps);
    let p1 = Arch.proc system.Spec.arch 1 in
    check Alcotest.bool "policy parsed" true
      (p1.Proc.policy = Proc.Non_preemptive_fp);
    check (Alcotest.float 1e-9) "speed parsed" 1.25 p1.Proc.speed;
    let control = Appset.graph system.Spec.apps 0 in
    check Alcotest.int "deadline" 90 control.Graph.deadline;
    check Alcotest.int "channels" 1 (Array.length control.Graph.channels);
    (* defaults: bcet = wcet when omitted *)
    let act = Graph.task control 1 in
    check Alcotest.int "default bcet" 8 act.Mcmap_model.Task.bcet

let test_read_plan () =
  match Spec.read_system sample_system_text with
  | Error e -> Alcotest.fail e
  | Ok system ->
    (match Spec.read_plan system sample_plan_text with
     | Error e -> Alcotest.fail e
     | Ok plan ->
       check (Alcotest.list Alcotest.int) "dropped" [ 1 ]
         (Plan.dropped_graphs plan);
       let d = Plan.decision plan ~graph:0 ~task:0 in
       check Alcotest.bool "hardened" true
         (d.Plan.technique = Mcmap_hardening.Technique.Re_execution 1);
       check Alcotest.int "bound to cpu0" 0 d.Plan.primary_proc)

let expect_error what result =
  match result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail (what ^ ": expected an error")

let test_system_errors () =
  expect_error "no architecture" (Spec.read_system "(application)");
  expect_error "no applications"
    (Spec.read_system "(architecture (processor (name p)))");
  expect_error "both criticalities"
    (Spec.read_system
       {|(architecture (processor (name p)))
         (application (name a) (period 10) (critical 0.1) (droppable 1.)
           (task (name t) (wcet 5)))|});
  expect_error "unknown channel endpoint"
    (Spec.read_system
       {|(architecture (processor (name p)))
         (application (name a) (period 10) (critical 0.1)
           (task (name t) (wcet 5))
           (channel (from t) (to nothing)))|});
  expect_error "duplicate task names"
    (Spec.read_system
       {|(architecture (processor (name p)))
         (application (name a) (period 10) (critical 0.1)
           (task (name t) (wcet 5)) (task (name t) (wcet 6)))|});
  expect_error "bad policy"
    (Spec.read_system
       {|(architecture (processor (name p) (policy cooperative)))
         (application (name a) (period 10) (critical 0.1)
           (task (name t) (wcet 5)))|})

(* Parser error paths must report where the problem is: messages from
   [read_system] start with "line:col:" for shaping errors, and carry
   an embedded position for raw sexp errors. *)
let test_error_positions () =
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix in
  let expect_located what input prefix =
    match Spec.read_system input with
    | Ok _ -> Alcotest.fail (what ^ ": expected an error")
    | Error msg ->
      if not (starts_with prefix msg) then
        Alcotest.failf "%s: error %S does not start with %S" what msg
          prefix in
  expect_located "unknown field"
    "(architecture\n\
    \  (processor (name p0)\n\
    \    (frequency 2)))\n\
     (application (name a) (period 10) (droppable 1)\n\
    \  (task (name t) (wcet 5)))"
    "3:5: processor: unknown field (frequency";
  expect_located "wrong arity"
    "(architecture\n\
    \  (processor (name p0 extra)))\n\
     (application (name a) (period 10) (droppable 1)\n\
    \  (task (name t) (wcet 5)))"
    "2:14: processor: field (name ...) expects one atom";
  expect_located "malformed number"
    "(architecture\n\
    \  (processor (name p0)))\n\
     (application (name a) (period 10) (droppable 1)\n\
    \  (task (name t) (wcet abc)))"
    "4:24: task: field (wcet abc): expected an integer";
  (* raw sexp errors position inside the message itself *)
  (match Spec.read_system "(architecture\n  (processor (name p0)" with
   | Ok _ -> Alcotest.fail "unclosed: expected an error"
   | Error msg ->
     if not (starts_with "2:23: unclosed" msg) then
       Alcotest.failf "unclosed: error %S lacks its position" msg)

let test_plan_errors () =
  match Spec.read_system sample_system_text with
  | Error e -> Alcotest.fail e
  | Ok system ->
    expect_error "unbound task"
      (Spec.read_plan system
         {|(plan (bind (app control) (task sense) (proc cpu0)))|});
    expect_error "unknown processor"
      (Spec.read_plan system
         {|(plan
            (bind (app control) (task sense) (proc cpu9))
            (bind (app control) (task act) (proc cpu0))
            (bind (app logging) (task log) (proc cpu0)))|});
    expect_error "double binding"
      (Spec.read_plan system
         {|(plan
            (bind (app control) (task sense) (proc cpu0))
            (bind (app control) (task sense) (proc cpu1))
            (bind (app control) (task act) (proc cpu0))
            (bind (app logging) (task log) (proc cpu0)))|});
    expect_error "replica arity"
      (Spec.read_plan system
         {|(plan
            (bind (app control) (task sense) (proc cpu0)
                  (harden (active 3)))
            (bind (app control) (task act) (proc cpu0))
            (bind (app logging) (task log) (proc cpu0)))|})

(* ------------------------------------------------------------------ *)
(* Round-trips over the benchmark suite *)

let arch_equal (a : Arch.t) (b : Arch.t) =
  Mcmap_model.Interconnect.equal a.Arch.interconnect b.Arch.interconnect
  && a.Arch.procs = b.Arch.procs

let apps_equal (a : Appset.t) (b : Appset.t) =
  a.Appset.graphs = b.Appset.graphs

(* The located (interconnect ...) form: the noc backend parses, drives
   comm delays through the mesh, and round-trips through the writer
   bit-exactly. The legacy (bus ...) form stays accepted but the writer
   always emits the interconnect form. *)
let noc_system_text =
  {|
(architecture
  (interconnect (noc (cols 2) (rows 2) (link-bandwidth 3)
                     (hop-latency 1) (router-latency 2)))
  (processor (name cpu0))
  (processor (name cpu1))
  (processor (name cpu2)))

(application (name a) (period 100) (critical 1e-4)
  (task (name t0) (wcet 10))
  (task (name t1) (wcet 8))
  (channel (from t0) (to t1) (size 4)))
|}

let test_read_noc_system () =
  match Spec.read_system noc_system_text with
  | Error e -> Alcotest.fail e
  | Ok system ->
    let expected =
      Mcmap_model.Interconnect.Noc
        { cols = 2; rows = 2; link_bandwidth = 3; hop_latency = 1;
          router_latency = 2 } in
    check Alcotest.bool "interconnect parsed" true
      (Mcmap_model.Interconnect.equal expected
         system.Spec.arch.Arch.interconnect);
    (* cpu0 = (0,0), cpu2 = (0,1): one hop, ceil 4/3 = 2 *)
    check Alcotest.int "delay follows the mesh" (2 + 1 + 2)
      (Arch.comm_delay system.Spec.arch ~size:4 ~src_proc:0 ~dst_proc:2);
    let written = Spec.write_system system in
    check Alcotest.bool "writer emits the interconnect form" true
      (let rec contains i =
         i + 12 <= String.length written
         && (String.sub written i 12 = "interconnect" || contains (i + 1))
       in
       contains 0);
    (match Spec.read_system written with
     | Error e -> Alcotest.fail e
     | Ok back ->
       check Alcotest.bool "noc system round-trips" true
         (Mcmap_model.Interconnect.equal
            system.Spec.arch.Arch.interconnect
            back.Spec.arch.Arch.interconnect))

let test_interconnect_errors () =
  expect_error "bus and interconnect together"
    (Spec.read_system
       {|(architecture
           (bus (bandwidth 2))
           (interconnect (bus (bandwidth 2)))
           (processor (name p)))
         (application (name a) (period 10) (droppable 1)
           (task (name t) (wcet 5)))|});
  expect_error "noc without cols"
    (Spec.read_system
       {|(architecture
           (interconnect (noc (rows 2)))
           (processor (name p)))
         (application (name a) (period 10) (droppable 1)
           (task (name t) (wcet 5)))|});
  expect_error "two backends in one interconnect"
    (Spec.read_system
       {|(architecture
           (interconnect (bus (bandwidth 1)) (noc (cols 1) (rows 1)))
           (processor (name p)))
         (application (name a) (period 10) (droppable 1)
           (task (name t) (wcet 5)))|})

let test_roundtrip_benchmarks () =
  List.iter
    (fun (bench : B.Benchmark.t) ->
      let system =
        { Spec.arch = bench.B.Benchmark.arch;
          apps = bench.B.Benchmark.apps } in
      match Spec.read_system (Spec.write_system system) with
      | Error e -> Alcotest.fail (bench.B.Benchmark.name ^ ": " ^ e)
      | Ok back ->
        check Alcotest.bool
          (bench.B.Benchmark.name ^ ": architecture round-trips") true
          (arch_equal system.Spec.arch back.Spec.arch);
        check Alcotest.bool
          (bench.B.Benchmark.name ^ ": applications round-trip") true
          (apps_equal system.Spec.apps back.Spec.apps))
    (B.Registry.all ())

let test_checkpoint_harden_roundtrip () =
  match Spec.read_system sample_system_text with
  | Error e -> Alcotest.fail e
  | Ok system ->
    let text =
      {|(plan
         (bind (app control) (task sense) (proc cpu0)
               (harden (checkpoint 3 2)))
         (bind (app control) (task act) (proc cpu1))
         (bind (app logging) (task log) (proc cpu1)))|} in
    (match Spec.read_plan system text with
     | Error e -> Alcotest.fail e
     | Ok plan ->
       let d = Plan.decision plan ~graph:0 ~task:0 in
       check Alcotest.bool "parsed" true
         (d.Plan.technique
          = Mcmap_hardening.Technique.Checkpointing (3, 2));
       (match Spec.read_plan system (Spec.write_plan system plan) with
        | Ok back -> check Alcotest.bool "round-trips" true (back = plan)
        | Error e -> Alcotest.fail e))

let test_roundtrip_plans () =
  let bench = B.Cruise.benchmark () in
  let system =
    { Spec.arch = bench.B.Benchmark.arch; apps = bench.B.Benchmark.apps }
  in
  List.iteri
    (fun i plan ->
      match Spec.read_plan system (Spec.write_plan system plan) with
      | Error e -> Alcotest.fail (Printf.sprintf "mapping %d: %s" i e)
      | Ok back ->
        check Alcotest.bool
          (Printf.sprintf "mapping %d round-trips" (i + 1))
          true (back = plan))
    (B.Cruise.sample_plans bench)

let prop_roundtrip_random_plans =
  QCheck.Test.make ~name:"random plans round-trip through the format"
    ~count:60 QCheck.small_int
    (fun seed ->
      let sys = Test_gen.random_system seed in
      let system =
        { Spec.arch = sys.Test_gen.arch; apps = sys.Test_gen.apps } in
      match Spec.read_plan system (Spec.write_plan system sys.Test_gen.plan)
      with
      | Ok back -> back = sys.Test_gen.plan
      | Error _ -> false)

let prop_roundtrip_random_systems =
  QCheck.Test.make ~name:"random systems round-trip through the format"
    ~count:60 QCheck.small_int
    (fun seed ->
      let sys = Test_gen.random_system seed in
      let system =
        { Spec.arch = sys.Test_gen.arch; apps = sys.Test_gen.apps } in
      match Spec.read_system (Spec.write_system system) with
      | Ok back ->
        arch_equal system.Spec.arch back.Spec.arch
        && apps_equal system.Spec.apps back.Spec.apps
      | Error _ -> false)

let test_load_missing_file () =
  check Alcotest.bool "missing system file" true
    (Result.is_error (Spec.load_system "/nonexistent/file.mcmap"));
  (match Spec.read_system sample_system_text with
   | Ok system ->
     check Alcotest.bool "missing plan file" true
       (Result.is_error (Spec.load_plan system "/nonexistent/file.plan"))
   | Error e -> Alcotest.fail e)

let test_shipped_spec_files () =
  (* the files under examples/specs must stay loadable (paths relative
     to the dune workspace root where tests run) *)
  let root = "../../../" in
  let path f = root ^ "examples/specs/" ^ f in
  if Sys.file_exists (path "cruise.mcmap") then begin
    match Spec.load_system (path "cruise.mcmap") with
    | Error e -> Alcotest.fail ("cruise.mcmap: " ^ e)
    | Ok system ->
      check Alcotest.int "cruise spec graphs" 5
        (Appset.n_graphs system.Spec.apps);
      (match Spec.load_plan system (path "cruise-mapping1.plan") with
       | Error e -> Alcotest.fail ("cruise-mapping1.plan: " ^ e)
       | Ok plan ->
         check Alcotest.int "plan drops three" 3
           (List.length (Plan.dropped_graphs plan)))
  end

let suite =
  [ Alcotest.test_case "sexp: parse" `Quick test_sexp_parse;
    Alcotest.test_case "sexp: accessors" `Quick test_sexp_accessors;
    qtest prop_sexp_roundtrip;
    Alcotest.test_case "system: read" `Quick test_read_system;
    Alcotest.test_case "plan: read" `Quick test_read_plan;
    Alcotest.test_case "system: errors" `Quick test_system_errors;
    Alcotest.test_case "system: error positions" `Quick
      test_error_positions;
    Alcotest.test_case "plan: errors" `Quick test_plan_errors;
    Alcotest.test_case "system: noc interconnect" `Quick
      test_read_noc_system;
    Alcotest.test_case "system: interconnect errors" `Quick
      test_interconnect_errors;
    Alcotest.test_case "round-trip: benchmarks" `Quick
      test_roundtrip_benchmarks;
    Alcotest.test_case "round-trip: sample plans" `Quick
      test_roundtrip_plans;
    Alcotest.test_case "checkpoint: harden round-trip" `Quick
      test_checkpoint_harden_roundtrip;
    Alcotest.test_case "load: missing files" `Quick
      test_load_missing_file;
    Alcotest.test_case "load: shipped spec files" `Quick
      test_shipped_spec_files;
    qtest prop_roundtrip_random_plans;
    qtest prop_roundtrip_random_systems ]
