(* Tests for the lint subsystem: the known-bad corpus under test/lint
   (one file per diagnostic code, golden-checked against its `; expect:`
   comments), registry coverage in both directions, renderer
   round-trips, and the deny/exit logic. *)

module Sexp = Mcmap_util.Sexp
module Json = Mcmap_util.Json
module Spec = Mcmap_spec.Spec
module D = Mcmap_lint.Diagnostic
module Lint = Mcmap_lint.Lint

let check = Alcotest.check

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Corpus plumbing *)

let corpus_dir = "lint"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list |> List.sort compare

let read_corpus name =
  match Spec.read_file (Filename.concat corpus_dir name) with
  | Ok text -> text
  | Error e -> Alcotest.fail e

(* The `; expect: MCxxx` comment lines of a corpus file. *)
let expected_codes text =
  let prefix = "; expect:" in
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
      if String.length line >= String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then
        Some
          (String.trim
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix)))
      else None)
  |> List.sort_uniq compare

let distinct_codes ds =
  List.sort_uniq compare (List.map (fun (d : D.t) -> d.D.code) ds)

(* Plan files lint against a same-stem .mcmap companion when one
   exists, and against base.mcmap otherwise. *)
let system_for_plan files stem =
  let companion = stem ^ ".mcmap" in
  if List.mem companion files then companion else "base.mcmap"

let corpus_results () =
  let files = corpus_files () in
  List.filter_map
    (fun name ->
      let text = read_corpus name in
      let expected = expected_codes text in
      if Filename.check_suffix name ".mcmap" then
        Some (name, expected, fst (Lint.lint_system text))
      else if Filename.check_suffix name ".plan" then begin
        let stem = Filename.remove_extension name in
        let sys_name = system_for_plan files stem in
        match Lint.lint_system (read_corpus sys_name) with
        | ds, _ when D.error_count ds > 0 ->
          Alcotest.failf "%s: companion system %s has lint errors:\n%s"
            name sys_name (D.render_human ds)
        | _, None ->
          Alcotest.failf "%s: companion system %s did not build" name
            sys_name
        | _, Some sys -> Some (name, expected, Lint.lint_plan sys text)
      end
      else None)
    files

(* Every corpus file yields exactly the codes its `; expect:` comments
   announce — no more, no less. Files without expect lines (the clean
   companions) must lint clean. *)
let test_corpus_golden () =
  let mismatches =
    List.filter_map
      (fun (name, expected, ds) ->
        let got = distinct_codes ds in
        if got = expected then None
        else
          Some
            (Printf.sprintf "%s: expected [%s], got [%s]" name
               (String.concat " " expected)
               (String.concat " " got)))
      (corpus_results ()) in
  if mismatches <> [] then
    Alcotest.failf "corpus mismatches:\n%s" (String.concat "\n" mismatches)

(* Every code the registry declares is reproduced by some corpus file,
   and every expected code exists in the registry. *)
let test_corpus_covers_registry () =
  let expected =
    List.concat_map (fun (_, exp, _) -> exp) (corpus_results ())
    |> List.sort_uniq compare in
  let registry =
    List.map (fun (i : D.info) -> i.D.i_code) D.registry
    |> List.sort_uniq compare in
  let missing = List.filter (fun c -> not (List.mem c expected)) registry in
  let unknown = List.filter (fun c -> not (List.mem c registry)) expected in
  if missing <> [] then
    Alcotest.failf "registry codes with no corpus file: %s"
      (String.concat " " missing);
  if unknown <> [] then
    Alcotest.failf "corpus expects codes not in the registry: %s"
      (String.concat " " unknown)

(* Diagnostics carry usable source positions: spot-check a few corpus
   files whose check sites are located. *)
let test_corpus_positions () =
  List.iter
    (fun (name, line, col) ->
      match fst (Lint.lint_system (read_corpus name)) with
      | [ d ] ->
        (match d.D.pos with
         | Some p ->
           check Alcotest.int (name ^ ": line") line p.Sexp.line;
           check Alcotest.int (name ^ ": col") col p.Sexp.col
         | None -> Alcotest.failf "%s: diagnostic has no position" name)
      | ds ->
        Alcotest.failf "%s: expected one diagnostic, got %d" name
          (List.length ds))
    [ ("MC001.mcmap", 6, 20); (* second (name p0) value *)
      ("MC008.mcmap", 11, 35); (* the (bcet 20) value *)
      ("MC016.mcmap", 5, 31) (* the (speed -1) value *) ]

(* ------------------------------------------------------------------ *)
(* Shipped example specs stay clean even with warnings denied *)

let test_examples_clean () =
  let root = "../../../examples/specs/" in
  if Sys.file_exists (root ^ "cruise.mcmap") then begin
    (match
       Lint.lint_files ~system:(root ^ "cruise.mcmap")
         ~plan:(root ^ "cruise-mapping1.plan") ()
     with
     | Error e -> Alcotest.fail e
     | Ok ds ->
       check Alcotest.int "cruise + mapping1 clean" 0
         (D.error_count ~deny:D.Warning ds));
    match Lint.lint_files ~system:(root ^ "dt-med.mcmap") () with
    | Error e -> Alcotest.fail e
    | Ok ds ->
      check Alcotest.int "dt-med clean (hints allowed)" 0
        (D.error_count ~deny:D.Warning ds)
  end

(* ------------------------------------------------------------------ *)
(* Registry and diagnostic mechanics *)

let test_registry_well_formed () =
  let codes = List.map (fun (i : D.info) -> i.D.i_code) D.registry in
  check Alcotest.bool "at least 20 codes" true (List.length codes >= 20);
  check Alcotest.bool "codes unique" true
    (List.length (List.sort_uniq compare codes) = List.length codes);
  check Alcotest.bool "codes sorted" true
    (List.sort compare codes = codes);
  List.iter
    (fun (i : D.info) ->
      check Alcotest.bool (i.D.i_code ^ ": shape") true
        (String.length i.D.i_code = 5
         && String.sub i.D.i_code 0 2 = "MC"
         && String.for_all
              (fun c -> c >= '0' && c <= '9')
              (String.sub i.D.i_code 2 3));
      check Alcotest.bool (i.D.i_code ^ ": documented") true
        (String.length i.D.i_title > 0 && String.length i.D.i_doc > 0))
    D.registry

let test_registry_lookup () =
  (match D.info "MC007" with
   | Some i -> check Alcotest.string "title" "dependency-cycle" i.D.i_title
   | None -> Alcotest.fail "MC007 missing from the registry");
  check Alcotest.bool "unknown code" true (D.info "MC999" = None);
  check Alcotest.bool "default severity raises on unknown code" true
    (match D.default_severity "MC999" with
     | exception Invalid_argument _ -> true
     | _ -> false)

let sample_diags () =
  [ D.make ~file:"a.mcmap" ~pos:{ Sexp.line = 3; col = 7 } ~code:"MC001"
      "duplicate processor p0";
    D.make ~file:"a.mcmap" ~code:"MC013" "hyperperiod overflow";
    D.make ~file:"a.mcmap" ~code:"MC012" "deadline exceeds period" ]

let test_deny_logic () =
  let ds = sample_diags () in
  check Alcotest.int "plain: 1 error" 1 (D.error_count ds);
  check Alcotest.int "deny warning: 2 errors" 2
    (D.error_count ~deny:D.Warning ds);
  check Alcotest.int "deny hint: 3 errors" 3
    (D.error_count ~deny:D.Hint ds);
  let hint = List.nth ds 2 in
  check Alcotest.bool "hint stays under deny warning" true
    (D.effective_severity ~deny:D.Warning hint = D.Hint);
  check Alcotest.bool "hint promoted under deny hint" true
    (D.effective_severity ~deny:D.Hint hint = D.Error)

let test_sort_order () =
  let d ?pos file code = D.make ?pos ~file ~code "m" in
  let sorted =
    D.sort
      [ d "b.mcmap" "MC001" ~pos:{ Sexp.line = 1; col = 1 };
        d "a.mcmap" "MC013";
        d "a.mcmap" "MC003" ~pos:{ Sexp.line = 9; col = 1 };
        d "a.mcmap" "MC001" ~pos:{ Sexp.line = 2; col = 5 } ] in
  check
    (Alcotest.list Alcotest.string)
    "file, then position, unpositioned last"
    [ "MC001"; "MC003"; "MC013"; "MC001" ]
    (List.map (fun (x : D.t) -> x.D.code) sorted)

let test_render_human () =
  let out = D.render_human (sample_diags ()) in
  check Alcotest.bool "location" true
    (contains out "a.mcmap:3:7: error[MC001]");
  check Alcotest.bool "summary" true
    (contains out "1 error, 1 warning, 1 hint");
  check Alcotest.bool "empty list summary" true
    (contains (D.render_human []) "no diagnostics")

let test_render_json_roundtrip () =
  match Json.parse (D.render_json (sample_diags ())) with
  | Error e -> Alcotest.fail e
  | Ok (Json.List items) ->
    check Alcotest.int "three items" 3 (List.length items);
    (match List.hd items with
     | Json.Obj _ as obj ->
       check Alcotest.bool "code field" true
         (Json.member "code" obj = Some (Json.String "MC001"));
       check Alcotest.bool "line field" true
         (Json.member "line" obj = Some (Json.Int 3))
     | _ -> Alcotest.fail "expected an object")
  | Ok _ -> Alcotest.fail "expected a JSON array"

let test_render_sexp_reparses () =
  (* free text is atomised, so the output must re-parse *)
  match Sexp.parse (D.render_sexp (sample_diags ())) with
  | Ok [ Sexp.List (Sexp.Atom "diagnostics" :: items) ] ->
    check Alcotest.int "three items" 3 (List.length items)
  | Ok _ -> Alcotest.fail "unexpected sexp shape"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Driver behaviour *)

let test_lint_pair_skips_broken_system () =
  (* when the system does not build, the plan is not linted against it *)
  let ds =
    Lint.lint_pair "(architecture)" "(plan (bind (app a) (task t)))" in
  check
    (Alcotest.list Alcotest.string)
    "only the system error" [ "MC000" ] (distinct_codes ds)

let test_lint_files_missing () =
  check Alcotest.bool "missing system file is an I/O error" true
    (Result.is_error (Lint.lint_files ~system:"/nonexistent/x.mcmap" ()))

let suite =
  [ Alcotest.test_case "corpus: golden codes" `Quick test_corpus_golden;
    Alcotest.test_case "corpus: covers the registry" `Quick
      test_corpus_covers_registry;
    Alcotest.test_case "corpus: positioned diagnostics" `Quick
      test_corpus_positions;
    Alcotest.test_case "examples: lint clean" `Quick test_examples_clean;
    Alcotest.test_case "registry: well-formed" `Quick
      test_registry_well_formed;
    Alcotest.test_case "registry: lookup" `Quick test_registry_lookup;
    Alcotest.test_case "deny: promotion and exit logic" `Quick
      test_deny_logic;
    Alcotest.test_case "sort: file/position/code order" `Quick
      test_sort_order;
    Alcotest.test_case "render: human" `Quick test_render_human;
    Alcotest.test_case "render: json round-trip" `Quick
      test_render_json_roundtrip;
    Alcotest.test_case "render: sexp re-parses" `Quick
      test_render_sexp_reparses;
    Alcotest.test_case "pair: broken system short-circuits" `Quick
      test_lint_pair_skips_broken_system;
    Alcotest.test_case "files: missing path" `Quick test_lint_files_missing ]
