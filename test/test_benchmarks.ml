(* Tests for the benchmark suite: structure, determinism, and fidelity
   to the paper's descriptions. *)

module B = Mcmap_benchmarks
module Arch = Mcmap_model.Arch
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Criticality = Mcmap_model.Criticality
module Plan = Mcmap_hardening.Plan
module Happ = Mcmap_hardening.Happ

let check = Alcotest.check

let test_registry () =
  check (Alcotest.list Alcotest.string) "names"
    [ "cruise"; "dt-med"; "dt-large"; "dt-large-noc"; "synth-1";
      "synth-2" ]
    B.Registry.names;
  check Alcotest.bool "find unknown" true (B.Registry.find "nope" = None);
  check Alcotest.int "all returns every benchmark" 6
    (List.length (B.Registry.all ()));
  Alcotest.check_raises "find_exn"
    (Invalid_argument "Registry.find_exn: unknown benchmark nope")
    (fun () -> ignore (B.Registry.find_exn "nope"))

let test_every_benchmark_valid () =
  List.iter
    (fun (b : B.Benchmark.t) ->
      check Alcotest.bool "has processors" true
        (Arch.n_procs b.B.Benchmark.arch >= 2);
      check Alcotest.bool "has graphs" true
        (Appset.n_graphs b.B.Benchmark.apps >= 2);
      check Alcotest.bool "hyperperiod positive" true
        (Appset.hyperperiod b.B.Benchmark.apps > 0))
    (B.Registry.all ())

let test_cruise_structure () =
  let b = B.Cruise.benchmark () in
  let apps = b.B.Benchmark.apps in
  (* the paper's Table 2 reports exactly two critical applications *)
  check Alcotest.int "two critical graphs" 2
    (List.length (B.Cruise.critical_graphs b));
  (* plus the three synthetic droppable applications added per §5 *)
  check Alcotest.int "three droppable graphs" 3
    (List.length (Appset.droppable_graphs apps));
  check Alcotest.int "hyperperiod" 1000 (Appset.hyperperiod apps)

let test_cruise_sample_plans () =
  let b = B.Cruise.benchmark () in
  let plans = B.Cruise.sample_plans b in
  check Alcotest.int "three mappings" 3 (List.length plans);
  List.iter
    (fun plan ->
      check (Alcotest.list Alcotest.string) "placement-feasible" []
        (Plan.errors b.B.Benchmark.arch b.B.Benchmark.apps plan);
      (* every droppable application is in the dropped set *)
      check Alcotest.int "dropped set = droppables" 3
        (List.length (Plan.dropped_graphs plan));
      (* hardened mappings must transform cleanly *)
      ignore (Happ.build b.B.Benchmark.arch b.B.Benchmark.apps plan))
    plans

let test_dt_structure () =
  let med = B.Dt.dt_med () in
  let med_names =
    Array.to_list med.B.Benchmark.apps.Appset.graphs
    |> List.map (fun g -> g.Graph.name) in
  (* Figure 5 explores dropping over exactly t1, t2, t3 *)
  check Alcotest.bool "t1 t2 t3 present" true
    (List.for_all (fun t -> List.mem t med_names) [ "t1"; "t2"; "t3" ]);
  check Alcotest.int "dt-med criticals" 2
    (List.length (Appset.critical_graphs med.B.Benchmark.apps));
  let large = B.Dt.dt_large () in
  check Alcotest.int "dt-large criticals" 4
    (List.length (Appset.critical_graphs large.B.Benchmark.apps));
  check Alcotest.int "dt-large droppables" 5
    (List.length (Appset.droppable_graphs large.B.Benchmark.apps));
  (* DT runs non-preemptively in the paper *)
  Array.iter
    (fun p ->
      check Alcotest.bool "non-preemptive" true
        (p.Mcmap_model.Proc.policy = Mcmap_model.Proc.Non_preemptive_fp))
    med.B.Benchmark.arch.Arch.procs

let test_synth_determinism () =
  let a = B.Synth.generate ~seed:99 B.Synth.default_spec in
  let b = B.Synth.generate ~seed:99 B.Synth.default_spec in
  check Alcotest.int "same size" (Appset.total_tasks a)
    (Appset.total_tasks b);
  Array.iteri
    (fun gi g ->
      let g' = Appset.graph b gi in
      check Alcotest.int "same tasks" (Graph.n_tasks g) (Graph.n_tasks g');
      check Alcotest.int "same period" g.Graph.period g'.Graph.period)
    a.Appset.graphs;
  let c = B.Synth.generate ~seed:100 B.Synth.default_spec in
  check Alcotest.bool "different seed differs" true
    (Appset.total_tasks a <> Appset.total_tasks c
     || Array.exists2
          (fun (x : Graph.t) (y : Graph.t) ->
            x.Graph.period <> y.Graph.period
            || Graph.total_wcet x <> Graph.total_wcet y)
          a.Appset.graphs c.Appset.graphs)

let test_synth_always_has_critical () =
  for seed = 0 to 20 do
    let apps =
      B.Synth.generate ~seed
        { B.Synth.default_spec with B.Synth.droppable_ratio = 1.0 } in
    check Alcotest.bool "at least one critical graph" true
      (Appset.critical_graphs apps <> [])
  done

let test_sampler_plans_valid () =
  for seed = 0 to 10 do
    List.iter
      (fun (b : B.Benchmark.t) ->
        let plan =
          B.Sampler.plan ~seed b.B.Benchmark.arch b.B.Benchmark.apps in
        check (Alcotest.list Alcotest.string) "random plan placement" []
          (Plan.errors b.B.Benchmark.arch b.B.Benchmark.apps plan);
        let balanced =
          B.Sampler.balanced_plan ~seed b.B.Benchmark.arch
            b.B.Benchmark.apps in
        check (Alcotest.list Alcotest.string) "balanced plan placement" []
          (Plan.errors b.B.Benchmark.arch b.B.Benchmark.apps balanced))
      [ B.Cruise.benchmark (); B.Synth.synth1 () ]
  done

let test_builder_derivations () =
  let t = B.Builder.task ~id:0 ~name:"x" ~wcet:100 () in
  check Alcotest.int "bcet 3/5" 60 t.Mcmap_model.Task.bcet;
  check Alcotest.int "detection wcet/10" 10
    t.Mcmap_model.Task.detection_overhead;
  check Alcotest.int "voting wcet/20" 5 t.Mcmap_model.Task.voting_overhead;
  let g =
    B.Builder.chain ~name:"c" ~period:100
      ~criticality:(Criticality.droppable 1.)
      [ ("a", 10); ("b", 20); ("c", 30) ] in
  check Alcotest.int "chain tasks" 3 (Graph.n_tasks g);
  check Alcotest.int "chain channels" 2 (Array.length g.Graph.channels)

let test_platforms () =
  let q = B.Platforms.quad () in
  check Alcotest.int "quad" 4 (Arch.n_procs q);
  let h = B.Platforms.hexa () in
  check Alcotest.int "hexa" 6 (Arch.n_procs h);
  (* heterogeneous fault rates: the lockstep core is the most reliable *)
  let rates =
    Array.to_list h.Arch.procs
    |> List.map (fun p -> p.Mcmap_model.Proc.fault_rate) in
  check Alcotest.bool "lockstep lowest rate" true
    (List.for_all (fun r -> r >= 1e-6) rates && List.mem 1e-6 rates)

let suite =
  [ Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "all benchmarks valid" `Quick
      test_every_benchmark_valid;
    Alcotest.test_case "cruise: structure" `Quick test_cruise_structure;
    Alcotest.test_case "cruise: sample plans" `Quick
      test_cruise_sample_plans;
    Alcotest.test_case "dt: structure" `Quick test_dt_structure;
    Alcotest.test_case "synth: determinism" `Quick test_synth_determinism;
    Alcotest.test_case "synth: critical guarantee" `Quick
      test_synth_always_has_critical;
    Alcotest.test_case "sampler: valid plans" `Quick
      test_sampler_plans_valid;
    Alcotest.test_case "builder: derivations" `Quick
      test_builder_derivations;
    Alcotest.test_case "platforms" `Quick test_platforms ]
