(* Unit and property tests for mcmap.util. *)

module Prng = Mcmap_util.Prng
module Mathx = Mcmap_util.Mathx
module Interval = Mcmap_util.Interval
module Stats = Mcmap_util.Stats
module Pareto = Mcmap_util.Pareto
module Texttable = Mcmap_util.Texttable
module Heap = Mcmap_util.Heap
module Json = Mcmap_util.Json
module Fingerprint = Mcmap_util.Fingerprint
module Lru = Mcmap_util.Lru
module Bitset = Mcmap_util.Bitset
module IntSet = Set.Make (Int)

module Int_heap = Heap.Make (Int)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_prng_split_independent () =
  let parent = Prng.create 7 in
  let child = Prng.split parent in
  let c1 = Prng.bits64 child in
  let p1 = Prng.bits64 parent in
  check Alcotest.bool "child differs from parent" true (c1 <> p1)

let test_prng_copy () =
  let a = Prng.create 5 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.bits64 a)
    (Prng.bits64 b)

let prop_int_bounds =
  QCheck.Test.make ~name:"Prng.int stays within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let x = Prng.int rng bound in
      0 <= x && x < bound)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int_in is inclusive" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Prng.create seed in
      let x = Prng.int_in rng lo (lo + span) in
      lo <= x && x <= lo + span)

let prop_float_bounds =
  QCheck.Test.make ~name:"Prng.float stays within bounds" ~count:500
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let x = Prng.float rng 10. in
      0. <= x && x < 10.)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"Prng.shuffle permutes" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.int_range 0 30) int))
    (fun (seed, l) ->
      let rng = Prng.create seed in
      let a = Array.of_list l in
      Prng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

(* Uniformity smoke tests: [int] uses rejection sampling, so no residue
   class may be favoured even when the bound is not a power of two. With
   10_000 draws over 10 buckets the expected count is 1000 (sigma ~ 30);
   a 150-count excursion is a > 5-sigma event. *)
let bucket_counts draw ~buckets ~draws =
  let counts = Array.make buckets 0 in
  for _ = 1 to draws do
    let x = draw () in
    counts.(x) <- counts.(x) + 1
  done;
  counts

let test_int_uniform () =
  let rng = Prng.create 23 in
  Array.iter
    (fun c ->
      check Alcotest.bool "bucket within 5 sigma" true
        (abs (c - 1000) < 150))
    (bucket_counts (fun () -> Prng.int rng 10) ~buckets:10 ~draws:10000)

let test_int_in_uniform () =
  let rng = Prng.create 29 in
  Array.iter
    (fun c ->
      check Alcotest.bool "bucket within 5 sigma" true
        (abs (c - 1000) < 150))
    (bucket_counts
       (fun () -> Prng.int_in rng (-3) 6 + 3)
       ~buckets:10 ~draws:10000)

let test_bernoulli_extremes () =
  let rng = Prng.create 3 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=0 never" false (Prng.bernoulli rng 0.);
    check Alcotest.bool "p=1 always" true (Prng.bernoulli rng 1.)
  done

let test_bernoulli_rate () =
  let rng = Prng.create 11 in
  let hits = ref 0 in
  let n = 10000 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "close to 0.3" true (abs_float (rate -. 0.3) < 0.03)

let test_exponential_mean () =
  let rng = Prng.create 13 in
  let acc = ref 0. in
  let n = 20000 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential rng 2.
  done;
  let mean = !acc /. float_of_int n in
  check Alcotest.bool "mean close to 1/rate" true
    (abs_float (mean -. 0.5) < 0.03)

let test_pick () =
  let rng = Prng.create 17 in
  for _ = 1 to 100 do
    let x = Prng.pick rng [| 1; 2; 3 |] in
    check Alcotest.bool "picked element" true (List.mem x [ 1; 2; 3 ])
  done;
  check Alcotest.bool "pick_list element" true
    (List.mem (Prng.pick_list rng [ "a"; "b" ]) [ "a"; "b" ])

(* ------------------------------------------------------------------ *)
(* Mathx *)

let test_gcd_lcm () =
  check Alcotest.int "gcd 12 18" 6 (Mathx.gcd 12 18);
  check Alcotest.int "gcd 0 5" 5 (Mathx.gcd 0 5);
  check Alcotest.int "gcd 5 0" 5 (Mathx.gcd 5 0);
  check Alcotest.int "lcm 4 6" 12 (Mathx.lcm 4 6);
  check Alcotest.int "lcm 0 6" 0 (Mathx.lcm 0 6);
  check Alcotest.int "lcm_list" 60 (Mathx.lcm_list [ 4; 6; 10 ]);
  check Alcotest.int "lcm_list empty" 1 (Mathx.lcm_list [])

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:300
    QCheck.(pair (int_range 0 10000) (int_range 1 10000))
    (fun (a, b) ->
      let g = Mathx.gcd a b in
      g > 0 && a mod g = 0 && b mod g = 0)

let prop_lcm_multiple =
  QCheck.Test.make ~name:"lcm is a common multiple" ~count:300
    QCheck.(pair (int_range 1 1000) (int_range 1 1000))
    (fun (a, b) ->
      let m = Mathx.lcm a b in
      m mod a = 0 && m mod b = 0 && m <= a * b)

let test_ceil_div () =
  check Alcotest.int "7/2" 4 (Mathx.ceil_div 7 2);
  check Alcotest.int "8/2" 4 (Mathx.ceil_div 8 2);
  check Alcotest.int "0/5" 0 (Mathx.ceil_div 0 5);
  check Alcotest.int "1/5" 1 (Mathx.ceil_div 1 5)

let test_clamp () =
  check Alcotest.int "below" 2 (Mathx.clamp ~lo:2 ~hi:8 0);
  check Alcotest.int "above" 8 (Mathx.clamp ~lo:2 ~hi:8 99);
  check Alcotest.int "inside" 5 (Mathx.clamp ~lo:2 ~hi:8 5);
  check (Alcotest.float 1e-9) "float clamp" 1.5
    (Mathx.clamp_f ~lo:0. ~hi:1.5 7.)

let test_sums () =
  check Alcotest.int "sum_by" 6 (Mathx.sum_by (fun x -> x) [ 1; 2; 3 ]);
  check (Alcotest.float 1e-9) "sum_by_f" 6.
    (Mathx.sum_by_f float_of_int [ 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Heap *)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 50) int)
    (fun l ->
      let h = Int_heap.create () in
      List.iter (Int_heap.add h) l;
      let rec drain acc =
        match Int_heap.pop h with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc in
      drain [] = List.sort compare l)

let test_heap_basics () =
  let h = Int_heap.create () in
  check Alcotest.bool "empty" true (Int_heap.is_empty h);
  check (Alcotest.option Alcotest.int) "peek empty" None (Int_heap.peek h);
  check (Alcotest.option Alcotest.int) "pop empty" None (Int_heap.pop h);
  Int_heap.add h 5;
  Int_heap.add h 1;
  Int_heap.add h 3;
  check Alcotest.int "size" 3 (Int_heap.size h);
  check (Alcotest.option Alcotest.int) "peek min" (Some 1)
    (Int_heap.peek h);
  check Alcotest.int "pop_exn" 1 (Int_heap.pop_exn h);
  Int_heap.clear h;
  check Alcotest.bool "cleared" true (Int_heap.is_empty h)

let test_heap_filter () =
  let h = Int_heap.create () in
  List.iter (Int_heap.add h) [ 5; 2; 8; 1; 9 ];
  Int_heap.filter_in_place h (fun x -> x mod 2 = 1);
  let rec drain acc =
    match Int_heap.pop h with
    | Some x -> drain (x :: acc)
    | None -> List.rev acc in
  check (Alcotest.list Alcotest.int) "odd survivors" [ 1; 5; 9 ] (drain [])

let test_heap_pop_exn_empty () =
  let h = Int_heap.create () in
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Int_heap.pop_exn h))

(* Model-based: an interleaved add/pop trace must agree step by step
   with a sorted-list model, not only after draining. *)
let prop_heap_model =
  QCheck.Test.make ~name:"heap agrees with sorted-list model" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 60) (option small_signed_int))
    (fun ops ->
      let h = Int_heap.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
            Int_heap.add h x;
            model := List.sort compare (x :: !model);
            Int_heap.size h = List.length !model
            && Int_heap.peek h = (match !model with [] -> None | m :: _ -> Some m)
          | None ->
            let popped = Int_heap.pop h in
            let expected =
              match !model with
              | [] -> None
              | m :: rest ->
                model := rest;
                Some m in
            popped = expected)
        ops)

(* ------------------------------------------------------------------ *)
(* Interval *)

let test_interval_basics () =
  let i = Interval.make 2 8 in
  check Alcotest.int "length" 6 (Interval.length i);
  check Alcotest.bool "contains" true (Interval.contains i 5);
  check Alcotest.bool "not contains" false (Interval.contains i 9);
  check Alcotest.bool "overlaps" true
    (Interval.overlaps i (Interval.make 8 12));
  check Alcotest.bool "disjoint" false
    (Interval.overlaps i (Interval.make 9 12));
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (Interval.make 3 2))

let test_interval_ops () =
  let a = Interval.make 0 5 and b = Interval.make 3 10 in
  let h = Interval.hull a b in
  check Alcotest.int "hull lo" 0 h.Interval.lo;
  check Alcotest.int "hull hi" 10 h.Interval.hi;
  (match Interval.inter a b with
   | Some i ->
     check Alcotest.int "inter lo" 3 i.Interval.lo;
     check Alcotest.int "inter hi" 5 i.Interval.hi
   | None -> Alcotest.fail "expected intersection");
  check (Alcotest.option Alcotest.unit) "disjoint inter" None
    (Option.map (fun _ -> ()) (Interval.inter a (Interval.make 6 9)));
  let s = Interval.shift a 10 in
  check Alcotest.int "shift" 10 s.Interval.lo

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"interval overlap is symmetric" ~count:300
    QCheck.(quad (int_range 0 50) (int_range 0 50) (int_range 0 50)
              (int_range 0 50))
    (fun (a, b, c, d) ->
      let i = Interval.make (min a b) (max a b) in
      let j = Interval.make (min c d) (max c d) in
      Interval.overlaps i j = Interval.overlaps j i)

let interval_pair =
  QCheck.(
    map
      (fun (a, b, c, d) ->
        (Interval.make (min a b) (max a b), Interval.make (min c d) (max c d)))
      (quad (int_range 0 50) (int_range 0 50) (int_range 0 50)
         (int_range 0 50)))

(* inter/hull/overlaps must agree: the intersection exists exactly when
   the intervals overlap, lies inside both, and the hull contains both. *)
let prop_interval_algebra =
  QCheck.Test.make ~name:"interval inter/hull/overlaps agree" ~count:300
    interval_pair
    (fun (i, j) ->
      let h = Interval.hull i j in
      let inside outer inner =
        outer.Interval.lo <= inner.Interval.lo
        && inner.Interval.hi <= outer.Interval.hi in
      inside h i && inside h j
      &&
      match Interval.inter i j with
      | None -> not (Interval.overlaps i j)
      | Some x -> Interval.overlaps i j && inside i x && inside j x)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_summary () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4. ] in
  check Alcotest.int "count" 4 s.Stats.count;
  check (Alcotest.float 1e-9) "mean" 2.5 s.Stats.mean;
  check (Alcotest.float 1e-9) "min" 1. s.Stats.minimum;
  check (Alcotest.float 1e-9) "max" 4. s.Stats.maximum;
  check (Alcotest.float 1e-6) "stddev" 1.2909944487 s.Stats.stddev;
  let empty = Stats.summarize [] in
  check Alcotest.int "empty count" 0 empty.Stats.count

let test_percentile () =
  let samples = [ 5.; 1.; 3.; 2.; 4. ] in
  check (Alcotest.float 1e-9) "p50" 3. (Stats.percentile samples 50.);
  check (Alcotest.float 1e-9) "p100" 5. (Stats.percentile samples 100.);
  check (Alcotest.float 1e-9) "p1" 1. (Stats.percentile samples 1.)

let test_ratio_pct () =
  check (Alcotest.float 1e-9) "ratio" 25. (Stats.ratio_pct 1 4);
  check (Alcotest.float 1e-9) "zero denominator" 0. (Stats.ratio_pct 1 0)

let prop_mean_within_bounds =
  QCheck.Test.make ~name:"mean between min and max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun l ->
      let s = Stats.summarize l in
      s.Stats.minimum -. 1e-9 <= s.Stats.mean
      && s.Stats.mean <= s.Stats.maximum +. 1e-9)

(* Clopper-Pearson reference values computed with scipy.stats
   (beta.ppf); the interval is exact, so these are reproducible to the
   printed precision by any correct implementation. *)
let test_clopper_pearson_known () =
  let ci = Alcotest.float 1e-4 in
  let lo, hi = Stats.clopper_pearson ~successes:0 ~trials:100 () in
  check ci "0/100 lo" 0. lo;
  check ci "0/100 hi (rule of three)" 0.0362 hi;
  let lo, hi = Stats.clopper_pearson ~successes:1 ~trials:10 () in
  check ci "1/10 lo" 0.00253 lo;
  check ci "1/10 hi" 0.44502 hi;
  let lo, hi = Stats.clopper_pearson ~successes:5 ~trials:100 () in
  check ci "5/100 lo" 0.01643 lo;
  check ci "5/100 hi" 0.11283 hi

let test_clopper_pearson_edges () =
  let lo, hi = Stats.clopper_pearson ~successes:0 ~trials:50 () in
  check (Alcotest.float 1e-12) "k=0 lo pinned" 0. lo;
  check Alcotest.bool "k=0 hi positive" true (hi > 0.);
  let lo, hi = Stats.clopper_pearson ~successes:50 ~trials:50 () in
  check (Alcotest.float 1e-12) "k=n hi pinned" 1. hi;
  check Alcotest.bool "k=n lo below 1" true (lo < 1.)

let prop_clopper_pearson_contains_mle =
  QCheck.Test.make ~name:"Clopper-Pearson interval contains k/n"
    ~count:200
    QCheck.(pair (int_range 0 60) (int_range 1 60))
    (fun (k, extra) ->
      let n = k + extra in
      let lo, hi = Stats.clopper_pearson ~successes:k ~trials:n () in
      let p = float_of_int k /. float_of_int n in
      0. <= lo && lo <= p && p <= hi && hi <= 1.)

let test_weighted_moments () =
  let w = List.fold_left Stats.weighted_add Stats.weighted_empty
      [ 1.; 2.; 3.; 4. ] in
  check Alcotest.int "count" 4 w.Stats.count;
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.weighted_mean w);
  (* unbiased sample variance of 1..4 is 5/3 *)
  check (Alcotest.float 1e-9) "variance" (5. /. 3.)
    (Stats.weighted_variance w);
  let a = List.fold_left Stats.weighted_add Stats.weighted_empty [ 1.; 2. ] in
  let b = List.fold_left Stats.weighted_add Stats.weighted_empty [ 3.; 4. ] in
  let m = Stats.weighted_merge a b in
  check (Alcotest.float 1e-9) "merge mean" (Stats.weighted_mean w)
    (Stats.weighted_mean m);
  check (Alcotest.float 1e-9) "merge variance" (Stats.weighted_variance w)
    (Stats.weighted_variance m);
  let s = Stats.weighted_of_sums ~count:4 ~sum:10. ~sumsq:30. in
  check (Alcotest.float 1e-9) "of_sums mean" 2.5 (Stats.weighted_mean s)

let test_weighted_interval () =
  let w = Stats.weighted_of_sums ~count:400 ~sum:100. ~sumsq:100. in
  (* mean 0.25, sample variance = (100 - 400*0.0625)/399 = 75/399 *)
  let lo, hi = Stats.weighted_interval ~z:1.96 w in
  let half = 1.96 *. sqrt (75. /. 399. /. 400.) in
  check (Alcotest.float 1e-9) "lo" (0.25 -. half) lo;
  check (Alcotest.float 1e-9) "hi" (0.25 +. half) hi;
  (* zero variance collapses to a point *)
  let z = Stats.weighted_of_sums ~count:10 ~sum:10. ~sumsq:10. in
  let lo, hi = Stats.weighted_interval z in
  check (Alcotest.float 1e-12) "degenerate lo" 1. lo;
  check (Alcotest.float 1e-12) "degenerate hi" 1. hi

(* ------------------------------------------------------------------ *)
(* Pareto *)

let test_dominates () =
  check Alcotest.bool "strict" true (Pareto.dominates [| 1.; 1. |] [| 2.; 2. |]);
  check Alcotest.bool "partial" true (Pareto.dominates [| 1.; 2. |] [| 2.; 2. |]);
  check Alcotest.bool "equal" false (Pareto.dominates [| 1.; 1. |] [| 1.; 1. |]);
  check Alcotest.bool "incomparable" false
    (Pareto.dominates [| 1.; 3. |] [| 2.; 2. |])

let test_non_dominated () =
  let entries =
    [ ("a", [| 1.; 3. |]); ("b", [| 2.; 2. |]); ("c", [| 3.; 1. |]);
      ("d", [| 3.; 3. |]) ] in
  let front = List.map fst (Pareto.non_dominated entries) in
  check (Alcotest.list Alcotest.string) "front" [ "a"; "b"; "c" ] front

let test_front_2d_sorted () =
  let entries =
    [ ("c", [| 3.; 1. |]); ("a", [| 1.; 3. |]); ("b", [| 2.; 2. |]) ] in
  let front = List.map fst (Pareto.front_2d entries) in
  check (Alcotest.list Alcotest.string) "sorted by first objective"
    [ "a"; "b"; "c" ] front

let prop_front_members_undominated =
  QCheck.Test.make ~name:"no front member dominated by any input"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20)
              (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun pts ->
      let entries = List.mapi (fun i (x, y) -> (i, [| x; y |])) pts in
      let front = Pareto.non_dominated entries in
      List.for_all
        (fun (_, f) ->
          List.for_all (fun (_, e) -> not (Pareto.dominates e f)) entries)
        front)

let point2 =
  QCheck.(
    map (fun (x, y) -> [| float_of_int x; float_of_int y |])
      (pair (int_range 0 4) (int_range 0 4)))

(* Dominance is a strict partial order; integer coordinates on a small
   grid make coincidences (and thus the interesting cases) common. *)
let prop_dominates_irreflexive =
  QCheck.Test.make ~name:"dominance is irreflexive" ~count:200 point2
    (fun a -> not (Pareto.dominates a a))

let prop_dominates_asymmetric =
  QCheck.Test.make ~name:"dominance is asymmetric" ~count:300
    QCheck.(pair point2 point2)
    (fun (a, b) -> not (Pareto.dominates a b && Pareto.dominates b a))

let prop_dominates_transitive =
  QCheck.Test.make ~name:"dominance is transitive" ~count:500
    QCheck.(triple point2 point2 point2)
    (fun (a, b, c) ->
      (not (Pareto.dominates a b && Pareto.dominates b c))
      || Pareto.dominates a c)

(* Points off the front are each dominated by some front member, so the
   front is a complete summary of the input. *)
let prop_front_covers_input =
  QCheck.Test.make ~name:"every input point covered by the front"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) point2)
    (fun pts ->
      let entries = List.mapi (fun i p -> (i, p)) pts in
      let front = Pareto.non_dominated entries in
      List.for_all
        (fun (i, p) ->
          List.exists
            (fun (j, f) -> i = j || Pareto.dominates f p || f = p)
            front)
        entries)

let test_crowding_extremes_first () =
  let entries =
    [ ("mid", [| 2.; 2. |]); ("lo", [| 1.; 3. |]); ("hi", [| 3.; 1. |]) ]
  in
  match Pareto.crowding_sort entries with
  | (first, _) :: (second, _) :: _ ->
    check Alcotest.bool "extremes lead" true
      (List.mem first [ "lo"; "hi" ] && List.mem second [ "lo"; "hi" ])
  | _ -> Alcotest.fail "expected 3 results"

let test_hypervolume () =
  let entries =
    [ ("a", [| 1.; 3. |]); ("b", [| 2.; 2. |]); ("c", [| 3.; 1. |]) ] in
  (* ref (4,4): area = (2-1)*(4-3) + (3-2)*(4-2) + (4-3)*(4-1) = 6 *)
  check (Alcotest.float 1e-9) "three-point front" 6.
    (Pareto.hypervolume_2d ~reference:(4., 4.) entries);
  check (Alcotest.float 1e-9) "empty" 0.
    (Pareto.hypervolume_2d ~reference:(4., 4.) []);
  check (Alcotest.float 1e-9) "points outside the box ignored" 0.
    (Pareto.hypervolume_2d ~reference:(1., 1.) entries);
  (* dominated points do not change the volume *)
  check (Alcotest.float 1e-9) "dominated ignored" 6.
    (Pareto.hypervolume_2d ~reference:(4., 4.)
       (("d", [| 3.; 3. |]) :: entries))

(* ------------------------------------------------------------------ *)
(* Parallel *)

let test_parallel_matches_sequential () =
  let arr = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  for domains = 1 to 4 do
    check (Alcotest.array Alcotest.int)
      (Printf.sprintf "%d domains" domains)
      (Array.map f arr)
      (Mcmap_util.Parallel.map_array ~domains f arr)
  done

(* Self-scheduling regression: with wildly uneven per-item costs the
   atomic cursor hands late chunks to whichever domain frees up first,
   so the claim order is nondeterministic — the output placement must
   not be. *)
let test_parallel_uneven_costs () =
  let n = 257 in
  let arr = Array.init n (fun i -> i) in
  let f x =
    let spins = if x mod 17 = 0 then 20_000 else 10 in
    let acc = ref x in
    for _ = 1 to spins do
      acc := (!acc * 48271) mod 2147483647
    done;
    !acc in
  let expected = Array.map f arr in
  for domains = 2 to 4 do
    check (Alcotest.array Alcotest.int)
      (Printf.sprintf "uneven costs, %d domains" domains)
      expected
      (Mcmap_util.Parallel.map_array ~domains f arr)
  done

let test_parallel_edge_cases () =
  check (Alcotest.array Alcotest.int) "empty" [||]
    (Mcmap_util.Parallel.map_array ~domains:4 (fun x -> x) [||]);
  check (Alcotest.array Alcotest.int) "singleton" [| 2 |]
    (Mcmap_util.Parallel.map_array ~domains:4 (fun x -> x + 1) [| 1 |]);
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Parallel.map_array: domains < 1") (fun () ->
      ignore (Mcmap_util.Parallel.map_array ~domains:0 (fun x -> x) [| 1 |]));
  check Alcotest.bool "recommended positive" true
    (Mcmap_util.Parallel.recommended_domains () >= 1)

(* ------------------------------------------------------------------ *)
(* Texttable *)

let test_texttable () =
  let t = Texttable.create ~header:[ "a"; "bb" ] in
  Texttable.add_row t [ "x" ];
  Texttable.add_row t [ "long"; "y" ];
  let rendered = Texttable.render t in
  check Alcotest.bool "contains header" true
    (String.length rendered > 0
     && String.sub rendered 0 1 = "a");
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Texttable.add_row: more cells than columns")
    (fun () -> Texttable.add_row t [ "1"; "2"; "3" ])

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_parse_basics () =
  let ok s = Result.get_ok (Json.parse s) in
  check Alcotest.bool "null" true (ok "null" = Json.Null);
  check Alcotest.bool "true" true (ok "true" = Json.Bool true);
  check Alcotest.bool "int" true (ok "-42" = Json.Int (-42));
  check Alcotest.bool "float" true (ok "2.5e2" = Json.Float 250.);
  check Alcotest.bool "string escapes" true
    (ok {|"a\n\"b\"é"|} = Json.String "a\n\"b\"\xc3\xa9");
  check Alcotest.bool "surrogate pair" true
    (ok {|"😀"|} = Json.String "\xf0\x9f\x98\x80");
  check Alcotest.bool "nested" true
    (ok {|{"a": [1, {"b": null}], "c": ""}|}
     = Json.Obj
         [ ("a", Json.List [ Json.Int 1; Json.Obj [ ("b", Json.Null) ] ]);
           ("c", Json.String "") ])

let test_json_parse_errors () =
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "%S rejected" s) true
        (Result.is_error (Json.parse s)))
    [ ""; "tru"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; "{'a':1}";
      "nan"; "[1" ]

let test_json_member () =
  let j = Result.get_ok (Json.parse {|{"a": 1, "b": [2]}|}) in
  check Alcotest.bool "present" true (Json.member "a" j = Some (Json.Int 1));
  check Alcotest.bool "absent" true (Json.member "z" j = None);
  check Alcotest.bool "non-object" true (Json.member "a" Json.Null = None)

let json_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [ return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) small_signed_int;
            map (fun f -> Json.Float f) (float_bound_inclusive 1e6);
            map (fun s -> Json.String s) string_printable ] in
      if n <= 0 then leaf
      else
        oneof
          [ leaf;
            map (fun l -> Json.List l)
              (list_size (int_bound 4) (self (n / 2)));
            map (fun kvs -> Json.Obj kvs)
              (list_size (int_bound 4)
                 (pair string_printable (self (n / 2)))) ])

let prop_json_roundtrip =
  QCheck.Test.make ~name:"Json.parse inverts Json.to_string" ~count:300
    (QCheck.make json_gen)
    (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' -> j = j'
      | Error _ -> false)

let prop_json_minified_roundtrip =
  QCheck.Test.make ~name:"minified output parses identically" ~count:300
    (QCheck.make json_gen)
    (fun j -> Json.parse (Json.to_string ~minify:true j) = Ok j)

(* ------------------------------------------------------------------ *)
(* Fingerprint *)

let test_fingerprint_combinators () =
  let fp ops = ops Fingerprint.empty in
  let a = fp (fun t -> Fingerprint.int (Fingerprint.int t 1) 2) in
  let b = fp (fun t -> Fingerprint.int (Fingerprint.int t 1) 2) in
  check Alcotest.bool "same absorptions, same fingerprint" true
    (Fingerprint.equal a b);
  check Alcotest.int "compare agrees with equal" 0 (Fingerprint.compare a b);
  check Alcotest.int "hash agrees with equal" (Fingerprint.hash a)
    (Fingerprint.hash b);
  let swapped = fp (fun t -> Fingerprint.int (Fingerprint.int t 2) 1) in
  check Alcotest.bool "ordered absorption is order-sensitive" false
    (Fingerprint.equal a swapped);
  check Alcotest.bool "int/bool/float/string lanes differ" true
    (List.for_all
       (fun x -> not (Fingerprint.equal a x))
       [ fp (fun t -> Fingerprint.int t 1);
         fp (fun t -> Fingerprint.bool t true);
         fp (fun t -> Fingerprint.float t 1.);
         fp (fun t -> Fingerprint.string t "1") ]);
  (* -0.0 and 0.0 have distinct IEEE bits; fingerprints must see them *)
  check Alcotest.bool "float uses IEEE bits" false
    (Fingerprint.equal
       (fp (fun t -> Fingerprint.float t 0.))
       (fp (fun t -> Fingerprint.float t (-0.))));
  check Alcotest.int "hex digest is 128-bit" 32
    (String.length (Fingerprint.to_hex a))

let test_fingerprint_unordered () =
  let item v = Fingerprint.int Fingerprint.empty v in
  let sum vs =
    List.fold_left
      (fun acc v -> Fingerprint.unordered_add acc (item v))
      Fingerprint.unordered_zero vs in
  check Alcotest.bool "multiset hash is order-independent" true
    (Fingerprint.equal (sum [ 1; 2; 3 ]) (sum [ 3; 1; 2 ]));
  check Alcotest.bool "multiset hash counts multiplicity" false
    (Fingerprint.equal (sum [ 1; 2 ]) (sum [ 1; 1; 2 ]));
  check Alcotest.bool "different multisets differ" false
    (Fingerprint.equal (sum [ 1; 2; 3 ]) (sum [ 1; 2; 4 ]))

(* ------------------------------------------------------------------ *)
(* Bitset. Capacities straddle the 63-bit word boundary on purpose so
   every law exercises both the single- and multi-word paths. *)

let bitset_input =
  QCheck.(
    map
      (fun (cap_seed, raw) ->
        let capacity = 1 + (cap_seed mod 130) in
        (capacity, List.map (fun i -> i mod capacity) raw))
      (pair (int_range 0 1000)
         (list_of_size (Gen.int_range 0 40) (int_range 0 10000))))

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset add/mem/remove round-trip" ~count:300
    bitset_input
    (fun (capacity, members) ->
      let t = Bitset.create capacity in
      List.iter (Bitset.add t) members;
      List.for_all (Bitset.mem t) members
      && (List.iter (Bitset.remove t) members;
          Bitset.is_empty t && Bitset.cardinal t = 0))

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset union/inter agree with IntSet model"
    ~count:300
    QCheck.(pair bitset_input (list_of_size (Gen.int_range 0 40)
                                 (int_range 0 10000)))
    (fun ((capacity, xs), raw_ys) ->
      let ys = List.map (fun i -> i mod capacity) raw_ys in
      let a = Bitset.of_list capacity xs
      and b = Bitset.of_list capacity ys in
      let ma = IntSet.of_list xs and mb = IntSet.of_list ys in
      let u = Bitset.of_list capacity xs in
      Bitset.union_into ~dst:u b;
      let i = Bitset.of_list capacity xs in
      Bitset.inter_into ~dst:i b;
      Bitset.elements u = IntSet.elements (IntSet.union ma mb)
      && Bitset.elements i = IntSet.elements (IntSet.inter ma mb)
      && Bitset.cardinal a = IntSet.cardinal ma
      && Bitset.equal a b = IntSet.equal ma mb)

let prop_bitset_fold_order =
  QCheck.Test.make
    ~name:"bitset iter/fold visit members in ascending order" ~count:300
    bitset_input
    (fun (capacity, members) ->
      let t = Bitset.of_list capacity members in
      let seen = ref [] in
      Bitset.iter (fun i -> seen := i :: !seen) t;
      let ascending = List.rev !seen in
      ascending = IntSet.elements (IntSet.of_list members)
      && Bitset.fold (fun i acc -> i :: acc) t [] = !seen
      && Bitset.elements t = ascending)

let prop_bitset_blit_words =
  QCheck.Test.make
    ~name:"bitset blit copies; words keep high bits zero" ~count:300
    bitset_input
    (fun (capacity, members) ->
      let src = Bitset.of_list capacity members in
      let dst = Bitset.create capacity in
      Bitset.blit ~src ~dst;
      Bitset.equal src dst
      && (* representation invariant the flat kernel's word-level
            difference walk relies on *)
      (let words = Bitset.words src in
       let ok = ref true in
       Array.iteri
         (fun w word ->
           for bit = 0 to 62 do
             let i = (w * 63) + bit in
             if i >= capacity && word land (1 lsl bit) <> 0 then
               ok := false
           done)
         words;
       !ok))

let test_bitset_mismatch_and_ranges () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  List.iter
    (fun (name, f) ->
      Alcotest.check_raises name
        (Invalid_argument ("Bitset." ^ name ^ ": capacity mismatch")) f)
    [ ("equal", fun () -> ignore (Bitset.equal a b));
      ("blit", fun () -> Bitset.blit ~src:a ~dst:b);
      ("union_into", fun () -> Bitset.union_into ~dst:a b);
      ("inter_into", fun () -> Bitset.inter_into ~dst:a b) ];
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Bitset.create: negative capacity") (fun () ->
      ignore (Bitset.create (-1)));
  Alcotest.check_raises "of_list out of range"
    (Invalid_argument "Bitset.of_list: member out of range") (fun () ->
      ignore (Bitset.of_list 3 [ 3 ]));
  check Alcotest.int "capacity" 10 (Bitset.capacity a);
  check Alcotest.bool "empty set has empty elements" true
    (Bitset.elements (Bitset.create 0) = [])

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_eviction () =
  let c = Lru.create ~capacity:2 () in
  Lru.add c 1 "one";
  Lru.add c 2 "two";
  (* touching 1 makes 2 the eviction victim *)
  check (Alcotest.option Alcotest.string) "find touches" (Some "one")
    (Lru.find c 1);
  Lru.add c 3 "three";
  check (Alcotest.option Alcotest.string) "lru evicted" None (Lru.find c 2);
  check (Alcotest.option Alcotest.string) "touched survives" (Some "one")
    (Lru.find c 1);
  check (Alcotest.option Alcotest.string) "new entry present"
    (Some "three") (Lru.find c 3);
  check Alcotest.int "one eviction" 1 (Lru.evictions c);
  check Alcotest.int "length at capacity" 2 (Lru.length c);
  Lru.add c 3 "replaced";
  check (Alcotest.option Alcotest.string) "replace in place"
    (Some "replaced") (Lru.find c 3);
  check Alcotest.int "replace does not evict" 1 (Lru.evictions c)

let test_lru_edge_cases () =
  let disabled = Lru.create ~capacity:0 () in
  Lru.add disabled 1 "x";
  check (Alcotest.option Alcotest.string) "capacity 0 stores nothing" None
    (Lru.find disabled 1);
  check Alcotest.int "capacity 0 length" 0 (Lru.length disabled);
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Lru.create ~capacity:(-1) ()));
  let c = Lru.create ~capacity:3 () in
  for i = 1 to 10 do
    Lru.add c i i
  done;
  check Alcotest.int "bounded" 3 (Lru.length c);
  check Alcotest.bool "mem does not touch" true (Lru.mem c 10);
  Lru.clear c;
  check Alcotest.int "clear empties" 0 (Lru.length c);
  check (Alcotest.option Alcotest.int) "cleared" None (Lru.find c 10)

let suite =
  [ Alcotest.test_case "prng: deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng: seed sensitivity" `Quick
      test_prng_seed_sensitivity;
    Alcotest.test_case "prng: split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng: copy" `Quick test_prng_copy;
    Alcotest.test_case "prng: bernoulli extremes" `Quick
      test_bernoulli_extremes;
    Alcotest.test_case "prng: bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "prng: exponential mean" `Quick
      test_exponential_mean;
    Alcotest.test_case "prng: pick" `Quick test_pick;
    Alcotest.test_case "prng: int uniform" `Quick test_int_uniform;
    Alcotest.test_case "prng: int_in uniform" `Quick test_int_in_uniform;
    qtest prop_int_bounds;
    qtest prop_int_in_bounds;
    qtest prop_float_bounds;
    qtest prop_shuffle_permutation;
    Alcotest.test_case "mathx: gcd/lcm" `Quick test_gcd_lcm;
    Alcotest.test_case "mathx: ceil_div" `Quick test_ceil_div;
    Alcotest.test_case "mathx: clamp" `Quick test_clamp;
    Alcotest.test_case "mathx: sums" `Quick test_sums;
    qtest prop_gcd_divides;
    qtest prop_lcm_multiple;
    Alcotest.test_case "heap: basics" `Quick test_heap_basics;
    Alcotest.test_case "heap: filter" `Quick test_heap_filter;
    Alcotest.test_case "heap: pop_exn on empty" `Quick
      test_heap_pop_exn_empty;
    qtest prop_heap_sorts;
    qtest prop_heap_model;
    Alcotest.test_case "interval: basics" `Quick test_interval_basics;
    Alcotest.test_case "interval: ops" `Quick test_interval_ops;
    qtest prop_overlap_symmetric;
    qtest prop_interval_algebra;
    Alcotest.test_case "stats: summary" `Quick test_summary;
    Alcotest.test_case "stats: percentile" `Quick test_percentile;
    Alcotest.test_case "stats: ratio" `Quick test_ratio_pct;
    qtest prop_mean_within_bounds;
    Alcotest.test_case "stats: Clopper-Pearson known values" `Quick
      test_clopper_pearson_known;
    Alcotest.test_case "stats: Clopper-Pearson edges" `Quick
      test_clopper_pearson_edges;
    qtest prop_clopper_pearson_contains_mle;
    Alcotest.test_case "stats: weighted moments" `Quick
      test_weighted_moments;
    Alcotest.test_case "stats: weighted interval" `Quick
      test_weighted_interval;
    Alcotest.test_case "pareto: dominates" `Quick test_dominates;
    Alcotest.test_case "pareto: non_dominated" `Quick test_non_dominated;
    Alcotest.test_case "pareto: front_2d sorted" `Quick
      test_front_2d_sorted;
    Alcotest.test_case "pareto: crowding extremes" `Quick
      test_crowding_extremes_first;
    qtest prop_front_members_undominated;
    qtest prop_dominates_irreflexive;
    qtest prop_dominates_asymmetric;
    qtest prop_dominates_transitive;
    qtest prop_front_covers_input;
    Alcotest.test_case "pareto: hypervolume" `Quick test_hypervolume;
    Alcotest.test_case "parallel: matches sequential" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "parallel: edge cases" `Quick
      test_parallel_edge_cases;
    Alcotest.test_case "parallel: uneven costs self-schedule" `Quick
      test_parallel_uneven_costs;
    Alcotest.test_case "fingerprint: combinators" `Quick
      test_fingerprint_combinators;
    Alcotest.test_case "fingerprint: unordered" `Quick
      test_fingerprint_unordered;
    qtest prop_bitset_roundtrip;
    qtest prop_bitset_model;
    qtest prop_bitset_fold_order;
    qtest prop_bitset_blit_words;
    Alcotest.test_case "bitset: mismatches and ranges" `Quick
      test_bitset_mismatch_and_ranges;
    Alcotest.test_case "lru: eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "lru: disabled and edge cases" `Quick
      test_lru_edge_cases;
    Alcotest.test_case "texttable: render" `Quick test_texttable;
    Alcotest.test_case "json: parse basics" `Quick test_json_parse_basics;
    Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json: member" `Quick test_json_member;
    qtest prop_json_roundtrip;
    qtest prop_json_minified_roundtrip ]
