module Test_gen = Mcmap_gen.Gen

(* Unit tests for mcmap.sched: priorities, job expansion and the
   best/worst interval backend. *)

module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Criticality = Mcmap_model.Criticality
module Task = Mcmap_model.Task
module Channel = Mcmap_model.Channel
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset
module Technique = Mcmap_hardening.Technique
module Plan = Mcmap_hardening.Plan
module Happ = Mcmap_hardening.Happ
module Priority = Mcmap_sched.Priority
module Job = Mcmap_sched.Job
module Jobset = Mcmap_sched.Jobset
module Bounds = Mcmap_sched.Bounds

let check = Alcotest.check

let arch ?(n = 2) ?(policy = Proc.Preemptive_fp) () =
  Arch.make ~bus_bandwidth:2 ~bus_latency:1
    (Array.init n (fun id ->
         Proc.make ~id ~name:(Format.asprintf "p%d" id) ~policy ()))

let graph ?deadline ?(criticality = Criticality.critical 1e-3) ~name
    ~period tasks edges =
  Graph.make ?deadline ~name
    ~tasks:
      (Array.of_list
         (List.mapi
            (fun id (tname, wcet, bcet) ->
              Task.make ~id ~name:tname ~wcet ~bcet ~detection_overhead:2
                ())
            tasks))
    ~channels:
      (Array.of_list
         (List.map
            (fun (src, dst, size) -> Channel.make ~src ~dst ~size ())
            edges))
    ~period ~criticality ()

let decision ?(technique = Technique.No_hardening) primary =
  { Plan.technique; primary_proc = primary; replica_procs = [||];
    voter_proc = primary }

let build ?(a = arch ()) graphs decisions =
  let apps = Appset.make (Array.of_list graphs) in
  let plan =
    Plan.make apps
      ~decisions:(Array.of_list (List.map Array.of_list decisions))
      ~dropped:(Array.make (List.length graphs) false) in
  let happ = Happ.build a apps plan in
  Jobset.build happ

(* ------------------------------------------------------------------ *)
(* Priority *)

let test_priority_rate_monotonic () =
  let fast = graph ~name:"fast" ~period:50 [ ("f", 5, 5) ] [] in
  let slow = graph ~name:"slow" ~period:100 [ ("s", 5, 5) ] [] in
  let apps = Appset.make [| slow; fast |] in
  let plan = Plan.unhardened apps in
  let happ = Happ.build (arch ()) apps plan in
  let prio = Priority.assign happ in
  check Alcotest.bool "shorter period wins" true
    (prio.(1).(0) < prio.(0).(0))

let test_priority_depth_ordering () =
  let g =
    graph ~name:"chain" ~period:100
      [ ("a", 5, 5); ("b", 5, 5) ]
      [ (0, 1, 2) ] in
  let apps = Appset.make [| g |] in
  let happ = Happ.build (arch ()) apps (Plan.unhardened apps) in
  let prio = Priority.assign happ in
  check Alcotest.bool "upstream first" true (prio.(0).(0) < prio.(0).(1))

let test_priority_dense () =
  let g1 = graph ~name:"g1" ~period:100 [ ("a", 5, 5); ("b", 5, 5) ] [] in
  let g2 = graph ~name:"g2" ~period:50 [ ("c", 5, 5) ] [] in
  let apps = Appset.make [| g1; g2 |] in
  let happ = Happ.build (arch ()) apps (Plan.unhardened apps) in
  let prio = Priority.assign happ in
  let all =
    List.sort compare [ prio.(0).(0); prio.(0).(1); prio.(1).(0) ] in
  check (Alcotest.list Alcotest.int) "dense" [ 0; 1; 2 ] all

let test_priority_criticality_first_ablation () =
  (* under the ablation order every critical task outranks every
     droppable task, so droppables can never delay criticals on
     preemptive processors *)
  let crit = graph ~name:"crit" ~period:100 [ ("c", 10, 10) ] [] in
  let drop =
    graph ~name:"drop" ~period:50
      ~criticality:(Criticality.droppable 1.0)
      [ ("d", 10, 10) ]
      [] in
  let apps = Appset.make [| crit; drop |] in
  let happ = Happ.build (arch ()) apps (Plan.unhardened apps) in
  let rm = Priority.assign ~order:Priority.Rate_monotonic happ in
  let cf = Priority.assign ~order:Priority.Criticality_first happ in
  (* rate-monotonic: the shorter-period droppable outranks the critical *)
  check Alcotest.bool "RM lets the droppable outrank" true
    (rm.(1).(0) < rm.(0).(0));
  (* criticality-first: the critical always outranks *)
  check Alcotest.bool "criticality-first protects" true
    (cf.(0).(0) < cf.(1).(0))

let test_priority_order_changes_interference () =
  (* same system, both placed on processor 0: under RM the droppable
     delays the critical; under criticality-first it does not *)
  let crit = graph ~name:"crit" ~period:100 [ ("c", 20, 20) ] [] in
  let drop =
    graph ~name:"drop" ~period:50
      ~criticality:(Criticality.droppable 1.0)
      [ ("d", 10, 10) ]
      [] in
  let apps = Appset.make [| crit; drop |] in
  let plan = Plan.unhardened apps in
  let happ = Happ.build (arch ()) apps plan in
  let wcrt order =
    let js = Jobset.build ~priority_order:order happ in
    let r = Bounds.analyze (Bounds.make js) ~exec:Bounds.nominal_exec in
    Option.get (Bounds.graph_wcrt js r ~graph:0) in
  check Alcotest.int "RM: droppable interferes" 30
    (wcrt Priority.Rate_monotonic);
  check Alcotest.int "criticality-first: untouched" 20
    (wcrt Priority.Criticality_first)

(* ------------------------------------------------------------------ *)
(* Jobset *)

let test_jobset_expansion () =
  let fast = graph ~name:"fast" ~period:50 [ ("f", 5, 5) ] [] in
  let slow = graph ~name:"slow" ~period:100 [ ("s", 5, 5) ] [] in
  let js = build [ fast; slow ] [ [ decision 0 ]; [ decision 1 ] ] in
  check Alcotest.int "hyperperiod" 100 js.Jobset.hyperperiod;
  check Alcotest.int "job count" 3 (Jobset.n_jobs js);
  let f1 = Jobset.find js ~graph:0 ~task:0 ~instance:1 in
  check Alcotest.int "second release" 50 f1.Job.release;
  check Alcotest.int "absolute deadline" 100 f1.Job.abs_deadline;
  check Alcotest.int "instances listed" 2
    (List.length (Jobset.jobs_of_task js ~graph:0 ~task:0))

let test_jobset_comm_delays () =
  let g =
    graph ~name:"g" ~period:100
      [ ("a", 10, 10); ("b", 10, 10) ]
      [ (0, 1, 4) ] in
  (* remote placement: delay = latency 1 + ceil(4/2) = 3 *)
  let js = build [ g ] [ [ decision 0; decision 1 ] ] in
  let b = Jobset.find js ~graph:0 ~task:1 ~instance:0 in
  (match js.Jobset.preds.(b.Job.id) with
   | [| (_, delay) |] -> check Alcotest.int "remote delay" 3 delay
   | _ -> Alcotest.fail "expected one predecessor");
  (* co-located: delay 0 *)
  let js2 = build [ g ] [ [ decision 0; decision 0 ] ] in
  let b2 = Jobset.find js2 ~graph:0 ~task:1 ~instance:0 in
  (match js2.Jobset.preds.(b2.Job.id) with
   | [| (_, delay) |] -> check Alcotest.int "local delay" 0 delay
   | _ -> Alcotest.fail "expected one predecessor")

let test_jobset_instance_chaining () =
  let fast = graph ~name:"fast" ~period:50 [ ("f", 5, 5) ] [] in
  let slow = graph ~name:"slow" ~period:100 [ ("s", 5, 5) ] [] in
  let js = build [ fast; slow ] [ [ decision 0 ]; [ decision 1 ] ] in
  let f0 = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  let f1 = Jobset.find js ~graph:0 ~task:0 ~instance:1 in
  (match js.Jobset.preds.(f1.Job.id) with
   | [| (pred, 0) |] -> check Alcotest.int "chained to instance 0"
                          f0.Job.id pred
   | _ -> Alcotest.fail "expected the cross-instance edge")

let test_jobset_triggers () =
  let g = graph ~name:"g" ~period:100 [ ("a", 10, 5) ] [] in
  let js_plain = build [ g ] [ [ decision 0 ] ] in
  check Alcotest.int "no triggers unhardened" 0
    (List.length (Jobset.triggers js_plain));
  let js_hardened =
    build [ g ]
      [ [ decision ~technique:(Technique.re_execution 1) 0 ] ] in
  check Alcotest.int "re-executable is a trigger" 1
    (List.length (Jobset.triggers js_hardened))

let test_jobset_by_proc_partition () =
  let g =
    graph ~name:"g" ~period:100
      [ ("a", 10, 10); ("b", 10, 10); ("c", 10, 10) ]
      [] in
  let js = build [ g ] [ [ decision 0; decision 1; decision 0 ] ] in
  let total =
    Array.fold_left (fun acc l -> acc + Array.length l) 0
      js.Jobset.by_proc in
  check Alcotest.int "partition covers all jobs" (Jobset.n_jobs js) total;
  check Alcotest.int "proc 0 has two" 2 (Array.length js.Jobset.by_proc.(0))

let test_jobset_multi_hyperperiod () =
  let fast = graph ~name:"fast" ~period:50 [ ("f", 5, 5) ] [] in
  let slow = graph ~name:"slow" ~period:100 [ ("s", 5, 5) ] [] in
  let apps = Appset.make [| fast; slow |] in
  let happ = Happ.build (arch ()) apps (Plan.unhardened apps) in
  let js1 = Jobset.build happ in
  let js2 = Jobset.build ~hyperperiods:2 happ in
  check Alcotest.int "base hyperperiod preserved" 100
    js2.Jobset.base_hyperperiod;
  check Alcotest.int "horizon doubled" 200 js2.Jobset.hyperperiod;
  check Alcotest.int "job count doubled" (2 * Jobset.n_jobs js1)
    (Jobset.n_jobs js2);
  Alcotest.check_raises "zero hyperperiods rejected"
    (Invalid_argument "Jobset.build: hyperperiods < 1") (fun () ->
      ignore (Jobset.build ~hyperperiods:0 happ))

(* ------------------------------------------------------------------ *)
(* Bounds: hand-checked scenarios *)

let nominal js = Bounds.analyze (Bounds.make js) ~exec:Bounds.nominal_exec

let test_bounds_chain_exact () =
  let g =
    graph ~name:"g" ~period:100
      [ ("a", 10, 6); ("b", 20, 12) ]
      [ (0, 1, 4) ] in
  let js = build [ g ] [ [ decision 0; decision 0 ] ] in
  let r = nominal js in
  check Alcotest.bool "converged" true r.Bounds.converged;
  let a = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  let b = Jobset.find js ~graph:0 ~task:1 ~instance:0 in
  let ba = r.Bounds.bounds.(a.Job.id) and bb = r.Bounds.bounds.(b.Job.id) in
  check Alcotest.int "a min start" 0 ba.Bounds.min_start;
  check Alcotest.int "a min finish" 6 ba.Bounds.min_finish;
  check Alcotest.int "a max finish" 10 ba.Bounds.max_finish;
  check Alcotest.int "b min start" 6 bb.Bounds.min_start;
  check Alcotest.int "b max finish" 30 bb.Bounds.max_finish;
  check (Alcotest.option Alcotest.int) "graph wcrt" (Some 30)
    (Bounds.graph_wcrt js r ~graph:0);
  check Alcotest.bool "meets deadlines" true (Bounds.meets_deadlines js r)

let test_bounds_interference () =
  (* same processor: the shorter-period (higher-priority) task delays
     the longer one exactly once *)
  let fast = graph ~name:"fast" ~period:100 [ ("f", 10, 10) ] [] in
  let slow = graph ~name:"slow" ~period:200 [ ("s", 20, 20) ] [] in
  let js = build [ fast; slow ] [ [ decision 0 ]; [ decision 0 ] ] in
  let r = nominal js in
  let s = Jobset.find js ~graph:1 ~task:0 ~instance:0 in
  check Alcotest.int "slow pays one interference" 30
    r.Bounds.bounds.(s.Job.id).Bounds.max_finish;
  let f1 = Jobset.find js ~graph:0 ~task:0 ~instance:1 in
  check Alcotest.int "second instance untouched" 110
    r.Bounds.bounds.(f1.Job.id).Bounds.max_finish

let test_bounds_pay_once () =
  (* A(10) -> B(10) on p0 with one higher-priority interferer H(5): H's
     cycles can delay the chain only once. *)
  let chain =
    graph ~name:"chain" ~period:100
      [ ("a", 10, 10); ("b", 10, 10) ]
      [ (0, 1, 0) ] in
  let hp = graph ~name:"hp" ~period:50 [ ("h", 5, 5) ] [] in
  let js =
    build [ chain; hp ] [ [ decision 0; decision 0 ]; [ decision 0 ] ] in
  let r = nominal js in
  let b = Jobset.find js ~graph:0 ~task:1 ~instance:0 in
  (* without pay-once the bound would be 0+10+5 + 10+5 = 30; with
     pay-once H is charged once: 25 *)
  check Alcotest.int "H charged once along the chain" 25
    r.Bounds.bounds.(b.Job.id).Bounds.max_finish

let test_bounds_non_preemptive_blocking () =
  let a = arch ~policy:Proc.Non_preemptive_fp () in
  let hp = graph ~name:"hp" ~period:50 [ ("h", 10, 10) ] [] in
  let lp = graph ~name:"lp" ~period:100 [ ("l", 40, 40) ] [] in
  let js = build ~a [ hp; lp ] [ [ decision 0 ]; [ decision 0 ] ] in
  let r = nominal js in
  let h = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  (* h can be blocked by the lower-priority l for up to its full wcet *)
  check Alcotest.int "blocking term" 50
    r.Bounds.bounds.(h.Job.id).Bounds.max_finish

let test_bounds_preemptive_no_blocking () =
  let hp = graph ~name:"hp" ~period:50 [ ("h", 10, 10) ] [] in
  let lp = graph ~name:"lp" ~period:100 [ ("l", 40, 40) ] [] in
  let js = build [ hp; lp ] [ [ decision 0 ]; [ decision 0 ] ] in
  let r = nominal js in
  let h = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  check Alcotest.int "no blocking when preemptive" 10
    r.Bounds.bounds.(h.Job.id).Bounds.max_finish

let test_bounds_silent_pred_skipped () =
  (* a passive spare between producer and voter must not raise the
     voter's best-case start beyond the producer path *)
  let g =
    graph ~name:"g" ~period:100
      [ ("p", 10, 10); ("c", 10, 10) ]
      [ (0, 1, 4) ] in
  let apps = Appset.make [| g |] in
  let plan =
    Plan.make apps
      ~decisions:
        [| [| { Plan.technique = Technique.passive_replication 1;
                primary_proc = 0; replica_procs = [| 1; 2 |];
                voter_proc = 1 };
              decision 1 |] |]
      ~dropped:[| false |] in
  let happ = Happ.build (arch ~n:3 ()) apps plan in
  let js = Jobset.build happ in
  let r = nominal js in
  check Alcotest.bool "converged" true r.Bounds.converged;
  (* the spare is silent nominally: its bounds must be [ready, ready] *)
  let hg = Happ.graph happ 0 in
  let spare =
    Array.to_list hg.Happ.tasks |> List.find (fun t -> t.Happ.passive) in
  let spare_job = Jobset.find js ~graph:0 ~task:spare.Happ.id ~instance:0 in
  let sb = r.Bounds.bounds.(spare_job.Job.id) in
  check Alcotest.int "spare adds no execution" sb.Bounds.min_start
    sb.Bounds.min_finish

let test_bounds_deadline_violation_detected () =
  let g =
    graph ~name:"g" ~period:100 ~deadline:5 [ ("a", 10, 10) ] [] in
  let js = build [ g ] [ [ decision 0 ] ] in
  let r = nominal js in
  check Alcotest.bool "misses its deadline" false
    (Bounds.meets_deadlines js r)

let test_bounds_invalid_exec_rejected () =
  let g = graph ~name:"g" ~period:100 [ ("a", 10, 10) ] [] in
  let js = build [ g ] [ [ decision 0 ] ] in
  let ctx = Bounds.make js in
  check Alcotest.bool "bcet > wcet rejected" true
    (try
       ignore (Bounds.analyze ctx ~exec:(fun _ -> (5, 3)));
       false
     with Invalid_argument _ -> true)

let test_bounds_scenario_exec_hook () =
  (* doubling a job's wcet through the hook grows its finish bound *)
  let g = graph ~name:"g" ~period:100 [ ("a", 10, 10) ] [] in
  let js = build [ g ] [ [ decision 0 ] ] in
  let ctx = Bounds.make js in
  let base = Bounds.analyze ctx ~exec:Bounds.nominal_exec in
  let doubled = Bounds.analyze ctx ~exec:(fun j -> (j.Job.bcet, 2 * j.Job.wcet)) in
  let a = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  check Alcotest.int "base" 10 base.Bounds.bounds.(a.Job.id).Bounds.max_finish;
  check Alcotest.int "doubled" 20
    doubled.Bounds.bounds.(a.Job.id).Bounds.max_finish

(* ------------------------------------------------------------------ *)
(* Flat engine: edge cases the random agreement oracle is unlikely to
   pin down by chance, each cross-checked against the reference. *)

module Flat = Mcmap_sched.Flat
module Wcrt = Mcmap_analysis.Wcrt

let results_equal (a : Bounds.result) (b : Bounds.result) =
  a.Bounds.converged = b.Bounds.converged
  && Array.length a.Bounds.bounds = Array.length b.Bounds.bounds
  && Array.for_all2 ( = ) a.Bounds.bounds b.Bounds.bounds

let flat_nominal js = Flat.analyze (Flat.make js) ~exec:Bounds.nominal_exec

let test_flat_single_job () =
  let g = graph ~name:"g" ~period:100 [ ("a", 10, 6) ] [] in
  let js = build [ g ] [ [ decision 0 ] ] in
  let f = flat_nominal js in
  check Alcotest.bool "converged" true f.Bounds.converged;
  let a = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  let b = f.Bounds.bounds.(a.Job.id) in
  check Alcotest.int "min start" 0 b.Bounds.min_start;
  check Alcotest.int "min finish" 6 b.Bounds.min_finish;
  check Alcotest.int "max start" 0 b.Bounds.max_start;
  check Alcotest.int "max finish" 10 b.Bounds.max_finish;
  check Alcotest.bool "agrees with reference" true
    (results_equal f (nominal js))

let test_flat_zero_slack_deadline () =
  (* finish == deadline is a pass in both engines: the miss predicate is
     strict, so the zero-slack boundary must not drift between them *)
  let g = graph ~name:"g" ~period:100 ~deadline:10 [ ("a", 10, 10) ] [] in
  let js = build [ g ] [ [ decision 0 ] ] in
  let f = flat_nominal js in
  check Alcotest.bool "agrees with reference" true
    (results_equal f (nominal js));
  check Alcotest.bool "zero slack meets deadline" true
    (Bounds.meets_deadlines js f);
  let tight = graph ~name:"t" ~period:100 ~deadline:9 [ ("a", 10, 10) ] [] in
  let js_miss = build [ tight ] [ [ decision 0 ] ] in
  check Alcotest.bool "one tick less misses" false
    (Bounds.meets_deadlines js_miss (flat_nominal js_miss))

let test_flat_pay_once () =
  (* the hand-checked pay-once chain (see [test_bounds_pay_once]) *)
  let chain =
    graph ~name:"chain" ~period:100
      [ ("a", 10, 10); ("b", 10, 10) ]
      [ (0, 1, 0) ] in
  let hp = graph ~name:"hp" ~period:50 [ ("h", 5, 5) ] [] in
  let js =
    build [ chain; hp ] [ [ decision 0; decision 0 ]; [ decision 0 ] ] in
  let f = flat_nominal js in
  let b = Jobset.find js ~graph:0 ~task:1 ~instance:0 in
  check Alcotest.int "H charged once along the chain" 25
    f.Bounds.bounds.(b.Job.id).Bounds.max_finish

let test_flat_seed_6398_replay () =
  (* seed 6398 once exposed a pay-once soundness defect in the reference
     (see test/corpus/seeds.txt); replay its nominal and per-trigger
     scenario analyses through the flat engine *)
  let sys = Test_gen.random_system 6398 in
  let happ =
    Happ.build sys.Test_gen.arch sys.Test_gen.apps sys.Test_gen.plan in
  let js = Jobset.build happ in
  let rctx = Bounds.make js and fctx = Flat.make js in
  let normal = Bounds.analyze rctx ~exec:Bounds.nominal_exec in
  check Alcotest.bool "nominal agrees" true
    (results_equal normal (Flat.analyze fctx ~exec:Bounds.nominal_exec));
  let base = Appset.hyperperiod sys.Test_gen.apps in
  List.iter
    (fun v ->
      let exec = Wcrt.scenario_exec ~base normal.Bounds.bounds v in
      check Alcotest.bool "scenario agrees" true
        (results_equal
           (Bounds.analyze rctx ~exec)
           (Flat.analyze fctx ~exec)))
    (Jobset.triggers js)

let test_flat_horizon_truncation_parity () =
  (* an unschedulable ramp: both engines must give up identically, both
     via the horizon overflow and via the iteration cap *)
  let fast = graph ~name:"fast" ~period:10 [ ("f", 10, 10) ] [] in
  let slow = graph ~name:"slow" ~period:100 [ ("s", 20, 20) ] [] in
  let js = build [ fast; slow ] [ [ decision 0 ]; [ decision 0 ] ] in
  List.iter
    (fun horizon ->
      let f = Flat.analyze (Flat.make ~horizon js) ~exec:Bounds.nominal_exec
      and r =
        Bounds.analyze (Bounds.make ~horizon js) ~exec:Bounds.nominal_exec
      in
      check Alcotest.bool "truncated run agrees" true (results_equal f r);
      check Alcotest.bool "truncated run diverges" false f.Bounds.converged)
    [ 1; 30 ];
  List.iter
    (fun max_iterations ->
      check Alcotest.bool "capped run agrees" true
        (results_equal
           (Flat.analyze ~max_iterations (Flat.make js)
              ~exec:Bounds.nominal_exec)
           (Bounds.analyze ~max_iterations (Bounds.make js)
              ~exec:Bounds.nominal_exec)))
    [ 1; 2; Bounds.default_max_iterations ]

let test_flat_invalid_exec_rejected () =
  let g = graph ~name:"g" ~period:100 [ ("a", 10, 10) ] [] in
  let js = build [ g ] [ [ decision 0 ] ] in
  Alcotest.check_raises "bcet > wcet rejected"
    (Invalid_argument "Flat.analyze: invalid execution bounds") (fun () ->
      ignore (Flat.analyze (Flat.make js) ~exec:(fun _ -> (5, 3))))

let test_flat_scratch_arena_reuse () =
  let big =
    graph ~name:"big" ~period:100
      (List.init 8 (fun i -> (Printf.sprintf "t%d" i, 2, 1)))
      [] in
  let js_big = build [ big ] [ List.init 8 (fun i -> decision (i mod 2)) ] in
  ignore (flat_nominal js_big);
  let cap = Flat.scratch_capacity () in
  check Alcotest.bool "arena covers the big jobset" true
    (cap >= Jobset.n_jobs js_big);
  let small = graph ~name:"small" ~period:100 [ ("a", 10, 6) ] [] in
  let js_small = build [ small ] [ [ decision 0 ] ] in
  ignore (flat_nominal js_small);
  check Alcotest.int "smaller analyses reuse, never shrink" cap
    (Flat.scratch_capacity ())

let test_jobset_restrict_empty () =
  let g =
    graph ~name:"g" ~period:100
      [ ("a", 10, 6); ("b", 20, 12) ]
      [ (0, 1, 4) ] in
  let js = build [ g ] [ [ decision 0; decision 1 ] ] in
  let empty = Jobset.restrict js ~graphs:[||] in
  check Alcotest.int "no jobs" 0 (Jobset.n_jobs empty);
  check Alcotest.bool "buckets empty" true
    (Array.for_all (fun ids -> Array.length ids = 0) empty.Jobset.by_proc);
  check Alcotest.int "topo empty" 0 (Array.length empty.Jobset.topo);
  check Alcotest.int "horizon preserved" js.Jobset.hyperperiod
    empty.Jobset.hyperperiod;
  (* both engines accept the empty jobset and converge immediately *)
  let r = nominal empty and f = flat_nominal empty in
  check Alcotest.bool "reference converges" true r.Bounds.converged;
  check Alcotest.int "no bounds" 0 (Array.length f.Bounds.bounds);
  check Alcotest.bool "engines agree" true (results_equal r f);
  Alcotest.check_raises "out of range rejected"
    (Invalid_argument "Jobset.restrict") (fun () ->
      ignore (Jobset.restrict js ~graphs:[| 1 |]))

module Static = Mcmap_sched.Static_schedule

let test_static_schedule_chain () =
  let g =
    graph ~name:"g" ~period:100
      [ ("a", 10, 6); ("b", 20, 12) ]
      [ (0, 1, 4) ] in
  let js = build [ g ] [ [ decision 0; decision 1 ] ] in
  let s = Static.nominal js in
  let a = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  let b = Jobset.find js ~graph:0 ~task:1 ~instance:0 in
  check Alcotest.int "a starts at 0" 0 s.Static.start.(a.Job.id);
  (* remote channel: latency 1 + ceil(4/2) = 3 *)
  check Alcotest.int "b waits for data" 13 s.Static.start.(b.Job.id);
  check Alcotest.int "makespan" 33 s.Static.makespan;
  check Alcotest.int "graph response" 33 s.Static.graph_response.(0)

let prop_static_schedule_well_formed =
  let qtest_inner seed =
    let sys = Test_gen.random_system seed in
    let happ =
      Happ.build sys.Test_gen.arch sys.Test_gen.apps sys.Test_gen.plan in
    let js = Jobset.build happ in
    let s = Static.worst_case js in
    (* precedence respected *)
    Array.for_all
      (fun (j : Job.t) ->
        Array.for_all
          (fun (p, delay) ->
            s.Static.finish.(p) + delay <= s.Static.start.(j.Job.id))
          js.Jobset.preds.(j.Job.id))
      js.Jobset.jobs
    (* releases respected *)
    && Array.for_all
         (fun (j : Job.t) -> s.Static.start.(j.Job.id) >= j.Job.release)
         js.Jobset.jobs
    (* processor exclusivity *)
    && Array.for_all
         (fun (j : Job.t) ->
           Array.for_all
             (fun (k : Job.t) ->
               j.Job.id >= k.Job.id || j.Job.proc <> k.Job.proc
               || s.Static.finish.(j.Job.id) <= s.Static.start.(k.Job.id)
               || s.Static.finish.(k.Job.id) <= s.Static.start.(j.Job.id))
             js.Jobset.jobs)
         js.Jobset.jobs in
  QCheck.Test.make ~name:"static schedules are well-formed" ~count:80
    QCheck.small_int qtest_inner

let test_static_scenario_count () =
  let g = graph ~name:"g" ~period:100 [ ("a", 10, 5); ("b", 10, 5) ] [] in
  let js =
    build [ g ]
      [ [ decision ~technique:(Technique.re_execution 1) 0;
          decision ~technique:(Technique.re_execution 2) 1 ] ] in
  (* (1+1) * (2+1) = 6 *)
  check (Alcotest.float 1e-9) "scenario product" 6.
    (Static.scenario_count js);
  let js_plain = build [ g ] [ [ decision 0; decision 1 ] ] in
  check (Alcotest.float 1e-9) "no hardening, one scenario" 1.
    (Static.scenario_count js_plain)

let suite =
  [ Alcotest.test_case "priority: rate monotonic" `Quick
      test_priority_rate_monotonic;
    Alcotest.test_case "priority: depth" `Quick test_priority_depth_ordering;
    Alcotest.test_case "priority: dense" `Quick test_priority_dense;
    Alcotest.test_case "priority: criticality-first ablation" `Quick
      test_priority_criticality_first_ablation;
    Alcotest.test_case "priority: order changes interference" `Quick
      test_priority_order_changes_interference;
    Alcotest.test_case "jobset: expansion" `Quick test_jobset_expansion;
    Alcotest.test_case "jobset: comm delays" `Quick test_jobset_comm_delays;
    Alcotest.test_case "jobset: instance chaining" `Quick
      test_jobset_instance_chaining;
    Alcotest.test_case "jobset: triggers" `Quick test_jobset_triggers;
    Alcotest.test_case "jobset: by_proc partition" `Quick
      test_jobset_by_proc_partition;
    Alcotest.test_case "jobset: restrict to empty" `Quick
      test_jobset_restrict_empty;
    Alcotest.test_case "jobset: multi-hyperperiod" `Quick
      test_jobset_multi_hyperperiod;
    Alcotest.test_case "bounds: chain exact" `Quick test_bounds_chain_exact;
    Alcotest.test_case "bounds: interference" `Quick
      test_bounds_interference;
    Alcotest.test_case "bounds: pay once" `Quick test_bounds_pay_once;
    Alcotest.test_case "bounds: non-preemptive blocking" `Quick
      test_bounds_non_preemptive_blocking;
    Alcotest.test_case "bounds: preemptive no blocking" `Quick
      test_bounds_preemptive_no_blocking;
    Alcotest.test_case "bounds: silent pred skipped" `Quick
      test_bounds_silent_pred_skipped;
    Alcotest.test_case "bounds: deadline violation" `Quick
      test_bounds_deadline_violation_detected;
    Alcotest.test_case "bounds: invalid exec" `Quick
      test_bounds_invalid_exec_rejected;
    Alcotest.test_case "bounds: scenario hook" `Quick
      test_bounds_scenario_exec_hook;
    Alcotest.test_case "flat: single job" `Quick test_flat_single_job;
    Alcotest.test_case "flat: zero-slack deadline" `Quick
      test_flat_zero_slack_deadline;
    Alcotest.test_case "flat: pay once" `Quick test_flat_pay_once;
    Alcotest.test_case "flat: seed 6398 replay" `Quick
      test_flat_seed_6398_replay;
    Alcotest.test_case "flat: horizon/iteration truncation parity" `Quick
      test_flat_horizon_truncation_parity;
    Alcotest.test_case "flat: invalid exec" `Quick
      test_flat_invalid_exec_rejected;
    Alcotest.test_case "flat: scratch arena reuse" `Quick
      test_flat_scratch_arena_reuse;
    Alcotest.test_case "static: chain schedule" `Quick
      test_static_schedule_chain;
    Alcotest.test_case "static: scenario count" `Quick
      test_static_scenario_count;
    QCheck_alcotest.to_alcotest prop_static_schedule_well_formed ]
