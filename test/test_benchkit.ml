(* Tests for the bench trajectory subsystem (lib/benchkit): BENCH.json
   v2 round trips and schema-version rejection, noise-aware diff
   verdicts, and the CI gate's contract/regression logic. Nothing here
   runs a Bechamel kernel — measurements are hand-built. *)

module Schema = Mcmap_benchkit.Schema
module Diff = Mcmap_benchkit.Diff
module Kernels = Mcmap_benchkit.Kernels
module Json = Mcmap_util.Json

let check = Alcotest.check

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let kernel ?ns_per_run ~mean ~stddev () =
  { Schema.ns_per_run;
    min_ns = mean -. stddev;
    mean_ns = mean;
    stddev_ns = stddev;
    samples = 100 }

let run_of kernels contracts =
  { Schema.fast = true;
    env = Schema.env_now ();
    kernels;
    metrics = [ ("m.count", Json.Int 3) ];
    contracts }

(* ------------------------------------------------------------------ *)
(* Schema round trip and version rejection *)

let test_schema_roundtrip () =
  let t =
    run_of
      [ ("a", kernel ~ns_per_run:1000. ~mean:1010. ~stddev:25. ());
        ("b", kernel ~mean:5.5 ~stddev:0.5 ()) ]
      [ ( "flat_vs_reference",
          { Schema.ok = true;
            numbers = [ ("speedup", 4.0); ("min_speedup", 3.0) ] } ) ] in
  match Schema.of_json (Schema.to_json t) with
  | Error e -> Alcotest.fail ("round trip failed: " ^ e)
  | Ok back ->
    check Alcotest.bool "fast survives" t.Schema.fast back.Schema.fast;
    check
      Alcotest.(list (pair string string))
      "env survives"
      (List.sort compare t.Schema.env)
      (List.sort compare back.Schema.env);
    check Alcotest.int "kernel count" 2 (List.length back.Schema.kernels);
    (match Schema.find_kernel back "a" with
     | Some k ->
       check
         Alcotest.(option (float 1e-9))
         "ols estimate survives" (Some 1000.) k.Schema.ns_per_run;
       check (Alcotest.float 1e-9) "stddev survives" 25. k.Schema.stddev_ns
     | None -> Alcotest.fail "kernel a missing after round trip");
    (match Schema.find_kernel back "b" with
     | Some k ->
       check
         Alcotest.(option (float 1e-9))
         "missing estimate stays None" None k.Schema.ns_per_run
     | None -> Alcotest.fail "kernel b missing after round trip");
    match back.Schema.contracts with
    | [ (name, c) ] ->
      check Alcotest.string "contract name" "flat_vs_reference" name;
      check Alcotest.bool "contract verdict" true c.Schema.ok;
      check
        Alcotest.(option (float 1e-9))
        "contract evidence" (Some 4.0)
        (List.assoc_opt "speedup" c.Schema.numbers)
    | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 contract, got %d" (List.length l))

let test_schema_version_rejected () =
  let t = run_of [] [] in
  let doctored =
    match Schema.to_json t with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "schema_version", _ -> ("schema_version", Json.Int 1)
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "to_json is not an object" in
  (match Schema.of_json doctored with
   | Ok _ -> Alcotest.fail "v1 document accepted"
   | Error e ->
     check Alcotest.bool "error names the version mismatch" true
       (contains ~affix:"mismatch" e
        || String.length e > 0));
  match Schema.of_json (Json.Obj [ ("kernels", Json.Obj []) ]) with
  | Ok _ -> Alcotest.fail "versionless document accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Diff verdicts *)

let verdict_of entries name =
  match List.find_opt (fun (e : Diff.entry) -> e.Diff.name = name) entries with
  | Some e -> e.Diff.verdict
  | None -> Alcotest.fail ("no diff entry for " ^ name)

let vcheck msg expected actual =
  check Alcotest.string msg
    (Diff.verdict_to_string expected)
    (Diff.verdict_to_string actual)

let test_diff_verdicts () =
  let old_run =
    run_of
      [ (* tight kernel: 2x slowdown is far beyond noise *)
        ("regressing", kernel ~mean:1000. ~stddev:10. ());
        (* tight kernel: 50% speedup is far beyond noise *)
        ("improving", kernel ~mean:1000. ~stddev:10. ());
        (* noisy kernel: a 20% shift is within 3 combined sigmas *)
        ("noisy", kernel ~mean:1000. ~stddev:100. ());
        (* tiny drift below the 5% relative floor *)
        ("stable", kernel ~mean:1000. ~stddev:1. ());
        ("removed", kernel ~mean:42. ~stddev:1. ()) ]
      [] in
  let new_run =
    run_of
      [ ("regressing", kernel ~mean:2000. ~stddev:10. ());
        ("improving", kernel ~mean:500. ~stddev:10. ());
        ("noisy", kernel ~mean:1200. ~stddev:100. ());
        ("stable", kernel ~mean:1020. ~stddev:1. ());
        ("added", kernel ~mean:7. ~stddev:1. ()) ]
      [] in
  let entries = Diff.diff old_run new_run in
  vcheck "2x slowdown regresses" Diff.Regressed
    (verdict_of entries "regressing");
  vcheck "2x speedup improves" Diff.Improved
    (verdict_of entries "improving");
  vcheck "shift within sigma is noise" Diff.Noise
    (verdict_of entries "noisy");
  vcheck "drift under the floor is noise" Diff.Noise
    (verdict_of entries "stable");
  vcheck "new kernel is added" Diff.Added (verdict_of entries "added");
  vcheck "missing kernel is removed" Diff.Removed
    (verdict_of entries "removed");
  check
    Alcotest.(list string)
    "regressions lists exactly the regressed" [ "regressing" ]
    (Diff.regressions entries);
  (* deterministic: same inputs, same rendering *)
  check Alcotest.string "diff is deterministic"
    (Diff.render entries)
    (Diff.render (Diff.diff old_run new_run))

let test_diff_threshold_scales_with_noise () =
  (* The same +20% shift flips verdict as dispersion shrinks. *)
  let shifted stddev =
    let old_run = run_of [ ("k", kernel ~mean:1000. ~stddev ()) ] [] in
    let new_run = run_of [ ("k", kernel ~mean:1200. ~stddev ()) ] [] in
    verdict_of (Diff.diff old_run new_run) "k" in
  vcheck "loose kernel: noise" Diff.Noise (shifted 100.);
  vcheck "tight kernel: regression" Diff.Regressed (shifted 5.)

(* ------------------------------------------------------------------ *)
(* Gate *)

let flat_ok =
  ( "flat_vs_reference",
    { Schema.ok = true; numbers = [ ("speedup", 4.2) ] } )

let test_gate_contracts () =
  (* all contracts hold -> pass *)
  (match Diff.gate (run_of [] [ flat_ok ]) with
   | Ok passes ->
     check Alcotest.bool "gate reports the pass" true (passes <> [])
   | Error fs ->
     Alcotest.fail ("gate failed: " ^ String.concat "; " fs));
  (* a violated contract -> fail *)
  (match
     Diff.gate
       (run_of []
          [ flat_ok;
            ( "obs_overhead",
              { Schema.ok = false; numbers = [ ("overhead_pct", 9.9) ] } )
          ])
   with
   | Ok _ -> Alcotest.fail "violated contract passed the gate"
   | Error failures ->
     check Alcotest.bool "failure names the contract" true
       (List.exists
          (fun f -> contains ~affix:"obs_overhead" f)
          failures));
  (* the flat contract must be present at all *)
  match Diff.gate (run_of [] []) with
  | Ok _ -> Alcotest.fail "gate passed without the flat contract"
  | Error failures ->
    check Alcotest.bool "absence is a failure" true
      (List.exists
         (fun f -> contains ~affix:"flat_vs_reference" f)
         failures)

let test_gate_regressions () =
  let baseline =
    run_of [ ("k", kernel ~mean:1000. ~stddev:5. ()) ] [ flat_ok ] in
  let regressed =
    run_of [ ("k", kernel ~mean:2000. ~stddev:5. ()) ] [ flat_ok ] in
  let same =
    run_of [ ("k", kernel ~mean:1010. ~stddev:5. ()) ] [ flat_ok ] in
  (match Diff.gate ~baseline same with
   | Ok _ -> ()
   | Error fs ->
     Alcotest.fail ("stable run failed: " ^ String.concat "; " fs));
  match Diff.gate ~baseline regressed with
  | Ok _ -> Alcotest.fail "regressed run passed the gate"
  | Error failures ->
    check Alcotest.bool "failure names the kernel" true
      (List.exists
         (fun f -> contains ~affix:"k" f)
         failures)

(* ------------------------------------------------------------------ *)
(* Contract derivation from measurements *)

let test_contract_derivation () =
  let kernels =
    [ ("evaluator_cold", kernel ~mean:9000. ~stddev:10. ());
      ("flat_cold", kernel ~mean:1000. ~stddev:10. ());
      ("evaluator_cold_obs", kernel ~mean:9050. ~stddev:10. ()) ] in
  let contracts = Kernels.contracts kernels in
  (match List.assoc_opt "flat_vs_reference" contracts with
   | Some c ->
     check Alcotest.bool "9x speedup passes" true c.Schema.ok;
     check
       Alcotest.(option (float 1e-6))
       "speedup recorded" (Some 9.0)
       (List.assoc_opt "speedup" c.Schema.numbers)
   | None -> Alcotest.fail "flat contract not derived");
  (match List.assoc_opt "obs_overhead" contracts with
   | Some c ->
     check Alcotest.bool "0.6% overhead passes" true c.Schema.ok
   | None -> Alcotest.fail "obs contract not derived");
  (* an over-budget, out-of-noise overhead fails *)
  let heavy =
    [ ("evaluator_cold", kernel ~mean:9000. ~stddev:10. ());
      ("evaluator_cold_obs", kernel ~mean:9900. ~stddev:10. ()) ] in
  (match List.assoc_opt "obs_overhead" (Kernels.contracts heavy) with
   | Some c -> check Alcotest.bool "10% overhead fails" false c.Schema.ok
   | None -> Alcotest.fail "obs contract not derived (heavy)");
  (* a slow flat kernel fails the speedup contract *)
  let slow =
    [ ("evaluator_cold", kernel ~mean:2000. ~stddev:10. ());
      ("flat_cold", kernel ~mean:1000. ~stddev:10. ()) ] in
  match List.assoc_opt "flat_vs_reference" (Kernels.contracts slow) with
  | Some c -> check Alcotest.bool "2x speedup fails" false c.Schema.ok
  | None -> Alcotest.fail "flat contract not derived (slow)"

let suite =
  [ Alcotest.test_case "BENCH.json v2 round trip" `Quick
      test_schema_roundtrip;
    Alcotest.test_case "foreign schema versions rejected" `Quick
      test_schema_version_rejected;
    Alcotest.test_case "diff verdict classification" `Quick
      test_diff_verdicts;
    Alcotest.test_case "diff threshold scales with dispersion" `Quick
      test_diff_threshold_scales_with_noise;
    Alcotest.test_case "gate enforces contracts" `Quick
      test_gate_contracts;
    Alcotest.test_case "gate rejects kernel regressions" `Quick
      test_gate_regressions;
    Alcotest.test_case "contracts derived from measurements" `Quick
      test_contract_derivation ]
