module Test_gen = Mcmap_gen.Gen

(* Unit and property tests for mcmap.sim — including the end-to-end
   safety property: no simulated execution ever exceeds Algorithm 1's
   bound. *)

module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Criticality = Mcmap_model.Criticality
module Task = Mcmap_model.Task
module Channel = Mcmap_model.Channel
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset
module Technique = Mcmap_hardening.Technique
module Plan = Mcmap_hardening.Plan
module Happ = Mcmap_hardening.Happ
module Job = Mcmap_sched.Job
module Jobset = Mcmap_sched.Jobset
module Bounds = Mcmap_sched.Bounds
module Verdict = Mcmap_analysis.Verdict
module Wcrt = Mcmap_analysis.Wcrt
module Engine = Mcmap_sim.Engine
module Fault_profile = Mcmap_sim.Fault_profile
module Monte_carlo = Mcmap_sim.Monte_carlo
module Adhoc = Mcmap_sim.Adhoc

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let arch ?(n = 2) ?(policy = Proc.Preemptive_fp) () =
  Arch.make ~bus_bandwidth:2 ~bus_latency:1
    (Array.init n (fun id ->
         Proc.make ~id ~name:(Format.asprintf "p%d" id) ~policy ()))

let graph ?deadline ?(criticality = Criticality.critical 1e-2) ~name
    ~period tasks edges =
  Graph.make ?deadline ~name
    ~tasks:
      (Array.of_list
         (List.mapi
            (fun id (tname, wcet, bcet) ->
              Task.make ~id ~name:tname ~wcet ~bcet ~detection_overhead:2
                ~voting_overhead:1 ())
            tasks))
    ~channels:
      (Array.of_list
         (List.map
            (fun (src, dst, size) -> Channel.make ~src ~dst ~size ())
            edges))
    ~period ~criticality ()

let decision ?(technique = Technique.No_hardening) ?(replicas = [||])
    ?(voter = 0) primary =
  { Plan.technique; primary_proc = primary; replica_procs = replicas;
    voter_proc = voter }

let build ?(a = arch ()) ?dropped graphs decisions =
  let apps = Appset.make (Array.of_list graphs) in
  let dropped =
    match dropped with
    | Some d -> Array.of_list d
    | None -> Array.make (List.length graphs) false in
  let plan =
    Plan.make apps
      ~decisions:(Array.of_list (List.map Array.of_list decisions))
      ~dropped in
  let happ = Happ.build a apps plan in
  Jobset.build happ

(* ------------------------------------------------------------------ *)
(* Basic timing *)

let test_engine_chain_timing () =
  let g =
    graph ~name:"g" ~period:100
      [ ("a", 10, 6); ("b", 20, 12) ]
      [ (0, 1, 4) ] in
  let js = build [ g ] [ [ decision 0; decision 0 ] ] in
  let o = Engine.run js ~profile:Fault_profile.none in
  let a = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  let b = Jobset.find js ~graph:0 ~task:1 ~instance:0 in
  check (Alcotest.option Alcotest.int) "a finishes at wcet" (Some 10)
    o.Engine.finish.(a.Job.id);
  check (Alcotest.option Alcotest.int) "b after a (local, no delay)"
    (Some 30) o.Engine.finish.(b.Job.id);
  check (Alcotest.option Alcotest.int) "graph response" (Some 30)
    o.Engine.graph_response.(0);
  check Alcotest.bool "complete" true o.Engine.graph_complete.(0);
  check (Alcotest.option Alcotest.int) "stayed normal" None
    o.Engine.critical_at

(* A cross-mesh edge: the receiver's start is pushed out by the XY
   route's delay, visible in the simulated finish time. *)
let test_engine_noc_route_delay () =
  let noc_arch =
    Arch.make
      ~interconnect:
        (Mcmap_model.Interconnect.Noc
           { cols = 2; rows = 2; link_bandwidth = 2; hop_latency = 1;
             router_latency = 1 })
      (Array.init 4 (fun id ->
           Proc.make ~id ~name:(Format.asprintf "p%d" id) ())) in
  let g =
    graph ~name:"g" ~period:100
      [ ("a", 10, 6); ("b", 20, 12) ]
      [ (0, 1, 4) ] in
  (* procs 0 and 3 sit on opposite corners: two hops, so the edge pays
     router 1 + 2 * hop 1 + ceil 4/2 = 5 time units. *)
  let js = build ~a:noc_arch [ g ] [ [ decision 0; decision 3 ] ] in
  let o = Engine.run js ~profile:Fault_profile.none in
  let b = Jobset.find js ~graph:0 ~task:1 ~instance:0 in
  check (Alcotest.option Alcotest.int) "b waits out the mesh route"
    (Some (10 + 5 + 20)) o.Engine.finish.(b.Job.id);
  check (Alcotest.option Alcotest.int) "graph response includes route"
    (Some 35) o.Engine.graph_response.(0)

let test_engine_best_case_mode () =
  let g = graph ~name:"g" ~period:100 [ ("a", 10, 6) ] [] in
  let js = build [ g ] [ [ decision 0 ] ] in
  let o = Engine.run ~mode:Engine.Best_case js ~profile:Fault_profile.none in
  check (Alcotest.option Alcotest.int) "bcet execution" (Some 6)
    o.Engine.graph_response.(0)

let test_engine_random_durations_bounded () =
  let g = graph ~name:"g" ~period:100 [ ("a", 20, 5) ] [] in
  let js = build [ g ] [ [ decision 0 ] ] in
  for seed = 0 to 20 do
    let o =
      Engine.run ~mode:(Engine.Random_durations seed) js
        ~profile:Fault_profile.none in
    match o.Engine.graph_response.(0) with
    | Some r -> check Alcotest.bool "within [bcet,wcet]" true (5 <= r && r <= 20)
    | None -> Alcotest.fail "graph must complete"
  done

let test_engine_preemption () =
  (* lower-priority long task releases first; higher-priority task
     preempts it on a preemptive processor *)
  let hp = graph ~name:"hp" ~period:50 [ ("h", 10, 10) ] [] in
  let lp = graph ~name:"lp" ~period:100 [ ("l", 40, 40) ] [] in
  let js = build [ hp; lp ] [ [ decision 0 ]; [ decision 0 ] ] in
  let o = Engine.run js ~profile:Fault_profile.none in
  let h0 = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  let l = Jobset.find js ~graph:1 ~task:0 ~instance:0 in
  check (Alcotest.option Alcotest.int) "h preempts and finishes first"
    (Some 10) o.Engine.finish.(h0.Job.id);
  (* l runs 10..50 and completes exactly as h#1 releases: the completion
     wins the boundary tie *)
  check (Alcotest.option Alcotest.int) "l completes at the boundary"
    (Some 50) o.Engine.finish.(l.Job.id)

let test_engine_non_preemptive () =
  let a = arch ~policy:Proc.Non_preemptive_fp () in
  let hp = graph ~name:"hp" ~period:50 [ ("h", 10, 10) ] [] in
  let lp = graph ~name:"lp" ~period:100 [ ("l", 40, 40) ] [] in
  let js = build ~a [ hp; lp ] [ [ decision 0 ]; [ decision 0 ] ] in
  let o = Engine.run js ~profile:Fault_profile.none in
  let h1 = Jobset.find js ~graph:0 ~task:0 ~instance:1 in
  (* l occupies [10,50]; h#1 released at 50 runs right after *)
  check (Alcotest.option Alcotest.int) "h#1 waits for l" (Some 60)
    o.Engine.finish.(h1.Job.id)

(* ------------------------------------------------------------------ *)
(* Re-execution and dropping *)

let reexec_system ?dropped () =
  let critical =
    graph ~name:"crit" ~period:200 ~deadline:150
      [ ("a", 20, 10); ("e", 15, 8) ]
      [ (0, 1, 2) ] in
  let low =
    graph ~name:"low" ~period:200
      ~criticality:(Criticality.droppable 1.0)
      [ ("g", 30, 15); ("h", 25, 12) ]
      [ (0, 1, 2) ] in
  build ?dropped [ critical; low ]
    [ [ decision ~technique:(Technique.re_execution 1) 0; decision 1 ];
      [ decision 1; decision 0 ] ]

let test_engine_re_execution_timing () =
  let js = reexec_system () in
  let o = Engine.run js ~profile:Fault_profile.all in
  let a = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  (* nominal wcet+dt = 22; fault at the end of attempt 0, re-runs: 44 *)
  check (Alcotest.option Alcotest.int) "two attempts" (Some 44)
    o.Engine.finish.(a.Job.id);
  check (Alcotest.option Alcotest.int) "critical at end of attempt 0"
    (Some 22) o.Engine.critical_at

let test_engine_dropping () =
  let js = reexec_system ~dropped:[ false; true ] () in
  let o = Engine.run js ~profile:Fault_profile.all in
  (* the fault fires at t=22; the low graph's g (on p1, started at 0,
     runs 30) is already running and completes; h has not started and is
     dropped *)
  let g = Jobset.find js ~graph:1 ~task:0 ~instance:0 in
  let h = Jobset.find js ~graph:1 ~task:1 ~instance:0 in
  check Alcotest.bool "g not dropped (already started)" false
    o.Engine.dropped.(g.Job.id);
  check Alcotest.bool "h dropped" true o.Engine.dropped.(h.Job.id);
  check Alcotest.bool "low graph incomplete" false
    o.Engine.graph_complete.(1)

let test_engine_no_dropping_without_dropped_set () =
  let js = reexec_system ~dropped:[ false; false ] () in
  let o = Engine.run js ~profile:Fault_profile.all in
  check Alcotest.bool "critical happened" true
    (o.Engine.critical_at <> None);
  Array.iter
    (fun flag -> check Alcotest.bool "nothing dropped" false flag)
    o.Engine.dropped

let test_engine_checkpoint_recovery () =
  (* wcet 20, dt 2, 2 segments, k=1: nominal runs 24; a fault re-runs one
     segment (12) instead of the whole task *)
  let g = graph ~name:"g" ~period:200 [ ("a", 20, 10) ] [] in
  let js =
    build [ g ]
      [ [ decision
            ~technique:(Technique.checkpointing ~segments:2 ~k:1) 0 ] ] in
  let o = Engine.run js ~profile:Fault_profile.all in
  let a = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  check (Alcotest.option Alcotest.int) "nominal + one segment" (Some 36)
    o.Engine.finish.(a.Job.id);
  check (Alcotest.option Alcotest.int) "critical at nominal end" (Some 24)
    o.Engine.critical_at;
  (* the fault-free run costs only the checkpoint overhead *)
  let clean = Engine.run js ~profile:Fault_profile.none in
  check (Alcotest.option Alcotest.int) "fault-free" (Some 24)
    clean.Engine.finish.(a.Job.id)

let test_engine_restoration_across_hyperperiods () =
  (* fault in the first hyperperiod drops the low application's first
     instance; at the hyperperiod boundary the system restores and the
     second instance runs (paper: "the system goes back to the normal
     state at the end of the hyperperiod, restoring all the dropped
     tasks") *)
  let critical =
    graph ~name:"crit" ~period:200 ~deadline:150
      [ ("a", 20, 10) ] [] in
  let low =
    graph ~name:"low" ~period:200
      ~criticality:(Criticality.droppable 1.0)
      [ ("g", 30, 15) ] [] in
  let apps = Appset.make [| critical; low |] in
  let plan =
    Plan.make apps
      ~decisions:
        [| [| decision ~technique:(Technique.re_execution 1) 0 |];
           [| decision 0 |] |]
      ~dropped:[| false; true |] in
  let happ = Happ.build (arch ()) apps plan in
  let js = Jobset.build ~hyperperiods:2 happ in
  (* fault only in the first instance of the critical task *)
  let profile =
    { Fault_profile.none with
      Fault_profile.reexec_fault =
        (fun j ~attempt -> attempt = 0 && j.Job.instance = 0) } in
  let o = Engine.run js ~profile in
  let g0 = Jobset.find js ~graph:1 ~task:0 ~instance:0 in
  let g1 = Jobset.find js ~graph:1 ~task:0 ~instance:1 in
  check Alcotest.bool "first instance dropped" true
    o.Engine.dropped.(g0.Job.id);
  check Alcotest.bool "second instance restored and ran" true
    (o.Engine.finish.(g1.Job.id) <> None);
  (match o.Engine.critical_windows with
   | [ (entry, restore) ] ->
     check Alcotest.int "restore at the hyperperiod boundary" 200 restore;
     check Alcotest.bool "entered during the first hyperperiod" true
       (entry < 200)
   | _ -> Alcotest.fail "expected exactly one critical window")

let test_engine_two_critical_windows () =
  let critical =
    graph ~name:"crit" ~period:200 ~deadline:180
      [ ("a", 20, 10) ] [] in
  let low =
    graph ~name:"low" ~period:200
      ~criticality:(Criticality.droppable 1.0)
      [ ("g", 30, 15) ] [] in
  let apps = Appset.make [| critical; low |] in
  let plan =
    Plan.make apps
      ~decisions:
        [| [| decision ~technique:(Technique.re_execution 1) 0 |];
           [| decision 0 |] |]
      ~dropped:[| false; true |] in
  let happ = Happ.build (arch ()) apps plan in
  let js = Jobset.build ~hyperperiods:2 happ in
  let o = Engine.run js ~profile:Fault_profile.all in
  check Alcotest.int "two separate critical windows" 2
    (List.length o.Engine.critical_windows);
  (* the first low instance is certainly dropped (it never reaches the
     processor before the fault); the second may have started at the
     hyperperiod boundary before the second fault — transition-mode
     semantics let started jobs complete *)
  let g0 = Jobset.find js ~graph:1 ~task:0 ~instance:0 in
  check Alcotest.bool "first low instance dropped" true
    o.Engine.dropped.(g0.Job.id);
  (match o.Engine.critical_windows with
   | [ (_, r1); (e2, r2) ] ->
     check Alcotest.int "first restore" 200 r1;
     check Alcotest.int "second restore" 400 r2;
     check Alcotest.bool "second entry after first restore" true (e2 >= 200)
   | _ -> Alcotest.fail "expected two windows")

(* ------------------------------------------------------------------ *)
(* Replication *)

let replication_system technique replicas =
  let g =
    graph ~name:"g" ~period:200
      [ ("p", 20, 10); ("c", 15, 8) ]
      [ (0, 1, 2) ] in
  build ~a:(arch ~n:3 ())
    [ g ]
    [ [ decision ~technique ~replicas ~voter:2 0; decision 2 ] ]

let test_engine_active_replication_masks () =
  let js =
    replication_system (Technique.active_replication 3) [| 1; 2 |] in
  let o = Engine.run js ~profile:Fault_profile.all in
  (* active replication is transparent: no critical-state transition *)
  check (Alcotest.option Alcotest.int) "transparent masking" None
    o.Engine.critical_at;
  check Alcotest.bool "completes" true o.Engine.graph_complete.(0)

let test_engine_passive_spare_skipped_without_fault () =
  let js =
    replication_system (Technique.passive_replication 1) [| 1; 2 |] in
  let o = Engine.run js ~profile:Fault_profile.none in
  check (Alcotest.option Alcotest.int) "no critical" None
    o.Engine.critical_at;
  (* exactly one job (the spare) must not have run *)
  let not_run =
    Array.to_list o.Engine.finish |> List.filter (fun f -> f = None) in
  check Alcotest.int "spare skipped" 1 (List.length not_run);
  check Alcotest.bool "still completes" true o.Engine.graph_complete.(0)

let test_engine_passive_spare_invoked_on_fault () =
  let js =
    replication_system (Technique.passive_replication 1) [| 1; 2 |] in
  let o = Engine.run js ~profile:Fault_profile.all in
  check Alcotest.bool "critical on invocation" true
    (o.Engine.critical_at <> None);
  (* every replica job ran *)
  Array.iter
    (fun f -> check Alcotest.bool "everything ran" true (f <> None))
    o.Engine.finish

let test_fault_profile_purity () =
  (* profiles are pure functions of (job, attempt): repeated queries in
     any order agree *)
  let js = reexec_system () in
  let p = Fault_profile.random ~seed:5 ~bias:0.5 js in
  let j = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  let first = p.Fault_profile.reexec_fault j ~attempt:0 in
  let again = p.Fault_profile.reexec_fault j ~attempt:0 in
  check Alcotest.bool "stable" true (first = again);
  let r1 = p.Fault_profile.replica_fault j in
  let r2 = p.Fault_profile.replica_fault j in
  check Alcotest.bool "replica stable" true (r1 = r2)

let test_fault_profile_extremes () =
  let js = reexec_system () in
  let j = Jobset.find js ~graph:0 ~task:0 ~instance:0 in
  check Alcotest.bool "none never faults" false
    (Fault_profile.none.Fault_profile.reexec_fault j ~attempt:0);
  check Alcotest.bool "all always faults" true
    (Fault_profile.all.Fault_profile.reexec_fault j ~attempt:3);
  let zero = Fault_profile.random ~seed:1 ~bias:0. js in
  check Alcotest.bool "zero bias never faults" false
    (zero.Fault_profile.reexec_fault j ~attempt:0)

(* ------------------------------------------------------------------ *)
(* Monte-Carlo and Adhoc *)

let test_monte_carlo_deterministic () =
  let js = reexec_system ~dropped:[ false; true ] () in
  let a = Monte_carlo.run ~profiles:50 ~seed:9 js in
  let b = Monte_carlo.run ~profiles:50 ~seed:9 js in
  check Alcotest.bool "same seed, same result" true
    (a.Monte_carlo.graph_wcrt = b.Monte_carlo.graph_wcrt);
  check Alcotest.int "profile count" 50 a.Monte_carlo.profiles

let test_monte_carlo_observes_criticals () =
  let js = reexec_system ~dropped:[ false; true ] () in
  let r = Monte_carlo.run ~profiles:100 ~bias:0.9 ~seed:1 js in
  check Alcotest.bool "critical states observed" true
    (r.Monte_carlo.criticals > 0)

let test_adhoc_reports () =
  let js = reexec_system ~dropped:[ false; true ] () in
  let adhoc = Adhoc.run js in
  (* the critical graph completes (with maximal re-execution); the
     dropped graph reports nothing *)
  check Alcotest.bool "critical graph measured" true (adhoc.(0) <> None);
  check (Alcotest.option Alcotest.int) "dropped graph silent" None
    adhoc.(1)

(* ------------------------------------------------------------------ *)
(* Distribution *)

let test_distribution () =
  let js = reexec_system ~dropped:[ false; true ] () in
  let d = Mcmap_sim.Distribution.run ~runs:100 ~seed:3 js in
  check Alcotest.int "runs recorded" 100 d.Mcmap_sim.Distribution.runs;
  Array.iter
    (fun (s : Mcmap_sim.Distribution.graph_stats) ->
      check Alcotest.bool "percentiles ordered" true
        (s.Mcmap_sim.Distribution.p50 <= s.Mcmap_sim.Distribution.p95
         && s.Mcmap_sim.Distribution.p95 <= s.Mcmap_sim.Distribution.p99
         && s.Mcmap_sim.Distribution.p99
            <= s.Mcmap_sim.Distribution.maximum);
      check Alcotest.bool "mean within range" true
        (s.Mcmap_sim.Distribution.samples = 0
         || s.Mcmap_sim.Distribution.mean
            <= s.Mcmap_sim.Distribution.maximum))
    d.Mcmap_sim.Distribution.per_graph;
  (* realistic faults are rare: the distribution max never exceeds the
     worst-case search over biased profiles *)
  let mc = Monte_carlo.run ~profiles:200 ~bias:0.9 ~seed:3 js in
  Array.iteri
    (fun g (s : Mcmap_sim.Distribution.graph_stats) ->
      match mc.Monte_carlo.graph_wcrt.(g) with
      | Some worst when s.Mcmap_sim.Distribution.samples > 0 ->
        check Alcotest.bool "distribution below worst-case search" true
          (s.Mcmap_sim.Distribution.maximum <= float_of_int worst +. 1e-9)
      | Some _ | None -> ())
    d.Mcmap_sim.Distribution.per_graph;
  check Alcotest.bool "render" true
    (String.length (Mcmap_sim.Distribution.render js d) > 0)

let test_distribution_deterministic () =
  let js = reexec_system ~dropped:[ false; false ] () in
  let a = Mcmap_sim.Distribution.run ~runs:50 ~seed:7 js in
  let b = Mcmap_sim.Distribution.run ~runs:50 ~seed:7 js in
  check Alcotest.bool "deterministic" true
    (a.Mcmap_sim.Distribution.per_graph = b.Mcmap_sim.Distribution.per_graph)

(* ------------------------------------------------------------------ *)
(* Trace and Gantt *)

let prop_trace_well_formed =
  QCheck.Test.make ~name:"execution traces are well-formed" ~count:60
    QCheck.small_int
    (fun seed ->
      let sys = Test_gen.random_system seed in
      let happ =
        Happ.build sys.Test_gen.arch sys.Test_gen.apps sys.Test_gen.plan in
      let js = Jobset.build happ in
      let profile = Fault_profile.random ~seed ~bias:0.5 js in
      let o = Engine.run js ~profile in
      let segs = o.Engine.segments in
      (* segments are positive-length and on the job's processor *)
      List.for_all
        (fun (s : Engine.segment) ->
          s.Engine.stop > s.Engine.start
          && (Jobset.job js s.Engine.job).Job.proc = s.Engine.proc)
        segs
      (* per processor, segments never overlap *)
      && List.for_all
           (fun p ->
             let on_p =
               List.filter (fun (s : Engine.segment) -> s.Engine.proc = p)
                 segs
               |> List.sort (fun (a : Engine.segment) b ->
                      compare a.Engine.start b.Engine.start) in
             let rec disjoint = function
               | (a : Engine.segment) :: (b :: _ as rest) ->
                 a.Engine.stop <= b.Engine.start && disjoint rest
               | [ _ ] | [] -> true in
             disjoint on_p)
           (List.init
              (Mcmap_model.Arch.n_procs sys.Test_gen.arch)
              (fun p -> p))
      (* a finished job's last segment ends at its finish time *)
      && Array.for_all
           (fun (j : Job.t) ->
             match o.Engine.finish.(j.Job.id) with
             | None -> true
             | Some t ->
               List.exists
                 (fun (s : Engine.segment) ->
                   s.Engine.job = j.Job.id && s.Engine.stop = t)
                 segs
               || (* zero-length executions leave no segment *)
               List.for_all
                 (fun (s : Engine.segment) -> s.Engine.job <> j.Job.id)
                 segs)
           js.Jobset.jobs)

let test_trace_durations_accounted () =
  (* without faults, each job's total segment time equals its duration *)
  let js = reexec_system ~dropped:[ false; false ] () in
  let o = Engine.run js ~profile:Fault_profile.none in
  Array.iter
    (fun (j : Job.t) ->
      let total =
        List.fold_left
          (fun acc (s : Engine.segment) ->
            if s.Engine.job = j.Job.id then
              acc + (s.Engine.stop - s.Engine.start)
            else acc)
          0 o.Engine.segments in
      check Alcotest.int
        (Printf.sprintf "job %d executes for its wcet" j.Job.id)
        j.Job.wcet total)
    js.Jobset.jobs

let test_gantt_renders () =
  let js = reexec_system ~dropped:[ false; true ] () in
  let o = Engine.run js ~profile:Fault_profile.all in
  let chart = Mcmap_sim.Gantt.render js o in
  check Alcotest.bool "mentions the critical switch" true
    (String.length chart > 0
     && String.contains chart '!'
     || o.Engine.critical_at = None);
  check Alcotest.bool "has a legend" true
    (let rec contains_sub i =
       i + 7 <= String.length chart
       && (String.sub chart i 7 = "legend:" || contains_sub (i + 1)) in
     contains_sub 0)

(* ------------------------------------------------------------------ *)
(* The safety property: simulation never exceeds Algorithm 1 *)

let bound_covers_simulation seed =
  let sys = Test_gen.random_system seed in
  let happ =
    Happ.build sys.Test_gen.arch sys.Test_gen.apps sys.Test_gen.plan in
  let js = Jobset.build happ in
  let ctx = Bounds.make js in
  let report = Wcrt.analyze ctx in
  let covers g observed =
    match observed with
    | None -> true
    | Some r -> float_of_int r <= Verdict.to_float report.Wcrt.wcrt.(g) in
  (* worst-case durations under several random fault profiles, the
     all-faults profile, and the adhoc trace *)
  let profiles =
    Fault_profile.all
    :: List.init 5 (fun i -> Fault_profile.random ~seed:(seed + i) ~bias:0.5 js)
  in
  List.for_all
    (fun profile ->
      let o = Engine.run js ~profile in
      Array.for_all
        (fun g -> covers g o.Engine.graph_response.(g))
        (Array.init (Happ.n_graphs happ) (fun g -> g)))
    profiles
  && (let o = Engine.run ~start_critical:true js ~profile:Fault_profile.all in
      Array.for_all
        (fun g -> covers g o.Engine.graph_response.(g))
        (Array.init (Happ.n_graphs happ) (fun g -> g)))
  && (* random execution durations are also covered *)
  (let o =
     Engine.run ~mode:(Engine.Random_durations seed) js
       ~profile:(Fault_profile.random ~seed ~bias:0.5 js) in
   Array.for_all
     (fun g -> covers g o.Engine.graph_response.(g))
     (Array.init (Happ.n_graphs happ) (fun g -> g)))

let prop_analysis_covers_simulation =
  QCheck.Test.make
    ~name:"Algorithm 1 upper-bounds every simulated execution" ~count:120
    QCheck.small_int bound_covers_simulation

let suite =
  [ Alcotest.test_case "engine: chain timing" `Quick
      test_engine_chain_timing;
    Alcotest.test_case "engine: noc route delay" `Quick
      test_engine_noc_route_delay;
    Alcotest.test_case "engine: best case" `Quick
      test_engine_best_case_mode;
    Alcotest.test_case "engine: random durations" `Quick
      test_engine_random_durations_bounded;
    Alcotest.test_case "engine: preemption" `Quick test_engine_preemption;
    Alcotest.test_case "engine: non-preemptive" `Quick
      test_engine_non_preemptive;
    Alcotest.test_case "engine: re-execution timing" `Quick
      test_engine_re_execution_timing;
    Alcotest.test_case "engine: checkpoint recovery" `Quick
      test_engine_checkpoint_recovery;
    Alcotest.test_case "engine: dropping semantics" `Quick
      test_engine_dropping;
    Alcotest.test_case "engine: empty dropped set" `Quick
      test_engine_no_dropping_without_dropped_set;
    Alcotest.test_case "engine: restoration across hyperperiods" `Quick
      test_engine_restoration_across_hyperperiods;
    Alcotest.test_case "engine: repeated critical windows" `Quick
      test_engine_two_critical_windows;
    Alcotest.test_case "engine: active replication masks" `Quick
      test_engine_active_replication_masks;
    Alcotest.test_case "engine: spare skipped" `Quick
      test_engine_passive_spare_skipped_without_fault;
    Alcotest.test_case "engine: spare invoked" `Quick
      test_engine_passive_spare_invoked_on_fault;
    Alcotest.test_case "fault profile: purity" `Quick
      test_fault_profile_purity;
    Alcotest.test_case "fault profile: extremes" `Quick
      test_fault_profile_extremes;
    Alcotest.test_case "monte-carlo: deterministic" `Quick
      test_monte_carlo_deterministic;
    Alcotest.test_case "monte-carlo: criticals" `Quick
      test_monte_carlo_observes_criticals;
    Alcotest.test_case "adhoc: reports" `Quick test_adhoc_reports;
    Alcotest.test_case "distribution: stats" `Quick test_distribution;
    Alcotest.test_case "distribution: deterministic" `Quick
      test_distribution_deterministic;
    Alcotest.test_case "trace: durations accounted" `Quick
      test_trace_durations_accounted;
    Alcotest.test_case "gantt: renders" `Quick test_gantt_renders;
    qtest prop_trace_well_formed;
    qtest prop_analysis_covers_simulation ]
