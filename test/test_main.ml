let () =
  Alcotest.run "mcmap"
    [ ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("model", Test_model.suite);
      ("hardening", Test_hardening.suite);
      ("reliability", Test_reliability.suite);
      ("campaign", Test_campaign.suite);
      ("sched", Test_sched.suite);
      ("analysis", Test_analysis.suite);
      ("sim", Test_sim.suite);
      ("dse", Test_dse.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("benchkit", Test_benchkit.suite);
      ("spec", Test_spec.suite);
      ("lint", Test_lint.suite);
      ("experiments", Test_experiments.suite);
      ("check", Test_check.suite);
      ("serve", Test_serve.suite) ]
