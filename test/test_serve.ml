(* Tests for mcmap.serve: wire framing, the protocol, the bounded
   queue, the session pool, evaluator-session concurrency, and the
   server end to end over a real socket. *)

module Wire = Mcmap_util.Wire
module Sexp = Mcmap_util.Sexp
module P = Mcmap_serve.Protocol
module Server = Mcmap_serve.Server
module Client = Mcmap_serve.Client
module Bqueue = Mcmap_serve.Bqueue
module Pool = Mcmap_serve.Pool
module Metrics = Mcmap_serve.Metrics
module Spec = Mcmap_spec.Spec
module B = Mcmap_benchmarks
module D = Mcmap_dse

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Wire framing *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let read_ok r =
  match Wire.read_frame r with
  | Ok p -> p
  | Error e -> Alcotest.failf "read_frame: %s" (Wire.read_error_to_string e)

let test_wire_roundtrip () =
  with_pipe @@ fun r w ->
  let payloads =
    [ "x"; "hello"; String.make 100_000 'q';
      String.init 256 Char.chr ] in
  (* a 100 KB frame overflows the pipe buffer: write from a thread so
     the partial-write loop is actually exercised *)
  let writer =
    Thread.create (fun () -> List.iter (Wire.write_frame w) payloads) ()
  in
  List.iter
    (fun p -> check Alcotest.string "payload" p (read_ok r))
    payloads;
  Thread.join writer

let test_wire_empty_rejected () =
  with_pipe @@ fun r w ->
  (* a zero-length frame cannot be written... *)
  (try
     Wire.write_frame w "";
     Alcotest.fail "write_frame accepted an empty payload"
   with Invalid_argument _ -> ());
  (* ...and a hand-rolled one is rejected without desynchronising *)
  let header = Bytes.make 4 '\000' in
  assert (Unix.write w header 0 4 = 4);
  Wire.write_frame w "after";
  (match Wire.read_frame r with
   | Error Wire.Empty -> ()
   | Ok _ | Error _ -> Alcotest.fail "expected Empty");
  check Alcotest.string "stream still synchronised" "after" (read_ok r)

let test_wire_oversized_rejected () =
  with_pipe @@ fun r w ->
  let big = String.make 4096 'b' in
  Wire.write_frame w big;
  Wire.write_frame w "small";
  (match Wire.read_frame ~max:64 r with
   | Error (Wire.Oversized n) ->
     check Alcotest.int "reported length" 4096 n
   | Ok _ | Error _ -> Alcotest.fail "expected Oversized");
  (* the payload is still in the stream; discard resynchronises *)
  check Alcotest.bool "discard" true (Wire.discard r 4096);
  check Alcotest.string "next frame survives" "small" (read_ok r);
  (* write-side guard agrees with the read-side limit *)
  try
    Wire.write_frame ~max:64 w big;
    Alcotest.fail "write_frame accepted an oversized payload"
  with Invalid_argument _ -> ()

let test_wire_truncated () =
  (* header cut short *)
  with_pipe (fun r w ->
      assert (Unix.write_substring w "\000\000" 0 2 = 2);
      Unix.close w;
      match Wire.read_frame r with
      | Error (Wire.Truncated 2) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Truncated 2");
  (* payload cut short *)
  with_pipe (fun r w ->
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 10l;
      assert (Unix.write w header 0 4 = 4);
      assert (Unix.write_substring w "abc" 0 3 = 3);
      Unix.close w;
      match Wire.read_frame r with
      | Error (Wire.Truncated 7) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Truncated 7");
  (* clean EOF between frames *)
  with_pipe (fun r w ->
      Unix.close w;
      match Wire.read_frame r with
      | Error Wire.Eof -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Eof")

(* ------------------------------------------------------------------ *)
(* Bqueue *)

let test_bqueue_fifo_and_bounds () =
  let q = Bqueue.create ~capacity:2 in
  check Alcotest.bool "push 1" true (Bqueue.try_push q 1 = `Ok);
  check Alcotest.bool "push 2" true (Bqueue.try_push q 2 = `Ok);
  check Alcotest.bool "full" true (Bqueue.try_push q 3 = `Full);
  check Alcotest.(option int) "pop 1" (Some 1) (Bqueue.pop q);
  check Alcotest.bool "room again" true (Bqueue.try_push q 4 = `Ok);
  Bqueue.close q;
  check Alcotest.bool "closed" true (Bqueue.try_push q 5 = `Closed);
  (* close drains: accepted elements still come out, in order *)
  check Alcotest.(option int) "drain 2" (Some 2) (Bqueue.pop q);
  check Alcotest.(option int) "drain 4" (Some 4) (Bqueue.pop q);
  check Alcotest.(option int) "then None" None (Bqueue.pop q);
  check Alcotest.(option int) "stays None" None (Bqueue.pop q)

let test_bqueue_concurrent () =
  let n_producers = 4 and per_producer = 250 in
  let q = Bqueue.create ~capacity:(n_producers * per_producer) in
  let consumer =
    Domain.spawn (fun () ->
        let seen = ref [] in
        let rec loop () =
          match Bqueue.pop q with
          | Some v -> seen := v :: !seen; loop ()
          | None -> !seen
        in
        loop ())
  in
  let producers =
    Array.init n_producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              match Bqueue.try_push q ((p * per_producer) + i) with
              | `Ok -> ()
              | `Full | `Closed -> failwith "unexpected push failure"
            done))
  in
  Array.iter Domain.join producers;
  Bqueue.close q;
  let seen = Domain.join consumer in
  check Alcotest.int "all delivered" (n_producers * per_producer)
    (List.length seen);
  check Alcotest.int "no duplicates"
    (n_producers * per_producer)
    (List.length (List.sort_uniq compare seen))

(* ------------------------------------------------------------------ *)
(* Protocol *)

let text_roundtrip =
  QCheck.Test.make ~name:"encode_text/decode_text round-trip" ~count:500
    QCheck.string (fun s ->
      let atom = P.encode_text s in
      (* the encoding must be a single parseable atom *)
      (match Sexp.parse_one atom with
       | Ok (Sexp.Atom a) -> a = atom
       | Ok (Sexp.List _) | Error _ -> false)
      && P.decode_text atom = Ok s)

let sexp_gen =
  let open QCheck.Gen in
  let atom =
    map
      (fun cs -> Sexp.Atom (String.concat "" cs))
      (list_size (int_range 1 8)
         (map (String.make 1) (oneof [ char_range 'a' 'z'; char_range '0' '9' ])))
  in
  sized_size (int_bound 3) (fix (fun self n ->
      if n = 0 then atom
      else
        frequency
          [ (2, atom);
            (1,
             map (fun l -> Sexp.List l)
               (list_size (int_bound 3) (self (n - 1)))) ]))

let float_gen =
  QCheck.Gen.oneof
    [ QCheck.Gen.float;
      QCheck.Gen.oneofl
        [ 0.; -0.; infinity; neg_infinity; nan; 1e-310; 4.2232;
          Int64.float_of_bits 0x7ff8000000000001L (* NaN, odd payload *) ] ]

let analysis_gen =
  let open QCheck.Gen in
  map
    (fun ((p, s, v), (sch, rel, res)) ->
      { P.a_power = p; a_service = s; a_schedulable = sch;
        a_reliable = rel; a_violation = v; a_rescued = res })
    (pair (triple float_gen float_gen float_gen) (triple bool bool bool))

let request_gen =
  let open QCheck.Gen in
  let body =
    oneof
      [ return P.Ping; return P.Stats; return P.Shutdown;
        map2
          (fun system plan -> P.Analyze { system; plan })
          (list_size (int_bound 3) sexp_gen)
          (opt sexp_gen);
        map2
          (fun system plan -> P.Lint_request { system; plan })
          (list_size (int_bound 3) sexp_gen)
          (opt sexp_gen);
        map2
          (fun system plans -> P.Eval_population { system; plans })
          (list_size (int_bound 3) sexp_gen)
          (list_size (int_bound 4) sexp_gen) ]
  in
  map
    (fun (id, dl, nl, body) ->
      { P.id; deadline_ms = dl; no_lint = nl; body })
    (quad (int_bound 1_000_000)
       (opt (int_bound 10_000))
       bool body)

let response_gen =
  let open QCheck.Gen in
  let diag =
    map
      (fun (c, s, m) ->
        { P.d_code = "MC" ^ string_of_int c;
          d_severity = (if s then "error" else "warning");
          d_message = m })
      (triple (int_bound 999) bool string)
  in
  let body =
    oneof
      [ return P.Pong; return P.Shutting_down;
        map (fun s -> P.Stats_snapshot s) sexp_gen;
        map (fun a -> P.Analysis a) analysis_gen;
        map
          (fun l -> P.Population (Array.of_list l))
          (list_size (int_bound 5) analysis_gen);
        map2
          (fun errors diags -> P.Lint_report { errors; diags })
          (int_bound 10)
          (list_size (int_bound 3) diag);
        map (fun s -> P.Rejected s) string;
        map (fun s -> P.Error_response s) string ]
  in
  map
    (fun (r_id, r_body) -> { P.r_id; r_body })
    (pair (int_bound 1_000_000) body)

let request_roundtrip =
  QCheck.Test.make ~name:"request wire round-trip, byte-identical"
    ~count:300
    (QCheck.make request_gen)
    (fun req ->
      let wire = P.request_to_string req in
      match P.request_of_string wire with
      | Error _ -> false
      | Ok back ->
        P.equal_request req back
        && P.request_to_string back = wire)

let response_roundtrip =
  QCheck.Test.make ~name:"response wire round-trip, byte-identical"
    ~count:300
    (QCheck.make response_gen)
    (fun resp ->
      let wire = P.response_to_string resp in
      match P.response_of_string wire with
      | Error _ -> false
      | Ok back ->
        P.equal_response resp back
        && P.response_to_string back = wire)

let test_protocol_float_bits () =
  (* every interesting double crosses the wire bit for bit *)
  List.iter
    (fun x ->
      let a =
        { P.a_power = x; a_service = 0.; a_schedulable = true;
          a_reliable = true; a_violation = 0.; a_rescued = false } in
      let resp = { P.r_id = 1; r_body = P.Analysis a } in
      match P.response_of_string (P.response_to_string resp) with
      | Ok { P.r_body = P.Analysis b; _ } ->
        check Alcotest.int64
          (Printf.sprintf "bits of %h" x)
          (Int64.bits_of_float x)
          (Int64.bits_of_float b.P.a_power)
      | Ok _ | Error _ -> Alcotest.fail "round-trip failed")
    [ 0.; -0.; 1.5; -1.5; 4.2232; 1e-310; -1e-310; infinity;
      neg_infinity; nan; Int64.float_of_bits 0x7ff8000000000001L;
      Int64.float_of_bits 0xfff8000000000042L; max_float; min_float ]

(* ------------------------------------------------------------------ *)
(* Session pool *)

let system_of name =
  let b = B.Registry.find_exn name in
  { Spec.arch = b.B.Benchmark.arch; apps = b.B.Benchmark.apps }

let pool_counters sexp =
  match sexp with
  | Sexp.List (Sexp.Atom "pool" :: items) ->
    let get k =
      match Sexp.assoc_int k items with
      | Ok v -> v
      | Error e -> Alcotest.failf "pool stats: %s" e
    in
    (get "size", get "hits", get "misses", get "evictions")
  | _ -> Alcotest.fail "pool stats shape"

let test_pool_hit_miss_evict () =
  let metrics = Metrics.create () in
  let pool = Pool.create ~capacity:2 ~metrics () in
  let cruise = system_of "cruise" in
  let s1 = Pool.session pool cruise in
  let s2 = Pool.session pool cruise in
  check Alcotest.bool "same session on hit" true (s1 == s2);
  ignore (Pool.session pool (system_of "dt-med"));
  ignore (Pool.session pool (system_of "synth-1"));
  let size, hits, misses, evictions = pool_counters (Pool.stats pool) in
  check Alcotest.int "bounded" 2 size;
  check Alcotest.int "one hit" 1 hits;
  check Alcotest.int "three misses" 3 misses;
  check Alcotest.int "one eviction" 1 evictions;
  (* cruise was the LRU entry and must have been evicted: a fresh ask
     is a miss that builds a new session *)
  let s3 = Pool.session pool cruise in
  check Alcotest.bool "rebuilt after eviction" true (s1 != s3)

(* ------------------------------------------------------------------ *)
(* Evaluator session: cross-domain discipline *)

let eval_equal (a : D.Evaluate.t) (b : D.Evaluate.t) =
  Int64.bits_of_float a.D.Evaluate.power
  = Int64.bits_of_float b.D.Evaluate.power
  && Int64.bits_of_float a.D.Evaluate.service
     = Int64.bits_of_float b.D.Evaluate.service
  && a.D.Evaluate.schedulable = b.D.Evaluate.schedulable
  && a.D.Evaluate.reliable = b.D.Evaluate.reliable
  && Int64.bits_of_float a.D.Evaluate.violation
     = Int64.bits_of_float b.D.Evaluate.violation
  && a.D.Evaluate.rescued = b.D.Evaluate.rescued

let test_evaluator_concurrent_eval () =
  let b = B.Registry.find_exn "cruise" in
  let arch = b.B.Benchmark.arch and apps = b.B.Benchmark.apps in
  let plans =
    Array.init 12 (fun i -> B.Sampler.plan ~seed:(i + 1) arch apps) in
  let reference =
    let session = D.Evaluator.create arch apps in
    Array.map (D.Evaluator.eval session) plans
  in
  (* one shared session hammered from 4 domains, each walking the
     plans in a different order — results must be bit-identical to the
     sequential session *)
  let shared = D.Evaluator.create arch apps in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            let n = Array.length plans in
            Array.init n (fun j ->
                let i = (j + (d * 3)) mod n in
                (i, D.Evaluator.eval shared plans.(i)))))
  in
  Array.iter
    (fun dom ->
      Array.iter
        (fun (i, r) ->
          check Alcotest.bool
            (Printf.sprintf "plan %d bit-equal across domains" i)
            true
            (eval_equal reference.(i) r))
        (Domain.join dom))
    domains

let test_evaluator_concurrent_population () =
  let b = B.Registry.find_exn "cruise" in
  let arch = b.B.Benchmark.arch and apps = b.B.Benchmark.apps in
  let plans =
    Array.init 8 (fun i -> B.Sampler.plan ~seed:(100 + i) arch apps) in
  let session = D.Evaluator.create arch apps in
  let reference = D.Evaluator.eval_population session plans in
  (* concurrent eval_population calls on one session serialise; both
     callers get the same bit-exact answers *)
  let callers =
    Array.init 2 (fun _ ->
        Domain.spawn (fun () -> D.Evaluator.eval_population session plans))
  in
  Array.iter
    (fun dom ->
      let got = Domain.join dom in
      Array.iteri
        (fun i r ->
          check Alcotest.bool
            (Printf.sprintf "population[%d] bit-equal" i)
            true
            (eval_equal reference.(i) r))
        got)
    callers

(* ------------------------------------------------------------------ *)
(* The server, end to end *)

let temp_sock_path () =
  let path = Filename.temp_file "mcmap-test" ".sock" in
  Unix.unlink path;
  path

let start_server cfg_of =
  let path = temp_sock_path () in
  let addr = P.Unix_sock path in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run ~on_ready:(fun _ -> Atomic.set ready true)
          (cfg_of (Server.default_config addr)))
  in
  let rec await n =
    if Atomic.get ready then ()
    else if n > 5000 then Alcotest.fail "server did not start"
    else (Unix.sleepf 0.001; await (n + 1))
  in
  await 0;
  (addr, path, server)

let connect_exn addr =
  match Client.connect addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let call_exn c req =
  match Client.call c req with
  | Ok r -> r
  | Error e -> Alcotest.failf "call: %s" e

let request c ?deadline_ms ?(no_lint = false) body =
  { P.id = Client.fresh_id c; deadline_ms; no_lint; body }

let shutdown_server addr server =
  let c = connect_exn addr in
  (match call_exn c (request c P.Shutdown) with
   | { P.r_body = P.Shutting_down; _ } -> ()
   | _ -> Alcotest.fail "expected Shutting_down");
  Client.close c;
  Domain.join server

let cruise_forms () =
  let system = system_of "cruise" in
  match Sexp.parse (Spec.write_system system) with
  | Ok forms -> (system, forms)
  | Error e -> Alcotest.failf "system forms: %s" e

let plan_form system plan =
  match Sexp.parse_one (Spec.write_plan system plan) with
  | Ok f -> f
  | Error e -> Alcotest.failf "plan form: %s" e

let test_serve_e2e_concurrent () =
  let system, forms = cruise_forms () in
  let n_plans = 6 in
  let plans =
    Array.init n_plans (fun i ->
        B.Sampler.balanced_plan ~seed:(i + 1) system.Spec.arch
          system.Spec.apps)
  in
  let plan_forms = Array.map (plan_form system) plans in
  (* ground truth: the same parse-and-evaluate path, run directly *)
  let expected =
    let session =
      D.Evaluator.create system.Spec.arch system.Spec.apps in
    Array.map
      (fun p -> P.analysis_of_eval (D.Evaluator.eval session p))
      plans
  in
  let addr, path, server =
    start_server (fun c -> { c with Server.workers = 3 }) in
  let failures = Atomic.make 0 in
  let fail_note = ref "" in
  let client_thread t =
    let c = connect_exn addr in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    for j = 0 to 11 do
      let i = (j + t) mod n_plans in
      if j mod 4 = 3 then begin
        (* mix in the lint plane *)
        let req =
          request c (P.Lint_request { system = forms; plan = None }) in
        match Client.call c req with
        | Ok { P.r_body = P.Lint_report { errors; _ }; r_id } ->
          if r_id <> req.P.id || errors <> 0 then begin
            Atomic.incr failures;
            fail_note := "lint response mismatch"
          end
        | Ok _ | Error _ ->
          Atomic.incr failures;
          fail_note := "lint call failed"
      end
      else begin
        let req =
          request c
            (P.Analyze { system = forms; plan = Some plan_forms.(i) })
        in
        match Client.call c req with
        | Ok resp ->
          let want =
            { P.r_id = req.P.id; r_body = P.Analysis expected.(i) } in
          if not (P.equal_response want resp) then begin
            Atomic.incr failures;
            fail_note :=
              Printf.sprintf "analyze plan %d not bit-exact" i
          end
        | Error e ->
          Atomic.incr failures;
          fail_note := "analyze call failed: " ^ e
      end
    done
  in
  let threads = Array.init 4 (fun t -> Thread.create client_thread t) in
  Array.iter Thread.join threads;
  shutdown_server addr server;
  check Alcotest.int (!fail_note ^ " (failures)") 0 (Atomic.get failures);
  check Alcotest.bool "socket file unlinked" false (Sys.file_exists path)

let test_serve_backpressure_population () =
  let _system, forms = cruise_forms () in
  let addr, _path, server =
    start_server (fun c ->
        { c with Server.workers = 2; max_population = 2 }) in
  Fun.protect ~finally:(fun () -> shutdown_server addr server)
  @@ fun () ->
  (* an over-budget population is rejected immediately... *)
  let big = connect_exn addr in
  let junk = Sexp.Atom "junk" in
  let req_big =
    request big
      (P.Eval_population { system = forms; plans = [ junk; junk; junk ] })
  in
  (* ...without blocking a concurrent analyze on another connection *)
  let analyzer =
    Thread.create
      (fun () ->
        let c = connect_exn addr in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let req = request c (P.Analyze { system = forms; plan = None }) in
        match call_exn c req with
        | { P.r_body = P.Analysis _; _ } -> ()
        | _ -> Alcotest.fail "concurrent analyze did not succeed")
      ()
  in
  (match call_exn big req_big with
   | { P.r_body = P.Rejected reason; r_id } ->
     check Alcotest.int "echoes id" req_big.P.id r_id;
     check Alcotest.bool "names the budget" true
       (String.length reason > 0)
   | _ -> Alcotest.fail "expected Rejected");
  Thread.join analyzer;
  Client.close big

let test_serve_deadline_expired () =
  let _system, forms = cruise_forms () in
  let addr, _path, server = start_server (fun c -> c) in
  Fun.protect ~finally:(fun () -> shutdown_server addr server)
  @@ fun () ->
  let c = connect_exn addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* a 0 ms budget has always expired by the time a worker pops it *)
  let req =
    request c ~deadline_ms:0 (P.Analyze { system = forms; plan = None })
  in
  match call_exn c req with
  | { P.r_body = P.Rejected _; _ } -> ()
  | _ -> Alcotest.fail "expected deadline rejection"

let test_serve_oversized_frame () =
  let _system, forms = cruise_forms () in
  let addr, _path, server =
    start_server (fun c -> { c with Server.max_frame = 256 }) in
  Fun.protect ~finally:(fun () -> shutdown_server addr server)
  @@ fun () ->
  let c = connect_exn addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* the cruise system is far larger than 256 bytes: the server must
     refuse the frame (id 0 — it never parsed the request) and keep
     the connection usable *)
  (match Client.send c (request c (P.Analyze { system = forms; plan = None }))
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "send: %s" e);
  (match Client.recv c with
   | Ok { P.r_id = 0; r_body = P.Rejected _ } -> ()
   | Ok _ -> Alcotest.fail "expected an id-0 Rejected"
   | Error e -> Alcotest.failf "recv: %s" e);
  match call_exn c (request c P.Ping) with
  | { P.r_body = P.Pong; _ } -> ()
  | _ -> Alcotest.fail "connection unusable after oversized frame"

let test_serve_stats_over_protocol () =
  let addr, _path, server = start_server (fun c -> c) in
  Fun.protect ~finally:(fun () -> shutdown_server addr server)
  @@ fun () ->
  let c = connect_exn addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match call_exn c (request c P.Ping) with
   | { P.r_body = P.Pong; _ } -> ()
   | _ -> Alcotest.fail "expected Pong");
  match call_exn c (request c P.Stats) with
  | { P.r_body = P.Stats_snapshot sexp; _ } ->
    (* the snapshot is an Obs metrics document mcmap stats can read *)
    (match Mcmap_obs.Obs.metrics_of_sexp sexp with
     | Error e -> Alcotest.failf "metrics_of_sexp: %s" e
     | Ok snapshot ->
       let count name =
         match List.assoc_opt name snapshot.Mcmap_obs.Obs.metrics with
         | Some (Mcmap_obs.Obs.Counter n) -> n
         | _ -> 0
       in
       check Alcotest.int "ping counted" 1 (count "serve.request~ping");
       check Alcotest.int "stats counted" 1
         (count "serve.request~stats"))
  | _ -> Alcotest.fail "expected Stats_snapshot"

let suite =
  [ Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire empty frame" `Quick test_wire_empty_rejected;
    Alcotest.test_case "wire oversized frame" `Quick
      test_wire_oversized_rejected;
    Alcotest.test_case "wire truncated/eof" `Quick test_wire_truncated;
    Alcotest.test_case "bqueue fifo, bounds, drain" `Quick
      test_bqueue_fifo_and_bounds;
    Alcotest.test_case "bqueue concurrent" `Quick test_bqueue_concurrent;
    qtest text_roundtrip;
    qtest request_roundtrip;
    qtest response_roundtrip;
    Alcotest.test_case "protocol float bit-exactness" `Quick
      test_protocol_float_bits;
    Alcotest.test_case "pool hit/miss/evict" `Quick
      test_pool_hit_miss_evict;
    Alcotest.test_case "evaluator eval across domains" `Quick
      test_evaluator_concurrent_eval;
    Alcotest.test_case "evaluator concurrent populations" `Quick
      test_evaluator_concurrent_population;
    Alcotest.test_case "serve e2e: 4 clients, bit-exact" `Quick
      test_serve_e2e_concurrent;
    Alcotest.test_case "serve backpressure: population budget" `Quick
      test_serve_backpressure_population;
    Alcotest.test_case "serve backpressure: queue deadline" `Quick
      test_serve_deadline_expired;
    Alcotest.test_case "serve backpressure: oversized frame" `Quick
      test_serve_oversized_frame;
    Alcotest.test_case "serve stats over the protocol" `Quick
      test_serve_stats_over_protocol ]
