module Test_gen = Mcmap_gen.Gen

(* Unit and property tests for mcmap.analysis (Algorithm 1 and the
   Naive baseline). *)

module Verdict = Mcmap_analysis.Verdict
module Wcrt = Mcmap_analysis.Wcrt
module Naive = Mcmap_analysis.Naive
module Happ = Mcmap_hardening.Happ
module Jobset = Mcmap_sched.Jobset
module Bounds = Mcmap_sched.Bounds
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let pipeline { Test_gen.arch; apps; plan; _ } =
  let happ = Happ.build arch apps plan in
  let js = Jobset.build happ in
  let ctx = Bounds.make js in
  (happ, js, ctx)

(* ------------------------------------------------------------------ *)
(* Verdict *)

let test_verdict_ops () =
  check Alcotest.bool "max finite" true
    (Verdict.max (Verdict.Finite 3) (Verdict.Finite 5) = Verdict.Finite 5);
  check Alcotest.bool "max unbounded" true
    (Verdict.max (Verdict.Finite 3) Verdict.Unbounded = Verdict.Unbounded);
  check Alcotest.bool "of_option some" true
    (Verdict.of_option (Some 7) = Verdict.Finite 7);
  check Alcotest.bool "of_option none" true
    (Verdict.of_option None = Verdict.Unbounded);
  check (Alcotest.float 1e-9) "to_float" 4. (Verdict.to_float (Verdict.Finite 4));
  check Alcotest.bool "to_float unbounded" true
    (Verdict.to_float Verdict.Unbounded = infinity);
  check Alcotest.bool "within" true (Verdict.within (Verdict.Finite 5) 5);
  check Alcotest.bool "not within" false (Verdict.within (Verdict.Finite 6) 5);
  check Alcotest.bool "unbounded never within" false
    (Verdict.within Verdict.Unbounded max_int)

(* ------------------------------------------------------------------ *)
(* Algorithm 1 structure *)

let test_report_shape () =
  let sys = Test_gen.random_system 1 in
  let _, js, ctx = pipeline sys in
  let report = Wcrt.analyze ctx in
  let n = Mcmap_model.Appset.n_graphs sys.Test_gen.apps in
  check Alcotest.int "wcrt per graph" n (Array.length report.Wcrt.wcrt);
  check Alcotest.int "normal per graph" n
    (Array.length report.Wcrt.normal_wcrt);
  check Alcotest.int "scenarios = triggers"
    (List.length (Jobset.triggers js))
    report.Wcrt.scenarios

let test_unhardened_has_no_scenarios () =
  let sys = Test_gen.random_system 2 in
  let plan = Plan.unhardened sys.Test_gen.apps in
  let happ = Happ.build sys.Test_gen.arch sys.Test_gen.apps plan in
  let js = Jobset.build happ in
  let report = Wcrt.analyze (Bounds.make js) in
  check Alcotest.int "no triggers, no scenarios" 0 report.Wcrt.scenarios;
  Array.iteri
    (fun g v ->
      check Alcotest.bool "wcrt equals normal" true
        (v = report.Wcrt.normal_wcrt.(g)))
    report.Wcrt.wcrt

let prop_wcrt_at_least_normal =
  QCheck.Test.make ~name:"overall WCRT >= normal-state WCRT" ~count:60
    QCheck.small_int
    (fun seed ->
      let sys = Test_gen.random_system seed in
      let _, _, ctx = pipeline sys in
      let report = Wcrt.analyze ctx in
      Array.for_all2
        (fun overall normal ->
          Verdict.to_float overall >= Verdict.to_float normal -. 1e-9)
        report.Wcrt.wcrt report.Wcrt.normal_wcrt)

(* Note: Naive >= Proposed is the paper's *empirical* observation (it
   holds on the Table 2 mappings, which the experiments suite checks);
   with pay-burst-only-once interference accounting it is not a theorem
   — what both estimates guarantee is safety w.r.t. real executions. *)
let prop_naive_is_safe =
  QCheck.Test.make
    ~name:"Naive upper-bounds every simulated execution" ~count:60
    QCheck.small_int
    (fun seed ->
      let sys = Test_gen.random_system seed in
      let happ, js, ctx = pipeline sys in
      let naive = Naive.analyze ctx in
      let covers g observed =
        match observed with
        | None -> true
        | Some r -> float_of_int r <= Verdict.to_float naive.(g) in
      let check_profile profile =
        let o = Mcmap_sim.Engine.run js ~profile in
        Array.for_all
          (fun g -> covers g o.Mcmap_sim.Engine.graph_response.(g))
          (Array.init (Happ.n_graphs happ) (fun g -> g)) in
      check_profile Mcmap_sim.Fault_profile.all
      && check_profile (Mcmap_sim.Fault_profile.random ~seed ~bias:0.5 js))

let prop_required_below_wcrt =
  QCheck.Test.make
    ~name:"required WCRT never exceeds the reported overall WCRT"
    ~count:60 QCheck.small_int
    (fun seed ->
      let sys = Test_gen.random_system seed in
      let _, _, ctx = pipeline sys in
      let report = Wcrt.analyze ctx in
      Array.for_all2
        (fun r o -> Verdict.to_float r <= Verdict.to_float o +. 1e-9)
        report.Wcrt.required_wcrt report.Wcrt.wcrt)

let test_schedulable_consistency () =
  let sys = Test_gen.random_system 3 in
  let _, js, ctx = pipeline sys in
  let report = Wcrt.analyze ctx in
  let manual =
    let ok = ref true in
    Array.iteri
      (fun g v ->
        let deadline = Happ.deadline (Happ.graph js.Jobset.happ g) in
        if not (Verdict.within v deadline) then ok := false)
      report.Wcrt.required_wcrt;
    !ok in
  check Alcotest.bool "schedulable agrees with verdicts" manual
    (Wcrt.schedulable js report)

let test_dropping_relaxes_requirements () =
  (* a plan that drops a graph cannot be harder to schedule than the
     same plan that keeps it *)
  let sys = Test_gen.random_system 17 in
  let apps = sys.Test_gen.apps in
  match Mcmap_model.Appset.droppable_graphs apps with
  | [] -> () (* nothing to compare *)
  | g :: _ ->
    let base = sys.Test_gen.plan in
    let keep = Plan.with_dropped base ~graph:g false in
    let drop = Plan.with_dropped base ~graph:g true in
    let verdicts plan =
      let happ = Happ.build sys.Test_gen.arch apps plan in
      let js = Jobset.build happ in
      (js, Wcrt.analyze (Bounds.make js)) in
    let js_keep, r_keep = verdicts keep in
    let _, r_drop = verdicts drop in
    ignore js_keep;
    (* for every *other* graph the required bound with dropping enabled
       is no larger than without *)
    Array.iteri
      (fun i v_drop ->
        if i <> g then
          check Alcotest.bool "dropping only helps others" true
            (Verdict.to_float v_drop
             <= Verdict.to_float r_keep.Wcrt.required_wcrt.(i) +. 1e-9))
      r_drop.Wcrt.required_wcrt

let test_naive_exec_shape () =
  let sys = Test_gen.random_system 5 in
  let _, js, _ = pipeline sys in
  Array.iter
    (fun (j : Mcmap_sched.Job.t) ->
      let lo, hi = Naive.exec j in
      check Alcotest.bool "bounds ordered" true (0 <= lo && lo <= hi);
      if j.Mcmap_sched.Job.droppable then
        check Alcotest.int "droppable zero bcet" 0 lo;
      check Alcotest.int "upper is Eq. (1)" j.Mcmap_sched.Job.critical_wcet
        hi)
    js.Jobset.jobs

let suite =
  [ Alcotest.test_case "verdict: operations" `Quick test_verdict_ops;
    Alcotest.test_case "wcrt: report shape" `Quick test_report_shape;
    Alcotest.test_case "wcrt: unhardened trivial" `Quick
      test_unhardened_has_no_scenarios;
    Alcotest.test_case "wcrt: schedulable consistency" `Quick
      test_schedulable_consistency;
    Alcotest.test_case "wcrt: dropping relaxes" `Quick
      test_dropping_relaxes_requirements;
    Alcotest.test_case "naive: exec shape" `Quick test_naive_exec_shape;
    qtest prop_wcrt_at_least_normal;
    qtest prop_naive_is_safe;
    qtest prop_required_below_wcrt ]
