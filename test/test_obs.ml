(* Tests for the observability layer (lib/obs): histogram bucket
   layout, merge algebra, span nesting, determinism of per-domain
   recording under Parallel.map_array, and the two export formats. *)

module Histogram = Mcmap_obs.Histogram
module Obs = Mcmap_obs.Obs
module Flight = Mcmap_obs.Flight
module Parallel = Mcmap_util.Parallel
module Sexp = Mcmap_util.Sexp
module Json = Mcmap_util.Json
module B = Mcmap_benchmarks
module D = Mcmap_dse

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* The recorder is global state: every test that touches it must leave
   it disabled and empty for the next one. *)
let with_recorder f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())

(* ------------------------------------------------------------------ *)
(* Histogram buckets *)

let test_bucket_boundaries () =
  (* bucket 0: v <= 0; bucket i >= 1: [2^(i-1), 2^i - 1]. *)
  List.iter
    (fun (v, b) ->
      check Alcotest.int (Printf.sprintf "bucket_of %d" v) b
        (Histogram.bucket_of v))
    [ (min_int, 0); (-1, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3);
      (7, 3); (8, 4); (1023, 10); (1024, 11);
      (* OCaml ints are 63-bit: max_int = 2^62 - 1 *)
      (max_int, 62) ];
  (* upper_bound_of is the largest value still in its bucket (buckets
     past the 62-bit top saturate at max_int and stay unreachable) *)
  for i = 0 to Histogram.bucket_of max_int do
    let ub = Histogram.upper_bound_of i in
    check Alcotest.int "upper bound lands in its bucket" i
      (Histogram.bucket_of ub);
    if ub < max_int then
      check Alcotest.int "successor overflows to the next bucket" (i + 1)
        (Histogram.bucket_of (ub + 1))
  done

let test_histogram_stats () =
  let h = Histogram.create () in
  check Alcotest.bool "fresh is empty" true (Histogram.is_empty h);
  List.iter (Histogram.observe h) [ 4; 1; 9; 4 ];
  check Alcotest.int "count" 4 h.Histogram.count;
  check Alcotest.int "sum" 18 h.Histogram.sum;
  check Alcotest.int "min" 1 h.Histogram.minimum;
  check Alcotest.int "max" 9 h.Histogram.maximum;
  check (Alcotest.float 1e-9) "mean" 4.5 (Histogram.mean h);
  (* Quantiles are upper estimates from bucket bounds, clamped to the
     recorded maximum, and monotone in q. *)
  let q0 = Histogram.quantile h 0. and q1 = Histogram.quantile h 1. in
  check Alcotest.bool "q0 <= q1" true (q0 <= q1);
  check Alcotest.int "q1 clamps to max" 9 q1;
  check Alcotest.bool "quantile on empty raises" true
    (match Histogram.quantile (Histogram.create ()) 0.5 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let hist_of_list l =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) l;
  h

let small_obs = QCheck.(list_of_size (Gen.int_range 0 40) small_signed_int)

let prop_merge_commutative =
  QCheck.Test.make ~name:"Histogram.merge commutes" ~count:200
    QCheck.(pair small_obs small_obs)
    (fun (a, b) ->
      let ha = hist_of_list a and hb = hist_of_list b in
      Histogram.equal (Histogram.merge ha hb) (Histogram.merge hb ha))

let prop_merge_associative =
  QCheck.Test.make ~name:"Histogram.merge associates" ~count:200
    QCheck.(triple small_obs small_obs small_obs)
    (fun (a, b, c) ->
      let ha = hist_of_list a
      and hb = hist_of_list b
      and hc = hist_of_list c in
      Histogram.equal
        (Histogram.merge (Histogram.merge ha hb) hc)
        (Histogram.merge ha (Histogram.merge hb hc)))

let prop_merge_is_concat =
  QCheck.Test.make ~name:"Histogram.merge = observe concatenation"
    ~count:200
    QCheck.(pair small_obs small_obs)
    (fun (a, b) ->
      Histogram.equal
        (Histogram.merge (hist_of_list a) (hist_of_list b))
        (hist_of_list (a @ b)))

(* ------------------------------------------------------------------ *)
(* Recorder basics *)

let test_disabled_is_noop () =
  Obs.reset ();
  check Alcotest.bool "disabled by default" false (Obs.enabled ());
  Obs.incr "c";
  Obs.observe "h" 3;
  Obs.series "s" ~x:0 1.;
  let r = Obs.with_span "span" (fun () -> 41 + 1) in
  check Alcotest.int "with_span passes the result through" 42 r;
  let snap = Obs.snapshot () in
  check Alcotest.int "no metrics recorded" 0 (List.length snap.Obs.metrics);
  check Alcotest.int "no spans recorded" 0 (List.length snap.Obs.spans)

let test_counter_gauge_series () =
  with_recorder @@ fun () ->
  Obs.incr "c";
  Obs.incr ~by:4 "c";
  Obs.gauge "g" 2.5;
  Obs.gauge "g" 1.5;
  Obs.series "s" ~x:2 20.;
  Obs.series "s" ~x:1 10.;
  let snap = Obs.snapshot () in
  let metric name = List.assoc name snap.Obs.metrics in
  (match metric "c" with
   | Obs.Counter n -> check Alcotest.int "counter adds" 5 n
   | _ -> Alcotest.fail "c is not a counter");
  (match metric "g" with
   | Obs.Gauge v ->
     check (Alcotest.float 0.) "gauge keeps last write" 1.5 v
   | _ -> Alcotest.fail "g is not a gauge");
  match metric "s" with
  | Obs.Series pts ->
    check
      Alcotest.(list (pair int (float 0.)))
      "series sorted by x" [ (1, 10.); (2, 20.) ] pts
  | _ -> Alcotest.fail "s is not a series"

let test_labelled_metrics () =
  with_recorder @@ fun () ->
  (* A label is one extra dimension over the same base name: each
     distinct label gets its own derived key, unlabelled calls keep the
     bare name, and the derived keys are ordinary metrics (they merge,
     export and round-trip like any other). *)
  Obs.incr ~label:"hit" "cache";
  Obs.incr ~by:2 ~label:"miss" "cache";
  Obs.incr ~label:"hit" "cache";
  Obs.incr "cache";
  Obs.observe ~label:"cold" "latency" 5;
  Obs.gauge ~label:"g0" "weight" 2.5;
  Obs.series ~label:"a" "traj" ~x:1 1.0;
  let snap = Obs.snapshot () in
  let metric name = List.assoc_opt name snap.Obs.metrics in
  (match metric "cache~hit" with
   | Some (Obs.Counter n) -> check Alcotest.int "hit label adds" 2 n
   | _ -> Alcotest.fail "cache~hit missing");
  (match metric "cache~miss" with
   | Some (Obs.Counter n) -> check Alcotest.int "miss label adds" 2 n
   | _ -> Alcotest.fail "cache~miss missing");
  (match metric "cache" with
   | Some (Obs.Counter n) ->
     check Alcotest.int "unlabelled stays separate" 1 n
   | _ -> Alcotest.fail "cache missing");
  check Alcotest.bool "histogram label" true
    (match metric "latency~cold" with
     | Some (Obs.Histogram _) -> true
     | _ -> false);
  check Alcotest.bool "gauge label" true
    (match metric "weight~g0" with Some (Obs.Gauge _) -> true | _ -> false);
  check Alcotest.bool "series label" true
    (match metric "traj~a" with Some (Obs.Series _) -> true | _ -> false);
  (* labelled names survive the sexp round trip ('~' is a plain atom
     character) *)
  let dump = Sexp.to_string (Obs.metrics_to_sexp snap) in
  match Result.bind (Sexp.parse_one dump) Obs.metrics_of_sexp with
  | Error e -> Alcotest.fail ("labelled dump does not re-parse: " ^ e)
  | Ok back ->
    check
      Alcotest.(list string)
      "labelled names survive"
      (List.map fst snap.Obs.metrics)
      (List.map fst back.Obs.metrics)

let test_series_capacity () =
  let saved = Obs.series_capacity () in
  Fun.protect ~finally:(fun () -> Obs.set_series_capacity saved)
  @@ fun () ->
  with_recorder @@ fun () ->
  Obs.set_series_capacity 8;
  for x = 1 to 50 do
    Obs.series "bounded" ~x (float_of_int x)
  done;
  let snap = Obs.snapshot () in
  (match List.assoc_opt "bounded" snap.Obs.metrics with
   | Some (Obs.Series pts) ->
     check Alcotest.int "capped to capacity" 8 (List.length pts);
     check
       Alcotest.(list (pair int (float 0.)))
       "newest points survive"
       (List.init 8 (fun i -> (43 + i, float_of_int (43 + i))))
       pts
   | _ -> Alcotest.fail "bounded series missing");
  check Alcotest.bool "capacity < 1 rejected" true
    (match Obs.set_series_capacity 0 with
     | () -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Span nesting *)

let test_span_nesting () =
  with_recorder @@ fun () ->
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner" (fun () -> ignore (Sys.opaque_identity 0));
      Obs.with_span "inner2" (fun () -> ignore (Sys.opaque_identity 0)));
  (try Obs.with_span "raising" (fun () -> failwith "boom")
   with Failure _ -> ());
  let snap = Obs.snapshot () in
  let span name =
    List.find (fun s -> s.Obs.name = name) snap.Obs.spans in
  let outer = span "outer"
  and inner = span "inner"
  and inner2 = span "inner2"
  and raising = span "raising" in
  check Alcotest.int "outer depth" 0 outer.Obs.depth;
  check Alcotest.int "inner depth" 1 inner.Obs.depth;
  check Alcotest.int "inner2 depth" 1 inner2.Obs.depth;
  check Alcotest.int "span recorded on raise" 0 raising.Obs.depth;
  let ends s = Int64.add s.Obs.ts_ns s.Obs.dur_ns in
  let contained inner outer =
    outer.Obs.ts_ns <= inner.Obs.ts_ns && ends inner <= ends outer in
  check Alcotest.bool "inner contained in outer" true
    (contained inner outer);
  check Alcotest.bool "inner2 contained in outer" true
    (contained inner2 outer);
  check Alcotest.bool "siblings do not overlap" true
    (ends inner <= inner2.Obs.ts_ns || ends inner2 <= inner.Obs.ts_ns);
  (* snapshot sorts spans by start time *)
  let sorted = List.for_all2
      (fun a b -> a.Obs.ts_ns <= b.Obs.ts_ns)
      (List.filteri (fun i _ -> i < List.length snap.Obs.spans - 1)
         snap.Obs.spans)
      (List.tl snap.Obs.spans) in
  check Alcotest.bool "spans sorted by start" true sorted

(* ------------------------------------------------------------------ *)
(* Determinism under Parallel.map_array *)

(* The per-element recording must merge to the same metrics whatever
   the domain count; only pure data (no wall-clock series) counts. *)
let record_element i =
  Obs.incr "par.count";
  Obs.incr ~by:i "par.weighted";
  Obs.incr ~label:(if i mod 2 = 0 then "even" else "odd") "par.labelled";
  Obs.observe "par.hist" (i * i mod 97);
  Obs.series "par.series" ~x:i (float_of_int (i * 3));
  (* gauges are last-write-per-domain merged by max, so only a value
     monotone in [i] is domain-count independent *)
  Obs.gauge "par.gauge" (float_of_int i);
  i

let metrics_fingerprint () =
  Sexp.to_string (Obs.metrics_to_sexp (Obs.snapshot ()))

let test_parallel_determinism () =
  with_recorder @@ fun () ->
  let input = Array.init 64 Fun.id in
  ignore (Parallel.map_array ~domains:1 record_element input);
  let solo = metrics_fingerprint () in
  Obs.reset ();
  ignore (Parallel.map_array ~domains:4 record_element input);
  let quad = metrics_fingerprint () in
  check Alcotest.string "1-domain metrics = 4-domain metrics" solo quad

(* ------------------------------------------------------------------ *)
(* Export round trips *)

let recorded_snapshot () =
  with_recorder @@ fun () ->
  Obs.incr ~by:7 "rt.counter";
  Obs.gauge "rt.gauge" 3.25;
  List.iter (Obs.observe "rt.hist") [ 1; 5; 5; 900 ];
  Obs.series "rt.series" ~x:0 1.5;
  Obs.series "rt.series" ~x:1 2.5;
  Obs.with_span "rt.span" (fun () ->
      Obs.with_span "rt.child" (fun () -> ()));
  Obs.snapshot ()

let test_metrics_sexp_roundtrip () =
  let snap = recorded_snapshot () in
  let dump = Sexp.to_string (Obs.metrics_to_sexp snap) in
  match Sexp.parse_one dump with
  | Error e -> Alcotest.fail ("dump does not re-parse: " ^ e)
  | Ok sexp ->
    (match Obs.metrics_of_sexp sexp with
     | Error e -> Alcotest.fail ("metrics_of_sexp: " ^ e)
     | Ok back ->
       check Alcotest.int "span-free" 0 (List.length back.Obs.spans);
       check
         Alcotest.(list string)
         "same metric names"
         (List.map fst snap.Obs.metrics)
         (List.map fst back.Obs.metrics);
       (* the round-tripped dump prints identically *)
       check Alcotest.string "fixpoint of the dump" dump
         (Sexp.to_string (Obs.metrics_to_sexp back)))

let test_trace_json_roundtrip () =
  let snap = recorded_snapshot () in
  let text = Json.to_string (Obs.trace_to_json snap) in
  match Json.parse text with
  | Error e -> Alcotest.fail ("trace does not re-parse: " ^ e)
  | Ok json ->
    let events =
      match Json.member "traceEvents" json with
      | Some (Json.List evs) -> evs
      | _ -> Alcotest.fail "no traceEvents list" in
    check Alcotest.int "one event per span"
      (List.length snap.Obs.spans)
      (List.length events);
    List.iter
      (fun ev ->
        (match Json.member "ph" ev with
         | Some (Json.String "X") -> ()
         | _ -> Alcotest.fail "event is not a complete event");
        List.iter
          (fun key ->
            if Json.member key ev = None then
              Alcotest.fail (Printf.sprintf "event lacks %S" key))
          [ "name"; "cat"; "pid"; "tid"; "ts"; "dur" ])
      events;
    let names =
      List.filter_map
        (fun ev ->
          match Json.member "name" ev with
          | Some (Json.String s) -> Some s
          | _ -> None)
        events in
    check Alcotest.bool "span names survive" true
      (List.mem "rt.span" names && List.mem "rt.child" names)

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let with_flight ?capacity f =
  Flight.reset ();
  Flight.arm ?capacity ();
  Fun.protect f ~finally:(fun () ->
      Flight.disarm ();
      Flight.reset ())

let test_flight_disarmed_noop () =
  Flight.reset ();
  check Alcotest.bool "disarmed by default" false (Flight.armed ());
  Flight.record Flight.Note "ignored";
  check Alcotest.int "nothing recorded" 0 (List.length (Flight.events ()));
  check Alcotest.int "nothing dropped" 0 (Flight.dropped ())

let test_flight_ring_wraparound () =
  with_flight ~capacity:4 @@ fun () ->
  for i = 1 to 7 do
    Flight.record ~a:i Flight.Note "evt"
  done;
  let evs = Flight.events () in
  check Alcotest.int "ring keeps capacity events" 4 (List.length evs);
  check
    Alcotest.(list int)
    "oldest overwritten, order preserved" [ 4; 5; 6; 7 ]
    (List.map (fun (e : Flight.event) -> e.Flight.a) evs);
  check Alcotest.int "overwrites counted" 3 (Flight.dropped ());
  (* sequence numbers keep global recording order even after wrap *)
  check
    Alcotest.(list int)
    "seq numbers survive the wrap" [ 3; 4; 5; 6 ]
    (List.map (fun (e : Flight.event) -> e.Flight.seq) evs)

let test_flight_span_integration () =
  with_flight @@ fun () ->
  Obs.with_span "flight.span" (fun () -> ignore (Sys.opaque_identity 1));
  let evs = Flight.events () in
  let of_kind k =
    List.filter (fun (e : Flight.event) -> e.Flight.kind = k) evs in
  (match of_kind Flight.Span_open with
   | [ e ] -> check Alcotest.string "open name" "flight.span" e.Flight.name
   | l ->
     Alcotest.fail
       (Printf.sprintf "expected 1 span-open, got %d" (List.length l)));
  match of_kind Flight.Span_close with
  | [ e ] ->
    check Alcotest.string "close name" "flight.span" e.Flight.name;
    check Alcotest.bool "close carries a duration" true (e.Flight.a >= 0)
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected 1 span-close, got %d" (List.length l))

let test_flight_dump_roundtrip () =
  with_flight ~capacity:8 @@ fun () ->
  Flight.record ~a:1 ~b:2 Flight.Cache_hit "tier.result";
  Flight.record Flight.Cache_miss "tier.sched";
  Flight.record ~a:1 Flight.Verdict_flip "evaluator.schedulable";
  let original = Flight.events () in
  let dump = Flight.dump_string () in
  match Result.bind (Sexp.parse_one dump) Flight.of_sexp with
  | Error e -> Alcotest.fail ("flight dump does not re-parse: " ^ e)
  | Ok parsed ->
    check Alcotest.int "same event count" (List.length original)
      (List.length parsed);
    List.iter2
      (fun (a : Flight.event) (b : Flight.event) ->
        check Alcotest.string "kind survives"
          (Flight.kind_to_string a.Flight.kind)
          (Flight.kind_to_string b.Flight.kind);
        check Alcotest.string "name survives" a.Flight.name b.Flight.name;
        check Alcotest.int "payload a survives" a.Flight.a b.Flight.a;
        check Alcotest.int "payload b survives" a.Flight.b b.Flight.b;
        check Alcotest.int "seq survives" a.Flight.seq b.Flight.seq)
      original parsed

(* ------------------------------------------------------------------ *)
(* End to end: a tiny DSE run populates the advertised metrics *)

let test_explore_records_metrics () =
  with_recorder @@ fun () ->
  let bench = B.Cruise.benchmark () in
  let config =
    { D.Ga.default_config with
      D.Ga.population = 4; offspring = 4; generations = 2;
      check_rescue = false } in
  (* the callback fires after each environmental selection, i.e. for
     generations 1..N (generation 0 only seeds the metrics series) *)
  let generations = ref 0 in
  ignore
    (D.Explore.run ~config
       ~on_generation:(fun (p : D.Explore.progress) ->
         incr generations;
         check Alcotest.int "generations arrive in order" !generations
           p.D.Explore.generation)
       bench.B.Benchmark.arch bench.B.Benchmark.apps);
  check Alcotest.int "one callback per generation" 2 !generations;
  let snap = Obs.snapshot () in
  let metric name =
    match List.assoc_opt name snap.Obs.metrics with
    | Some m -> m
    | None -> Alcotest.fail (Printf.sprintf "metric %S missing" name) in
  (match metric "dse.hypervolume" with
   | Obs.Series pts ->
     (* generation 0 plus one point per environmental selection *)
     check Alcotest.int "hypervolume points" 3 (List.length pts)
   | _ -> Alcotest.fail "dse.hypervolume is not a series");
  (* the session defaults to the flat engine, whose fixed point reports
     under the flat.* namespace (bounds.* belongs to the reference) *)
  (match metric "flat.fixpoint_iterations" with
   | Obs.Histogram h ->
     check Alcotest.bool "fixpoint iterations observed" true
       (h.Histogram.count > 0)
   | _ -> Alcotest.fail "flat.fixpoint_iterations is not a histogram");
  (* candidate analyses flow through the evaluator session, whose
     cache tiers report labelled counters
     ("evaluator.<tier>~hit|miss|...") *)
  (match metric "evaluator.result~miss" with
   | Obs.Counter n ->
     check Alcotest.bool "evaluator result misses counted" true (n > 0)
   | _ -> Alcotest.fail "evaluator.result~miss is not a counter");
  match metric "evaluator.sched~miss" with
  | Obs.Counter n ->
    check Alcotest.bool "evaluator sched analyses counted" true (n > 0)
  | _ -> Alcotest.fail "evaluator.sched~miss is not a counter"

let suite =
  [ Alcotest.test_case "histogram bucket boundaries" `Quick
      test_bucket_boundaries;
    Alcotest.test_case "histogram summary statistics" `Quick
      test_histogram_stats;
    qtest prop_merge_commutative;
    qtest prop_merge_associative;
    qtest prop_merge_is_concat;
    Alcotest.test_case "disabled recorder is a no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "counters, gauges and series" `Quick
      test_counter_gauge_series;
    Alcotest.test_case "labelled metrics" `Quick test_labelled_metrics;
    Alcotest.test_case "series retention is bounded" `Quick
      test_series_capacity;
    Alcotest.test_case "span nesting is well-formed" `Quick
      test_span_nesting;
    Alcotest.test_case "metrics deterministic across domain counts"
      `Quick test_parallel_determinism;
    Alcotest.test_case "metrics sexp round trip" `Quick
      test_metrics_sexp_roundtrip;
    Alcotest.test_case "chrome trace json round trip" `Quick
      test_trace_json_roundtrip;
    Alcotest.test_case "disarmed flight recorder is a no-op" `Quick
      test_flight_disarmed_noop;
    Alcotest.test_case "flight ring wraparound" `Quick
      test_flight_ring_wraparound;
    Alcotest.test_case "with_span feeds the flight ring" `Quick
      test_flight_span_integration;
    Alcotest.test_case "flight dump round trip" `Quick
      test_flight_dump_roundtrip;
    Alcotest.test_case "explore records advertised metrics" `Slow
      test_explore_records_metrics ]
