(* Unit tests for mcmap.model. *)

module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Criticality = Mcmap_model.Criticality
module Task = Mcmap_model.Task
module Channel = Mcmap_model.Channel
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset

let check = Alcotest.check

let proc ?fault_rate ?speed ?policy id =
  Proc.make ?fault_rate ?speed ?policy ~id
    ~name:(Format.asprintf "p%d" id) ()

let chain_graph ?deadline ?(criticality = Criticality.critical 1e-4)
    ~name ~period wcets =
  let tasks =
    Array.of_list
      (List.mapi
         (fun id wcet ->
           Task.make ~id ~name:(Format.asprintf "%s%d" name id) ~wcet ())
         wcets) in
  let channels =
    Array.init
      (max 0 (List.length wcets - 1))
      (fun i -> Channel.make ~src:i ~dst:(i + 1) ~size:2 ()) in
  Graph.make ?deadline ~name ~tasks ~channels ~period ~criticality ()

(* ------------------------------------------------------------------ *)
(* Proc *)

let test_proc_validation () =
  Alcotest.check_raises "negative power"
    (Invalid_argument "Proc.make: negative power") (fun () ->
      ignore (Proc.make ~id:0 ~name:"x" ~static_power:(-1.) ()));
  Alcotest.check_raises "negative fault rate"
    (Invalid_argument "Proc.make: negative fault rate") (fun () ->
      ignore (Proc.make ~id:0 ~name:"x" ~fault_rate:(-1.) ()));
  Alcotest.check_raises "zero speed"
    (Invalid_argument "Proc.make: non-positive speed") (fun () ->
      ignore (Proc.make ~id:0 ~name:"x" ~speed:0. ()))

let test_proc_scale_time () =
  let fast = proc ~speed:1.0 0 and slow = proc ~speed:1.5 1 in
  check Alcotest.int "fast unchanged" 10 (Proc.scale_time fast 10);
  check Alcotest.int "slow rounded up" 15 (Proc.scale_time slow 10);
  check Alcotest.int "zero is zero" 0 (Proc.scale_time slow 0);
  let tiny = proc ~speed:0.01 2 in
  check Alcotest.int "positive stays positive" 1 (Proc.scale_time tiny 1)

let test_proc_fault_probability () =
  let p = proc ~fault_rate:1e-3 0 in
  check (Alcotest.float 1e-9) "zero duration" 0.
    (Proc.fault_probability p 0);
  let q100 = Proc.fault_probability p 100 in
  let q200 = Proc.fault_probability p 200 in
  check Alcotest.bool "in (0,1)" true (q100 > 0. && q100 < 1.);
  check Alcotest.bool "monotone in duration" true (q200 > q100);
  check (Alcotest.float 1e-9) "closed form" (1. -. exp (-0.1)) q100

(* ------------------------------------------------------------------ *)
(* Arch *)

let quad () = Arch.make ~bus_bandwidth:2 ~bus_latency:1
    (Array.init 4 (fun i -> proc i))

let test_arch_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Arch.make: no processors")
    (fun () -> ignore (Arch.make [||]));
  Alcotest.check_raises "bad ids"
    (Invalid_argument "Arch.make: processor id must equal its index")
    (fun () -> ignore (Arch.make [| proc 1 |]));
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Arch.make: bandwidth must be > 0") (fun () ->
      ignore (Arch.make ~bus_bandwidth:0 [| proc 0 |]))

let test_arch_comm_delay () =
  let a = quad () in
  check Alcotest.int "local is free" 0
    (Arch.comm_delay a ~size:100 ~src_proc:1 ~dst_proc:1);
  check Alcotest.int "remote latency + transfer" (1 + 5)
    (Arch.comm_delay a ~size:10 ~src_proc:0 ~dst_proc:1);
  check Alcotest.int "empty message pays latency" 1
    (Arch.comm_delay a ~size:0 ~src_proc:0 ~dst_proc:1);
  check Alcotest.int "rounding up" (1 + 3)
    (Arch.comm_delay a ~size:5 ~src_proc:0 ~dst_proc:1)

let test_arch_accessors () =
  let a = quad () in
  check Alcotest.int "n_procs" 4 (Arch.n_procs a);
  check Alcotest.int "proc id" 2 (Arch.proc a 2).Proc.id;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Arch.proc: processor id out of range") (fun () ->
      ignore (Arch.proc a 4))

(* ------------------------------------------------------------------ *)
(* Interconnect *)

module Interconnect = Mcmap_model.Interconnect

let qtest = QCheck_alcotest.to_alcotest

let mesh ?(link_bandwidth = 2) ?(hop_latency = 1) ?(router_latency = 1)
    ~cols ~rows () =
  Interconnect.Noc { cols; rows; link_bandwidth; hop_latency;
                     router_latency }

let test_noc_comm_delay () =
  (* 3x2 mesh: node 0 = (0,0), node 4 = (1,1), node 5 = (2,1). *)
  let a =
    Arch.make
      ~interconnect:(mesh ~cols:3 ~rows:2 ())
      (Array.init 6 (fun i -> proc i)) in
  check Alcotest.int "local is free" 0
    (Arch.comm_delay a ~size:100 ~src_proc:4 ~dst_proc:4);
  (* 0 -> 5: 2 X hops + 1 Y hop, router 1, ceil 10/2 = 5 *)
  check Alcotest.int "remote pays router + hops + transfer" (1 + 3 + 5)
    (Arch.comm_delay a ~size:10 ~src_proc:0 ~dst_proc:5);
  check Alcotest.int "empty message pays base only" (1 + 3)
    (Arch.comm_delay a ~size:0 ~src_proc:0 ~dst_proc:5);
  check Alcotest.int "neighbours pay one hop" (1 + 1 + 1)
    (Arch.comm_delay a ~size:2 ~src_proc:3 ~dst_proc:4)

let test_noc_validation () =
  Alcotest.check_raises "mesh too small"
    (Invalid_argument
       "Arch.make: 4 processors exceed the 2-node mesh capacity")
    (fun () ->
      ignore
        (Arch.make
           ~interconnect:(mesh ~cols:2 ~rows:1 ())
           (Array.init 4 (fun i -> proc i))));
  Alcotest.check_raises "mixing parameter styles"
    (Invalid_argument
       "Arch.make: ~interconnect excludes ?bus_bandwidth/?bus_latency")
    (fun () ->
      ignore
        (Arch.make ~bus_bandwidth:2
           ~interconnect:(mesh ~cols:2 ~rows:2 ())
           [| proc 0 |]));
  Alcotest.check_raises "zero link bandwidth"
    (Invalid_argument "Interconnect: link bandwidth must be > 0")
    (fun () ->
      ignore
        (Arch.make
           ~interconnect:(mesh ~link_bandwidth:0 ~cols:2 ~rows:2 ())
           [| proc 0 |]))

(* The correctness spine of the backend redesign, pointwise: a 1xN
   zero-hop mesh is the bus. *)
let test_bus_degenerate_noc () =
  let n = 5 in
  let procs = Array.init n (fun i -> proc i) in
  let bus = Arch.make ~bus_bandwidth:3 ~bus_latency:2 procs in
  let noc =
    Arch.make
      ~interconnect:
        (mesh ~cols:n ~rows:1 ~link_bandwidth:3 ~hop_latency:0
           ~router_latency:2 ())
      procs in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      List.iter
        (fun size ->
          check Alcotest.int
            (Format.asprintf "delay %d->%d size %d" src dst size)
            (Arch.comm_delay bus ~size ~src_proc:src ~dst_proc:dst)
            (Arch.comm_delay noc ~size ~src_proc:src ~dst_proc:dst))
        [ 0; 1; 7; 100 ]
    done
  done

(* qcheck XY-routing laws over random meshes and endpoint pairs. *)
let noc_case =
  QCheck.(
    map
      (fun (cols, rows, (a, b)) ->
        let cap = cols * rows in
        (cols, rows, a mod cap, b mod cap))
      (triple (int_range 1 8) (int_range 1 8)
         (pair (int_range 0 63) (int_range 0 63))))

let qcheck_hops_symmetric =
  QCheck.Test.make ~name:"XY hop count is symmetric" ~count:500 noc_case
    (fun (cols, rows, src, dst) ->
      let t = mesh ~cols ~rows () in
      Interconnect.hops t ~src ~dst = Interconnect.hops t ~src:dst ~dst:src)

let qcheck_route_length_manhattan =
  QCheck.Test.make
    ~name:"XY route length equals the Manhattan distance" ~count:500
    noc_case
    (fun (cols, rows, src, dst) ->
      let t = mesh ~cols ~rows () in
      let route = Interconnect.route t ~src ~dst in
      let sx, sy = Interconnect.coords ~cols src in
      let dx, dy = Interconnect.coords ~cols dst in
      let manhattan = abs (dx - sx) + abs (dy - sy) in
      List.length route = manhattan + 1
      && Interconnect.hops t ~src ~dst = manhattan)

let qcheck_route_deterministic =
  QCheck.Test.make
    ~name:"XY routes are deterministic, endpoint-correct and unit-step"
    ~count:500 noc_case
    (fun (cols, rows, src, dst) ->
      let t = mesh ~cols ~rows () in
      let route = Interconnect.route t ~src ~dst in
      route = Interconnect.route t ~src ~dst
      && List.hd route = src
      && List.nth route (List.length route - 1) = dst
      && (let rec steps = function
            | a :: (b :: _ as rest) ->
              let ax, ay = Interconnect.coords ~cols a in
              let bx, by = Interconnect.coords ~cols b in
              abs (bx - ax) + abs (by - ay) = 1 && steps rest
            | [ _ ] | [] -> true in
          steps route))

let test_max_link_load () =
  (* Bus: every remote pair shares the one link. *)
  check Alcotest.int "bus all-to-all" 12
    (Interconnect.max_link_load
       (Interconnect.Bus { bandwidth = 1; latency = 0 })
       ~n_procs:4);
  (* 1xN chain: the middle link carries every crossing flow. *)
  check Alcotest.int "chain middle link" 4
    (Interconnect.max_link_load (mesh ~cols:4 ~rows:1 ()) ~n_procs:4);
  check Alcotest.int "single node" 0
    (Interconnect.max_link_load (mesh ~cols:1 ~rows:1 ()) ~n_procs:1)

(* ------------------------------------------------------------------ *)
(* Criticality *)

let test_criticality () =
  let c = Criticality.critical 1e-6 in
  let d = Criticality.droppable 3.0 in
  check Alcotest.bool "critical not droppable" false
    (Criticality.is_droppable c);
  check Alcotest.bool "droppable" true (Criticality.is_droppable d);
  check (Alcotest.float 1e-9) "service" 3.0 (Criticality.service d);
  check Alcotest.bool "critical service infinite" true
    (Criticality.service c = infinity);
  check (Alcotest.option (Alcotest.float 1e-12)) "bound" (Some 1e-6)
    (Criticality.max_failure_rate c);
  check (Alcotest.option (Alcotest.float 1e-12)) "no bound" None
    (Criticality.max_failure_rate d);
  Alcotest.check_raises "rate zero"
    (Invalid_argument "Criticality.critical: rate must be in (0, 1]")
    (fun () -> ignore (Criticality.critical 0.));
  Alcotest.check_raises "rate above one"
    (Invalid_argument "Criticality.critical: rate must be in (0, 1]")
    (fun () -> ignore (Criticality.critical 1.5));
  Alcotest.check_raises "negative service"
    (Invalid_argument "Criticality.droppable: negative service") (fun () ->
      ignore (Criticality.droppable (-1.)))

(* ------------------------------------------------------------------ *)
(* Task / Channel *)

let test_task_validation () =
  let t = Task.make ~id:0 ~name:"t" ~wcet:10 () in
  check Alcotest.int "default bcet = wcet" 10 t.Task.bcet;
  Alcotest.check_raises "zero wcet"
    (Invalid_argument "Task.make: wcet must be positive") (fun () ->
      ignore (Task.make ~id:0 ~name:"t" ~wcet:0 ()));
  Alcotest.check_raises "bcet above wcet"
    (Invalid_argument "Task.make: need 0 <= bcet <= wcet") (fun () ->
      ignore (Task.make ~id:0 ~name:"t" ~wcet:5 ~bcet:6 ()));
  Alcotest.check_raises "negative overhead"
    (Invalid_argument "Task.make: negative overhead") (fun () ->
      ignore (Task.make ~id:0 ~name:"t" ~wcet:5 ~voting_overhead:(-1) ()))

let test_channel_validation () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Channel.make: self-loop") (fun () ->
      ignore (Channel.make ~src:1 ~dst:1 ()));
  Alcotest.check_raises "negative size"
    (Invalid_argument "Channel.make: negative size") (fun () ->
      ignore (Channel.make ~src:0 ~dst:1 ~size:(-1) ()))

(* ------------------------------------------------------------------ *)
(* Graph *)

let diamond () =
  Graph.make ~name:"diamond"
    ~tasks:(Array.init 4 (fun id ->
        Task.make ~id ~name:(Format.asprintf "t%d" id) ~wcet:10 ()))
    ~channels:
      [| Channel.make ~src:0 ~dst:1 ();
         Channel.make ~src:0 ~dst:2 ();
         Channel.make ~src:1 ~dst:3 ();
         Channel.make ~src:2 ~dst:3 () |]
    ~period:100 ~criticality:(Criticality.droppable 1.) ()

let test_graph_structure () =
  let g = diamond () in
  check Alcotest.int "n_tasks" 4 (Graph.n_tasks g);
  check (Alcotest.list Alcotest.int) "sources" [ 0 ] (Graph.sources g);
  check (Alcotest.list Alcotest.int) "sinks" [ 3 ] (Graph.sinks g);
  check (Alcotest.list Alcotest.int) "preds of 3" [ 1; 2 ]
    (List.map fst (Graph.preds g 3));
  check (Alcotest.list Alcotest.int) "succs of 0" [ 1; 2 ]
    (List.map fst (Graph.succs g 0));
  let order = Graph.topological_order g in
  check Alcotest.int "topo length" 4 (Array.length order);
  check Alcotest.int "topo first" 0 order.(0);
  check Alcotest.int "topo last" 3 order.(3);
  let depth = Graph.depth g in
  check Alcotest.int "depth of sink" 2 depth.(3);
  check Alcotest.int "total wcet" 40 (Graph.total_wcet g);
  check Alcotest.int "default deadline = period" 100 g.Graph.deadline

let test_graph_cycle_detection () =
  Alcotest.check_raises "cycle" (Invalid_argument "Graph: cycle detected")
    (fun () ->
      ignore
        (Graph.make ~name:"cyc"
           ~tasks:(Array.init 2 (fun id ->
               Task.make ~id ~name:"t" ~wcet:5 ()))
           ~channels:
             [| Channel.make ~src:0 ~dst:1 ();
                Channel.make ~src:1 ~dst:0 () |]
           ~period:10 ~criticality:(Criticality.droppable 1.) ()))

let test_graph_validation () =
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Graph: channel endpoint out of range") (fun () ->
      ignore
        (Graph.make ~name:"bad"
           ~tasks:[| Task.make ~id:0 ~name:"t" ~wcet:5 () |]
           ~channels:[| Channel.make ~src:0 ~dst:1 () |]
           ~period:10 ~criticality:(Criticality.droppable 1.) ()));
  Alcotest.check_raises "duplicate channel"
    (Invalid_argument "Graph: duplicate channel") (fun () ->
      ignore
        (Graph.make ~name:"dup"
           ~tasks:(Array.init 2 (fun id ->
               Task.make ~id ~name:"t" ~wcet:5 ()))
           ~channels:
             [| Channel.make ~src:0 ~dst:1 ();
                Channel.make ~src:0 ~dst:1 ~size:3 () |]
           ~period:10 ~criticality:(Criticality.droppable 1.) ()));
  Alcotest.check_raises "bad period"
    (Invalid_argument "Graph: period must be positive") (fun () ->
      ignore
        (Graph.make ~name:"p0"
           ~tasks:[| Task.make ~id:0 ~name:"t" ~wcet:5 () |]
           ~channels:[||] ~period:0
           ~criticality:(Criticality.droppable 1.) ()))

(* ------------------------------------------------------------------ *)
(* Appset *)

let sample_appset () =
  Appset.make
    [| chain_graph ~name:"a" ~period:100 [ 10; 20 ];
       chain_graph ~name:"b" ~period:150
         ~criticality:(Criticality.droppable 2.) [ 5 ];
       chain_graph ~name:"c" ~period:300
         ~criticality:(Criticality.droppable 3.) [ 5; 5 ] |]

let test_appset () =
  let apps = sample_appset () in
  check Alcotest.int "n_graphs" 3 (Appset.n_graphs apps);
  check Alcotest.int "hyperperiod" 300 (Appset.hyperperiod apps);
  check Alcotest.int "total tasks" 5 (Appset.total_tasks apps);
  check Alcotest.int "graph_index" 1 (Appset.graph_index apps "b");
  check (Alcotest.list Alcotest.int) "droppable" [ 1; 2 ]
    (Appset.droppable_graphs apps);
  check (Alcotest.list Alcotest.int) "critical" [ 0 ]
    (Appset.critical_graphs apps);
  check (Alcotest.float 1e-9) "total service" 5.
    (Appset.total_service apps);
  check Alcotest.int "all refs" 5 (List.length (Appset.all_task_refs apps));
  let t = Appset.task apps { Appset.graph = 0; task = 1 } in
  check Alcotest.int "task lookup" 20 t.Task.wcet

let test_appset_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Appset.make: empty set")
    (fun () -> ignore (Appset.make [||]));
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Appset.make: duplicate graph name") (fun () ->
      ignore
        (Appset.make
           [| chain_graph ~name:"x" ~period:10 [ 5 ];
              chain_graph ~name:"x" ~period:10 [ 5 ] |]));
  Alcotest.check_raises "unknown graph" Not_found (fun () ->
      ignore (Appset.graph_index (sample_appset ()) "zzz"))

let suite =
  [ Alcotest.test_case "proc: validation" `Quick test_proc_validation;
    Alcotest.test_case "proc: scale_time" `Quick test_proc_scale_time;
    Alcotest.test_case "proc: fault probability" `Quick
      test_proc_fault_probability;
    Alcotest.test_case "arch: validation" `Quick test_arch_validation;
    Alcotest.test_case "arch: comm delay" `Quick test_arch_comm_delay;
    Alcotest.test_case "arch: accessors" `Quick test_arch_accessors;
    Alcotest.test_case "interconnect: noc comm delay" `Quick
      test_noc_comm_delay;
    Alcotest.test_case "interconnect: noc validation" `Quick
      test_noc_validation;
    Alcotest.test_case "interconnect: bus = degenerate noc" `Quick
      test_bus_degenerate_noc;
    Alcotest.test_case "interconnect: max link load" `Quick
      test_max_link_load;
    qtest qcheck_hops_symmetric;
    qtest qcheck_route_length_manhattan;
    qtest qcheck_route_deterministic;
    Alcotest.test_case "criticality" `Quick test_criticality;
    Alcotest.test_case "task: validation" `Quick test_task_validation;
    Alcotest.test_case "channel: validation" `Quick
      test_channel_validation;
    Alcotest.test_case "graph: structure" `Quick test_graph_structure;
    Alcotest.test_case "graph: cycle detection" `Quick
      test_graph_cycle_detection;
    Alcotest.test_case "graph: validation" `Quick test_graph_validation;
    Alcotest.test_case "appset: accessors" `Quick test_appset;
    Alcotest.test_case "appset: validation" `Quick test_appset_validation ]
