(* Tests for the differential checking subsystem (mcmap.check).

   Three obligations:
   - the committed regression corpus replays green (every seed that once
     exposed a bug keeps passing its oracle after the fix);
   - the runner is deterministic: two runs from the same base seed give
     identical reports;
   - the harness actually catches bugs: an intentionally broken bound is
     detected and shrunk to a minimal counterexample. *)

module Oracles = Mcmap_check.Oracles
module Runner = Mcmap_check.Runner
module Shrink = Mcmap_check.Shrink
module Evaluator = Mcmap_dse.Evaluator
module Bounds = Mcmap_sched.Bounds
module Jobset = Mcmap_sched.Jobset
module Job = Mcmap_sched.Job
module Engine = Mcmap_sim.Engine
module Fault_profile = Mcmap_sim.Fault_profile
module Gen = Mcmap_gen.Gen

let check = Alcotest.check

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let corpus_path = "corpus/seeds.txt"

(* ------------------------------------------------------------------ *)
(* Corpus replay *)

let test_corpus_replays () =
  let entries = Runner.load_corpus corpus_path in
  check Alcotest.bool "corpus is not empty" true (entries <> []);
  List.iter
    (fun ((seed, oracle) as entry) ->
      match Runner.replay_entry entry with
      | Ok () -> ()
      | Error m ->
        Alcotest.failf "corpus seed %d regressed on oracle %s: %s" seed
          oracle m)
    entries

let test_corpus_io () =
  let path = Filename.temp_file "mcmap_corpus" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oracle = List.hd Oracles.all in
      let failure seed =
        { Runner.seed; oracle; message = "m"; shrunk = Gen.random_system 1;
          shrunk_message = "m";
          shrink_stats = { Shrink.evaluations = 0; steps = 0 } } in
      check Alcotest.bool "first append writes" true
        (Runner.append_corpus path (failure 7));
      check Alcotest.bool "duplicate append skipped" false
        (Runner.append_corpus path (failure 7));
      check Alcotest.bool "second seed appends" true
        (Runner.append_corpus path (failure 9));
      check
        (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
        "round-trip"
        [ (7, oracle.Oracles.name); (9, oracle.Oracles.name) ]
        (Runner.load_corpus path))

(* Every corpus seed, not only the flat-agreement sentinels, is replayed
   once per engine at full-evaluation level: whatever scenario a seed
   pins, both fixed-point kernels must evaluate it identically. *)
let test_corpus_both_engines () =
  let entries = Runner.load_corpus corpus_path in
  List.iter
    (fun (seed, _oracle) ->
      let sys = Gen.random_system seed in
      let eval engine =
        let session =
          Evaluator.create ~engine sys.Gen.arch sys.Gen.apps in
        Evaluator.eval session sys.Gen.plan in
      let r = eval Evaluator.Reference and f = eval Evaluator.Flat in
      check Alcotest.bool
        (Printf.sprintf "seed %d: engines evaluate identically" seed)
        true
        (Oracles.evaluations_equal r f))
    entries

let test_replay_unknown_oracle () =
  check Alcotest.bool "unknown oracle is an error" true
    (Result.is_error (Runner.replay_entry (1, "no-such-oracle")))

(* ------------------------------------------------------------------ *)
(* Runner determinism and green seeds *)

let test_runner_deterministic () =
  let run () = Runner.run ~seed:42 ~count:25 () in
  let a = run () and b = run () in
  check Alcotest.bool "both runs pass" true (Runner.ok a && Runner.ok b);
  check (Alcotest.list Alcotest.string) "same oracle set" a.Runner.oracle_names
    b.Runner.oracle_names;
  check Alcotest.int "same failure count" (List.length a.Runner.failures)
    (List.length b.Runner.failures)

let test_all_oracles_named () =
  List.iter
    (fun (o : Oracles.t) ->
      check Alcotest.bool
        (Printf.sprintf "find %s" o.Oracles.name)
        true
        (Oracles.find o.Oracles.name <> None))
    Oracles.all;
  check Alcotest.bool "unknown name" true (Oracles.find "nope" = None)

let test_campaign_oracle_green () =
  (* The campaign-agreement oracle runs at unamplified fault rates, so
     every one of these systems exercises the rare-event estimator. *)
  List.iter
    (fun seed ->
      match
        Runner.check_seed ~oracles:[ Oracles.campaign_agreement ] seed
      with
      | None -> ()
      | Some f ->
        Alcotest.failf "campaign oracle failed on seed %d: %s" seed
          f.Runner.message)
    [ 11; 12; 13; 14; 15 ]

(* ------------------------------------------------------------------ *)
(* Mutation check: a broken bound must be caught and shrunk small. *)

(* Deliberately unsound claim: the best-case (interference-free) finish
   bounds dominate the fault-free worst-case simulation. Any system with
   execution-time variation or contention violates it, standing in for a
   too-tight analysis. *)
let broken_min_bound =
  { Oracles.name = "broken-min-bound";
    doc = "intentionally wrong: best-case bounds dominate the simulation";
    check =
      (fun sys ->
        let js, ctx = Oracles.pipeline sys in
        let bounds = Bounds.analyze ctx ~exec:Bounds.nominal_exec in
        let o = Engine.run js ~profile:Fault_profile.none in
        let bad = ref (Ok ()) in
        Array.iter
          (fun (j : Job.t) ->
            match o.Engine.finish.(j.Job.id) with
            | Some t
              when !bad = Ok ()
                   && t > bounds.Bounds.bounds.(j.Job.id).Bounds.min_finish
              ->
              bad :=
                Error
                  (Printf.sprintf
                     "job %d finished at %d, after best-case bound %d"
                     j.Job.id t
                     bounds.Bounds.bounds.(j.Job.id).Bounds.min_finish)
            | _ -> ())
          js.Jobset.jobs;
        !bad) }

let test_broken_bound_caught_and_shrunk () =
  match Runner.check_seed ~oracles:[ broken_min_bound ] 42 with
  | None -> Alcotest.fail "broken oracle was not caught"
  | Some f ->
    let graphs, tasks, procs = Runner.system_size f.Runner.shrunk in
    check Alcotest.bool "shrunk to at most 3 tasks" true (tasks <= 3);
    check Alcotest.bool "shrunk to at most 2 procs" true (procs <= 2);
    check Alcotest.bool "at least one graph survives" true (graphs >= 1);
    check Alcotest.bool "shrunk system still fails" true
      (Result.is_error (broken_min_bound.Oracles.check f.Runner.shrunk));
    check Alcotest.bool "shrinking did some work" true
      (f.Runner.shrink_stats.Shrink.evaluations > 0)

let test_failure_report_renders () =
  match Runner.check_seed ~oracles:[ broken_min_bound ] 43 with
  | None -> Alcotest.fail "broken oracle was not caught"
  | Some f ->
    let report =
      { Runner.base_seed = 43; count = 1;
        oracle_names = [ broken_min_bound.Oracles.name ]; failures = [ f ] }
    in
    let rendered = Format.asprintf "%a" Runner.pp_report report in
    check Alcotest.bool "names the oracle" true
      (contains ~affix:"broken-min-bound" rendered);
    check Alcotest.bool "embeds a system spec" true
      (contains ~affix:"(arch" rendered);
    check Alcotest.bool "embeds a plan spec" true
      (contains ~affix:"(plan" rendered)

let suite =
  [ Alcotest.test_case "corpus: replays green" `Quick test_corpus_replays;
    Alcotest.test_case "corpus: append/load round-trip" `Quick
      test_corpus_io;
    Alcotest.test_case "corpus: unknown oracle" `Quick
      test_replay_unknown_oracle;
    Alcotest.test_case "corpus: both engines replay identically" `Quick
      test_corpus_both_engines;
    Alcotest.test_case "runner: deterministic" `Quick
      test_runner_deterministic;
    Alcotest.test_case "oracles: find by name" `Quick
      test_all_oracles_named;
    Alcotest.test_case "oracles: campaign agreement green" `Quick
      test_campaign_oracle_green;
    Alcotest.test_case "mutation: broken bound caught and shrunk" `Quick
      test_broken_bound_caught_and_shrunk;
    Alcotest.test_case "mutation: failure report renders" `Quick
      test_failure_report_renders ]
