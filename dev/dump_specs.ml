(* Regenerate the shipped example spec files from the benchmark suite. *)
let () =
  let dir = Sys.argv.(1) in
  List.iter
    (fun name ->
      let b = Mcmap_benchmarks.Registry.find_exn name in
      let system =
        { Mcmap_spec.Spec.arch = b.Mcmap_benchmarks.Benchmark.arch;
          apps = b.Mcmap_benchmarks.Benchmark.apps } in
      let oc = open_out (Filename.concat dir (name ^ ".mcmap")) in
      output_string oc
        ("; The " ^ name
       ^ " benchmark of the mcmap suite, in the textual system format.\n\
          ; Regenerate with: dune exec dev/dump_specs.exe examples/specs\n\n");
      output_string oc (Mcmap_spec.Spec.write_system system);
      close_out oc)
    [ "cruise"; "dt-med"; "dt-large-noc" ];
  (* one sample plan for cruise *)
  let b = Mcmap_benchmarks.Registry.find_exn "cruise" in
  let system =
    { Mcmap_spec.Spec.arch = b.Mcmap_benchmarks.Benchmark.arch;
      apps = b.Mcmap_benchmarks.Benchmark.apps } in
  let plan = List.hd (Mcmap_benchmarks.Cruise.sample_plans b) in
  let oc = open_out (Filename.concat dir "cruise-mapping1.plan") in
  output_string oc
    "; Sample mapping 1 of the Table 2 experiment, in the textual plan \
     format.\n\n";
  output_string oc (Mcmap_spec.Spec.write_plan system plan);
  close_out oc
