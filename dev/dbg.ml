(* Developer debugging scratchpad (not part of the library). *)
module S = Mcmap_sched
module A = Mcmap_analysis
module Sim = Mcmap_sim
module Happ = Mcmap_hardening.Happ
module Gen = Mcmap_gen.Gen
module Spec = Mcmap_spec.Spec

let main () =
  let sys_file = Sys.argv.(1) and plan_file = Sys.argv.(2) in
  let system = Result.get_ok (Spec.load_system sys_file) in
  let plan = Result.get_ok (Spec.load_plan system plan_file) in
  let happ = Happ.build system.Spec.arch system.Spec.apps plan in
  let js = S.Jobset.build happ in
  let ctx = S.Bounds.make js in
  let normal = S.Bounds.analyze ctx ~exec:S.Bounds.nominal_exec in
  Printf.printf "converged: %b\n" normal.S.Bounds.converged;
  let o = Sim.Engine.run js ~profile:Sim.Fault_profile.none in
  Array.iter
    (fun (j : S.Job.t) ->
      let b = normal.S.Bounds.bounds.(j.S.Job.id) in
      let simf =
        match o.Sim.Engine.finish.(j.S.Job.id) with
        | Some t -> string_of_int t
        | None -> "-" in
      Printf.printf
        "j%-2d g%d.t%d#%d proc=%d prio=%-3d rel=%-3d [%d,%d] ana:ms=%-3d \
         mf=%-3d Ms=%-3d Mf=%-3d sim=%s%s\n"
        j.S.Job.id j.S.Job.graph j.S.Job.task j.S.Job.instance j.S.Job.proc
        j.S.Job.priority j.S.Job.release j.S.Job.bcet j.S.Job.wcet
        b.S.Bounds.min_start b.S.Bounds.min_finish b.S.Bounds.max_start
        b.S.Bounds.max_finish simf
        (match o.Sim.Engine.finish.(j.S.Job.id) with
         | Some t when t > b.S.Bounds.max_finish -> "  <-- VIOLATION"
         | _ -> ""))
    js.S.Jobset.jobs;
  Printf.printf "\nsegments:\n";
  List.iter
    (fun (s : Sim.Engine.segment) ->
      let j = S.Jobset.job js s.Sim.Engine.job in
      Printf.printf "  p%d [%3d..%3d) j%-2d g%d.t%d#%d\n" s.Sim.Engine.proc
        s.Sim.Engine.start s.Sim.Engine.stop s.Sim.Engine.job j.S.Job.graph
        j.S.Job.task j.S.Job.instance)
    (List.sort
       (fun (a : Sim.Engine.segment) (b : Sim.Engine.segment) ->
         compare (a.Sim.Engine.proc, a.Sim.Engine.start)
           (b.Sim.Engine.proc, b.Sim.Engine.start))
       o.Sim.Engine.segments)

let () = main ()
