(* Heavy safety fuzz: Algorithm 1 (and Naive) must upper-bound every
   simulated execution across many random systems and fault profiles. *)
module Happ = Mcmap_hardening.Happ
module S = Mcmap_sched
module A = Mcmap_analysis
module Sim = Mcmap_sim

let () =
  let n = int_of_string Sys.argv.(1) in
  let violations = ref 0 in
  for seed = 0 to n - 1 do
    let { Mcmap_gen.Gen.arch; apps; plan; _ } =
      Mcmap_gen.Gen.random_system seed in
    let happ = Happ.build arch apps plan in
    let js = S.Jobset.build ~hyperperiods:(1 + (seed mod 2)) happ in
    let ctx = S.Bounds.make js in
    let report = A.Wcrt.analyze ctx in
    let naive = A.Naive.analyze ctx in
    let covers bound observed =
      match observed with
      | None -> true
      | Some r -> float_of_int r <= A.Verdict.to_float bound in
    let check_outcome label (o : Sim.Engine.outcome) =
      Array.iteri
        (fun g resp ->
          if not (covers report.A.Wcrt.wcrt.(g) resp) then begin
            incr violations;
            Printf.printf "VIOLATION seed=%d %s g%d: sim=%s bound=%s\n" seed
              label g
              (match resp with Some r -> string_of_int r | None -> "-")
              (Format.asprintf "%a" A.Verdict.pp report.A.Wcrt.wcrt.(g))
          end;
          if not (covers naive.(g) resp) then begin
            incr violations;
            Printf.printf "NAIVE VIOLATION seed=%d %s g%d\n" seed label g
          end)
        o.Sim.Engine.graph_response in
    check_outcome "all" (Sim.Engine.run js ~profile:Sim.Fault_profile.all);
    check_outcome "adhoc"
      (Sim.Engine.run ~start_critical:true js
         ~profile:Sim.Fault_profile.all);
    for p = 0 to 7 do
      let profile = Sim.Fault_profile.random ~seed:(seed * 100 + p) ~bias:0.5 js in
      check_outcome "rand" (Sim.Engine.run js ~profile);
      check_outcome "rand-dur"
        (Sim.Engine.run ~mode:(Sim.Engine.Random_durations (seed + p)) js
           ~profile)
    done
  done;
  Printf.printf "fuzz done: %d systems, %d violations\n" n !violations
