(* mcmap command-line interface: analyze | simulate | explore |
   experiments | campaign | check | stats | lint | list. *)

module B = Mcmap_benchmarks
module H = Mcmap_hardening
module S = Mcmap_sched
module A = Mcmap_analysis
module R = Mcmap_reliability
module Sim = Mcmap_sim
module D = Mcmap_dse
module E = Mcmap_experiments
module Spec = Mcmap_spec.Spec
module L = Mcmap_lint
module Obs = Mcmap_obs.Obs
module Flight = Mcmap_obs.Flight
module Histogram = Mcmap_obs.Histogram
module K = Mcmap_benchkit.Kernels
module Bschema = Mcmap_benchkit.Schema
module Bdiff = Mcmap_benchkit.Diff
module Bloadgen = Mcmap_benchkit.Loadgen
module Sv = Mcmap_serve
module Sexp = Mcmap_util.Sexp
module Texttable = Mcmap_util.Texttable

open Cmdliner

(* Every long-running subcommand takes --trace/--metrics/--flight;
   --trace/--metrics turn the metrics recorder on for the duration of
   the run and dump the requested exports afterwards; --flight arms the
   flight recorder and dumps its event ring only when the run goes
   wrong (nonzero exit, uncaught exception or fatal signal). *)
let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record spans and write a Chrome trace-event JSON to \
                 $(docv) (load it in chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Record metrics and write an s-expression dump to \
                 $(docv) (pretty-print it with 'mcmap stats').")

let flight_arg =
  Arg.(value & opt (some string) None
       & info [ "flight" ] ~docv:"FILE"
           ~doc:"Arm the flight recorder: keep a bounded ring of recent \
                 events (spans, cache decisions, verdict flips) and \
                 write it to $(docv) only if the run fails — nonzero \
                 exit, uncaught exception or SIGTERM/SIGINT.")

let with_obs trace metrics flight run =
  (match flight with
   | Some path ->
     Flight.arm ();
     Flight.install_crash_handlers ~path ()
   | None -> ());
  let finish code =
    (match flight with
     | Some path when code <> 0 ->
       Flight.dump path;
       Printf.eprintf "flight recorder dumped to %s (exit %d)\n%!" path
         code
     | Some _ | None -> ());
    code in
  match trace, metrics with
  | None, None -> finish (run ())
  | _ ->
    Obs.enable ();
    let code = run () in
    let snapshot = Obs.snapshot () in
    Obs.disable ();
    Option.iter
      (fun path ->
        Obs.write_metrics ~snapshot path;
        Printf.printf "metrics dump written to %s\n%!" path)
      metrics;
    Option.iter
      (fun path ->
        Obs.write_trace ~snapshot path;
        Printf.printf "chrome trace written to %s\n%!" path)
      trace;
    finish code

let bench_arg =
  let doc =
    "Benchmark name: " ^ String.concat ", " B.Registry.names ^ "." in
  Arg.(value & opt string "cruise" & info [ "b"; "benchmark" ] ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let ga_config ?(domains = 1) ?(eval_cache = 4096)
    ?(engine = D.Evaluator.Flat) population offspring generations seed =
  { D.Ga.default_config with
    D.Ga.population; offspring; generations; seed; domains; eval_cache;
    engine }

let engine_arg =
  let engine_conv =
    Arg.enum [ ("flat", D.Evaluator.Flat); ("reference", D.Evaluator.Reference) ]
  in
  Arg.(value & opt engine_conv D.Evaluator.Flat
       & info [ "engine" ]
           ~doc:"Algorithm 1 fixed-point engine: $(b,flat) (default, the \
                 zero-allocation flat kernel) or $(b,reference) (the \
                 original record-based analysis). Both produce identical \
                 results; reference exists as the differential oracle.")

let population_arg =
  Arg.(value & opt int 40 & info [ "population" ] ~doc:"GA archive size.")

let offspring_arg =
  Arg.(value & opt int 40
       & info [ "offspring" ] ~doc:"GA offspring per generation.")

let generations_arg =
  Arg.(value & opt int 40 & info [ "generations" ] ~doc:"GA generations.")

(* simulate is a quick look (1,000 profiles); the experiment
   reproduction defaults to the paper's 10,000. *)
let profiles_arg ~default =
  Arg.(value & opt int default
       & info [ "profiles" ]
           ~doc:"Monte-Carlo failure profiles (the paper uses 10000).")

let find_benchmark name =
  match B.Registry.find name with
  | Some b -> Ok b
  | None ->
    Error
      (Format.asprintf "unknown benchmark %s (expected one of: %s)" name
         (String.concat ", " B.Registry.names))

let system_arg =
  Arg.(value & opt (some file) None
       & info [ "system" ]
           ~doc:"Analyse a system description file instead of a built-in                  benchmark (see lib/spec and examples/specs).")

let plan_arg =
  Arg.(value & opt (some file) None
       & info [ "plan" ]
           ~doc:"A plan file to analyse with --system; without it a                  balanced seeded plan is derived.")

let no_lint_arg =
  Arg.(value & flag
       & info [ "no-lint" ]
           ~doc:"Skip the static lint gate run over --system/--plan \
                 files before the analysis.")

(* Refuse to analyse files with error-severity diagnostics: a dangling
   endpoint or colliding replicas would otherwise surface as an
   exception (or silently wrong numbers) deep inside the pipeline. *)
let lint_gate ~system ?plan () =
  match L.Lint.lint_files ~system ?plan () with
  | Error _ as err -> err
  | Ok ds ->
    let errors = L.Diagnostic.error_count ds in
    if errors = 0 then Ok ()
    else begin
      prerr_string (L.Diagnostic.render_human ds);
      Error
        (Format.asprintf
           "%d lint error%s — fix the file or pass --no-lint to bypass \
            the gate"
           errors
           (if errors = 1 then "" else "s"))
    end

(* Resolve --system/--plan or fall back to a built-in benchmark with a
   seeded balanced plan. *)
let resolve_problem ?(no_lint = false) bench_name system_file plan_file
    seed =
  match system_file with
  | None ->
    (match find_benchmark bench_name with
     | Error _ as err -> err
     | Ok bench ->
       let arch = bench.B.Benchmark.arch
       and apps = bench.B.Benchmark.apps in
       Ok (arch, apps, B.Sampler.balanced_plan ~seed arch apps))
  | Some path ->
    let gate =
      if no_lint then Ok ()
      else lint_gate ~system:path ?plan:plan_file () in
    (match gate with
     | Error _ as err -> err
     | Ok () ->
       match Spec.load_system path with
       | Error e -> Error (path ^ ": " ^ e)
       | Ok system ->
         let arch = system.Spec.arch and apps = system.Spec.apps in
         (match plan_file with
          | None -> Ok (arch, apps, B.Sampler.balanced_plan ~seed arch apps)
          | Some plan_path ->
            (match Spec.load_plan system plan_path with
             | Error e -> Error (plan_path ^ ": " ^ e)
             | Ok plan -> Ok (arch, apps, plan))))

let list_cmd =
  let run () =
    List.iter
      (fun name ->
        let b = B.Registry.find_exn name in
        Format.printf "%-12s %d graphs, %d tasks, %d processors, %s@."
          name
          (Mcmap_model.Appset.n_graphs b.B.Benchmark.apps)
          (Mcmap_model.Appset.total_tasks b.B.Benchmark.apps)
          (Mcmap_model.Arch.n_procs b.B.Benchmark.arch)
          (Mcmap_model.Interconnect.describe
             b.B.Benchmark.arch.Mcmap_model.Arch.interconnect))
      B.Registry.names in
  Cmd.v (Cmd.info "list" ~doc:"List available benchmarks")
    Term.(const (fun () -> run (); 0) $ const ())

let analyze_run bench_name system_file plan_file seed no_lint trace
    metrics flight =
  with_obs trace metrics flight @@ fun () ->
  match resolve_problem ~no_lint bench_name system_file plan_file seed with
  | Error e -> prerr_endline e; 1
  | Ok (arch, apps, plan) ->
    let happ = H.Happ.build arch apps plan in
    let js = S.Jobset.build happ in
    let ctx = S.Bounds.make js in
    let report = A.Wcrt.analyze ctx in
    let naive = A.Naive.analyze ctx in
    Format.printf "%a@." (A.Wcrt.pp_report js) report;
    Format.printf "schedulable: %b@." (A.Wcrt.schedulable js report);
    Array.iteri
      (fun g v -> Format.printf "naive g%d: %a@." g A.Verdict.pp v)
      naive;
    (match R.Analysis.violations arch apps plan with
     | [] -> Format.printf "reliability: all constraints met@."
     | vs ->
       List.iter
         (fun v ->
           Format.printf "reliability: %a@." R.Analysis.pp_violation v)
         vs);
    0

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run Algorithm 1 on a benchmark mapping or a system file")
    Term.(const analyze_run $ bench_arg $ system_arg $ plan_arg
          $ seed_arg $ no_lint_arg $ trace_arg $ metrics_arg $ flight_arg)

let simulate_run bench_name system_file plan_file seed no_lint profiles
    distribution trace metrics flight =
  with_obs trace metrics flight @@ fun () ->
  match resolve_problem ~no_lint bench_name system_file plan_file seed with
  | Error e -> prerr_endline e; 1
  | Ok (arch, apps, plan) ->
    let happ = H.Happ.build arch apps plan in
    let js = S.Jobset.build happ in
    let adhoc = Sim.Adhoc.run js in
    let mc = Sim.Monte_carlo.run ~profiles ~seed js in
    Format.printf "%d Monte-Carlo profiles, %d entered the critical state@."
      mc.Sim.Monte_carlo.profiles mc.Sim.Monte_carlo.criticals;
    Array.iteri
      (fun g a ->
        let cell = function
          | Some x -> string_of_int x
          | None -> "-" in
        Format.printf "graph %d: adhoc=%s wc-sim=%s@." g (cell a)
          (cell mc.Sim.Monte_carlo.graph_wcrt.(g)))
      adhoc;
    if distribution then begin
      Format.printf
        "@.response-time distribution under physical fault rates:@.";
      let d = Sim.Distribution.run ~runs:profiles ~seed js in
      print_string (Sim.Distribution.render js d)
    end;
    0

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Adhoc trace and Monte-Carlo simulation of a mapping")
    Term.(const simulate_run $ bench_arg $ system_arg $ plan_arg $ seed_arg
          $ no_lint_arg $ profiles_arg ~default:1000
          $ Arg.(value & flag
                 & info [ "distribution" ]
                     ~doc:"Also estimate the response-time distribution \
                           under physical fault rates (the probabilistic \
                           analysis style of Table 1's ref [5]).")
          $ trace_arg $ metrics_arg $ flight_arg)

let explore_run bench_name population offspring generations seed domains
    eval_cache engine quiet no_lint trace metrics flight =
  with_obs trace metrics flight @@ fun () ->
  match find_benchmark bench_name with
  | Error e -> prerr_endline e; 1
  | Ok bench ->
    (* Benchmarks have no file to lint; round-trip through the spec
       writer so the same gate covers them. *)
    let lint_ok =
      no_lint
      ||
      let text =
        Spec.write_system
          { Spec.arch = bench.B.Benchmark.arch;
            apps = bench.B.Benchmark.apps } in
      let ds, _ = L.Lint.lint_system ~file:bench_name text in
      let errors = L.Diagnostic.error_count ds in
      if errors > 0 then prerr_string (L.Diagnostic.render_human ds);
      errors = 0 in
    if not lint_ok then begin
      prerr_endline
        "benchmark failed the lint gate (pass --no-lint to bypass)";
      1
    end
    else begin
    let config =
      ga_config ~domains ~eval_cache ~engine population offspring
        generations seed in
    let on_generation (p : D.Explore.progress) =
      if not quiet then
        Printf.printf
          "generation %3d/%d: archive %d/%d feasible, best power %s, \
           hypervolume %.4f\n%!"
          p.D.Explore.generation config.D.Ga.generations
          p.D.Explore.archive_feasible p.D.Explore.archive_size
          (match p.D.Explore.best_power with
           | Some power -> Printf.sprintf "%.3f" power
           | None -> "-")
          p.D.Explore.hypervolume in
    let summary =
      D.Explore.run ~config ~on_generation bench.B.Benchmark.arch
        bench.B.Benchmark.apps in
    let stats = summary.D.Explore.stats in
    Format.printf
      "%d evaluations, %d feasible, rescue ratio %.2f%%, re-execution \
       share %.2f%%@."
      stats.D.Ga.evaluations stats.D.Ga.feasible_evaluations
      summary.D.Explore.rescue_ratio_pct summary.D.Explore.reexec_share_pct;
    (match summary.D.Explore.best_power with
     | Some p -> Format.printf "best feasible power: %.3f@." p
     | None -> Format.printf "no feasible solution found@.");
    List.iter
      (fun (plan, power, service) ->
        Format.printf "pareto: power=%.3f service=%.1f dropped=[%s]@."
          power service
          (String.concat ","
             (List.map string_of_int (H.Plan.dropped_graphs plan))))
      summary.D.Explore.pareto;
    0
    end

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:"SPEA2 design-space exploration of a benchmark")
    Term.(const explore_run $ bench_arg $ population_arg $ offspring_arg
          $ generations_arg $ seed_arg
          $ Arg.(value & opt int 1
                 & info [ "domains" ]
                     ~doc:"Domains evaluating candidates in parallel \
                           (results are identical for any count).")
          $ Arg.(value & opt int 4096
                 & info [ "eval-cache" ]
                     ~doc:"Evaluator-session result-cache capacity \
                           (0 disables caching).")
          $ engine_arg
          $ Arg.(value & flag
                 & info [ "quiet" ]
                     ~doc:"Suppress the per-generation progress lines.")
          $ no_lint_arg $ trace_arg $ metrics_arg $ flight_arg)

let gantt_run bench_name system_file plan_file seed no_lint bias trace
    metrics flight =
  with_obs trace metrics flight @@ fun () ->
  match resolve_problem ~no_lint bench_name system_file plan_file seed with
  | Error e -> prerr_endline e; 1
  | Ok (arch, apps, plan) ->
    let happ = H.Happ.build arch apps plan in
    let js = S.Jobset.build happ in
    let show label profile =
      Format.printf "@.== %s ==@." label;
      let o = Sim.Engine.run js ~profile in
      print_string (Sim.Gantt.render js o) in
    show "fault-free" Sim.Fault_profile.none;
    show
      (Format.asprintf "random faults (bias %.2f)" bias)
      (Sim.Fault_profile.random ~seed ~bias js);
    show "all faults (adhoc stress)" Sim.Fault_profile.all;
    0

let gantt_cmd =
  Cmd.v
    (Cmd.info "gantt"
       ~doc:"Render ASCII Gantt charts of simulated schedules")
    Term.(const gantt_run $ bench_arg $ system_arg $ plan_arg $ seed_arg
          $ no_lint_arg
          $ Arg.(value & opt float 0.3
                 & info [ "bias" ] ~doc:"Fault bias of the random profile.")
          $ trace_arg $ metrics_arg $ flight_arg)

let experiment_names =
  [ "fig1"; "table2"; "dropping"; "rescue"; "fig5"; "table1";
    "sensitivity"; "optimizers" ]

let only_arg =
  let doc =
    "Run only the given experiment: "
    ^ String.concat ", " experiment_names ^ "." in
  Arg.(value & opt (some string) None & info [ "only" ] ~doc)

(* Announce a section and flush: the computation behind it can run for
   minutes, and a block-buffered stdout (pipes, CI logs) would
   otherwise show nothing until the whole run ends. *)
let section title =
  print_endline title;
  flush stdout

let experiments_run only profiles population offspring generations seed
    trace metrics flight =
  with_obs trace metrics flight @@ fun () ->
  let config = ga_config population offspring generations seed in
  let wanted name =
    match only with None -> true | Some o -> o = name in
  let bad_only =
    match only with
    | Some o when not (List.mem o experiment_names) -> true
    | Some _ | None -> false in
  if bad_only then begin
    prerr_endline
      ("unknown experiment (expected one of: "
       ^ String.concat ", " experiment_names ^ ")");
    1
  end
  else begin
    if wanted "fig1" then begin
      section "== E5: Figure 1 (motivational example) ==";
      print_string (E.Fig1.render (E.Fig1.run ()))
    end;
    if wanted "table2" then begin
      section "== E1: Table 2 (WCRT of the critical Cruise apps) ==";
      print_string (E.Table2.render (E.Table2.run ~profiles ~seed ()))
    end;
    if wanted "dropping" then begin
      section "== E2: power with vs without task dropping ==";
      print_string (E.Dropping.render (E.Dropping.run ~config ()))
    end;
    if wanted "rescue" then begin
      section "== E3: solutions rescued by task dropping ==";
      print_string (E.Rescue.render (E.Rescue.run ~config ()))
    end;
    if wanted "fig5" then begin
      section "== E4: Figure 5 (power/service Pareto front) ==";
      print_string (E.Fig5.render (E.Fig5.run ~config ()))
    end;
    if wanted "table1" then begin
      section
        "== E6 (extension): static scheduling baseline (Table 1) ==";
      print_string (E.Table1.render (E.Table1.run ~seed ()))
    end;
    if wanted "optimizers" then begin
      section
        "== E8 (extension): optimizers on an equal evaluation budget ==";
      print_string (E.Optimizers.render (E.Optimizers.run ~seed ()))
    end;
    if wanted "sensitivity" then begin
      section "== E7 (extension): sensitivity & ablations ==";
      section "-- re-execution budget sweep (cruise) --";
      print_string (E.Sensitivity.render_k_sweep (E.Sensitivity.k_sweep ~seed ()));
      section "-- priority-order ablation (cruise) --";
      print_string
        (E.Sensitivity.render_priority (E.Sensitivity.priority_ablation ~seed ()))
    end;
    0
  end

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures")
    Term.(const experiments_run $ only_arg $ profiles_arg ~default:10_000
          $ population_arg
          $ offspring_arg $ generations_arg $ seed_arg $ trace_arg
          $ metrics_arg $ flight_arg)

let check_run count seed oracle corpus trace metrics flight =
  with_obs trace metrics flight @@ fun () ->
  let module C = Mcmap_check in
  let oracles =
    match oracle with
    | None -> Ok C.Oracles.all
    | Some name ->
      (match C.Oracles.find name with
       | Some o -> Ok [ o ]
       | None ->
         Error
           (Format.asprintf "unknown oracle %s (expected one of: %s)" name
              (String.concat ", "
                 (List.map
                    (fun (o : C.Oracles.t) -> o.C.Oracles.name)
                    C.Oracles.all)))) in
  match oracles with
  | Error e -> prerr_endline e; 1
  | Ok oracles ->
    List.iter
      (fun (o : C.Oracles.t) ->
        Format.printf "oracle %-22s %s@." o.C.Oracles.name o.C.Oracles.doc)
      oracles;
    let on_failure f =
      Format.printf "@.%a@." C.Runner.pp_failure f;
      match corpus with
      | None -> ()
      | Some path ->
        if C.Runner.append_corpus path f then
          Format.printf "recorded seed %d in %s@." f.C.Runner.seed path in
    (* ~10 progress lines over the whole run, flushed so they show up
       promptly when stdout is a pipe (CI logs). *)
    let step = max 1 (count / 10) in
    let on_trial i =
      if i > 0 && i mod step = 0 then
        Printf.printf "progress: %d/%d systems checked\n%!" i count in
    let report = C.Runner.run ~oracles ~on_failure ~on_trial ~seed ~count () in
    Format.printf "@.%a@." C.Runner.pp_report report;
    if C.Runner.ok report then 0 else 1

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Cross-validate the WCRT analysis, the simulator and the \
          reliability model on random systems; failures are shrunk to \
          minimal counterexamples")
    Term.(const check_run
          $ Arg.(value & opt int 100
                 & info [ "count" ] ~doc:"Number of random systems.")
          $ seed_arg
          $ Arg.(value & opt (some string) None
                 & info [ "oracle" ] ~doc:"Run only the named oracle.")
          $ Arg.(value & opt (some string) None
                 & info [ "corpus" ]
                     ~doc:"Append failing seeds to this regression corpus \
                           file (see test/corpus/seeds.txt).")
          $ trace_arg $ metrics_arg $ flight_arg)

(* ------------------------------------------------------------------ *)
(* campaign: fault-injection reliability estimation *)

let campaign_action =
  let actions =
    [ ("plan", `Plan); ("run", `Run); ("report", `Report) ] in
  Arg.(value & pos 0 (enum actions) `Run
       & info [] ~docv:"ACTION"
           ~doc:
             "$(b,plan) prints the shard plan without running anything; \
              $(b,run) (the default) executes the campaign; $(b,report) \
              aggregates an existing --checkpoint without executing.")

let campaign_print_plan (p : Mcmap_campaign.Shard.plan) =
  Array.iteri
    (fun gi (g : Mcmap_campaign.Events.graph) ->
      Format.printf "graph %d (%s): closed form %.3e@." gi
        g.Mcmap_campaign.Events.name g.Mcmap_campaign.Events.closed_form;
      let t =
        Texttable.create ~header:[ "stratum"; "pi"; "shards"; "trials" ]
      in
      let pi = Mcmap_campaign.Estimator.strata p.Mcmap_campaign.Shard.estimators.(gi) in
      Array.iteri
        (fun s prob ->
          if s >= 1 && prob > 0. then begin
            let shards, trials =
              Array.fold_left
                (fun (n, tr) (sh : Mcmap_campaign.Shard.shard) ->
                  if sh.Mcmap_campaign.Shard.graph = gi
                     && sh.Mcmap_campaign.Shard.stratum = s then
                    (n + 1, tr + sh.Mcmap_campaign.Shard.trials)
                  else (n, tr))
                (0, 0) p.Mcmap_campaign.Shard.shards in
            Texttable.add_row t
              [ string_of_int s; Printf.sprintf "%.3e" prob;
                string_of_int shards; string_of_int trials ]
          end)
        pi;
      Texttable.print t)
    p.Mcmap_campaign.Shard.graphs;
  Format.printf "%d shards total, %d strata below the probability floor@."
    (Array.length p.Mcmap_campaign.Shard.shards)
    (List.length p.Mcmap_campaign.Shard.skipped)

let campaign_emit report_file (outcome : Mcmap_campaign.Campaign.outcome) =
  print_string (Mcmap_campaign.Aggregate.render outcome.Mcmap_campaign.Campaign.report);
  if outcome.Mcmap_campaign.Campaign.replayed > 0 then
    Format.printf "%d shards replayed from the checkpoint, %d executed@."
      outcome.Mcmap_campaign.Campaign.replayed
      outcome.Mcmap_campaign.Campaign.executed;
  Option.iter
    (fun path ->
      Mcmap_campaign.Aggregate.write ~path
        outcome.Mcmap_campaign.Campaign.report;
      Printf.printf "campaign report written to %s\n%!" path)
    report_file;
  0

let campaign_run_cmd bench_name system_file plan_file seed no_lint action
    trials shard_trials inflate inflate_mean domains checkpoint resume
    report_file z trace metrics flight =
  with_obs trace metrics flight @@ fun () ->
  match resolve_problem ~no_lint bench_name system_file plan_file seed with
  | Error e -> prerr_endline e; 1
  | Ok (arch, apps, plan) ->
    let module C = Mcmap_campaign in
    let config =
      { C.Shard.default_config with
        C.Shard.trials; shard_trials; seed; inflate; inflate_mean; z } in
    (match action with
     | `Plan ->
       campaign_print_plan (C.Campaign.plan config arch apps plan);
       0
     | `Report ->
       (match checkpoint with
        | None ->
          prerr_endline "campaign report needs --checkpoint";
          1
        | Some ckpt ->
          (match
             C.Campaign.report_from_checkpoint ~checkpoint:ckpt config
               arch apps plan
           with
           | Error e -> prerr_endline e; 1
           | Ok outcome -> campaign_emit report_file outcome))
     | `Run ->
       (match
          C.Campaign.run ~domains ?checkpoint ~resume config arch apps
            plan
        with
        | Error e -> prerr_endline e; 1
        | Ok outcome -> campaign_emit report_file outcome))

let campaign_cmd =
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Estimate per-graph failure probabilities by stratified \
          importance-sampling fault injection, sharded over domains and \
          resumable from an append-only checkpoint; cross-validates the \
          closed-form reliability model at rare-event rates")
    Term.(const campaign_run_cmd $ bench_arg $ system_arg $ plan_arg
          $ seed_arg $ no_lint_arg $ campaign_action
          $ Arg.(value & opt int 200_000
                 & info [ "trials" ]
                     ~doc:"Trial budget per graph, split across strata.")
          $ Arg.(value & opt int 4096
                 & info [ "shard-trials" ]
                     ~doc:"Trials per shard (the unit of parallelism, \
                           checkpointing and resume).")
          $ Arg.(value & opt float 0.2
                 & info [ "inflate" ]
                     ~doc:"Proposal floor for per-event fault \
                           probabilities (importance sampling).")
          $ Arg.(value & opt float 0.5
                 & info [ "inflate-mean" ]
                     ~doc:"Proposal floor for Poisson fault-count means \
                           (checkpointed tasks).")
          $ Arg.(value
                 & opt int (Mcmap_util.Parallel.recommended_domains ())
                 & info [ "domains" ]
                     ~doc:"Worker domains executing shards in parallel.")
          $ Arg.(value & opt (some string) None
                 & info [ "checkpoint" ] ~docv:"FILE"
                     ~doc:"Append completed shards to $(docv) after every \
                           batch; with --resume, restore them instead of \
                           re-running.")
          $ Arg.(value & flag
                 & info [ "resume" ]
                     ~doc:"Resume from --checkpoint: completed shards are \
                           replayed bit-for-bit, only the rest execute.")
          $ Arg.(value & opt (some string) None
                 & info [ "report" ] ~docv:"FILE"
                     ~doc:"Write the machine-readable campaign report \
                           (s-expressions, hexadecimal floats, no wall \
                           times) to $(docv).")
          $ Arg.(value & opt float 1.96
                 & info [ "z" ]
                     ~doc:"Normal quantile of the per-stratum confidence \
                           interval.")
          $ trace_arg $ metrics_arg $ flight_arg)

(* ------------------------------------------------------------------ *)
(* stats: pretty-print a --metrics dump *)

let float_cell = Printf.sprintf "%.4g"

let render_metrics_snapshot snapshot =
    let counters, gauges, histograms, serieses =
      List.fold_left
        (fun (cs, gs, hs, ss) (name, metric) ->
          match metric with
          | Obs.Counter v -> ((name, v) :: cs, gs, hs, ss)
          | Obs.Gauge v -> (cs, (name, v) :: gs, hs, ss)
          | Obs.Histogram h -> (cs, gs, (name, h) :: hs, ss)
          | Obs.Series points -> (cs, gs, hs, (name, points) :: ss))
        ([], [], [], []) (List.rev snapshot.Obs.metrics) in
    if counters <> [] then begin
      section "counters:";
      let t = Texttable.create ~header:[ "counter"; "value" ] in
      List.iter
        (fun (name, v) -> Texttable.add_row t [ name; string_of_int v ])
        counters;
      Texttable.print t
    end;
    if gauges <> [] then begin
      section "gauges:";
      let t = Texttable.create ~header:[ "gauge"; "value" ] in
      List.iter
        (fun (name, v) -> Texttable.add_row t [ name; float_cell v ])
        gauges;
      Texttable.print t
    end;
    if histograms <> [] then begin
      section "histograms:";
      let t =
        Texttable.create
          ~header:
            [ "histogram"; "count"; "mean"; "min"; "p50"; "p90"; "p99";
              "max" ] in
      List.iter
        (fun (name, h) ->
          let q p =
            if Histogram.is_empty h then "-"
            else string_of_int (Histogram.quantile h p) in
          Texttable.add_row t
            [ name; string_of_int h.Histogram.count;
              float_cell (Histogram.mean h);
              (if Histogram.is_empty h then "-"
               else string_of_int h.Histogram.minimum);
              q 0.5; q 0.9; q 0.99;
              (if Histogram.is_empty h then "-"
               else string_of_int h.Histogram.maximum) ])
        histograms;
      Texttable.print t
    end;
    List.iter
      (fun (name, points) ->
        section (Printf.sprintf "series %s:" name);
        let t = Texttable.create ~header:[ "x"; "value" ] in
        List.iter
          (fun (x, v) -> Texttable.add_row t [ string_of_int x; float_cell v ])
          points;
        Texttable.print t)
      serieses;
    if snapshot.Obs.metrics = [] then print_endline "(empty metrics dump)";
    0

let stats_run file =
  let input = In_channel.with_open_text file In_channel.input_all in
  match Result.bind (Sexp.parse_one input) Obs.metrics_of_sexp with
  | Error e -> prerr_endline (file ^ ": " ^ e); 1
  | Ok snapshot -> render_metrics_snapshot snapshot

(* ------------------------------------------------------------------ *)
(* serve: the persistent analysis daemon, and its client *)

let connect_arg =
  Arg.(value & opt (some string) None
       & info [ "connect" ] ~docv:"ADDR"
           ~doc:"Server address: a Unix-domain socket path, or \
                 $(b,HOST:PORT) for TCP.")

let new_request c deadline_ms no_lint body =
  { Sv.Protocol.id = Sv.Client.fresh_id c; deadline_ms; no_lint; body }

(* Connect, run [f] over the connection, close. *)
let with_client addr_str f =
  match Sv.Protocol.parse_addr addr_str with
  | Error e -> prerr_endline e; 2
  | Ok addr ->
    (match Sv.Client.connect addr with
     | Error e -> prerr_endline e; 2
     | Ok c -> Fun.protect ~finally:(fun () -> Sv.Client.close c)
                 (fun () -> f c))

let live_stats_snapshot c =
  match
    Sv.Client.call c
      (new_request c None true Sv.Protocol.Stats)
  with
  | Ok { Sv.Protocol.r_body = Sv.Protocol.Stats_snapshot s; _ } ->
    Obs.metrics_of_sexp s
  | Ok _ -> Error "unexpected response to stats"
  | Error _ as e -> e

let serve_run listen workers queue pool session_domains max_frame
    max_population deadline_ms trace metrics flight =
  with_obs trace metrics flight @@ fun () ->
  match Sv.Protocol.parse_addr listen with
  | Error e -> prerr_endline e; 2
  | Ok addr ->
    let cfg =
      { (Sv.Server.default_config addr) with
        Sv.Server.workers;
        queue_capacity = queue;
        pool_capacity = pool;
        session_domains;
        max_frame;
        max_population;
        default_deadline_ms = deadline_ms;
        handle_signals = true } in
    (try
       Sv.Server.run
         ~on_ready:(fun a ->
           Printf.printf
             "mcmap serve: listening on %s (%d workers, queue %d, \
              pool %d)\n%!"
             (Sv.Protocol.addr_to_string a) workers queue pool)
         cfg;
       print_endline "mcmap serve: shut down cleanly";
       0
     with Unix.Unix_error (err, fn, arg) ->
       Printf.eprintf "mcmap serve: %s %s: %s\n%!" fn arg
         (Unix.error_message err);
       1)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent analysis daemon: a socket server sharing \
          one warm evaluator-session pool across all clients, with \
          lint gating on ingest, a bounded work queue with per-request \
          deadlines, and live metrics served over the protocol \
          (DESIGN.md section 14)")
    Term.(const serve_run
          $ Arg.(value & opt string "mcmap.sock"
                 & info [ "listen" ] ~docv:"ADDR"
                     ~doc:"Address to listen on: a Unix-domain socket \
                           path, or $(b,HOST:PORT) for TCP (port 0 \
                           picks an ephemeral port, printed on \
                           startup).")
          $ Arg.(value & opt int 4
                 & info [ "workers" ]
                     ~doc:"Worker domains evaluating requests.")
          $ Arg.(value & opt int 64
                 & info [ "queue" ]
                     ~doc:"Work-queue bound; further requests are \
                           rejected, not blocked.")
          $ Arg.(value & opt int 8
                 & info [ "pool" ]
                     ~doc:"Evaluator sessions kept warm (LRU beyond \
                           this).")
          $ Arg.(value & opt int 1
                 & info [ "session-domains" ]
                     ~doc:"Domains per pooled session's population \
                           fan-out.")
          $ Arg.(value & opt int Mcmap_util.Wire.default_max_frame
                 & info [ "max-frame" ] ~docv:"BYTES"
                     ~doc:"Largest accepted request frame.")
          $ Arg.(value & opt int 4096
                 & info [ "max-population" ]
                     ~doc:"Largest accepted eval-population request.")
          $ Arg.(value & opt (some int) None
                 & info [ "deadline-ms" ] ~docv:"MS"
                     ~doc:"Default queue deadline applied to requests \
                           that carry none.")
          $ trace_arg $ metrics_arg $ flight_arg)

let client_system_forms bench_name system_file =
  match system_file with
  | Some path ->
    Result.bind (Spec.read_file path) Sexp.parse
  | None ->
    (match find_benchmark bench_name with
     | Error _ as e -> e
     | Ok b ->
       Sexp.parse
         (Spec.write_system
            { Spec.arch = b.B.Benchmark.arch;
              apps = b.B.Benchmark.apps }))

let client_plan_form path =
  Result.bind (Spec.read_file path) Sexp.parse_one

let print_analysis (a : Sv.Protocol.analysis) =
  Printf.printf
    "power: %.6g\nservice: %.6g\nschedulable: %b\nreliable: %b\n\
     violation: %.6g\nrescued: %b\n"
    a.Sv.Protocol.a_power a.Sv.Protocol.a_service
    a.Sv.Protocol.a_schedulable a.Sv.Protocol.a_reliable
    a.Sv.Protocol.a_violation a.Sv.Protocol.a_rescued

let client_call c deadline_ms no_lint body on_ok =
  match Sv.Client.call c (new_request c deadline_ms no_lint body) with
  | Error e -> prerr_endline e; 2
  | Ok { Sv.Protocol.r_body = Sv.Protocol.Rejected reason; _ } ->
    prerr_endline ("rejected: " ^ reason); 3
  | Ok { Sv.Protocol.r_body = Sv.Protocol.Error_response msg; _ } ->
    prerr_endline ("error: " ^ msg); 1
  | Ok resp -> on_ok resp.Sv.Protocol.r_body

let client_run action addr_str bench_name system_file plan_files
    deadline_ms no_lint =
  match addr_str with
  | None -> prerr_endline "client needs --connect ADDR"; 2
  | Some addr_str ->
    with_client addr_str @@ fun c ->
    let unexpected _ = prerr_endline "unexpected response"; 1 in
    let with_system k =
      match client_system_forms bench_name system_file with
      | Error e -> prerr_endline e; 2
      | Ok forms -> k forms in
    let with_plans k =
      let rec load acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest ->
          (match client_plan_form p with
           | Error e -> Error (p ^ ": " ^ e)
           | Ok f -> load (f :: acc) rest) in
      match load [] plan_files with
      | Error e -> prerr_endline e; 2
      | Ok forms -> k forms in
    (match action with
     | `Ping ->
       client_call c deadline_ms no_lint Sv.Protocol.Ping (function
         | Sv.Protocol.Pong -> print_endline "pong"; 0
         | other -> unexpected other)
     | `Stats ->
       (match live_stats_snapshot c with
        | Error e -> prerr_endline e; 1
        | Ok snapshot -> render_metrics_snapshot snapshot)
     | `Shutdown ->
       client_call c deadline_ms no_lint Sv.Protocol.Shutdown (function
         | Sv.Protocol.Shutting_down ->
           print_endline "server shutting down"; 0
         | other -> unexpected other)
     | `Analyze ->
       with_system @@ fun system ->
       with_plans @@ fun plans ->
       let plan = match plans with [] -> None | p :: _ -> Some p in
       client_call c deadline_ms no_lint
         (Sv.Protocol.Analyze { system; plan })
         (function
           | Sv.Protocol.Analysis a -> print_analysis a; 0
           | other -> unexpected other)
     | `Lint ->
       with_system @@ fun system ->
       with_plans @@ fun plans ->
       let plan = match plans with [] -> None | p :: _ -> Some p in
       client_call c deadline_ms no_lint
         (Sv.Protocol.Lint_request { system; plan })
         (function
           | Sv.Protocol.Lint_report { errors; diags } ->
             List.iter
               (fun d ->
                 Printf.printf "%s[%s]: %s\n"
                   d.Sv.Protocol.d_severity d.Sv.Protocol.d_code
                   d.Sv.Protocol.d_message)
               diags;
             Printf.printf "%d diagnostics, %d errors\n"
               (List.length diags) errors;
             if errors > 0 then 1 else 0
           | other -> unexpected other)
     | `Eval_population ->
       with_system @@ fun system ->
       with_plans @@ fun plans ->
       client_call c deadline_ms no_lint
         (Sv.Protocol.Eval_population { system; plans })
         (function
           | Sv.Protocol.Population results ->
             Array.iteri
               (fun i (a : Sv.Protocol.analysis) ->
                 Printf.printf
                   "[%d] power %.6g service %.6g feasible %b\n" i
                   a.Sv.Protocol.a_power a.Sv.Protocol.a_service
                   (a.Sv.Protocol.a_schedulable
                   && a.Sv.Protocol.a_reliable))
               results;
             0
           | other -> unexpected other))

let client_cmd =
  let action_arg =
    Arg.(required
         & pos 0
             (some
                (enum
                   [ ("ping", `Ping); ("stats", `Stats);
                     ("analyze", `Analyze); ("lint", `Lint);
                     ("eval-population", `Eval_population);
                     ("shutdown", `Shutdown) ]))
             None
         & info [] ~docv:"ACTION"
             ~doc:"One of $(b,ping), $(b,stats), $(b,analyze), \
                   $(b,lint), $(b,eval-population), $(b,shutdown).") in
  let plans_arg =
    Arg.(value & opt_all file []
         & info [ "plan" ] ~docv:"FILE"
             ~doc:"Plan file; repeatable for eval-population. Without \
                   one, analyze asks the server for its balanced seed \
                   plan.") in
  let deadline_arg =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Give up if the request waits longer than $(docv) in \
                   the server queue.") in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running mcmap serve daemon: health checks, live \
          metrics, remote analyses and orderly shutdown")
    Term.(const client_run $ action_arg $ connect_arg $ bench_arg
          $ system_arg $ plans_arg $ deadline_arg $ no_lint_arg)

let stats_cmd =
  let run file connect =
    match connect, file with
    | Some addr_str, _ ->
      with_client addr_str @@ fun c ->
      (match live_stats_snapshot c with
       | Error e -> prerr_endline e; 1
       | Ok snapshot -> render_metrics_snapshot snapshot)
    | None, Some f -> stats_run f
    | None, None ->
      prerr_endline "stats needs a FILE or --connect ADDR";
      2 in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Pretty-print a metrics dump produced by --metrics (counters, \
          gauges, histograms with approximate quantiles, and series), \
          or fetch a live server's snapshot with --connect")
    Term.(const run
          $ Arg.(value & pos 0 (some file) None
                 & info [] ~docv:"FILE"
                     ~doc:"Metrics dump written by a --metrics run.")
          $ connect_arg)

(* ------------------------------------------------------------------ *)
(* lint: static semantic analysis of system/plan files *)

let lint_run system_path plan_path format deny explain =
  match explain with
  | Some code ->
    (match L.Diagnostic.info code with
     | Some i ->
       Format.printf "%s (%s, default %s)@.@.%s@." i.L.Diagnostic.i_code
         i.L.Diagnostic.i_title
         (L.Diagnostic.severity_to_string i.L.Diagnostic.i_severity)
         i.L.Diagnostic.i_doc;
       0
     | None ->
       Format.eprintf "unknown diagnostic code %s@." code;
       1)
  | None ->
    (match L.Lint.lint_files ~system:system_path ?plan:plan_path () with
     | Error e -> prerr_endline e; 2
     | Ok ds ->
       (match format with
        | `Human -> print_string (L.Diagnostic.render_human ds)
        | `Json -> print_string (L.Diagnostic.render_json ds)
        | `Sexp -> print_string (L.Diagnostic.render_sexp ds));
       if L.Diagnostic.error_count ?deny ds > 0 then 1 else 0)

let lint_cmd =
  let format_arg =
    Arg.(value
         & opt
             (enum [ ("human", `Human); ("json", `Json); ("sexp", `Sexp) ])
             `Human
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"Output format: $(b,human), $(b,json) or $(b,sexp).") in
  let deny_arg =
    Arg.(value
         & opt
             (some
                (enum
                   [ ("warning", L.Diagnostic.Warning);
                     ("hint", L.Diagnostic.Hint) ]))
             None
         & info [ "deny" ] ~docv:"LEVEL"
             ~doc:"Treat diagnostics at or above $(docv) as errors: \
                   $(b,warning) promotes warnings, $(b,hint) also \
                   promotes hints.") in
  let explain_arg =
    Arg.(value & opt (some string) None
         & info [ "explain" ] ~docv:"CODE"
             ~doc:"Print the registry entry for a diagnostic code (e.g. \
                   MC004) and exit.") in
  let system_pos =
    (* not Arg.file: --explain works without one, and a missing file is
       a clean error from the driver *)
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"SYSTEM" ~doc:"System description file.") in
  let plan_pos =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"PLAN" ~doc:"Optional plan file.") in
  let run system plan format deny explain =
    match explain, system with
    | None, None ->
      prerr_endline "lint needs a SYSTEM file (or --explain CODE)";
      2
    | _, _ ->
      (match explain with
       | Some _ -> lint_run "" plan format deny explain
       | None -> lint_run (Option.get system) plan format deny explain) in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse a system (and optionally a plan) file: \
          model well-formedness (MC0xx), plan consistency (MC1xx), \
          schedulability necessary conditions (MC2xx) and reliability \
          feasibility (MC3xx); exits non-zero iff an error-severity \
          (or --deny-promoted) diagnostic fires")
    Term.(const run $ system_pos $ plan_pos $ format_arg $ deny_arg
          $ explain_arg)

(* ------------------------------------------------------------------ *)
(* bench: the kernel suite, trend diffing and the CI gate *)

let bench_fast_arg =
  Arg.(value & flag
       & info [ "fast" ]
           ~doc:"Shrink the per-kernel measurement quota (CI smoke \
                 runs; also implied by MCMAP_BENCH_FAST=1).")

let bench_out_arg =
  Arg.(value & opt string "BENCH.json"
       & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the summary.")

let bench_run_cmd =
  let run fast out =
    let fast = fast || K.fast_requested () in
    let kernels = K.run_all ~fast ~progress:print_endline () in
    Bschema.write out
      { Bschema.fast; env = Bschema.env_now (); kernels; metrics = [];
        contracts = K.contracts kernels };
    Printf.printf "benchmark summary written to %s\n%!" out;
    0 in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Measure the Bechamel kernel suite and write a BENCH.json \
          (schema v2: per-kernel dispersion, environment metadata and \
          performance contracts)")
    Term.(const run $ bench_fast_arg $ bench_out_arg)

let bench_file_pos ~docv ~doc p =
  Arg.(required & pos p (some file) None & info [] ~docv ~doc)

let bench_diff_cmd =
  let run old_file new_file min_rel z =
    match Bschema.read old_file, Bschema.read new_file with
    | Error e, _ -> prerr_endline (old_file ^ ": " ^ e); 2
    | _, Error e -> prerr_endline (new_file ^ ": " ^ e); 2
    | Ok old_run, Ok new_run ->
      let entries = Bdiff.diff ~min_rel ~z old_run new_run in
      print_string (Bdiff.render entries);
      if Bdiff.regressions entries = [] then 0 else 1 in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two BENCH.json runs with noise-aware verdicts: a \
          kernel only counts as improved/regressed when its change \
          clears both the --min-rel floor and --z combined standard \
          deviations; exits 1 if any kernel regressed")
    Term.(const run
          $ bench_file_pos ~docv:"OLD" ~doc:"Baseline BENCH.json." 0
          $ bench_file_pos ~docv:"NEW" ~doc:"Candidate BENCH.json." 1
          $ Arg.(value & opt float 0.05
                 & info [ "min-rel" ]
                     ~doc:"Relative-change floor below which a kernel \
                           is always classified as noise.")
          $ Arg.(value & opt float 3.0
                 & info [ "z" ]
                     ~doc:"Combined standard deviations a change must \
                           clear to count as significant."))

let bench_gate_cmd =
  let run file baseline_file =
    match Bschema.read file with
    | Error e -> prerr_endline (file ^ ": " ^ e); 2
    | Ok current ->
      let baseline =
        match baseline_file with
        | None -> Ok None
        | Some path ->
          (match Bschema.read path with
           | Ok b -> Ok (Some b)
           | Error e -> Error (path ^ ": " ^ e)) in
      (match baseline with
       | Error e -> prerr_endline e; 2
       | Ok baseline ->
         (match Bdiff.gate ?baseline current with
          | Ok passes ->
            List.iter (fun p -> print_endline ("PASS " ^ p)) passes;
            0
          | Error failures ->
            List.iter (fun f -> prerr_endline ("FAIL " ^ f)) failures;
            1)) in
  Cmd.v
    (Cmd.info "gate"
       ~doc:
         "Enforce the performance contracts recorded in a BENCH.json \
          (flat engine at least 3x the reference, enabled-recorder \
          overhead at most 2%) and, with --baseline, reject kernel \
          regressions; nonzero exit on any violation")
    Term.(const run
          $ bench_file_pos ~docv:"FILE" ~doc:"BENCH.json to gate." 0
          $ Arg.(value & opt (some file) None
                 & info [ "baseline" ] ~docv:"FILE"
                     ~doc:"Baseline BENCH.json for regression checks."))

(* [mcmap bench serve]: the load generator. Serve kernels MERGE into an
   existing BENCH.json (when one parses) instead of replacing it — the
   gate requires the suite's contracts, so a serve-only file would
   regress CI. *)
let bench_serve_cmd =
  let start_local_server f =
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mcmap-bench-%d.sock" (Unix.getpid ())) in
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let addr = Sv.Protocol.Unix_sock path in
    let ready = Atomic.make false in
    let server =
      Domain.spawn (fun () ->
          Sv.Server.run
            ~on_ready:(fun _ -> Atomic.set ready true)
            (Sv.Server.default_config addr)) in
    let rec await n =
      if Atomic.get ready then ()
      else if n > 5000 then failwith "local bench server did not start"
      else (Unix.sleepf 0.001; await (n + 1)) in
    await 0;
    let result = f addr in
    (match Sv.Client.connect addr with
     | Ok c ->
       ignore
         (Sv.Client.call c
            { Sv.Protocol.id = 1; deadline_ms = None; no_lint = true;
              body = Sv.Protocol.Shutdown });
       Sv.Client.close c
     | Error _ -> ());
    Domain.join server;
    result in
  let run connect clients requests plans bench_name out =
    let load addr =
      Bloadgen.run ~clients ~requests ~distinct_plans:plans
        ~bench:bench_name ~addr () in
    let result =
      match connect with
      | Some addr_str ->
        Result.bind (Sv.Protocol.parse_addr addr_str) load
      | None -> start_local_server load in
    match result with
    | Error e -> prerr_endline e; 2
    | Ok r ->
      let serve_kernels = Bloadgen.kernels r in
      let base =
        match Bschema.read out with
        | Ok b -> b
        | Error _ ->
          { Bschema.fast = K.fast_requested ();
            env = Bschema.env_now (); kernels = []; metrics = [];
            contracts = [] } in
      let kernels =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (List.filter
             (fun (n, _) -> not (List.mem_assoc n serve_kernels))
             base.Bschema.kernels
          @ serve_kernels) in
      Bschema.write out { base with Bschema.kernels };
      let wall_s = Int64.to_float r.Bloadgen.wall_ns /. 1e9 in
      Printf.printf
        "serve load: %d requests in %.2fs (%.0f req/s), %d rejected, \
         %d errors\n"
        r.Bloadgen.requests wall_s
        (if wall_s > 0. then float_of_int r.Bloadgen.requests /. wall_s
         else 0.)
        r.Bloadgen.rejected r.Bloadgen.errors;
      List.iter
        (fun (name, k) ->
          match k.Bschema.ns_per_run with
          | Some ns -> Printf.printf "%-28s %12.0f ns\n" name ns
          | None -> ())
        serve_kernels;
      Printf.printf "serve kernels merged into %s\n%!" out;
      if r.Bloadgen.errors > 0 || r.Bloadgen.requests = 0 then 1 else 0 in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Load-test a serve daemon (N client domains x M requests over \
          a real socket) and merge throughput and latency kernels into \
          BENCH.json; without --connect a private server is started in \
          process for the duration")
    Term.(const run $ connect_arg
          $ Arg.(value & opt int 4
                 & info [ "clients" ] ~doc:"Concurrent client domains.")
          $ Arg.(value & opt int 50
                 & info [ "requests" ] ~doc:"Requests per client.")
          $ Arg.(value & opt int 8
                 & info [ "plans" ]
                     ~doc:"Distinct seeded plans cycled through the \
                           request schedule.")
          $ bench_arg $ bench_out_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:
         "Kernel micro-benchmarks: run the suite, diff two runs with \
          noise-aware verdicts, gate CI on the performance contracts, \
          load-test the serve daemon")
    [ bench_run_cmd; bench_diff_cmd; bench_gate_cmd; bench_serve_cmd ]

let main_cmd =
  let doc =
    "Static mapping of mixed-critical applications for fault-tolerant \
     MPSoCs (Kang et al., DAC 2014)" in
  Cmd.group (Cmd.info "mcmap" ~version:"1.0.0" ~doc)
    [ list_cmd; analyze_cmd; simulate_cmd; gantt_cmd; explore_cmd;
      experiments_cmd; campaign_cmd; check_cmd; stats_cmd; lint_cmd;
      bench_cmd; serve_cmd; client_cmd ]

let () = exit (Cmd.eval' main_cmd)
