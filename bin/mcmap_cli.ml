(* mcmap command-line interface: analyze | simulate | explore |
   experiments | check | list. *)

module B = Mcmap_benchmarks
module H = Mcmap_hardening
module S = Mcmap_sched
module A = Mcmap_analysis
module R = Mcmap_reliability
module Sim = Mcmap_sim
module D = Mcmap_dse
module E = Mcmap_experiments
module Spec = Mcmap_spec.Spec

open Cmdliner

let bench_arg =
  let doc =
    "Benchmark name: " ^ String.concat ", " B.Registry.names ^ "." in
  Arg.(value & opt string "cruise" & info [ "b"; "benchmark" ] ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let ga_config population offspring generations seed =
  { D.Ga.default_config with
    D.Ga.population; offspring; generations; seed }

let population_arg =
  Arg.(value & opt int 40 & info [ "population" ] ~doc:"GA archive size.")

let offspring_arg =
  Arg.(value & opt int 40
       & info [ "offspring" ] ~doc:"GA offspring per generation.")

let generations_arg =
  Arg.(value & opt int 40 & info [ "generations" ] ~doc:"GA generations.")

let profiles_arg =
  Arg.(value & opt int 1000
       & info [ "profiles" ]
           ~doc:"Monte-Carlo failure profiles (the paper uses 10000).")

let find_benchmark name =
  match B.Registry.find name with
  | Some b -> Ok b
  | None ->
    Error
      (Format.asprintf "unknown benchmark %s (expected one of: %s)" name
         (String.concat ", " B.Registry.names))

let system_arg =
  Arg.(value & opt (some file) None
       & info [ "system" ]
           ~doc:"Analyse a system description file instead of a built-in                  benchmark (see lib/spec and examples/specs).")

let plan_arg =
  Arg.(value & opt (some file) None
       & info [ "plan" ]
           ~doc:"A plan file to analyse with --system; without it a                  balanced seeded plan is derived.")

(* Resolve --system/--plan or fall back to a built-in benchmark with a
   seeded balanced plan. *)
let resolve_problem bench_name system_file plan_file seed =
  match system_file with
  | None ->
    (match find_benchmark bench_name with
     | Error _ as err -> err
     | Ok bench ->
       let arch = bench.B.Benchmark.arch
       and apps = bench.B.Benchmark.apps in
       Ok (arch, apps, B.Sampler.balanced_plan ~seed arch apps))
  | Some path ->
    (match Spec.load_system path with
     | Error e -> Error (path ^ ": " ^ e)
     | Ok system ->
       let arch = system.Spec.arch and apps = system.Spec.apps in
       (match plan_file with
        | None -> Ok (arch, apps, B.Sampler.balanced_plan ~seed arch apps)
        | Some plan_path ->
          (match Spec.load_plan system plan_path with
           | Error e -> Error (plan_path ^ ": " ^ e)
           | Ok plan -> Ok (arch, apps, plan))))

let list_cmd =
  let run () =
    List.iter
      (fun name ->
        let b = B.Registry.find_exn name in
        Format.printf "%-10s %d graphs, %d tasks, %d processors@." name
          (Mcmap_model.Appset.n_graphs b.B.Benchmark.apps)
          (Mcmap_model.Appset.total_tasks b.B.Benchmark.apps)
          (Mcmap_model.Arch.n_procs b.B.Benchmark.arch))
      B.Registry.names in
  Cmd.v (Cmd.info "list" ~doc:"List available benchmarks")
    Term.(const (fun () -> run (); 0) $ const ())

let analyze_run bench_name system_file plan_file seed =
  match resolve_problem bench_name system_file plan_file seed with
  | Error e -> prerr_endline e; 1
  | Ok (arch, apps, plan) ->
    let happ = H.Happ.build arch apps plan in
    let js = S.Jobset.build happ in
    let ctx = S.Bounds.make js in
    let report = A.Wcrt.analyze ctx in
    let naive = A.Naive.analyze ctx in
    Format.printf "%a@." (A.Wcrt.pp_report js) report;
    Format.printf "schedulable: %b@." (A.Wcrt.schedulable js report);
    Array.iteri
      (fun g v -> Format.printf "naive g%d: %a@." g A.Verdict.pp v)
      naive;
    (match R.Analysis.violations arch apps plan with
     | [] -> Format.printf "reliability: all constraints met@."
     | vs ->
       List.iter
         (fun v ->
           Format.printf "reliability: %a@." R.Analysis.pp_violation v)
         vs);
    0

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run Algorithm 1 on a benchmark mapping or a system file")
    Term.(const analyze_run $ bench_arg $ system_arg $ plan_arg
          $ seed_arg)

let simulate_run bench_name system_file plan_file seed profiles
    distribution =
  match resolve_problem bench_name system_file plan_file seed with
  | Error e -> prerr_endline e; 1
  | Ok (arch, apps, plan) ->
    let happ = H.Happ.build arch apps plan in
    let js = S.Jobset.build happ in
    let adhoc = Sim.Adhoc.run js in
    let mc = Sim.Monte_carlo.run ~profiles ~seed js in
    Format.printf "%d Monte-Carlo profiles, %d entered the critical state@."
      mc.Sim.Monte_carlo.profiles mc.Sim.Monte_carlo.criticals;
    Array.iteri
      (fun g a ->
        let cell = function
          | Some x -> string_of_int x
          | None -> "-" in
        Format.printf "graph %d: adhoc=%s wc-sim=%s@." g (cell a)
          (cell mc.Sim.Monte_carlo.graph_wcrt.(g)))
      adhoc;
    if distribution then begin
      Format.printf
        "@.response-time distribution under physical fault rates:@.";
      let d = Sim.Distribution.run ~runs:profiles ~seed js in
      print_string (Sim.Distribution.render js d)
    end;
    0

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Adhoc trace and Monte-Carlo simulation of a mapping")
    Term.(const simulate_run $ bench_arg $ system_arg $ plan_arg $ seed_arg
          $ profiles_arg
          $ Arg.(value & flag
                 & info [ "distribution" ]
                     ~doc:"Also estimate the response-time distribution \
                           under physical fault rates (the probabilistic \
                           analysis style of Table 1's ref [5])."))

let explore_run bench_name population offspring generations seed =
  match find_benchmark bench_name with
  | Error e -> prerr_endline e; 1
  | Ok bench ->
    let config = ga_config population offspring generations seed in
    let summary =
      D.Explore.run ~config bench.B.Benchmark.arch bench.B.Benchmark.apps in
    let stats = summary.D.Explore.stats in
    Format.printf
      "%d evaluations, %d feasible, rescue ratio %.2f%%, re-execution \
       share %.2f%%@."
      stats.D.Ga.evaluations stats.D.Ga.feasible_evaluations
      summary.D.Explore.rescue_ratio_pct summary.D.Explore.reexec_share_pct;
    (match summary.D.Explore.best_power with
     | Some p -> Format.printf "best feasible power: %.3f@." p
     | None -> Format.printf "no feasible solution found@.");
    List.iter
      (fun (plan, power, service) ->
        Format.printf "pareto: power=%.3f service=%.1f dropped=[%s]@."
          power service
          (String.concat ","
             (List.map string_of_int (H.Plan.dropped_graphs plan))))
      summary.D.Explore.pareto;
    0

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:"SPEA2 design-space exploration of a benchmark")
    Term.(const explore_run $ bench_arg $ population_arg $ offspring_arg
          $ generations_arg $ seed_arg)

let gantt_run bench_name system_file plan_file seed bias =
  match resolve_problem bench_name system_file plan_file seed with
  | Error e -> prerr_endline e; 1
  | Ok (arch, apps, plan) ->
    let happ = H.Happ.build arch apps plan in
    let js = S.Jobset.build happ in
    let show label profile =
      Format.printf "@.== %s ==@." label;
      let o = Sim.Engine.run js ~profile in
      print_string (Sim.Gantt.render js o) in
    show "fault-free" Sim.Fault_profile.none;
    show
      (Format.asprintf "random faults (bias %.2f)" bias)
      (Sim.Fault_profile.random ~seed ~bias js);
    show "all faults (adhoc stress)" Sim.Fault_profile.all;
    0

let gantt_cmd =
  Cmd.v
    (Cmd.info "gantt"
       ~doc:"Render ASCII Gantt charts of simulated schedules")
    Term.(const gantt_run $ bench_arg $ system_arg $ plan_arg $ seed_arg
          $ Arg.(value & opt float 0.3
                 & info [ "bias" ] ~doc:"Fault bias of the random profile."))

let experiment_names =
  [ "fig1"; "table2"; "dropping"; "rescue"; "fig5"; "table1";
    "sensitivity"; "optimizers" ]

let only_arg =
  let doc =
    "Run only the given experiment: "
    ^ String.concat ", " experiment_names ^ "." in
  Arg.(value & opt (some string) None & info [ "only" ] ~doc)

let experiments_run only profiles population offspring generations seed =
  let config = ga_config population offspring generations seed in
  let wanted name =
    match only with None -> true | Some o -> o = name in
  let bad_only =
    match only with
    | Some o when not (List.mem o experiment_names) -> true
    | Some _ | None -> false in
  if bad_only then begin
    prerr_endline
      ("unknown experiment (expected one of: "
       ^ String.concat ", " experiment_names ^ ")");
    1
  end
  else begin
    if wanted "fig1" then begin
      print_endline "== E5: Figure 1 (motivational example) ==";
      print_string (E.Fig1.render (E.Fig1.run ()))
    end;
    if wanted "table2" then begin
      print_endline "== E1: Table 2 (WCRT of the critical Cruise apps) ==";
      print_string (E.Table2.render (E.Table2.run ~profiles ~seed ()))
    end;
    if wanted "dropping" then begin
      print_endline "== E2: power with vs without task dropping ==";
      print_string (E.Dropping.render (E.Dropping.run ~config ()))
    end;
    if wanted "rescue" then begin
      print_endline "== E3: solutions rescued by task dropping ==";
      print_string (E.Rescue.render (E.Rescue.run ~config ()))
    end;
    if wanted "fig5" then begin
      print_endline "== E4: Figure 5 (power/service Pareto front) ==";
      print_string (E.Fig5.render (E.Fig5.run ~config ()))
    end;
    if wanted "table1" then begin
      print_endline
        "== E6 (extension): static scheduling baseline (Table 1) ==";
      print_string (E.Table1.render (E.Table1.run ~seed ()))
    end;
    if wanted "optimizers" then begin
      print_endline
        "== E8 (extension): optimizers on an equal evaluation budget ==";
      print_string (E.Optimizers.render (E.Optimizers.run ~seed ()))
    end;
    if wanted "sensitivity" then begin
      print_endline "== E7 (extension): sensitivity & ablations ==";
      print_endline "-- re-execution budget sweep (cruise) --";
      print_string (E.Sensitivity.render_k_sweep (E.Sensitivity.k_sweep ~seed ()));
      print_endline "-- priority-order ablation (cruise) --";
      print_string
        (E.Sensitivity.render_priority (E.Sensitivity.priority_ablation ~seed ()))
    end;
    0
  end

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures")
    Term.(const experiments_run $ only_arg $ profiles_arg $ population_arg
          $ offspring_arg $ generations_arg $ seed_arg)

let check_run count seed oracle corpus =
  let module C = Mcmap_check in
  let oracles =
    match oracle with
    | None -> Ok C.Oracles.all
    | Some name ->
      (match C.Oracles.find name with
       | Some o -> Ok [ o ]
       | None ->
         Error
           (Format.asprintf "unknown oracle %s (expected one of: %s)" name
              (String.concat ", "
                 (List.map
                    (fun (o : C.Oracles.t) -> o.C.Oracles.name)
                    C.Oracles.all)))) in
  match oracles with
  | Error e -> prerr_endline e; 1
  | Ok oracles ->
    List.iter
      (fun (o : C.Oracles.t) ->
        Format.printf "oracle %-22s %s@." o.C.Oracles.name o.C.Oracles.doc)
      oracles;
    let on_failure f =
      Format.printf "@.%a@." C.Runner.pp_failure f;
      match corpus with
      | None -> ()
      | Some path ->
        if C.Runner.append_corpus path f then
          Format.printf "recorded seed %d in %s@." f.C.Runner.seed path in
    let report = C.Runner.run ~oracles ~on_failure ~seed ~count () in
    Format.printf "@.%a@." C.Runner.pp_report report;
    if C.Runner.ok report then 0 else 1

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Cross-validate the WCRT analysis, the simulator and the \
          reliability model on random systems; failures are shrunk to \
          minimal counterexamples")
    Term.(const check_run
          $ Arg.(value & opt int 100
                 & info [ "count" ] ~doc:"Number of random systems.")
          $ seed_arg
          $ Arg.(value & opt (some string) None
                 & info [ "oracle" ] ~doc:"Run only the named oracle.")
          $ Arg.(value & opt (some string) None
                 & info [ "corpus" ]
                     ~doc:"Append failing seeds to this regression corpus \
                           file (see test/corpus/seeds.txt)."))

let main_cmd =
  let doc =
    "Static mapping of mixed-critical applications for fault-tolerant \
     MPSoCs (Kang et al., DAC 2014)" in
  Cmd.group (Cmd.info "mcmap" ~version:"1.0.0" ~doc)
    [ list_cmd; analyze_cmd; simulate_cmd; gantt_cmd; explore_cmd;
      experiments_cmd; check_cmd ]

let () = exit (Cmd.eval' main_cmd)
