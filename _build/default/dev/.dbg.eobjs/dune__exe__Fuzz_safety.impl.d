dev/fuzz_safety.ml: Array Format Gen_common Mcmap_analysis Mcmap_hardening Mcmap_sched Mcmap_sim Printf Sys
