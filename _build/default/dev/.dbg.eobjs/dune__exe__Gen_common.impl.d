dev/gen_common.ml: Array Format Mcmap_analysis Mcmap_benchmarks Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_util
