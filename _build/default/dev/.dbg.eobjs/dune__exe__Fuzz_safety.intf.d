dev/fuzz_safety.mli:
