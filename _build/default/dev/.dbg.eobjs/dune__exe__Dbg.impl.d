dev/dbg.ml: Array Format Gen_common List Mcmap_analysis Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_sim Printf Sys
