dev/dump_specs.ml: Array Filename List Mcmap_benchmarks Mcmap_spec Sys
