dev/dbg.mli:
