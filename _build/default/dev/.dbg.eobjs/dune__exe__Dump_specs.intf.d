dev/dump_specs.mli:
