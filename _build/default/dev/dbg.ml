(* Developer debugging scratchpad (not part of the library). *)
module S = Mcmap_sched
module A = Mcmap_analysis
module Sim = Mcmap_sim
module Happ = Mcmap_hardening.Happ
open Gen_common

let main () =
  let seed = int_of_string Sys.argv.(1) in
  let arch, apps, plan = random_system seed in
  Format.printf "%a@." Mcmap_model.Appset.pp apps;
  Format.printf "%a@." Mcmap_model.Arch.pp arch;
  Format.printf "%a@." Mcmap_hardening.Plan.pp plan;
  let happ = Happ.build arch apps plan in
  let js = S.Jobset.build happ in
  let ctx = S.Bounds.make js in
  let report = A.Wcrt.analyze ctx in
  (* find a violating profile *)
  let found = ref false in
  for p = 0 to 7 do
    if not !found then begin
      let profile = Sim.Fault_profile.random ~seed:(seed * 100 + p) ~bias:0.5 js in
      List.iter
        (fun (label, o) ->
          Array.iteri
            (fun g resp ->
              match resp, report.A.Wcrt.wcrt.(g) with
              | Some r, A.Verdict.Finite b when r > b && not !found ->
                found := true;
                Printf.printf "profile %d (%s): g%d sim=%d bound=%d\n" p label g r b;
                Array.iter
                  (fun (j : S.Job.t) ->
                    let ht = (Happ.graph happ j.S.Job.graph).Happ.tasks.(j.S.Job.task) in
                    Printf.printf
                      "  j%d g%d.%s#%d rel=%d proc=%d prio=%d [%d,%d] cw=%d k=%d pas=%b drop=%b: sim=%s\n"
                      j.S.Job.id j.S.Job.graph ht.Happ.name j.S.Job.instance
                      j.S.Job.release j.S.Job.proc j.S.Job.priority
                      j.S.Job.bcet j.S.Job.wcet j.S.Job.critical_wcet
                      j.S.Job.reexec_k j.S.Job.passive j.S.Job.in_dropped_set
                      (match o.Sim.Engine.finish.(j.S.Job.id) with
                       | Some t -> string_of_int t
                       | None -> "-"))
                  js.S.Jobset.jobs;
                (match o.Sim.Engine.critical_at with
                 | Some t -> Printf.printf "  critical at %d\n" t
                 | None -> Printf.printf "  stayed normal\n")
              | _ -> ())
            o.Sim.Engine.graph_response)
        [ ("wc", Sim.Engine.run js ~profile);
          ("rd", Sim.Engine.run ~mode:(Sim.Engine.Random_durations (seed + p)) js ~profile) ]
    end
  done;
  if not !found then print_endline "no violation reproduced"

let () = main ()
