(* Table 2 in miniature: analyse the three sample mappings of the Cruise
   benchmark with all four WCRT estimators (Adhoc, WC-Sim, Proposed,
   Naive) and check the safety relations the paper demonstrates.

   Run with: dune exec examples/cruise_analysis.exe *)

open Mcmap

let () =
  let rows = Experiments.Table2.run ~profiles:300 () in
  print_string (Experiments.Table2.render rows);
  let all_safe = List.for_all Experiments.Table2.safe rows in
  Format.printf
    "@.All safety relations hold (Proposed >= simulations, Naive >= \
     Proposed): %b@."
    all_safe;
  (* The phenomenon the paper highlights: the ad-hoc trace is sometimes
     below the Monte-Carlo worst case — simulation coverage alone is not
     enough for WCRT analysis, and neither is a hand-built trace. *)
  let adhoc_below =
    List.exists
      (fun (r : Experiments.Table2.row) ->
        match r.Experiments.Table2.adhoc, r.Experiments.Table2.wcsim with
        | Some a, Some m -> a < m
        | _, _ -> false)
      rows in
  Format.printf
    "Ad-hoc trace below WC-Sim somewhere (simulation coverage matters): \
     %b@."
    adhoc_below
