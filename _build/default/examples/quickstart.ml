(* Quickstart: model a tiny fault-tolerant mixed-criticality system,
   harden it, and ask Algorithm 1 whether it is schedulable.

   Run with: dune exec examples/quickstart.exe *)

open Mcmap

let () =
  (* 1. Architecture: two processors on a shared bus. *)
  let arch =
    Model.Arch.make ~bus_bandwidth:2 ~bus_latency:1
      [| Model.Proc.make ~id:0 ~name:"cpu0" ~fault_rate:1e-5 ();
         Model.Proc.make ~id:1 ~name:"cpu1" ~fault_rate:1e-5 () |] in

  (* 2. Applications: a critical sense->control->actuate pipeline and a
     droppable logging application. *)
  let control =
    Model.Graph.make ~name:"control" ~period:100 ~deadline:90
      ~criticality:(Model.Criticality.critical 1e-4)
      ~tasks:
        [| Model.Task.make ~id:0 ~name:"sense" ~wcet:10 ~bcet:6
             ~detection_overhead:1 ();
           Model.Task.make ~id:1 ~name:"control" ~wcet:15 ~bcet:9
             ~detection_overhead:2 ();
           Model.Task.make ~id:2 ~name:"actuate" ~wcet:8 ~bcet:5
             ~detection_overhead:1 () |]
      ~channels:
        [| Model.Channel.make ~src:0 ~dst:1 ~size:4 ();
           Model.Channel.make ~src:1 ~dst:2 ~size:4 () |]
      () in
  let logging =
    Model.Graph.make ~name:"logging" ~period:100
      ~criticality:(Model.Criticality.droppable 1.0)
      ~tasks:
        [| Model.Task.make ~id:0 ~name:"collect" ~wcet:12 ~bcet:8 ();
           Model.Task.make ~id:1 ~name:"store" ~wcet:10 ~bcet:6 () |]
      ~channels:[| Model.Channel.make ~src:0 ~dst:1 ~size:8 () |]
      () in
  let apps = Model.Appset.make [| control; logging |] in

  (* 3. A plan: harden the control tasks by single re-execution, keep
     logging unhardened, and allow it to be dropped in the critical
     state. *)
  let decision technique proc =
    { Hardening.Plan.technique; primary_proc = proc; replica_procs = [||];
      voter_proc = proc } in
  let re = Hardening.Technique.re_execution 1 in
  let plan =
    Hardening.Plan.make apps
      ~decisions:
        [| [| decision re 0; decision re 0; decision re 1 |];
           [| decision Hardening.Technique.No_hardening 1;
              decision Hardening.Technique.No_hardening 1 |] |]
      ~dropped:[| false; true |] in

  (* 4. Analysis: Algorithm 1. *)
  let _happ, js, report = analyze_plan arch apps plan in
  Format.printf "%a@." (Analysis.Wcrt.pp_report js) report;
  Format.printf "schedulable: %b@." (Analysis.Wcrt.schedulable js report);

  (* 5. Reliability: is the control application's failure bound met? *)
  (match Reliability.Analysis.violations arch apps plan with
   | [] -> Format.printf "reliability: constraints met@."
   | violations ->
     List.iter
       (fun v ->
         Format.printf "reliability: %a@." Reliability.Analysis.pp_violation
           v)
       violations);

  (* 6. Cross-check with the fault-injecting simulator: the worst
     response observed over 500 random failure profiles never exceeds
     Algorithm 1's bound. *)
  let mc = Sim.Monte_carlo.run ~profiles:500 js in
  Array.iteri
    (fun g wcrt ->
      Format.printf "graph %d: wc-sim %s, analysis %a@." g
        (match wcrt with Some x -> string_of_int x | None -> "-")
        Analysis.Verdict.pp report.Analysis.Wcrt.wcrt.(g))
    mc.Sim.Monte_carlo.graph_wcrt
