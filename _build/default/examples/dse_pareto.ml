(* Figure 5 in miniature: co-optimise power and quality of service for
   the DT-med benchmark and print the Pareto front of dropped-set
   choices.

   Run with: dune exec examples/dse_pareto.exe *)

open Mcmap

let () =
  (* A reduced GA budget keeps the example fast; use the mcmap CLI
     (mcmap experiments --only fig5) for a fuller exploration. *)
  let config =
    { Dse.Ga.default_config with
      Dse.Ga.population = 24; offspring = 24; generations = 15; seed = 3 }
  in
  let points = Experiments.Fig5.run ~config () in
  print_string (Experiments.Fig5.render points);
  Format.printf
    "@.%d Pareto-optimal power/service trade-off points (the paper finds \
     %d at full budget)@."
    (List.length points) Experiments.Paper.fig5_pareto_points
