(* Drive the full pipeline from textual system/plan descriptions — the
   workflow of a user bringing their own design rather than a built-in
   benchmark.

   Run with: dune exec examples/from_files.exe
   (expects to run from the repository root; the spec files live in
   examples/specs/) *)

open Mcmap

let die msg =
  prerr_endline msg;
  exit 1

let () =
  let system =
    match Spec.load_system "examples/specs/cruise.mcmap" with
    | Ok s -> s
    | Error e -> die ("cruise.mcmap: " ^ e) in
  let plan =
    match Spec.load_plan system "examples/specs/cruise-mapping1.plan" with
    | Ok p -> p
    | Error e -> die ("cruise-mapping1.plan: " ^ e) in
  let arch = system.Spec.arch and apps = system.Spec.apps in
  Format.printf "Loaded %d processors, %d applications, %d tasks.@."
    (Model.Arch.n_procs arch)
    (Model.Appset.n_graphs apps)
    (Model.Appset.total_tasks apps);

  (* Algorithm 1 on the loaded plan *)
  let _happ, js, report = analyze_plan arch apps plan in
  Format.printf "%a@." (Analysis.Wcrt.pp_report js) report;

  (* the response-time distribution a deployed system would see *)
  Format.printf "Response times under physical fault rates:@.";
  let distribution = Sim.Distribution.run ~runs:300 js in
  print_string (Sim.Distribution.render js distribution);

  (* round-trip: write the system back out and re-read it *)
  let text = Spec.write_system system in
  (match Spec.read_system text with
   | Ok back ->
     Format.printf "write/read round-trip: %s@."
       (if Model.Appset.total_tasks back.Spec.apps
           = Model.Appset.total_tasks apps
        then "ok"
        else "MISMATCH")
   | Error e -> die ("round-trip: " ^ e))
