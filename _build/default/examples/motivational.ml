(* The motivational example of the paper's Figure 1, executed on the
   discrete-event engine:

   (b) without faults every application meets its deadline;
   (c) a transient fault re-executes the hardened task A and the critical
       application misses its deadline if nothing is dropped;
   (d) dropping the low-criticality application on the mode change
       restores the deadline.

   Run with: dune exec examples/motivational.exe *)

open Mcmap

let () =
  let outcome = Experiments.Fig1.run () in
  print_string (Experiments.Fig1.render outcome);
  (* The same scenario, job by job: show the engine's trace under the
     single-fault profile with and without dropping. *)
  let arch, apps, keep, drop = Experiments.Fig1.scenario () in
  let show label plan =
    let happ = Hardening.Happ.build arch apps plan in
    let js = Sched.Jobset.build happ in
    let profile =
      { Sim.Fault_profile.none with
        Sim.Fault_profile.reexec_fault =
          (fun j ~attempt -> attempt = 0 && j.Sched.Job.graph = 0) } in
    let o = Sim.Engine.run js ~profile in
    Format.printf "@.%s:@." label;
    print_string (Sim.Gantt.render js o);
    Array.iter
      (fun (j : Sched.Job.t) ->
        let hg = Hardening.Happ.graph happ j.Sched.Job.graph in
        let name = hg.Hardening.Happ.tasks.(j.Sched.Job.task).Hardening.Happ.name in
        match o.Sim.Engine.finish.(j.Sched.Job.id) with
        | Some t ->
          Format.printf "  %-6s finished at %4d (on pe%d)@." name t
            j.Sched.Job.proc
        | None ->
          Format.printf "  %-6s %s@." name
            (if o.Sim.Engine.dropped.(j.Sched.Job.id) then "dropped"
             else "did not run"))
      js.Sched.Jobset.jobs;
    (match o.Sim.Engine.critical_at with
     | Some t -> Format.printf "  critical state entered at %d@." t
     | None -> Format.printf "  stayed in the normal state@.") in
  show "Fault at A, nothing droppable (Fig. 1c)" keep;
  show "Fault at A, low-criticality dropped (Fig. 1d)" drop
