examples/quickstart.ml: Analysis Array Format Hardening List Mcmap Model Reliability Sim
