examples/from_files.mli:
