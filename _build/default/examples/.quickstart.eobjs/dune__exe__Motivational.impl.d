examples/motivational.ml: Array Experiments Format Hardening Mcmap Sched Sim
