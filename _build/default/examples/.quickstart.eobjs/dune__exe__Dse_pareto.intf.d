examples/dse_pareto.mli:
