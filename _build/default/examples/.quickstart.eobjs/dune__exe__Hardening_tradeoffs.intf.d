examples/hardening_tradeoffs.mli:
