examples/from_files.ml: Analysis Format Mcmap Model Sim Spec
