examples/motivational.mli:
