examples/hardening_tradeoffs.ml: Analysis Array Dse Format Hardening List Mcmap Model Reliability Util
