examples/quickstart.mli:
