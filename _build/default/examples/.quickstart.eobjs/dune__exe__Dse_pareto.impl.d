examples/dse_pareto.ml: Dse Experiments Format List Mcmap
