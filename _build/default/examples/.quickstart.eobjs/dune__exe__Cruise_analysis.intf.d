examples/cruise_analysis.mli:
