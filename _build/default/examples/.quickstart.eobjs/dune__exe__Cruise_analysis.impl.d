examples/cruise_analysis.ml: Experiments Format List Mcmap
