(* The core trade-off of the paper's §2.2, made concrete: harden one and
   the same task with every available technique and compare

   - the reliability achieved (failures per time unit),
   - the certified worst-case response time under Algorithm 1,
   - the provisioned power.

   Re-execution is cheap in resources but inflates the critical-state
   WCET (Eq. 1); checkpointing softens that inflation; active
   replication costs processors and power but adds no critical-state
   time; passive replication sits in between.

   Run with: dune exec examples/hardening_tradeoffs.exe *)

open Mcmap

let () =
  let arch =
    Model.Arch.make ~bus_bandwidth:2 ~bus_latency:1
      (Array.init 4 (fun id ->
           Model.Proc.make ~id
             ~name:(Format.asprintf "cpu%d" id)
             ~fault_rate:1e-4 ())) in
  let apps =
    Model.Appset.make
      [| Model.Graph.make ~name:"app" ~period:500 ~deadline:400
           ~criticality:(Model.Criticality.critical 1e-6)
           ~tasks:
             [| Model.Task.make ~id:0 ~name:"producer" ~wcet:40 ~bcet:25
                  ~detection_overhead:4 ~voting_overhead:2 ();
                Model.Task.make ~id:1 ~name:"worker" ~wcet:80 ~bcet:50
                  ~detection_overhead:8 ~voting_overhead:4 ();
                Model.Task.make ~id:2 ~name:"consumer" ~wcet:30 ~bcet:20
                  ~detection_overhead:3 ~voting_overhead:2 () |]
           ~channels:
             [| Model.Channel.make ~src:0 ~dst:1 ~size:4 ();
                Model.Channel.make ~src:1 ~dst:2 ~size:4 () |]
           () |] in
  let decision ?(technique = Hardening.Technique.No_hardening)
      ?(replicas = [||]) ?(voter = 0) primary =
    { Hardening.Plan.technique; primary_proc = primary;
      replica_procs = replicas; voter_proc = voter } in
  (* the task under study is the heavy middle one; its variants: *)
  let variants =
    [ ("none", decision 1);
      ("reexec k=1",
       decision ~technique:(Hardening.Technique.re_execution 1) 1);
      ("reexec k=2",
       decision ~technique:(Hardening.Technique.re_execution 2) 1);
      ("checkpoint n=4 k=2",
       decision
         ~technique:(Hardening.Technique.checkpointing ~segments:4 ~k:2)
         1);
      ("active n=3",
       decision ~technique:(Hardening.Technique.active_replication 3)
         ~replicas:[| 2; 3 |] ~voter:1 1);
      ("passive m=1",
       decision ~technique:(Hardening.Technique.passive_replication 1)
         ~replicas:[| 2; 3 |] ~voter:1 1) ] in
  let table =
    Util.Texttable.create
      ~header:
        [ "Hardening"; "Failure rate"; "WCRT bound"; "Deadline met";
          "Power" ] in
  List.iter
    (fun (label, worker_decision) ->
      let plan =
        Hardening.Plan.make apps
          ~decisions:[| [| decision 0; worker_decision; decision 2 |] |]
          ~dropped:[| false |] in
      let rate =
        Reliability.Analysis.graph_failure_rate arch apps plan ~graph:0 in
      let _happ, js, report = analyze_plan arch apps plan in
      let power = Dse.Evaluate.power_of_plan arch apps plan in
      Util.Texttable.add_row table
        [ label;
          Format.asprintf "%.2e" rate;
          Format.asprintf "%a" Analysis.Verdict.pp
            report.Analysis.Wcrt.wcrt.(0);
          string_of_bool (Analysis.Wcrt.schedulable js report);
          Format.asprintf "%.3f" power ])
    variants;
  Util.Texttable.print table;
  print_endline
    "\n(hardening the worker roughly halves the application failure\n\
    \ rate — the rest is owed by the unhardened producer/consumer;\n\
    \ replication buys back critical-state response time with power,\n\
    \ checkpointing sits between re-execution and replication)"
