test/test_sim.ml: Alcotest Array Format List Mcmap_analysis Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_sim Printf QCheck QCheck_alcotest String Test_gen
