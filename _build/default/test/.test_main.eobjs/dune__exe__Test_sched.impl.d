test/test_sched.ml: Alcotest Array Format List Mcmap_hardening Mcmap_model Mcmap_sched Option QCheck QCheck_alcotest Test_gen
