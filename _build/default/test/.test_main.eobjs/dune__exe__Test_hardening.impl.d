test/test_hardening.ml: Alcotest Array Format List Mcmap_hardening Mcmap_model
