test/test_gen.ml: Array Format Mcmap_benchmarks Mcmap_hardening Mcmap_model Mcmap_util
