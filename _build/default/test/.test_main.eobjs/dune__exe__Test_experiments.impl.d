test/test_experiments.ml: Alcotest Format List Mcmap_analysis Mcmap_dse Mcmap_experiments Mcmap_hardening String
