test/test_spec.ml: Alcotest Array List Mcmap_benchmarks Mcmap_hardening Mcmap_model Mcmap_spec Mcmap_util Printf QCheck QCheck_alcotest Result String Sys Test_gen
