test/test_benchmarks.ml: Alcotest Array List Mcmap_benchmarks Mcmap_hardening Mcmap_model
