test/test_model.ml: Alcotest Array Format List Mcmap_model
