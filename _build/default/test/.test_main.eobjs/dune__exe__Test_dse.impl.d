test/test_dse.ml: Alcotest Array Format List Mcmap_dse Mcmap_hardening Mcmap_model Mcmap_reliability Mcmap_util QCheck QCheck_alcotest Test_gen
