test/test_reliability.ml: Alcotest Array Format Gen List Mcmap_hardening Mcmap_model Mcmap_reliability QCheck QCheck_alcotest
