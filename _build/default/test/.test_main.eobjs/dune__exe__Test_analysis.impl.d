test/test_analysis.ml: Alcotest Array List Mcmap_analysis Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_sim QCheck QCheck_alcotest Test_gen
