test/test_util.ml: Alcotest Array Gen Int List Mcmap_util Option Printf QCheck QCheck_alcotest String
