(* Unit and property tests for mcmap.reliability. *)

module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Criticality = Mcmap_model.Criticality
module Task = Mcmap_model.Task
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset
module Technique = Mcmap_hardening.Technique
module Plan = Mcmap_hardening.Plan
module Fault_model = Mcmap_reliability.Fault_model
module Analysis = Mcmap_reliability.Analysis

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let checkf = check (Alcotest.float 1e-9)

let arch ?(fault_rate = 1e-4) () =
  Arch.make
    (Array.init 4 (fun id ->
         Proc.make ~id ~name:(Format.asprintf "p%d" id) ~fault_rate ()))

let single_task_apps ?(criticality = Criticality.critical 1e-6)
    ?(wcet = 50) () =
  Appset.make
    [| Graph.make ~name:"g"
         ~tasks:
           [| Task.make ~id:0 ~name:"t" ~wcet ~detection_overhead:5 () |]
         ~channels:[||] ~period:1000 ~criticality () |]

let decision ?(technique = Technique.No_hardening) ?(replicas = [||])
    ?(voter = 0) primary =
  { Plan.technique; primary_proc = primary; replica_procs = replicas;
    voter_proc = voter }

(* ------------------------------------------------------------------ *)
(* Fault model *)

let test_execution_failure () =
  let a = arch () in
  let q = Fault_model.execution_failure a ~proc:0 ~duration:100 in
  checkf "closed form" (1. -. exp (-0.01)) q;
  checkf "zero duration" 0.
    (Fault_model.execution_failure a ~proc:0 ~duration:0)

let test_re_execution_failure () =
  checkf "k=0 is single attempt" 0.1
    (Fault_model.re_execution_failure ~per_attempt:0.1 ~k:0);
  checkf "k=1 squares" 0.01
    (Fault_model.re_execution_failure ~per_attempt:0.1 ~k:1);
  checkf "k=2 cubes" 0.001
    (Fault_model.re_execution_failure ~per_attempt:0.1 ~k:2)

let test_majority_homogeneous () =
  (* TMR closed form: 3 q^2 (1-q) + q^3 *)
  let q = 0.1 in
  let expected = (3. *. q *. q *. (1. -. q)) +. (q ** 3.) in
  checkf "TMR closed form" expected
    (Fault_model.majority_failure [| q; q; q |]);
  (* duplication detects but cannot correct *)
  checkf "duplication" (1. -. (0.9 *. 0.9))
    (Fault_model.majority_failure [| q; q |]);
  checkf "single replica" q (Fault_model.majority_failure [| q |])

let test_at_least_k () =
  checkf "k=0 is certain" 1.
    (Fault_model.at_least_k_failures [| 0.5; 0.5 |] 0);
  checkf "k beyond n impossible" 0.
    (Fault_model.at_least_k_failures [| 0.5; 0.5 |] 3);
  checkf "both fail" 0.25 (Fault_model.at_least_k_failures [| 0.5; 0.5 |] 2);
  checkf "at least one" 0.75
    (Fault_model.at_least_k_failures [| 0.5; 0.5 |] 1)

let test_passive_failure () =
  (* 2 actives + 1 spare fails when >= 2 of the 3 fail *)
  let q = 0.1 in
  let expected = (3. *. q *. q *. (1. -. q)) +. (q ** 3.) in
  checkf "2+1 equals TMR count" expected
    (Fault_model.passive_failure ~active:[| q; q |] ~spares:[| q |]);
  Alcotest.check_raises "needs exactly two actives"
    (Invalid_argument "Fault_model.passive_failure: exactly 2 active replicas")
    (fun () ->
      ignore (Fault_model.passive_failure ~active:[| q |] ~spares:[| q |]))

let prop_majority_beats_single =
  QCheck.Test.make ~name:"TMR beats a single replica for q < 1/2"
    ~count:200
    QCheck.(float_range 0.001 0.49)
    (fun q ->
      Fault_model.majority_failure [| q; q; q |] <= q +. 1e-12)

let prop_more_re_executions_help =
  QCheck.Test.make ~name:"re-execution failure decreases with k" ~count:200
    QCheck.(pair (float_range 0.01 0.9) (int_range 0 5))
    (fun (q, k) ->
      Fault_model.re_execution_failure ~per_attempt:q ~k:(k + 1)
      <= Fault_model.re_execution_failure ~per_attempt:q ~k +. 1e-12)

let prop_failure_counts_probability =
  QCheck.Test.make ~name:"at_least_k is a decreasing probability"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range 0. 1.))
    (fun qs ->
      let probs = Array.of_list qs in
      let n = Array.length probs in
      let ok = ref true in
      let prev = ref 1. in
      for k = 0 to n do
        let p = Fault_model.at_least_k_failures probs k in
        if p < -1e-9 || p > 1. +. 1e-9 || p > !prev +. 1e-9 then ok := false;
        prev := p
      done;
      !ok)

let test_poisson_more_than () =
  (* k = 0: P(>0 faults) = 1 - e^{-m} *)
  let m = 1e-4 *. 100. in
  checkf "k=0 closed form" (1. -. exp (-.m))
    (Fault_model.poisson_more_than ~rate:1e-4 ~duration:100 ~k:0);
  check Alcotest.bool "monotone decreasing in k" true
    (Fault_model.poisson_more_than ~rate:1e-2 ~duration:100 ~k:2
     < Fault_model.poisson_more_than ~rate:1e-2 ~duration:100 ~k:1);
  checkf "zero duration" 0.
    (Fault_model.poisson_more_than ~rate:1e-2 ~duration:0 ~k:0)

let test_checkpointing_reliability () =
  let a = arch () in
  let apps = single_task_apps () in
  let prob technique =
    let plan =
      Plan.make apps
        ~decisions:[| [| decision ~technique 0 |] |]
        ~dropped:[| false |] in
    Analysis.task_failure_probability a apps plan ~graph:0 ~task:0 in
  let bare = prob Technique.No_hardening in
  let cp1 = prob (Technique.checkpointing ~segments:2 ~k:1) in
  let cp2 = prob (Technique.checkpointing ~segments:2 ~k:2) in
  check Alcotest.bool "checkpointing improves" true (cp1 < bare);
  check Alcotest.bool "more tolerated faults improve" true (cp2 < cp1)

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_task_failure_techniques () =
  let a = arch () in
  let apps = single_task_apps () in
  let prob technique replicas =
    let plan =
      Plan.make apps
        ~decisions:[| [| decision ~technique ~replicas ~voter:3 0 |] |]
        ~dropped:[| false |] in
    Analysis.task_failure_probability a apps plan ~graph:0 ~task:0 in
  let bare = prob Technique.No_hardening [||] in
  let reexec = prob (Technique.re_execution 1) [||] in
  let tmr = prob (Technique.active_replication 3) [| 1; 2 |] in
  let passive = prob (Technique.passive_replication 1) [| 1; 2 |] in
  check Alcotest.bool "re-execution improves" true (reexec < bare);
  check Alcotest.bool "TMR improves" true (tmr < bare);
  check Alcotest.bool "passive improves" true (passive < bare);
  check Alcotest.bool "bare positive" true (bare > 0.)

let test_graph_failure_rate () =
  let a = arch () in
  let apps = single_task_apps () in
  let plan = Plan.unhardened apps in
  let rate = Analysis.graph_failure_rate a apps plan ~graph:0 in
  (* one task: rate = q / period *)
  let q = Fault_model.execution_failure a ~proc:0 ~duration:50 in
  checkf "rate = q / period" (q /. 1000.) rate

let test_violations () =
  let a = arch () in
  (* tight bound: unhardened must violate, k=2 re-execution must pass *)
  let apps = single_task_apps ~criticality:(Criticality.critical 1e-9) () in
  let bare = Plan.unhardened apps in
  check Alcotest.int "unhardened violates" 1
    (List.length (Analysis.violations a apps bare));
  let hardened =
    Plan.make apps
      ~decisions:
        [| [| decision ~technique:(Technique.re_execution 2) 0 |] |]
      ~dropped:[| false |] in
  check Alcotest.int "hardened passes" 0
    (List.length (Analysis.violations a apps hardened))

let test_droppable_unconstrained () =
  let a = arch ~fault_rate:0.5 () in
  let apps =
    single_task_apps ~criticality:(Criticality.droppable 1.0) () in
  let plan = Plan.unhardened apps in
  check Alcotest.int "droppable graphs have no constraint" 0
    (List.length (Analysis.violations a apps plan))

let prop_hardening_never_hurts =
  QCheck.Test.make
    ~name:"any hardening lowers the task failure probability" ~count:100
    QCheck.(pair (int_range 1 3) (int_range 20 200))
    (fun (k, wcet) ->
      let a = arch () in
      let apps = single_task_apps ~wcet () in
      let bare =
        Analysis.task_failure_probability a apps (Plan.unhardened apps)
          ~graph:0 ~task:0 in
      let plan =
        Plan.make apps
          ~decisions:
            [| [| decision ~technique:(Technique.re_execution k) 0 |] |]
          ~dropped:[| false |] in
      Analysis.task_failure_probability a apps plan ~graph:0 ~task:0
      <= bare +. 1e-12)

let suite =
  [ Alcotest.test_case "fault: execution failure" `Quick
      test_execution_failure;
    Alcotest.test_case "fault: re-execution" `Quick
      test_re_execution_failure;
    Alcotest.test_case "fault: majority closed forms" `Quick
      test_majority_homogeneous;
    Alcotest.test_case "fault: at_least_k" `Quick test_at_least_k;
    Alcotest.test_case "fault: passive" `Quick test_passive_failure;
    qtest prop_majority_beats_single;
    qtest prop_more_re_executions_help;
    qtest prop_failure_counts_probability;
    Alcotest.test_case "fault: poisson tail" `Quick test_poisson_more_than;
    Alcotest.test_case "analysis: checkpointing" `Quick
      test_checkpointing_reliability;
    Alcotest.test_case "analysis: techniques compared" `Quick
      test_task_failure_techniques;
    Alcotest.test_case "analysis: graph rate" `Quick
      test_graph_failure_rate;
    Alcotest.test_case "analysis: violations" `Quick test_violations;
    Alcotest.test_case "analysis: droppable unconstrained" `Quick
      test_droppable_unconstrained;
    qtest prop_hardening_never_hurts ]
