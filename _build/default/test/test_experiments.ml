(* Tests for the experiment harness (tables and figures of the paper's
   evaluation). GA-based experiments run with micro budgets here — the
   bench harness runs them at full scale. *)

module E = Mcmap_experiments
module Ga = Mcmap_dse.Ga

let check = Alcotest.check

let micro_config =
  { Ga.default_config with
    Ga.population = 10; offspring = 10; generations = 4; seed = 12 }

let test_fig1_story () =
  let o = E.Fig1.run () in
  check Alcotest.bool "(b) normal meets" true o.E.Fig1.normal_deadline_met;
  check Alcotest.bool "(c) fault without dropping misses" false
    o.E.Fig1.fault_keep_deadline_met;
  check Alcotest.bool "(d) dropping rescues" true
    o.E.Fig1.fault_drop_deadline_met;
  (* responses are ordered: normal <= drop-rescued <= keep *)
  (match
     ( o.E.Fig1.normal_response, o.E.Fig1.fault_drop_response,
       o.E.Fig1.fault_keep_response )
   with
   | Some n, Some d, Some k ->
     check Alcotest.bool "ordering" true (n <= d && d <= k)
   | _ -> Alcotest.fail "all responses must be measured");
  check Alcotest.bool "render mentions the deadline" true
    (String.length (E.Fig1.render o) > 0)

let test_fig1_scenario_valid () =
  let arch, apps, keep, drop = E.Fig1.scenario () in
  check (Alcotest.list Alcotest.string) "keep placement" []
    (Mcmap_hardening.Plan.errors arch apps keep);
  check (Alcotest.list Alcotest.string) "drop placement" []
    (Mcmap_hardening.Plan.errors arch apps drop);
  check (Alcotest.list Alcotest.int) "drop set" [ 1 ]
    (Mcmap_hardening.Plan.dropped_graphs drop)

let test_table2_rows_and_safety () =
  let rows = E.Table2.run ~profiles:60 ~seed:5 () in
  (* 3 mappings x 2 critical graphs *)
  check Alcotest.int "row count" 6 (List.length rows);
  List.iter
    (fun row ->
      check Alcotest.bool
        (Format.asprintf "mapping %d graph %s safe" row.E.Table2.mapping
           row.E.Table2.graph)
        true (E.Table2.safe row))
    rows;
  check Alcotest.bool "render non-empty" true
    (String.length (E.Table2.render rows) > 0)

let test_paper_reference_values () =
  check Alcotest.int "table 2 rows" 3 (List.length E.Paper.table2);
  check Alcotest.int "five pareto points" 5 E.Paper.fig5_pareto_points;
  check (Alcotest.option (Alcotest.float 1e-9)) "cruise rescue"
    (Some 99.98)
    (List.assoc_opt "cruise" E.Paper.rescue_ratio_pct);
  check (Alcotest.option (Alcotest.float 1e-9)) "dt-med gain" (Some 14.66)
    (List.assoc_opt "dt-med" E.Paper.dropping_gain_pct)

let test_dropping_entries () =
  (* micro run on the smallest benchmark only, to stay fast *)
  let entries =
    E.Dropping.run ~config:micro_config ~benchmarks:[ "synth-1" ] () in
  (match entries with
   | [ e ] ->
     check Alcotest.string "benchmark name" "synth-1"
       e.E.Dropping.benchmark;
     check Alcotest.bool "paper value absent for synth" true
       (e.E.Dropping.paper_gain_pct = None)
   | _ -> Alcotest.fail "expected one entry");
  check Alcotest.bool "render non-empty" true
    (String.length (E.Dropping.render entries) > 0)

let test_rescue_entries () =
  let entries =
    E.Rescue.run ~config:micro_config ~benchmarks:[ "synth-1" ] () in
  (match entries with
   | [ e ] ->
     check Alcotest.int "evaluations counted"
       (10 + (10 * 4))
       e.E.Rescue.evaluations;
     check Alcotest.bool "ratio in range" true
       (e.E.Rescue.rescue_pct >= 0. && e.E.Rescue.rescue_pct <= 100.)
   | _ -> Alcotest.fail "expected one entry");
  check Alcotest.bool "render non-empty" true
    (String.length (E.Rescue.render entries) > 0)

let test_fig5_points_sorted () =
  let points = E.Fig5.run ~config:micro_config ~benchmark:"dt-med" () in
  let rec sorted = function
    | (a : E.Fig5.point) :: (b :: _ as rest) ->
      a.E.Fig5.power <= b.E.Fig5.power && sorted rest
    | [ _ ] | [] -> true in
  check Alcotest.bool "sorted by power" true (sorted points);
  (* service must increase along the front (non-dominated 2D points) *)
  let rec service_increasing = function
    | (a : E.Fig5.point) :: (b :: _ as rest) ->
      a.E.Fig5.service <= b.E.Fig5.service && service_increasing rest
    | [ _ ] | [] -> true in
  check Alcotest.bool "service increases with power" true
    (service_increasing points);
  check Alcotest.bool "render ok" true
    (String.length (E.Fig5.render points) >= 0)

let test_table1_entries () =
  let entries = E.Table1.run ~benchmarks:[ "cruise"; "synth-1" ] () in
  check Alcotest.int "two entries" 2 (List.length entries);
  List.iter
    (fun (e : E.Table1.entry) ->
      check Alcotest.bool "scenario count at least 1" true
        (e.E.Table1.scenarios >= 1.);
      check Alcotest.bool "static response positive" true
        (e.E.Table1.static_response > 0);
      check Alcotest.bool "nominal makespan positive" true
        (e.E.Table1.static_nominal_makespan > 0))
    entries;
  check Alcotest.bool "render" true
    (String.length (E.Table1.render entries) > 0)

let test_sensitivity_k_sweep () =
  let rows = E.Sensitivity.k_sweep () in
  check Alcotest.int "four rows" 4 (List.length rows);
  (* failure rate decreases and the WCRT bound grows with k *)
  let rec ordered = function
    | (a : E.Sensitivity.k_sweep_row) :: (b :: _ as rest) ->
      a.E.Sensitivity.failure_rate >= b.E.Sensitivity.failure_rate
      && Mcmap_analysis.Verdict.to_float a.E.Sensitivity.wcrt
         <= Mcmap_analysis.Verdict.to_float b.E.Sensitivity.wcrt
      && a.E.Sensitivity.power <= b.E.Sensitivity.power +. 1e-9
      && ordered rest
    | [ _ ] | [] -> true in
  check Alcotest.bool "monotone trade-off" true (ordered rows);
  (* the unhardened system misses its reliability bound *)
  (match rows with
   | r0 :: _ -> check Alcotest.bool "k=0 unreliable" false
                  r0.E.Sensitivity.reliable
   | [] -> Alcotest.fail "rows");
  check Alcotest.bool "render" true
    (String.length (E.Sensitivity.render_k_sweep rows) > 0)

let test_sensitivity_priority_ablation () =
  let rows = E.Sensitivity.priority_ablation () in
  check Alcotest.int "two orders" 2 (List.length rows);
  (match rows with
   | [ rm; cf ] ->
     (* segregating criticality protects the critical applications ... *)
     check Alcotest.bool "criticality-first lowers critical WCRT" true
       (Mcmap_analysis.Verdict.to_float cf.E.Sensitivity.critical_wcrt
        <= Mcmap_analysis.Verdict.to_float rm.E.Sensitivity.critical_wcrt)
   | _ -> Alcotest.fail "expected two rows");
  check Alcotest.bool "render" true
    (String.length (E.Sensitivity.render_priority rows) > 0)

let suite =
  [ Alcotest.test_case "fig1: the motivational story" `Quick
      test_fig1_story;
    Alcotest.test_case "fig1: scenario validity" `Quick
      test_fig1_scenario_valid;
    Alcotest.test_case "table2: rows and safety" `Slow
      test_table2_rows_and_safety;
    Alcotest.test_case "paper: reference values" `Quick
      test_paper_reference_values;
    Alcotest.test_case "dropping: entries" `Slow test_dropping_entries;
    Alcotest.test_case "rescue: entries" `Slow test_rescue_entries;
    Alcotest.test_case "fig5: pareto points" `Slow test_fig5_points_sorted;
    Alcotest.test_case "table1: static baseline" `Slow
      test_table1_entries;
    Alcotest.test_case "sensitivity: k sweep" `Slow
      test_sensitivity_k_sweep;
    Alcotest.test_case "sensitivity: priority ablation" `Slow
      test_sensitivity_priority_ablation ]
