(* Unit tests for mcmap.hardening: techniques, plans, and the graph
   transform. *)

module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Criticality = Mcmap_model.Criticality
module Task = Mcmap_model.Task
module Channel = Mcmap_model.Channel
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset
module Technique = Mcmap_hardening.Technique
module Plan = Mcmap_hardening.Plan
module Happ = Mcmap_hardening.Happ

let check = Alcotest.check

let arch ?(n = 4) () =
  Arch.make ~bus_bandwidth:2 ~bus_latency:1
    (Array.init n (fun id ->
         Proc.make ~id ~name:(Format.asprintf "p%d" id) ()))

(* producer -> consumer, with detection and voting overheads *)
let two_task_apps () =
  Appset.make
    [| Graph.make ~name:"g"
         ~tasks:
           [| Task.make ~id:0 ~name:"prod" ~wcet:20 ~bcet:10
                ~detection_overhead:2 ~voting_overhead:1 ();
              Task.make ~id:1 ~name:"cons" ~wcet:30 ~bcet:15
                ~detection_overhead:3 ~voting_overhead:2 () |]
         ~channels:[| Channel.make ~src:0 ~dst:1 ~size:4 () |]
         ~period:200 ~criticality:(Criticality.critical 1e-3) () |]

let decision ?(technique = Technique.No_hardening) ?(replicas = [||])
    ?(voter = 0) primary =
  { Plan.technique; primary_proc = primary; replica_procs = replicas;
    voter_proc = voter }

(* ------------------------------------------------------------------ *)
(* Technique *)

let test_checkpointing_formula () =
  check Alcotest.int "n=2 k=1" 36
    (Technique.wcet_after_checkpointing ~wcet:20 ~detection:2 ~segments:2
       ~k:1);
  check Alcotest.int "n=1 k=1 equals Eq. (1)" 44
    (Technique.wcet_after_checkpointing ~wcet:20 ~detection:2 ~segments:1
       ~k:1);
  Alcotest.check_raises "segments 0"
    (Invalid_argument "Technique.checkpointing: segments must be >= 1")
    (fun () -> ignore (Technique.checkpointing ~segments:0 ~k:1))

let test_eq1 () =
  check Alcotest.int "Eq.(1) k=1" 44
    (Technique.wcet_after_re_execution ~wcet:20 ~detection:2 ~k:1);
  check Alcotest.int "Eq.(1) k=0" 22
    (Technique.wcet_after_re_execution ~wcet:20 ~detection:2 ~k:0);
  check Alcotest.int "Eq.(1) k=2" 66
    (Technique.wcet_after_re_execution ~wcet:20 ~detection:2 ~k:2)

let test_technique_constructors () =
  Alcotest.check_raises "reexec k=0"
    (Invalid_argument "Technique.re_execution: k must be >= 1") (fun () ->
      ignore (Technique.re_execution 0));
  Alcotest.check_raises "active n=1"
    (Invalid_argument "Technique.active_replication: n must be >= 2")
    (fun () -> ignore (Technique.active_replication 1));
  Alcotest.check_raises "passive m=0"
    (Invalid_argument "Technique.passive_replication: m must be >= 1")
    (fun () -> ignore (Technique.passive_replication 0))

let test_replica_count () =
  check Alcotest.int "none" 1 (Technique.replica_count Technique.No_hardening);
  check Alcotest.int "reexec" 1
    (Technique.replica_count (Technique.re_execution 2));
  check Alcotest.int "active 3" 3
    (Technique.replica_count (Technique.active_replication 3));
  check Alcotest.int "passive 1" 3
    (Technique.replica_count (Technique.passive_replication 1))

let test_needs_voter () =
  check Alcotest.bool "none" false (Technique.needs_voter Technique.No_hardening);
  check Alcotest.bool "reexec" false
    (Technique.needs_voter (Technique.re_execution 1));
  check Alcotest.bool "active" true
    (Technique.needs_voter (Technique.active_replication 3));
  check Alcotest.bool "passive" true
    (Technique.needs_voter (Technique.passive_replication 1))

let test_technique_equal () =
  check Alcotest.bool "same" true
    (Technique.equal (Technique.re_execution 2) (Technique.re_execution 2));
  check Alcotest.bool "diff k" false
    (Technique.equal (Technique.re_execution 2) (Technique.re_execution 1));
  check Alcotest.bool "diff kind" false
    (Technique.equal (Technique.re_execution 2)
       (Technique.active_replication 2))

(* ------------------------------------------------------------------ *)
(* Plan *)

let test_plan_structural_validation () =
  let apps = two_task_apps () in
  Alcotest.check_raises "wrong replica count"
    (Invalid_argument "Plan: replica count does not match the technique")
    (fun () ->
      ignore
        (Plan.make apps
           ~decisions:
             [| [| decision ~technique:(Technique.active_replication 3) 0;
                   decision 0 |] |]
           ~dropped:[| false |]));
  Alcotest.check_raises "dropping a critical graph"
    (Invalid_argument "Plan: a non-droppable graph is marked dropped")
    (fun () ->
      ignore
        (Plan.make apps
           ~decisions:[| [| decision 0; decision 0 |] |]
           ~dropped:[| true |]))

let test_plan_errors () =
  let apps = two_task_apps () in
  let a = arch () in
  let ok =
    Plan.make apps
      ~decisions:
        [| [| decision ~technique:(Technique.active_replication 3)
                ~replicas:[| 1; 2 |] ~voter:3 0;
              decision 1 |] |]
      ~dropped:[| false |] in
  check (Alcotest.list Alcotest.string) "clean plan" []
    (Plan.errors a apps ok);
  let colliding =
    Plan.make apps
      ~decisions:
        [| [| decision ~technique:(Technique.active_replication 3)
                ~replicas:[| 0; 2 |] ~voter:3 0;
              decision 1 |] |]
      ~dropped:[| false |] in
  check Alcotest.bool "collision detected" true
    (Plan.errors a apps colliding <> []);
  let out_of_range =
    Plan.make apps
      ~decisions:[| [| decision 9; decision 1 |] |]
      ~dropped:[| false |] in
  check Alcotest.bool "range detected" true
    (Plan.errors a apps out_of_range <> [])

let test_plan_updates () =
  let apps = two_task_apps () in
  let p = Plan.unhardened apps in
  check Alcotest.int "default proc" 0
    (Plan.decision p ~graph:0 ~task:0).Plan.primary_proc;
  let p2 = Plan.with_decision p ~graph:0 ~task:1 (decision 2) in
  check Alcotest.int "updated" 2
    (Plan.decision p2 ~graph:0 ~task:1).Plan.primary_proc;
  check Alcotest.int "original untouched" 0
    (Plan.decision p ~graph:0 ~task:1).Plan.primary_proc;
  check (Alcotest.list Alcotest.int) "nothing dropped" []
    (Plan.dropped_graphs p)

let test_plan_histogram () =
  let apps = two_task_apps () in
  let p =
    Plan.make apps
      ~decisions:
        [| [| decision ~technique:(Technique.re_execution 1) 0;
              decision ~technique:(Technique.re_execution 1) 1 |] |]
      ~dropped:[| false |] in
  check Alcotest.int "one bucket" 1 (List.length (Plan.technique_histogram p));
  check (Alcotest.float 1e-9) "all reexec" 100.
    (Plan.hardened_share_re_execution p);
  let unhardened = Plan.unhardened apps in
  check (Alcotest.float 1e-9) "nothing hardened" 0.
    (Plan.hardened_share_re_execution unhardened)

(* ------------------------------------------------------------------ *)
(* Happ transform *)

let build plan_decisions =
  let apps = two_task_apps () in
  let a = arch () in
  let plan =
    Plan.make apps ~decisions:plan_decisions ~dropped:[| false |] in
  Happ.build a apps plan

let test_happ_unhardened () =
  let happ = build [| [| decision 0; decision 1 |] |] in
  let hg = Happ.graph happ 0 in
  check Alcotest.int "same task count" 2 (Array.length hg.Happ.tasks);
  check Alcotest.int "same channels" 1 (Array.length hg.Happ.channels);
  let prod = hg.Happ.tasks.(0) in
  check Alcotest.int "wcet unchanged" 20 prod.Happ.wcet;
  check Alcotest.int "bcet unchanged" 10 prod.Happ.bcet;
  check Alcotest.int "critical = wcet" 20 prod.Happ.critical_wcet;
  check Alcotest.bool "no trigger" false (Happ.is_trigger prod)

let test_happ_re_execution () =
  let happ =
    build
      [| [| decision ~technique:(Technique.re_execution 2) 0; decision 1 |] |]
  in
  let hg = Happ.graph happ 0 in
  let prod = hg.Happ.tasks.(0) in
  (* nominal includes detection overhead, Eq. (1) for the critical case *)
  check Alcotest.int "nominal wcet = wcet + dt" 22 prod.Happ.wcet;
  check Alcotest.int "nominal bcet = bcet + dt" 12 prod.Happ.bcet;
  check Alcotest.int "critical wcet per Eq. (1)" 66 prod.Happ.critical_wcet;
  check Alcotest.int "k recorded" 2 prod.Happ.reexec_k;
  check Alcotest.bool "is trigger" true (Happ.is_trigger prod);
  check Alcotest.int "topology unchanged" 2 (Array.length hg.Happ.tasks)

let test_happ_checkpointing () =
  let happ =
    build
      [| [| decision ~technique:(Technique.checkpointing ~segments:2 ~k:1)
              0;
            decision 1 |] |] in
  let hg = Happ.graph happ 0 in
  let prod = hg.Happ.tasks.(0) in
  (* wcet 20, dt 2, 2 segments: nominal = 20 + 2*2 = 24;
     recovery = ceil(20/2) + 2 = 12; critical = 24 + 1*12 = 36 *)
  check Alcotest.int "nominal includes checkpoints" 24 prod.Happ.wcet;
  check Alcotest.int "recovery is one segment" 12 prod.Happ.recovery;
  check Alcotest.int "critical adds k recoveries" 36
    prod.Happ.critical_wcet;
  check Alcotest.int "k recorded" 1 prod.Happ.reexec_k;
  check Alcotest.bool "is a trigger" true (Happ.is_trigger prod);
  check Alcotest.bool "cheaper than re-execution" true
    (prod.Happ.critical_wcet
     < Technique.wcet_after_re_execution ~wcet:20 ~detection:2 ~k:1)

let test_happ_active_replication () =
  let happ =
    build
      [| [| decision ~technique:(Technique.active_replication 3)
              ~replicas:[| 1; 2 |] ~voter:3 0;
            decision 1 |] |] in
  let hg = Happ.graph happ 0 in
  (* 3 replicas + 1 voter + 1 consumer *)
  check Alcotest.int "node count" 5 (Array.length hg.Happ.tasks);
  let voters =
    Array.to_list hg.Happ.tasks
    |> List.filter (fun t -> t.Happ.role = Happ.Voter) in
  check Alcotest.int "one voter" 1 (List.length voters);
  let voter = List.hd voters in
  check Alcotest.int "voter on requested proc" 3 voter.Happ.proc;
  check Alcotest.int "voter cost = ve" 1 voter.Happ.wcet;
  (* replicas feed the voter; the voter feeds the consumer *)
  check Alcotest.int "voter preds = replicas" 3
    (Array.length hg.Happ.preds.(voter.Happ.id));
  let consumer =
    Array.to_list hg.Happ.tasks
    |> List.find (fun t -> t.Happ.origin = 1) in
  check Alcotest.int "consumer has one pred" 1
    (Array.length hg.Happ.preds.(consumer.Happ.id));
  check Alcotest.int "consumer pred is the voter" voter.Happ.id
    (fst hg.Happ.preds.(consumer.Happ.id).(0));
  check Alcotest.bool "replicas are not triggers" true
    (List.for_all
       (fun t -> not (Happ.is_trigger t))
       (Array.to_list hg.Happ.tasks))

let test_happ_passive_replication () =
  let happ =
    build
      [| [| decision ~technique:(Technique.passive_replication 1)
              ~replicas:[| 1; 2 |] ~voter:3 0;
            decision 1 |] |] in
  let hg = Happ.graph happ 0 in
  (* 2 actives + 1 spare + 1 voter + 1 consumer *)
  check Alcotest.int "node count" 5 (Array.length hg.Happ.tasks);
  let spares =
    Array.to_list hg.Happ.tasks |> List.filter (fun t -> t.Happ.passive) in
  check Alcotest.int "one spare" 1 (List.length spares);
  let spare = List.hd spares in
  check Alcotest.bool "spare is a trigger" true (Happ.is_trigger spare);
  (* the spare depends on both active replicas (self-activation) *)
  let active_preds =
    Array.to_list hg.Happ.preds.(spare.Happ.id)
    |> List.filter (fun (p, _) ->
           let t = hg.Happ.tasks.(p) in
           t.Happ.origin = 0 && not t.Happ.passive) in
  check Alcotest.int "spare depends on the 2 actives" 2
    (List.length active_preds)

let test_happ_speed_scaling () =
  let apps = two_task_apps () in
  let slow_arch =
    Arch.make
      [| Proc.make ~id:0 ~name:"slow" ~speed:2.0 ();
         Proc.make ~id:1 ~name:"fast" ~speed:1.0 () |] in
  let plan =
    Plan.make apps
      ~decisions:[| [| decision 0; decision 1 |] |]
      ~dropped:[| false |] in
  let happ = Happ.build slow_arch apps plan in
  let hg = Happ.graph happ 0 in
  check Alcotest.int "scaled wcet" 40 hg.Happ.tasks.(0).Happ.wcet;
  check Alcotest.int "unscaled wcet" 30 hg.Happ.tasks.(1).Happ.wcet

let test_happ_placement_error () =
  let apps = two_task_apps () in
  let plan =
    Plan.make apps
      ~decisions:[| [| decision 9; decision 0 |] |]
      ~dropped:[| false |] in
  check Alcotest.bool "build rejects bad placement" true
    (try
       ignore (Happ.build (arch ()) apps plan);
       false
     with Invalid_argument _ -> true)

let test_happ_sink_response_tasks () =
  let happ =
    build
      [| [| decision 0;
            decision ~technique:(Technique.active_replication 3)
              ~replicas:[| 2; 3 |] ~voter:3 1 |] |] in
  let hg = Happ.graph happ 0 in
  (match Happ.sink_response_tasks hg with
   | [ sink ] ->
     check Alcotest.bool "sink image is the voter" true
       (hg.Happ.tasks.(sink).Happ.role = Happ.Voter)
   | _ -> Alcotest.fail "expected a single response task")

let test_happ_utilization_modes () =
  let apps = two_task_apps () in
  let a = arch () in
  let plan =
    Plan.make apps
      ~decisions:
        [| [| decision ~technique:(Technique.re_execution 1) 0; decision 0 |] |]
      ~dropped:[| false |] in
  let happ = Happ.build a apps plan in
  let nominal = Happ.utilization ~mode:Happ.Nominal happ in
  let critical = Happ.utilization ~mode:Happ.Critical happ in
  (* nominal: (20+2)/200 + 30/200; critical: 44/200 + 30/200 *)
  check (Alcotest.float 1e-9) "nominal" ((22. +. 30.) /. 200.) nominal.(0);
  check (Alcotest.float 1e-9) "critical" ((44. +. 30.) /. 200.)
    critical.(0);
  check (Alcotest.float 1e-9) "other procs idle" 0. nominal.(1)

let test_happ_dropped_critical_utilization () =
  let apps =
    Appset.make
      [| Graph.make ~name:"d"
           ~tasks:[| Task.make ~id:0 ~name:"t" ~wcet:50 () |]
           ~channels:[||] ~period:100
           ~criticality:(Criticality.droppable 1.) () |] in
  let a = arch () in
  let plan =
    Plan.make apps ~decisions:[| [| decision 0 |] |] ~dropped:[| true |] in
  let happ = Happ.build a apps plan in
  check (Alcotest.float 1e-9) "dropped graph absent from critical util" 0.
    (Happ.utilization ~mode:Happ.Critical happ).(0);
  check (Alcotest.float 1e-9) "but present nominally" 0.5
    (Happ.utilization ~mode:Happ.Nominal happ).(0)

let suite =
  [ Alcotest.test_case "technique: Eq. (1)" `Quick test_eq1;
    Alcotest.test_case "technique: constructors" `Quick
      test_technique_constructors;
    Alcotest.test_case "technique: replica count" `Quick
      test_replica_count;
    Alcotest.test_case "technique: voter" `Quick test_needs_voter;
    Alcotest.test_case "technique: equal" `Quick test_technique_equal;
    Alcotest.test_case "plan: structural validation" `Quick
      test_plan_structural_validation;
    Alcotest.test_case "plan: placement errors" `Quick test_plan_errors;
    Alcotest.test_case "plan: functional updates" `Quick test_plan_updates;
    Alcotest.test_case "plan: histogram" `Quick test_plan_histogram;
    Alcotest.test_case "happ: unhardened" `Quick test_happ_unhardened;
    Alcotest.test_case "happ: re-execution" `Quick test_happ_re_execution;
    Alcotest.test_case "happ: checkpointing" `Quick
      test_happ_checkpointing;
    Alcotest.test_case "technique: checkpointing formula" `Quick
      test_checkpointing_formula;
    Alcotest.test_case "happ: active replication" `Quick
      test_happ_active_replication;
    Alcotest.test_case "happ: passive replication" `Quick
      test_happ_passive_replication;
    Alcotest.test_case "happ: speed scaling" `Quick test_happ_speed_scaling;
    Alcotest.test_case "happ: placement rejection" `Quick
      test_happ_placement_error;
    Alcotest.test_case "happ: sink response tasks" `Quick
      test_happ_sink_response_tasks;
    Alcotest.test_case "happ: utilization modes" `Quick
      test_happ_utilization_modes;
    Alcotest.test_case "happ: dropped critical utilization" `Quick
      test_happ_dropped_critical_utilization ]
