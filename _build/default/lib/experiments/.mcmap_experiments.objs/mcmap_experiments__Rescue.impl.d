lib/experiments/rescue.ml: Format List Mcmap_benchmarks Mcmap_dse Mcmap_util Paper
