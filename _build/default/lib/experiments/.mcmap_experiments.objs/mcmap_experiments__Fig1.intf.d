lib/experiments/fig1.mli: Mcmap_hardening Mcmap_model
