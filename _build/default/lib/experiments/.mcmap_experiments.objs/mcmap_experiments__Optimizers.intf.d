lib/experiments/optimizers.mli:
