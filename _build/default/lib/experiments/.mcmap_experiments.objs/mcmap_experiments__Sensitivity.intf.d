lib/experiments/sensitivity.mli: Mcmap_analysis
