lib/experiments/dropping.mli: Mcmap_dse
