lib/experiments/paper.ml:
