lib/experiments/table1.mli: Mcmap_analysis
