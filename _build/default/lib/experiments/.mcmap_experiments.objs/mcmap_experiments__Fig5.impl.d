lib/experiments/fig5.ml: Array Buffer Bytes Format List Mcmap_benchmarks Mcmap_dse Mcmap_hardening Mcmap_model Mcmap_util String
