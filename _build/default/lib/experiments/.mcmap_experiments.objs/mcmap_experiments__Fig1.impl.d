lib/experiments/fig1.ml: Array Format Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_sim
