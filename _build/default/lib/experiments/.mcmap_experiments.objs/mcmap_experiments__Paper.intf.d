lib/experiments/paper.mli:
