lib/experiments/table2.mli: Mcmap_analysis
