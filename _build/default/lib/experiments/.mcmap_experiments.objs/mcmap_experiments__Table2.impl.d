lib/experiments/table2.ml: Array Format List Mcmap_analysis Mcmap_benchmarks Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_sim Mcmap_util
