lib/experiments/table1.ml: Array Format List Mcmap_analysis Mcmap_benchmarks Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_util
