lib/experiments/optimizers.ml: Format List Mcmap_benchmarks Mcmap_dse Mcmap_util Option
