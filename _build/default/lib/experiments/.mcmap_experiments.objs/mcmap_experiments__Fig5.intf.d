lib/experiments/fig5.mli: Mcmap_dse
