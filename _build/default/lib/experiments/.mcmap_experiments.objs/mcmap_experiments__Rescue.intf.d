lib/experiments/rescue.mli: Mcmap_dse
