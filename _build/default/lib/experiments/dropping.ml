module B = Mcmap_benchmarks
module Dse = Mcmap_dse

type entry = {
  benchmark : string;
  power_with : float option;
  power_without : float option;
  gain_pct : float option;
  paper_gain_pct : float option;
}

let run ?config ?(benchmarks = [ "dt-med"; "dt-large"; "cruise" ]) () =
  let config =
    match config with
    | Some c -> { c with Dse.Ga.check_rescue = false }
    | None -> { Dse.Ga.default_config with Dse.Ga.check_rescue = false } in
  List.map
    (fun name ->
      let bench = B.Registry.find_exn name in
      let power_with, power_without, gain_pct =
        Dse.Explore.dropping_gain_pct ~config bench.B.Benchmark.arch
          bench.B.Benchmark.apps in
      { benchmark = name; power_with; power_without; gain_pct;
        paper_gain_pct = List.assoc_opt name Paper.dropping_gain_pct })
    benchmarks

let render entries =
  let table =
    Mcmap_util.Texttable.create
      ~header:
        [ "Benchmark"; "Power (dropping)"; "Power (no dropping)";
          "Extra power %"; "Paper %" ] in
  let cell = function
    | Some x -> Format.asprintf "%.3f" x
    | None -> "-" in
  List.iter
    (fun e ->
      Mcmap_util.Texttable.add_row table
        [ e.benchmark; cell e.power_with; cell e.power_without;
          cell e.gain_pct; cell e.paper_gain_pct ])
    entries;
  Mcmap_util.Texttable.render table
