module B = Mcmap_benchmarks
module Dse = Mcmap_dse
module Plan = Mcmap_hardening.Plan
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph

type point = {
  alive : string list;
  power : float;
  service : float;
}

let run ?(config = Dse.Ga.default_config) ?(benchmark = "dt-med") () =
  let bench = B.Registry.find_exn benchmark in
  let apps = bench.B.Benchmark.apps in
  let summary =
    Dse.Explore.run ~config bench.B.Benchmark.arch apps in
  List.map
    (fun (plan, power, service) ->
      let alive =
        List.filter_map
          (fun gi ->
            if plan.Plan.dropped.(gi) then None
            else Some (Appset.graph apps gi).Graph.name)
          (Appset.droppable_graphs apps) in
      { alive; power; service })
    summary.Dse.Explore.pareto

let render points =
  let table =
    Mcmap_util.Texttable.create
      ~header:[ "Alive droppables"; "Power"; "Service" ] in
  List.iter
    (fun p ->
      let label =
        if p.alive = [] then "{} (all dropped)"
        else "{" ^ String.concat ", " p.alive ^ "}" in
      Mcmap_util.Texttable.add_row table
        [ label; Format.asprintf "%.3f" p.power;
          Format.asprintf "%.1f" p.service ])
    points;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Mcmap_util.Texttable.render table);
  (match points with
   | [] -> ()
   | _ :: _ ->
     let entries =
       List.map (fun p -> ((), [| p.power; -.p.service |])) points in
     let rx = 2. *. List.fold_left (fun a p -> max a p.power) 0. points in
     let hv =
       Mcmap_util.Pareto.hypervolume_2d ~reference:(rx, 1.) entries in
     Buffer.add_string buf
       (Format.asprintf
          "hypervolume (ref (%.2f, -1.0), larger = better front): %.2f\n"
          rx hv));
  (* ASCII sketch: service (rows, descending) vs power (columns). *)
  if List.length points > 1 then begin
    let powers = List.map (fun p -> p.power) points in
    let pmin = List.fold_left min infinity powers
    and pmax = List.fold_left max neg_infinity powers in
    let width = 40 in
    let col p =
      if pmax = pmin then 0
      else
        int_of_float
          (float_of_int (width - 1) *. (p -. pmin) /. (pmax -. pmin)) in
    Buffer.add_string buf "\nservice\n";
    List.iter
      (fun p ->
        let line = Bytes.make width '.' in
        Bytes.set line (col p.power) '*';
        Buffer.add_string buf
          (Format.asprintf "%6.1f |%s\n" p.service
             (Bytes.to_string line)))
      (List.sort (fun a b -> compare b.service a.service) points);
    Buffer.add_string buf
      (Format.asprintf "        %.3f%*s%.3f (power)\n" pmin (width - 10)
         "" pmax)
  end;
  Buffer.contents buf
