(** Experiment E4 — Figure 5 of the paper: the Pareto front of the
    power/service co-optimisation for DT-med. Each point is labelled with
    the set of droppable applications kept alive ({t1, t2, t3} = no
    dropping, the empty set = everything dropped); the paper finds five
    Pareto-optimal points. *)

type point = {
  alive : string list;  (** droppable applications not in [T_d] *)
  power : float;
  service : float;
}

val run :
  ?config:Mcmap_dse.Ga.config -> ?benchmark:string -> unit -> point list
(** Points sorted by ascending power. Default benchmark: dt-med. *)

val render : point list -> string
(** Text rendering including an ASCII sketch of the front. *)
