(** Experiment E3 — §5.2 of the paper: the share of explored feasible
    solutions that are infeasible without task dropping ("rescued"), and
    the share of re-execution among applied hardening techniques. The
    paper reports rescue ratios of 0.02 % (Synth-1), 0.685 % (Synth-2),
    29.00 % (DT-med), 22.49 % (DT-large) and 99.98 % (Cruise), and
    observes that the ratio grows with the re-execution share. *)

type entry = {
  benchmark : string;
  evaluations : int;
  feasible : int;
  rescue_pct : float;
  reexec_pct : float;
  rescue_trend : (float * float) option;
      (** first-half vs second-half rescue ratio: the paper observes the
          ratio grows as the exploration converges *)
  paper_rescue_pct : float option;
  paper_reexec_pct : float option;
}

val run :
  ?config:Mcmap_dse.Ga.config -> ?benchmarks:string list -> unit ->
  entry list
(** Default benchmarks: all five. *)

val render : entry list -> string
