(** The values the paper reports, for side-by-side comparison in the
    regenerated tables (EXPERIMENTS.md). *)

val dropping_gain_pct : (string * float) list
(** §5.2: extra power without task dropping — DT-med 14.66 %,
    DT-large 16.16 %, Cruise 18.52 %. *)

val rescue_ratio_pct : (string * float) list
(** §5.2: ratio of solutions rescued by dropping — Synth-1 0.02 %,
    Synth-2 0.685 %, DT-med 29.00 %, DT-large 22.49 %, Cruise 99.98 %. *)

val reexec_share_pct : (string * float) list
(** §5.2: share of re-execution among applied hardenings — DT-med
    87.03 %, DT-large 98.66 %, Cruise 83.23 %, Synth-1 44.29 %. *)

val table2 : (int * (int * int) * (int * int) * (int * int) * (int * int)) list
(** Table 2 — per mapping (1-3): (Adhoc, WC-Sim, Proposed, Naive) WCRT
    pairs for the two critical Cruise applications, in ms. *)

val fig5_pareto_points : int
(** Figure 5: the paper finds 5 Pareto-optimal power/service points for
    DT-med. *)
