module B = Mcmap_benchmarks
module Happ = Mcmap_hardening.Happ
module Jobset = Mcmap_sched.Jobset
module Bounds = Mcmap_sched.Bounds
module Static = Mcmap_sched.Static_schedule
module Wcrt = Mcmap_analysis.Wcrt
module Verdict = Mcmap_analysis.Verdict
module Appset = Mcmap_model.Appset

type entry = {
  benchmark : string;
  scenarios : float;
  static_response : int;
  dynamic_response : Verdict.t;
  static_nominal_makespan : int;
}

let run ?(seed = 42) ?(benchmarks = B.Registry.names) () =
  List.map
    (fun name ->
      let bench = B.Registry.find_exn name in
      let arch = bench.B.Benchmark.arch
      and apps = bench.B.Benchmark.apps in
      let plan = B.Sampler.balanced_plan ~seed arch apps in
      let happ = Happ.build arch apps plan in
      let js = Jobset.build happ in
      let report = Wcrt.analyze (Bounds.make js) in
      let static_wc = Static.worst_case js in
      let criticals = Appset.critical_graphs apps in
      let static_response =
        List.fold_left
          (fun acc g -> max acc static_wc.Static.graph_response.(g))
          0 criticals in
      let dynamic_response =
        List.fold_left
          (fun acc g -> Verdict.max acc report.Wcrt.required_wcrt.(g))
          (Verdict.Finite 0) criticals in
      { benchmark = name;
        scenarios = Static.scenario_count js;
        static_response;
        dynamic_response;
        static_nominal_makespan = (Static.nominal js).Static.makespan })
    benchmarks

let render entries =
  let table =
    Mcmap_util.Texttable.create
      ~header:
        [ "Benchmark"; "Static schedules needed"; "Static WC response";
          "Algorithm 1 bound"; "Static nominal makespan" ] in
  List.iter
    (fun e ->
      Mcmap_util.Texttable.add_row table
        [ e.benchmark;
          (if e.scenarios < 1e7 then
             Format.asprintf "%.0f" e.scenarios
           else Format.asprintf "%.2e" e.scenarios);
          string_of_int e.static_response;
          Format.asprintf "%a" Verdict.pp e.dynamic_response;
          string_of_int e.static_nominal_makespan ])
    entries;
  Mcmap_util.Texttable.render table
