let dropping_gain_pct =
  [ ("dt-med", 14.66); ("dt-large", 16.16); ("cruise", 18.52) ]

let rescue_ratio_pct =
  [ ("synth-1", 0.02); ("synth-2", 0.685); ("dt-med", 29.00);
    ("dt-large", 22.49); ("cruise", 99.98) ]

let reexec_share_pct =
  [ ("dt-med", 87.03); ("dt-large", 98.66); ("cruise", 83.23);
    ("synth-1", 44.29) ]

let table2 =
  [ (1, (661, 462), (661, 521), (666, 552), (796, 641));
    (2, (819, 723), (649, 568), (842, 815), (1035, 981));
    (3, (771, 525), (678, 480), (810, 563), (1007, 915)) ]

let fig5_pareto_points = 5
