(** Experiment E2 — §5.2 of the paper: optimized power consumption with
    vs without task dropping (the paper reports +14.66 % / +16.16 % /
    +18.52 % extra power without dropping on DT-med / DT-large /
    Cruise). *)

type entry = {
  benchmark : string;
  power_with : float option;  (** best feasible power, dropping enabled *)
  power_without : float option;  (** best feasible power, no dropping *)
  gain_pct : float option;
      (** extra power of the no-dropping design, in percent *)
  paper_gain_pct : float option;  (** the paper's value, when reported *)
}

val run :
  ?config:Mcmap_dse.Ga.config -> ?benchmarks:string list -> unit ->
  entry list
(** Default benchmarks: the three the paper reports
    (dt-med, dt-large, cruise). *)

val render : entry list -> string
