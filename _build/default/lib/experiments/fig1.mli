(** Experiment E5 — the motivational example of Figure 1: a two-processor
    system where

    + with no fault, every application meets its deadline;
    + a re-execution of the hardened task [A] makes the critical
      application miss its deadline when the low-criticality application
      is kept;
    + dropping the low-criticality application on the mode change
      restores the deadline.

    The scenario is executed on the discrete-event engine (Figure 1 is a
    schedule illustration; the corresponding analysis verdicts are also
    reported). *)

type outcome = {
  normal_deadline_met : bool;  (** Fig. 1 (b) *)
  fault_keep_deadline_met : bool;  (** Fig. 1 (c): expected [false] *)
  fault_drop_deadline_met : bool;  (** Fig. 1 (d): expected [true] *)
  normal_response : int option;
  fault_keep_response : int option;
  fault_drop_response : int option;
  deadline : int;
}

val scenario :
  unit ->
  Mcmap_model.Arch.t * Mcmap_model.Appset.t * Mcmap_hardening.Plan.t
  * Mcmap_hardening.Plan.t
(** The architecture, applications, keep-everything plan and
    drop-low-criticality plan of the example. *)

val run : unit -> outcome

val render : outcome -> string
