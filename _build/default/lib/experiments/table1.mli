(** Experiment E6 (extension) — Table 1 of the paper, made quantitative.

    Table 1 positions the paper against static fault-tolerant mapping
    approaches (refs [2, 3]): static schedules must be synthesized per
    fault scenario (ref [2] needs 19 schedules for 5 tasks) and the
    single all-worst-case schedule is rigid. For each benchmark, on the
    same hardened mapping, this experiment reports:

    - the number of fault scenarios a per-scenario static approach must
      precompute ({!Mcmap_sched.Static_schedule.scenario_count});
    - the worst critical-application response of the single rigid
      all-worst-case static schedule;
    - Algorithm 1's bound for the same applications under dynamic
      fixed-priority scheduling with task dropping. *)

type entry = {
  benchmark : string;
  scenarios : float;
      (** schedules a per-scenario static approach must precompute *)
  static_response : int;
      (** worst critical-graph response of the rigid static schedule *)
  dynamic_response : Mcmap_analysis.Verdict.t;
      (** Algorithm 1 bound for the same critical graphs *)
  static_nominal_makespan : int;
}

val run : ?seed:int -> ?benchmarks:string list -> unit -> entry list
(** Default: all five benchmarks, on their balanced seeded mapping. *)

val render : entry list -> string
