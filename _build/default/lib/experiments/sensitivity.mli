(** Experiment E7 (extension) — sensitivity and ablation studies of the
    design choices DESIGN.md calls out.

    {b Re-execution budget sweep}: harden every critical task of a
    benchmark with [k = 0..3] re-executions and report the reliability
    achieved, Algorithm 1's bound, and the provisioned power — the
    trade-off that drives the whole mapping problem (Eq. (1) makes WCRT
    grow linearly in [k] while the failure probability shrinks
    geometrically).

    {b Priority-order ablation}: analyse the same mapping under the
    default rate-monotonic priorities and under criticality-segregated
    priorities. Under the latter, droppable tasks can never delay
    critical ones on preemptive processors, so the dropping machinery
    loses its purpose — evidence for the design decision to keep
    priorities criticality-agnostic (as the paper's Figure 1 implies). *)

type k_sweep_row = {
  k : int;  (** 0 = unhardened *)
  failure_rate : float;  (** worst graph failure rate, per time unit *)
  reliable : bool;  (** every [f_t] constraint met *)
  wcrt : Mcmap_analysis.Verdict.t;  (** worst critical-graph bound *)
  schedulable : bool;
  power : float;
}

val k_sweep : ?benchmark:string -> ?seed:int -> unit -> k_sweep_row list
(** Default benchmark: cruise, on its balanced seeded placement. *)

val render_k_sweep : k_sweep_row list -> string

type priority_row = {
  order : string;
  critical_wcrt : Mcmap_analysis.Verdict.t;
      (** worst required bound over critical graphs *)
  droppable_wcrt : Mcmap_analysis.Verdict.t;
      (** worst required bound over droppable graphs *)
}

val priority_ablation :
  ?benchmark:string -> ?seed:int -> unit -> priority_row list

val render_priority : priority_row list -> string
