module B = Mcmap_benchmarks
module Dse = Mcmap_dse

type entry = {
  optimizer : string;
  best_power : float option;
  feasible : int;
  evaluations : int;
}

let ga_entry label selector arch apps ~budget ~seed =
  let population = 40 in
  let offspring = population in
  let generations = max 1 ((budget - population) / offspring) in
  let config =
    { Dse.Ga.default_config with
      Dse.Ga.population; offspring; generations; seed;
      check_rescue = false; selector } in
  let summary = Dse.Explore.run ~config arch apps in
  { optimizer = label;
    best_power = summary.Dse.Explore.best_power;
    feasible = summary.Dse.Explore.stats.Dse.Ga.feasible_evaluations;
    evaluations = summary.Dse.Explore.stats.Dse.Ga.evaluations }

let run ?(benchmark = "cruise") ?(budget = 800) ?(seed = 42) () =
  let bench = B.Registry.find_exn benchmark in
  let arch = bench.B.Benchmark.arch and apps = bench.B.Benchmark.apps in
  let baseline label r =
    { optimizer = label;
      best_power =
        Option.map
          (fun (_, (e : Dse.Evaluate.t)) -> e.Dse.Evaluate.power)
          r.Dse.Baselines.best;
      feasible = r.Dse.Baselines.feasible;
      evaluations = r.Dse.Baselines.evaluations } in
  [ ga_entry "GA + SPEA2 (paper)" Dse.Ga.Spea2_selector arch apps ~budget
      ~seed;
    ga_entry "GA + NSGA-II (ablation)" Dse.Ga.Nsga2_selector arch apps
      ~budget ~seed;
    baseline "simulated annealing"
      (Dse.Baselines.simulated_annealing ~budget ~seed arch apps);
    baseline "random search"
      (Dse.Baselines.random_search ~budget ~seed arch apps) ]

let render entries =
  let table =
    Mcmap_util.Texttable.create
      ~header:[ "Optimizer"; "Best feasible power"; "Feasible"; "Evals" ]
  in
  List.iter
    (fun e ->
      Mcmap_util.Texttable.add_row table
        [ e.optimizer;
          (match e.best_power with
           | Some p -> Format.asprintf "%.3f" p
           | None -> "-");
          string_of_int e.feasible;
          string_of_int e.evaluations ])
    entries;
  Mcmap_util.Texttable.render table
