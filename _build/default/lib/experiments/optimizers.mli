(** Experiment E8 (extension) — optimiser comparison on equal evaluation
    budgets: the paper's GA + SPEA2, the NSGA-II ablation, simulated
    annealing and random search, all over the same genome encoding and
    evaluation pipeline, compared on the best feasible power they find
    and on how much of the budget lands in the feasible region. *)

type entry = {
  optimizer : string;
  best_power : float option;
  feasible : int;
  evaluations : int;
}

val run :
  ?benchmark:string -> ?budget:int -> ?seed:int -> unit -> entry list
(** Default: cruise with a budget of 800 evaluations (the GA runs
    population 40 with offspring sized to match the budget). *)

val render : entry list -> string
