module B = Mcmap_benchmarks
module Dse = Mcmap_dse

type entry = {
  benchmark : string;
  evaluations : int;
  feasible : int;
  rescue_pct : float;
  reexec_pct : float;
  rescue_trend : (float * float) option;
  paper_rescue_pct : float option;
  paper_reexec_pct : float option;
}

let run ?(config = Dse.Ga.default_config)
    ?(benchmarks = [ "synth-1"; "synth-2"; "dt-med"; "dt-large"; "cruise" ])
    () =
  List.map
    (fun name ->
      let bench = B.Registry.find_exn name in
      let summary =
        Dse.Explore.run ~config bench.B.Benchmark.arch
          bench.B.Benchmark.apps in
      let stats = summary.Dse.Explore.stats in
      { benchmark = name;
        evaluations = stats.Dse.Ga.evaluations;
        feasible = stats.Dse.Ga.feasible_evaluations;
        rescue_pct = summary.Dse.Explore.rescue_ratio_pct;
        reexec_pct = summary.Dse.Explore.reexec_share_pct;
        rescue_trend = summary.Dse.Explore.rescue_trend;
        paper_rescue_pct = List.assoc_opt name Paper.rescue_ratio_pct;
        paper_reexec_pct = List.assoc_opt name Paper.reexec_share_pct })
    benchmarks

let render entries =
  let table =
    Mcmap_util.Texttable.create
      ~header:
        [ "Benchmark"; "Evals"; "Feasible"; "Rescued %"; "Paper %";
          "Re-exec %"; "Paper re-exec %"; "Trend (1st->2nd half)" ] in
  let cell = function
    | Some x -> Format.asprintf "%.2f" x
    | None -> "-" in
  List.iter
    (fun e ->
      Mcmap_util.Texttable.add_row table
        [ e.benchmark; string_of_int e.evaluations;
          string_of_int e.feasible; Format.asprintf "%.2f" e.rescue_pct;
          cell e.paper_rescue_pct; Format.asprintf "%.2f" e.reexec_pct;
          cell e.paper_reexec_pct;
          (match e.rescue_trend with
           | Some (a, b) -> Format.asprintf "%.1f -> %.1f" a b
           | None -> "-") ])
    entries;
  Mcmap_util.Texttable.render table
