(** A benchmark: an architecture plus an application set. *)

type t = {
  name : string;
  arch : Mcmap_model.Arch.t;
  apps : Mcmap_model.Appset.t;
}

val make :
  name:string -> arch:Mcmap_model.Arch.t -> apps:Mcmap_model.Appset.t -> t
