type t = {
  name : string;
  arch : Mcmap_model.Arch.t;
  apps : Mcmap_model.Appset.t;
}

let make ~name ~arch ~apps = { name; arch; apps }
