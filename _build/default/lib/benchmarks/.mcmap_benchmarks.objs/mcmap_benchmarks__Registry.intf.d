lib/benchmarks/registry.mli: Benchmark
