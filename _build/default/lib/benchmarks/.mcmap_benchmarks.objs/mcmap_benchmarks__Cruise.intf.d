lib/benchmarks/cruise.mli: Benchmark Mcmap_hardening
