lib/benchmarks/dt.ml: Benchmark Builder Mcmap_model Platforms
